// Prefix-encoded (Dewey-style) node IDs, Section 3.1 of the paper.
//
// A *relative* node ID is one level: zero or more odd bytes followed by one
// even byte ("a relative node ID ends with an even-numbered byte; any
// odd-numbered byte means that the relative ID is extended to the next
// byte"). An *absolute* node ID is the concatenation of relative IDs along
// the path from the root; the root's own ID is always 00 and therefore
// implicit (represented here as the empty byte string).
//
// Properties delivered by this encoding:
//  - byte comparison of absolute IDs == document order;
//  - ancestor/descendant testing is a prefix test;
//  - IDs are stable under update: Between() manufactures an ID strictly
//    between two siblings by extending the length when necessary.
#ifndef XDB_XML_NODE_ID_H_
#define XDB_XML_NODE_ID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace xdb {
namespace nodeid {

/// Appends the relative ID of the `n`-th initial child (n >= 1) to `dst`.
/// Children 1..126 get the single bytes 02, 04, ..., FC; later children use
/// an FF-prefixed extension so byte order still matches sibling order.
void AppendChildId(uint32_t n, std::string* dst);

/// Relative ID of child n as a fresh string.
std::string ChildId(uint32_t n);

/// True iff `rel` is a well-formed single level (odd* even).
bool IsValidRelative(Slice rel);

/// True iff `abs` parses as a sequence of well-formed levels. The empty
/// string (the implicit root "00") is valid.
bool IsValidAbsolute(Slice abs);

/// Splits an absolute ID into its levels.
Status SplitLevels(Slice abs, std::vector<Slice>* levels);

/// Number of levels (= depth below the root).
Result<int> Depth(Slice abs);

/// The parent's absolute ID (strips the last level). Fails on the root.
Result<Slice> Parent(Slice abs);

/// True iff `a` is a proper ancestor of `d` (the root is an ancestor of
/// every other node). Because levels are self-delimiting, this is exactly a
/// proper-prefix test.
bool IsAncestor(Slice a, Slice d);

/// Document-order comparison of absolute IDs (plain byte comparison; an
/// ancestor sorts before its descendants).
inline int Compare(Slice a, Slice b) { return a.Compare(b); }

/// Manufactures a relative ID strictly between `left` and `right` at the
/// same level. Empty `left` means "before the first sibling"; empty `right`
/// means "after the last sibling". Fails with kFull only in the pathological
/// left-edge case where the neighbour is the absolute minimum ID.
Status Between(Slice left, Slice right, std::string* out);

/// Debug rendering, e.g. "02.04.FF02".
std::string ToString(Slice abs);

}  // namespace nodeid
}  // namespace xdb

#endif  // XDB_XML_NODE_ID_H_
