// The seven node kinds of the XQuery data model (Section 3.1: "There are
// seven kinds of nodes in the XQuery data model"), plus the proxy node kind
// that represents a packed-out subtree inside a containing record (Figure 3).
#ifndef XDB_XML_NODE_KIND_H_
#define XDB_XML_NODE_KIND_H_

#include <cstdint>

namespace xdb {

enum class NodeKind : uint8_t {
  kDocument = 0,
  kElement = 1,
  kAttribute = 2,
  kText = 3,
  kNamespace = 4,
  kProcessingInstruction = 5,
  kComment = 6,
  /// Storage-only: stands in for a subtree packed into another record.
  kProxy = 7,
};

inline const char* NodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::kDocument: return "document";
    case NodeKind::kElement: return "element";
    case NodeKind::kAttribute: return "attribute";
    case NodeKind::kText: return "text";
    case NodeKind::kNamespace: return "namespace";
    case NodeKind::kProcessingInstruction: return "processing-instruction";
    case NodeKind::kComment: return "comment";
    case NodeKind::kProxy: return "proxy";
  }
  return "unknown";
}

}  // namespace xdb

#endif  // XDB_XML_NODE_KIND_H_
