#include "xml/serializer.h"

#include <vector>

namespace xdb {

void EscapeText(Slice s, std::string* out) {
  for (size_t i = 0; i < s.size(); i++) {
    char c = s[i];
    switch (c) {
      case '<': out->append("&lt;"); break;
      case '>': out->append("&gt;"); break;
      case '&': out->append("&amp;"); break;
      default: out->push_back(c);
    }
  }
}

void EscapeAttribute(Slice s, std::string* out) {
  for (size_t i = 0; i < s.size(); i++) {
    char c = s[i];
    switch (c) {
      case '<': out->append("&lt;"); break;
      case '>': out->append("&gt;"); break;
      case '&': out->append("&amp;"); break;
      case '"': out->append("&quot;"); break;
      default: out->push_back(c);
    }
  }
}

Status SerializeTokens(Slice token_buffer, const NameDictionary& dict,
                       const SerializerOptions& options, std::string* out) {
  TokenReader reader(token_buffer);
  Token t;
  std::vector<std::string> open_tags;  // qualified names for end tags
  bool tag_open = false;               // start tag not yet closed with '>'
  bool had_child_content = false;

  auto qualified = [&](NameId prefix, NameId local) -> Result<std::string> {
    XDB_ASSIGN_OR_RETURN(std::string lname, dict.Name(local));
    if (prefix == kEmptyNameId) return lname;
    XDB_ASSIGN_OR_RETURN(std::string pname, dict.Name(prefix));
    if (pname.empty()) return lname;
    return pname + ":" + lname;
  };

  auto indent = [&](size_t depth) {
    if (!options.indent) return;
    out->push_back('\n');
    out->append(depth * 2, ' ');
  };

  auto close_open_tag = [&]() {
    if (tag_open) {
      out->push_back('>');
      tag_open = false;
    }
  };

  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, reader.Next(&t));
    if (!more) break;
    switch (t.kind) {
      case TokenKind::kStartDocument:
      case TokenKind::kEndDocument:
        break;
      case TokenKind::kStartElement: {
        close_open_tag();
        if (!open_tags.empty() || had_child_content) indent(open_tags.size());
        XDB_ASSIGN_OR_RETURN(std::string q, qualified(t.prefix, t.local));
        out->push_back('<');
        out->append(q);
        open_tags.push_back(std::move(q));
        tag_open = true;
        had_child_content = true;
        break;
      }
      case TokenKind::kNamespaceDecl: {
        XDB_ASSIGN_OR_RETURN(std::string prefix, dict.Name(t.local));
        XDB_ASSIGN_OR_RETURN(std::string uri, dict.Name(t.ns_uri));
        out->append(prefix.empty() ? " xmlns=\"" : " xmlns:" + prefix + "=\"");
        EscapeAttribute(uri, out);
        out->push_back('"');
        break;
      }
      case TokenKind::kAttribute: {
        XDB_ASSIGN_OR_RETURN(std::string q, qualified(t.prefix, t.local));
        out->push_back(' ');
        out->append(q);
        out->append("=\"");
        EscapeAttribute(t.text, out);
        out->push_back('"');
        break;
      }
      case TokenKind::kEndElement: {
        if (open_tags.empty())
          return Status::Corruption("unbalanced end-element token");
        if (tag_open) {
          out->append("/>");
          tag_open = false;
        } else {
          out->append("</");
          out->append(open_tags.back());
          out->push_back('>');
        }
        open_tags.pop_back();
        break;
      }
      case TokenKind::kText:
        close_open_tag();
        EscapeText(t.text, out);
        break;
      case TokenKind::kComment:
        close_open_tag();
        out->append("<!--");
        out->append(t.text.data(), t.text.size());
        out->append("-->");
        break;
      case TokenKind::kProcessingInstruction: {
        close_open_tag();
        XDB_ASSIGN_OR_RETURN(std::string target, dict.Name(t.local));
        out->append("<?");
        out->append(target);
        out->push_back(' ');
        out->append(t.text.data(), t.text.size());
        out->append("?>");
        break;
      }
    }
  }
  if (!open_tags.empty())
    return Status::Corruption("token stream ended with open elements");
  return Status::OK();
}

}  // namespace xdb
