#include "xml/parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace xdb {

namespace {

/// Sink adapters let one parser core drive either the buffered token stream
/// (concrete calls, inlinable) or the SAX handler (virtual per event).
struct TokenSink {
  TokenWriter* w;
  void StartDocument() { w->StartDocument(); }
  void EndDocument() { w->EndDocument(); }
  void StartElement(NameId l, NameId ns, NameId p) { w->StartElement(l, ns, p); }
  void EndElement() { w->EndElement(); }
  void Attribute(NameId l, NameId ns, NameId p, Slice v) {
    w->Attribute(l, v, ns, p);
  }
  void NamespaceDecl(NameId p, NameId u) { w->NamespaceDecl(p, u); }
  void Text(Slice v) { w->Text(v); }
  void Comment(Slice v) { w->Comment(v); }
  void Pi(NameId t, Slice d) { w->ProcessingInstruction(t, d); }
};

struct SaxSink {
  SaxHandler* h;
  void StartDocument() { h->OnStartDocument(); }
  void EndDocument() { h->OnEndDocument(); }
  void StartElement(NameId l, NameId ns, NameId p) {
    h->OnStartElement(l, ns, p);
  }
  void EndElement() { h->OnEndElement(); }
  void Attribute(NameId l, NameId ns, NameId p, Slice v) {
    h->OnAttribute(l, ns, p, v);
  }
  void NamespaceDecl(NameId p, NameId u) { h->OnNamespaceDecl(p, u); }
  void Text(Slice v) { h->OnText(v); }
  void Comment(Slice v) { h->OnComment(v); }
  void Pi(NameId t, Slice d) { h->OnProcessingInstruction(t, d); }
};

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

struct NsBinding {
  std::string prefix;
  NameId uri;
  size_t depth;
};

template <typename Sink>
class ParserCore {
 public:
  ParserCore(NameDictionary* dict, const ParserOptions& options, Slice xml,
             Sink sink)
      : dict_(dict),
        options_(options),
        p_(xml.data()),
        limit_(xml.data() + xml.size()),
        begin_(xml.data()),
        sink_(sink) {}

  Status Run();

 private:
  Status Fail(const std::string& what) {
    return Status::ParseError(what + " at offset " +
                              std::to_string(p_ - begin_));
  }

  bool Eof() const { return p_ >= limit_; }
  char Peek() const { return *p_; }
  void SkipSpace() {
    while (!Eof() && IsSpace(*p_)) p_++;
  }
  bool Consume(char c) {
    if (!Eof() && *p_ == c) {
      p_++;
      return true;
    }
    return false;
  }
  bool ConsumeStr(const char* s) {
    size_t n = std::strlen(s);
    if (static_cast<size_t>(limit_ - p_) >= n && std::memcmp(p_, s, n) == 0) {
      p_ += n;
      return true;
    }
    return false;
  }

  /// Bounded substring search in [p_, limit_); nullptr if absent.
  const char* FindStr(const char* s) const {
    size_t n = std::strlen(s);
    return std::search(p_, limit_, s, s + n) == limit_
               ? nullptr
               : std::search(p_, limit_, s, s + n);
  }

  Status ReadName(std::string* out) {
    if (Eof() || !IsNameStartChar(*p_)) return Fail("expected a name");
    const char* start = p_;
    while (!Eof() && IsNameChar(*p_)) p_++;
    out->assign(start, p_ - start);
    return Status::OK();
  }

  /// Decodes entity and character references into `out`.
  Status DecodeText(Slice raw, std::string* out) {
    const char* q = raw.data();
    const char* end = q + raw.size();
    while (q < end) {
      if (*q != '&') {
        out->push_back(*q++);
        continue;
      }
      const char* semi = static_cast<const char*>(
          std::memchr(q, ';', static_cast<size_t>(end - q)));
      if (semi == nullptr) return Fail("unterminated entity reference");
      Slice ent(q + 1, static_cast<size_t>(semi - q - 1));
      if (ent == "lt") out->push_back('<');
      else if (ent == "gt") out->push_back('>');
      else if (ent == "amp") out->push_back('&');
      else if (ent == "apos") out->push_back('\'');
      else if (ent == "quot") out->push_back('"');
      else if (!ent.empty() && ent[0] == '#') {
        long code;
        char* endp = nullptr;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(ent.data() + 2, &endp, 16);
        } else {
          code = std::strtol(ent.data() + 1, &endp, 10);
        }
        if (endp != ent.data() + ent.size() || code <= 0 || code > 0x10FFFF)
          return Fail("bad character reference");
        // UTF-8 encode.
        uint32_t c = static_cast<uint32_t>(code);
        if (c < 0x80) {
          out->push_back(static_cast<char>(c));
        } else if (c < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (c >> 6)));
          out->push_back(static_cast<char>(0x80 | (c & 0x3F)));
        } else if (c < 0x10000) {
          out->push_back(static_cast<char>(0xE0 | (c >> 12)));
          out->push_back(static_cast<char>(0x80 | ((c >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (c & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xF0 | (c >> 18)));
          out->push_back(static_cast<char>(0x80 | ((c >> 12) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | ((c >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (c & 0x3F)));
        }
      } else {
        return Fail("unknown entity '" + ent.ToString() + "'");
      }
      q = semi + 1;
    }
    return Status::OK();
  }

  NameId ResolvePrefix(const std::string& prefix, bool for_attribute) {
    // Per XML-Namespaces, unprefixed attributes are in no namespace.
    if (prefix.empty() && for_attribute) return kEmptyNameId;
    for (auto it = ns_stack_.rbegin(); it != ns_stack_.rend(); ++it) {
      if (it->prefix == prefix) return it->uri;
    }
    return kEmptyNameId;
  }

  Status ParseElement();
  Status ParseContent();

  NameDictionary* dict_;
  const ParserOptions& options_;
  const char* p_;
  const char* limit_;
  const char* begin_;
  Sink sink_;
  std::vector<NsBinding> ns_stack_;
  size_t depth_ = 0;
  std::string scratch_;
};

template <typename Sink>
Status ParserCore<Sink>::Run() {
  sink_.StartDocument();
  SkipSpace();
  // Prolog and misc.
  while (!Eof() && Peek() == '<') {
    if (ConsumeStr("<?xml")) {
      const char* close = FindStr("?>");
      if (close == nullptr || close >= limit_) return Fail("unterminated XML declaration");
      p_ = close + 2;
      SkipSpace();
    } else if (ConsumeStr("<!--")) {
      const char* close = FindStr("-->");
      if (close == nullptr || close >= limit_) return Fail("unterminated comment");
      sink_.Comment(Slice(p_, static_cast<size_t>(close - p_)));
      p_ = close + 3;
      SkipSpace();
    } else if (ConsumeStr("<!DOCTYPE")) {
      // Skip to the matching '>' (internal subsets are not supported).
      int bracket = 0;
      while (!Eof()) {
        char c = *p_++;
        if (c == '[') bracket++;
        else if (c == ']') bracket--;
        else if (c == '>' && bracket == 0) break;
      }
      SkipSpace();
    } else if (ConsumeStr("<?")) {
      std::string target;
      XDB_RETURN_NOT_OK(ReadName(&target));
      SkipSpace();
      const char* close = FindStr("?>");
      if (close == nullptr || close >= limit_) return Fail("unterminated PI");
      sink_.Pi(dict_->Intern(target), Slice(p_, static_cast<size_t>(close - p_)));
      p_ = close + 2;
      SkipSpace();
    } else {
      break;
    }
  }
  if (Eof() || Peek() != '<') return Fail("expected root element");
  XDB_RETURN_NOT_OK(ParseElement());
  SkipSpace();
  // Trailing misc (comments / PIs).
  while (!Eof()) {
    if (ConsumeStr("<!--")) {
      const char* close = FindStr("-->");
      if (close == nullptr || close >= limit_) return Fail("unterminated comment");
      sink_.Comment(Slice(p_, static_cast<size_t>(close - p_)));
      p_ = close + 3;
    } else if (ConsumeStr("<?")) {
      std::string target;
      XDB_RETURN_NOT_OK(ReadName(&target));
      SkipSpace();
      const char* close = FindStr("?>");
      if (close == nullptr || close >= limit_) return Fail("unterminated PI");
      sink_.Pi(dict_->Intern(target), Slice(p_, static_cast<size_t>(close - p_)));
      p_ = close + 2;
    } else if (IsSpace(Peek())) {
      p_++;
    } else {
      return Fail("content after root element");
    }
  }
  sink_.EndDocument();
  return Status::OK();
}

template <typename Sink>
Status ParserCore<Sink>::ParseElement() {
  if (!Consume('<')) return Fail("expected '<'");
  std::string qname;
  XDB_RETURN_NOT_OK(ReadName(&qname));
  depth_++;

  struct RawAttr {
    std::string prefix, local;
    std::string value;
  };
  std::vector<RawAttr> attrs;
  std::vector<std::pair<std::string, std::string>> ns_decls;  // prefix, uri
  bool self_closing = false;

  for (;;) {
    SkipSpace();
    if (Eof()) return Fail("unterminated start tag");
    if (Consume('>')) break;
    if (ConsumeStr("/>")) {
      self_closing = true;
      break;
    }
    std::string aname;
    XDB_RETURN_NOT_OK(ReadName(&aname));
    SkipSpace();
    if (!Consume('=')) return Fail("expected '=' in attribute");
    SkipSpace();
    char quote = Eof() ? '\0' : *p_;
    if (quote != '"' && quote != '\'') return Fail("expected quoted value");
    p_++;
    const char* vstart = p_;
    while (!Eof() && *p_ != quote) p_++;
    if (Eof()) return Fail("unterminated attribute value");
    scratch_.clear();
    XDB_RETURN_NOT_OK(
        DecodeText(Slice(vstart, static_cast<size_t>(p_ - vstart)), &scratch_));
    p_++;  // closing quote

    if (aname == "xmlns") {
      ns_decls.emplace_back("", scratch_);
    } else if (aname.size() > 6 && aname.compare(0, 6, "xmlns:") == 0) {
      ns_decls.emplace_back(aname.substr(6), scratch_);
    } else {
      size_t colon = aname.find(':');
      RawAttr a;
      if (colon != std::string::npos) {
        a.prefix = aname.substr(0, colon);
        a.local = aname.substr(colon + 1);
      } else {
        a.local = aname;
      }
      a.value = scratch_;
      attrs.push_back(std::move(a));
    }
  }

  // Push namespace bindings for this element's scope.
  const size_t ns_mark = ns_stack_.size();
  // "namespace order adjusted": sort declarations by prefix.
  std::sort(ns_decls.begin(), ns_decls.end());
  for (auto& [prefix, uri] : ns_decls) {
    ns_stack_.push_back({prefix, dict_->Intern(uri), depth_});
  }

  // Resolve the element name.
  std::string eprefix, elocal;
  size_t colon = qname.find(':');
  if (colon != std::string::npos) {
    eprefix = qname.substr(0, colon);
    elocal = qname.substr(colon + 1);
  } else {
    elocal = qname;
  }
  NameId ens = ResolvePrefix(eprefix, /*for_attribute=*/false);
  if (!eprefix.empty() && ens == kEmptyNameId)
    return Fail("unbound namespace prefix '" + eprefix + "'");
  sink_.StartElement(dict_->Intern(elocal), ens, dict_->Intern(eprefix));

  for (auto& [prefix, uri] : ns_decls)
    sink_.NamespaceDecl(dict_->Intern(prefix), dict_->Intern(uri));

  // "attribute order adjusted": resolve then sort by (ns, local) ids.
  struct ResolvedAttr {
    NameId local, ns, prefix;
    std::string value;
  };
  std::vector<ResolvedAttr> resolved;
  resolved.reserve(attrs.size());
  for (auto& a : attrs) {
    NameId ans = ResolvePrefix(a.prefix, /*for_attribute=*/true);
    if (!a.prefix.empty() && ans == kEmptyNameId)
      return Fail("unbound namespace prefix '" + a.prefix + "'");
    resolved.push_back({dict_->Intern(a.local), ans, dict_->Intern(a.prefix),
                        std::move(a.value)});
  }
  std::sort(resolved.begin(), resolved.end(),
            [](const ResolvedAttr& x, const ResolvedAttr& y) {
              return x.ns != y.ns ? x.ns < y.ns : x.local < y.local;
            });
  for (size_t i = 1; i < resolved.size(); i++) {
    if (resolved[i].ns == resolved[i - 1].ns &&
        resolved[i].local == resolved[i - 1].local)
      return Fail("duplicate attribute");
  }
  for (auto& a : resolved) sink_.Attribute(a.local, a.ns, a.prefix, a.value);

  if (!self_closing) {
    XDB_RETURN_NOT_OK(ParseContent());
    // ParseContent consumed "</"; read and match the end tag.
    std::string end_name;
    XDB_RETURN_NOT_OK(ReadName(&end_name));
    if (end_name != qname)
      return Fail("mismatched end tag </" + end_name + "> for <" + qname + ">");
    SkipSpace();
    if (!Consume('>')) return Fail("expected '>' in end tag");
  }
  sink_.EndElement();
  ns_stack_.resize(ns_mark);
  depth_--;
  return Status::OK();
}

template <typename Sink>
Status ParserCore<Sink>::ParseContent() {
  std::string text;
  auto flush_text = [&]() {
    if (text.empty()) return;
    if (options_.strip_whitespace_text) {
      bool all_space = true;
      for (char c : text)
        if (!IsSpace(c)) {
          all_space = false;
          break;
        }
      if (all_space) {
        text.clear();
        return;
      }
    }
    sink_.Text(text);
    text.clear();
  };

  for (;;) {
    if (Eof()) return Fail("unterminated element content");
    if (Peek() == '<') {
      if (ConsumeStr("</")) {
        flush_text();
        return Status::OK();
      }
      if (ConsumeStr("<!--")) {
        flush_text();
        const char* close = FindStr("-->");
        if (close == nullptr || close >= limit_)
          return Fail("unterminated comment");
        sink_.Comment(Slice(p_, static_cast<size_t>(close - p_)));
        p_ = close + 3;
        continue;
      }
      if (ConsumeStr("<![CDATA[")) {
        const char* close = FindStr("]]>");
        if (close == nullptr || close >= limit_)
          return Fail("unterminated CDATA section");
        text.append(p_, static_cast<size_t>(close - p_));
        p_ = close + 3;
        continue;
      }
      if (ConsumeStr("<?")) {
        flush_text();
        std::string target;
        XDB_RETURN_NOT_OK(ReadName(&target));
        SkipSpace();
        const char* close = FindStr("?>");
        if (close == nullptr || close >= limit_) return Fail("unterminated PI");
        sink_.Pi(dict_->Intern(target),
                 Slice(p_, static_cast<size_t>(close - p_)));
        p_ = close + 2;
        continue;
      }
      flush_text();
      XDB_RETURN_NOT_OK(ParseElement());
      continue;
    }
    // Character data run.
    const char* start = p_;
    while (!Eof() && *p_ != '<') p_++;
    XDB_RETURN_NOT_OK(
        DecodeText(Slice(start, static_cast<size_t>(p_ - start)), &text));
  }
}

}  // namespace

Status Parser::Parse(Slice xml, TokenWriter* out) {
  ParserCore<TokenSink> core(dict_, options_, xml, TokenSink{out});
  return core.Run();
}

Status Parser::ParseSax(Slice xml, SaxHandler* handler) {
  ParserCore<SaxSink> core(dict_, options_, xml, SaxSink{handler});
  return core.Run();
}

}  // namespace xdb
