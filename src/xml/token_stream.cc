#include "xml/token_stream.h"

#include "common/coding.h"

namespace xdb {

// Wire format per token: [kind u8] then kind-specific fields.
//   kStartElement:  [type u8][local varint][ns varint][prefix varint]
//   kAttribute:     [type u8][local varint][ns varint][prefix varint][value lp]
//   kNamespaceDecl: [prefix varint][uri varint]
//   kText:          [type u8][value lp]
//   kComment:       [value lp]
//   kPI:            [target varint][data lp]
//   others:         no fields
// ("lp" = length-prefixed bytes.)

void TokenWriter::StartDocument() {
  buf_.push_back(static_cast<char>(TokenKind::kStartDocument));
}
void TokenWriter::EndDocument() {
  buf_.push_back(static_cast<char>(TokenKind::kEndDocument));
}
void TokenWriter::StartElement(NameId local, NameId ns_uri, NameId prefix,
                               TypeAnno type) {
  buf_.push_back(static_cast<char>(TokenKind::kStartElement));
  buf_.push_back(static_cast<char>(type));
  PutVarint32(&buf_, local);
  PutVarint32(&buf_, ns_uri);
  PutVarint32(&buf_, prefix);
}
void TokenWriter::EndElement() {
  buf_.push_back(static_cast<char>(TokenKind::kEndElement));
}
void TokenWriter::Attribute(NameId local, Slice value, NameId ns_uri,
                            NameId prefix, TypeAnno type) {
  buf_.push_back(static_cast<char>(TokenKind::kAttribute));
  buf_.push_back(static_cast<char>(type));
  PutVarint32(&buf_, local);
  PutVarint32(&buf_, ns_uri);
  PutVarint32(&buf_, prefix);
  PutLengthPrefixed(&buf_, value);
}
void TokenWriter::NamespaceDecl(NameId prefix, NameId uri) {
  buf_.push_back(static_cast<char>(TokenKind::kNamespaceDecl));
  PutVarint32(&buf_, prefix);
  PutVarint32(&buf_, uri);
}
void TokenWriter::Text(Slice value, TypeAnno type) {
  buf_.push_back(static_cast<char>(TokenKind::kText));
  buf_.push_back(static_cast<char>(type));
  PutLengthPrefixed(&buf_, value);
}
void TokenWriter::Comment(Slice value) {
  buf_.push_back(static_cast<char>(TokenKind::kComment));
  PutLengthPrefixed(&buf_, value);
}
void TokenWriter::ProcessingInstruction(NameId target, Slice data) {
  buf_.push_back(static_cast<char>(TokenKind::kProcessingInstruction));
  PutVarint32(&buf_, target);
  PutLengthPrefixed(&buf_, data);
}

void TokenWriter::Append(const Token& t) {
  switch (t.kind) {
    case TokenKind::kStartDocument: StartDocument(); break;
    case TokenKind::kEndDocument: EndDocument(); break;
    case TokenKind::kStartElement:
      StartElement(t.local, t.ns_uri, t.prefix, t.type);
      break;
    case TokenKind::kEndElement: EndElement(); break;
    case TokenKind::kAttribute:
      Attribute(t.local, t.text, t.ns_uri, t.prefix, t.type);
      break;
    case TokenKind::kNamespaceDecl: NamespaceDecl(t.local, t.ns_uri); break;
    case TokenKind::kText: Text(t.text, t.type); break;
    case TokenKind::kComment: Comment(t.text); break;
    case TokenKind::kProcessingInstruction:
      ProcessingInstruction(t.local, t.text);
      break;
  }
}

namespace {
bool ReadVarName(const char** p, const char* limit, NameId* out) {
  uint32_t v;
  size_t n = GetVarint32(*p, limit, &v);
  if (n == 0) return false;
  *p += n;
  *out = v;
  return true;
}

bool ReadLp(const char** p, const char* limit, Slice* out) {
  uint64_t len;
  size_t n = GetVarint64(*p, limit, &len);
  if (n == 0 || *p + n + len > limit) return false;
  *out = Slice(*p + n, static_cast<size_t>(len));
  *p += n + len;
  return true;
}
}  // namespace

Result<bool> TokenReader::Next(Token* token) {
  if (p_ >= limit_) return false;
  *token = Token();
  token->kind = static_cast<TokenKind>(*p_++);
  switch (token->kind) {
    case TokenKind::kStartDocument:
    case TokenKind::kEndDocument:
    case TokenKind::kEndElement:
      return true;
    case TokenKind::kStartElement:
      if (p_ >= limit_) return Status::Corruption("truncated token");
      token->type = static_cast<TypeAnno>(*p_++);
      if (!ReadVarName(&p_, limit_, &token->local) ||
          !ReadVarName(&p_, limit_, &token->ns_uri) ||
          !ReadVarName(&p_, limit_, &token->prefix))
        return Status::Corruption("truncated element token");
      return true;
    case TokenKind::kAttribute:
      if (p_ >= limit_) return Status::Corruption("truncated token");
      token->type = static_cast<TypeAnno>(*p_++);
      if (!ReadVarName(&p_, limit_, &token->local) ||
          !ReadVarName(&p_, limit_, &token->ns_uri) ||
          !ReadVarName(&p_, limit_, &token->prefix) ||
          !ReadLp(&p_, limit_, &token->text))
        return Status::Corruption("truncated attribute token");
      return true;
    case TokenKind::kNamespaceDecl:
      if (!ReadVarName(&p_, limit_, &token->local) ||
          !ReadVarName(&p_, limit_, &token->ns_uri))
        return Status::Corruption("truncated namespace token");
      return true;
    case TokenKind::kText:
      if (p_ >= limit_) return Status::Corruption("truncated token");
      token->type = static_cast<TypeAnno>(*p_++);
      if (!ReadLp(&p_, limit_, &token->text))
        return Status::Corruption("truncated text token");
      return true;
    case TokenKind::kComment:
      if (!ReadLp(&p_, limit_, &token->text))
        return Status::Corruption("truncated comment token");
      return true;
    case TokenKind::kProcessingInstruction:
      if (!ReadVarName(&p_, limit_, &token->local) ||
          !ReadLp(&p_, limit_, &token->text))
        return Status::Corruption("truncated PI token");
      return true;
  }
  return Status::Corruption("unknown token kind");
}

}  // namespace xdb
