// The buffered token stream, Section 3.2 of the paper.
//
// "To reduce the overhead [of SAX/DOM], we use a proprietary parsing and
// validation interface, which is the buffered token stream. The token stream
// is a binary stream of tokens with namespace prefixes resolved, namespace
// and attribute order adjusted, and optionally with type annotation if a
// document is Schema-validated."
//
// The stream is one contiguous binary buffer; consumers iterate it with a
// TokenReader whose Token views point into the buffer — no per-event virtual
// dispatch and no per-token allocation.
#ifndef XDB_XML_TOKEN_STREAM_H_
#define XDB_XML_TOKEN_STREAM_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "xml/name_dictionary.h"

namespace xdb {

enum class TokenKind : uint8_t {
  kStartDocument = 1,
  kEndDocument = 2,
  kStartElement = 3,
  kEndElement = 4,
  kAttribute = 5,
  kNamespaceDecl = 6,
  kText = 7,
  kComment = 8,
  kProcessingInstruction = 9,
};

/// Simple-type annotations attached by schema validation (a compact stand-in
/// for the XML Schema type system; enough to drive typed value indexing).
enum class TypeAnno : uint8_t {
  kUntyped = 0,
  kString = 1,
  kDouble = 2,
  kDecimal = 3,
  kInteger = 4,
  kDate = 5,
  kBoolean = 6,
};

struct Token {
  TokenKind kind = TokenKind::kStartDocument;
  NameId local = kEmptyNameId;   // element/attribute local name; PI target;
                                 // namespace-decl prefix
  NameId ns_uri = kEmptyNameId;  // resolved namespace URI
  NameId prefix = kEmptyNameId;  // original prefix (serialization fidelity)
  Slice text;                    // attribute/text/comment/PI content
  TypeAnno type = TypeAnno::kUntyped;
};

/// Appends tokens to a contiguous binary buffer.
class TokenWriter {
 public:
  void StartDocument();
  void EndDocument();
  void StartElement(NameId local, NameId ns_uri = kEmptyNameId,
                    NameId prefix = kEmptyNameId,
                    TypeAnno type = TypeAnno::kUntyped);
  void EndElement();
  void Attribute(NameId local, Slice value, NameId ns_uri = kEmptyNameId,
                 NameId prefix = kEmptyNameId,
                 TypeAnno type = TypeAnno::kUntyped);
  void NamespaceDecl(NameId prefix, NameId uri);
  void Text(Slice value, TypeAnno type = TypeAnno::kUntyped);
  void Comment(Slice value);
  void ProcessingInstruction(NameId target, Slice data);

  /// Appends a pre-encoded token verbatim (stream-to-stream pipelines).
  void Append(const Token& t);

  Slice data() const { return Slice(buf_); }
  const std::string& buffer() const { return buf_; }
  std::string* mutable_buffer() { return &buf_; }
  void Clear() { buf_.clear(); }
  size_t size_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Iterates a token buffer. Token::text views into the buffer, which must
/// outlive the reader.
class TokenReader {
 public:
  explicit TokenReader(Slice data) : p_(data.data()), limit_(p_ + data.size()) {}

  /// Reads the next token. Returns false at end of stream.
  Result<bool> Next(Token* token);

  bool AtEnd() const { return p_ >= limit_; }

 private:
  const char* p_;
  const char* limit_;
};

}  // namespace xdb

#endif  // XDB_XML_TOKEN_STREAM_H_
