// Custom non-validating XML parser producing the buffered token stream.
//
// "Both validating and non-validating parsers are custom-made for
// high-performance" (Section 3.2). The parser resolves namespace prefixes,
// adjusts namespace and attribute order (namespaces first, attributes sorted
// by name id), and decodes entity references. A SAX-style per-event virtual
// callback interface is provided as the baseline the paper argues against
// ("significant overhead of excessive procedure calls for event handling").
#ifndef XDB_XML_PARSER_H_
#define XDB_XML_PARSER_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "xml/name_dictionary.h"
#include "xml/token_stream.h"

namespace xdb {

struct ParserOptions {
  /// Drop text nodes that are entirely whitespace (data-centric documents).
  bool strip_whitespace_text = false;
};

/// Per-event callback interface (the SAX-like baseline for experiment E4).
/// Each event costs a virtual call; values are passed as transient slices.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;
  virtual void OnStartDocument() {}
  virtual void OnEndDocument() {}
  virtual void OnStartElement(NameId local, NameId ns_uri, NameId prefix) = 0;
  virtual void OnEndElement() = 0;
  virtual void OnAttribute(NameId local, NameId ns_uri, NameId prefix,
                           Slice value) = 0;
  virtual void OnNamespaceDecl(NameId /*prefix*/, NameId /*uri*/) {}
  virtual void OnText(Slice value) = 0;
  virtual void OnComment(Slice /*value*/) {}
  virtual void OnProcessingInstruction(NameId /*target*/, Slice /*data*/) {}
};

class Parser {
 public:
  explicit Parser(NameDictionary* dict, ParserOptions options = {})
      : dict_(dict), options_(options) {}

  /// Parses `xml` into a buffered token stream appended to `out`.
  Status Parse(Slice xml, TokenWriter* out);

  /// Parses `xml`, dispatching one virtual call per event (baseline).
  Status ParseSax(Slice xml, SaxHandler* handler);

 private:
  NameDictionary* dict_;
  ParserOptions options_;
};

}  // namespace xdb

#endif  // XDB_XML_PARSER_H_
