// NameDictionary: database-wide integer encoding of XML names.
//
// "In the stored XML data, all the names for elements, attributes, and
// namespaces are encoded using integers across the entire database"
// (Section 3.1). Local names, namespace prefixes, namespace URIs and PI
// targets all intern into one id space. Id 0 is reserved for the empty
// string (no namespace / no prefix).
#ifndef XDB_XML_NAME_DICTIONARY_H_
#define XDB_XML_NAME_DICTIONARY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace xdb {

using NameId = uint32_t;

constexpr NameId kEmptyNameId = 0;

class NameDictionary {
 public:
  NameDictionary() { Intern(""); }

  /// Returns the id for `name`, creating it if new. Thread-safe.
  NameId Intern(Slice name);

  /// Returns the id for `name` without creating it; kInvalidNameId if absent.
  static constexpr NameId kInvalidNameId = 0xFFFFFFFFu;
  NameId Lookup(Slice name) const;

  /// Returns the string for an id. Ids come only from Intern, so an unknown
  /// id indicates corruption.
  Result<std::string> Name(NameId id) const;

  size_t size() const;

  /// Serialization for the catalog.
  void Save(std::string* dst) const;
  Status Load(Slice data);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, NameId> ids_;
  std::vector<std::string> names_;
};

}  // namespace xdb

#endif  // XDB_XML_NAME_DICTIONARY_H_
