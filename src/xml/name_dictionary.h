// NameDictionary: database-wide integer encoding of XML names.
//
// "In the stored XML data, all the names for elements, attributes, and
// namespaces are encoded using integers across the entire database"
// (Section 3.1). Local names, namespace prefixes, namespace URIs and PI
// targets all intern into one id space. Id 0 is reserved for the empty
// string (no namespace / no prefix).
#ifndef XDB_XML_NAME_DICTIONARY_H_
#define XDB_XML_NAME_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace xdb {

using NameId = uint32_t;

constexpr NameId kEmptyNameId = 0;

class NameDictionary {
 public:
  NameDictionary() { Intern(""); }

  /// Returns the id for `name`, creating it if new. Thread-safe.
  NameId Intern(Slice name) XDB_EXCLUDES(mu_);

  /// Returns the id for `name` without creating it; kInvalidNameId if absent.
  static constexpr NameId kInvalidNameId = 0xFFFFFFFFu;
  NameId Lookup(Slice name) const XDB_EXCLUDES(mu_);

  /// Returns the string for an id. Ids come only from Intern, so an unknown
  /// id indicates corruption.
  Result<std::string> Name(NameId id) const XDB_EXCLUDES(mu_);

  size_t size() const XDB_EXCLUDES(mu_);

  /// Serialization for the catalog.
  void Save(std::string* dst) const XDB_EXCLUDES(mu_);
  Status Load(Slice data) XDB_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{LockRank::kNameDictionary};
  std::unordered_map<std::string, NameId> ids_ XDB_GUARDED_BY(mu_);
  std::vector<std::string> names_ XDB_GUARDED_BY(mu_);
};

}  // namespace xdb

#endif  // XDB_XML_NAME_DICTIONARY_H_
