#include "xml/node_id.h"

#include <cassert>

namespace xdb {
namespace nodeid {

namespace {
constexpr uint32_t kDirectChildren = 126;   // bytes 02, 04, ..., FC

bool IsEven(unsigned char b) { return (b & 1) == 0; }

// Appends an ID strictly greater than `left` (valid relative) of the same
// level, for "insert after last".
void AfterLast(Slice left, std::string* out) {
  out->assign(left.data(), left.size());
  unsigned char e = static_cast<unsigned char>(out->back());
  if (e <= 0xFC) {
    out->back() = static_cast<char>(e + 2);
  } else {
    // 0xFE: no even headroom in this byte; extend.
    out->back() = static_cast<char>(e + 1);  // 0xFF, odd
    out->push_back(static_cast<char>(0x80));
  }
}

// Appends an ID strictly less than `right` (valid relative); "insert before
// first". Fails only at the absolute floor (right == [0x00]).
Status BeforeFirst(Slice right, std::string* out) {
  unsigned char b = static_cast<unsigned char>(right[0]);
  if (b == 0x00) return Status::Full("no node id before the minimum");
  if (IsEven(b)) {
    // right = [b]; produce [b-1, 0x80]: b-1 is odd so the level extends,
    // leaving unbounded room for further before-inserts.
    out->push_back(static_cast<char>(b - 1));
    out->push_back(static_cast<char>(0x80));
    return Status::OK();
  }
  if (b >= 0x03) {
    // right = [b, tail...]; [b-1] is even and strictly smaller, with room
    // left below it.
    out->push_back(static_cast<char>(b - 1));
    return Status::OK();
  }
  // b == 0x01: keep the prefix and recurse into the tail so the encoding
  // extends instead of bottoming out.
  Slice tail(right.data() + 1, right.size() - 1);
  std::string sub;
  Status st = BeforeFirst(tail, &sub);
  if (st.ok()) {
    out->push_back(static_cast<char>(0x01));
    out->append(sub);
    return Status::OK();
  }
  // tail is the floor [0x00]: the only remaining ID is [0x00] itself.
  out->push_back(static_cast<char>(0x00));
  return Status::OK();
}

}  // namespace

void AppendChildId(uint32_t n, std::string* dst) {
  assert(n >= 1);
  // Three ordered tiers, O(log n) bytes (wide fan-outs stay cheap):
  //   n in [1, 126]:     [2n]                       (0x02..0xFC)
  //   n in [127, 254]:   [0xFD, 2(n-127)]           (second byte even)
  //   n >= 255:          [0xFF, 0x81+2(L-1), L base-128 digits]
  // Digit bytes are odd (2d+1) except the final one (2d), so each level
  // still ends at its first even byte; byte order == sibling order because
  // tier markers and the length byte are monotone in n.
  if (n <= kDirectChildren) {
    dst->push_back(static_cast<char>(2 * n));
    return;
  }
  if (n <= 254) {
    dst->push_back(static_cast<char>(0xFD));
    dst->push_back(static_cast<char>(2 * (n - 127)));
    return;
  }
  uint32_t v = n - 255;
  unsigned char digits[5];
  int len = 0;
  do {
    digits[len++] = static_cast<unsigned char>(v % 128);
    v /= 128;
  } while (v != 0);
  dst->push_back(static_cast<char>(0xFF));
  dst->push_back(static_cast<char>(0x81 + 2 * (len - 1)));
  for (int i = len - 1; i >= 1; i--)
    dst->push_back(static_cast<char>(2 * digits[i] + 1));  // odd: continue
  dst->push_back(static_cast<char>(2 * digits[0]));        // even: terminate
}

std::string ChildId(uint32_t n) {
  std::string s;
  AppendChildId(n, &s);
  return s;
}

bool IsValidRelative(Slice rel) {
  if (rel.empty()) return false;
  for (size_t i = 0; i + 1 < rel.size(); i++) {
    if (IsEven(static_cast<unsigned char>(rel[i]))) return false;
  }
  return IsEven(static_cast<unsigned char>(rel[rel.size() - 1]));
}

bool IsValidAbsolute(Slice abs) {
  // Every level is odd* even, so validity == the last byte being even (or
  // empty); but guard against pathological all-odd tails.
  if (abs.empty()) return true;
  return IsEven(static_cast<unsigned char>(abs[abs.size() - 1]));
}

Status SplitLevels(Slice abs, std::vector<Slice>* levels) {
  levels->clear();
  size_t start = 0;
  for (size_t i = 0; i < abs.size(); i++) {
    if (IsEven(static_cast<unsigned char>(abs[i]))) {
      levels->push_back(Slice(abs.data() + start, i - start + 1));
      start = i + 1;
    }
  }
  if (start != abs.size())
    return Status::Corruption("absolute node id has a dangling level");
  return Status::OK();
}

Result<int> Depth(Slice abs) {
  int depth = 0;
  size_t trailing = 0;
  for (size_t i = 0; i < abs.size(); i++) {
    if (IsEven(static_cast<unsigned char>(abs[i]))) {
      depth++;
      trailing = i + 1;
    }
  }
  if (trailing != abs.size())
    return Status::Corruption("absolute node id has a dangling level");
  return depth;
}

Result<Slice> Parent(Slice abs) {
  if (abs.empty()) return Status::InvalidArgument("root has no parent");
  if (!IsValidAbsolute(abs)) return Status::Corruption("invalid node id");
  // Strip the final level: drop the trailing even byte and any odd bytes
  // immediately before it.
  size_t end = abs.size() - 1;  // index of final (even) byte
  while (end > 0 && !IsEven(static_cast<unsigned char>(abs[end - 1]))) end--;
  return Slice(abs.data(), end);
}

bool IsAncestor(Slice a, Slice d) {
  return a.size() < d.size() && d.StartsWith(a);
}

Status Between(Slice left, Slice right, std::string* out) {
  out->clear();
  if (left.empty() && right.empty()) {
    out->push_back(static_cast<char>(0x80));  // mid-range: room both sides
    return Status::OK();
  }
  if (right.empty()) {
    AfterLast(left, out);
    return Status::OK();
  }
  if (left.empty()) return BeforeFirst(right, out);

  assert(left.Compare(right) < 0);
  // Neither can be a prefix of the other (a valid level ends with an even
  // byte, which would terminate the longer one at the same point).
  size_t i = 0;
  while (i < left.size() && i < right.size() && left[i] == right[i]) i++;
  assert(i < left.size() && i < right.size());
  const unsigned char a = static_cast<unsigned char>(left[i]);
  const unsigned char b = static_cast<unsigned char>(right[i]);
  assert(a < b);
  out->assign(left.data(), i);

  if (b - a >= 2) {
    if (!IsEven(a)) {
      // a odd: a+1 is even and strictly inside (a, b).
      out->push_back(static_cast<char>(a + 1));
    } else if (a + 2 < b) {
      out->push_back(static_cast<char>(a + 2));
    } else {
      // Only a+1 (odd) lies strictly between: extend the level.
      out->push_back(static_cast<char>(a + 1));
      out->push_back(static_cast<char>(0x80));
    }
    return Status::OK();
  }

  // Adjacent bytes (b == a + 1).
  if (!IsEven(a)) {
    // left continues past i (odd bytes extend), so bumping left's tail stays
    // below right at byte i.
    AfterLast(left, out);
    return Status::OK();
  }
  // a even: left ends at i; right continues with a tail after its odd byte b.
  out->push_back(static_cast<char>(b));
  Slice tail(right.data() + i + 1, right.size() - i - 1);
  std::string sub;
  XDB_RETURN_NOT_OK(BeforeFirst(tail, &sub));
  out->append(sub);
  return Status::OK();
}

std::string ToString(Slice abs) {
  static const char* kHex = "0123456789ABCDEF";
  std::string s;
  size_t level_start = 0;
  for (size_t i = 0; i < abs.size(); i++) {
    unsigned char b = static_cast<unsigned char>(abs[i]);
    s.push_back(kHex[b >> 4]);
    s.push_back(kHex[b & 0xF]);
    if ((b & 1) == 0 && i + 1 < abs.size()) {
      s.push_back('.');
      level_start = i + 1;
    }
  }
  (void)level_start;
  if (s.empty()) s = "00";
  return s;
}

}  // namespace nodeid
}  // namespace xdb
