// Serializer: token stream -> XML text (the "serialization services" of the
// paper's Figure 8 runtime architecture).
#ifndef XDB_XML_SERIALIZER_H_
#define XDB_XML_SERIALIZER_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "xml/name_dictionary.h"
#include "xml/token_stream.h"

namespace xdb {

struct SerializerOptions {
  /// Pretty-print with 2-space indentation (changes whitespace only).
  bool indent = false;
  /// Omit the document node wrapper events if present.
  bool omit_declaration = true;
};

/// Serializes a token buffer to XML text. Works for any token source —
/// parser output, packed-record traversal, constructor results — which is
/// what lets all runtime paths share this one sink.
Status SerializeTokens(Slice token_buffer, const NameDictionary& dict,
                       const SerializerOptions& options, std::string* out);

/// Escapes `s` as XML character data into `out`.
void EscapeText(Slice s, std::string* out);
/// Escapes `s` as a double-quoted attribute value into `out`.
void EscapeAttribute(Slice s, std::string* out);

}  // namespace xdb

#endif  // XDB_XML_SERIALIZER_H_
