#include "xml/name_dictionary.h"

#include "common/coding.h"

namespace xdb {

NameId NameDictionary::Intern(Slice name) {
  MutexLock lock(mu_);
  auto it = ids_.find(name.ToString());
  if (it != ids_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  names_.push_back(name.ToString());
  ids_.emplace(name.ToString(), id);
  return id;
}

NameId NameDictionary::Lookup(Slice name) const {
  MutexLock lock(mu_);
  auto it = ids_.find(name.ToString());
  return it == ids_.end() ? kInvalidNameId : it->second;
}

Result<std::string> NameDictionary::Name(NameId id) const {
  MutexLock lock(mu_);
  if (id >= names_.size()) return Status::Corruption("unknown name id");
  return names_[id];
}

size_t NameDictionary::size() const {
  MutexLock lock(mu_);
  return names_.size();
}

void NameDictionary::Save(std::string* dst) const {
  MutexLock lock(mu_);
  PutVarint64(dst, names_.size());
  for (const auto& n : names_) PutLengthPrefixed(dst, n);
}

Status NameDictionary::Load(Slice data) {
  MutexLock lock(mu_);
  uint64_t count;
  size_t n = GetVarint64(data.data(), data.data() + data.size(), &count);
  if (n == 0) return Status::Corruption("bad name dictionary header");
  data.RemovePrefix(n);
  names_.clear();
  ids_.clear();
  for (uint64_t i = 0; i < count; i++) {
    Slice name;
    if (!GetLengthPrefixed(&data, &name))
      return Status::Corruption("truncated name dictionary");
    ids_.emplace(name.ToString(), static_cast<NameId>(names_.size()));
    names_.push_back(name.ToString());
  }
  return Status::OK();
}

}  // namespace xdb
