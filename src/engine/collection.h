// Collection: a base table with an XML column, backed by the paper's
// Figure 2 layout — base-table DocID index, internal XML table of packed
// records, NodeID index, and any number of XPath value indexes, all sharing
// one table space.
#ifndef XDB_ENGINE_COLLECTION_H_
#define XDB_ENGINE_COLLECTION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "cc/transaction.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/catalog.h"
#include "index/nodeid_index.h"
#include "index/structural_index.h"
#include "index/value_index.h"
#include "obs/query_trace.h"
#include "pack/record_builder.h"
#include "pack/tree_cursor.h"
#include "query/access_path.h"
#include "query/executor.h"
#include "query/plan_cache.h"
#include "query/stats.h"
#include "storage/buffer_manager.h"
#include "storage/record_manager.h"
#include "storage/tablespace.h"
#include "xdm/item.h"
#include "xpath/ast.h"

namespace xdb {

namespace xpath {
class QueryTree;
}  // namespace xpath

class Engine;

struct CollectionOptions {
  bool mvcc = false;              // enable document-level multiversioning
  std::string schema;             // registered schema to validate against
  size_t record_budget = 3000;    // packing budget (the p knob)
  size_t buffer_pages = 512;
  /// Buffer pool shards (0 = engine default, which itself defaults to
  /// BufferManager::DefaultShardCount for the pool size).
  size_t buffer_shards = 0;
  uint32_t page_size = kDefaultPageSize;
};

/// How the executor accessed the data, plus its work counters — benches and
/// EXPERIMENTS.md report these.
struct QueryStats {
  query::AccessMethod method = query::AccessMethod::kFullScan;
  uint64_t index_postings = 0;    // entries read from value indexes
  uint64_t candidate_docs = 0;    // docs identified before recheck
  uint64_t candidate_anchors = 0; // node anchors identified before recheck
  uint64_t docs_evaluated = 0;    // documents QuickXScan actually ran over
  uint64_t records_fetched = 0;   // XML records fetched from storage
  uint64_t scan_events = 0;       // QuickXScan events pumped (all scans)
  uint64_t scan_instances = 0;    // pattern instances created (all scans)
  uint64_t scan_peak_live = 0;    // max live instances in any one scan
  bool rechecked = false;
  std::string explain;
};

struct QueryResult {
  NodeSequence nodes;
  QueryStats stats;
  /// Populated when QueryOptions::explain/trace was set (profile.enabled
  /// says so); default-constructed and empty otherwise.
  obs::QueryProfile profile;
};

using query::ForceMethod;

struct QueryOptions {
  ForceMethod force = ForceMethod::kAuto;
  bool want_values = false;  // compute result nodes' string values
  /// Threads evaluating this query, including the caller. 0 = the engine
  /// default (EngineOptions::num_query_threads), 1 = serial. Values above 1
  /// only take effect when the engine has a query pool; small candidate
  /// sets fall back to serial regardless (see query::PartitionForParallelism).
  int parallelism = 0;
  /// Populate QueryResult::profile with the chosen access path, per-phase
  /// cardinalities and timings (see obs::QueryProfile::PlanText()).
  bool explain = false;
  /// Implies explain; additionally records per-step trace lines (index probe
  /// details, candidate lists) into profile.trace_lines.
  bool trace = false;
  /// Plan with the Section 4.3 rules even when collected statistics are
  /// available, and bypass the plan cache. Differential testing uses this to
  /// check that cost-based and heuristic plans return identical answers.
  bool use_heuristic_planner = false;
  /// Freshness bound for replica reads: the query only runs once the
  /// engine's applied-CSN watermark reaches this value, waiting at most
  /// freshness_timeout_us and failing with kStale otherwise. 0 (default)
  /// reads whatever is applied; on a primary the bound is trivially
  /// satisfied. Callers get read-your-writes by passing the primary
  /// shipper's EndCsn() (or any CSN an earlier write observed).
  uint64_t min_csn = 0;
  /// Microseconds WaitForFreshness may block for min_csn (0 = fail
  /// immediately when the replica is behind).
  uint64_t freshness_timeout_us = 0;
};

/// Plan plus planner narration — what Plan() hands to the executor.
struct QueryPlanExec {
  query::QueryPlan plan;
};

/// Per-collection outcome of Engine::Scrub() — what was scanned, what was
/// damaged, and how much of the data survived repair.
struct CollectionScrubReport {
  std::string collection;
  uint64_t pages_scanned = 0;
  uint64_t checksum_failures = 0;   // pages failing CRC (or unreadable)
  uint64_t envelope_failures = 0;   // data pages with a broken slot layout
  bool rebuilt = false;             // storage was reset and repopulated
  uint64_t docs_salvaged = 0;       // re-inserted from still-readable records
  uint64_t docs_recovered_from_wal = 0;  // restored by filtered WAL replay
  uint64_t docs_lost = 0;           // present before, unrecoverable after
  std::vector<std::string> notes;
};

class Collection {
 public:
  ~Collection() = default;
  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;

  const std::string& name() const { return meta_.name; }
  bool mvcc_enabled() const { return meta_.mvcc_enabled; }

  /// True when structural corruption was found at open time: every data
  /// operation returns kCorruption until Engine::Scrub() repairs the
  /// collection.
  bool needs_repair() const { return needs_repair_; }
  const std::string& repair_reason() const { return repair_reason_; }

  /// Parses (and validates, when the collection has a schema) and stores a
  /// document. A null txn runs the operation autocommitted.
  Result<uint64_t> InsertDocument(Transaction* txn, Slice xml);

  /// Stores an already-tokenized document (constructor pipelines insert
  /// without an XML-text round trip).
  Result<uint64_t> InsertTokens(Transaction* txn, Slice tokens)
      XDB_EXCLUDES(latch_) XDB_EXCLUDES(docid_mu_);

  /// Serializes the stored document back to XML text.
  Result<std::string> GetDocumentText(Transaction* txn, uint64_t doc_id)
      XDB_EXCLUDES(latch_);

  Status DeleteDocument(Transaction* txn, uint64_t doc_id)
      XDB_EXCLUDES(latch_);

  /// Subdocument update: replaces the value of one text node. Under MVCC
  /// this creates a new document version (copy-on-write of the containing
  /// record); otherwise it updates the record in place. Takes a node-ID
  /// subtree lock on the text node's parent.
  Status UpdateTextNode(Transaction* txn, uint64_t doc_id, Slice node_id,
                        Slice new_text) XDB_EXCLUDES(latch_);

  /// Subdocument insert: parses `fragment` (one root element) and grafts it
  /// as a new child of `parent_id`, immediately after `after_sibling_id`
  /// (empty = append as last child). The new subtree gets a node ID from
  /// Between(), so existing IDs — and therefore all index entries for other
  /// nodes — are untouched ("there is always space for insertion in the
  /// middle by extending the node ID length"). Returns the new subtree
  /// root's absolute node ID. Locking collections only (kNotSupported under
  /// MVCC).
  Result<std::string> InsertSubtree(Transaction* txn, uint64_t doc_id,
                                    Slice parent_id, Slice after_sibling_id,
                                    Slice fragment) XDB_EXCLUDES(latch_);

  /// Subdocument delete: removes the subtree rooted at `node_id` (any
  /// non-root node), including all records it spans. Locking collections
  /// only.
  Status DeleteSubtree(Transaction* txn, uint64_t doc_id, Slice node_id)
      XDB_EXCLUDES(latch_);

  /// Creates an XPath value index and backfills it from existing documents.
  Status CreateValueIndex(const ValueIndexDef& def)
      XDB_EXCLUDES(latch_) XDB_EXCLUDES(ddl_mu_);

  /// Drops a value index. Bumps the index-structure version and clears the
  /// plan cache so no compiled plan ever probes the destroyed index.
  Status DropValueIndex(const std::string& name)
      XDB_EXCLUDES(latch_) XDB_EXCLUDES(ddl_mu_);

  /// Creates a structural (pre,post)-interval index and backfills it from
  /// existing documents. Same DDL discipline as CreateValueIndex: logged to
  /// the WAL under ddl_mu_, crash-recovers and replicates.
  Status CreateStructuralIndex(const StructuralIndexDef& def)
      XDB_EXCLUDES(latch_) XDB_EXCLUDES(ddl_mu_);

  /// Drops a structural index (same invalidation contract as value-index
  /// drop: index-version bump + plan-cache clear).
  Status DropStructuralIndex(const std::string& name)
      XDB_EXCLUDES(latch_) XDB_EXCLUDES(ddl_mu_);

  /// Evaluates an XPath query over the collection. Compiled plans are served
  /// from the per-collection plan cache when enabled (keyed by query text,
  /// force mode, want_values and the stats epoch); a hit skips parsing,
  /// planning and QueryTree compilation entirely.
  Result<QueryResult> Query(Transaction* txn, Slice xpath,
                            const QueryOptions& options = {});
  /// Like Query but for an already-parsed path; never consults the cache.
  Result<QueryResult> ExecutePath(Transaction* txn, const xpath::Path& path,
                                  const QueryOptions& options)
      XDB_EXCLUDES(latch_);

  Result<std::vector<uint64_t>> ListDocIds() XDB_EXCLUDES(latch_);
  Result<uint64_t> DocCount() XDB_EXCLUDES(latch_);

  /// Drops versions of `doc_id` older than the given snapshot and frees the
  /// records only they referenced (MVCC garbage collection; a no-op for
  /// non-MVCC collections). Callers guarantee no active reader holds an
  /// older snapshot.
  Status VacuumVersions(uint64_t doc_id, uint64_t oldest_live_snapshot)
      XDB_EXCLUDES(latch_);

  /// Serializes the subtree a handle points to (deferred fetch).
  Result<std::string> SerializeSubtree(Transaction* txn, uint64_t doc_id,
                                       Slice node_id) XDB_EXCLUDES(latch_);

  // Component access for tests and benchmarks.
  query::CollectionStats* stats() { return &stats_; }
  query::PlanCache* plan_cache() { return &plan_cache_; }
  uint64_t index_version() const {
    return index_version_.load(std::memory_order_acquire);
  }
  RecordManager* records() { return records_.get(); }
  NodeIdIndex* node_index() { return node_index_.get(); }
  VersionManager* versions() { return versions_.get(); }
  ValueIndex* FindValueIndex(const std::string& name);
  StructuralIndex* FindStructuralIndex(const std::string& name);
  BufferManager* buffer_manager() { return buffer_.get(); }
  const CollectionMeta& meta() const { return meta_; }
  uint64_t storage_bytes() const { return records_->StorageBytes(); }

 private:
  friend class Engine;
  Collection() = default;

  // Locking helpers honoring the transaction's isolation mode; autocommit
  // transactions are created/finished by the public methods.
  Status ReadLockDoc(Transaction* txn, uint64_t doc_id);
  Status WriteLockDoc(Transaction* txn, uint64_t doc_id);

  Result<uint64_t> InsertTokensLocked(Transaction* txn, Slice tokens,
                                      uint64_t forced_doc_id)
      XDB_EXCLUDES(latch_);
  Status DeleteDocumentLocked(Transaction* txn, uint64_t doc_id)
      XDB_REQUIRES(latch_);
  Status AddValueIndexEntries(uint64_t doc_id, Slice tokens,
                              ValueIndex* only_index) XDB_REQUIRES(latch_);
  Status RemoveValueIndexEntries(Transaction* txn, uint64_t doc_id)
      XDB_REQUIRES(latch_);
  /// Adds one document's structural entries to every (or one) structural
  /// index, deriving (pre, post, level) from the freshly-inserted token
  /// stream's canonical Dewey walk.
  Status AddStructuralIndexEntries(uint64_t doc_id, Slice tokens,
                                   StructuralIndex* only_index)
      XDB_REQUIRES(latch_);
  /// Re-derives entries from stored records (real node IDs, so documents
  /// reshaped by Between()-allocated subtree inserts stay faithful) and
  /// adds them to every (or one) structural index.
  Status AddStructuralIndexEntriesFromStorage(uint64_t doc_id,
                                              StructuralIndex* only_index)
      XDB_REQUIRES(latch_);
  /// Removes one document's structural entries (derived from stored
  /// records) from every structural index.
  Status RemoveStructuralIndexEntries(uint64_t doc_id) XDB_REQUIRES(latch_);
  Status MaintainValueIndexesForTextUpdate(uint64_t doc_id, Slice text_node_id,
                                           NodeLocator* locator,
                                           Slice old_text, Slice new_text)
      XDB_REQUIRES(latch_);

  Result<std::string> InsertSubtreeLocked(Transaction* txn, uint64_t doc_id,
                                          Slice parent_id,
                                          Slice after_sibling_id,
                                          Slice fragment_tokens)
      XDB_REQUIRES(latch_);
  Status DeleteSubtreeLocked(Transaction* txn, uint64_t doc_id, Slice node_id)
      XDB_REQUIRES(latch_);
  /// Re-derives all value index entries of one document from stored data.
  Status ReindexDocument(uint64_t doc_id) XDB_REQUIRES(latch_);
  /// RIDs of all records fully contained in the subtree at `node_id`,
  /// starting from proxies inside `record` (recursive across records).
  Status CollectSubtreeRecords(uint64_t doc_id, Slice node_id, Slice record,
                               std::vector<Rid>* out) XDB_REQUIRES(latch_);

  /// Compiles one execution-ready plan for `path`: plans (cost-based when
  /// stats are valid and use_heuristic_planner is off), compiles the full
  /// QueryTree, and for node-level plans also the recheck residual tree and
  /// prefix pattern. The returned plan is immutable and shareable (this is
  /// what the plan cache stores).
  Result<std::shared_ptr<const query::CompiledPlan>> CompileForExecution(
      xpath::Path&& path, const QueryOptions& options) XDB_EXCLUDES(latch_);

  /// Runs a compiled plan. `cache_state` ("hit"/"miss"/"off") is surfaced in
  /// EXPLAIN; `plan_wall_us` is the planning time to attribute (0 on a cache
  /// hit). When the plan's index-structure version no longer matches (an
  /// index was dropped or the storage rebuilt since compile), sets
  /// *plan_stale and fails — callers replan and retry; the stale check is
  /// what distinguishes this from other kBusy failures (pinned buffer
  /// frames), which must NOT be retried with a fresh plan.
  Result<QueryResult> ExecuteCompiled(Transaction* txn,
                                      const query::CompiledPlan& cp,
                                      const QueryOptions& options,
                                      const char* cache_state,
                                      uint64_t plan_wall_us, bool* plan_stale)
      XDB_EXCLUDES(latch_);

  Status RecheckAnchors(Transaction* txn,
                        const xpath::QueryTree* residual_tree,
                        const xpath::Path& prefix_pattern,
                        const std::vector<Posting>& anchors,
                        const QueryOptions& options, NodeLocator* locator,
                        QueryResult* result) XDB_EXCLUDES(latch_);

  /// Effective thread count for one query: options.parallelism, falling back
  /// to the engine default, clamped to 1 when the engine has no pool.
  int EffectiveParallelism(const QueryOptions& options) const;

  /// Evaluates QuickXScan over `docs[begin, end)` serially, appending
  /// matches to `result` in list order. A non-null `txn` S-locks each doc
  /// first (the serial executor); the parallel executor pre-locks on the
  /// caller's thread and passes null. Takes latch_ shared per document.
  Status EvalDocRange(Transaction* txn, const std::vector<uint64_t>& docs,
                      size_t begin, size_t end, const xpath::QueryTree* tree,
                      NodeLocator* locator, QueryResult* result)
      XDB_EXCLUDES(latch_);

  /// Fans EvalDocRange out over the engine's query pool (one task per chunk
  /// from query::PartitionForParallelism) and merges per-chunk results in
  /// chunk order, reproducing the serial append order exactly. Doc S-locks
  /// are all taken on the calling thread first (the transaction's lock table
  /// is not thread-safe, and the locks are held to commit anyway). Returns
  /// the lowest-index chunk's error when any chunk fails.
  Status EvalDocsParallel(Transaction* txn, const std::vector<uint64_t>& docs,
                          const std::vector<query::WorkRange>& ranges,
                          size_t parallelism, const xpath::QueryTree* tree,
                          NodeLocator* locator, QueryResult* result)
      XDB_EXCLUDES(latch_);

  /// One anchor's recheck: verifies the anchor path against the main-path
  /// prefix, then evaluates the residual tree over the anchor subtree.
  /// Benign misses (invisible at snapshot, stale posting) return OK with no
  /// output. The anchor's doc lock must already be held.
  Status EvalAnchor(const Posting& anchor, const xpath::QueryTree* residual,
                    const xpath::Path& prefix_pattern, NodeLocator* locator,
                    QueryResult* result) XDB_EXCLUDES(latch_);

  /// Bodies of CreateValueIndex/DropValueIndex without the DDL mutex and
  /// without logging — the form WAL replay and the replica apply path call
  /// (replay must not take ddl_mu_: it already holds the WAL mutex, which a
  /// client DDL acquires only AFTER ddl_mu_, so the reverse nesting would
  /// deadlock; replay applies records in log order single-threaded and
  /// needs no DDL serialization of its own).
  Status ApplyCreateValueIndex(const ValueIndexDef& def) XDB_EXCLUDES(latch_);
  Status ApplyDropValueIndex(const std::string& name) XDB_EXCLUDES(latch_);
  /// Structural-index DDL bodies, same replay/log-separation contract as
  /// the value-index pair above.
  Status ApplyCreateStructuralIndex(const StructuralIndexDef& def)
      XDB_EXCLUDES(latch_);
  Status ApplyDropStructuralIndex(const std::string& name)
      XDB_EXCLUDES(latch_);

  /// kCorruption when the collection is quarantined; call at the top of every
  /// public data operation.
  Status GuardRepair() const;
  /// GuardRepair plus the replica read-only gate (kNotSupported on a replica
  /// outside the apply path); call at the top of every public mutation.
  Status GuardWrite() const;

  /// Sweeps every page of the table space (checksum + record-envelope
  /// checks), and if any damage is found salvages what is readable, rebuilds
  /// the storage from scratch, and re-inserts the salvaged documents.
  /// Fills `salvaged_ids` (re-inserted, WAL replay must skip them) and
  /// `lost_ids` (present before, unreadable — WAL replay may still restore
  /// them). A clean sweep leaves the collection untouched.
  Status ScrubAndRepair(CollectionScrubReport* report,
                        std::set<uint64_t>* salvaged_ids,
                        std::set<uint64_t>* lost_ids) XDB_EXCLUDES(latch_);

  /// Resets the table space and recreates every storage component (records,
  /// trees, indexes) empty, updating meta_ roots. Destroys components
  /// top-down so nothing flushes into the reset space.
  Status RebuildStorage() XDB_EXCLUDES(latch_);

  /// ListDocIds without the repair guard; callers hold latch_ (any mode).
  Result<std::vector<uint64_t>> ListDocIdsUnlocked()
      XDB_REQUIRES_SHARED(latch_);
  /// Reads one document back as a serialized token stream (the salvage
  /// representation; survives the storage rebuild).
  Result<std::string> ReadDocTokensForScrub(uint64_t doc_id)
      XDB_EXCLUDES(latch_);

  Engine* engine_ = nullptr;
  CollectionMeta meta_;
  size_t record_budget_ = 3000;
  std::unique_ptr<TableSpace> space_;
  std::unique_ptr<BufferManager> buffer_;
  std::unique_ptr<RecordManager> records_;
  std::unique_ptr<BTree> docid_tree_;
  std::unique_ptr<BTree> nodeid_tree_;
  std::unique_ptr<BTree> versioned_tree_;
  std::unique_ptr<NodeIdIndex> node_index_;
  std::unique_ptr<VersionManager> versions_;
  struct OwnedValueIndex {
    std::unique_ptr<BTree> tree;
    std::unique_ptr<ValueIndex> index;
  };
  std::vector<OwnedValueIndex> value_indexes_;
  struct OwnedStructuralIndex {
    std::unique_ptr<BTree> tree;
    std::unique_ptr<StructuralIndex> index;
  };
  std::vector<OwnedStructuralIndex> structural_indexes_;
  // Short-duration structure latch over the storage components above
  // (records_, trees, node_index_, value_indexes_). Writers (document
  // insert/delete, subtree edits, index creation, rebuild) hold it
  // exclusively; readers (query evaluation, serialization, doc listing)
  // hold it shared. The components themselves are not GUARDED_BY so tests
  // and benches can poke them single-threaded; concurrent paths go through
  // the REQUIRES-annotated *Locked helpers. Lock order: transaction-level
  // document/node locks (LockManager) are always acquired BEFORE latch_ —
  // never block on a doc lock while holding the latch.
  mutable SharedMutex latch_{LockRank::kCollectionLatch};
  // Doc id allocation (meta_.next_doc_id). Leaf lock: nothing else is
  // acquired while it is held.
  Mutex docid_mu_{LockRank::kCollectionDocId};
  // Serializes client value-index DDL (create/drop) TOGETHER WITH its WAL
  // append: held across both the latched mutation and the log record, so
  // concurrent create+drop of the same index can never log in the opposite
  // order of their application — an inversion crash replay or a replica
  // would converge to the wrong final state from. Ordered before latch_ and
  // before the WAL mutex; WAL replay never takes it (see the Apply* pair).
  Mutex ddl_mu_{LockRank::kCollectionDdl};

  // Collected statistics (doc/node counts, per-index sketches, the stats
  // epoch). Mutating notes run under the exclusive latch_; snapshots are
  // taken lock-free of latch_ (stats_ has its own leaf mutex, acquired
  // after every other lock and holding none).
  query::CollectionStats stats_;
  // Compiled-plan cache. Its internal mutex is a leaf like stats_'s.
  query::PlanCache plan_cache_;
  // Bumped (under the exclusive latch_) whenever the set of live ValueIndex
  // objects changes: index create/drop and storage rebuild. Planning holds
  // the shared latch across every ValueIndex dereference it makes
  // (CompileForExecution), and compiled plans record this version so the
  // executor can re-check it under the shared latch before dereferencing
  // probe indexes — a plan that raced a drop is replanned (kBusy), never
  // served against freed memory. Separate from the stats epoch so document
  // churn does not force replans of in-flight plans.
  std::atomic<uint64_t> index_version_{0};

  // Quarantine + repair state. A collection whose table space or recovery
  // pass failed structurally still opens as a shell (so Engine::Open
  // succeeds and Scrub() can repair it) but refuses data operations.
  bool needs_repair_ = false;
  std::string repair_reason_;
  std::string space_path_;     // for recreating a space whose header is gone
  size_t buffer_pages_ = 512;  // for rebuilding the buffer pool
  size_t buffer_shards_ = 0;   // resolved engine/collection shard setting
  uint32_t page_size_hint_ = kDefaultPageSize;
};

}  // namespace xdb

#endif  // XDB_ENGINE_COLLECTION_H_
