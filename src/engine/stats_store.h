// stats.xdb: one file holding every collection's serialized statistics
// (query/stats.h), written atomically at checkpoint *before* catalog.xdb.
// Layout: magic, CRC32 over the payload (so silent media corruption is
// caught, not silently restored), then length-prefixed (name, blob) pairs.
// The catalog's per-collection stats_epoch is the commit point: a blob whose
// embedded epoch disagrees with the catalog (crash between the two writes,
// file from an older checkpoint, or no file at all) is ignored and the
// collection degrades to heuristic planning — stale numbers are never
// trusted. Losing this file is therefore always safe.
#ifndef XDB_ENGINE_STATS_STORE_H_
#define XDB_ENGINE_STATS_STORE_H_

#include <map>
#include <string>

#include "common/status.h"

namespace xdb {

/// collection name -> serialized CollectionStats blob.
using StatsFileData = std::map<std::string, std::string>;

/// Saves atomically (write temp + rename), like the catalog.
Status SaveStatsFile(const StatsFileData& data, const std::string& path);

/// NotFound when the file does not exist; Corruption on a damaged file.
/// Callers treat both as "degrade to heuristic costing", never as an open
/// failure.
Result<StatsFileData> LoadStatsFile(const std::string& path);

}  // namespace xdb

#endif  // XDB_ENGINE_STATS_STORE_H_
