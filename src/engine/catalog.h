// Catalog: persistent metadata — collections, index roots, registered
// (compiled) schemas, and the database-wide name dictionary. The paper's
// "catalog and directory" infrastructure component, reused with XML
// additions (schema binaries, XPath index definitions).
#ifndef XDB_ENGINE_CATALOG_H_
#define XDB_ENGINE_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/structural_index.h"
#include "index/value_index.h"
#include "storage/page.h"

namespace xdb {

struct ValueIndexMeta {
  ValueIndexDef def;
  PageId root = kInvalidPageId;
};

struct StructuralIndexMeta {
  StructuralIndexDef def;
  PageId root = kInvalidPageId;
};

struct CollectionMeta {
  std::string name;
  std::string space_file;  // file name within the engine directory
  PageId docid_index_root = kInvalidPageId;
  PageId nodeid_index_root = kInvalidPageId;
  PageId versioned_index_root = kInvalidPageId;  // MVCC collections only
  std::vector<ValueIndexMeta> value_indexes;
  std::vector<StructuralIndexMeta> structural_indexes;
  uint64_t next_doc_id = 1;
  uint64_t last_version = 0;  // persisted MVCC version counter
  /// Stats epoch captured when stats.xdb was last written (checkpoint). At
  /// open, a stats blob whose epoch disagrees is stale: the collection
  /// degrades to heuristic planning instead of costing on wrong numbers.
  /// The catalog write is the commit point of the stats save — stats.xdb is
  /// written first, so a crash between the two only ever loses stats, never
  /// trusts bad ones.
  uint64_t stats_epoch = 0;
  bool mvcc_enabled = false;
  std::string schema_name;  // validate-on-insert when non-empty
};

struct CatalogData {
  std::map<std::string, CollectionMeta> collections;
  std::map<std::string, std::string> schemas;  // name -> compiled binary
  std::string dictionary;                      // serialized NameDictionary
  /// Replica only: the replication-stream CSN at byte 0 of the replica's
  /// local WAL. The replica's applied position is always this base plus the
  /// intact bytes in its local WAL, which makes crash accounting exact: the
  /// base changes only when the WAL resets (checkpoint), and the checkpoint
  /// saves the catalog on both sides of the reset, so every crash window
  /// yields either the correct position or an undercount (safe: the replica
  /// re-requests bytes it already has and re-applies them idempotently),
  /// never an overcount that would skip real segments. Stored in the catalog
  /// (not a side file) so base and checkpointed image commit atomically via
  /// the catalog's temp+rename. Zero (and ignored) on a primary.
  uint64_t replica_wal_base = 0;

  void Serialize(std::string* out) const;
  static Result<CatalogData> Deserialize(Slice data);
};

/// Saves atomically (write temp + rename).
Status SaveCatalog(const CatalogData& data, const std::string& path);
Result<CatalogData> LoadCatalog(const std::string& path);

}  // namespace xdb

#endif  // XDB_ENGINE_CATALOG_H_
