#include "engine/collection.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>

#include "common/coding.h"
#include "engine/engine.h"
#include "obs/slow_query_log.h"
#include "obs/wait_state.h"
#include "query/executor.h"
#include "runtime/iterators.h"
#include "xml/node_id.h"
#include "xml/serializer.h"
#include "xpath/parser.h"
#include "xpath/quickxscan.h"

namespace xdb {

namespace {

/// Runs an operation inside the caller's transaction, or wraps it in an
/// autocommit transaction when none is given.
class AutoTxn {
 public:
  AutoTxn(Engine* engine, Transaction* txn, IsolationMode mode)
      : engine_(engine) {
    if (txn == nullptr) {
      own_ = engine->Begin(mode);
      own_.autocommit = true;
      txn_ = &own_;
      owned_ = true;
    } else {
      txn_ = txn;
    }
  }
  ~AutoTxn() {
    if (owned_ && !own_.committed && !own_.aborted)
      (void)engine_->Abort(&own_);
  }

  Transaction* get() { return txn_; }

  Status Finish(Status st) {
    if (!owned_) return st;
    if (st.ok()) return engine_->Commit(&own_);
    (void)engine_->Abort(&own_);
    return st;
  }

 private:
  Engine* engine_;
  Transaction own_;
  Transaction* txn_ = nullptr;
  bool owned_ = false;
};

std::string DocKey(uint64_t doc_id) {
  std::string key;
  PutBig64(&key, doc_id);
  return key;
}

/// Nodes one document contributes to the collection's node-count statistic
/// (elements, attributes, text). One cheap pass over the token buffer; a
/// parse error just under-counts (the estimate self-corrects on churn).
uint64_t CountStatNodes(Slice tokens) {
  TokenReader reader(tokens);
  Token t;
  uint64_t n = 0;
  for (;;) {
    auto more = reader.Next(&t);
    if (!more.ok() || !more.value()) break;
    if (t.kind == TokenKind::kStartElement || t.kind == TokenKind::kAttribute ||
        t.kind == TokenKind::kText)
      n++;
  }
  return n;
}

}  // namespace

Status Collection::ReadLockDoc(Transaction* txn, uint64_t doc_id) {
  if (txn->mode == IsolationMode::kSnapshot && meta_.mvcc_enabled)
    return Status::OK();  // snapshot readers never lock
  return engine_->locks()->LockDocument(txn->id, doc_id, LockMode::kS);
}

Status Collection::WriteLockDoc(Transaction* txn, uint64_t doc_id) {
  return engine_->locks()->LockDocument(txn->id, doc_id, LockMode::kX);
}

Result<uint64_t> Collection::InsertDocument(Transaction* txn, Slice xml) {
  Parser parser = engine_->MakeParser();
  TokenWriter tokens;
  XDB_RETURN_NOT_OK(parser.Parse(xml, &tokens));
  if (!meta_.schema_name.empty()) {
    XDB_ASSIGN_OR_RETURN(const schema::CompiledSchema* cs,
                         engine_->FindSchema(meta_.schema_name));
    TokenWriter validated;
    schema::ValidatorVm vm(cs, engine_->dict());
    XDB_RETURN_NOT_OK(vm.Validate(tokens.data(), &validated));
    return InsertTokens(txn, validated.data());
  }
  return InsertTokens(txn, tokens.data());
}

Result<uint64_t> Collection::InsertTokens(Transaction* txn, Slice tokens) {
  XDB_RETURN_NOT_OK(GuardWrite());
  AutoTxn at(engine_, txn, IsolationMode::kLocking);
  uint64_t doc_id;
  {
    MutexLock lock(docid_mu_);
    doc_id = meta_.next_doc_id++;
  }
  Status st = [&]() -> Status {
    XDB_RETURN_NOT_OK(WriteLockDoc(at.get(), doc_id));
    XDB_RETURN_NOT_OK(engine_->LogInsert(meta_.name, doc_id, tokens));
    XDB_ASSIGN_OR_RETURN(uint64_t got,
                         InsertTokensLocked(at.get(), tokens, doc_id));
    (void)got;
    return Status::OK();
  }();
  XDB_RETURN_NOT_OK(at.Finish(st));
  return doc_id;
}

Result<uint64_t> Collection::InsertTokensLocked(Transaction* txn, Slice tokens,
                                                uint64_t doc_id) {
  WriterMutexLock latch(latch_);
  uint64_t version = 0;
  if (meta_.mvcc_enabled) {
    XDB_ASSIGN_OR_RETURN(version,
                         engine_->txns()->WriteVersion(txn, versions_.get()));
  }
  RecordBuilderOptions rb_options;
  rb_options.record_budget = record_budget_;
  RecordBuilder builder(rb_options);
  Status st = builder.Build(tokens, [&](PackedRecordOut&& rec) -> Status {
    XDB_ASSIGN_OR_RETURN(Rid rid, records_->Insert(rec.bytes));
    XDB_RETURN_NOT_OK(node_index_->AddRecord(doc_id, rec.bytes, rid));
    if (meta_.mvcc_enabled) {
      XDB_RETURN_NOT_OK(
          versions_->AddRecord(doc_id, version, rec.bytes, rid));
    }
    return Status::OK();
  });
  XDB_RETURN_NOT_OK(st);
  XDB_RETURN_NOT_OK(docid_tree_->Insert(DocKey(doc_id), Slice()));
  // Value-index maintenance stays under the exclusive latch: dropping it
  // here would let concurrent queries scan the index while this document's
  // postings are half-written.
  XDB_RETURN_NOT_OK(AddValueIndexEntries(doc_id, tokens, nullptr));
  XDB_RETURN_NOT_OK(AddStructuralIndexEntries(doc_id, tokens, nullptr));
  // Statistics last, so a failed insert never counts. Runs for every insert
  // path — client writes, WAL replay, scrub salvage — which is what keeps
  // the incremental counters in step with the data.
  stats_.NoteDocumentInserted(CountStatNodes(tokens));
  return doc_id;
}

Status Collection::AddValueIndexEntries(uint64_t doc_id, Slice tokens,
                                        ValueIndex* only_index) {
  // "Index keys for the node ID index and XPath value indexes are generated
  // per record" in the paper; here keys are generated in one streaming pass
  // per index over the document, then mapped to record RIDs through the
  // NodeID index.
  for (auto& owned : value_indexes_) {
    ValueIndex* index = owned.index.get();
    if (only_index != nullptr && index != only_index) continue;
    TokenStreamSource source(tokens);
    XDB_ASSIGN_OR_RETURN(
        NodeSequence hits,
        xpath::EvaluateXPath(index->def().path, *engine_->dict(), &source,
                             doc_id, /*want_values=*/true));
    for (const ResultNode& hit : hits) {
      XDB_ASSIGN_OR_RETURN(Rid rid,
                           node_index_->Lookup(doc_id, Slice(hit.node_id)));
      XDB_RETURN_NOT_OK(index->Add(Slice(hit.string_value), doc_id,
                                   Slice(hit.node_id), rid));
    }
  }
  return Status::OK();
}

Status Collection::RemoveValueIndexEntries(Transaction* txn, uint64_t doc_id) {
  (void)txn;
  for (auto& owned : value_indexes_) {
    ValueIndex* index = owned.index.get();
    StoredDocSource source(records_.get(), node_index_.get(), doc_id);
    XDB_ASSIGN_OR_RETURN(
        NodeSequence hits,
        xpath::EvaluateXPath(index->def().path, *engine_->dict(), &source,
                             doc_id, /*want_values=*/true));
    for (const ResultNode& hit : hits) {
      XDB_ASSIGN_OR_RETURN(Rid rid,
                           node_index_->Lookup(doc_id, Slice(hit.node_id)));
      XDB_RETURN_NOT_OK(index->Remove(Slice(hit.string_value), doc_id,
                                      Slice(hit.node_id), rid));
    }
  }
  return Status::OK();
}

Status Collection::AddStructuralIndexEntries(uint64_t doc_id, Slice tokens,
                                             StructuralIndex* only_index) {
  if (structural_indexes_.empty()) return Status::OK();
  // One derivation pass serves every structural index: the (pre, post,
  // level) numbering falls out of the same canonical Dewey walk the record
  // builder performs, so there is no second parse of the document.
  TokenStreamSource source(tokens);
  std::vector<StructuralEntry> entries;
  XDB_RETURN_NOT_OK(DeriveStructuralEntries(&source, &entries));
  for (auto& owned : structural_indexes_) {
    StructuralIndex* index = owned.index.get();
    if (only_index != nullptr && index != only_index) continue;
    XDB_RETURN_NOT_OK(index->AddEntries(*engine_->dict(), doc_id, entries));
  }
  return Status::OK();
}

Status Collection::AddStructuralIndexEntriesFromStorage(
    uint64_t doc_id, StructuralIndex* only_index) {
  if (structural_indexes_.empty()) return Status::OK();
  StoredDocSource source(records_.get(), node_index_.get(), doc_id);
  std::vector<StructuralEntry> entries;
  XDB_RETURN_NOT_OK(DeriveStructuralEntries(&source, &entries));
  for (auto& owned : structural_indexes_) {
    StructuralIndex* index = owned.index.get();
    if (only_index != nullptr && index != only_index) continue;
    XDB_RETURN_NOT_OK(index->AddEntries(*engine_->dict(), doc_id, entries));
  }
  return Status::OK();
}

Status Collection::RemoveStructuralIndexEntries(uint64_t doc_id) {
  if (structural_indexes_.empty()) return Status::OK();
  // Derive from stored records, not a token round-trip: the entries to
  // delete must carry the exact node IDs (and the (pre, post) numbering
  // implied by their document order) that AddEntries previously wrote.
  StoredDocSource source(records_.get(), node_index_.get(), doc_id);
  std::vector<StructuralEntry> entries;
  XDB_RETURN_NOT_OK(DeriveStructuralEntries(&source, &entries));
  for (auto& owned : structural_indexes_) {
    XDB_RETURN_NOT_OK(
        owned.index->RemoveEntries(*engine_->dict(), doc_id, entries));
  }
  return Status::OK();
}

Result<std::string> Collection::GetDocumentText(Transaction* txn,
                                                uint64_t doc_id) {
  XDB_RETURN_NOT_OK(GuardRepair());
  AutoTxn at(engine_, txn, IsolationMode::kLocking);
  std::string out;
  Status st = [&]() -> Status {
    XDB_RETURN_NOT_OK(ReadLockDoc(at.get(), doc_id));
    ReaderMutexLock latch(latch_);
    NodeLocator* locator = node_index_.get();
    SnapshotLocator snap(versions_.get(), 0);
    if (at.get()->mode == IsolationMode::kSnapshot && meta_.mvcc_enabled) {
      snap = SnapshotLocator(
          versions_.get(),
          engine_->txns()->Snapshot(at.get(), versions_.get()));
      locator = &snap;
    } else {
      XDB_ASSIGN_OR_RETURN(bool exists, docid_tree_->Contains(DocKey(doc_id)));
      if (!exists) return Status::NotFound("no such document");
    }
    StoredDocSource source(records_.get(), locator, doc_id);
    TokenWriter tokens;
    XDB_RETURN_NOT_OK(EventsToTokens(&source, &tokens));
    return SerializeTokens(tokens.data(), *engine_->dict(), {}, &out);
  }();
  XDB_RETURN_NOT_OK(at.Finish(st));
  return out;
}

Status Collection::DeleteDocument(Transaction* txn, uint64_t doc_id) {
  XDB_RETURN_NOT_OK(GuardWrite());
  AutoTxn at(engine_, txn, IsolationMode::kLocking);
  Status st = [&]() -> Status {
    XDB_RETURN_NOT_OK(WriteLockDoc(at.get(), doc_id));
    {
      // The X doc lock pins existence; the latch only protects the B-tree
      // probe itself. WAL append happens outside the latch (replay holds
      // the WAL lock while taking collection latches, so the reverse
      // nesting would be an inversion).
      ReaderMutexLock latch(latch_);
      XDB_ASSIGN_OR_RETURN(bool exists, docid_tree_->Contains(DocKey(doc_id)));
      if (!exists) return Status::NotFound("no such document");
    }
    XDB_RETURN_NOT_OK(engine_->LogDelete(meta_.name, doc_id));
    // Index-entry removal and record deletion happen under one exclusive
    // latch section so queries never observe postings pointing at freed
    // records.
    WriterMutexLock latch(latch_);
    XDB_RETURN_NOT_OK(RemoveValueIndexEntries(at.get(), doc_id));
    XDB_RETURN_NOT_OK(RemoveStructuralIndexEntries(doc_id));
    return DeleteDocumentLocked(at.get(), doc_id);
  }();
  return at.Finish(st);
}

Status Collection::DeleteDocumentLocked(Transaction* txn, uint64_t doc_id) {
  (void)txn;
  std::set<uint64_t> rids;
  std::vector<Rid> current;
  XDB_RETURN_NOT_OK(node_index_->ListDocRecords(doc_id, &current));
  for (Rid r : current) rids.insert(r.Pack());
  if (meta_.mvcc_enabled) {
    std::vector<Rid> freed;
    XDB_RETURN_NOT_OK(versions_->PurgeVersionsBefore(
        doc_id, std::numeric_limits<uint64_t>::max(), &freed));
    for (Rid r : freed) rids.insert(r.Pack());
  }
  XDB_RETURN_NOT_OK(node_index_->RemoveDocEntries(doc_id));
  for (uint64_t packed : rids) {
    XDB_RETURN_NOT_OK(records_->Delete(Rid::Unpack(packed)));
  }
  XDB_RETURN_NOT_OK(docid_tree_->Delete(DocKey(doc_id), Slice()));
  stats_.NoteDocumentDeleted();
  return Status::OK();
}

Status Collection::MaintainValueIndexesForTextUpdate(uint64_t doc_id,
                                                     Slice text_node_id,
                                                     NodeLocator* locator,
                                                     Slice old_text,
                                                     Slice new_text) {
  if (value_indexes_.empty()) return Status::OK();
  (void)old_text;
  (void)new_text;
  // Collect the ancestor elements of the text node with their concrete
  // name paths: in-record names come from a walk; out-of-record ancestors
  // from the record header's root path.
  XDB_ASSIGN_OR_RETURN(Rid rid, locator->Lookup(doc_id, text_node_id));
  std::string record;
  XDB_RETURN_NOT_OK(records_->Get(rid, &record));
  RecordWalker walker((Slice(record)));
  XDB_RETURN_NOT_OK(walker.Init());

  struct Ancestor {
    std::string abs_id;
    NameId local;
  };
  std::vector<Ancestor> ancestors;
  const RecordHeader& header = walker.header();
  {
    std::vector<Slice> levels;
    XDB_RETURN_NOT_OK(
        nodeid::SplitLevels(header.context_node_id, &levels));
    if (levels.size() != header.root_path.size())
      return Status::Corruption("record root path/context id mismatch");
    std::string prefix;
    for (size_t i = 0; i < levels.size(); i++) {
      prefix.append(levels[i].data(), levels[i].size());
      ancestors.push_back(Ancestor{prefix, header.root_path[i].local});
    }
  }
  for (;;) {
    RecordWalker::Event ev;
    XDB_RETURN_NOT_OK(walker.Next(&ev));
    if (ev.type == RecordWalker::EventType::kDone)
      return Status::NotFound("text node not found for index maintenance");
    if (ev.type != RecordWalker::EventType::kStart) continue;
    Slice abs(ev.entry.abs_id);
    if (abs == text_node_id) break;
    if (ev.entry.kind == NodeKind::kElement) {
      if (nodeid::IsAncestor(abs, text_node_id)) {
        ancestors.push_back(Ancestor{ev.entry.abs_id, ev.entry.local});
      } else {
        walker.SkipChildren();
      }
    }
  }

  // Concrete absolute path of each ancestor (pure child steps).
  StoredTreeNavigator nav(records_.get(), node_index_.get(), doc_id);
  xpath::Path concrete;
  concrete.absolute = true;
  for (const Ancestor& a : ancestors) {
    xpath::Step step;
    step.axis = xpath::Axis::kChild;
    step.test = xpath::NodeTest::kName;
    XDB_ASSIGN_OR_RETURN(step.name, engine_->dict()->Name(a.local));
    concrete.steps.push_back(std::move(step));
    for (auto& owned : value_indexes_) {
      ValueIndex* index = owned.index.get();
      auto ipath = xpath::ParsePath(index->def().path);
      if (!ipath.ok()) continue;
      if (!xpath::PathContains(ipath.value(), concrete)) continue;
      // This ancestor's string value is indexed: swap old for new. The
      // "old" value is still stored (the record is not yet updated).
      XDB_ASSIGN_OR_RETURN(std::string old_val,
                           nav.StringValue(Slice(a.abs_id)));
      // New value: the old value with this text node's contribution
      // replaced; recompute by splicing is fragile, so re-derive from the
      // subtree with the text overridden.
      std::string new_val;
      {
        StoredDocSource source(records_.get(), node_index_.get(), doc_id,
                               a.abs_id);
        XmlEvent ev;
        for (;;) {
          XDB_ASSIGN_OR_RETURN(bool more, source.Next(&ev));
          if (!more) break;
          if (ev.type != XmlEvent::Type::kText) continue;
          if (ev.node_id == text_node_id) {
            new_val.append(new_text.data(), new_text.size());
          } else {
            new_val.append(ev.value.data(), ev.value.size());
          }
        }
      }
      XDB_ASSIGN_OR_RETURN(Rid arid,
                           node_index_->Lookup(doc_id, Slice(a.abs_id)));
      XDB_RETURN_NOT_OK(
          index->Remove(old_val, doc_id, Slice(a.abs_id), arid));
      XDB_RETURN_NOT_OK(index->Add(new_val, doc_id, Slice(a.abs_id), arid));
    }
  }
  return Status::OK();
}

Status Collection::UpdateTextNode(Transaction* txn, uint64_t doc_id,
                                  Slice node_id, Slice new_text) {
  XDB_RETURN_NOT_OK(GuardWrite());
  AutoTxn at(engine_, txn, IsolationMode::kLocking);
  Status st = [&]() -> Status {
    // Subdocument protocol: IX on the document, X on the updated subtree.
    XDB_RETURN_NOT_OK(
        engine_->locks()->LockDocument(at.get()->id, doc_id, LockMode::kIX));
    XDB_RETURN_NOT_OK(engine_->locks()->LockNode(at.get()->id, doc_id,
                                                 node_id, LockMode::kX));
    XDB_RETURN_NOT_OK(
        engine_->LogUpdate(meta_.name, doc_id, node_id, new_text));

    WriterMutexLock latch(latch_);
    XDB_ASSIGN_OR_RETURN(Rid rid, node_index_->Lookup(doc_id, node_id));
    std::string old_record;
    XDB_RETURN_NOT_OK(records_->Get(rid, &old_record));

    // Value-index maintenance runs against the pre-update image.
    XDB_RETURN_NOT_OK(MaintainValueIndexesForTextUpdate(
        doc_id, node_id, node_index_.get(), Slice(), new_text));

    XDB_ASSIGN_OR_RETURN(std::string new_record,
                         ReplaceTextValue(old_record, node_id, new_text));
    if (!meta_.mvcc_enabled) {
      XDB_RETURN_NOT_OK(records_->Update(rid, new_record));
      stats_.NoteDocumentMutated();
      return Status::OK();
    }

    // MVCC: copy-on-write of the changed record under a new version.
    XDB_ASSIGN_OR_RETURN(
        uint64_t version,
        engine_->txns()->WriteVersion(at.get(), versions_.get()));
    XDB_ASSIGN_OR_RETURN(Rid new_rid, records_->Insert(new_record));
    // New version's entries: previous effective entries, with the changed
    // record's entries re-pointed at the new RID.
    XDB_ASSIGN_OR_RETURN(
        uint64_t prev_ver,
        versions_->EffectiveVersion(doc_id,
                                    std::numeric_limits<uint64_t>::max() - 1));
    std::vector<std::pair<std::string, Rid>> entries;
    XDB_RETURN_NOT_OK(versions_->ListVersionEntries(doc_id, prev_ver, &entries));
    for (auto& [upper, entry_rid] : entries) {
      Rid target = (entry_rid == rid) ? new_rid : entry_rid;
      XDB_RETURN_NOT_OK(versions_->AddEntry(doc_id, version, upper, target));
    }
    // The unversioned NodeID index tracks the newest version.
    XDB_RETURN_NOT_OK(node_index_->RemoveRecord(doc_id, old_record, rid));
    XDB_RETURN_NOT_OK(node_index_->AddRecord(doc_id, new_record, new_rid));
    stats_.NoteDocumentMutated();
    return Status::OK();
  }();
  return at.Finish(st);
}

Status Collection::ReindexDocument(uint64_t doc_id) {
  if (!value_indexes_.empty()) {
    StoredDocSource source(records_.get(), node_index_.get(), doc_id);
    TokenWriter tokens;
    XDB_RETURN_NOT_OK(EventsToTokens(&source, &tokens));
    XDB_RETURN_NOT_OK(AddValueIndexEntries(doc_id, tokens.data(), nullptr));
  }
  // Structural entries are re-derived straight from storage: the stored
  // node IDs (Between()-allocated after a subtree edit) are what queries
  // see, and the token round-trip above re-synthesizes ordinal IDs that no
  // longer match them.
  return AddStructuralIndexEntriesFromStorage(doc_id, nullptr);
}

Status Collection::CollectSubtreeRecords(uint64_t doc_id, Slice node_id,
                                         Slice record,
                                         std::vector<Rid>* out) {
  // Proxies inside the subtree name evicted records; those records' context
  // node is inside the subtree, so their entire content (and their own
  // proxies, recursively) belongs to it.
  std::vector<std::string> worklist;
  {
    RecordWalker walker(record);
    XDB_RETURN_NOT_OK(walker.Init());
    for (;;) {
      RecordWalker::Event ev;
      XDB_RETURN_NOT_OK(walker.Next(&ev));
      if (ev.type == RecordWalker::EventType::kDone) break;
      if (ev.type != RecordWalker::EventType::kStart) continue;
      Slice abs(ev.entry.abs_id);
      if (ev.entry.kind == NodeKind::kProxy) {
        if (abs == node_id || nodeid::IsAncestor(node_id, abs))
          worklist.push_back(ev.entry.abs_id);
      } else if (ev.entry.kind == NodeKind::kElement && abs != node_id &&
                 !nodeid::IsAncestor(abs, node_id) &&
                 !nodeid::IsAncestor(node_id, abs)) {
        walker.SkipChildren();  // disjoint sibling: nothing to find inside
      }
    }
  }
  while (!worklist.empty()) {
    std::string proxy_abs = std::move(worklist.back());
    worklist.pop_back();
    XDB_ASSIGN_OR_RETURN(Rid rid, node_index_->Lookup(doc_id, proxy_abs));
    if (std::find(out->begin(), out->end(), rid) != out->end()) continue;
    out->push_back(rid);
    std::string bytes;
    XDB_RETURN_NOT_OK(records_->Get(rid, &bytes));
    RecordWalker walker((Slice(bytes)));
    XDB_RETURN_NOT_OK(walker.Init());
    for (;;) {
      RecordWalker::Event ev;
      XDB_RETURN_NOT_OK(walker.Next(&ev));
      if (ev.type == RecordWalker::EventType::kDone) break;
      if (ev.type == RecordWalker::EventType::kStart &&
          ev.entry.kind == NodeKind::kProxy)
        worklist.push_back(ev.entry.abs_id);
    }
  }
  return Status::OK();
}

Result<std::string> Collection::InsertSubtree(Transaction* txn,
                                              uint64_t doc_id,
                                              Slice parent_id,
                                              Slice after_sibling_id,
                                              Slice fragment) {
  XDB_RETURN_NOT_OK(GuardWrite());
  if (meta_.mvcc_enabled)
    return Status::NotSupported(
        "subtree operations on MVCC collections are future work");
  if (parent_id.empty())
    return Status::InvalidArgument(
        "subtrees are inserted under an element, not the document node");
  Parser parser = engine_->MakeParser();
  TokenWriter tokens;
  XDB_RETURN_NOT_OK(parser.Parse(fragment, &tokens));

  AutoTxn at(engine_, txn, IsolationMode::kLocking);
  std::string new_id;
  Status st = [&]() -> Status {
    XDB_RETURN_NOT_OK(
        engine_->locks()->LockDocument(at.get()->id, doc_id, LockMode::kIX));
    XDB_RETURN_NOT_OK(engine_->locks()->LockNode(at.get()->id, doc_id,
                                                 parent_id, LockMode::kX));
    XDB_RETURN_NOT_OK(engine_->LogInsertSubtree(
        meta_.name, doc_id, parent_id, after_sibling_id, tokens.data()));
    WriterMutexLock latch(latch_);
    XDB_ASSIGN_OR_RETURN(
        new_id, InsertSubtreeLocked(at.get(), doc_id, parent_id,
                                    after_sibling_id, tokens.data()));
    return Status::OK();
  }();
  XDB_RETURN_NOT_OK(at.Finish(st));
  return new_id;
}

Result<std::string> Collection::InsertSubtreeLocked(Transaction* txn,
                                                    uint64_t doc_id,
                                                    Slice parent_id,
                                                    Slice after_sibling_id,
                                                    Slice fragment_tokens) {
  (void)txn;
  // Value index entries are rebuilt from scratch around the change (ancestor
  // string values change too, so per-entry surgery would be error-prone).
  // Structural entries likewise: the insert renumbers (pre, post) for every
  // node after the splice point, so removal must see the pre-mutation IDs.
  XDB_RETURN_NOT_OK(RemoveValueIndexEntries(nullptr, doc_id));
  XDB_RETURN_NOT_OK(RemoveStructuralIndexEntries(doc_id));

  XDB_ASSIGN_OR_RETURN(Rid parent_rid,
                       node_index_->Lookup(doc_id, parent_id));
  std::string parent_record;
  XDB_RETURN_NOT_OK(records_->Get(parent_rid, &parent_record));

  // Direct children of the parent (inline entries and proxies) in order.
  std::vector<std::string> child_ids;
  bool parent_is_element = false;
  {
    RecordWalker walker((Slice(parent_record)));
    XDB_RETURN_NOT_OK(walker.Init());
    for (;;) {
      RecordWalker::Event ev;
      XDB_RETURN_NOT_OK(walker.Next(&ev));
      if (ev.type == RecordWalker::EventType::kDone) break;
      if (ev.type != RecordWalker::EventType::kStart) continue;
      Slice abs(ev.entry.abs_id);
      if (abs == parent_id) {
        if (ev.entry.kind != NodeKind::kElement)
          return Status::InvalidArgument("parent is not an element");
        parent_is_element = true;
        continue;  // descend into it
      }
      auto eparent = nodeid::Parent(abs);
      if (eparent.ok() && eparent.value() == parent_id) {
        child_ids.push_back(ev.entry.abs_id);
        if (ev.entry.kind == NodeKind::kElement) walker.SkipChildren();
      } else if (ev.entry.kind == NodeKind::kElement &&
                 !nodeid::IsAncestor(abs, parent_id)) {
        walker.SkipChildren();
      }
    }
  }
  if (!parent_is_element)
    return Status::NotFound("parent element not found");

  // Choose the new relative ID with Between().
  std::string left_rel, right_rel;
  if (after_sibling_id.empty()) {
    if (!child_ids.empty()) {
      Slice last(child_ids.back());
      last.RemovePrefix(parent_id.size());
      left_rel = last.ToString();
    }
  } else {
    size_t pos = 0;
    bool found = false;
    for (; pos < child_ids.size(); pos++) {
      if (Slice(child_ids[pos]) == after_sibling_id) {
        found = true;
        break;
      }
    }
    if (!found)
      return Status::NotFound("after-sibling is not a child of the parent");
    Slice l(child_ids[pos]);
    l.RemovePrefix(parent_id.size());
    left_rel = l.ToString();
    if (pos + 1 < child_ids.size()) {
      Slice r(child_ids[pos + 1]);
      r.RemovePrefix(parent_id.size());
      right_rel = r.ToString();
    }
  }
  std::string new_rel;
  XDB_RETURN_NOT_OK(nodeid::Between(left_rel, right_rel, &new_rel));
  std::string new_abs = parent_id.ToString() + new_rel;

  // Build the subtree's record, with the parent as its context node.
  uint64_t node_count = 0;
  XDB_ASSIGN_OR_RETURN(std::string entry,
                       BuildSubtreeEntry(fragment_tokens, new_rel,
                                         &node_count));
  RecordHeader parent_header;
  Slice parent_payload;
  XDB_RETURN_NOT_OK(
      ParseRecordHeader(parent_record, &parent_header, &parent_payload));
  RecordHeader header;
  header.context_node_id = parent_id;
  header.namespaces = parent_header.namespaces;
  header.subtree_count = 1;
  // Root path = parent record's path to its context + in-record element
  // names down to the parent.
  header.root_path = parent_header.root_path;
  {
    RecordWalker walker((Slice(parent_record)));
    XDB_RETURN_NOT_OK(walker.Init());
    for (;;) {
      RecordWalker::Event ev;
      XDB_RETURN_NOT_OK(walker.Next(&ev));
      if (ev.type == RecordWalker::EventType::kDone) break;
      if (ev.type != RecordWalker::EventType::kStart) continue;
      Slice abs(ev.entry.abs_id);
      if (ev.entry.kind == NodeKind::kElement &&
          (abs == parent_id || nodeid::IsAncestor(abs, parent_id))) {
        header.root_path.push_back({ev.entry.local, ev.entry.ns_uri});
        if (abs == parent_id) break;
      } else if (ev.entry.kind == NodeKind::kElement) {
        walker.SkipChildren();
      }
    }
  }
  std::string new_record;
  AppendRecordHeader(header, &new_record);
  new_record += entry;
  XDB_ASSIGN_OR_RETURN(Rid new_record_rid, records_->Insert(new_record));
  XDB_RETURN_NOT_OK(
      node_index_->AddRecord(doc_id, new_record, new_record_rid));

  // Splice a proxy into the parent's child list.
  XDB_ASSIGN_OR_RETURN(std::string new_parent_record,
                       InsertProxyEntry(parent_record, parent_id, new_rel));
  XDB_RETURN_NOT_OK(
      node_index_->RemoveRecord(doc_id, parent_record, parent_rid));
  XDB_RETURN_NOT_OK(records_->Update(parent_rid, new_parent_record));
  XDB_RETURN_NOT_OK(
      node_index_->AddRecord(doc_id, new_parent_record, parent_rid));

  XDB_RETURN_NOT_OK(ReindexDocument(doc_id));
  stats_.NoteDocumentMutated();
  return new_abs;
}

Status Collection::DeleteSubtree(Transaction* txn, uint64_t doc_id,
                                 Slice node_id) {
  XDB_RETURN_NOT_OK(GuardWrite());
  if (meta_.mvcc_enabled)
    return Status::NotSupported(
        "subtree operations on MVCC collections are future work");
  if (node_id.empty())
    return Status::InvalidArgument("cannot delete the document node");
  AutoTxn at(engine_, txn, IsolationMode::kLocking);
  Status st = [&]() -> Status {
    XDB_RETURN_NOT_OK(
        engine_->locks()->LockDocument(at.get()->id, doc_id, LockMode::kIX));
    XDB_RETURN_NOT_OK(engine_->locks()->LockNode(at.get()->id, doc_id,
                                                 node_id, LockMode::kX));
    XDB_RETURN_NOT_OK(
        engine_->LogDeleteSubtree(meta_.name, doc_id, node_id));
    WriterMutexLock latch(latch_);
    return DeleteSubtreeLocked(at.get(), doc_id, node_id);
  }();
  return at.Finish(st);
}

Status Collection::DeleteSubtreeLocked(Transaction* txn, uint64_t doc_id,
                                       Slice node_id) {
  (void)txn;
  XDB_ASSIGN_OR_RETURN(Slice parent_id, nodeid::Parent(node_id));
  if (parent_id.empty())
    return Status::InvalidArgument("cannot delete the root element");
  XDB_RETURN_NOT_OK(RemoveValueIndexEntries(nullptr, doc_id));
  XDB_RETURN_NOT_OK(RemoveStructuralIndexEntries(doc_id));

  // The record holding the parent's child list holds either the subtree
  // inline or a proxy for it.
  XDB_ASSIGN_OR_RETURN(Rid parent_rid,
                       node_index_->Lookup(doc_id, parent_id));
  std::string parent_record;
  XDB_RETURN_NOT_OK(records_->Get(parent_rid, &parent_record));

  // Records fully inside the subtree (reachable through proxies).
  std::vector<Rid> doomed;
  XDB_RETURN_NOT_OK(
      CollectSubtreeRecords(doc_id, node_id, parent_record, &doomed));

  bool now_empty = false;
  XDB_ASSIGN_OR_RETURN(std::string new_parent_record,
                       RemoveEntry(parent_record, node_id, &now_empty));
  XDB_RETURN_NOT_OK(
      node_index_->RemoveRecord(doc_id, parent_record, parent_rid));
  XDB_RETURN_NOT_OK(records_->Update(parent_rid, new_parent_record));
  XDB_RETURN_NOT_OK(
      node_index_->AddRecord(doc_id, new_parent_record, parent_rid));

  for (Rid rid : doomed) {
    std::string bytes;
    XDB_RETURN_NOT_OK(records_->Get(rid, &bytes));
    XDB_RETURN_NOT_OK(node_index_->RemoveRecord(doc_id, bytes, rid));
    XDB_RETURN_NOT_OK(records_->Delete(rid));
  }
  XDB_RETURN_NOT_OK(ReindexDocument(doc_id));
  stats_.NoteDocumentMutated();
  return Status::OK();
}

Status Collection::CreateValueIndex(const ValueIndexDef& def) {
  // ddl_mu_ spans the mutation AND its WAL record: a concurrent drop of the
  // same index cannot slip its record into the log between them, so the log
  // order always matches the application order (replay/replica convergence
  // depends on it).
  MutexLock ddl(ddl_mu_);
  XDB_RETURN_NOT_OK(ApplyCreateValueIndex(def));
  return engine_->LogCreateIndex(meta_.name, def);
}

Status Collection::ApplyCreateValueIndex(const ValueIndexDef& def) {
  XDB_RETURN_NOT_OK(GuardWrite());
  XDB_ASSIGN_OR_RETURN(xpath::Path path, xpath::ParsePath(def.path));
  if (!xpath::IsIndexablePath(path))
    return Status::InvalidArgument(
        "value index paths must be linear, predicate-free, and end in an "
        "element or attribute");
  {
    WriterMutexLock latch(latch_);
    for (auto& owned : value_indexes_) {
      if (owned.index->def().name == def.name)
        return Status::InvalidArgument("index '" + def.name + "' exists");
    }
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                         BTree::Create(buffer_.get()));
    auto index = std::make_unique<ValueIndex>(def, tree.get());
    ValueIndex* raw = index.get();
    // Stats listener first, so the backfill below is counted too. This bumps
    // the stats epoch, invalidating every cached plan priced without the
    // index.
    raw->set_stats_listener(stats_.NoteIndexCreated(def.name));
    meta_.value_indexes.push_back(ValueIndexMeta{def, tree->root()});
    value_indexes_.push_back(
        OwnedValueIndex{std::move(tree), std::move(index)});

    // Backfill from existing documents, still under the exclusive latch so a
    // concurrent query never plans against a half-backfilled index.
    XDB_ASSIGN_OR_RETURN(std::vector<uint64_t> docs, ListDocIdsUnlocked());
    for (uint64_t doc_id : docs) {
      StoredDocSource source(records_.get(), node_index_.get(), doc_id);
      TokenWriter tokens;
      XDB_RETURN_NOT_OK(EventsToTokens(&source, &tokens));
      XDB_RETURN_NOT_OK(AddValueIndexEntries(doc_id, tokens.data(), raw));
    }
    index_version_.fetch_add(1, std::memory_order_acq_rel);
    plan_cache_.Invalidate("index created");
  }
  // No WAL append here: the logging wrapper (CreateValueIndex) does it,
  // outside the latch — replay holds the WAL lock while taking collection
  // latches, so appending under the latch would deadlock.
  return Status::OK();
}

Status Collection::DropValueIndex(const std::string& name) {
  // Same atomicity as CreateValueIndex: mutation + WAL record under ddl_mu_.
  MutexLock ddl(ddl_mu_);
  XDB_RETURN_NOT_OK(ApplyDropValueIndex(name));
  return engine_->LogDropIndex(meta_.name, name);
}

Status Collection::ApplyDropValueIndex(const std::string& name) {
  XDB_RETURN_NOT_OK(GuardWrite());
  {
    WriterMutexLock latch(latch_);
    size_t pos = value_indexes_.size();
    for (size_t i = 0; i < value_indexes_.size(); i++) {
      if (value_indexes_[i].index->def().name == name) {
        pos = i;
        break;
      }
    }
    if (pos == value_indexes_.size())
      return Status::NotFound("no value index '" + name + "'");
    // Version bump + cache clear BEFORE the ValueIndex is destroyed: any plan
    // compiled against the old index set fails the structure-version gate
    // under this same latch, so its dangling pointer is never dereferenced.
    index_version_.fetch_add(1, std::memory_order_acq_rel);
    plan_cache_.Invalidate("index dropped");
    stats_.NoteIndexDropped(name);
    value_indexes_.erase(value_indexes_.begin() + static_cast<long>(pos));
    for (auto it = meta_.value_indexes.begin();
         it != meta_.value_indexes.end(); ++it) {
      if (it->def.name == name) {
        meta_.value_indexes.erase(it);
        break;
      }
    }
  }
  return Status::OK();
}

ValueIndex* Collection::FindValueIndex(const std::string& name) {
  for (auto& owned : value_indexes_) {
    if (owned.index->def().name == name) return owned.index.get();
  }
  return nullptr;
}

Status Collection::CreateStructuralIndex(const StructuralIndexDef& def) {
  // Same DDL atomicity as CreateValueIndex: mutation + WAL record under
  // ddl_mu_ so log order always matches application order.
  MutexLock ddl(ddl_mu_);
  XDB_RETURN_NOT_OK(ApplyCreateStructuralIndex(def));
  return engine_->LogCreateStructuralIndex(meta_.name, def);
}

Status Collection::ApplyCreateStructuralIndex(const StructuralIndexDef& def) {
  XDB_RETURN_NOT_OK(GuardWrite());
  if (def.name.empty())
    return Status::InvalidArgument("structural index needs a name");
  {
    WriterMutexLock latch(latch_);
    for (auto& owned : structural_indexes_) {
      if (owned.index->def().name == def.name)
        return Status::InvalidArgument("structural index '" + def.name +
                                       "' exists");
    }
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                         BTree::Create(buffer_.get()));
    auto index = std::make_unique<StructuralIndex>(def, tree.get());
    StructuralIndex* raw = index.get();
    // Stats listener first, so the backfill below is counted too. Bumps the
    // stats epoch, invalidating every cached plan priced without the index.
    raw->set_stats_listener(stats_.NoteStructuralIndexCreated(def.name));
    meta_.structural_indexes.push_back(StructuralIndexMeta{def, tree->root()});
    structural_indexes_.push_back(
        OwnedStructuralIndex{std::move(tree), std::move(index)});

    // Backfill from existing documents under the exclusive latch, deriving
    // from stored records so documents reshaped by subtree edits index
    // their real node IDs.
    XDB_ASSIGN_OR_RETURN(std::vector<uint64_t> docs, ListDocIdsUnlocked());
    for (uint64_t doc_id : docs)
      XDB_RETURN_NOT_OK(AddStructuralIndexEntriesFromStorage(doc_id, raw));
    index_version_.fetch_add(1, std::memory_order_acq_rel);
    plan_cache_.Invalidate("structural index created");
  }
  // No WAL append here: the logging wrapper does it outside the latch (see
  // ApplyCreateValueIndex).
  return Status::OK();
}

Status Collection::DropStructuralIndex(const std::string& name) {
  MutexLock ddl(ddl_mu_);
  XDB_RETURN_NOT_OK(ApplyDropStructuralIndex(name));
  return engine_->LogDropStructuralIndex(meta_.name, name);
}

Status Collection::ApplyDropStructuralIndex(const std::string& name) {
  XDB_RETURN_NOT_OK(GuardWrite());
  {
    WriterMutexLock latch(latch_);
    size_t pos = structural_indexes_.size();
    for (size_t i = 0; i < structural_indexes_.size(); i++) {
      if (structural_indexes_[i].index->def().name == name) {
        pos = i;
        break;
      }
    }
    if (pos == structural_indexes_.size())
      return Status::NotFound("no structural index '" + name + "'");
    // Version bump + cache clear BEFORE the StructuralIndex is destroyed:
    // any plan compiled against the old index set fails the
    // structure-version gate under this same latch.
    index_version_.fetch_add(1, std::memory_order_acq_rel);
    plan_cache_.Invalidate("structural index dropped");
    stats_.NoteStructuralIndexDropped(name);
    structural_indexes_.erase(structural_indexes_.begin() +
                              static_cast<long>(pos));
    for (auto it = meta_.structural_indexes.begin();
         it != meta_.structural_indexes.end(); ++it) {
      if (it->def.name == name) {
        meta_.structural_indexes.erase(it);
        break;
      }
    }
  }
  return Status::OK();
}

StructuralIndex* Collection::FindStructuralIndex(const std::string& name) {
  for (auto& owned : structural_indexes_) {
    if (owned.index->def().name == name) return owned.index.get();
  }
  return nullptr;
}

Result<std::vector<uint64_t>> Collection::ListDocIds() {
  XDB_RETURN_NOT_OK(GuardRepair());
  ReaderMutexLock latch(latch_);
  return ListDocIdsUnlocked();
}

Result<std::vector<uint64_t>> Collection::ListDocIdsUnlocked() {
  std::vector<uint64_t> out;
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, docid_tree_->SeekToFirst());
  while (it.Valid()) {
    if (it.key().size() == 8) out.push_back(DecodeBig64(it.key().data()));
    XDB_RETURN_NOT_OK(it.Next());
  }
  return out;
}

Result<uint64_t> Collection::DocCount() {
  XDB_ASSIGN_OR_RETURN(std::vector<uint64_t> ids, ListDocIds());
  return static_cast<uint64_t>(ids.size());
}

Status Collection::VacuumVersions(uint64_t doc_id,
                                  uint64_t oldest_live_snapshot) {
  XDB_RETURN_NOT_OK(GuardRepair());
  if (!meta_.mvcc_enabled) return Status::OK();
  WriterMutexLock latch(latch_);
  auto keep = versions_->EffectiveVersion(doc_id, oldest_live_snapshot);
  if (keep.status().IsNotFound()) return Status::OK();  // nothing visible
  XDB_RETURN_NOT_OK(keep.status());
  std::vector<Rid> freed;
  XDB_RETURN_NOT_OK(
      versions_->PurgeVersionsBefore(doc_id, keep.value(), &freed));
  // Free records no surviving version references.
  std::set<uint64_t> live;
  // Collect every rid still referenced by any remaining version.
  {
    BTree* tree = versions_->tree();
    std::string start;
    PutBig64(&start, doc_id);
    XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree->Seek(start));
    while (it.Valid()) {
      if (it.key().size() < 8 || DecodeBig64(it.key().data()) != doc_id) break;
      live.insert(DecodeFixed64(it.value().data()));
      XDB_RETURN_NOT_OK(it.Next());
    }
  }
  for (Rid rid : freed) {
    if (live.count(rid.Pack()) != 0) continue;
    // The unversioned index may still reference it (newest version).
    Status st = records_->Delete(rid);
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  return Status::OK();
}

Result<std::string> Collection::SerializeSubtree(Transaction* txn,
                                                 uint64_t doc_id,
                                                 Slice node_id) {
  XDB_RETURN_NOT_OK(GuardRepair());
  AutoTxn at(engine_, txn, IsolationMode::kLocking);
  std::string out;
  Status st = [&]() -> Status {
    XDB_RETURN_NOT_OK(ReadLockDoc(at.get(), doc_id));
    ReaderMutexLock latch(latch_);
    NodeLocator* locator = node_index_.get();
    SnapshotLocator snap(versions_.get(), 0);
    if (at.get()->mode == IsolationMode::kSnapshot && meta_.mvcc_enabled) {
      snap = SnapshotLocator(
          versions_.get(),
          engine_->txns()->Snapshot(at.get(), versions_.get()));
      locator = &snap;
    }
    StoredDocSource source(records_.get(), locator, doc_id,
                           node_id.ToString());
    TokenWriter tokens;
    XDB_RETURN_NOT_OK(EventsToTokens(&source, &tokens));
    return SerializeTokens(tokens.data(), *engine_->dict(), {}, &out);
  }();
  XDB_RETURN_NOT_OK(at.Finish(st));
  return out;
}

Result<QueryResult> Collection::Query(Transaction* txn, Slice xpath,
                                      const QueryOptions& options) {
  XDB_RETURN_NOT_OK(GuardRepair());
  if (options.min_csn > 0)
    XDB_RETURN_NOT_OK(
        engine_->WaitForFreshness(options.min_csn, options.freshness_timeout_us));
  const bool cacheable =
      plan_cache_.enabled() && !options.use_heuristic_planner;
  const std::string text = xpath.ToString();
  // Bounded replan loop: a compiled plan can go stale when an index drop or
  // storage rebuild races execution. Staleness is reported via *plan_stale —
  // NOT inferred from the status code, because kBusy is also how the buffer
  // pool reports pinned frames, and those must not trigger a replan.
  Status last = Status::OK();
  for (int attempt = 0; attempt < 3; attempt++) {
    std::shared_ptr<const query::CompiledPlan> cp;
    const char* cache_state = cacheable ? "miss" : "off";
    uint64_t plan_wall_us = 0;
    if (cacheable) {
      cp = plan_cache_.Lookup(text, options.force, options.want_values,
                              stats_.epoch());
      if (cp != nullptr) cache_state = "hit";
    }
    if (cp == nullptr) {
      const auto plan_start = std::chrono::steady_clock::now();
      XDB_ASSIGN_OR_RETURN(xpath::Path path, xpath::ParsePath(text));
      XDB_ASSIGN_OR_RETURN(cp, CompileForExecution(std::move(path), options));
      plan_wall_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - plan_start)
              .count());
      // Keyed by the epoch the plan was priced at: if the stats moved while
      // we compiled, the entry simply never matches a future lookup.
      if (cacheable)
        plan_cache_.Insert(text, options.force, options.want_values,
                           cp->stats_epoch, cp);
    }
    bool plan_stale = false;
    Result<QueryResult> res = ExecuteCompiled(
        txn, *cp, options, cache_state, plan_wall_us, &plan_stale);
    if (res.ok() || !plan_stale) return res;
    last = res.status();
    // The plan probes an index that no longer exists; everything else
    // compiled at the old structure version is equally dead.
    if (cacheable) plan_cache_.Invalidate("stale plan replanned");
  }
  return last;
}

Result<QueryResult> Collection::ExecutePath(Transaction* txn,
                                            const xpath::Path& path,
                                            const QueryOptions& options) {
  XDB_RETURN_NOT_OK(GuardRepair());
  if (options.min_csn > 0)
    XDB_RETURN_NOT_OK(
        engine_->WaitForFreshness(options.min_csn, options.freshness_timeout_us));
  Status last = Status::OK();
  for (int attempt = 0; attempt < 3; attempt++) {
    const auto plan_start = std::chrono::steady_clock::now();
    xpath::Path copy;
    copy.absolute = path.absolute;
    copy.steps.reserve(path.steps.size());
    for (const xpath::Step& s : path.steps)
      copy.steps.push_back(xpath::CloneStep(s));
    XDB_ASSIGN_OR_RETURN(std::shared_ptr<const query::CompiledPlan> cp,
                         CompileForExecution(std::move(copy), options));
    const uint64_t plan_wall_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - plan_start)
            .count());
    bool plan_stale = false;
    Result<QueryResult> res = ExecuteCompiled(txn, *cp, options, "off",
                                              plan_wall_us, &plan_stale);
    if (res.ok() || !plan_stale) return res;
    last = res.status();
  }
  return last;
}

Result<std::shared_ptr<const query::CompiledPlan>>
Collection::CompileForExecution(xpath::Path&& path,
                                const QueryOptions& options) {
  auto cp = std::make_shared<query::CompiledPlan>();
  XDB_ASSIGN_OR_RETURN(uint64_t docs, DocCount());
  query::CollectionStatsSnapshot snap;
  {
    // Planning dereferences the ValueIndex objects (def() for matching,
    // EncodeKey for probe bounds, def().name for the EXPLAIN probe lines),
    // so the shared latch is held across ChoosePlan and the probe-line
    // rendering — not just the pointer copy. A concurrent DropValueIndex or
    // RebuildStorage takes the exclusive latch and destroys the ValueIndex,
    // so releasing earlier would leave planning on freed memory; the
    // index_version_ check in ExecuteCompiled only protects the later probe
    // phase. Planning is pure computation on the index definitions (no page
    // I/O), so the hold stays brief.
    ReaderMutexLock latch(latch_);
    query::PlannerContext ctx;
    for (auto& owned : value_indexes_)
      ctx.indexes.push_back(owned.index.get());
    for (auto& owned : structural_indexes_)
      ctx.structural_indexes.push_back(owned.index.get());
    cp->index_version = index_version_.load(std::memory_order_acquire);
    ctx.doc_count = docs;
    // Cheap cardinality statistic (no index walk): stored records per doc.
    uint64_t live = records_->stats().live_records;
    ctx.avg_records_per_doc =
        docs == 0 ? 1.0
                  : static_cast<double>(std::max<uint64_t>(live, docs)) /
                        static_cast<double>(docs);
    // Collected statistics drive the cost model; when they are unavailable
    // (degraded at open) or explicitly bypassed, ChoosePlan falls back to
    // the Section 4.3 heuristic rules. stats_'s mutex is a leaf acquired
    // after latch_ (see the member comment), so snapshotting here is safe.
    snap = stats_.Snapshot();
    if (!options.use_heuristic_planner) ctx.stats = &snap;
    XDB_ASSIGN_OR_RETURN(cp->plan,
                         query::ChoosePlan(path, ctx, options.force));
    cp->avg_records_per_doc = ctx.avg_records_per_doc;
    for (const query::PlannedProbe& p : cp->plan.probes)
      cp->probe_lines.push_back(
          p.pred.full_path.ToString() + " " + xpath::CompOpName(p.pred.op) +
          " ... index '" + p.index->def().name + "' (" +
          (p.match == xpath::IndexMatch::kExact ? "exact" : "filtering") +
          ")");
    if (cp->plan.structural_index != nullptr) {
      cp->probe_lines.push_back(
          "structural element '" + cp->plan.structural_name +
          "' ... index '" + cp->plan.structural_index->def().name +
          "' (interval" +
          (cp->plan.structural_anchor ? ", anchor join)" : ")"));
      // Lookup, not Intern: planning a query must never mutate the
      // dictionary. An absent name means an empty scan at execution.
      cp->structural_name_id =
          engine_->dict()->Lookup(Slice(cp->plan.structural_name));
    }
  }
  cp->stats_epoch = snap.epoch;
  cp->stats_valid = cp->plan.cost_based;
  cp->doc_count = docs;
  cp->nodes_per_doc = snap.valid ? snap.avg_nodes_per_doc() : 0.0;

  // Compile the full query once for scans and per-document evaluation.
  XDB_ASSIGN_OR_RETURN(
      std::unique_ptr<xpath::QueryTree> tree,
      xpath::QueryTree::Compile(path, *engine_->dict(), options.want_values));
  cp->tree = std::move(tree);

  const bool node_level =
      cp->plan.method == query::AccessMethod::kNodeIdList ||
      cp->plan.method == query::AccessMethod::kNodeIdAndOr ||
      cp->plan.method == query::AccessMethod::kStructuralScan;
  if (node_level) {
    const size_t anchor_step = cp->plan.anchor_step;
    // Residual relative path evaluated on each anchor's subtree:
    //   self-context [anchor predicates] / remaining steps...
    xpath::Path residual;
    residual.absolute = false;
    {
      xpath::Step self;
      self.axis = xpath::Axis::kSelf;
      self.test = xpath::NodeTest::kAnyKind;
      // Anchor predicates are re-evaluated; index exactness already pruned
      // most of the work, and this also covers predicates no index served.
      for (const auto& pred : path.steps[anchor_step].predicates)
        self.predicates.push_back(xpath::CloneExpr(*pred));
      residual.steps.push_back(std::move(self));
    }
    for (size_t i = anchor_step + 1; i < path.steps.size(); i++)
      residual.steps.push_back(xpath::CloneStep(path.steps[i]));

    // Anchor names/structure above the anchor step are verified against the
    // main-path prefix via the record header's root path when the index was
    // only a filter; exact plans skip this.
    xpath::Path prefix_pattern;
    prefix_pattern.absolute = true;
    if (!path.absolute) {
      // Relative queries evaluate with the root element as their implicit
      // context; model that context as a wildcard first step so the
      // prefix check accepts anchors the evaluators actually reach
      // (without it a relative "c" compiles to /c and rejects every
      // non-root anchor).
      xpath::Step ctx;
      ctx.axis = xpath::Axis::kChild;
      ctx.test = xpath::NodeTest::kAnyName;
      prefix_pattern.steps.push_back(std::move(ctx));
    }
    for (size_t i = 0; i <= anchor_step; i++)
      prefix_pattern.steps.push_back(xpath::CloneStep(path.steps[i]));
    for (auto& s : prefix_pattern.steps) s.predicates.clear();

    XDB_ASSIGN_OR_RETURN(
        std::unique_ptr<xpath::QueryTree> residual_tree,
        xpath::QueryTree::Compile(residual, *engine_->dict(),
                                  options.want_values));
    cp->residual_tree = std::move(residual_tree);
    cp->prefix_pattern = std::move(prefix_pattern);
  }
  cp->path = std::move(path);
  return std::shared_ptr<const query::CompiledPlan>(std::move(cp));
}

Result<QueryResult> Collection::ExecuteCompiled(
    Transaction* txn, const query::CompiledPlan& cp,
    const QueryOptions& options, const char* cache_state,
    uint64_t plan_wall_us, bool* plan_stale) {
  *plan_stale = false;
  XDB_RETURN_NOT_OK(GuardRepair());
  AutoTxn at(engine_, txn, IsolationMode::kLocking);
  // Always-on wait attribution: every WaitSpan crossed while this scope is
  // installed (lock-manager waits, buffer-miss I/O, latch acquisitions,
  // index probes, WAL commits) adds to `waits`, on this thread and — via
  // the per-chunk re-install in EvalDocsParallel/RecheckAnchors — on pool
  // threads working for this query. Cost when nothing blocks: a TLS store
  // here and two clock reads per span actually crossed.
  obs::WaitStats waits;
  obs::QueryWaitScope wait_scope(&waits);
  QueryResult result;
  const query::QueryPlan& plan = cp.plan;
  // Per-query profile, populated only on request (a default QueryProfile is
  // cheap). The always-on cost of a query is just the engine query counter
  // and latency histogram at the bottom of this function.
  obs::QueryProfile& prof = result.profile;
  if (options.explain || options.trace) {
    prof.enabled = true;
    prof.trace = options.trace;
    prof.collection = meta_.name;
    prof.query = cp.path.ToString();
    prof.access_method = query::AccessMethodName(plan.method);
    prof.reason = plan.reason;
    prof.probes = cp.probe_lines;
    prof.disjunctive = plan.disjunctive;
    prof.need_recheck = plan.need_recheck;
    prof.anchor_step = plan.anchor_step;
    prof.doc_count = cp.doc_count;
    prof.avg_records_per_doc = cp.avg_records_per_doc;
    prof.nodes_per_doc = cp.nodes_per_doc;
    prof.stats_epoch = cp.stats_epoch;
    prof.stats_valid = cp.stats_valid;
    prof.plan_cache = cache_state;
    // Planning time attributed by the caller: parse+plan+compile on a miss,
    // 0 on a cache hit (the hit path skips all three).
    prof.AddPhase("plan", plan_wall_us, 0);
  }
  uint64_t pages_before = 0;
  if (prof.enabled) {
    // Attributed as a before/after delta of the pool counters; approximate
    // under concurrent load (documented in query_trace.h).
    BufferManagerStats bs = buffer_->stats();
    pages_before = bs.hits + bs.misses;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  Status st = [&]() -> Status {
    result.stats.method = plan.method;
    result.stats.explain = plan.explain;
    result.stats.rechecked = plan.need_recheck;

    // Snapshot vs locking read machinery.
    NodeLocator* locator = node_index_.get();
    SnapshotLocator snap(versions_.get(), 0);
    const bool snapshot_read =
        at.get()->mode == IsolationMode::kSnapshot && meta_.mvcc_enabled;
    if (snapshot_read) {
      snap = SnapshotLocator(
          versions_.get(),
          engine_->txns()->Snapshot(at.get(), versions_.get()));
      locator = &snap;
    }

    // Evaluates the full query over a candidate DocID list, fanning out to
    // the engine's query pool when the list is big enough to pay for it.
    // The chunked path appends results in exactly the order the serial loop
    // would, so parallelism never changes the answer.
    auto eval_docs = [&](const std::vector<uint64_t>& docs_list) -> Status {
      obs::PhaseTimer timer(&prof, "eval");
      Transaction* lock_txn = snapshot_read ? nullptr : at.get();
      const size_t parallelism =
          static_cast<size_t>(EffectiveParallelism(options));
      std::vector<query::WorkRange> ranges =
          query::PartitionForParallelism(docs_list.size(), parallelism);
      // Unconditional: two plain stores, and the always-on
      // query.parallel_executions counter reads chunks afterwards.
      prof.parallelism = ranges.empty() ? 1 : static_cast<int>(parallelism);
      prof.chunks = ranges.empty() ? 1 : ranges.size();
      if (ranges.empty()) {
        return EvalDocRange(lock_txn, docs_list, 0, docs_list.size(),
                            cp.tree.get(), locator, &result);
      }
      return EvalDocsParallel(lock_txn, docs_list, ranges, parallelism,
                              cp.tree.get(), locator, &result);
    };

    if (plan.method == query::AccessMethod::kFullScan) {
      XDB_ASSIGN_OR_RETURN(std::vector<uint64_t> all_docs, ListDocIds());
      if (prof.enabled) prof.candidate_docs = all_docs.size();
      result.stats.candidate_docs = all_docs.size();
      XDB_RETURN_NOT_OK(eval_docs(all_docs));
      NormalizeSequence(&result.nodes);
      return Status::OK();
    }

    // Probe the indexes under the shared latch (no doc locks held yet, so
    // this cannot invert the doc-lock-before-latch order).
    std::vector<std::vector<Posting>> postings_per_probe;
    std::vector<Posting> structural_postings;
    {
      obs::PhaseTimer timer(&prof, "probe");
      obs::WaitSpan latch_span(engine_->wait_sink(), obs::WaitState::kLatch);
      ReaderMutexLock latch(latch_);
      latch_span.Finish();
      // Structure-version gate: the plan's ValueIndex pointers are only safe
      // to dereference while the index set is the one it was compiled
      // against. A mismatch (index dropped, storage rebuilt) makes the plan
      // stale — the caller replans; it is never served.
      if (index_version_.load(std::memory_order_acquire) !=
          cp.index_version) {
        *plan_stale = true;
        return Status::Busy("plan compiled against a changed index set");
      }
      for (size_t pi = 0; pi < plan.probes.size(); pi++) {
        const query::PlannedProbe& probe = plan.probes[pi];
        std::optional<KeyBound> lo, hi;
        bool not_equal = false;
        XDB_RETURN_NOT_OK(
            query::ProbeBounds(*probe.index, probe.pred, &lo, &hi, &not_equal));
        std::vector<Posting> postings;
        obs::WaitSpan probe_span(engine_->wait_sink(),
                                 obs::WaitState::kIndexProbe);
        XDB_RETURN_NOT_OK(probe.index->Scan(lo, hi, &postings));
        probe_span.Finish();
        result.stats.index_postings += postings.size();
        if (prof.trace)
          prof.trace_lines.push_back(
              "probe " + std::to_string(pi) + " index '" +
              probe.index->def().name + "' -> " +
              std::to_string(postings.size()) + " postings");
        postings_per_probe.push_back(std::move(postings));
      }
      // Structural range scan, under the same latch + version gate as the
      // value probes (the plan's StructuralIndex pointer has the same
      // lifetime contract). A never-interned name scans nothing.
      if (plan.structural_index != nullptr &&
          cp.structural_name_id != NameDictionary::kInvalidNameId) {
        std::vector<StructuralPosting> entries;
        obs::WaitSpan probe_span(engine_->wait_sink(),
                                 obs::WaitState::kIndexProbe);
        XDB_RETURN_NOT_OK(
            plan.structural_index->Scan(cp.structural_name_id, &entries));
        probe_span.Finish();
        structural_postings.reserve(entries.size());
        for (StructuralPosting& e : entries)
          structural_postings.push_back(
              Posting{e.doc_id, std::move(e.node_id), Rid()});
        result.stats.index_postings += structural_postings.size();
        if (prof.trace)
          prof.trace_lines.push_back(
              "structural scan index '" +
              plan.structural_index->def().name + "' element '" +
              plan.structural_name + "' -> " +
              std::to_string(structural_postings.size()) + " entries");
      }
    }

    if (plan.method == query::AccessMethod::kStructuralScan) {
      // The scan IS the anchor list: entries arrive ordered by (doc,
      // document position), which is exactly the (doc, node-ID byte) order
      // the recheck pipeline expects. The prefix pattern plus residual
      // validate the full path around each instance.
      std::vector<Posting> anchors = std::move(structural_postings);
      result.stats.candidate_anchors = anchors.size();
      if (prof.trace)
        prof.trace_lines.push_back("structural anchors -> " +
                                   std::to_string(anchors.size()) +
                                   " candidates");
      {
        obs::PhaseTimer timer(&prof, "recheck");
        XDB_RETURN_NOT_OK(RecheckAnchors(snapshot_read ? nullptr : at.get(),
                                         cp.residual_tree.get(),
                                         cp.prefix_pattern, anchors, options,
                                         locator, &result));
      }
      NormalizeSequence(&result.nodes);
      return Status::OK();
    }

    const bool node_level =
        plan.method == query::AccessMethod::kNodeIdList ||
        plan.method == query::AccessMethod::kNodeIdAndOr;

    if (!node_level) {
      // DocID list / ANDing / ORing, then per-document evaluation.
      std::vector<uint64_t> docs_list;
      {
        obs::PhaseTimer timer(&prof, "merge");
        docs_list =
            query::MergeCandidateDocIds(postings_per_probe, plan.disjunctive);
      }
      result.stats.candidate_docs = docs_list.size();
      if (prof.trace)
        prof.trace_lines.push_back(
            std::string(plan.disjunctive ? "union" : "intersection") +
            " of doc lists -> " + std::to_string(docs_list.size()) +
            " candidate docs");
      XDB_RETURN_NOT_OK(eval_docs(docs_list));
      NormalizeSequence(&result.nodes);
      return Status::OK();
    }

    // NodeID-level: anchor each posting at the predicate step.
    std::vector<Posting> anchors;
    {
      obs::PhaseTimer timer(&prof, "merge");
      std::vector<std::vector<Posting>> anchored;
      for (size_t i = 0; i < postings_per_probe.size(); i++) {
        std::vector<Posting> a;
        if (plan.structural_anchor &&
            plan.probes[i].pred.strip_levels < 0) {
          // Descendant branch: the value node's anchor ancestors come from
          // the interval join instead of level-stripping.
          XDB_RETURN_NOT_OK(query::StructuralAnchorJoin(
              postings_per_probe[i], structural_postings, &a));
        } else {
          XDB_RETURN_NOT_OK(query::AnchorPostings(
              postings_per_probe[i], plan.probes[i].pred.strip_levels, &a));
        }
        anchored.push_back(std::move(a));
      }
      anchors = plan.disjunctive
                    ? query::UnionPostings(std::move(anchored))
                    : query::IntersectPostings(std::move(anchored));
    }
    result.stats.candidate_anchors = anchors.size();
    if (prof.trace)
      prof.trace_lines.push_back(
          std::string(plan.disjunctive ? "union" : "intersection") +
          " of anchored postings -> " + std::to_string(anchors.size()) +
          " candidate anchors");
    {
      obs::PhaseTimer timer(&prof, "recheck");
      XDB_RETURN_NOT_OK(RecheckAnchors(snapshot_read ? nullptr : at.get(),
                                       cp.residual_tree.get(),
                                       cp.prefix_pattern, anchors, options,
                                       locator, &result));
    }
    NormalizeSequence(&result.nodes);
    return Status::OK();
  }();
  // Always-on query accounting: one histogram observe and one or two counter
  // adds per query (the hot-path budget measured in EXPERIMENTS.md).
  const uint64_t wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  if (engine_ != nullptr) {
    const Engine::QueryMetrics& qm = engine_->query_metrics();
    if (qm.executions != nullptr) qm.executions->Add(1);
    if (qm.parallel_executions != nullptr && prof.chunks > 1)
      qm.parallel_executions->Add(1);
    if (qm.latency_us != nullptr) qm.latency_us->Observe(wall_us);
  }
  if (prof.enabled) {
    prof.index_postings = result.stats.index_postings;
    prof.candidate_anchors = result.stats.candidate_anchors;
    if (prof.candidate_docs == 0)
      prof.candidate_docs = result.stats.candidate_docs;
    prof.docs_evaluated = result.stats.docs_evaluated;
    prof.records_fetched = result.stats.records_fetched;
    prof.results = result.nodes.size();
    prof.scan_events = result.stats.scan_events;
    prof.scan_instances = result.stats.scan_instances;
    prof.scan_peak_live = result.stats.scan_peak_live;
    BufferManagerStats bs = buffer_->stats();
    prof.pages_fetched = bs.hits + bs.misses - pages_before;
    // "total" covers plan + execution, so the per-phase lines (plan, probe,
    // merge, eval/recheck) sum to it up to untimed glue between phases.
    prof.AddPhase("total", plan_wall_us + wall_us, 0);
    for (size_t s = 0; s < obs::kWaitStateCount; s++) {
      const obs::WaitState ws = static_cast<obs::WaitState>(s);
      const uint64_t c = waits.Count(ws);
      if (c == 0) continue;
      prof.waits.push_back(obs::QueryProfile::WaitLine{
          obs::WaitStateName(ws), waits.TotalUs(ws), c});
    }
    prof.wait_total_us = waits.GrandTotalUs();
  }
  // Slow-query capture (always-on; one comparison when under the
  // threshold). Strings are built only for queries actually captured.
  const uint64_t slow_threshold_us =
      engine_ != nullptr ? engine_->slow_query_threshold_us() : 0;
  if (slow_threshold_us > 0 && plan_wall_us + wall_us >= slow_threshold_us) {
    obs::SlowQueryRecord rec;
    rec.timestamp_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    rec.wall_us = plan_wall_us + wall_us;
    rec.results = result.nodes.size();
    rec.parallelism =
        prof.chunks > 1 ? static_cast<uint64_t>(prof.parallelism) : 1;
    rec.collection = meta_.name;
    rec.query = cp.path.ToString();
    rec.access_method = query::AccessMethodName(plan.method);
    for (size_t s = 0; s < obs::kWaitStateCount; s++) {
      const obs::WaitState ws = static_cast<obs::WaitState>(s);
      rec.wait_us[s] = waits.TotalUs(ws);
      rec.wait_count[s] = waits.Count(ws);
    }
    engine_->slow_queries()->Record(rec);
  }
  XDB_RETURN_NOT_OK(at.Finish(st));
  return result;
}

Status Collection::RecheckAnchors(Transaction* txn,
                                  const xpath::QueryTree* residual_tree,
                                  const xpath::Path& prefix_pattern,
                                  const std::vector<Posting>& anchors,
                                  const QueryOptions& options,
                                  NodeLocator* locator, QueryResult* result) {
  // The residual tree (self[anchor predicates]/remaining steps) and the
  // predicate-free main-path prefix arrive pre-compiled in the CompiledPlan
  // (see CompileForExecution), so a plan-cache hit reaches this phase with
  // nothing left to parse or compile.

  // Doc locks first, all on this thread: they can block, and the
  // transaction's lock table is not safe for concurrent mutation. Locks are
  // held until commit either way, so taking them up front is equivalent.
  if (txn != nullptr) {
    std::set<uint64_t> locked_docs;
    for (const Posting& anchor : anchors)
      if (locked_docs.insert(anchor.doc_id).second)
        XDB_RETURN_NOT_OK(ReadLockDoc(txn, anchor.doc_id));
  }

  const size_t parallelism =
      static_cast<size_t>(EffectiveParallelism(options));
  std::vector<query::WorkRange> ranges =
      query::PartitionForParallelism(anchors.size(), parallelism);
  result->profile.parallelism =
      ranges.empty() ? 1 : static_cast<int>(parallelism);
  result->profile.chunks = ranges.empty() ? 1 : ranges.size();
  if (ranges.empty()) {
    for (const Posting& anchor : anchors)
      XDB_RETURN_NOT_OK(EvalAnchor(anchor, residual_tree, prefix_pattern,
                                   locator, result));
    return Status::OK();
  }

  // Parallel recheck: one task per contiguous anchor chunk; per-chunk
  // results merge in chunk order so the output matches the serial loop.
  std::vector<QueryResult> chunks(ranges.size());
  std::vector<Status> chunk_status(ranges.size());
  // Pool threads have no wait scope of their own; re-install this query's
  // so per-chunk latch/buffer waits attribute to it (WaitStats is atomic,
  // safe for concurrent Add from every chunk).
  obs::WaitStats* query_waits = obs::QueryWaitScope::current();
  engine_->query_pool()->ParallelFor(
      ranges.size(), parallelism, [&](size_t i) {
        obs::QueryWaitScope chunk_scope(query_waits);
        for (size_t j = ranges[i].begin;
             j < ranges[i].end && chunk_status[i].ok(); j++) {
          chunk_status[i] = EvalAnchor(anchors[j], residual_tree,
                                       prefix_pattern, locator, &chunks[i]);
        }
      });
  for (const Status& st : chunk_status) XDB_RETURN_NOT_OK(st);
  for (QueryResult& c : chunks) {
    result->stats.records_fetched += c.stats.records_fetched;
    result->stats.scan_events += c.stats.scan_events;
    result->stats.scan_instances += c.stats.scan_instances;
    result->stats.scan_peak_live =
        std::max(result->stats.scan_peak_live, c.stats.scan_peak_live);
    for (ResultNode& r : c.nodes) result->nodes.push_back(std::move(r));
  }
  return Status::OK();
}

Status Collection::EvalAnchor(const Posting& anchor,
                              const xpath::QueryTree* residual,
                              const xpath::Path& prefix_pattern,
                              NodeLocator* locator, QueryResult* result) {
  obs::WaitSpan latch_span(engine_->wait_sink(), obs::WaitState::kLatch);
  ReaderMutexLock latch(latch_);
  latch_span.Finish();
  // Verify the anchor's own path against the main-path prefix.
  {
    auto rid = locator->Lookup(anchor.doc_id, Slice(anchor.node_id));
    if (!rid.ok()) return Status::OK();  // e.g. not visible at this snapshot
    std::string record;
    Status st = records_->Get(rid.value(), &record);
    if (!st.ok()) return Status::OK();
    RecordWalker walker((Slice(record)));
    XDB_RETURN_NOT_OK(walker.Init());
    // Build the anchor's concrete path: header path + in-record names.
    xpath::Path concrete;
    concrete.absolute = true;
    const RecordHeader& header = walker.header();
    std::vector<Slice> levels;
    XDB_RETURN_NOT_OK(nodeid::SplitLevels(header.context_node_id, &levels));
    bool bad = false;
    for (size_t i = 0; i < header.root_path.size(); i++) {
      xpath::Step step;
      step.axis = xpath::Axis::kChild;
      step.test = xpath::NodeTest::kName;
      auto name = engine_->dict()->Name(header.root_path[i].local);
      if (!name.ok()) {
        bad = true;
        break;
      }
      step.name = name.MoveValue();
      concrete.steps.push_back(std::move(step));
    }
    if (bad) return Status::OK();
    // Walk down to the anchor collecting element names.
    bool found = Slice(anchor.node_id) == header.context_node_id;
    while (!found) {
      RecordWalker::Event ev;
      XDB_RETURN_NOT_OK(walker.Next(&ev));
      if (ev.type == RecordWalker::EventType::kDone) break;
      if (ev.type != RecordWalker::EventType::kStart) continue;
      Slice abs(ev.entry.abs_id);
      bool on_path = abs == Slice(anchor.node_id) ||
                     nodeid::IsAncestor(abs, Slice(anchor.node_id));
      if (!on_path) {
        if (ev.entry.kind == NodeKind::kElement) walker.SkipChildren();
        continue;
      }
      if (ev.entry.kind == NodeKind::kElement ||
          ev.entry.kind == NodeKind::kAttribute) {
        xpath::Step step;
        step.axis = ev.entry.kind == NodeKind::kAttribute
                        ? xpath::Axis::kAttribute
                        : xpath::Axis::kChild;
        step.test = xpath::NodeTest::kName;
        auto name = engine_->dict()->Name(ev.entry.local);
        if (!name.ok()) {
          bad = true;
          break;
        }
        step.name = name.MoveValue();
        concrete.steps.push_back(std::move(step));
      }
      if (abs == Slice(anchor.node_id)) found = true;
    }
    if (bad || !found) return Status::OK();
    if (!xpath::PathContains(prefix_pattern, concrete)) return Status::OK();
  }

  // Evaluate the residual on the anchor subtree.
  StoredDocSource source(records_.get(), locator, anchor.doc_id,
                         anchor.node_id);
  xpath::QuickXScan scan(residual, anchor.doc_id);
  NodeSequence hits;
  Status st = scan.Run(&source, &hits);
  if (st.IsNotFound()) return Status::OK();
  XDB_RETURN_NOT_OK(st);
  result->stats.records_fetched += source.records_fetched();
  const xpath::QuickXScanStats& ss = scan.stats();
  result->stats.scan_events += ss.events;
  result->stats.scan_instances += ss.instances_created;
  result->stats.scan_peak_live =
      std::max(result->stats.scan_peak_live, ss.peak_live_instances);
  for (ResultNode& r : hits) result->nodes.push_back(std::move(r));
  return Status::OK();
}

int Collection::EffectiveParallelism(const QueryOptions& options) const {
  if (engine_ == nullptr || engine_->query_pool() == nullptr) return 1;
  int p = options.parallelism > 0 ? options.parallelism
                                  : engine_->options().num_query_threads;
  int cap = static_cast<int>(engine_->query_pool()->size()) + 1;
  return std::max(1, std::min(p, cap));
}

Status Collection::EvalDocRange(Transaction* txn,
                                const std::vector<uint64_t>& docs,
                                size_t begin, size_t end,
                                const xpath::QueryTree* tree,
                                NodeLocator* locator, QueryResult* result) {
  for (size_t i = begin; i < end; i++) {
    const uint64_t doc_id = docs[i];
    // Doc lock first (it can block), then the shared latch for the reads.
    if (txn != nullptr) XDB_RETURN_NOT_OK(ReadLockDoc(txn, doc_id));
    obs::WaitSpan latch_span(engine_->wait_sink(), obs::WaitState::kLatch);
    ReaderMutexLock latch(latch_);
    latch_span.Finish();
    StoredDocSource source(records_.get(), locator, doc_id);
    xpath::QuickXScan scan(tree, doc_id);
    NodeSequence hits;
    Status est = scan.Run(&source, &hits);
    if (est.IsNotFound()) continue;  // invisible at snapshot
    XDB_RETURN_NOT_OK(est);
    result->stats.records_fetched += source.records_fetched();
    result->stats.docs_evaluated++;
    const xpath::QuickXScanStats& ss = scan.stats();
    result->stats.scan_events += ss.events;
    result->stats.scan_instances += ss.instances_created;
    result->stats.scan_peak_live =
        std::max(result->stats.scan_peak_live, ss.peak_live_instances);
    for (ResultNode& r : hits) result->nodes.push_back(std::move(r));
  }
  return Status::OK();
}

Status Collection::EvalDocsParallel(Transaction* txn,
                                    const std::vector<uint64_t>& docs,
                                    const std::vector<query::WorkRange>& ranges,
                                    size_t parallelism,
                                    const xpath::QueryTree* tree,
                                    NodeLocator* locator,
                                    QueryResult* result) {
  // Doc locks first, all on this thread (see RecheckAnchors for why).
  if (txn != nullptr)
    for (uint64_t doc_id : docs) XDB_RETURN_NOT_OK(ReadLockDoc(txn, doc_id));
  std::vector<QueryResult> chunks(ranges.size());
  std::vector<Status> chunk_status(ranges.size());
  // See RecheckAnchors: carry the query's wait scope onto pool threads.
  obs::WaitStats* query_waits = obs::QueryWaitScope::current();
  engine_->query_pool()->ParallelFor(
      ranges.size(), parallelism, [&](size_t i) {
        obs::QueryWaitScope chunk_scope(query_waits);
        chunk_status[i] =
            EvalDocRange(nullptr, docs, ranges[i].begin, ranges[i].end, tree,
                         locator, &chunks[i]);
      });
  // Merge in chunk order: chunk i holds exactly the results the serial loop
  // would have appended for docs[ranges[i]], so concatenation reproduces the
  // serial sequence. The lowest-index chunk's error wins, like a serial
  // loop stopping at the first failure.
  for (const Status& st : chunk_status) XDB_RETURN_NOT_OK(st);
  for (QueryResult& c : chunks) {
    result->stats.records_fetched += c.stats.records_fetched;
    result->stats.docs_evaluated += c.stats.docs_evaluated;
    result->stats.scan_events += c.stats.scan_events;
    result->stats.scan_instances += c.stats.scan_instances;
    result->stats.scan_peak_live =
        std::max(result->stats.scan_peak_live, c.stats.scan_peak_live);
    for (ResultNode& r : c.nodes) result->nodes.push_back(std::move(r));
  }
  return Status::OK();
}

Status Collection::GuardRepair() const {
  if (!needs_repair_) return Status::OK();
  return Status::Corruption("collection '" + meta_.name +
                            "' is quarantined pending repair: " +
                            repair_reason_);
}

Status Collection::GuardWrite() const {
  XDB_RETURN_NOT_OK(GuardRepair());
  return engine_->GuardWritable();
}

Result<std::string> Collection::ReadDocTokensForScrub(uint64_t doc_id) {
  ReaderMutexLock latch(latch_);
  StoredDocSource source(records_.get(), node_index_.get(), doc_id);
  TokenWriter tokens;
  XDB_RETURN_NOT_OK(EventsToTokens(&source, &tokens));
  if (tokens.data().size() == 0)
    return Status::Corruption("document " + std::to_string(doc_id) +
                              " reads back empty");
  return tokens.data().ToString();
}

Status Collection::RebuildStorage() {
  WriterMutexLock latch(latch_);
  // Tear down top-down so nothing flushes into the space after it is reset.
  value_indexes_.clear();
  structural_indexes_.clear();
  node_index_.reset();
  versions_.reset();
  docid_tree_.reset();
  nodeid_tree_.reset();
  versioned_tree_.reset();
  records_.reset();
  buffer_.reset();

  if (space_ != nullptr) {
    XDB_RETURN_NOT_OK(space_->Reset());
  } else {
    // The space header itself was unreadable: recreate the file from scratch
    // (Create truncates).
    TableSpaceOptions ts;
    ts.in_memory = engine_->options_.in_memory;
    ts.page_size = page_size_hint_;
    XDB_ASSIGN_OR_RETURN(space_, TableSpace::Create(space_path_, ts));
    space_->set_event_log(engine_->events());
  }

  buffer_ =
      std::make_unique<BufferManager>(space_.get(), buffer_pages_, buffer_shards_);
  buffer_->set_event_log(engine_->events());
  buffer_->set_wait_sink(engine_->wait_sink());
  Engine* eng = engine_;
  buffer_->set_lsn_source(
      [eng] { return eng->wal_ != nullptr ? eng->wal_->size() : 0; });
  records_ = std::make_unique<RecordManager>(buffer_.get());

  XDB_ASSIGN_OR_RETURN(docid_tree_, BTree::Create(buffer_.get()));
  XDB_ASSIGN_OR_RETURN(nodeid_tree_, BTree::Create(buffer_.get()));
  meta_.docid_index_root = docid_tree_->root();
  meta_.nodeid_index_root = nodeid_tree_->root();
  node_index_ = std::make_unique<NodeIdIndex>(nodeid_tree_.get());
  if (meta_.mvcc_enabled) {
    XDB_ASSIGN_OR_RETURN(versioned_tree_, BTree::Create(buffer_.get()));
    meta_.versioned_index_root = versioned_tree_->root();
    versions_ = std::make_unique<VersionManager>(versioned_tree_.get());
    versions_->InitCounters(meta_.last_version);
  }
  for (ValueIndexMeta& vi : meta_.value_indexes) {
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                         BTree::Create(buffer_.get()));
    vi.root = tree->root();
    auto index = std::make_unique<ValueIndex>(vi.def, tree.get());
    index->set_stats_listener(stats_.ListenerFor(vi.def.name));
    value_indexes_.push_back(
        OwnedValueIndex{std::move(tree), std::move(index)});
  }
  for (StructuralIndexMeta& si : meta_.structural_indexes) {
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree,
                         BTree::Create(buffer_.get()));
    si.root = tree->root();
    auto index = std::make_unique<StructuralIndex>(si.def, tree.get());
    index->set_stats_listener(stats_.StructuralListenerFor(si.def.name));
    structural_indexes_.push_back(
        OwnedStructuralIndex{std::move(tree), std::move(index)});
  }
  // Empty storage, empty (but valid) statistics; the epoch stays monotonic
  // so cached-plan keys from before the rebuild can never match again.
  stats_.ResetEmpty(stats_.epoch());
  index_version_.fetch_add(1, std::memory_order_acq_rel);
  plan_cache_.Invalidate("storage rebuilt");
  return Status::OK();
}

Status Collection::ScrubAndRepair(CollectionScrubReport* report,
                                  std::set<uint64_t>* salvaged_ids,
                                  std::set<uint64_t>* lost_ids) {
  report->collection = meta_.name;
  bool structural = needs_repair_;
  uint64_t corrupt_pages = 0;

  if (space_ != nullptr) {
    // Make the sweep see current state, then read raw below the buffer pool
    // so quarantined pages are inspected too. Flush failures themselves are
    // damage worth repairing, not a reason to abort the scrub.
    if (buffer_ != nullptr) {
      Status fs = buffer_->FlushAll();
      if (!fs.ok()) {
        structural = true;
        report->notes.push_back("flush before scrub: " + fs.ToString());
      }
    }
    const uint32_t psize = space_->page_size();
    std::vector<char> buf(psize);
    for (PageId id = 1; id < space_->page_count(); id++) {
      report->pages_scanned++;
      Status rs = space_->ReadPage(id, buf.data());
      if (!rs.ok()) {
        corrupt_pages++;
        report->checksum_failures++;  // unreadable counts as corrupt
        report->notes.push_back("page " + std::to_string(id) + ": " +
                                rs.ToString());
        continue;
      }
      if (space_->format_version() >= kTableSpaceFormatV2) {
        Status vs = VerifyPageChecksum(buf.data(), psize, id);
        if (!vs.ok()) {
          corrupt_pages++;
          report->checksum_failures++;
          report->notes.push_back(vs.ToString());
          continue;
        }
        if (PageFlags(buf.data()) & kPageFlagFree) continue;
      }
      const char* payload = buf.data() + space_->data_offset();
      if (static_cast<uint8_t>(payload[0]) == kDataPage) {
        Status es =
            RecordManager::VerifyDataPage(payload, space_->usable_page_size());
        if (!es.ok()) {
          corrupt_pages++;
          report->envelope_failures++;
          report->notes.push_back("page " + std::to_string(id) + ": " +
                                  es.ToString());
        }
      }
    }
  }

  bool any_damage = structural || corrupt_pages > 0;
  if (!any_damage && buffer_ != nullptr)
    any_damage = !buffer_->quarantined_pages().empty();
  if (!any_damage) return Status::OK();

  // Salvage every document that still reads back intact, as a serialized
  // token stream (independent of the storage about to be rebuilt).
  std::vector<std::pair<uint64_t, std::string>> salvage;
  if (!structural) {
    auto ids = [&]() {
      ReaderMutexLock latch(latch_);
      return ListDocIdsUnlocked();
    }();
    if (ids.ok()) {
      for (uint64_t doc : ids.value()) {
        auto tok = ReadDocTokensForScrub(doc);
        if (tok.ok()) {
          salvage.emplace_back(doc, tok.MoveValue());
        } else {
          lost_ids->insert(doc);
          report->notes.push_back("doc " + std::to_string(doc) +
                                  " unreadable: " + tok.status().ToString());
        }
      }
    } else {
      // DocID index itself is damaged — nothing enumerable; the WAL replay
      // after the rebuild is the only recovery path.
      report->notes.push_back("docid index unreadable: " +
                              ids.status().ToString());
    }
  } else {
    report->notes.push_back("structural corruption (" + repair_reason_ +
                            "); salvage limited to WAL replay");
  }

  XDB_RETURN_NOT_OK(RebuildStorage());
  report->rebuilt = true;
  needs_repair_ = false;
  repair_reason_.clear();

  for (auto& [doc, tokens] : salvage) {
    Transaction txn = engine_->Begin(IsolationMode::kLocking);
    Status st = WriteLockDoc(&txn, doc);
    if (st.ok()) {
      auto res = InsertTokensLocked(&txn, Slice(tokens), doc);
      st = res.ok() ? Status::OK() : res.status();
    }
    if (st.ok()) st = engine_->Commit(&txn);
    else (void)engine_->Abort(&txn);
    if (st.ok()) {
      salvaged_ids->insert(doc);
      report->docs_salvaged++;
    } else {
      lost_ids->insert(doc);
      report->notes.push_back("doc " + std::to_string(doc) +
                              " lost during re-insert: " + st.ToString());
    }
    {
      MutexLock lock(docid_mu_);
      if (doc >= meta_.next_doc_id) meta_.next_doc_id = doc + 1;
    }
  }
  return Status::OK();
}

}  // namespace xdb
