// Engine: the database facade — collections, schema registry, the shared
// name dictionary, transactions, WAL-based recovery, and catalog
// persistence. This is the integration point of Figure 1: XML services and
// relational-style services over one data management infrastructure.
#ifndef XDB_ENGINE_ENGINE_H_
#define XDB_ENGINE_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cc/lock_manager.h"
#include "cc/transaction.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/catalog.h"
#include "engine/collection.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "schema/schema_compiler.h"
#include "schema/validator_vm.h"
#include "storage/wal_log.h"
#include "util/thread_pool.h"
#include "xml/name_dictionary.h"
#include "xml/parser.h"

namespace xdb {

struct EngineOptions {
  /// Directory for table spaces, WAL and catalog. Ignored when in_memory.
  std::string dir;
  /// Pure in-memory engine: no files, no WAL (tests and CPU benches).
  bool in_memory = false;
  /// Strip whitespace-only text nodes at parse time (data-centric mode).
  bool strip_whitespace = true;
  /// Write-ahead logging for document operations.
  bool enable_wal = true;
  /// Maximum threads evaluating one query (including the caller). Values
  /// > 1 create a shared work-stealing pool of num_query_threads - 1
  /// helpers; queries opt in per call via QueryOptions::parallelism (0 =
  /// this default). 1 keeps the serial executor with no pool at all.
  int num_query_threads = 1;
  /// Buffer pool shards per collection (0 = auto from the pool size,
  /// rounded down to a power of two). Overridable per collection.
  size_t buffer_shards = 0;
  /// Fsync the WAL after every logged document operation. Concurrent
  /// committers coalesce onto one fdatasync (group commit). Off by default:
  /// the engine's durability unit is the checkpoint, and WAL records reach
  /// the OS (surviving a process crash) without the fsync cost.
  bool sync_commits = false;
  /// Compiled-plan cache entries per collection (0 disables the cache).
  /// Entries are keyed by (query text, force mode, want_values, stats
  /// epoch), so any document or index change implicitly invalidates them.
  size_t plan_cache_capacity = 64;
};

/// What Engine::Scrub() found and fixed across the whole database.
struct ScrubReport {
  std::vector<CollectionScrubReport> collections;
  /// Stats of the filtered WAL replay run for rebuilt collections (zero when
  /// nothing needed a rebuild).
  WalReplayInfo replay;
  /// True when no collection had any damage.
  bool clean = true;
};

/// What Open() observed while recovering: WAL replay stats plus any
/// collections that had to be quarantined for later repair.
struct RecoveryInfo {
  WalReplayInfo wal;
  std::vector<std::string> quarantined_collections;
  /// Human-readable summary of anything abnormal; empty on a clean open.
  std::string warning;
};

class Engine {
 public:
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Opens (or creates) a database. Runs catalog load + WAL replay.
  static Result<std::unique_ptr<Engine>> Open(const EngineOptions& options);

  Result<Collection*> CreateCollection(const std::string& name,
                                       const CollectionOptions& options = {})
      XDB_EXCLUDES(mu_);
  Result<Collection*> GetCollection(const std::string& name)
      XDB_EXCLUDES(mu_);
  Status DropCollection(const std::string& name) XDB_EXCLUDES(mu_);

  /// Registers a schema: parse + compile to the binary format + store in
  /// the catalog (Figure 4's registration path).
  Status RegisterSchema(const std::string& name, Slice schema_text)
      XDB_EXCLUDES(mu_);
  Result<const schema::CompiledSchema*> FindSchema(const std::string& name)
      XDB_EXCLUDES(mu_);

  /// Begins a transaction (kLocking or kSnapshot isolation).
  Transaction Begin(IsolationMode mode = IsolationMode::kLocking);
  Status Commit(Transaction* txn) { return txns_->Commit(txn); }
  Status Abort(Transaction* txn) { return txns_->Abort(txn); }

  /// Flushes data, persists the catalog, truncates the WAL. Takes each
  /// collection's latch shared, which excludes concurrent writers while
  /// their pages flush.
  Status Checkpoint() XDB_EXCLUDES(mu_);

  /// Sweeps every table space: verifies every page checksum and every data
  /// page's record envelope, rebuilds damaged collections from still-readable
  /// records plus a filtered WAL replay, and checkpoints the repaired state.
  /// Quarantined collections come back online when repair succeeds.
  Result<ScrubReport> Scrub();

  /// WAL replay stats and quarantine decisions from the last Open().
  const RecoveryInfo& recovery_info() const { return recovery_; }

  /// One coherent snapshot of every engine metric: buffer pool, WAL and
  /// group commit, lock manager, tablespace I/O and retries, record manager,
  /// query counters. Names follow the `component.noun` scheme documented in
  /// DESIGN.md §Observability.
  obs::MetricsSnapshot MetricsSnapshot() const XDB_EXCLUDES(mu_);

  /// The most recent structured engine events, oldest first (checkpoints,
  /// scrub findings, quarantines, deadlock victims, group-commit rounds,
  /// I/O retries).
  std::vector<obs::Event> RecentEvents(size_t max = SIZE_MAX) const {
    return events_.Recent(max);
  }

  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::EventLog* events() { return &events_; }

  /// Always-on query instrumentation, registered at Open. Pointers into
  /// metrics_ (stable for the engine's lifetime); null only before Open
  /// finishes wiring.
  struct QueryMetrics {
    obs::Counter* executions = nullptr;
    obs::Counter* parallel_executions = nullptr;
    obs::Histogram* latency_us = nullptr;
  };
  const QueryMetrics& query_metrics() const { return query_metrics_; }

  NameDictionary* dict() { return &dict_; }
  LockManager* locks() { return &locks_; }
  TransactionManager* txns() { return txns_.get(); }
  /// Shared query worker pool; null when the engine is configured serial
  /// (num_query_threads <= 1).
  util::ThreadPool* query_pool() { return query_pool_.get(); }
  /// The write-ahead log (null for in-memory engines or enable_wal=false).
  /// Exposed for tests and benches inspecting commit/sync counters.
  WalLog* wal() { return wal_.get(); }
  const EngineOptions& options() const { return options_; }
  Parser MakeParser() {
    ParserOptions po;
    po.strip_whitespace_text = options_.strip_whitespace;
    return Parser(&dict_, po);
  }

 private:
  friend class Collection;
  Engine() : locks_() {}

  Result<std::unique_ptr<Collection>> OpenCollection(const CollectionMeta& meta,
                                                     bool create,
                                                     const CollectionOptions& options);
  /// Replays the WAL. When `filter` is set, only records for which
  /// filter(collection, doc_id) returns true are applied (Scrub uses this to
  /// skip documents it already salvaged); kDefineName records always apply.
  /// Replay stats land in `info` when non-null.
  using ReplayFilter = std::function<bool(const std::string&, uint64_t)>;
  Status ReplayWal(const ReplayFilter& filter = {},
                   WalReplayInfo* info = nullptr) XDB_EXCLUDES(mu_);
  /// Appends a kDefineName record for every dictionary entry interned since
  /// the last checkpoint (or the last call). Must run before logging any
  /// record whose token payload references those names.
  Status LogNewNames() XDB_EXCLUDES(wal_names_mu_);
  /// Appends one redo record and, when sync_commits is on, group-commits it.
  Status AppendWal(WalRecordType type, Slice payload);
  Status LogInsert(const std::string& collection, uint64_t doc_id,
                   Slice tokens);
  Status LogDelete(const std::string& collection, uint64_t doc_id);
  Status LogUpdate(const std::string& collection, uint64_t doc_id,
                   Slice node_id, Slice new_text);
  Status LogInsertSubtree(const std::string& collection, uint64_t doc_id,
                          Slice parent_id, Slice after_id, Slice tokens);
  Status LogDeleteSubtree(const std::string& collection, uint64_t doc_id,
                          Slice node_id);

  /// Aggregates per-component stats into one snapshot; registered as a
  /// registry collector at Open (takes mu_, then each component's own lock).
  void CollectComponentMetrics(std::vector<obs::Metric>* out) const
      XDB_EXCLUDES(mu_);

  // options_, dict_, locks_, txns_ and wal_ are fixed after Open() and
  // internally synchronized; mu_ guards the mutable catalog state below it.
  EngineOptions options_;
  // Observability sinks. Declared before every component that holds a
  // pointer into them (locks_, wal_, collections_ storage) so they are
  // destroyed last; both are internally synchronized.
  obs::MetricsRegistry metrics_;
  obs::EventLog events_;
  QueryMetrics query_metrics_;
  /// Engine-wide plan-cache counters (query.plan_cache.*), shared by every
  /// collection's cache; registered at Open alongside query_metrics_.
  query::PlanCache::Counters plan_cache_counters_;
  NameDictionary dict_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> txns_;
  std::unique_ptr<WalLog> wal_;
  // Mutable so the const metrics collector can walk collections_.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Collection>> collections_
      XDB_GUARDED_BY(mu_);
  std::map<std::string, schema::CompiledSchema> schemas_ XDB_GUARDED_BY(mu_);
  CatalogData catalog_ XDB_GUARDED_BY(mu_);
  /// num_query_threads - 1 work-stealing helpers shared by all collections
  /// (the querying thread itself is the final executor). Fixed after Open.
  /// Declared after collections_ so ~Engine joins the pool — and drains any
  /// still-queued ParallelFor chunk tasks — while the collections those
  /// tasks reference are still alive.
  std::unique_ptr<util::ThreadPool> query_pool_;
  RecoveryInfo recovery_;
  // True while ReplayWal() re-applies logged operations (so the operations
  // skip re-logging themselves). Read lock-free on every Log* call.
  std::atomic<bool> replaying_{false};
  // Dictionary entries with id < wal_names_logged_ are durable (in the
  // checkpointed catalog or already in the WAL).
  Mutex wal_names_mu_;
  size_t wal_names_logged_ XDB_GUARDED_BY(wal_names_mu_) = 0;
};

}  // namespace xdb

#endif  // XDB_ENGINE_ENGINE_H_
