// Engine: the database facade — collections, schema registry, the shared
// name dictionary, transactions, WAL-based recovery, and catalog
// persistence. This is the integration point of Figure 1: XML services and
// relational-style services over one data management infrastructure.
#ifndef XDB_ENGINE_ENGINE_H_
#define XDB_ENGINE_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cc/lock_manager.h"
#include "cc/transaction.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/catalog.h"
#include "engine/collection.h"
#include "obs/debug_snapshot.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/wait_state.h"
#include "schema/schema_compiler.h"
#include "schema/validator_vm.h"
#include "storage/wal_log.h"
#include "util/thread_pool.h"
#include "xml/name_dictionary.h"
#include "xml/parser.h"

namespace xdb {

struct EngineOptions {
  /// Directory for table spaces, WAL and catalog. Ignored when in_memory.
  std::string dir;
  /// Pure in-memory engine: no files, no WAL (tests and CPU benches).
  bool in_memory = false;
  /// Strip whitespace-only text nodes at parse time (data-centric mode).
  bool strip_whitespace = true;
  /// Write-ahead logging for document operations.
  bool enable_wal = true;
  /// Maximum threads evaluating one query (including the caller). Values
  /// > 1 create a shared work-stealing pool of num_query_threads - 1
  /// helpers; queries opt in per call via QueryOptions::parallelism (0 =
  /// this default). 1 keeps the serial executor with no pool at all.
  int num_query_threads = 1;
  /// Buffer pool shards per collection (0 = auto from the pool size,
  /// rounded down to a power of two). Overridable per collection.
  size_t buffer_shards = 0;
  /// Fsync the WAL after every logged document operation. Concurrent
  /// committers coalesce onto one fdatasync (group commit). Off by default:
  /// the engine's durability unit is the checkpoint, and WAL records reach
  /// the OS (surviving a process crash) without the fsync cost.
  bool sync_commits = false;
  /// Compiled-plan cache entries per collection (0 disables the cache).
  /// Entries are keyed by (query text, force mode, want_values, stats
  /// epoch), so any document or index change implicitly invalidates them.
  size_t plan_cache_capacity = 64;
  /// Open as a read-only replica: every local mutation API (document ops and
  /// DDL alike) fails with kNotSupported, and state changes arrive only
  /// through ApplyReplicatedRecords() — the WAL-shipping apply path driven
  /// by repl::ReplicaApplier. Queries can demand freshness via
  /// QueryOptions::min_csn against the applied-CSN watermark. Requires
  /// enable_wal (the replica's durability is its own local WAL) and implies
  /// the engine stays read-only until Promote(). Ignored when in_memory.
  bool replica = false;
  /// Queries whose wall time is at least this many microseconds land in the
  /// engine's slow-query ring (Engine::slow_queries(), xdb_top, and
  /// DebugSnapshot()) with their full wait-state breakdown. 0 disables
  /// capture. Always-on: the check is one comparison per query.
  uint64_t slow_query_us = 10000;
};

/// What Engine::Scrub() found and fixed across the whole database.
struct ScrubReport {
  std::vector<CollectionScrubReport> collections;
  /// Stats of the filtered WAL replay run for rebuilt collections (zero when
  /// nothing needed a rebuild).
  WalReplayInfo replay;
  /// True when no collection had any damage.
  bool clean = true;
};

/// What Open() observed while recovering: WAL replay stats plus any
/// collections that had to be quarantined for later repair.
struct RecoveryInfo {
  WalReplayInfo wal;
  std::vector<std::string> quarantined_collections;
  /// Human-readable summary of anything abnormal; empty on a clean open.
  std::string warning;
};

class Engine {
 public:
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Opens (or creates) a database. Runs catalog load + WAL replay.
  static Result<std::unique_ptr<Engine>> Open(const EngineOptions& options);

  Result<Collection*> CreateCollection(const std::string& name,
                                       const CollectionOptions& options = {})
      XDB_EXCLUDES(mu_);
  Result<Collection*> GetCollection(const std::string& name)
      XDB_EXCLUDES(mu_);
  Status DropCollection(const std::string& name) XDB_EXCLUDES(mu_);

  /// Registers a schema: parse + compile to the binary format + store in
  /// the catalog (Figure 4's registration path).
  Status RegisterSchema(const std::string& name, Slice schema_text)
      XDB_EXCLUDES(mu_);
  Result<const schema::CompiledSchema*> FindSchema(const std::string& name)
      XDB_EXCLUDES(mu_);

  /// Begins a transaction (kLocking or kSnapshot isolation).
  Transaction Begin(IsolationMode mode = IsolationMode::kLocking);
  Status Commit(Transaction* txn) { return txns_->Commit(txn); }
  Status Abort(Transaction* txn) { return txns_->Abort(txn); }

  /// Flushes data, persists the catalog, truncates the WAL. Takes each
  /// collection's latch shared, which excludes concurrent writers while
  /// their pages flush.
  Status Checkpoint() XDB_EXCLUDES(mu_);

  /// Sweeps every table space: verifies every page checksum and every data
  /// page's record envelope, rebuilds damaged collections from still-readable
  /// records plus a filtered WAL replay, and checkpoints the repaired state.
  /// Quarantined collections come back online when repair succeeds.
  Result<ScrubReport> Scrub();

  /// WAL replay stats and quarantine decisions from the last Open().
  const RecoveryInfo& recovery_info() const { return recovery_; }

  // ---- replication (see src/repl/ and DESIGN.md "Replication & failover") --

  /// True while this engine is a read-only replica (cleared by Promote()).
  bool is_replica() const {
    return replica_.load(std::memory_order_acquire);
  }

  /// The replication-stream CSN this replica has durably applied and
  /// published. 0 on a never-promoted primary (a primary's position is its
  /// shipper's end CSN; local reads there are fresh by definition); a
  /// promoted replica retains its promotion-time value.
  uint64_t applied_csn() const {
    return applied_csn_.load(std::memory_order_acquire);
  }

  /// Blocks until applied_csn() >= min_csn, at most `timeout_us`
  /// microseconds (0 = fail immediately when behind), then kStale. On a
  /// primary it returns OK without waiting. Queries call this when
  /// QueryOptions::min_csn is set — the read-your-writes gate.
  Status WaitForFreshness(uint64_t min_csn, uint64_t timeout_us)
      XDB_EXCLUDES(fresh_mu_);

  /// Replica only. Durably lands `framed_records` (whole, CRC-intact WAL
  /// records exactly as shipped) in the replica's own WAL, applies them
  /// through the shared replay path, and publishes `publish_csn` as the new
  /// applied watermark. The local append happens BEFORE the apply: a crash
  /// at any point replays the local WAL on reopen, so the invariant
  /// `applied_csn == catalog.replica_wal_base + local_wal_bytes` holds
  /// across restarts. Records are applied idempotently (a re-shipped
  /// duplicate segment is the applier's job to drop; record-level re-apply
  /// after a crash is tolerated the same way crash recovery tolerates it).
  Status ApplyReplicatedRecords(Slice framed_records, uint64_t publish_csn,
                                WalReplayInfo* info = nullptr)
      XDB_EXCLUDES(mu_);

  /// Turns a replica into a writable primary. Runs Scrub() — the full page
  /// sweep + repair + checkpoint pass — so the promoted engine starts from a
  /// verified, checkpointed image, then lifts the read-only gate and emits
  /// kPromoted. After promotion ApplyReplicatedRecords() fails; a stale
  /// primary's segments can never be applied over promoted state.
  Status Promote() XDB_EXCLUDES(mu_);

  /// One coherent snapshot of every engine metric: buffer pool, WAL and
  /// group commit, lock manager, tablespace I/O and retries, record manager,
  /// query counters. Names follow the `component.noun` scheme documented in
  /// DESIGN.md §Observability.
  obs::MetricsSnapshot MetricsSnapshot() const XDB_EXCLUDES(mu_);

  /// The most recent structured engine events, oldest first (checkpoints,
  /// scrub findings, quarantines, deadlock victims, group-commit rounds,
  /// I/O retries).
  std::vector<obs::Event> RecentEvents(size_t max = SIZE_MAX) const {
    return events_.Recent(max);
  }

  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::EventLog* events() { return &events_; }
  /// Engine-wide wait-state histograms (wait.<state>.us); components record
  /// into it, queries additionally attribute spans to themselves via
  /// obs::QueryWaitScope. Registered against metrics_ at Open.
  obs::WaitSink* wait_sink() { return &wait_sink_; }
  /// The slow-query ring (see EngineOptions::slow_query_us).
  obs::SlowQueryLog* slow_queries() { return &slow_queries_; }
  uint64_t slow_query_threshold_us() const { return options_.slow_query_us; }

  /// One deterministic, serializable view of engine health: metrics
  /// snapshot, recent events, slow queries, per-collection stats epochs and
  /// buffer residency, WAL positions and the replication watermark. The
  /// struct xdb_top renders and CI's schema smoke-test round-trips.
  obs::DebugSnapshot DebugSnapshot() const XDB_EXCLUDES(mu_);

  /// Always-on query instrumentation, registered at Open. Pointers into
  /// metrics_ (stable for the engine's lifetime); null only before Open
  /// finishes wiring.
  struct QueryMetrics {
    obs::Counter* executions = nullptr;
    obs::Counter* parallel_executions = nullptr;
    obs::Histogram* latency_us = nullptr;
  };
  const QueryMetrics& query_metrics() const { return query_metrics_; }

  NameDictionary* dict() { return &dict_; }
  LockManager* locks() { return &locks_; }
  TransactionManager* txns() { return txns_.get(); }
  /// Shared query worker pool; null when the engine is configured serial
  /// (num_query_threads <= 1).
  util::ThreadPool* query_pool() { return query_pool_.get(); }
  /// The write-ahead log (null for in-memory engines or enable_wal=false).
  /// Exposed for tests and benches inspecting commit/sync counters.
  WalLog* wal() { return wal_.get(); }
  const EngineOptions& options() const { return options_; }
  Parser MakeParser() {
    ParserOptions po;
    po.strip_whitespace_text = options_.strip_whitespace;
    return Parser(&dict_, po);
  }

 private:
  friend class Collection;
  Engine() : locks_() {}

  Result<std::unique_ptr<Collection>> OpenCollection(const CollectionMeta& meta,
                                                     bool create,
                                                     const CollectionOptions& options);
  /// Replays the WAL. When `filter` is set, only records for which
  /// filter(collection, doc_id) returns true are applied (Scrub uses this to
  /// skip documents it already salvaged); kDefineName and DDL records always
  /// apply. Replay stats land in `info` when non-null.
  using ReplayFilter = std::function<bool(const std::string&, uint64_t)>;
  Status ReplayWal(const ReplayFilter& filter = {},
                   WalReplayInfo* info = nullptr) XDB_EXCLUDES(mu_);
  /// The one redo-application switch: applies a single WAL record to engine
  /// state. Crash recovery (ReplayWal), scrub's filtered replay, and the
  /// replica applier (ApplyWalRange) all funnel through here so the paths
  /// cannot drift. Storage damage during apply quarantines the collection
  /// and returns OK (the record is skipped, the WAL survives for Scrub).
  Status ApplyWalRecordLocked(WalRecordType type, Slice payload,
                              const ReplayFilter& filter) XDB_REQUIRES(mu_);
  /// Applies every intact record in `records` (framed WAL bytes whose first
  /// byte sits at `base_lsn`) via ApplyWalRecordLocked — the replay loop for
  /// byte ranges that are not the engine's own WAL file. Callers hold mu_
  /// and run inside a ReplayScope.
  Status ApplyWalRange(Slice records, uint64_t base_lsn,
                       const ReplayFilter& filter, WalReplayInfo* info)
      XDB_REQUIRES(mu_);
  /// kNotSupported while the engine is a read-only replica (and the calling
  /// thread is not the one inside the replay/apply path); checked by every
  /// mutation entry point.
  Status GuardWritable() const;
  /// True when the calling thread is inside this engine's WAL replay or
  /// replicated-segment apply (a ReplayScope is active). Thread-scoped on
  /// purpose: an engine-wide flag would let unrelated client threads slip
  /// past the replica read-only gate — or skip WAL logging on a primary —
  /// whenever a replay happens to be in flight.
  bool InReplay() const;
  /// Body of CreateCollection/DropCollection without the lock, shared with
  /// DDL replay. Neither logs; the public wrappers do.
  Result<Collection*> CreateCollectionLocked(const std::string& name,
                                             const CollectionOptions& options)
      XDB_REQUIRES(mu_);
  Status DropCollectionLocked(const std::string& name) XDB_REQUIRES(mu_);
  /// Installs an already-compiled schema binary (the form DDL replay and
  /// the WAL record carry).
  Status RegisterSchemaBinaryLocked(const std::string& name, Slice binary)
      XDB_REQUIRES(mu_);
  /// Publishes a new applied-CSN watermark and wakes freshness waiters.
  void PublishAppliedCsn(uint64_t csn) XDB_EXCLUDES(fresh_mu_);
  /// Appends a kDefineName record for every dictionary entry interned since
  /// the last checkpoint (or the last call). Must run before logging any
  /// record whose token payload references those names.
  Status LogNewNames() XDB_EXCLUDES(wal_names_mu_);
  /// Appends one redo record and, when sync_commits is on, group-commits it.
  Status AppendWal(WalRecordType type, Slice payload);
  Status LogInsert(const std::string& collection, uint64_t doc_id,
                   Slice tokens);
  Status LogDelete(const std::string& collection, uint64_t doc_id);
  Status LogUpdate(const std::string& collection, uint64_t doc_id,
                   Slice node_id, Slice new_text);
  Status LogInsertSubtree(const std::string& collection, uint64_t doc_id,
                          Slice parent_id, Slice after_id, Slice tokens);
  Status LogDeleteSubtree(const std::string& collection, uint64_t doc_id,
                          Slice node_id);
  /// DDL redo records (see WalRecordType). Logged after the operation
  /// succeeds locally: a failed DDL must never replicate, and the crash
  /// window (applied but unlogged) only orphans a table-space file that the
  /// next create truncates. The catalog still persists DDL at checkpoint;
  /// these records cover the gap since the last checkpoint and carry DDL to
  /// replicas.
  Status LogCreateCollection(const std::string& name,
                             const CollectionOptions& options);
  Status LogDropCollection(const std::string& name);
  Status LogCreateIndex(const std::string& collection,
                        const ValueIndexDef& def);
  Status LogDropIndex(const std::string& collection,
                      const std::string& index_name);
  Status LogCreateStructuralIndex(const std::string& collection,
                                  const StructuralIndexDef& def);
  Status LogDropStructuralIndex(const std::string& collection,
                                const std::string& index_name);
  Status LogRegisterSchema(const std::string& name, Slice binary);

  /// Aggregates per-component stats into one snapshot; registered as a
  /// registry collector at Open (takes mu_, then each component's own lock).
  void CollectComponentMetrics(std::vector<obs::Metric>* out) const
      XDB_EXCLUDES(mu_);

  // options_, dict_, locks_, txns_ and wal_ are fixed after Open() and
  // internally synchronized; mu_ guards the mutable catalog state below it.
  EngineOptions options_;
  // Observability sinks. Declared before every component that holds a
  // pointer into them (locks_, wal_, collections_ storage) so they are
  // destroyed last; both are internally synchronized.
  obs::MetricsRegistry metrics_;
  obs::EventLog events_;
  /// Wait-state sink and slow-query ring: same lifetime rule as metrics_/
  /// events_ (components hold raw pointers into them).
  obs::WaitSink wait_sink_;
  obs::SlowQueryLog slow_queries_{128};
  QueryMetrics query_metrics_;
  /// Engine-wide plan-cache counters (query.plan_cache.*), shared by every
  /// collection's cache; registered at Open alongside query_metrics_.
  query::PlanCache::Counters plan_cache_counters_;
  NameDictionary dict_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> txns_;
  std::unique_ptr<WalLog> wal_;
  // Mutable so the const metrics collector can walk collections_.
  mutable Mutex mu_{LockRank::kEngineCatalog};
  std::map<std::string, std::unique_ptr<Collection>> collections_
      XDB_GUARDED_BY(mu_);
  std::map<std::string, schema::CompiledSchema> schemas_ XDB_GUARDED_BY(mu_);
  CatalogData catalog_ XDB_GUARDED_BY(mu_);
  /// num_query_threads - 1 work-stealing helpers shared by all collections
  /// (the querying thread itself is the final executor). Fixed after Open.
  /// Declared after collections_ so ~Engine joins the pool — and drains any
  /// still-queued ParallelFor chunk tasks — while the collections those
  /// tasks reference are still alive.
  std::unique_ptr<util::ThreadPool> query_pool_;
  RecoveryInfo recovery_;
  // (Replay permission is thread-scoped, not engine state: see InReplay().)
  // Dictionary entries with id < wal_names_logged_ are durable (in the
  // checkpointed catalog or already in the WAL).
  Mutex wal_names_mu_{LockRank::kWalNames};
  size_t wal_names_logged_ XDB_GUARDED_BY(wal_names_mu_) = 0;
  /// Read-only replica gate; set from options at Open, cleared by Promote().
  std::atomic<bool> replica_{false};
  /// Replica only: stream CSN at byte 0 of the local WAL (the in-memory twin
  /// of catalog.replica_wal_base; changes only when the WAL resets).
  uint64_t replica_wal_base_ XDB_GUARDED_BY(mu_) = 0;
  /// The published replication watermark (replicas only). Written under
  /// fresh_mu_ (so waiters don't miss wakeups) but atomic so the query-path
  /// fast check is a single load. fresh_mu_ is a leaf lock: acquired with
  /// mu_ held (ApplyReplicatedRecords) and never the other way around.
  std::atomic<uint64_t> applied_csn_{0};
  Mutex fresh_mu_{LockRank::kEngineFreshness};
  CondVar fresh_cv_;
};

}  // namespace xdb

#endif  // XDB_ENGINE_ENGINE_H_
