#include "engine/stats_store.h"

#include <cstdio>
#include <fstream>

#include "common/coding.h"

namespace xdb {

namespace {
constexpr uint32_t kStatsMagic = 0x58444253;  // "XDBS"
}  // namespace

Status SaveStatsFile(const StatsFileData& data, const std::string& path) {
  std::string payload;
  PutVarint64(&payload, data.size());
  for (const auto& [name, blob] : data) {
    PutLengthPrefixed(&payload, name);
    PutLengthPrefixed(&payload, blob);
  }
  std::string bytes;
  PutFixed32(&bytes, kStatsMagic);
  PutFixed32(&bytes, Crc32(payload.data(), payload.size()));
  bytes += payload;
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IOError("short stats write");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return Status::IOError("cannot rename stats file into place");
  return Status::OK();
}

Result<StatsFileData> LoadStatsFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no stats file at " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  Slice data(bytes);
  if (data.size() < 8 || DecodeFixed32(data.data()) != kStatsMagic)
    return Status::Corruption("bad stats file magic");
  uint32_t crc = DecodeFixed32(data.data() + 4);
  data.RemovePrefix(8);
  if (Crc32(data.data(), data.size()) != crc)
    return Status::Corruption("stats file checksum mismatch");
  uint64_t n;
  size_t vn = GetVarint64(data.data(), data.data() + data.size(), &n);
  if (vn == 0) return Status::Corruption("bad stats entry count");
  data.RemovePrefix(vn);
  StatsFileData out;
  for (uint64_t i = 0; i < n; i++) {
    Slice name, blob;
    if (!GetLengthPrefixed(&data, &name) || !GetLengthPrefixed(&data, &blob))
      return Status::Corruption("truncated stats entry");
    out.emplace(name.ToString(), blob.ToString());
  }
  return out;
}

}  // namespace xdb
