#include "engine/engine.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <set>

#include "common/coding.h"
#include "engine/stats_store.h"
#include "schema/schema_parser.h"

namespace xdb {

namespace {
/// Which engine the current thread is replaying into (null = none). Replay
/// permission must be per-thread: GuardWritable() consults it so that ONLY
/// the thread driving WAL replay / replicated-segment apply may mutate a
/// read-only replica — with an engine-wide flag, any client mutation racing
/// a mid-flight apply would slip through the gate (TOCTOU) and append local
/// writes to the replica's WAL, corrupting the stream accounting. The Log*
/// skip uses it for the same reason in reverse: a primary client write
/// concurrent with a Scrub replay must still log itself.
thread_local const Engine* t_replaying_engine = nullptr;

/// RAII replay scope, nestable and restoring the previous value (a replica
/// apply never nests today, but restoring is free and future-proof).
class ReplayScope {
 public:
  explicit ReplayScope(const Engine* e) : prev_(t_replaying_engine) {
    t_replaying_engine = e;
  }
  ~ReplayScope() { t_replaying_engine = prev_; }
  ReplayScope(const ReplayScope&) = delete;
  ReplayScope& operator=(const ReplayScope&) = delete;

 private:
  const Engine* prev_;
};
}  // namespace

bool Engine::InReplay() const { return t_replaying_engine == this; }

Engine::~Engine() {
  // Best-effort flush on clean shutdown; a failure here is what recovery
  // exists for.
  if (!options_.in_memory) (void)Checkpoint();
}

Result<std::unique_ptr<Engine>> Engine::Open(const EngineOptions& options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  engine->options_ = options;
  if (options.replica && !options.in_memory) {
    if (!options.enable_wal)
      return Status::InvalidArgument(
          "a replica requires the WAL: its durability is its own local log");
    engine->replica_.store(true, std::memory_order_release);
  }
  // Observability wiring comes first so every component opened below can
  // already emit events and so the always-on query counters exist before the
  // first query. The collector callback runs under the registry mutex with
  // `engine` guaranteed alive: metrics_ is an Engine member.
  engine->wait_sink_.Register(&engine->metrics_);
  engine->locks_.set_event_log(&engine->events_);
  engine->locks_.set_wait_sink(&engine->wait_sink_);
  engine->query_metrics_.executions =
      engine->metrics_.AddCounter("query.executions");
  engine->query_metrics_.parallel_executions =
      engine->metrics_.AddCounter("query.parallel_executions");
  engine->query_metrics_.latency_us = engine->metrics_.AddHistogram(
      "query.latency_us", obs::Histogram::LatencyBoundsUs());
  engine->plan_cache_counters_.hits =
      engine->metrics_.AddCounter("query.plan_cache.hits");
  engine->plan_cache_counters_.misses =
      engine->metrics_.AddCounter("query.plan_cache.misses");
  engine->plan_cache_counters_.evictions =
      engine->metrics_.AddCounter("query.plan_cache.evictions");
  engine->plan_cache_counters_.invalidations =
      engine->metrics_.AddCounter("query.plan_cache.invalidations");
  {
    Engine* raw = engine.get();
    engine->metrics_.AddCollector([raw](std::vector<obs::Metric>* out) {
      raw->CollectComponentMetrics(out);
    });
  }
  engine->txns_ = std::make_unique<TransactionManager>(&engine->locks_);
  if (options.num_query_threads > 1) {
    // The querying thread is one of the num_query_threads executors, so the
    // shared pool only needs the helpers.
    engine->query_pool_ = std::make_unique<util::ThreadPool>(
        static_cast<size_t>(options.num_query_threads - 1));
  }

  if (options.in_memory) return engine;

  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST)
    return Status::IOError("cannot create directory " + options.dir);

  // Load the catalog if one exists.
  {
    MutexLock lock(engine->mu_);
    auto cat = LoadCatalog(options.dir + "/catalog.xdb");
    if (cat.ok()) {
      engine->catalog_ = cat.MoveValue();
      XDB_RETURN_NOT_OK(engine->dict_.Load(engine->catalog_.dictionary));
      for (const auto& [name, binary] : engine->catalog_.schemas) {
        XDB_ASSIGN_OR_RETURN(schema::CompiledSchema cs,
                             schema::CompiledSchema::Deserialize(binary));
        engine->schemas_.emplace(name, std::move(cs));
      }
      for (const auto& [name, meta] : engine->catalog_.collections) {
        CollectionOptions copts;
        copts.mvcc = meta.mvcc_enabled;
        copts.schema = meta.schema_name;
        XDB_ASSIGN_OR_RETURN(
            std::unique_ptr<Collection> coll,
            engine->OpenCollection(meta, /*create=*/false, copts));
        engine->collections_.emplace(name, std::move(coll));
      }
    } else if (cat.status().code() != Status::Code::kNotFound) {
      return cat.status();
    }
  }

  // Restore collected statistics before WAL replay, so replayed document
  // operations run the same incremental maintenance they ran originally on
  // top of the checkpointed counts. Degradation is always graceful: a
  // missing/stale/corrupt stats file turns cost-based planning off for the
  // affected collection (heuristic fallback) and never fails Open.
  {
    MutexLock lock(engine->mu_);
    StatsFileData stats_data;
    Status stats_status = Status::OK();
    if (!engine->collections_.empty()) {
      auto loaded = LoadStatsFile(options.dir + "/stats.xdb");
      if (loaded.ok()) {
        stats_data = loaded.MoveValue();
      } else {
        stats_status = loaded.status();
      }
    }
    for (auto& [name, coll] : engine->collections_) {
      auto meta_it = engine->catalog_.collections.find(name);
      const uint64_t expected =
          meta_it != engine->catalog_.collections.end()
              ? meta_it->second.stats_epoch
              : 0;
      auto degrade = [&](const std::string& why) {
        coll->stats()->Invalidate();
        engine->events_.Emit(obs::EventKind::kStatsDegraded, expected, 0,
                             "collection '" + name + "': " + why);
      };
      if (expected == 0) {
        // Never checkpointed with stats. For a fresh collection valid empty
        // stats are exactly right — WAL replay rebuilds the counts from
        // zero. But a catalog that already allocated doc ids (a pre-stats
        // catalog, or one checkpointed before this feature) holds documents
        // that are NOT in the WAL (checkpoint resets it), so empty counts
        // would be trusted as real and the cost model would price full
        // scans at zero forever. Degrade to heuristic planning until a
        // rebuild/checkpoint establishes real counts.
        const bool checkpointed_docs =
            meta_it != engine->catalog_.collections.end() &&
            meta_it->second.next_doc_id > 1;
        if (checkpointed_docs)
          degrade("catalog predates collected stats");
        continue;
      }
      if (!stats_status.ok()) {
        degrade("stats file unavailable (" + stats_status.ToString() + ")");
        continue;
      }
      auto blob = stats_data.find(name);
      if (blob == stats_data.end()) {
        degrade("no stats blob in stats.xdb");
        continue;
      }
      Status rs = coll->stats()->Restore(Slice(blob->second));
      if (!rs.ok()) {
        degrade("stats blob corrupt (" + rs.ToString() + ")");
        continue;
      }
      if (coll->stats()->epoch() != expected) {
        // Crash between stats.xdb and catalog.xdb writes: the catalog's
        // epoch is the commit point, so a mismatch means these numbers do
        // not belong to this catalog state.
        degrade("stats epoch " + std::to_string(coll->stats()->epoch()) +
                " != catalog epoch " + std::to_string(expected));
      }
    }
  }

  if (options.enable_wal) {
    XDB_ASSIGN_OR_RETURN(engine->wal_, WalLog::Open(options.dir + "/wal.log"));
    engine->wal_->set_event_log(&engine->events_);
    engine->wal_->set_wait_sink(&engine->wait_sink_);
    // Group-commit batches are small integers: powers of two 1..256.
    engine->wal_->set_batch_size_histogram(engine->metrics_.AddHistogram(
        "wal.group_commit.batch_size", obs::Histogram::ExponentialBounds(1, 9)));
    engine->events_.Emit(obs::EventKind::kRecoveryBegin, 0, 0, "wal replay");
    XDB_RETURN_NOT_OK(engine->ReplayWal({}, &engine->recovery_.wal));
    engine->events_.Emit(obs::EventKind::kRecoveryEnd,
                         engine->recovery_.wal.records_replayed,
                         engine->recovery_.wal.corrupt_records_skipped,
                         "wal replay done");
    if (engine->recovery_.wal.torn_tail)
      engine->events_.Emit(obs::EventKind::kWalTornTail,
                           engine->recovery_.wal.bytes_skipped, 0,
                           "truncated mid-record tail dropped");
    if (engine->recovery_.wal.corrupt_records_skipped > 0)
      engine->events_.Emit(obs::EventKind::kWalCorruptRecords,
                           engine->recovery_.wal.corrupt_records_skipped,
                           engine->recovery_.wal.bytes_skipped,
                           "corrupt mid-log records skipped");
    if (engine->is_replica()) {
      // Restore the applied watermark: stream base (catalog) plus the intact
      // bytes the local WAL held. A torn tail (crash mid-AppendRaw) is cut
      // off so the next shipped segment lands on an intact record boundary —
      // the torn record was never applied, never acknowledged, and will be
      // re-shipped. Corrupt records *inside* the log (local media damage)
      // cap the watermark the same way: replay skipped them, so counting
      // them as applied would acknowledge stream bytes whose updates this
      // replica silently lost. Truncating at the first damaged record makes
      // the resync path re-ship everything from there; re-applying the
      // records after it is idempotent, like any crash re-apply.
      MutexLock lock(engine->mu_);
      engine->replica_wal_base_ = engine->catalog_.replica_wal_base;
      uint64_t intact = engine->recovery_.wal.end_lsn;
      if (engine->recovery_.wal.corrupt_records_skipped > 0)
        intact = std::min(intact, engine->recovery_.wal.first_corrupt_lsn);
      if (engine->recovery_.wal.torn_tail || intact < engine->wal_->size())
        XDB_RETURN_NOT_OK(engine->wal_->TruncateTo(intact));
      engine->PublishAppliedCsn(engine->replica_wal_base_ + intact);
    }
  }
  // Quarantine decisions can come from open (structural damage) or from the
  // replay itself hitting a corrupt page — collect them all here.
  {
    MutexLock lock(engine->mu_);
    for (const auto& [name, coll] : engine->collections_)
      if (coll->needs_repair())
        engine->recovery_.quarantined_collections.push_back(name);
  }
  for (const std::string& name : engine->recovery_.quarantined_collections)
    engine->events_.Emit(obs::EventKind::kCollectionQuarantined, 0, 0,
                         "collection '" + name + "' quarantined at open");
  if (engine->recovery_.wal.corrupt_records_skipped > 0)
    engine->recovery_.warning +=
        "wal: skipped " +
        std::to_string(engine->recovery_.wal.corrupt_records_skipped) +
        " corrupt mid-log record(s); ";
  for (const std::string& name : engine->recovery_.quarantined_collections)
    engine->recovery_.warning +=
        "collection '" + name + "' quarantined (run Scrub to repair); ";
  // Everything in the dictionary now is recoverable: it came from the
  // catalog or was just replayed from kDefineName records still in the WAL.
  {
    MutexLock nlock(engine->wal_names_mu_);
    engine->wal_names_logged_ = engine->dict_.size();
  }
  return engine;
}

Result<std::unique_ptr<Collection>> Engine::OpenCollection(
    const CollectionMeta& meta, bool create, const CollectionOptions& options) {
  auto coll = std::unique_ptr<Collection>(new Collection());
  coll->engine_ = this;
  coll->meta_ = meta;
  coll->plan_cache_.Configure(options_.plan_cache_capacity,
                              plan_cache_counters_, &events_, meta.name);
  coll->record_budget_ = options.record_budget;
  coll->buffer_pages_ = options.buffer_pages;
  coll->buffer_shards_ = options.buffer_shards != 0 ? options.buffer_shards
                                                    : options_.buffer_shards;
  coll->page_size_hint_ = options.page_size;

  TableSpaceOptions ts_options;
  ts_options.page_size = options.page_size;
  ts_options.in_memory = options_.in_memory;
  std::string path =
      options_.in_memory ? "" : options_.dir + "/" + meta.space_file;
  coll->space_path_ = path;

  Status st = [&]() -> Status {
    if (create) {
      XDB_ASSIGN_OR_RETURN(coll->space_, TableSpace::Create(path, ts_options));
    } else {
      XDB_ASSIGN_OR_RETURN(coll->space_, TableSpace::Open(path, ts_options));
    }
    coll->space_->set_event_log(&events_);
    coll->buffer_ = std::make_unique<BufferManager>(
        coll->space_.get(), options.buffer_pages, coll->buffer_shards_);
    coll->buffer_->set_event_log(&events_);
    coll->buffer_->set_wait_sink(&wait_sink_);
    coll->buffer_->set_lsn_source(
        [this] { return wal_ != nullptr ? wal_->size() : 0; });
    coll->records_ = std::make_unique<RecordManager>(coll->buffer_.get());
    if (!create) XDB_RETURN_NOT_OK(coll->records_->Recover());

    auto open_tree = [&](PageId root) -> Result<std::unique_ptr<BTree>> {
      if (create || root == kInvalidPageId)
        return BTree::Create(coll->buffer_.get());
      return BTree::Open(coll->buffer_.get(), root);
    };
    XDB_ASSIGN_OR_RETURN(coll->docid_tree_, open_tree(meta.docid_index_root));
    XDB_ASSIGN_OR_RETURN(coll->nodeid_tree_, open_tree(meta.nodeid_index_root));
    coll->meta_.docid_index_root = coll->docid_tree_->root();
    coll->meta_.nodeid_index_root = coll->nodeid_tree_->root();
    coll->node_index_ =
        std::make_unique<NodeIdIndex>(coll->nodeid_tree_.get());

    if (meta.mvcc_enabled) {
      XDB_ASSIGN_OR_RETURN(coll->versioned_tree_,
                           open_tree(meta.versioned_index_root));
      coll->meta_.versioned_index_root = coll->versioned_tree_->root();
      coll->versions_ =
          std::make_unique<VersionManager>(coll->versioned_tree_.get());
      coll->versions_->InitCounters(meta.last_version);
    }

    for (const ValueIndexMeta& vi : meta.value_indexes) {
      XDB_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree, open_tree(vi.root));
      auto index = std::make_unique<ValueIndex>(vi.def, tree.get());
      // ListenerFor (not NoteIndexCreated): open-time wiring of indexes the
      // persisted stats epoch already accounts for must not bump it.
      index->set_stats_listener(coll->stats_.ListenerFor(vi.def.name));
      coll->value_indexes_.push_back(
          Collection::OwnedValueIndex{std::move(tree), std::move(index)});
    }
    for (size_t i = 0; i < coll->value_indexes_.size(); i++)
      coll->meta_.value_indexes[i].root = coll->value_indexes_[i].tree->root();

    for (const StructuralIndexMeta& si : meta.structural_indexes) {
      XDB_ASSIGN_OR_RETURN(std::unique_ptr<BTree> tree, open_tree(si.root));
      auto index = std::make_unique<StructuralIndex>(si.def, tree.get());
      // StructuralListenerFor, not NoteStructuralIndexCreated: same
      // no-epoch-bump rule as the value indexes above.
      index->set_stats_listener(
          coll->stats_.StructuralListenerFor(si.def.name));
      coll->structural_indexes_.push_back(
          Collection::OwnedStructuralIndex{std::move(tree), std::move(index)});
    }
    for (size_t i = 0; i < coll->structural_indexes_.size(); i++)
      coll->meta_.structural_indexes[i].root =
          coll->structural_indexes_[i].tree->root();
    return Status::OK();
  }();
  if (!st.ok()) {
    if (!create && (st.IsCorruption() || st.IsIOError())) {
      // Structural damage in an existing collection: open it as a
      // quarantined shell so the rest of the database stays available and
      // Scrub() can rebuild it, instead of failing the whole Open().
      coll->needs_repair_ = true;
      coll->repair_reason_ = st.ToString();
      return coll;
    }
    return st;
  }
  return coll;
}

Status Engine::GuardWritable() const {
  if (replica_.load(std::memory_order_acquire) && !InReplay())
    return Status::NotSupported("replica is read-only (promote it to write)");
  return Status::OK();
}

Result<Collection*> Engine::CreateCollection(const std::string& name,
                                             const CollectionOptions& options) {
  XDB_RETURN_NOT_OK(GuardWritable());
  MutexLock lock(mu_);
  XDB_ASSIGN_OR_RETURN(Collection * raw, CreateCollectionLocked(name, options));
  XDB_RETURN_NOT_OK(LogCreateCollection(name, options));
  return raw;
}

Result<Collection*> Engine::CreateCollectionLocked(
    const std::string& name, const CollectionOptions& options) {
  if (collections_.find(name) != collections_.end())
    return Status::InvalidArgument("collection '" + name + "' exists");
  if (!options.schema.empty() &&
      schemas_.find(options.schema) == schemas_.end())
    return Status::InvalidArgument("schema '" + options.schema +
                                   "' is not registered");
  CollectionMeta meta;
  meta.name = name;
  meta.space_file = name + ".xts";
  meta.mvcc_enabled = options.mvcc;
  meta.schema_name = options.schema;
  XDB_ASSIGN_OR_RETURN(std::unique_ptr<Collection> coll,
                       OpenCollection(meta, /*create=*/true, options));
  Collection* raw = coll.get();
  collections_.emplace(name, std::move(coll));
  return raw;
}

Result<Collection*> Engine::GetCollection(const std::string& name) {
  MutexLock lock(mu_);
  auto it = collections_.find(name);
  if (it == collections_.end())
    return Status::NotFound("no collection '" + name + "'");
  return it->second.get();
}

Status Engine::DropCollection(const std::string& name) {
  XDB_RETURN_NOT_OK(GuardWritable());
  MutexLock lock(mu_);
  XDB_RETURN_NOT_OK(DropCollectionLocked(name));
  return LogDropCollection(name);
}

Status Engine::DropCollectionLocked(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end())
    return Status::NotFound("no collection '" + name + "'");
  std::string file = options_.dir + "/" + it->second->meta().space_file;
  collections_.erase(it);
  catalog_.collections.erase(name);
  if (!options_.in_memory) ::remove(file.c_str());
  return Status::OK();
}

Status Engine::RegisterSchema(const std::string& name, Slice schema_text) {
  XDB_RETURN_NOT_OK(GuardWritable());
  XDB_ASSIGN_OR_RETURN(schema::SchemaDoc doc,
                       schema::ParseSchema(schema_text));
  XDB_ASSIGN_OR_RETURN(schema::CompiledSchema cs, schema::CompileSchema(doc));
  std::string binary;
  cs.Serialize(&binary);
  MutexLock lock(mu_);
  schemas_[name] = std::move(cs);
  XDB_RETURN_NOT_OK(LogRegisterSchema(name, binary));
  catalog_.schemas[name] = std::move(binary);
  return Status::OK();
}

Status Engine::RegisterSchemaBinaryLocked(const std::string& name,
                                          Slice binary) {
  XDB_ASSIGN_OR_RETURN(schema::CompiledSchema cs,
                       schema::CompiledSchema::Deserialize(binary));
  schemas_[name] = std::move(cs);
  catalog_.schemas[name] = binary.ToString();
  return Status::OK();
}

Result<const schema::CompiledSchema*> Engine::FindSchema(
    const std::string& name) {
  MutexLock lock(mu_);
  auto it = schemas_.find(name);
  if (it == schemas_.end())
    return Status::NotFound("schema '" + name + "' is not registered");
  return &it->second;
}

Transaction Engine::Begin(IsolationMode mode) { return txns_->Begin(mode); }

Status Engine::Checkpoint() {
  if (options_.in_memory) return Status::OK();
  MutexLock lock(mu_);
  events_.Emit(obs::EventKind::kCheckpointBegin, collections_.size(), 0,
               "checkpoint");
  catalog_.collections.clear();
  StatsFileData stats_data;
  bool any_quarantined = false;
  for (auto& [name, coll] : collections_) {
    if (coll->needs_repair_) {
      // Leave the damaged files and the last good metadata untouched so
      // Scrub() still has everything to repair from. No stats blob either:
      // after repair the epoch won't match, which correctly degrades the
      // collection to heuristic planning until its next checkpoint.
      any_quarantined = true;
      catalog_.collections.emplace(name, coll->meta_);
      continue;
    }
    // The shared latch excludes concurrent document writers (who hold it
    // exclusively) while the pool flushes — FlushAll requires that no page
    // payload changes under it. Readers may proceed. The doc-id mutex
    // covers the meta_.next_doc_id read in the copy below.
    ReaderMutexLock latch(coll->latch_);
    XDB_RETURN_NOT_OK(coll->buffer_->FlushAll());
    XDB_RETURN_NOT_OK(coll->space_->Sync());
    CollectionMeta meta;
    {
      MutexLock dlock(coll->docid_mu_);
      meta = coll->meta_;
    }
    if (coll->versions_ != nullptr)
      meta.last_version = coll->versions_->BeginSnapshot();
    // Stable under the shared latch: every stats mutator runs holding it
    // exclusively, so the blob and the epoch recorded in the catalog agree.
    std::string stats_blob;
    coll->stats_.Serialize(&stats_blob);
    meta.stats_epoch = coll->stats_.epoch();
    stats_data.emplace(name, std::move(stats_blob));
    catalog_.collections.emplace(name, std::move(meta));
  }
  catalog_.dictionary.clear();
  // Capture the size before Save: names interned concurrently may or may not
  // make the saved snapshot, and re-logging one is harmless (replay skips
  // ids it already knows) while failing to log one loses it.
  size_t saved_names = dict_.size();
  dict_.Save(&catalog_.dictionary);
  // Stats before catalog: the catalog's per-collection stats_epoch is the
  // commit point. A crash between the two writes leaves a stats file whose
  // epochs don't match the (old) catalog — detected at open, degrading to
  // heuristic planning instead of planning on wrong numbers.
  XDB_RETURN_NOT_OK(
      SaveStatsFile(stats_data, options_.dir + "/stats.xdb"));
  // On a replica the saved base must describe the WAL image this catalog
  // can coexist with — which is still the *current* one; the post-reset base
  // is committed by a second save below, so a crash in between only ever
  // undercounts the applied position (safe: re-ship + idempotent re-apply).
  catalog_.replica_wal_base = replica_wal_base_;
  XDB_RETURN_NOT_OK(SaveCatalog(catalog_, options_.dir + "/catalog.xdb"));
  // The WAL may still be the only copy of a quarantined collection's
  // post-checkpoint history — keep it until Scrub() has repaired everything.
  // MaybeReset also refuses while an attached replication shipper still
  // needs unshipped (or unacknowledged) bytes — a truncation there would
  // silently punch a hole in the replication stream.
  if (wal_ != nullptr && !any_quarantined) {
    XDB_ASSIGN_OR_RETURN(bool reset, wal_->MaybeReset());
    if (reset) {
      {
        MutexLock nlock(wal_names_mu_);
        wal_names_logged_ = saved_names;
      }
      if (replica_.load(std::memory_order_acquire)) {
        // The local WAL just restarted at byte 0: commit the new base. A
        // crash before this save leaves the old base with an empty WAL —
        // an undercount the resync path absorbs.
        replica_wal_base_ = applied_csn_.load(std::memory_order_acquire);
        catalog_.replica_wal_base = replica_wal_base_;
        XDB_RETURN_NOT_OK(
            SaveCatalog(catalog_, options_.dir + "/catalog.xdb"));
      }
    }
  }
  events_.Emit(obs::EventKind::kCheckpointEnd, collections_.size(),
               any_quarantined ? 1 : 0, "checkpoint done");
  return Status::OK();
}

Status Engine::LogNewNames() {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  MutexLock lock(wal_names_mu_);
  while (wal_names_logged_ < dict_.size()) {
    NameId id = static_cast<NameId>(wal_names_logged_);
    XDB_ASSIGN_OR_RETURN(std::string name, dict_.Name(id));
    std::string payload;
    PutFixed32(&payload, id);
    payload.append(name);
    XDB_RETURN_NOT_OK(
        wal_->Append(WalRecordType::kDefineName, payload).status());
    wal_names_logged_ = id + 1;
  }
  return Status::OK();
}

Status Engine::AppendWal(WalRecordType type, Slice payload) {
  XDB_RETURN_NOT_OK(wal_->Append(type, payload).status());
  // Group commit: under sync_commits every logged operation becomes durable
  // before it returns, but concurrent committers share one fdatasync.
  if (options_.sync_commits) return wal_->Commit();
  return Status::OK();
}

Status Engine::LogInsert(const std::string& collection, uint64_t doc_id,
                         Slice tokens) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  XDB_RETURN_NOT_OK(LogNewNames());
  std::string payload;
  PutLengthPrefixed(&payload, collection);
  PutFixed64(&payload, doc_id);
  payload.append(tokens.data(), tokens.size());
  return AppendWal(WalRecordType::kInsertDocument, payload);
}

Status Engine::LogDelete(const std::string& collection, uint64_t doc_id) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, collection);
  PutFixed64(&payload, doc_id);
  return AppendWal(WalRecordType::kDeleteDocument, payload);
}

Status Engine::LogUpdate(const std::string& collection, uint64_t doc_id,
                         Slice node_id, Slice new_text) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, collection);
  PutFixed64(&payload, doc_id);
  PutLengthPrefixed(&payload, node_id);
  payload.append(new_text.data(), new_text.size());
  return AppendWal(WalRecordType::kUpdateNode, payload);
}

Status Engine::LogInsertSubtree(const std::string& collection,
                                uint64_t doc_id, Slice parent_id,
                                Slice after_id, Slice tokens) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  XDB_RETURN_NOT_OK(LogNewNames());
  std::string payload;
  PutLengthPrefixed(&payload, collection);
  PutFixed64(&payload, doc_id);
  PutLengthPrefixed(&payload, parent_id);
  PutLengthPrefixed(&payload, after_id);
  payload.append(tokens.data(), tokens.size());
  return AppendWal(WalRecordType::kInsertSubtree, payload);
}

Status Engine::LogDeleteSubtree(const std::string& collection,
                                uint64_t doc_id, Slice node_id) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, collection);
  PutFixed64(&payload, doc_id);
  payload.append(node_id.data(), node_id.size());
  return AppendWal(WalRecordType::kDeleteSubtree, payload);
}

Status Engine::LogCreateCollection(const std::string& name,
                                   const CollectionOptions& options) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, name);
  payload.push_back(options.mvcc ? 1 : 0);
  PutLengthPrefixed(&payload, options.schema);
  return AppendWal(WalRecordType::kCreateCollection, payload);
}

Status Engine::LogDropCollection(const std::string& name) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, name);
  return AppendWal(WalRecordType::kDropCollection, payload);
}

Status Engine::LogCreateIndex(const std::string& collection,
                              const ValueIndexDef& def) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, collection);
  PutLengthPrefixed(&payload, def.name);
  PutLengthPrefixed(&payload, def.path);
  payload.push_back(static_cast<char>(def.type));
  PutFixed32(&payload, def.max_string_len);
  return AppendWal(WalRecordType::kCreateValueIndex, payload);
}

Status Engine::LogDropIndex(const std::string& collection,
                            const std::string& index_name) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, collection);
  PutLengthPrefixed(&payload, index_name);
  return AppendWal(WalRecordType::kDropValueIndex, payload);
}

Status Engine::LogCreateStructuralIndex(const std::string& collection,
                                        const StructuralIndexDef& def) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, collection);
  PutLengthPrefixed(&payload, def.name);
  PutLengthPrefixed(&payload, def.element_name);
  return AppendWal(WalRecordType::kCreateStructuralIndex, payload);
}

Status Engine::LogDropStructuralIndex(const std::string& collection,
                                      const std::string& index_name) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, collection);
  PutLengthPrefixed(&payload, index_name);
  return AppendWal(WalRecordType::kDropStructuralIndex, payload);
}

Status Engine::LogRegisterSchema(const std::string& name, Slice binary) {
  if (wal_ == nullptr || InReplay()) return Status::OK();
  std::string payload;
  PutLengthPrefixed(&payload, name);
  payload.append(binary.data(), binary.size());
  return AppendWal(WalRecordType::kRegisterSchema, payload);
}

Status Engine::ReplayWal(const ReplayFilter& filter, WalReplayInfo* info) {
  // Replay is single-threaded but mutates catalog state (collections_ via
  // the visitor), so it runs under mu_. The visitor is a separate function
  // to the analysis and cannot see the lock held here, hence the opt-out.
  MutexLock lock(mu_);
  ReplayScope replay(this);
  return wal_->Replay(
      [&](uint64_t /*lsn*/, WalRecordType type,
          Slice payload) XDB_NO_THREAD_SAFETY_ANALYSIS -> Status {
        return ApplyWalRecordLocked(type, payload, filter);
      },
      info);
}

Status Engine::ApplyWalRange(Slice records, uint64_t base_lsn,
                             const ReplayFilter& filter, WalReplayInfo* info) {
  return ScanWalRecords(
      records, base_lsn,
      [&](uint64_t /*lsn*/, WalRecordType type,
          Slice payload) XDB_NO_THREAD_SAFETY_ANALYSIS -> Status {
        return ApplyWalRecordLocked(type, payload, filter);
      },
      info);
}

Status Engine::ApplyWalRecordLocked(WalRecordType type, Slice payload,
                                    const ReplayFilter& filter) {
    if (type == WalRecordType::kDefineName) {
      if (payload.size() < 4) return Status::Corruption("bad wal name record");
      NameId id = DecodeFixed32(payload.data());
      payload.RemovePrefix(4);
      if (id < dict_.size()) return Status::OK();  // already in the catalog
      if (id != dict_.size())
        return Status::Corruption("wal name record out of order");
      dict_.Intern(payload);
      return Status::OK();
    }
    // DDL records carry their own payload shapes and always apply (the
    // filter is a per-document concept). Each is idempotent: re-applying
    // after a crash, or applying a re-shipped segment on a replica, finds
    // the object already in (or already out of) the catalog and succeeds.
    switch (type) {
      case WalRecordType::kCreateCollection: {
        Slice cname;
        if (!GetLengthPrefixed(&payload, &cname) || payload.empty())
          return Status::Corruption("bad wal create-collection record");
        CollectionOptions copts;
        copts.mvcc = payload[0] != 0;
        payload.RemovePrefix(1);
        Slice schema;
        if (!GetLengthPrefixed(&payload, &schema))
          return Status::Corruption("bad wal create-collection record");
        copts.schema = schema.ToString();
        if (collections_.find(cname.ToString()) != collections_.end())
          return Status::OK();  // redone
        return CreateCollectionLocked(cname.ToString(), copts).status();
      }
      case WalRecordType::kDropCollection: {
        Slice cname;
        if (!GetLengthPrefixed(&payload, &cname))
          return Status::Corruption("bad wal drop-collection record");
        Status st = DropCollectionLocked(cname.ToString());
        if (st.IsNotFound()) return Status::OK();  // already gone
        return st;
      }
      case WalRecordType::kCreateValueIndex: {
        Slice cname;
        ValueIndexDef def;
        Slice iname, ipath;
        if (!GetLengthPrefixed(&payload, &cname) ||
            !GetLengthPrefixed(&payload, &iname) ||
            !GetLengthPrefixed(&payload, &ipath) || payload.size() < 5)
          return Status::Corruption("bad wal create-index record");
        def.name = iname.ToString();
        def.path = ipath.ToString();
        def.type = static_cast<ValueType>(payload[0]);
        def.max_string_len = DecodeFixed32(payload.data() + 1);
        auto cit = collections_.find(cname.ToString());
        if (cit == collections_.end()) return Status::OK();  // dropped later
        Collection* c = cit->second.get();
        if (c->needs_repair()) return Status::OK();
        if (c->FindValueIndex(def.name) != nullptr) return Status::OK();
        // The Apply* form: no ddl_mu_ (crash replay holds the WAL mutex,
        // which client DDL takes after ddl_mu_ — nesting the other way
        // would deadlock) and no re-logging.
        return c->ApplyCreateValueIndex(def);
      }
      case WalRecordType::kDropValueIndex: {
        Slice cname, iname;
        if (!GetLengthPrefixed(&payload, &cname) ||
            !GetLengthPrefixed(&payload, &iname))
          return Status::Corruption("bad wal drop-index record");
        auto cit = collections_.find(cname.ToString());
        if (cit == collections_.end()) return Status::OK();
        Collection* c = cit->second.get();
        if (c->needs_repair()) return Status::OK();
        Status st = c->ApplyDropValueIndex(iname.ToString());
        if (st.IsNotFound()) return Status::OK();
        return st;
      }
      case WalRecordType::kCreateStructuralIndex: {
        Slice cname, iname, ename;
        if (!GetLengthPrefixed(&payload, &cname) ||
            !GetLengthPrefixed(&payload, &iname) ||
            !GetLengthPrefixed(&payload, &ename))
          return Status::Corruption("bad wal create-structural record");
        StructuralIndexDef def;
        def.name = iname.ToString();
        def.element_name = ename.ToString();
        auto cit = collections_.find(cname.ToString());
        if (cit == collections_.end()) return Status::OK();  // dropped later
        Collection* c = cit->second.get();
        if (c->needs_repair()) return Status::OK();
        if (c->FindStructuralIndex(def.name) != nullptr) return Status::OK();
        return c->ApplyCreateStructuralIndex(def);
      }
      case WalRecordType::kDropStructuralIndex: {
        Slice cname, iname;
        if (!GetLengthPrefixed(&payload, &cname) ||
            !GetLengthPrefixed(&payload, &iname))
          return Status::Corruption("bad wal drop-structural record");
        auto cit = collections_.find(cname.ToString());
        if (cit == collections_.end()) return Status::OK();
        Collection* c = cit->second.get();
        if (c->needs_repair()) return Status::OK();
        Status st = c->ApplyDropStructuralIndex(iname.ToString());
        if (st.IsNotFound()) return Status::OK();
        return st;
      }
      case WalRecordType::kRegisterSchema: {
        Slice sname;
        if (!GetLengthPrefixed(&payload, &sname))
          return Status::Corruption("bad wal register-schema record");
        return RegisterSchemaBinaryLocked(sname.ToString(), payload);
      }
      default:
        break;  // document records: fall through to the common parse
    }
    Slice name_slice;
    if (!GetLengthPrefixed(&payload, &name_slice))
      return Status::Corruption("bad wal payload");
    std::string name = name_slice.ToString();
    if (payload.size() < 8) return Status::Corruption("bad wal payload");
    uint64_t doc_id = DecodeFixed64(payload.data());
    payload.RemovePrefix(8);
    auto it = collections_.find(name);
    if (it == collections_.end()) return Status::OK();  // dropped later
    Collection* coll = it->second.get();
    // Quarantined collections cannot take replay until Scrub() has rebuilt
    // their storage; Scrub then re-runs the replay with a filter.
    if (coll->needs_repair()) return Status::OK();
    if (filter && !filter(name, doc_id)) return Status::OK();
    Status op_status = [&]() -> Status {
    switch (type) {
      case WalRecordType::kInsertDocument: {
        auto exists = coll->docid_tree_->Contains(
            [&] {
              std::string k;
              PutBig64(&k, doc_id);
              return k;
            }());
        if (exists.ok() && exists.value()) return Status::OK();  // redone
        Transaction txn = Begin(IsolationMode::kLocking);
        auto res = coll->InsertTokensLocked(&txn, payload, doc_id);
        Status st = res.ok() ? Status::OK() : res.status();
        if (st.ok()) st = Commit(&txn);
        else (void)Abort(&txn);
        {
          MutexLock dlock(coll->docid_mu_);
          if (doc_id >= coll->meta_.next_doc_id)
            coll->meta_.next_doc_id = doc_id + 1;
        }
        return st;
      }
      case WalRecordType::kDeleteDocument: {
        Status st = coll->DeleteDocument(nullptr, doc_id);
        if (st.IsNotFound()) return Status::OK();  // already gone / redone
        return st;
      }
      case WalRecordType::kUpdateNode: {
        Slice node_id;
        if (!GetLengthPrefixed(&payload, &node_id))
          return Status::Corruption("bad wal update payload");
        Status st = coll->UpdateTextNode(nullptr, doc_id, node_id, payload);
        if (st.IsNotFound()) return Status::OK();
        return st;
      }
      case WalRecordType::kInsertSubtree: {
        Slice parent_id, after_id;
        if (!GetLengthPrefixed(&payload, &parent_id) ||
            !GetLengthPrefixed(&payload, &after_id))
          return Status::Corruption("bad wal subtree payload");
        Transaction txn = Begin(IsolationMode::kLocking);
        auto res = [&]() -> Result<std::string> {
          WriterMutexLock latch(coll->latch_);
          return coll->InsertSubtreeLocked(&txn, doc_id, parent_id, after_id,
                                           payload);
        }();
        Status st = res.ok() ? Status::OK() : res.status();
        // Idempotency: if the subtree is already present (the operation hit
        // the data pages before the crash), the Between() ID may collide —
        // re-running is still safe because replay starts from the last
        // checkpointed image, which cannot contain post-checkpoint work.
        if (st.ok()) st = Commit(&txn);
        else (void)Abort(&txn);
        if (st.IsNotFound()) return Status::OK();
        return st;
      }
      case WalRecordType::kDeleteSubtree: {
        Status st = coll->DeleteSubtree(nullptr, doc_id, payload);
        if (st.IsNotFound()) return Status::OK();
        return st;
      }
      default:
        return Status::OK();
    }
    }();
    if (op_status.IsCorruption() || op_status.IsIOError()) {
      // Replay ran into damaged storage. Failing Open() here would take the
      // whole database down; instead quarantine the collection (skipping its
      // remaining records — the WAL survives until Scrub() repairs it).
      coll->needs_repair_ = true;
      coll->repair_reason_ = "wal replay: " + op_status.ToString();
      return Status::OK();
    }
    return op_status;
}

Status Engine::ApplyReplicatedRecords(Slice framed_records,
                                      uint64_t publish_csn,
                                      WalReplayInfo* info) {
  // The applier thread's time in here is the replica's "apply lag" cost;
  // attribute the whole call (local append + apply + publish) as kReplApply.
  obs::WaitSpan apply_span(&wait_sink_, obs::WaitState::kReplApply);
  MutexLock lock(mu_);
  if (!replica_.load(std::memory_order_acquire))
    return Status::NotSupported(
        "not a replica (stale segments cannot apply to promoted state)");
  if (wal_ == nullptr) return Status::NotSupported("replica has no WAL");
  if (framed_records.empty()) {
    PublishAppliedCsn(publish_csn);
    return Status::OK();
  }
  // Durability first: land the shipped bytes in the local log, then apply.
  // A crash after the append replays these records from the local WAL at
  // reopen; a crash during it leaves a torn tail that reopen truncates. The
  // watermark is published only after a successful apply, so an
  // acknowledged CSN is always a durably *applied* CSN.
  XDB_ASSIGN_OR_RETURN(const uint64_t append_lsn,
                       wal_->AppendRaw(framed_records));
  if (options_.sync_commits) XDB_RETURN_NOT_OK(wal_->Commit());
  Status s;
  {
    ReplayScope replay(this);
    s = ApplyWalRange(framed_records, publish_csn - framed_records.size(), {},
                      info);
  }
  if (!s.ok()) {
    // The segment failed to apply (e.g. a corrupt DDL payload) and will
    // never be acknowledged, so its bytes must not stay in the local log:
    // the watermark is reconstructed at reopen as base + WAL length, and the
    // resync path re-ships these exact stream bytes — leaving them appended
    // would double-count them and make the replica skip real segments.
    Status trunc = wal_->TruncateTo(append_lsn);
    if (!trunc.ok())
      events_.Emit(obs::EventKind::kReplicaStalled, append_lsn, 0,
                   "repl: failed-apply rollback truncate failed: " +
                       trunc.ToString());
    return s;
  }
  PublishAppliedCsn(publish_csn);
  return Status::OK();
}

void Engine::PublishAppliedCsn(uint64_t csn) {
  MutexLock lock(fresh_mu_);
  applied_csn_.store(csn, std::memory_order_release);
  fresh_cv_.NotifyAll();
}

Status Engine::WaitForFreshness(uint64_t min_csn, uint64_t timeout_us) {
  if (min_csn == 0 || !replica_.load(std::memory_order_acquire))
    return Status::OK();
  if (applied_csn_.load(std::memory_order_acquire) >= min_csn)
    return Status::OK();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  // Only reached when the replica is actually behind: the span covers the
  // blocking wait (or the immediate-stale path), never the fresh fast path
  // above. fresh_mu_ is the span's own component lock (kEngineFreshness).
  obs::WaitSpan fresh_span(&wait_sink_, obs::WaitState::kFreshness);
  MutexLock lock(fresh_mu_);
  while (applied_csn_.load(std::memory_order_acquire) < min_csn) {
    if (timeout_us == 0 ||
        fresh_cv_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
      // One last check: the publish may have raced the timeout.
      if (applied_csn_.load(std::memory_order_acquire) >= min_csn)
        return Status::OK();
      return Status::Stale(
          "replica applied csn " +
          std::to_string(applied_csn_.load(std::memory_order_acquire)) +
          " < required " + std::to_string(min_csn));
    }
  }
  return Status::OK();
}

Status Engine::Promote() {
  if (!replica_.load(std::memory_order_acquire))
    return Status::InvalidArgument("engine is not a replica");
  // Scrub is the promotion gate: a full page sweep (every checksum, every
  // record envelope), repair of anything damaged, and a checkpoint — the
  // promoted primary starts from a verified durable image rather than
  // whatever mix of pages and WAL tail the apply pipeline left behind.
  XDB_ASSIGN_OR_RETURN(ScrubReport report, Scrub());
  replica_.store(false, std::memory_order_release);
  events_.Emit(obs::EventKind::kPromoted,
               applied_csn_.load(std::memory_order_acquire),
               report.clean ? 0 : 1, "replica promoted to primary");
  return Status::OK();
}

Result<ScrubReport> Engine::Scrub() {
  ScrubReport report;
  std::vector<Collection*> colls;
  {
    MutexLock lock(mu_);
    for (auto& [name, coll] : collections_) colls.push_back(coll.get());
  }
  events_.Emit(obs::EventKind::kScrubBegin, colls.size(), 0, "scrub");

  std::map<std::string, std::set<uint64_t>> salvaged, lost;
  std::map<std::string, bool> rebuilt;
  for (Collection* coll : colls) {
    CollectionScrubReport crep;
    XDB_RETURN_NOT_OK(coll->ScrubAndRepair(&crep, &salvaged[coll->name()],
                                           &lost[coll->name()]));
    rebuilt[coll->name()] = crep.rebuilt;
    if (crep.checksum_failures + crep.envelope_failures > 0 || crep.rebuilt)
      events_.Emit(obs::EventKind::kScrubFinding, crep.checksum_failures,
                   crep.envelope_failures,
                   "collection '" + crep.collection + "'" +
                       (crep.rebuilt ? " rebuilt" : " damaged"));
    report.collections.push_back(std::move(crep));
  }

  bool any_rebuilt = false;
  for (const auto& [name, r] : rebuilt) any_rebuilt = any_rebuilt || r;
  if (any_rebuilt && wal_ != nullptr) {
    // Replay only what the salvage pass could not restore: records of
    // rebuilt collections for documents that were NOT re-inserted (salvaged
    // documents already contain their post-insert updates, so re-applying
    // their records would duplicate work or whole subtrees).
    XDB_RETURN_NOT_OK(ReplayWal(
        [&](const std::string& coll, uint64_t doc_id) {
          auto it = rebuilt.find(coll);
          if (it == rebuilt.end() || !it->second) return false;
          return salvaged[coll].count(doc_id) == 0;
        },
        &report.replay));
  }

  // Post-replay accounting: which lost documents came back from the WAL,
  // which are gone for good.
  for (CollectionScrubReport& crep : report.collections) {
    if (!crep.rebuilt) continue;
    auto cres = GetCollection(crep.collection);
    if (!cres.ok()) continue;
    auto ids = cres.value()->ListDocIds();
    if (!ids.ok()) continue;
    std::set<uint64_t> present(ids.value().begin(), ids.value().end());
    for (uint64_t id : present)
      if (salvaged[crep.collection].count(id) == 0)
        crep.docs_recovered_from_wal++;
    for (uint64_t id : lost[crep.collection])
      if (present.count(id) == 0) crep.docs_lost++;
  }

  for (const CollectionScrubReport& crep : report.collections)
    report.clean = report.clean && !crep.rebuilt &&
                   crep.checksum_failures == 0 && crep.envelope_failures == 0;

  // Persist the repaired state and retire the WAL records it covers.
  XDB_RETURN_NOT_OK(Checkpoint());
  events_.Emit(obs::EventKind::kScrubEnd, report.collections.size(),
               report.clean ? 0 : 1, report.clean ? "scrub clean"
                                                  : "scrub repaired damage");
  return report;
}

obs::MetricsSnapshot Engine::MetricsSnapshot() const {
  return metrics_.Snapshot();
}

obs::DebugSnapshot Engine::DebugSnapshot() const {
  obs::DebugSnapshot snap;
  snap.captured_at_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  snap.role = replica_.load(std::memory_order_acquire) ? "replica" : "primary";
  snap.applied_csn = applied_csn_.load(std::memory_order_acquire);
  if (wal_ != nullptr) {
    snap.wal_size = wal_->size();
    snap.wal_durable_upto = wal_->durable_upto();
  }
  {
    MutexLock lock(mu_);
    snap.collections.reserve(collections_.size());
    for (const auto& [name, coll] : collections_) {
      obs::DebugSnapshot::CollectionInfo info;
      info.name = name;
      query::CollectionStatsSnapshot st = coll->stats()->Snapshot();
      info.doc_count = st.doc_count;
      info.node_count = st.node_count;
      info.stats_epoch = st.epoch;
      info.stats_valid = st.valid;
      if (coll->buffer_ != nullptr) {
        info.buffer_resident = coll->buffer_->resident_frames();
        info.buffer_capacity = coll->buffer_->capacity();
        BufferManagerStats bs = coll->buffer_->stats();
        info.buffer_hits = bs.hits;
        info.buffer_misses = bs.misses;
      }
      snap.collections.push_back(std::move(info));
    }
  }
  // collections_ is a std::map, so the vector is already name-sorted — the
  // determinism contract in obs/debug_snapshot.h.
  snap.metrics = metrics_.Snapshot();
  snap.events = events_.Recent();
  snap.slow_queries = slow_queries_.Recent();
  return snap;
}

void Engine::CollectComponentMetrics(std::vector<obs::Metric>* out) const {
  auto counter = [out](const char* name, uint64_t v) {
    obs::Metric m;
    m.name = name;
    m.kind = obs::MetricKind::kCounter;
    m.value = v;
    out->push_back(std::move(m));
  };
  auto gauge = [out](const char* name, uint64_t v) {
    obs::Metric m;
    m.name = name;
    m.kind = obs::MetricKind::kGauge;
    m.value = v;
    out->push_back(std::move(m));
  };

  // Sum per-collection component stats into engine-wide totals. Each
  // component snapshot takes only that component's own (leaf) locks.
  BufferManagerStats buf;
  RecordManagerStats rec;
  IoStatsSnapshot io;
  size_t n_collections = 0;
  // Structural-index stats aggregated engine-wide (satellite of the wait
  // layer: surfaced as index.structural.*). Per-name posting counts are
  // capped; the tail pools into `_other` so the metric set stays bounded.
  uint64_t st_indexes = 0, st_entries = 0, st_added = 0, st_removed = 0;
  std::map<std::string, uint64_t> st_postings;
  {
    MutexLock lock(mu_);
    n_collections = collections_.size();
    for (const auto& [name, coll] : collections_) {
      query::CollectionStatsSnapshot css = coll->stats()->Snapshot();
      for (const auto& [ix_name, st] : css.structural) {
        st_indexes++;
        st_entries += st.entry_count;
        st_added += st.entries_added;
        st_removed += st.entries_removed;
        for (const auto& [elem, ns] : st.names) st_postings[elem] += ns.count;
        if (st.other_count > 0) st_postings["_other"] += st.other_count;
      }
      if (coll->buffer_ != nullptr) {
        BufferManagerStats b = coll->buffer_->stats();
        buf.hits += b.hits;
        buf.misses += b.misses;
        buf.evictions += b.evictions;
        buf.writebacks += b.writebacks;
        buf.checksum_failures += b.checksum_failures;
      }
      if (coll->records_ != nullptr) {
        RecordManagerStats r = coll->records_->stats();
        rec.inserts += r.inserts;
        rec.updates += r.updates;
        rec.deletes += r.deletes;
        rec.overflow_records += r.overflow_records;
        rec.data_pages += r.data_pages;
        rec.live_records += r.live_records;
        rec.corrupt_pages += r.corrupt_pages;
      }
      if (coll->space_ != nullptr) {
        IoStatsSnapshot s = coll->space_->io_stats();
        io.reads += s.reads;
        io.writes += s.writes;
        io.syncs += s.syncs;
        io.retries += s.retries;
        io.transient_errors += s.transient_errors;
        io.permanent_failures += s.permanent_failures;
      }
    }
  }
  gauge("engine.collections", n_collections);
  counter("buffer.hits", buf.hits);
  counter("buffer.misses", buf.misses);
  counter("buffer.evictions", buf.evictions);
  counter("buffer.writebacks", buf.writebacks);
  counter("buffer.checksum_failures", buf.checksum_failures);
  counter("record.inserts", rec.inserts);
  counter("record.updates", rec.updates);
  counter("record.deletes", rec.deletes);
  counter("record.overflow_records", rec.overflow_records);
  gauge("record.data_pages", rec.data_pages);
  gauge("record.live_records", rec.live_records);
  counter("record.corrupt_pages", rec.corrupt_pages);
  counter("io.reads", io.reads);
  counter("io.writes", io.writes);
  counter("io.syncs", io.syncs);
  counter("io.retries", io.retries);
  counter("io.transient_errors", io.transient_errors);
  counter("io.permanent_failures", io.permanent_failures);

  if (wal_ != nullptr) {
    IoStatsSnapshot ws = wal_->io_stats();
    counter("wal.io.reads", ws.reads);
    counter("wal.io.writes", ws.writes);
    counter("wal.io.syncs", ws.syncs);
    counter("wal.io.retries", ws.retries);
    counter("wal.io.transient_errors", ws.transient_errors);
    counter("wal.io.permanent_failures", ws.permanent_failures);
    WalCommitStats cs = wal_->commit_stats();
    counter("wal.commits", cs.commits);
    counter("wal.group_commit.rounds", cs.syncs);
  }

  LockManagerStats ls = locks_.stats();
  counter("lock.acquisitions", ls.acquisitions);
  counter("lock.waits", ls.waits);
  counter("lock.timeouts", ls.timeouts);
  counter("lock.deadlocks", ls.deadlocks);
  counter("lock.node_prefix_checks", ls.node_prefix_checks);

  if (st_indexes > 0) {
    gauge("index.structural.indexes", st_indexes);
    gauge("index.structural.entries", st_entries);
    counter("index.structural.entries_added", st_added);
    counter("index.structural.entries_removed", st_removed);
    // Bounded per-name breakdown: the first kMaxPostingNames element names
    // (map order = lexicographic, deterministic) get their own gauge, the
    // rest pool into `_other` alongside the caps already applied upstream.
    static constexpr size_t kMaxPostingNames = 32;
    size_t named = 0;
    uint64_t pooled = 0;
    uint64_t names_total = 0;
    for (const auto& [elem, count] : st_postings) {
      if (elem == "_other") {
        pooled += count;
        continue;
      }
      names_total++;
      if (named < kMaxPostingNames) {
        obs::Metric m;
        m.name = "index.structural.postings." + elem;
        m.kind = obs::MetricKind::kGauge;
        m.value = count;
        out->push_back(std::move(m));
        named++;
      } else {
        pooled += count;
      }
    }
    gauge("index.structural.names", names_total);
    if (pooled > 0) gauge("index.structural.postings._other", pooled);
  }

  counter("slowlog.recorded", slow_queries_.recorded());
  counter("slowlog.overwritten", slow_queries_.overwritten());

  counter("events.emitted", events_.emitted());
  counter("events.overwritten", events_.overwritten());
}

}  // namespace xdb
