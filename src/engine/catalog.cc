#include "engine/catalog.h"

#include <cstdio>
#include <fstream>

#include "common/coding.h"

namespace xdb {

namespace {
constexpr uint32_t kCatalogMagic = 0x58444243;    // "XDBC" (v1, no stats)
constexpr uint32_t kCatalogMagicV2 = 0x58444244;  // "XDBD" (adds stats_epoch)
constexpr uint32_t kCatalogMagicV3 = 0x58444245;  // "XDBE" (replica CSN)
constexpr uint32_t kCatalogMagicV4 = 0x58444246;  // "XDBF" (structural ix)

void PutString(std::string* out, const std::string& s) {
  PutLengthPrefixed(out, s);
}
bool GetString(Slice* in, std::string* s) {
  Slice v;
  if (!GetLengthPrefixed(in, &v)) return false;
  *s = v.ToString();
  return true;
}
}  // namespace

void CatalogData::Serialize(std::string* out) const {
  PutFixed32(out, kCatalogMagicV4);
  PutFixed64(out, replica_wal_base);
  PutVarint64(out, collections.size());
  for (const auto& [name, meta] : collections) {
    PutString(out, name);
    PutString(out, meta.space_file);
    PutFixed32(out, meta.docid_index_root);
    PutFixed32(out, meta.nodeid_index_root);
    PutFixed32(out, meta.versioned_index_root);
    PutFixed64(out, meta.next_doc_id);
    PutFixed64(out, meta.last_version);
    PutFixed64(out, meta.stats_epoch);
    out->push_back(meta.mvcc_enabled ? 1 : 0);
    PutString(out, meta.schema_name);
    PutVarint64(out, meta.value_indexes.size());
    for (const auto& vi : meta.value_indexes) {
      PutString(out, vi.def.name);
      PutString(out, vi.def.path);
      out->push_back(static_cast<char>(vi.def.type));
      PutVarint32(out, vi.def.max_string_len);
      PutFixed32(out, vi.root);
    }
    PutVarint64(out, meta.structural_indexes.size());
    for (const auto& si : meta.structural_indexes) {
      PutString(out, si.def.name);
      PutString(out, si.def.element_name);
      PutFixed32(out, si.root);
    }
  }
  PutVarint64(out, schemas.size());
  for (const auto& [name, binary] : schemas) {
    PutString(out, name);
    PutString(out, binary);
  }
  PutString(out, dictionary);
}

Result<CatalogData> CatalogData::Deserialize(Slice data) {
  CatalogData cat;
  if (data.size() < 4) return Status::Corruption("bad catalog magic");
  const uint32_t magic = DecodeFixed32(data.data());
  // Old-format (v1) catalogs still load: stats_epoch defaults to 0 ("no
  // stats saved yet"). Engine::Open treats epoch 0 as valid-empty only for
  // collections with no checkpointed documents; otherwise it degrades them
  // to heuristic planning (their documents are not reflected in any stats).
  const bool v4 = magic == kCatalogMagicV4;
  const bool v3 = v4 || magic == kCatalogMagicV3;
  const bool v2 = v3 || magic == kCatalogMagicV2;
  if (!v2 && magic != kCatalogMagic)
    return Status::Corruption("bad catalog magic");
  data.RemovePrefix(4);
  if (v3) {
    if (data.size() < 8) return Status::Corruption("truncated catalog header");
    cat.replica_wal_base = DecodeFixed64(data.data());
    data.RemovePrefix(8);
  }
  auto read_var = [&](uint64_t* v) -> bool {
    size_t n = GetVarint64(data.data(), data.data() + data.size(), v);
    if (n == 0) return false;
    data.RemovePrefix(n);
    return true;
  };
  uint64_t ncoll;
  if (!read_var(&ncoll)) return Status::Corruption("bad collection count");
  for (uint64_t i = 0; i < ncoll; i++) {
    std::string name;
    CollectionMeta meta;
    if (!GetString(&data, &name) || !GetString(&data, &meta.space_file))
      return Status::Corruption("bad collection meta");
    const size_t fixed = 4 * 3 + 8 * 2 + (v2 ? 8 : 0) + 1;
    if (data.size() < fixed)
      return Status::Corruption("truncated collection meta");
    meta.name = name;
    meta.docid_index_root = DecodeFixed32(data.data());
    meta.nodeid_index_root = DecodeFixed32(data.data() + 4);
    meta.versioned_index_root = DecodeFixed32(data.data() + 8);
    meta.next_doc_id = DecodeFixed64(data.data() + 12);
    meta.last_version = DecodeFixed64(data.data() + 20);
    if (v2) meta.stats_epoch = DecodeFixed64(data.data() + 28);
    meta.mvcc_enabled = data[fixed - 1] != 0;
    data.RemovePrefix(fixed);
    if (!GetString(&data, &meta.schema_name))
      return Status::Corruption("bad collection schema name");
    uint64_t nvi;
    if (!read_var(&nvi)) return Status::Corruption("bad index count");
    for (uint64_t k = 0; k < nvi; k++) {
      ValueIndexMeta vi;
      if (!GetString(&data, &vi.def.name) || !GetString(&data, &vi.def.path))
        return Status::Corruption("bad index meta");
      if (data.empty()) return Status::Corruption("truncated index meta");
      vi.def.type = static_cast<ValueType>(data[0]);
      data.RemovePrefix(1);
      uint32_t maxlen;
      size_t n = GetVarint32(data.data(), data.data() + data.size(), &maxlen);
      if (n == 0) return Status::Corruption("bad index meta");
      data.RemovePrefix(n);
      vi.def.max_string_len = maxlen;
      if (data.size() < 4) return Status::Corruption("truncated index meta");
      vi.root = DecodeFixed32(data.data());
      data.RemovePrefix(4);
      meta.value_indexes.push_back(std::move(vi));
    }
    if (v4) {
      // Pre-v4 catalogs have no structural section; they load with none.
      uint64_t nsi;
      if (!read_var(&nsi))
        return Status::Corruption("bad structural index count");
      for (uint64_t k = 0; k < nsi; k++) {
        StructuralIndexMeta si;
        if (!GetString(&data, &si.def.name) ||
            !GetString(&data, &si.def.element_name))
          return Status::Corruption("bad structural index meta");
        if (data.size() < 4)
          return Status::Corruption("truncated structural index meta");
        si.root = DecodeFixed32(data.data());
        data.RemovePrefix(4);
        meta.structural_indexes.push_back(std::move(si));
      }
    }
    cat.collections.emplace(name, std::move(meta));
  }
  uint64_t nschema;
  if (!read_var(&nschema)) return Status::Corruption("bad schema count");
  for (uint64_t i = 0; i < nschema; i++) {
    std::string name, binary;
    if (!GetString(&data, &name) || !GetString(&data, &binary))
      return Status::Corruption("bad schema entry");
    cat.schemas.emplace(std::move(name), std::move(binary));
  }
  if (!GetString(&data, &cat.dictionary))
    return Status::Corruption("bad dictionary");
  return cat;
}

Status SaveCatalog(const CatalogData& data, const std::string& path) {
  std::string bytes;
  data.Serialize(&bytes);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IOError("short catalog write");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return Status::IOError("cannot rename catalog into place");
  return Status::OK();
}

Result<CatalogData> LoadCatalog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no catalog at " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return CatalogData::Deserialize(bytes);
}

}  // namespace xdb
