// XmlHandle: the reference construct of Section 4.4.
//
// "XML handles are widely used to link between relational data and XML
// data. Fetch of persistent XML data is deferred until when it's
// necessary." A handle names a stored node — (collection, DocID, NodeID) —
// without materializing anything; Resolve() performs the deferred fetch,
// streaming the subtree through the shared serialization sink.
#ifndef XDB_ENGINE_XML_HANDLE_H_
#define XDB_ENGINE_XML_HANDLE_H_

#include <string>

#include "common/status.h"
#include "engine/collection.h"

namespace xdb {

class XmlHandle {
 public:
  XmlHandle() = default;
  XmlHandle(Collection* collection, uint64_t doc_id, std::string node_id)
      : collection_(collection),
        doc_id_(doc_id),
        node_id_(std::move(node_id)) {}

  bool valid() const { return collection_ != nullptr; }
  uint64_t doc_id() const { return doc_id_; }
  const std::string& node_id() const { return node_id_; }

  /// The deferred fetch: serializes the referenced subtree (the whole
  /// document for an empty node ID) under the given transaction's
  /// isolation.
  Result<std::string> Resolve(Transaction* txn = nullptr) const {
    if (!valid()) return Status::InvalidArgument("unbound XML handle");
    if (node_id_.empty()) return collection_->GetDocumentText(txn, doc_id_);
    return collection_->SerializeSubtree(txn, doc_id_, node_id_);
  }

 private:
  Collection* collection_ = nullptr;
  uint64_t doc_id_ = 0;
  std::string node_id_;
};

}  // namespace xdb

#endif  // XDB_ENGINE_XML_HANDLE_H_
