// NaiveStreamEvaluator: the "other streaming algorithms" comparison point of
// Figure 7. It tracks every partial matching path (binding tuple) as a live
// configuration instead of QuickXScan's stack-top-with-transitivity scheme,
// so on recursive documents (//a//a//a over nested <a>s) its live state
// grows combinatorially while QuickXScan stays at O(|Q|*r).
//
// Supports linear paths (child/descendant/attribute axes, name/* tests,
// no predicates) — the query class of experiment E5.
#ifndef XDB_XPATH_NAIVE_STREAM_H_
#define XDB_XPATH_NAIVE_STREAM_H_

#include <vector>

#include "common/status.h"
#include "runtime/virtual_sax.h"
#include "xdm/item.h"
#include "xpath/ast.h"

namespace xdb {
namespace xpath {

struct NaiveStreamStats {
  uint64_t configs_created = 0;
  uint64_t peak_live_configs = 0;
  uint64_t match_tests = 0;
};

class NaiveStreamEvaluator {
 public:
  NaiveStreamEvaluator(const Path* path, const NameDictionary* dict,
                       uint64_t doc_id);

  /// Fails with kNotSupported if the path uses predicates or axes outside
  /// the linear subset.
  Status Run(XmlEventSource* source, NodeSequence* results);

  const NaiveStreamStats& stats() const { return stats_; }

 private:
  struct CompiledStep {
    Axis axis;
    bool any_name;
    NameId name_id;
  };
  struct Config {
    size_t next_step;  // index of the step to match next
    int bind_depth;    // element depth of the last bound step
  };

  Status Compile();

  const Path* path_;
  const NameDictionary* dict_;
  uint64_t doc_id_;
  std::vector<CompiledStep> steps_;
  std::vector<Config> configs_;
  // Per-open-element: number of configs spawned (to drop on close).
  std::vector<size_t> frame_marks_;
  int depth_ = 0;
  NaiveStreamStats stats_;
};

}  // namespace xpath
}  // namespace xdb

#endif  // XDB_XPATH_NAIVE_STREAM_H_
