#include "xpath/dom_evaluator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace xdb {
namespace xpath {

namespace {
void CollectDescendants(const DomNode* n, std::vector<const DomNode*>* out) {
  for (const DomNode* c : n->children) {
    out->push_back(c);
    CollectDescendants(c, out);
  }
}
}  // namespace

bool DomEvaluator::TestMatches(const Step& step, const DomNode* n) const {
  switch (step.test) {
    case NodeTest::kName: {
      if (n->kind != NodeKind::kElement && n->kind != NodeKind::kAttribute)
        return false;
      NameId id = dict_->Lookup(step.name);
      return id != NameDictionary::kInvalidNameId && n->local == id;
    }
    case NodeTest::kAnyName:
      return n->kind == NodeKind::kElement || n->kind == NodeKind::kAttribute;
    case NodeTest::kText:
      return n->kind == NodeKind::kText;
    case NodeTest::kComment:
      return n->kind == NodeKind::kComment;
    case NodeTest::kAnyKind:
      return n->kind != NodeKind::kAttribute &&
             n->kind != NodeKind::kNamespace;
  }
  return false;
}

void DomEvaluator::ApplyStep(const Step& step, const DomNode* ctx,
                             std::vector<const DomNode*>* out) const {
  std::vector<const DomNode*> candidates;
  switch (step.axis) {
    case Axis::kChild:
      candidates.assign(ctx->children.begin(), ctx->children.end());
      break;
    case Axis::kAttribute:
      for (const DomNode* a : ctx->attrs)
        if (a->kind == NodeKind::kAttribute) candidates.push_back(a);
      break;
    case Axis::kDescendant:
      CollectDescendants(ctx, &candidates);
      break;
    case Axis::kSelf:
      candidates.push_back(ctx);
      break;
    case Axis::kDescendantOrSelf:
      candidates.push_back(ctx);
      CollectDescendants(ctx, &candidates);
      break;
    case Axis::kParent:
      if (ctx->parent != nullptr) candidates.push_back(ctx->parent);
      break;
  }
  for (const DomNode* c : candidates) {
    if (!TestMatches(step, c)) continue;
    bool ok = true;
    for (const auto& pred : step.predicates) {
      if (!EvalExpr(*pred, c)) {
        ok = false;
        break;
      }
    }
    if (ok) out->push_back(c);
  }
}

void DomEvaluator::EvalSteps(const Path& path, size_t step_idx,
                             const std::vector<const DomNode*>& context,
                             std::vector<const DomNode*>* out) const {
  if (step_idx >= path.steps.size()) {
    out->insert(out->end(), context.begin(), context.end());
    return;
  }
  std::vector<const DomNode*> next;
  std::unordered_set<const DomNode*> seen;
  for (const DomNode* ctx : context) {
    std::vector<const DomNode*> hits;
    ApplyStep(path.steps[step_idx], ctx, &hits);
    for (const DomNode* h : hits)
      if (seen.insert(h).second) next.push_back(h);
  }
  EvalSteps(path, step_idx + 1, next, out);
}

bool DomEvaluator::EvalExpr(const Expr& expr, const DomNode* ctx) const {
  switch (expr.kind) {
    case Expr::Kind::kAnd:
      return EvalExpr(*expr.lhs, ctx) && EvalExpr(*expr.rhs, ctx);
    case Expr::Kind::kOr:
      return EvalExpr(*expr.lhs, ctx) || EvalExpr(*expr.rhs, ctx);
    case Expr::Kind::kNot:
      return !EvalExpr(*expr.lhs, ctx);
    case Expr::Kind::kExists: {
      std::vector<const DomNode*> hits;
      EvalSteps(expr.path, 0, {ctx}, &hits);
      return !hits.empty();
    }
    case Expr::Kind::kCompare: {
      std::vector<const DomNode*> hits;
      EvalSteps(expr.path, 0, {ctx}, &hits);
      const bool relational =
          expr.op != CompOp::kEq && expr.op != CompOp::kNe;
      for (const DomNode* h : hits) {
        std::string value = DomTree::StringValue(h);
        bool ok;
        if (relational || expr.literal_is_number) {
          double lhs = StringToNumber(value);
          double rhs = expr.literal_is_number ? expr.number
                                              : StringToNumber(expr.string);
          if (std::isnan(lhs) || std::isnan(rhs)) continue;
          switch (expr.op) {
            case CompOp::kEq: ok = lhs == rhs; break;
            case CompOp::kNe: ok = lhs != rhs; break;
            case CompOp::kLt: ok = lhs < rhs; break;
            case CompOp::kLe: ok = lhs <= rhs; break;
            case CompOp::kGt: ok = lhs > rhs; break;
            case CompOp::kGe: ok = lhs >= rhs; break;
            default: ok = false;
          }
        } else {
          bool eq = value == expr.string;
          ok = expr.op == CompOp::kEq ? eq : !eq;
        }
        if (ok) return true;  // existential semantics
      }
      return false;
    }
  }
  return false;
}

Result<NodeSequence> DomEvaluator::Evaluate(const Path& path,
                                            bool want_values) const {
  std::vector<const DomNode*> context;
  if (path.absolute) {
    context.push_back(tree_->root());
  } else {
    // Top-level items (the implicit context of QuickXScan's relative paths).
    const DomNode* doc = tree_->root();
    for (const DomNode* a : doc->attrs) context.push_back(a);
    for (const DomNode* c : doc->children) context.push_back(c);
  }
  std::vector<const DomNode*> hits;
  EvalSteps(path, 0, context, &hits);
  NodeSequence seq;
  seq.reserve(hits.size());
  for (const DomNode* h : hits) {
    ResultNode r;
    r.doc_id = doc_id_;
    r.node_id = h->node_id;
    if (want_values) r.string_value = DomTree::StringValue(h);
    seq.push_back(std::move(r));
  }
  NormalizeSequence(&seq);
  return seq;
}

}  // namespace xpath
}  // namespace xdb
