// QueryTree: the compiled form of a path expression (Figure 6(a)).
//
// "QuickXScan models a path expression with a query tree ... each node is
// labeled by the name test or kind test, and the axis of each step is
// differentiated." The main path forms the spine; every relative path inside
// a predicate becomes a branch. Branch edges carry a bit index: an instance
// of the owning node satisfies its predicate expression when the right
// combination of branch bits is set, which is how predicate pushdown with
// Boolean-valued attributes (Section 4.2) is realized.
#ifndef XDB_XPATH_QUERY_TREE_H_
#define XDB_XPATH_QUERY_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/name_dictionary.h"
#include "xpath/ast.h"

namespace xdb {
namespace xpath {

/// Compiled boolean predicate over a node's branch bits.
struct PredProgram {
  enum class OpKind : uint8_t { kAnd, kOr, kNot, kBit, kTrue };
  struct Op {
    OpKind kind = OpKind::kTrue;
    int lhs = -1, rhs = -1;  // operand op indices
    int bit = -1;            // kBit: branch bit index
  };
  std::vector<Op> ops;  // ops.back() is the root; empty = always true

  bool Eval(uint64_t bits) const;
};

struct QueryNode {
  int id = 0;
  Axis axis = Axis::kChild;  // edge to the parent query node
  NodeTest test = NodeTest::kName;
  std::string name;             // for kName tests
  NameId name_id = NameDictionary::kInvalidNameId;  // resolved at compile
  QueryNode* parent = nullptr;
  std::vector<QueryNode*> children;

  /// True when the edge from the parent is a predicate branch (this node's
  /// satisfaction sets `branch_bit` on the parent instance) rather than the
  /// main path.
  bool is_branch = false;
  int branch_bit = -1;

  /// Comparison attached to this node (the last step of a predicate path).
  bool has_compare = false;
  CompOp op = CompOp::kEq;
  bool literal_is_number = false;
  double number = 0;
  std::string string;

  /// Predicate program over this node's branch bits.
  PredProgram pred;
  int branch_count = 0;

  bool is_result = false;
  /// The implicit context node of a relative path: matches the top-level
  /// item of the stream regardless of kind (so residual evaluation works on
  /// attribute and text subtree roots too).
  bool is_context = false;
  /// Instances must accumulate text content (comparison on an element, or
  /// result values requested).
  bool collect_value = false;
};

class QueryTree {
 public:
  /// Compiles a parsed path. `dict` resolves name tests to ids (a name that
  /// is not in the dictionary can never match stored data). When
  /// `want_result_values` is set, result-node instances collect their string
  /// values (needed for index key generation and typed results).
  static Result<std::unique_ptr<QueryTree>> Compile(const Path& path,
                                                    const NameDictionary& dict,
                                                    bool want_result_values);

  const QueryNode* root() const { return nodes_[0].get(); }
  QueryNode* root() { return nodes_[0].get(); }
  /// All nodes in topological (parent-before-child) order; node 0 is the
  /// implicit root matching the document node.
  const std::vector<std::unique_ptr<QueryNode>>& nodes() const {
    return nodes_;
  }
  const QueryNode* result_node() const { return result_; }
  bool absolute() const { return absolute_; }

 private:
  QueryTree() = default;
  QueryNode* NewNode();
  Status CompileSteps(const Path& path, QueryNode* origin, bool is_branch,
                      bool want_values, const NameDictionary& dict,
                      QueryNode** last_out);
  Status CompileExpr(const Expr& expr, QueryNode* owner,
                     const NameDictionary& dict, int* op_index);

  std::vector<std::unique_ptr<QueryNode>> nodes_;
  QueryNode* result_ = nullptr;
  bool absolute_ = true;
  // Compile-time scratch: per-node predicate conjunct roots (op indices;
  // negative values -1-bit encode continuation-bit requirements).
  std::vector<std::vector<int>> pending_roots_;
};

}  // namespace xpath
}  // namespace xdb

#endif  // XDB_XPATH_QUERY_TREE_H_
