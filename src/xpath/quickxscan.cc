#include "xpath/quickxscan.h"

#include <algorithm>
#include <cmath>

#include "xpath/parser.h"

namespace xdb {
namespace xpath {

QuickXScan::QuickXScan(const QueryTree* tree, uint64_t doc_id)
    : tree_(tree), doc_id_(doc_id) {
  stacks_.resize(tree_->nodes().size());
}

bool QuickXScan::CompareOk(const QueryNode* q, const std::string& value) const {
  if (!q->has_compare) return true;
  const bool relational = q->op != CompOp::kEq && q->op != CompOp::kNe;
  if (relational || q->literal_is_number) {
    double lhs = StringToNumber(value);
    double rhs =
        q->literal_is_number ? q->number : StringToNumber(q->string);
    if (std::isnan(lhs) || std::isnan(rhs)) return false;
    switch (q->op) {
      case CompOp::kEq: return lhs == rhs;
      case CompOp::kNe: return lhs != rhs;
      case CompOp::kLt: return lhs < rhs;
      case CompOp::kLe: return lhs <= rhs;
      case CompOp::kGt: return lhs > rhs;
      case CompOp::kGe: return lhs >= rhs;
    }
    return false;
  }
  // String equality comparisons.
  bool eq = value == q->string;
  return q->op == CompOp::kEq ? eq : !eq;
}

QuickXScan::Instance* QuickXScan::FindAxisCandidate(const QueryNode* q,
                                                    int depth, bool instant) {
  const std::vector<Instance*>& pstack = stacks_[q->parent->id];
  if (pstack.empty()) return nullptr;
  Instance* top = pstack.back();
  // Query nodes are processed parents-first, so `top` may be an instance
  // pushed for the *current* element (self-nested names like //a/a); the
  // enclosing instance is then one below. Stack depths are strictly
  // increasing, so at most one extra probe is needed.
  Instance* below =
      pstack.size() >= 2 ? pstack[pstack.size() - 2] : nullptr;
  switch (q->axis) {
    case Axis::kChild: {
      const int want = instant ? depth : depth - 1;
      if (top->depth == want) return top;
      if (top->depth > want && below != nullptr && below->depth == want)
        return below;
      return nullptr;
    }
    case Axis::kAttribute:
      // Only instant attribute events reach here; owner is the element
      // currently at elem_depth_.
      return top->depth == depth ? top : nullptr;
    case Axis::kDescendant: {
      // Strict: an instance at a smaller element depth. For instant leaf
      // kinds the node's depth is conceptually depth+1, so <= depth works.
      int limit = instant ? depth : depth - 1;
      if (top->depth <= limit) return top;
      if (pstack.size() >= 2 && pstack[pstack.size() - 2]->depth <= limit)
        return pstack[pstack.size() - 2];
      return nullptr;
    }
    case Axis::kDescendantOrSelf:
      return top->depth <= depth ? top : nullptr;
    case Axis::kSelf:
      if (instant) return nullptr;  // self on leaves unsupported
      return top->depth == depth ? top : nullptr;
    case Axis::kParent:
      return nullptr;  // rewritten away before compilation
  }
  return nullptr;
}

QuickXScan::Instance* QuickXScan::Push(const QueryNode* q, const XmlEvent& ev,
                                       Instance* parent_ref, int depth,
                                       bool instant) {
  Instance* m;
  if (!free_list_.empty()) {
    // Recycle: live state stays O(|Q| * r), the paper's optimality bound.
    m = free_list_.back();
    free_list_.pop_back();
    m->bits = 0;
    m->value.clear();
    m->node_id.clear();
    m->pending.clear();
    m->carried.clear();
  } else {
    pool_.emplace_back();
    m = &pool_.back();
  }
  m->q = q;
  m->depth = depth;
  m->instant = instant;
  m->parent_ref = parent_ref;
  m->collecting = q->collect_value;
  if (q->is_result) m->node_id.assign(ev.node_id.data(), ev.node_id.size());
  stacks_[q->id].push_back(m);
  if (m->collecting) collecting_.push_back(m);
  live_instances_++;
  stats_.instances_created++;
  stats_.peak_live_instances =
      std::max(stats_.peak_live_instances, live_instances_);
  return m;
}

// True if a parent-step instance at element depth `p_depth` is a legitimate
// parent match for a node at `m_depth` under `axis` (m_depth is the owner's
// depth for instant leaf kinds).
static bool AxisAdmits(Axis axis, int p_depth, int m_depth, bool instant) {
  switch (axis) {
    case Axis::kChild:
      return instant ? p_depth == m_depth : p_depth == m_depth - 1;
    case Axis::kAttribute:
      return p_depth == m_depth;
    case Axis::kSelf:
      return p_depth == m_depth;
    case Axis::kDescendant:
      return instant ? p_depth <= m_depth : p_depth <= m_depth - 1;
    case Axis::kDescendantOrSelf:
      return p_depth <= m_depth;
    case Axis::kParent:
      return false;
  }
  return false;
}

void QuickXScan::Pop(Instance* m) {
  const QueryNode* q = m->q;
  std::vector<Instance*>& stack = stacks_[q->id];
  // Instances pop in reverse push order, so m is the stack top.
  stack.pop_back();
  if (m->collecting) collecting_.pop_back();
  live_instances_--;

  const bool preds_ok = q->pred.Eval(m->bits);
  const bool self_ok = preds_ok && CompareOk(q, m->value);

  // Branch satisfaction: by transitivity, every parent-step instance whose
  // subtree contains this match is satisfied — for descendant-family axes
  // that is the whole compatible run of the stack, not just the top.
  // (This realizes the Table-1 upward/sideways propagation of Boolean
  // attributes; set-semantics make multi-target delivery duplicate-free.)
  if (q->is_branch && self_ok) {
    const std::vector<Instance*>& pstack = stacks_[q->parent->id];
    const uint64_t bit = uint64_t{1} << q->branch_bit;
    const bool gap_axis = q->axis == Axis::kDescendant ||
                          q->axis == Axis::kDescendantOrSelf;
    for (auto it = pstack.rbegin(); it != pstack.rend(); ++it) {
      Instance* p = *it;
      if (AxisAdmits(q->axis, p->depth, m->depth, m->instant)) {
        p->bits |= bit;
        if (!gap_axis) break;  // exact-depth axes have one target
      } else if (!gap_axis && p->depth < m->depth - 1) {
        break;
      }
    }
  }

  // Candidate result sequences. `carried` items already have a witness at
  // this query level; `pending` items gain one iff this instance's
  // predicates hold; a result-node instance contributes itself.
  std::vector<ResultNode> valid = std::move(m->carried);
  if (preds_ok && !m->pending.empty()) {
    valid.insert(valid.end(), std::make_move_iterator(m->pending.begin()),
                 std::make_move_iterator(m->pending.end()));
    m->pending.clear();
  }
  if (q->is_result && self_ok) {
    ResultNode r;
    r.doc_id = doc_id_;
    r.node_id = std::move(m->node_id);
    r.string_value = std::move(m->value);
    valid.push_back(std::move(r));
  }

  // Single-path result routing (the paper's duplicate-avoidance rule):
  // propagate upward when this instance has its own up-link — i.e. it does
  // not share the parent-step match with the enclosing same-step instance —
  // otherwise sideways into that instance's already-witnessed set. Results
  // stranded by failed predicates move sideways as still-pending: an
  // enclosing same-step instance may yet witness them.
  Instance* lower = stack.empty() ? nullptr : stack.back();
  const bool has_up = lower == nullptr || lower->parent_ref != m->parent_ref;
  if (!valid.empty()) {
    if (has_up) {
      if (m->parent_ref != nullptr) {
        Instance* up = m->parent_ref;
        up->pending.insert(up->pending.end(),
                           std::make_move_iterator(valid.begin()),
                           std::make_move_iterator(valid.end()));
      }
    } else {
      lower->carried.insert(lower->carried.end(),
                            std::make_move_iterator(valid.begin()),
                            std::make_move_iterator(valid.end()));
    }
  }
  if (!preds_ok && !m->pending.empty() && lower != nullptr) {
    lower->pending.insert(lower->pending.end(),
                          std::make_move_iterator(m->pending.begin()),
                          std::make_move_iterator(m->pending.end()));
  }
  free_list_.push_back(m);
}

void QuickXScan::MatchElement(const XmlEvent& ev) {
  const int depth = elem_depth_;
  open_by_depth_.emplace_back();
  // Topological (parent-before-child) order lets self/descendant-or-self
  // edges see instances pushed for this same element.
  for (const auto& node : tree_->nodes()) {
    const QueryNode* q = node.get();
    if (q->parent == nullptr) continue;
    bool test_ok;
    switch (q->test) {
      case NodeTest::kName: test_ok = q->name_id == ev.local; break;
      case NodeTest::kAnyName: test_ok = true; break;
      case NodeTest::kAnyKind: test_ok = true; break;
      default: test_ok = false;
    }
    if (!test_ok || q->axis == Axis::kAttribute) continue;
    Instance* parent_ref = FindAxisCandidate(q, depth, /*instant=*/false);
    if (parent_ref == nullptr) continue;
    Instance* m = Push(q, ev, parent_ref, depth, /*instant=*/false);
    open_by_depth_.back().push_back(m);
  }
}

void QuickXScan::MatchInstant(const XmlEvent& ev) {
  const int depth = elem_depth_;
  for (const auto& node : tree_->nodes()) {
    const QueryNode* q = node.get();
    if (q->parent == nullptr) continue;
    bool test_ok = false;
    switch (ev.type) {
      case XmlEvent::Type::kAttribute:
        test_ok = q->axis == Axis::kAttribute &&
                  (q->test == NodeTest::kAnyName ||
                   (q->test == NodeTest::kName && q->name_id == ev.local));
        break;
      case XmlEvent::Type::kText:
        test_ok = q->axis != Axis::kAttribute &&
                  (q->test == NodeTest::kText || q->test == NodeTest::kAnyKind);
        break;
      case XmlEvent::Type::kComment:
        test_ok = q->axis != Axis::kAttribute &&
                  (q->test == NodeTest::kComment ||
                   q->test == NodeTest::kAnyKind);
        break;
      case XmlEvent::Type::kPi:
        test_ok = q->axis != Axis::kAttribute && q->test == NodeTest::kAnyKind;
        break;
      default:
        break;
    }
    // Context nodes accept any top-level item, including attributes.
    if (!test_ok && q->is_context) test_ok = true;
    if (!test_ok) continue;
    Instance* parent_ref = FindAxisCandidate(q, depth, /*instant=*/true);
    if (parent_ref == nullptr) continue;
    Instance* m = Push(q, ev, parent_ref, depth, /*instant=*/true);
    m->value.assign(ev.value.data(), ev.value.size());
    Pop(m);
  }
  // Leaf text also feeds every open value-collecting instance.
  if (ev.type == XmlEvent::Type::kText) {
    for (Instance* m : collecting_)
      m->value.append(ev.value.data(), ev.value.size());
  }
}

Status QuickXScan::OnEvent(const XmlEvent& ev) {
  stats_.events++;
  switch (ev.type) {
    case XmlEvent::Type::kStartDocument:
    case XmlEvent::Type::kEndDocument:
      return Status::OK();  // the root instance is managed by Run()
    case XmlEvent::Type::kStartElement:
      elem_depth_++;
      MatchElement(ev);
      return Status::OK();
    case XmlEvent::Type::kEndElement: {
      if (open_by_depth_.empty())
        return Status::Corruption("unbalanced events in QuickXScan");
      std::vector<Instance*> open = std::move(open_by_depth_.back());
      open_by_depth_.pop_back();
      for (auto it = open.rbegin(); it != open.rend(); ++it) Pop(*it);
      elem_depth_--;
      return Status::OK();
    }
    case XmlEvent::Type::kNamespace:
      return Status::OK();
    case XmlEvent::Type::kAttribute:
    case XmlEvent::Type::kText:
    case XmlEvent::Type::kComment:
    case XmlEvent::Type::kPi:
      MatchInstant(ev);
      return Status::OK();
  }
  return Status::Corruption("unknown event type");
}

Status QuickXScan::Run(XmlEventSource* source, NodeSequence* results) {
  // Synthesize the root (document) instance so streams without document
  // events (subtree streams) still anchor absolute and relative paths.
  pool_.emplace_back();
  root_instance_ = &pool_.back();
  root_instance_->q = tree_->root();
  root_instance_->depth = 0;
  stacks_[tree_->root()->id].push_back(root_instance_);
  live_instances_++;
  stats_.instances_created++;

  XmlEvent ev;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, source->Next(&ev));
    if (!more) break;
    XDB_RETURN_NOT_OK(OnEvent(ev));
  }
  if (elem_depth_ != 0)
    return Status::Corruption("event stream ended with open elements");

  // Finalize: the root's accumulated results are the answer (the root has
  // no predicates). A root-as-result ('/' alone) is not supported.
  std::vector<ResultNode>& pending = root_instance_->pending;
  std::vector<ResultNode>& carried = root_instance_->carried;
  results->reserve(results->size() + pending.size() + carried.size());
  for (auto& r : pending) results->push_back(std::move(r));
  for (auto& r : carried) results->push_back(std::move(r));
  NormalizeSequence(results);
  stats_.memory_bytes = pool_.size() * sizeof(Instance);
  return Status::OK();
}

Result<NodeSequence> EvaluateXPath(Slice path_expr, const NameDictionary& dict,
                                   XmlEventSource* source, uint64_t doc_id,
                                   bool want_values, QuickXScanStats* stats) {
  XDB_ASSIGN_OR_RETURN(Path path, ParsePath(path_expr));
  XDB_ASSIGN_OR_RETURN(std::unique_ptr<QueryTree> tree,
                       QueryTree::Compile(path, dict, want_values));
  NodeSequence results;
  QuickXScan scan(tree.get(), doc_id);
  XDB_RETURN_NOT_OK(scan.Run(source, &results));
  if (stats != nullptr) *stats = scan.stats();
  return results;
}

}  // namespace xpath
}  // namespace xdb
