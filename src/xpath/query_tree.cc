#include "xpath/query_tree.h"

namespace xdb {
namespace xpath {

bool PredProgram::Eval(uint64_t bits) const {
  if (ops.empty()) return true;
  // Operands always precede their operator, so one forward pass suffices.
  std::vector<char> val(ops.size());
  for (size_t i = 0; i < ops.size(); i++) {
    const Op& op = ops[i];
    switch (op.kind) {
      case OpKind::kTrue: val[i] = 1; break;
      case OpKind::kBit: val[i] = (bits >> op.bit) & 1; break;
      case OpKind::kNot: val[i] = !val[op.lhs]; break;
      case OpKind::kAnd: val[i] = val[op.lhs] && val[op.rhs]; break;
      case OpKind::kOr: val[i] = val[op.lhs] || val[op.rhs]; break;
    }
  }
  return val.back() != 0;
}

QueryNode* QueryTree::NewNode() {
  nodes_.push_back(std::make_unique<QueryNode>());
  nodes_.back()->id = static_cast<int>(nodes_.size()) - 1;
  pending_roots_.emplace_back();
  return nodes_.back().get();
}

Status QueryTree::CompileExpr(const Expr& expr, QueryNode* owner,
                              const NameDictionary& dict, int* op_index) {
  switch (expr.kind) {
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      int l, r;
      XDB_RETURN_NOT_OK(CompileExpr(*expr.lhs, owner, dict, &l));
      XDB_RETURN_NOT_OK(CompileExpr(*expr.rhs, owner, dict, &r));
      PredProgram::Op op;
      op.kind = expr.kind == Expr::Kind::kAnd ? PredProgram::OpKind::kAnd
                                              : PredProgram::OpKind::kOr;
      op.lhs = l;
      op.rhs = r;
      owner->pred.ops.push_back(op);
      *op_index = static_cast<int>(owner->pred.ops.size()) - 1;
      return Status::OK();
    }
    case Expr::Kind::kNot: {
      int l;
      XDB_RETURN_NOT_OK(CompileExpr(*expr.lhs, owner, dict, &l));
      PredProgram::Op op;
      op.kind = PredProgram::OpKind::kNot;
      op.lhs = l;
      owner->pred.ops.push_back(op);
      *op_index = static_cast<int>(owner->pred.ops.size()) - 1;
      return Status::OK();
    }
    case Expr::Kind::kExists:
    case Expr::Kind::kCompare: {
      if (expr.path.absolute)
        return Status::NotSupported("absolute paths inside predicates");
      QueryNode* last = nullptr;
      XDB_RETURN_NOT_OK(CompileSteps(expr.path, owner, /*is_branch=*/true,
                                     /*want_values=*/false, dict, &last));
      if (expr.kind == Expr::Kind::kCompare) {
        last->has_compare = true;
        last->op = expr.op;
        last->literal_is_number = expr.literal_is_number;
        last->number = expr.number;
        last->string = expr.string;
        if (last->test == NodeTest::kName || last->test == NodeTest::kAnyName ||
            last->test == NodeTest::kAnyKind) {
          last->collect_value = true;
        }
      }
      // The branch's first node carries the bit on `owner`; walk up to it.
      QueryNode* first = last;
      while (first->parent != owner) first = first->parent;
      PredProgram::Op op;
      op.kind = PredProgram::OpKind::kBit;
      op.bit = first->branch_bit;
      owner->pred.ops.push_back(op);
      *op_index = static_cast<int>(owner->pred.ops.size()) - 1;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown expression kind");
}

Status QueryTree::CompileSteps(const Path& path, QueryNode* origin,
                               bool is_branch, bool want_values,
                               const NameDictionary& dict,
                               QueryNode** last_out) {
  (void)want_values;
  QueryNode* cur = origin;
  for (const Step& step : path.steps) {
    if (step.axis == Axis::kParent)
      return Status::NotSupported(
          "parent axis must be rewritten before compilation");
    QueryNode* node = NewNode();
    node->axis = step.axis;
    node->test = step.test;
    node->name = step.name;
    if (step.test == NodeTest::kName) node->name_id = dict.Lookup(step.name);
    node->parent = cur;
    cur->children.push_back(node);
    if (is_branch) {
      node->is_branch = true;
      node->branch_bit = cur->branch_count++;
      if (cur->branch_count > 64)
        return Status::NotSupported("more than 64 predicate branches");
      if (cur != origin) {
        // An intermediate branch step requires its continuation to match:
        // record the bit as a conjunct on `cur` (-1 - bit marker).
        pending_roots_[cur->id].push_back(-1 - node->branch_bit);
      }
    }
    for (const auto& pred : step.predicates) {
      int root;
      XDB_RETURN_NOT_OK(CompileExpr(*pred, node, dict, &root));
      pending_roots_[node->id].push_back(root);
    }
    cur = node;
  }
  *last_out = cur;
  return Status::OK();
}

Result<std::unique_ptr<QueryTree>> QueryTree::Compile(
    const Path& path, const NameDictionary& dict, bool want_result_values) {
  auto tree = std::unique_ptr<QueryTree>(new QueryTree());
  QueryNode* root = tree->NewNode();
  root->test = NodeTest::kAnyKind;
  root->axis = Axis::kSelf;

  QueryNode* origin = root;
  tree->absolute_ = path.absolute;
  if (!path.absolute) {
    // Relative path: an implicit context node matching the top-level
    // element(s) of the event stream (the subtree root for subtree streams).
    QueryNode* ctx = tree->NewNode();
    ctx->axis = Axis::kChild;
    ctx->test = NodeTest::kAnyKind;
    ctx->is_context = true;
    ctx->parent = root;
    root->children.push_back(ctx);
    origin = ctx;
  }

  QueryNode* last = nullptr;
  XDB_RETURN_NOT_OK(tree->CompileSteps(path, origin, /*is_branch=*/false,
                                       want_result_values, dict, &last));
  last->is_result = true;
  if (want_result_values &&
      (last->test == NodeTest::kName || last->test == NodeTest::kAnyName ||
       last->test == NodeTest::kAnyKind)) {
    last->collect_value = true;
  }
  tree->result_ = last;

  // Finalize predicate programs: AND together the conjunct roots (step
  // predicates and continuation-bit requirements).
  for (auto& node_ptr : tree->nodes_) {
    QueryNode* node = node_ptr.get();
    std::vector<int> roots;
    for (int r : tree->pending_roots_[node->id]) {
      if (r < 0) {
        PredProgram::Op op;
        op.kind = PredProgram::OpKind::kBit;
        op.bit = -1 - r;
        node->pred.ops.push_back(op);
        roots.push_back(static_cast<int>(node->pred.ops.size()) - 1);
      } else {
        roots.push_back(r);
      }
    }
    if (roots.empty()) {
      node->pred.ops.clear();  // always true
      continue;
    }
    int acc = roots[0];
    for (size_t i = 1; i < roots.size(); i++) {
      PredProgram::Op op;
      op.kind = PredProgram::OpKind::kAnd;
      op.lhs = acc;
      op.rhs = roots[i];
      node->pred.ops.push_back(op);
      acc = static_cast<int>(node->pred.ops.size()) - 1;
    }
    if (acc != static_cast<int>(node->pred.ops.size()) - 1) {
      // Eval uses ops.back() as the root: alias it there.
      PredProgram::Op op;
      op.kind = PredProgram::OpKind::kOr;
      op.lhs = acc;
      op.rhs = acc;
      node->pred.ops.push_back(op);
    }
  }
  tree->pending_roots_.clear();
  return tree;
}

}  // namespace xpath
}  // namespace xdb
