// Tokenizer for the XPath subset. The paper generates its XQuery/XPath
// parser with an LALR(1) generator and a deliberately simple lexical scanner
// (Section 4); this implementation keeps the simple single-pass scanner and
// uses hand-written recursive descent for the (small) grammar.
#ifndef XDB_XPATH_LEXER_H_
#define XDB_XPATH_LEXER_H_

#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace xdb {
namespace xpath {

enum class TokKind : uint8_t {
  kSlash,        // /
  kDoubleSlash,  // //
  kAt,           // @
  kLBracket,     // [
  kRBracket,     // ]
  kLParen,       // (
  kRParen,       // )
  kStar,         // *
  kDot,          // .
  kDotDot,       // ..
  kColonColon,   // ::
  kName,         // NCName (possibly "prefix:local")
  kString,       // quoted literal, decoded
  kNumber,       // numeric literal
  kEq,           // =
  kNe,           // !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kEnd,
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;  // name or string value
  double number = 0;
  size_t offset = 0;
};

/// Tokenizes the whole input up front.
Status Tokenize(Slice input, std::vector<Tok>* out);

}  // namespace xpath
}  // namespace xdb

#endif  // XDB_XPATH_LEXER_H_
