// XPath AST for the QuickXScan subset (Section 4.2): the five forward axes
// child, attribute, descendant, self, descendant-or-self, plus the parent
// axis supported via query rewrite; name/kind tests; and predicates built
// from relative paths, comparisons with literals, and/or/not.
#ifndef XDB_XPATH_AST_H_
#define XDB_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace xdb {
namespace xpath {

enum class Axis : uint8_t {
  kChild,
  kAttribute,
  kDescendant,
  kSelf,
  kDescendantOrSelf,
  kParent,  // accepted by the parser; compiled away by rewrite
};

enum class NodeTest : uint8_t {
  kName,     // element or attribute name test
  kAnyName,  // *
  kText,     // text()
  kComment,  // comment()
  kAnyKind,  // node()
};

enum class CompOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

struct Expr;

struct Step {
  Axis axis = Axis::kChild;
  NodeTest test = NodeTest::kName;
  std::string name;  // for kName
  std::vector<std::unique_ptr<Expr>> predicates;

  Step() = default;
  Step(Step&&) = default;
  Step& operator=(Step&&) = default;
  // Copying deep-clones the predicate expressions.
  Step(const Step& o);
  Step& operator=(const Step& o);
};

struct Path {
  bool absolute = false;  // leading '/'
  std::vector<Step> steps;

  std::string ToString() const;
};

/// Predicate expression.
struct Expr {
  enum class Kind {
    kAnd,
    kOr,
    kNot,
    kExists,   // relative path, truthy if non-empty
    kCompare,  // relative path <op> literal
  };

  Kind kind = Kind::kExists;
  std::unique_ptr<Expr> lhs, rhs;  // kAnd/kOr children; kNot uses lhs
  Path path;                       // kExists / kCompare operand
  CompOp op = CompOp::kEq;         // kCompare
  bool literal_is_number = false;
  double number = 0;
  std::string string;
};

const char* AxisName(Axis axis);
const char* CompOpName(CompOp op);

/// Deep copies (Expr trees own their children through unique_ptr).
std::unique_ptr<Expr> CloneExpr(const Expr& e);
Step CloneStep(const Step& s);
Path ClonePath(const Path& p);

}  // namespace xpath
}  // namespace xdb

#endif  // XDB_XPATH_AST_H_
