// Recursive-descent parser for the XPath subset, plus the parent-axis
// rewrite ("The parent axis can also be supported based on query rewrite",
// Section 4.2, citing Olteanu et al.'s "XPath: Looking Forward").
#ifndef XDB_XPATH_PARSER_H_
#define XDB_XPATH_PARSER_H_

#include "common/slice.h"
#include "common/status.h"
#include "xpath/ast.h"

namespace xdb {
namespace xpath {

/// Parses a path expression, applying the parent-axis rewrite so the result
/// uses only the five forward axes QuickXScan supports.
Result<Path> ParsePath(Slice input);

/// Rewrites "X/.." steps into existence predicates ("a/b/.." -> "a[b]").
/// Fails with kNotSupported for parent steps it cannot eliminate (a leading
/// parent step, or one following a descendant step).
Status RewriteParentAxis(Path* path);

}  // namespace xpath
}  // namespace xdb

#endif  // XDB_XPATH_PARSER_H_
