#include "xpath/lexer.h"

#include <cctype>
#include <cstdlib>

namespace xdb {
namespace xpath {

namespace {
bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}
}  // namespace

Status Tokenize(Slice input, std::vector<Tok>* out) {
  out->clear();
  const char* p = input.data();
  const char* limit = p + input.size();
  const char* begin = p;
  auto fail = [&](const std::string& what) {
    return Status::ParseError("xpath: " + what + " at offset " +
                              std::to_string(p - begin));
  };
  while (p < limit) {
    char c = *p;
    if (std::isspace(static_cast<unsigned char>(c))) {
      p++;
      continue;
    }
    Tok tok;
    tok.offset = static_cast<size_t>(p - begin);
    switch (c) {
      case '/':
        if (p + 1 < limit && p[1] == '/') {
          tok.kind = TokKind::kDoubleSlash;
          p += 2;
        } else {
          tok.kind = TokKind::kSlash;
          p++;
        }
        break;
      case '@': tok.kind = TokKind::kAt; p++; break;
      case '[': tok.kind = TokKind::kLBracket; p++; break;
      case ']': tok.kind = TokKind::kRBracket; p++; break;
      case '(': tok.kind = TokKind::kLParen; p++; break;
      case ')': tok.kind = TokKind::kRParen; p++; break;
      case '*': tok.kind = TokKind::kStar; p++; break;
      case '=': tok.kind = TokKind::kEq; p++; break;
      case '!':
        if (p + 1 < limit && p[1] == '=') {
          tok.kind = TokKind::kNe;
          p += 2;
        } else {
          return fail("stray '!'");
        }
        break;
      case '<':
        if (p + 1 < limit && p[1] == '=') {
          tok.kind = TokKind::kLe;
          p += 2;
        } else {
          tok.kind = TokKind::kLt;
          p++;
        }
        break;
      case '>':
        if (p + 1 < limit && p[1] == '=') {
          tok.kind = TokKind::kGe;
          p += 2;
        } else {
          tok.kind = TokKind::kGt;
          p++;
        }
        break;
      case ':':
        if (p + 1 < limit && p[1] == ':') {
          tok.kind = TokKind::kColonColon;
          p += 2;
        } else {
          return fail("stray ':'");
        }
        break;
      case '.':
        if (p + 1 < limit && p[1] == '.') {
          tok.kind = TokKind::kDotDot;
          p += 2;
        } else if (p + 1 < limit && std::isdigit(static_cast<unsigned char>(p[1]))) {
          // .5 style number
          char* endp = nullptr;
          tok.kind = TokKind::kNumber;
          tok.number = std::strtod(p, &endp);
          p = endp;
        } else {
          tok.kind = TokKind::kDot;
          p++;
        }
        break;
      case '"':
      case '\'': {
        char quote = c;
        p++;
        const char* start = p;
        while (p < limit && *p != quote) p++;
        if (p >= limit) return fail("unterminated string literal");
        tok.kind = TokKind::kString;
        tok.text.assign(start, p - start);
        p++;
        break;
      }
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          char* endp = nullptr;
          tok.kind = TokKind::kNumber;
          tok.number = std::strtod(p, &endp);
          if (endp == p) return fail("bad number");
          p = endp;
        } else if (IsNameStart(c)) {
          const char* start = p;
          while (p < limit && IsNameChar(*p)) p++;
          // Allow one prefix colon (but not '::').
          if (p < limit && *p == ':' && p + 1 < limit && p[1] != ':' &&
              IsNameStart(p[1])) {
            p++;
            while (p < limit && IsNameChar(*p)) p++;
          }
          tok.kind = TokKind::kName;
          tok.text.assign(start, p - start);
        } else {
          return fail(std::string("unexpected character '") + c + "'");
        }
    }
    out->push_back(std::move(tok));
  }
  Tok end;
  end.kind = TokKind::kEnd;
  end.offset = input.size();
  out->push_back(end);
  return Status::OK();
}

}  // namespace xpath
}  // namespace xdb
