#include "xpath/path_containment.h"

#include <vector>

namespace xdb {
namespace xpath {

namespace {

struct LinStep {
  bool descendant;  // edge from previous step (or root) crosses >= 1 level
  bool attribute;
  bool any_name;
  std::string name;
  bool any_kind;  // node() placeholder steps
};

// Flattens a path into linear steps; returns false if not linear.
bool Linearize(const Path& path, std::vector<LinStep>* out) {
  if (!path.absolute) return false;
  bool pending_descendant = false;
  for (const Step& s : path.steps) {
    LinStep ls;
    ls.descendant = pending_descendant;
    pending_descendant = false;
    ls.attribute = false;
    ls.any_name = false;
    ls.any_kind = false;
    switch (s.axis) {
      case Axis::kChild:
        break;
      case Axis::kDescendant:
        ls.descendant = true;
        break;
      case Axis::kDescendantOrSelf:
        // A node() descendant-or-self step is a pure gap marker.
        if (s.test == NodeTest::kAnyKind && s.predicates.empty()) {
          pending_descendant = true;
          continue;
        }
        return false;
      case Axis::kAttribute:
        ls.attribute = true;
        break;
      case Axis::kSelf:
        if (s.test == NodeTest::kAnyKind && s.predicates.empty()) continue;
        return false;
      default:
        return false;
    }
    switch (s.test) {
      case NodeTest::kName:
        ls.name = s.name;
        break;
      case NodeTest::kAnyName:
        ls.any_name = true;
        break;
      case NodeTest::kAnyKind:
        ls.any_kind = true;
        break;
      default:
        return false;  // text()/comment() are not value-indexable
    }
    out->push_back(std::move(ls));
  }
  return !out->empty();
}

bool TestSubsumes(const LinStep& index_step, const LinStep& query_step) {
  if (index_step.attribute != query_step.attribute) return false;
  if (index_step.any_kind || index_step.any_name)
    return true;  // index wildcard covers anything of the right class
  if (query_step.any_name || query_step.any_kind)
    return false;  // a concrete index name cannot cover a query wildcard
  return index_step.name == query_step.name;
}

}  // namespace

bool PathContains(const Path& index, const Path& query) {
  std::vector<LinStep> I, Q;
  if (!Linearize(index, &I) || !Linearize(query, &Q)) return false;
  const size_t n = I.size(), m = Q.size();
  if (n > m) return false;

  // M[i][j]: I[0..i] embeds into Q with I[i] mapped to Q[j].
  std::vector<std::vector<char>> M(n, std::vector<char>(m, 0));
  for (size_t j = 0; j < m; j++) {
    if (!TestSubsumes(I[0], Q[j])) continue;
    if (I[0].descendant) {
      M[0][j] = 1;  // gap from the root to any depth
    } else {
      M[0][j] = (j == 0 && !Q[0].descendant) ? 1 : 0;
    }
  }
  for (size_t i = 1; i < n; i++) {
    for (size_t j = i; j < m; j++) {
      if (!TestSubsumes(I[i], Q[j])) continue;
      if (I[i].descendant) {
        for (size_t j2 = i - 1; j2 < j; j2++) {
          if (M[i - 1][j2]) {
            M[i][j] = 1;
            break;
          }
        }
      } else {
        // Child edge: must map to a child edge between adjacent steps.
        if (!Q[j].descendant && M[i - 1][j - 1]) M[i][j] = 1;
      }
    }
  }
  return M[n - 1][m - 1] != 0;
}

IndexMatch ClassifyIndexMatch(const Path& index, const Path& query) {
  if (!PathContains(index, query)) return IndexMatch::kNone;
  // Equivalence via mutual containment (exact for these fragments when the
  // wider path is *-free; conservative otherwise).
  if (PathContains(query, index)) return IndexMatch::kExact;
  return IndexMatch::kContains;
}

bool IsIndexablePath(const Path& path) {
  std::vector<LinStep> steps;
  if (!Linearize(path, &steps)) return false;
  for (const Step& s : path.steps) {
    if (!s.predicates.empty()) return false;
  }
  for (size_t i = 0; i < steps.size(); i++) {
    if (steps[i].attribute && i + 1 != steps.size()) return false;
    if (steps[i].any_kind && i + 1 == steps.size()) return false;
  }
  return true;
}

}  // namespace xpath
}  // namespace xdb
