// DomEvaluator: the DOM-navigation baseline of Section 4.2 ("orders of
// magnitude better than some DOM-based algorithm"), and the reference
// implementation QuickXScan is differentially tested against. Builds on the
// pointer-based DomTree and evaluates the full AST recursively, including
// the parent axis natively (no rewrite needed here).
#ifndef XDB_XPATH_DOM_EVALUATOR_H_
#define XDB_XPATH_DOM_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "xdm/dom_tree.h"
#include "xdm/item.h"
#include "xpath/ast.h"

namespace xdb {
namespace xpath {

class DomEvaluator {
 public:
  DomEvaluator(const DomTree* tree, const NameDictionary* dict,
               uint64_t doc_id)
      : tree_(tree), dict_(dict), doc_id_(doc_id) {}

  /// Evaluates a path over the whole tree. Relative paths take the
  /// document's top-level items as context (matching QuickXScan semantics).
  Result<NodeSequence> Evaluate(const Path& path, bool want_values) const;

 private:
  void EvalSteps(const Path& path, size_t step_idx,
                 const std::vector<const DomNode*>& context,
                 std::vector<const DomNode*>* out) const;
  void ApplyStep(const Step& step, const DomNode* ctx,
                 std::vector<const DomNode*>* out) const;
  bool TestMatches(const Step& step, const DomNode* n) const;
  bool EvalExpr(const Expr& expr, const DomNode* ctx) const;

  const DomTree* tree_;
  const NameDictionary* dict_;
  uint64_t doc_id_;
};

}  // namespace xpath
}  // namespace xdb

#endif  // XDB_XPATH_DOM_EVALUATOR_H_
