// QuickXScan: the paper's optimal streaming XPath algorithm (Section 4.2).
//
// One pass over an XmlEvent stream evaluates a query tree using the
// principles of attribute grammars: inherited attributes decide matching
// during the top-down traversal, synthesized attributes (candidate result
// sequences, Boolean predicate bits, collected string values) are computed
// bottom-up as matching instances pop off per-query-node stacks. Two
// transitivity properties keep state small: only the stack top must be
// checked to match a node, and attribute values propagate upward (via the
// instance's upward link) or sideways (to the enclosing instance of the same
// query node) so each value travels exactly one path — no duplicates.
//
// Worst-case live state is O(|Q| * r) matching instances, where r is the
// document's recursion degree; time is O(|Q| * r * |D|).
#ifndef XDB_XPATH_QUICKXSCAN_H_
#define XDB_XPATH_QUICKXSCAN_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/virtual_sax.h"
#include "xdm/item.h"
#include "xpath/query_tree.h"

namespace xdb {
namespace xpath {

struct QuickXScanStats {
  uint64_t events = 0;
  uint64_t instances_created = 0;
  uint64_t peak_live_instances = 0;  // the O(|Q|*r) bound
  size_t memory_bytes = 0;           // instance pool footprint
};

/// Re-entrancy: a scan holds all of its mutable state (instance pool,
/// stacks, depth bookkeeping, stats) in the QuickXScan object itself and
/// only *reads* the compiled QueryTree, so any number of scans — one per
/// document chunk in the parallel executor — may share one tree from
/// different threads concurrently. The tree must not be recompiled or
/// mutated while scans are running.
class QuickXScan {
 public:
  /// `tree` must outlive the scan and stay immutable while it runs; many
  /// concurrent scans may share it (see the re-entrancy note above).
  QuickXScan(const QueryTree* tree, uint64_t doc_id);

  /// Consumes the whole event stream and appends matched result nodes (in
  /// document order, duplicate-free) to `results`.
  Status Run(XmlEventSource* source, NodeSequence* results);

  const QuickXScanStats& stats() const { return stats_; }

 private:
  struct Instance {
    const QueryNode* q = nullptr;
    int depth = 0;  // element depth of the matched node (owner depth for
                    // instant attribute/text/comment instances)
    bool instant = false;
    Instance* parent_ref = nullptr;
    uint64_t bits = 0;  // branch-satisfaction bits
    bool collecting = false;
    std::string value;   // collected/leaf string value
    std::string node_id; // recorded for result-node instances
    std::vector<ResultNode> pending;  // validated below, await own preds
    std::vector<ResultNode> carried;  // validated at this level (sideways)
  };

  Status OnEvent(const XmlEvent& ev);
  void MatchElement(const XmlEvent& ev);
  void MatchInstant(const XmlEvent& ev);
  Instance* FindAxisCandidate(const QueryNode* q, int depth, bool instant);
  Instance* Push(const QueryNode* q, const XmlEvent& ev, Instance* parent_ref,
                 int depth, bool instant);
  void Pop(Instance* m);
  bool CompareOk(const QueryNode* q, const std::string& value) const;

  const QueryTree* tree_;
  uint64_t doc_id_;
  std::deque<Instance> pool_;
  std::vector<Instance*> free_list_;  // recycled popped instances
  std::vector<std::vector<Instance*>> stacks_;  // per query node
  std::vector<std::vector<Instance*>> open_by_depth_;
  std::vector<Instance*> collecting_;
  Instance* root_instance_ = nullptr;
  int elem_depth_ = 0;
  uint64_t live_instances_ = 0;
  QuickXScanStats stats_;
};

/// Convenience: parse + compile + scan one event stream.
Result<NodeSequence> EvaluateXPath(Slice path_expr, const NameDictionary& dict,
                                   XmlEventSource* source, uint64_t doc_id,
                                   bool want_values,
                                   QuickXScanStats* stats = nullptr);

}  // namespace xpath
}  // namespace xdb

#endif  // XDB_XPATH_QUICKXSCAN_H_
