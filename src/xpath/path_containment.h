// Path containment for index matching (Section 4.3).
//
// "Since we do not keep complete path information in an XPath value index,
// when the XPath expression of the index contains a query XPath expression
// but is not equivalent to it, we use the index for filtering, and
// re-evaluation of the query XPath expression on the document data is
// necessary."
//
// Containment of linear {/, //, name, *} paths is tested by homomorphism
// (sound always; complete for *-free index paths), which is the PTIME
// fragment — exactly what simple predicate-free index paths are.
#ifndef XDB_XPATH_PATH_CONTAINMENT_H_
#define XDB_XPATH_PATH_CONTAINMENT_H_

#include "common/status.h"
#include "xpath/ast.h"

namespace xdb {
namespace xpath {

enum class IndexMatch {
  kNone,      // the index cannot serve this path
  kExact,     // index path selects exactly the query path's nodes
  kContains,  // index path selects a superset: usable for filtering
};

/// True iff every node selected by `query` (in any document) is selected by
/// `index` — i.e. a homomorphism from the index path into the query path
/// exists. Predicates on query steps are ignored (they only narrow the
/// selection, so containment remains sound).
bool PathContains(const Path& index, const Path& query);

/// Classifies how a (predicate-free, linear) index path can serve a query
/// path.
IndexMatch ClassifyIndexMatch(const Path& index, const Path& query);

/// True if the path is linear (no predicates) and uses only child,
/// descendant(-or-self) and a final attribute step with name/* tests —
/// the legal shape for a value index definition.
bool IsIndexablePath(const Path& path);

}  // namespace xpath
}  // namespace xdb

#endif  // XDB_XPATH_PATH_CONTAINMENT_H_
