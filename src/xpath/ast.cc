#include "xpath/ast.h"

namespace xdb {
namespace xpath {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild: return "child";
    case Axis::kAttribute: return "attribute";
    case Axis::kDescendant: return "descendant";
    case Axis::kSelf: return "self";
    case Axis::kDescendantOrSelf: return "descendant-or-self";
    case Axis::kParent: return "parent";
  }
  return "unknown";
}

const char* CompOpName(CompOp op) {
  switch (op) {
    case CompOp::kEq: return "=";
    case CompOp::kNe: return "!=";
    case CompOp::kLt: return "<";
    case CompOp::kLe: return "<=";
    case CompOp::kGt: return ">";
    case CompOp::kGe: return ">=";
  }
  return "?";
}

Step::Step(const Step& o) { *this = o; }

Step& Step::operator=(const Step& o) {
  if (this == &o) return *this;
  axis = o.axis;
  test = o.test;
  name = o.name;
  predicates.clear();
  for (const auto& p : o.predicates) predicates.push_back(CloneExpr(*p));
  return *this;
}

std::unique_ptr<Expr> CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  if (e.lhs != nullptr) out->lhs = CloneExpr(*e.lhs);
  if (e.rhs != nullptr) out->rhs = CloneExpr(*e.rhs);
  out->path = ClonePath(e.path);
  out->op = e.op;
  out->literal_is_number = e.literal_is_number;
  out->number = e.number;
  out->string = e.string;
  return out;
}

Step CloneStep(const Step& s) {
  Step out;
  out.axis = s.axis;
  out.test = s.test;
  out.name = s.name;
  for (const auto& p : s.predicates) out.predicates.push_back(CloneExpr(*p));
  return out;
}

Path ClonePath(const Path& p) {
  Path out;
  out.absolute = p.absolute;
  for (const auto& s : p.steps) out.steps.push_back(CloneStep(s));
  return out;
}

namespace {
void AppendExpr(const Expr& e, std::string* out);

void AppendStep(const Step& s, std::string* out) {
  switch (s.axis) {
    case Axis::kChild: break;
    case Axis::kAttribute: out->push_back('@'); break;
    case Axis::kDescendant: out->append("descendant::"); break;
    case Axis::kSelf: out->append("self::"); break;
    case Axis::kDescendantOrSelf: out->append("descendant-or-self::"); break;
    case Axis::kParent: out->append("parent::"); break;
  }
  switch (s.test) {
    case NodeTest::kName: out->append(s.name); break;
    case NodeTest::kAnyName: out->push_back('*'); break;
    case NodeTest::kText: out->append("text()"); break;
    case NodeTest::kComment: out->append("comment()"); break;
    case NodeTest::kAnyKind: out->append("node()"); break;
  }
  for (const auto& p : s.predicates) {
    out->push_back('[');
    AppendExpr(*p, out);
    out->push_back(']');
  }
}

void AppendExpr(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kAnd:
      AppendExpr(*e.lhs, out);
      out->append(" and ");
      AppendExpr(*e.rhs, out);
      break;
    case Expr::Kind::kOr:
      AppendExpr(*e.lhs, out);
      out->append(" or ");
      AppendExpr(*e.rhs, out);
      break;
    case Expr::Kind::kNot:
      out->append("not(");
      AppendExpr(*e.lhs, out);
      out->push_back(')');
      break;
    case Expr::Kind::kExists:
      out->append(e.path.ToString());
      break;
    case Expr::Kind::kCompare:
      out->append(e.path.ToString());
      out->push_back(' ');
      out->append(CompOpName(e.op));
      out->push_back(' ');
      if (e.literal_is_number) {
        out->append(std::to_string(e.number));
      } else {
        out->push_back('"');
        out->append(e.string);
        out->push_back('"');
      }
      break;
  }
}
}  // namespace

std::string Path::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); i++) {
    if (i > 0 || absolute) {
      if (steps[i].axis == Axis::kDescendant ||
          steps[i].axis == Axis::kDescendantOrSelf) {
        out.append("//");
        Step plain = Step{};
        plain.test = steps[i].test;
        plain.name = steps[i].name;
        // Render as abbreviated form; predicates appended below.
        out.append(plain.test == NodeTest::kName ? steps[i].name
                   : plain.test == NodeTest::kAnyName ? "*"
                   : plain.test == NodeTest::kText    ? "text()"
                   : plain.test == NodeTest::kComment ? "comment()"
                                                      : "node()");
        for (const auto& p : steps[i].predicates) {
          out.push_back('[');
          AppendExpr(*p, &out);
          out.push_back(']');
        }
        continue;
      }
      out.push_back('/');
    }
    AppendStep(steps[i], &out);
  }
  if (out.empty()) out.push_back('.');
  return out;
}

}  // namespace xpath
}  // namespace xdb
