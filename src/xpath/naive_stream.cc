#include "xpath/naive_stream.h"

#include <algorithm>

namespace xdb {
namespace xpath {

NaiveStreamEvaluator::NaiveStreamEvaluator(const Path* path,
                                           const NameDictionary* dict,
                                           uint64_t doc_id)
    : path_(path), dict_(dict), doc_id_(doc_id) {}

Status NaiveStreamEvaluator::Compile() {
  if (!path_->absolute)
    return Status::NotSupported("naive evaluator requires absolute paths");
  for (const Step& s : path_->steps) {
    if (!s.predicates.empty())
      return Status::NotSupported("naive evaluator does not take predicates");
    CompiledStep cs;
    cs.axis = s.axis;
    switch (s.axis) {
      case Axis::kChild:
      case Axis::kDescendant:
      case Axis::kAttribute:
        break;
      default:
        return Status::NotSupported("axis outside the linear subset");
    }
    switch (s.test) {
      case NodeTest::kName:
        cs.any_name = false;
        cs.name_id = dict_->Lookup(s.name);
        break;
      case NodeTest::kAnyName:
        cs.any_name = true;
        cs.name_id = 0;
        break;
      default:
        return Status::NotSupported("kind tests outside the linear subset");
    }
    if (cs.axis == Axis::kAttribute && &s != &path_->steps.back())
      return Status::NotSupported("attribute step must be last");
    steps_.push_back(cs);
  }
  return Status::OK();
}

Status NaiveStreamEvaluator::Run(XmlEventSource* source,
                                 NodeSequence* results) {
  XDB_RETURN_NOT_OK(Compile());
  configs_.push_back(Config{0, 0});  // root context
  stats_.configs_created = 1;
  stats_.peak_live_configs = 1;

  XmlEvent ev;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, source->Next(&ev));
    if (!more) break;
    switch (ev.type) {
      case XmlEvent::Type::kStartElement: {
        depth_++;
        size_t live_before = configs_.size();
        frame_marks_.push_back(live_before);
        // Every live configuration is tested against this element — the
        // per-path bookkeeping QuickXScan's stack-top rule avoids.
        for (size_t i = 0; i < live_before; i++) {
          const Config& c = configs_[i];
          if (c.next_step >= steps_.size()) continue;
          const CompiledStep& s = steps_[c.next_step];
          stats_.match_tests++;
          if (s.axis == Axis::kAttribute) continue;
          if (s.axis == Axis::kChild && c.bind_depth != depth_ - 1) continue;
          if (!s.any_name && s.name_id != ev.local) continue;
          Config spawned{c.next_step + 1, depth_};
          if (spawned.next_step == steps_.size()) {
            ResultNode r;
            r.doc_id = doc_id_;
            r.node_id.assign(ev.node_id.data(), ev.node_id.size());
            results->push_back(std::move(r));
          }
          // Keep the configuration live inside this element even when
          // complete (descendant results may repeat deeper for * paths).
          configs_.push_back(spawned);
          stats_.configs_created++;
        }
        stats_.peak_live_configs =
            std::max<uint64_t>(stats_.peak_live_configs, configs_.size());
        break;
      }
      case XmlEvent::Type::kEndElement:
        configs_.resize(frame_marks_.back());
        frame_marks_.pop_back();
        depth_--;
        break;
      case XmlEvent::Type::kAttribute: {
        for (size_t i = 0, n = configs_.size(); i < n; i++) {
          const Config& c = configs_[i];
          if (c.next_step + 1 != steps_.size()) continue;
          const CompiledStep& s = steps_[c.next_step];
          stats_.match_tests++;
          if (s.axis != Axis::kAttribute) continue;
          if (c.bind_depth != depth_) continue;  // owner must be last bound
          if (!s.any_name && s.name_id != ev.local) continue;
          ResultNode r;
          r.doc_id = doc_id_;
          r.node_id.assign(ev.node_id.data(), ev.node_id.size());
          results->push_back(std::move(r));
        }
        break;
      }
      default:
        break;
    }
  }
  NormalizeSequence(results);
  return Status::OK();
}

}  // namespace xpath
}  // namespace xdb
