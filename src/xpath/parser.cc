#include "xpath/parser.h"

#include <memory>

#include "xpath/lexer.h"

namespace xdb {
namespace xpath {

namespace {

class PathParser {
 public:
  explicit PathParser(const std::vector<Tok>& toks) : toks_(toks) {}

  Result<Path> ParseFullPath();

 private:
  const Tok& Cur() const { return toks_[pos_]; }
  const Tok& Advance() { return toks_[pos_++]; }
  bool Check(TokKind k) const { return Cur().kind == k; }
  bool Accept(TokKind k) {
    if (Check(k)) {
      pos_++;
      return true;
    }
    return false;
  }
  Status Fail(const std::string& what) {
    return Status::ParseError("xpath: " + what + " at offset " +
                              std::to_string(Cur().offset));
  }

  /// Parses a path; `allow_absolute` permits a leading '/'.
  Status ParsePathInto(Path* path, bool allow_absolute);
  Status ParseStepInto(Path* path, bool after_double_slash);
  Result<std::unique_ptr<Expr>> ParseOrExpr();
  Result<std::unique_ptr<Expr>> ParseAndExpr();
  Result<std::unique_ptr<Expr>> ParseUnaryExpr();
  Result<std::unique_ptr<Expr>> ParsePrimaryExpr();

  const std::vector<Tok>& toks_;
  size_t pos_ = 0;
};

Status PathParser::ParseStepInto(Path* path, bool after_double_slash) {
  Step step;
  bool explicit_axis = false;

  if (Accept(TokKind::kDot)) {
    step.axis = Axis::kSelf;
    step.test = NodeTest::kAnyKind;
    path->steps.push_back(std::move(step));
    return Status::OK();
  }
  if (Accept(TokKind::kDotDot)) {
    step.axis = Axis::kParent;
    step.test = NodeTest::kAnyKind;
    path->steps.push_back(std::move(step));
    return Status::OK();
  }

  if (Accept(TokKind::kAt)) {
    step.axis = Axis::kAttribute;
    explicit_axis = true;
    if (after_double_slash) {
      // //@x  ==  descendant-or-self::node()/attribute::x
      Step dos;
      dos.axis = Axis::kDescendantOrSelf;
      dos.test = NodeTest::kAnyKind;
      path->steps.push_back(std::move(dos));
      after_double_slash = false;
    }
  } else if (Check(TokKind::kName) && pos_ + 1 < toks_.size() &&
             toks_[pos_ + 1].kind == TokKind::kColonColon) {
    const std::string& axis_name = Cur().text;
    if (axis_name == "child") step.axis = Axis::kChild;
    else if (axis_name == "attribute") step.axis = Axis::kAttribute;
    else if (axis_name == "descendant") step.axis = Axis::kDescendant;
    else if (axis_name == "self") step.axis = Axis::kSelf;
    else if (axis_name == "descendant-or-self")
      step.axis = Axis::kDescendantOrSelf;
    else if (axis_name == "parent") step.axis = Axis::kParent;
    else
      return Fail("unsupported axis '" + axis_name + "'");
    explicit_axis = true;
    pos_ += 2;
    if (after_double_slash) {
      Step dos;
      dos.axis = Axis::kDescendantOrSelf;
      dos.test = NodeTest::kAnyKind;
      path->steps.push_back(std::move(dos));
      after_double_slash = false;
    }
  }

  if (after_double_slash && !explicit_axis) {
    // //x  ==  descendant::x for plain tests.
    step.axis = Axis::kDescendant;
  }

  // Node test.
  if (Accept(TokKind::kStar)) {
    step.test = NodeTest::kAnyName;
  } else if (Check(TokKind::kName)) {
    std::string name = Advance().text;
    if (Check(TokKind::kLParen)) {
      if (name == "text") {
        step.test = NodeTest::kText;
      } else if (name == "comment") {
        step.test = NodeTest::kComment;
      } else if (name == "node") {
        step.test = NodeTest::kAnyKind;
      } else {
        return Fail("unsupported kind test '" + name + "()'");
      }
      Advance();
      if (!Accept(TokKind::kRParen)) return Fail("expected ')'");
    } else {
      step.test = NodeTest::kName;
      // Queries match on local names; strip any prefix.
      size_t colon = name.find(':');
      step.name = colon == std::string::npos ? name : name.substr(colon + 1);
    }
  } else {
    return Fail("expected a node test");
  }

  while (Accept(TokKind::kLBracket)) {
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> pred, ParseOrExpr());
    if (!Accept(TokKind::kRBracket)) return Fail("expected ']'");
    step.predicates.push_back(std::move(pred));
  }
  path->steps.push_back(std::move(step));
  return Status::OK();
}

Status PathParser::ParsePathInto(Path* path, bool allow_absolute) {
  bool first_dslash = false;
  if (allow_absolute) {
    if (Accept(TokKind::kDoubleSlash)) {
      path->absolute = true;
      first_dslash = true;
    } else if (Accept(TokKind::kSlash)) {
      path->absolute = true;
    }
  }
  XDB_RETURN_NOT_OK(ParseStepInto(path, first_dslash));
  for (;;) {
    if (Accept(TokKind::kDoubleSlash)) {
      XDB_RETURN_NOT_OK(ParseStepInto(path, true));
    } else if (Accept(TokKind::kSlash)) {
      XDB_RETURN_NOT_OK(ParseStepInto(path, false));
    } else {
      return Status::OK();
    }
  }
}

Result<std::unique_ptr<Expr>> PathParser::ParseOrExpr() {
  XDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAndExpr());
  while (Check(TokKind::kName) && Cur().text == "or") {
    Advance();
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAndExpr());
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kOr;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> PathParser::ParseAndExpr() {
  XDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnaryExpr());
  while (Check(TokKind::kName) && Cur().text == "and") {
    Advance();
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnaryExpr());
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kAnd;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  return lhs;
}

Result<std::unique_ptr<Expr>> PathParser::ParseUnaryExpr() {
  if (Check(TokKind::kName) && Cur().text == "not" &&
      pos_ + 1 < toks_.size() && toks_[pos_ + 1].kind == TokKind::kLParen) {
    pos_ += 2;
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOrExpr());
    if (!Accept(TokKind::kRParen)) return Fail("expected ')' after not(...)");
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kNot;
    node->lhs = std::move(inner);
    return node;
  }
  if (Accept(TokKind::kLParen)) {
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOrExpr());
    if (!Accept(TokKind::kRParen)) return Fail("expected ')'");
    return inner;
  }
  return ParsePrimaryExpr();
}

Result<std::unique_ptr<Expr>> PathParser::ParsePrimaryExpr() {
  auto node = std::make_unique<Expr>();
  // Reversed comparison: literal <op> path.
  if (Check(TokKind::kNumber) || Check(TokKind::kString)) {
    Tok lit = Advance();
    CompOp op;
    switch (Cur().kind) {
      case TokKind::kEq: op = CompOp::kEq; break;
      case TokKind::kNe: op = CompOp::kNe; break;
      case TokKind::kLt: op = CompOp::kGt; break;  // mirror
      case TokKind::kLe: op = CompOp::kGe; break;
      case TokKind::kGt: op = CompOp::kLt; break;
      case TokKind::kGe: op = CompOp::kLe; break;
      default:
        return Fail("literal must be compared with a path");
    }
    Advance();
    node->kind = Expr::Kind::kCompare;
    node->op = op;
    if (lit.kind == TokKind::kNumber) {
      node->literal_is_number = true;
      node->number = lit.number;
    } else {
      node->string = lit.text;
    }
    XDB_RETURN_NOT_OK(ParsePathInto(&node->path, /*allow_absolute=*/false));
    return node;
  }

  XDB_RETURN_NOT_OK(ParsePathInto(&node->path, /*allow_absolute=*/false));
  switch (Cur().kind) {
    case TokKind::kEq: node->op = CompOp::kEq; break;
    case TokKind::kNe: node->op = CompOp::kNe; break;
    case TokKind::kLt: node->op = CompOp::kLt; break;
    case TokKind::kLe: node->op = CompOp::kLe; break;
    case TokKind::kGt: node->op = CompOp::kGt; break;
    case TokKind::kGe: node->op = CompOp::kGe; break;
    default:
      node->kind = Expr::Kind::kExists;
      return node;
  }
  Advance();
  node->kind = Expr::Kind::kCompare;
  if (Check(TokKind::kNumber)) {
    node->literal_is_number = true;
    node->number = Advance().number;
  } else if (Check(TokKind::kString)) {
    node->string = Advance().text;
  } else {
    return Fail("expected a literal after comparison operator");
  }
  return node;
}

Result<Path> PathParser::ParseFullPath() {
  Path path;
  XDB_RETURN_NOT_OK(ParsePathInto(&path, /*allow_absolute=*/true));
  if (!Check(TokKind::kEnd)) return Fail("trailing input");
  XDB_RETURN_NOT_OK(RewriteParentAxis(&path));
  return path;
}

Status RewriteExprPaths(Expr* e) {
  switch (e->kind) {
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      XDB_RETURN_NOT_OK(RewriteExprPaths(e->lhs.get()));
      return RewriteExprPaths(e->rhs.get());
    case Expr::Kind::kNot:
      return RewriteExprPaths(e->lhs.get());
    case Expr::Kind::kExists:
    case Expr::Kind::kCompare:
      return RewriteParentAxis(&e->path);
  }
  return Status::OK();
}

}  // namespace

Status RewriteParentAxis(Path* path) {
  for (auto& step : path->steps) {
    for (auto& pred : step.predicates)
      XDB_RETURN_NOT_OK(RewriteExprPaths(pred.get()));
  }
  for (size_t i = 0; i < path->steps.size(); i++) {
    if (path->steps[i].axis != Axis::kParent) continue;
    if (path->steps[i].test != NodeTest::kAnyKind)
      return Status::NotSupported("parent axis with a name test");
    if (!path->steps[i].predicates.empty())
      return Status::NotSupported("predicates on a parent step");
    if (i == 0)
      return Status::NotSupported("leading parent step");
    Step& prev = path->steps[i - 1];
    if (prev.axis != Axis::kChild && prev.axis != Axis::kAttribute)
      return Status::NotSupported(
          "parent step after a non-child step cannot be rewritten");
    // ".../X/.." == "...[X]": fold X into an existence predicate on the
    // step before it.
    auto pred = std::make_unique<Expr>();
    pred->kind = Expr::Kind::kExists;
    pred->path.steps.push_back(std::move(prev));
    if (i >= 2) {
      path->steps[i - 2].predicates.push_back(std::move(pred));
      path->steps.erase(path->steps.begin() + i - 1,
                        path->steps.begin() + i + 1);
      i -= 2;
    } else {
      // "/X/.." selects the document node: representable as an empty
      // absolute path only; not supported.
      return Status::NotSupported("parent of a top-level step");
    }
  }
  return Status::OK();
}

Result<Path> ParsePath(Slice input) {
  std::vector<Tok> toks;
  XDB_RETURN_NOT_OK(Tokenize(input, &toks));
  PathParser parser(toks);
  return parser.ParseFullPath();
}

}  // namespace xpath
}  // namespace xdb
