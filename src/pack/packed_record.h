// Packed XML records: the storage format of Figure 3.
//
// Each record stores a sequence of subtrees that share a common parent (the
// *context node*). Structure nesting represents parent-child relationships;
// each non-leaf node carries its child count and subtree byte length so
// traversal can do first-child / next-sibling / skip-subtree without parsing
// descendants. Subtrees evicted to other records are represented by proxy
// nodes; no physical links exist between records — linkage is logical, via
// prefix-encoded node IDs resolved through the NodeID index.
//
// Record layout:
//   header:
//     [context node absolute ID, length-prefixed]
//     [root path: varint count, then per level (local varint, ns varint)]
//     [in-scope namespaces: varint count, then (prefix varint, uri varint)]
//     [subtree count at top level: varint]
//   entries (pre-order, recursive):
//     [kind u8][relative node ID (self-delimiting: odd* even)] then
//       element:   [local][ns][prefix][nchildren varint][children_len varint]
//                  [children entries...]
//       attribute: [local][ns][prefix][type u8][value lp]
//       text:      [type u8][value lp]
//       namespace: [prefix][uri]
//       comment:   [value lp]
//       pi:        [target][value lp]
//       proxy:     (nothing; the relative ID names the evicted subtree root)
#ifndef XDB_PACK_PACKED_RECORD_H_
#define XDB_PACK_PACKED_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "xml/name_dictionary.h"
#include "xml/node_kind.h"
#include "xml/token_stream.h"

namespace xdb {

struct RecordHeader {
  Slice context_node_id;  // absolute; empty = document node
  struct PathStep {
    NameId local, ns_uri;
  };
  std::vector<PathStep> root_path;  // element names root -> context node
  std::vector<std::pair<NameId, NameId>> namespaces;  // (prefix, uri)
  uint32_t subtree_count = 0;
};

/// Parses the record header; on success *payload points at the entry area.
Status ParseRecordHeader(Slice record, RecordHeader* header, Slice* payload);

/// Serializes a header.
void AppendRecordHeader(const RecordHeader& header, std::string* dst);

/// One node entry as seen by the in-record walker.
struct PackedEntry {
  NodeKind kind = NodeKind::kElement;
  Slice rel_id;
  std::string abs_id;  // context id + rel ids along the in-record path
  NameId local = kEmptyNameId, ns_uri = kEmptyNameId, prefix = kEmptyNameId;
  TypeAnno type = TypeAnno::kUntyped;
  Slice value;
  uint32_t child_count = 0;
  uint32_t children_len = 0;  // subtree byte length (elements only)
  int depth = 0;              // 0 = direct child of the context node
};

/// Pre-order walker over one record's entries. Emits kStart for every entry
/// and kEnd when an element's children are exhausted (leaves get kStart
/// only). Skip() jumps over the current element's children ("skipping
/// subtrees in XPath evaluations").
class RecordWalker {
 public:
  /// `record` must stay alive for the walker's lifetime.
  explicit RecordWalker(Slice record);

  Status Init();  // parses the header
  const RecordHeader& header() const { return header_; }

  enum class EventType { kStart, kEnd, kDone };
  struct Event {
    EventType type = EventType::kDone;
    PackedEntry entry;  // valid for kStart; for kEnd, kind/abs_id/depth valid
  };

  /// Advances to the next event.
  Status Next(Event* event);

  /// After a kStart for an element: skip its children (the matching kEnd is
  /// suppressed).
  void SkipChildren();

 private:
  struct Frame {
    const char* end;      // first byte past this element's children
    std::string abs_id;   // element's absolute id
  };

  Slice record_;
  RecordHeader header_;
  const char* p_ = nullptr;
  const char* limit_ = nullptr;
  std::vector<Frame> stack_;
  std::string context_id_;
  bool pending_skip_ = false;
};

/// Computes the NodeID-index intervals of a record (Section 3.1): for each
/// maximal run of record-resident node IDs that is contiguous in document
/// order, the *upper end point*. Proxies break runs.
Status ComputeNodeIdIntervals(Slice record,
                              std::vector<std::string>* interval_uppers);

/// Counts nodes physically present in the record (proxies excluded).
Result<uint64_t> CountRecordNodes(Slice record);

/// Rebuilds the record with the text node `node_id`'s value replaced —
/// subtree lengths of enclosing elements are recomputed. NotFound if the
/// node is not a text node physically present in this record.
Result<std::string> ReplaceTextValue(Slice record, Slice node_id,
                                     Slice new_value);

/// Rebuilds the record with a proxy for `new_rel` spliced into the children
/// of `parent_abs` at its document-order position (child counts and subtree
/// lengths recomputed). When `parent_abs` equals the record's context node,
/// the proxy becomes a new top-level subtree. The proxied subtree itself
/// lives in another record, found through the NodeID index.
Result<std::string> InsertProxyEntry(Slice record, Slice parent_abs,
                                     Slice new_rel);

/// Rebuilds the record without the entry (subtree or proxy) whose absolute
/// ID is `node_abs`, decrementing its parent's child count. Sets *now_empty
/// when the record retains no non-proxy entries. NotFound if absent.
Result<std::string> RemoveEntry(Slice record, Slice node_abs,
                                bool* now_empty);

/// Serializes a parsed XML fragment (one root element) as a packed subtree
/// entry whose root carries the relative ID `root_rel`; children get the
/// canonical ChildId numbering beneath it. Returns the entry bytes and
/// reports the fragment's node count.
Result<std::string> BuildSubtreeEntry(Slice fragment_tokens, Slice root_rel,
                                      uint64_t* node_count);

// --- entry serialization (used by RecordBuilder; must mirror RecordWalker)

namespace packfmt {

void AppendAttribute(std::string* dst, Slice rel_id, NameId local,
                     NameId ns_uri, NameId prefix, TypeAnno type, Slice value);
void AppendText(std::string* dst, Slice rel_id, TypeAnno type, Slice value);
void AppendNamespace(std::string* dst, Slice rel_id, NameId prefix,
                     NameId uri);
void AppendComment(std::string* dst, Slice rel_id, Slice value);
void AppendPi(std::string* dst, Slice rel_id, NameId target, Slice value);
/// Wraps already-serialized children with an element entry header.
void AppendElement(std::string* dst, Slice rel_id, NameId local, NameId ns_uri,
                   NameId prefix, uint32_t child_count, Slice children);
void AppendProxy(std::string* dst, Slice rel_id);

}  // namespace packfmt

}  // namespace xdb

#endif  // XDB_PACK_PACKED_RECORD_H_
