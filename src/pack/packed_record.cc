#include "pack/packed_record.h"

#include <functional>

#include "common/coding.h"
#include "xml/node_id.h"

namespace xdb {

namespace {

// Reads a self-delimiting relative node ID (odd* even) from [*p, limit).
bool ReadRelId(const char** p, const char* limit, Slice* out) {
  const char* q = *p;
  while (q < limit && (static_cast<unsigned char>(*q) & 1) != 0) q++;
  if (q >= limit) return false;
  q++;  // include the terminating even byte
  *out = Slice(*p, static_cast<size_t>(q - *p));
  *p = q;
  return true;
}

bool ReadVar32(const char** p, const char* limit, uint32_t* v) {
  size_t n = GetVarint32(*p, limit, v);
  if (n == 0) return false;
  *p += n;
  return true;
}

bool ReadLp(const char** p, const char* limit, Slice* out) {
  uint64_t len;
  size_t n = GetVarint64(*p, limit, &len);
  if (n == 0 || *p + n + len > limit) return false;
  *out = Slice(*p + n, static_cast<size_t>(len));
  *p += n + len;
  return true;
}

}  // namespace

namespace packfmt {

void AppendAttribute(std::string* dst, Slice rel_id, NameId local,
                     NameId ns_uri, NameId prefix, TypeAnno type,
                     Slice value) {
  dst->push_back(static_cast<char>(NodeKind::kAttribute));
  dst->append(rel_id.data(), rel_id.size());
  PutVarint32(dst, local);
  PutVarint32(dst, ns_uri);
  PutVarint32(dst, prefix);
  dst->push_back(static_cast<char>(type));
  PutLengthPrefixed(dst, value);
}

void AppendText(std::string* dst, Slice rel_id, TypeAnno type, Slice value) {
  dst->push_back(static_cast<char>(NodeKind::kText));
  dst->append(rel_id.data(), rel_id.size());
  dst->push_back(static_cast<char>(type));
  PutLengthPrefixed(dst, value);
}

void AppendNamespace(std::string* dst, Slice rel_id, NameId prefix,
                     NameId uri) {
  dst->push_back(static_cast<char>(NodeKind::kNamespace));
  dst->append(rel_id.data(), rel_id.size());
  PutVarint32(dst, prefix);
  PutVarint32(dst, uri);
}

void AppendComment(std::string* dst, Slice rel_id, Slice value) {
  dst->push_back(static_cast<char>(NodeKind::kComment));
  dst->append(rel_id.data(), rel_id.size());
  PutLengthPrefixed(dst, value);
}

void AppendPi(std::string* dst, Slice rel_id, NameId target, Slice value) {
  dst->push_back(static_cast<char>(NodeKind::kProcessingInstruction));
  dst->append(rel_id.data(), rel_id.size());
  PutVarint32(dst, target);
  PutLengthPrefixed(dst, value);
}

void AppendElement(std::string* dst, Slice rel_id, NameId local, NameId ns_uri,
                   NameId prefix, uint32_t child_count, Slice children) {
  dst->push_back(static_cast<char>(NodeKind::kElement));
  dst->append(rel_id.data(), rel_id.size());
  PutVarint32(dst, local);
  PutVarint32(dst, ns_uri);
  PutVarint32(dst, prefix);
  PutVarint32(dst, child_count);
  PutVarint64(dst, children.size());
  dst->append(children.data(), children.size());
}

void AppendProxy(std::string* dst, Slice rel_id) {
  dst->push_back(static_cast<char>(NodeKind::kProxy));
  dst->append(rel_id.data(), rel_id.size());
}

}  // namespace packfmt

void AppendRecordHeader(const RecordHeader& header, std::string* dst) {
  PutLengthPrefixed(dst, header.context_node_id);
  PutVarint64(dst, header.root_path.size());
  for (const auto& step : header.root_path) {
    PutVarint32(dst, step.local);
    PutVarint32(dst, step.ns_uri);
  }
  PutVarint64(dst, header.namespaces.size());
  for (const auto& [prefix, uri] : header.namespaces) {
    PutVarint32(dst, prefix);
    PutVarint32(dst, uri);
  }
  PutVarint32(dst, header.subtree_count);
}

Status ParseRecordHeader(Slice record, RecordHeader* header, Slice* payload) {
  const char* p = record.data();
  const char* limit = p + record.size();
  if (!ReadLp(&p, limit, &header->context_node_id))
    return Status::Corruption("bad record header: context id");
  uint32_t path_len;
  if (!ReadVar32(&p, limit, &path_len))
    return Status::Corruption("bad record header: path length");
  header->root_path.clear();
  header->root_path.reserve(path_len);
  for (uint32_t i = 0; i < path_len; i++) {
    RecordHeader::PathStep step;
    if (!ReadVar32(&p, limit, &step.local) ||
        !ReadVar32(&p, limit, &step.ns_uri))
      return Status::Corruption("bad record header: path step");
    header->root_path.push_back(step);
  }
  uint32_t ns_count;
  if (!ReadVar32(&p, limit, &ns_count))
    return Status::Corruption("bad record header: namespace count");
  header->namespaces.clear();
  for (uint32_t i = 0; i < ns_count; i++) {
    uint32_t prefix, uri;
    if (!ReadVar32(&p, limit, &prefix) || !ReadVar32(&p, limit, &uri))
      return Status::Corruption("bad record header: namespace pair");
    header->namespaces.emplace_back(prefix, uri);
  }
  if (!ReadVar32(&p, limit, &header->subtree_count))
    return Status::Corruption("bad record header: subtree count");
  *payload = Slice(p, static_cast<size_t>(limit - p));
  return Status::OK();
}

RecordWalker::RecordWalker(Slice record) : record_(record) {}

Status RecordWalker::Init() {
  Slice payload;
  XDB_RETURN_NOT_OK(ParseRecordHeader(record_, &header_, &payload));
  p_ = payload.data();
  limit_ = p_ + payload.size();
  context_id_ = header_.context_node_id.ToString();
  return Status::OK();
}

void RecordWalker::SkipChildren() { pending_skip_ = true; }

Status RecordWalker::Next(Event* event) {
  if (pending_skip_) {
    pending_skip_ = false;
    if (!stack_.empty()) {
      p_ = stack_.back().end;
      stack_.pop_back();
    }
  }
  // Close any elements whose children are exhausted.
  if (!stack_.empty() && p_ >= stack_.back().end) {
    event->type = EventType::kEnd;
    event->entry = PackedEntry();
    event->entry.kind = NodeKind::kElement;
    event->entry.abs_id = stack_.back().abs_id;
    event->entry.depth = static_cast<int>(stack_.size()) - 1;
    stack_.pop_back();
    return Status::OK();
  }
  if (p_ >= limit_) {
    event->type = EventType::kDone;
    return Status::OK();
  }

  PackedEntry& e = event->entry;
  e = PackedEntry();
  e.kind = static_cast<NodeKind>(*p_++);
  if (!ReadRelId(&p_, limit_, &e.rel_id))
    return Status::Corruption("bad packed entry: relative id");
  const std::string& parent_id =
      stack_.empty() ? context_id_ : stack_.back().abs_id;
  e.abs_id = parent_id;
  e.abs_id.append(e.rel_id.data(), e.rel_id.size());
  e.depth = static_cast<int>(stack_.size());

  switch (e.kind) {
    case NodeKind::kElement: {
      if (!ReadVar32(&p_, limit_, &e.local) ||
          !ReadVar32(&p_, limit_, &e.ns_uri) ||
          !ReadVar32(&p_, limit_, &e.prefix) ||
          !ReadVar32(&p_, limit_, &e.child_count) ||
          !ReadVar32(&p_, limit_, &e.children_len))
        return Status::Corruption("bad packed element entry");
      if (p_ + e.children_len > limit_)
        return Status::Corruption("element children overrun record");
      stack_.push_back(Frame{p_ + e.children_len, e.abs_id});
      break;
    }
    case NodeKind::kAttribute: {
      if (!ReadVar32(&p_, limit_, &e.local) ||
          !ReadVar32(&p_, limit_, &e.ns_uri) ||
          !ReadVar32(&p_, limit_, &e.prefix))
        return Status::Corruption("bad packed attribute entry");
      if (p_ >= limit_) return Status::Corruption("truncated attribute");
      e.type = static_cast<TypeAnno>(*p_++);
      if (!ReadLp(&p_, limit_, &e.value))
        return Status::Corruption("bad attribute value");
      break;
    }
    case NodeKind::kText: {
      if (p_ >= limit_) return Status::Corruption("truncated text entry");
      e.type = static_cast<TypeAnno>(*p_++);
      if (!ReadLp(&p_, limit_, &e.value))
        return Status::Corruption("bad text value");
      break;
    }
    case NodeKind::kNamespace: {
      if (!ReadVar32(&p_, limit_, &e.local) ||
          !ReadVar32(&p_, limit_, &e.ns_uri))
        return Status::Corruption("bad namespace entry");
      break;
    }
    case NodeKind::kComment: {
      if (!ReadLp(&p_, limit_, &e.value))
        return Status::Corruption("bad comment value");
      break;
    }
    case NodeKind::kProcessingInstruction: {
      if (!ReadVar32(&p_, limit_, &e.local) ||
          !ReadLp(&p_, limit_, &e.value))
        return Status::Corruption("bad PI entry");
      break;
    }
    case NodeKind::kProxy:
      break;
    default:
      return Status::Corruption("unknown packed entry kind");
  }
  event->type = EventType::kStart;
  return Status::OK();
}

Status ComputeNodeIdIntervals(Slice record,
                              std::vector<std::string>* interval_uppers) {
  interval_uppers->clear();
  RecordWalker walker(record);
  XDB_RETURN_NOT_OK(walker.Init());
  std::string last_id;
  bool in_interval = false;
  for (;;) {
    RecordWalker::Event ev;
    XDB_RETURN_NOT_OK(walker.Next(&ev));
    if (ev.type == RecordWalker::EventType::kDone) break;
    if (ev.type != RecordWalker::EventType::kStart) continue;
    if (ev.entry.kind == NodeKind::kProxy) {
      // A gap: everything inside the proxy's subtree lives elsewhere.
      if (in_interval) {
        interval_uppers->push_back(last_id);
        in_interval = false;
      }
      continue;
    }
    last_id = ev.entry.abs_id;
    in_interval = true;
  }
  if (in_interval) interval_uppers->push_back(last_id);
  return Status::OK();
}

Result<std::string> ReplaceTextValue(Slice record, Slice node_id,
                                     Slice new_value) {
  RecordWalker walker(record);
  XDB_RETURN_NOT_OK(walker.Init());

  std::string out;
  AppendRecordHeader(walker.header(), &out);

  struct Frame {
    std::string rel_id;
    NameId local, ns_uri, prefix;
    uint32_t child_count;
    std::string buf;
  };
  std::vector<Frame> stack;
  bool replaced = false;
  auto sink = [&]() -> std::string* {
    return stack.empty() ? &out : &stack.back().buf;
  };

  for (;;) {
    RecordWalker::Event ev;
    XDB_RETURN_NOT_OK(walker.Next(&ev));
    if (ev.type == RecordWalker::EventType::kDone) break;
    if (ev.type == RecordWalker::EventType::kEnd) {
      Frame f = std::move(stack.back());
      stack.pop_back();
      packfmt::AppendElement(sink(), f.rel_id, f.local, f.ns_uri, f.prefix,
                             f.child_count, f.buf);
      continue;
    }
    const PackedEntry& e = ev.entry;
    switch (e.kind) {
      case NodeKind::kElement:
        stack.push_back(Frame{e.rel_id.ToString(), e.local, e.ns_uri,
                              e.prefix, e.child_count, {}});
        break;
      case NodeKind::kText:
        if (Slice(e.abs_id) == node_id) {
          packfmt::AppendText(sink(), e.rel_id, e.type, new_value);
          replaced = true;
        } else {
          packfmt::AppendText(sink(), e.rel_id, e.type, e.value);
        }
        break;
      case NodeKind::kAttribute:
        packfmt::AppendAttribute(sink(), e.rel_id, e.local, e.ns_uri, e.prefix,
                                 e.type, e.value);
        break;
      case NodeKind::kNamespace:
        packfmt::AppendNamespace(sink(), e.rel_id, e.local, e.ns_uri);
        break;
      case NodeKind::kComment:
        packfmt::AppendComment(sink(), e.rel_id, e.value);
        break;
      case NodeKind::kProcessingInstruction:
        packfmt::AppendPi(sink(), e.rel_id, e.local, e.value);
        break;
      case NodeKind::kProxy:
        packfmt::AppendProxy(sink(), e.rel_id);
        break;
      default:
        return Status::Corruption("unknown packed entry kind");
    }
  }
  if (!replaced)
    return Status::NotFound("text node not present in this record");
  return out;
}

namespace {

// Shared rebuild pass: walks the record and re-emits every entry, letting a
// hook adjust what happens around one target node. The hook contract:
//  - OnEntry(entry, sink) returns true if it consumed the entry (suppressing
//    the default re-emit);
//  - OnChildrenDone(elem_abs_id, child_count) may adjust an element's child
//    count just before its header is written.
struct RebuildHooks {
  std::function<bool(const PackedEntry&, std::string*)> on_entry;
  std::function<uint32_t(const std::string&, uint32_t)> adjust_child_count;
  std::function<void(std::string*)> top_level_prologue;  // before 1st entry
};

Status RebuildRecord(Slice record, const RecordHeader& header,
                     const RebuildHooks& hooks, std::string* out) {
  RecordWalker walker(record);
  XDB_RETURN_NOT_OK(walker.Init());
  AppendRecordHeader(header, out);
  if (hooks.top_level_prologue) hooks.top_level_prologue(out);

  struct Frame {
    std::string rel_id;
    std::string abs_id;
    NameId local, ns_uri, prefix;
    uint32_t child_count;
    std::string buf;
  };
  std::vector<Frame> stack;
  auto sink = [&]() -> std::string* {
    return stack.empty() ? out : &stack.back().buf;
  };
  for (;;) {
    RecordWalker::Event ev;
    XDB_RETURN_NOT_OK(walker.Next(&ev));
    if (ev.type == RecordWalker::EventType::kDone) break;
    if (ev.type == RecordWalker::EventType::kEnd) {
      Frame f = std::move(stack.back());
      stack.pop_back();
      uint32_t count = f.child_count;
      if (hooks.adjust_child_count)
        count = hooks.adjust_child_count(f.abs_id, count);
      packfmt::AppendElement(sink(), f.rel_id, f.local, f.ns_uri, f.prefix,
                             count, f.buf);
      continue;
    }
    const PackedEntry& e = ev.entry;
    if (hooks.on_entry && hooks.on_entry(e, sink())) {
      if (e.kind == NodeKind::kElement) walker.SkipChildren();
      continue;
    }
    switch (e.kind) {
      case NodeKind::kElement:
        stack.push_back(Frame{e.rel_id.ToString(), e.abs_id, e.local,
                              e.ns_uri, e.prefix, e.child_count, {}});
        break;
      case NodeKind::kText:
        packfmt::AppendText(sink(), e.rel_id, e.type, e.value);
        break;
      case NodeKind::kAttribute:
        packfmt::AppendAttribute(sink(), e.rel_id, e.local, e.ns_uri,
                                 e.prefix, e.type, e.value);
        break;
      case NodeKind::kNamespace:
        packfmt::AppendNamespace(sink(), e.rel_id, e.local, e.ns_uri);
        break;
      case NodeKind::kComment:
        packfmt::AppendComment(sink(), e.rel_id, e.value);
        break;
      case NodeKind::kProcessingInstruction:
        packfmt::AppendPi(sink(), e.rel_id, e.local, e.value);
        break;
      case NodeKind::kProxy:
        packfmt::AppendProxy(sink(), e.rel_id);
        break;
      default:
        return Status::Corruption("unknown packed entry kind");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> InsertProxyEntry(Slice record, Slice parent_abs,
                                     Slice new_rel) {
  RecordWalker header_walker(record);
  XDB_RETURN_NOT_OK(header_walker.Init());
  RecordHeader header = header_walker.header();
  const std::string new_abs = parent_abs.ToString() + new_rel.ToString();
  const bool top_level = parent_abs == header.context_node_id;
  if (top_level) header.subtree_count++;

  bool inserted = false;
  std::string parent_abs_str = parent_abs.ToString();
  std::string out;
  {
    // Custom rebuild (RebuildRecord's hooks cannot express "append at the
    // end of one element's child list"): splice the proxy before the first
    // later sibling, or at the parent's close when it is the new last child.
    RecordWalker walker(record);
    XDB_RETURN_NOT_OK(walker.Init());
    AppendRecordHeader(header, &out);
    struct Frame {
      std::string rel_id, abs_id;
      NameId local, ns_uri, prefix;
      uint32_t child_count;
      std::string buf;
    };
    std::vector<Frame> stack;
    auto sink = [&]() -> std::string* {
      return stack.empty() ? &out : &stack.back().buf;
    };
    bool parent_found = top_level;
    for (;;) {
      RecordWalker::Event ev;
      XDB_RETURN_NOT_OK(walker.Next(&ev));
      if (ev.type == RecordWalker::EventType::kDone) break;
      if (ev.type == RecordWalker::EventType::kEnd) {
        Frame f = std::move(stack.back());
        stack.pop_back();
        uint32_t count = f.child_count;
        if (f.abs_id == parent_abs_str) {
          if (!inserted) {
            packfmt::AppendProxy(&f.buf, new_rel);
            inserted = true;
          }
          count++;
        }
        packfmt::AppendElement(sink(), f.rel_id, f.local, f.ns_uri, f.prefix,
                               count, f.buf);
        continue;
      }
      const PackedEntry& e = ev.entry;
      XDB_ASSIGN_OR_RETURN(Slice eparent, nodeid::Parent(Slice(e.abs_id)));
      if (!inserted && eparent == Slice(parent_abs_str) &&
          Slice(e.abs_id).Compare(Slice(new_abs)) > 0) {
        packfmt::AppendProxy(sink(), new_rel);
        inserted = true;
      }
      switch (e.kind) {
        case NodeKind::kElement:
          if (e.abs_id == parent_abs_str) parent_found = true;
          stack.push_back(Frame{e.rel_id.ToString(), e.abs_id, e.local,
                                e.ns_uri, e.prefix, e.child_count, {}});
          break;
        case NodeKind::kText:
          packfmt::AppendText(sink(), e.rel_id, e.type, e.value);
          break;
        case NodeKind::kAttribute:
          packfmt::AppendAttribute(sink(), e.rel_id, e.local, e.ns_uri,
                                   e.prefix, e.type, e.value);
          break;
        case NodeKind::kNamespace:
          packfmt::AppendNamespace(sink(), e.rel_id, e.local, e.ns_uri);
          break;
        case NodeKind::kComment:
          packfmt::AppendComment(sink(), e.rel_id, e.value);
          break;
        case NodeKind::kProcessingInstruction:
          packfmt::AppendPi(sink(), e.rel_id, e.local, e.value);
          break;
        case NodeKind::kProxy:
          packfmt::AppendProxy(sink(), e.rel_id);
          break;
        default:
          return Status::Corruption("unknown packed entry kind");
      }
    }
    if (top_level && !inserted) {
      packfmt::AppendProxy(&out, new_rel);
      inserted = true;
    }
    if (!parent_found && !top_level)
      return Status::NotFound("parent element not in this record");
  }
  if (!inserted)
    return Status::NotFound("insertion point not found in this record");
  return out;
}

Result<std::string> RemoveEntry(Slice record, Slice node_abs,
                                bool* now_empty) {
  RecordWalker header_walker(record);
  XDB_RETURN_NOT_OK(header_walker.Init());
  RecordHeader header = header_walker.header();
  const bool top_level = [&] {
    auto parent = nodeid::Parent(node_abs);
    return parent.ok() && parent.value() == header.context_node_id;
  }();
  if (top_level && header.subtree_count > 0) header.subtree_count--;

  std::string parent_abs;
  {
    XDB_ASSIGN_OR_RETURN(Slice p, nodeid::Parent(node_abs));
    parent_abs = p.ToString();
  }
  bool removed = false;
  RebuildHooks hooks;
  hooks.on_entry = [&](const PackedEntry& e, std::string*) -> bool {
    if (Slice(e.abs_id) == node_abs) {
      removed = true;
      return true;  // consumed: entry (and its children) dropped
    }
    return false;
  };
  hooks.adjust_child_count = [&](const std::string& abs,
                                 uint32_t count) -> uint32_t {
    if (abs == parent_abs && removed && count > 0) return count - 1;
    return count;
  };
  std::string out;
  XDB_RETURN_NOT_OK(RebuildRecord(record, header, hooks, &out));
  if (!removed) return Status::NotFound("entry not in this record");
  if (now_empty != nullptr) {
    XDB_ASSIGN_OR_RETURN(uint64_t nodes, CountRecordNodes(out));
    *now_empty = nodes == 0;
  }
  return out;
}

Result<std::string> BuildSubtreeEntry(Slice fragment_tokens, Slice root_rel,
                                      uint64_t* node_count) {
  TokenReader reader(fragment_tokens);
  Token t;
  struct Frame {
    std::string rel_id;
    NameId local, ns_uri, prefix;
    uint32_t ordinal = 0;
    uint32_t child_count = 0;
    std::string buf;
  };
  std::vector<Frame> stack;
  std::string out;
  uint64_t count = 0;
  bool root_done = false;

  auto child_rel = [&]() -> std::string {
    Frame& f = stack.back();
    f.ordinal++;
    f.child_count++;
    return nodeid::ChildId(f.ordinal);
  };

  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, reader.Next(&t));
    if (!more) break;
    switch (t.kind) {
      case TokenKind::kStartDocument:
      case TokenKind::kEndDocument:
        break;
      case TokenKind::kStartElement: {
        if (root_done)
          return Status::InvalidArgument(
              "fragment must have a single root element");
        Frame frame;
        frame.rel_id = stack.empty() ? root_rel.ToString() : child_rel();
        frame.local = t.local;
        frame.ns_uri = t.ns_uri;
        frame.prefix = t.prefix;
        stack.push_back(std::move(frame));
        count++;
        break;
      }
      case TokenKind::kEndElement: {
        if (stack.empty())
          return Status::Corruption("unbalanced fragment tokens");
        Frame f = std::move(stack.back());
        stack.pop_back();
        std::string* sink = stack.empty() ? &out : &stack.back().buf;
        packfmt::AppendElement(sink, f.rel_id, f.local, f.ns_uri, f.prefix,
                               f.child_count, f.buf);
        if (stack.empty()) root_done = true;
        break;
      }
      case TokenKind::kAttribute: {
        if (stack.empty())
          return Status::InvalidArgument("attribute outside the fragment root");
        std::string rel = child_rel();
        packfmt::AppendAttribute(&stack.back().buf, rel, t.local, t.ns_uri,
                                 t.prefix, t.type, t.text);
        count++;
        break;
      }
      case TokenKind::kNamespaceDecl: {
        if (stack.empty())
          return Status::InvalidArgument("namespace outside the fragment root");
        std::string rel = child_rel();
        packfmt::AppendNamespace(&stack.back().buf, rel, t.local, t.ns_uri);
        count++;
        break;
      }
      case TokenKind::kText: {
        if (stack.empty())
          return Status::InvalidArgument("text outside the fragment root");
        std::string rel = child_rel();
        packfmt::AppendText(&stack.back().buf, rel, t.type, t.text);
        count++;
        break;
      }
      case TokenKind::kComment: {
        if (stack.empty())
          return Status::InvalidArgument("comment outside the fragment root");
        std::string rel = child_rel();
        packfmt::AppendComment(&stack.back().buf, rel, t.text);
        count++;
        break;
      }
      case TokenKind::kProcessingInstruction: {
        if (stack.empty())
          return Status::InvalidArgument("PI outside the fragment root");
        std::string rel = child_rel();
        packfmt::AppendPi(&stack.back().buf, rel, t.local, t.text);
        count++;
        break;
      }
    }
  }
  if (!stack.empty() || !root_done)
    return Status::InvalidArgument("fragment has no complete root element");
  if (node_count != nullptr) *node_count = count;
  return out;
}

Result<uint64_t> CountRecordNodes(Slice record) {
  RecordWalker walker(record);
  XDB_RETURN_NOT_OK(walker.Init());
  uint64_t count = 0;
  for (;;) {
    RecordWalker::Event ev;
    XDB_RETURN_NOT_OK(walker.Next(&ev));
    if (ev.type == RecordWalker::EventType::kDone) break;
    if (ev.type == RecordWalker::EventType::kStart &&
        ev.entry.kind != NodeKind::kProxy)
      count++;
  }
  return count;
}

}  // namespace xdb
