// Traversal of stored XML data (Section 3.4).
//
// "To traverse in document order a persistently stored XML document ... the
// NodeID index is searched with (docid, 00) as the key. The root record can
// be identified. The XMLData is then traversed. If a proxy node is
// encountered, its node ID is used to search the NodeID index ... to find
// the RID for the corresponding record. Stacking has to be used during
// traversal." StoredDocSource implements exactly that walk as an
// XmlEventSource; StoredTreeNavigator provides the point operations
// (first-child / next-sibling / node fetch) whose sibling skips can jump
// whole multi-record subtrees.
#ifndef XDB_PACK_TREE_CURSOR_H_
#define XDB_PACK_TREE_CURSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "index/nodeid_index.h"
#include "pack/packed_record.h"
#include "runtime/virtual_sax.h"
#include "storage/record_manager.h"

namespace xdb {

/// Document-order event stream over packed records, resolving proxies
/// through the NodeID index with a record stack.
class StoredDocSource : public XmlEventSource {
 public:
  /// Streams the whole document when `subtree_root` is empty, otherwise just
  /// the subtree rooted at that node (start/end document events included
  /// only for whole-document streams).
  StoredDocSource(RecordManager* records, NodeLocator* index, uint64_t doc_id,
                  std::string subtree_root = "");

  Result<bool> Next(XmlEvent* event) override;

  /// Records fetched so far (the traversal-cost metric of E2).
  uint64_t records_fetched() const { return records_fetched_; }

 private:
  struct Ctx {
    std::shared_ptr<std::string> buf;  // record bytes (walker views into it)
    std::unique_ptr<RecordWalker> walker;
    std::string target;  // restrict to this subtree; "" = all
    bool in_target = false;
    bool target_done = false;
    int target_depth = 0;  // record-relative depth of the target entry
  };

  Status PushRecord(Slice node_id, std::string target);
  Result<bool> Produce(XmlEvent* event);  // one step; may recurse via stack

  RecordManager* records_;
  NodeLocator* index_;
  uint64_t doc_id_;
  std::string subtree_root_;
  std::vector<std::unique_ptr<Ctx>> stack_;
  std::string cur_id_;     // storage for event node ids
  std::string cur_value_;  // storage for event values
  bool started_ = false;
  bool finished_ = false;
  uint64_t records_fetched_ = 0;
  // One-record cache: a run of sibling proxies usually resolves to the same
  // evicted record; reuse it instead of refetching (the buffer manager would
  // serve the same page, but the record copy is avoidable too).
  Rid last_rid_{};
  std::shared_ptr<std::string> last_buf_;
};

/// Summary of a stored node, as returned by point lookups.
struct StoredNodeInfo {
  NodeKind kind = NodeKind::kElement;
  NameId local = kEmptyNameId, ns_uri = kEmptyNameId, prefix = kEmptyNameId;
  TypeAnno type = TypeAnno::kUntyped;
  std::string value;  // leaf value (attribute/text/comment/PI)
  uint32_t child_count = 0;
};

/// Point navigation over a stored document.
class StoredTreeNavigator {
 public:
  StoredTreeNavigator(RecordManager* records, NodeLocator* index,
                      uint64_t doc_id)
      : records_(records), index_(index), doc_id_(doc_id) {}

  /// Fetches the node with the given absolute ID ("" = the root record's
  /// first subtree root is NOT the document itself; the document node is
  /// implicit and not fetchable).
  Result<StoredNodeInfo> GetNode(Slice node_id);

  /// Absolute ID of the first child; NotFound when childless.
  Result<std::string> FirstChildId(Slice node_id);

  /// Absolute ID of the next sibling, skipping the node's entire subtree
  /// (however many records it spans) in O(1) record fetches.
  Result<std::string> NextSiblingId(Slice node_id);

  /// XPath string value (concatenated subtree text; crosses records).
  Result<std::string> StringValue(Slice node_id);

 private:
  // Positions a walker on the record containing `node_id` and advances it to
  // the node's kStart event.
  Status WalkTo(Slice node_id, std::string* buf,
                std::unique_ptr<RecordWalker>* walker,
                RecordWalker::Event* event);

  RecordManager* records_;
  NodeLocator* index_;
  uint64_t doc_id_;
};

}  // namespace xdb

#endif  // XDB_PACK_TREE_CURSOR_H_
