#include "pack/tree_cursor.h"

#include "xml/node_id.h"

namespace xdb {

StoredDocSource::StoredDocSource(RecordManager* records, NodeLocator* index,
                                 uint64_t doc_id, std::string subtree_root)
    : records_(records),
      index_(index),
      doc_id_(doc_id),
      subtree_root_(std::move(subtree_root)) {}

Status StoredDocSource::PushRecord(Slice node_id, std::string target) {
  XDB_ASSIGN_OR_RETURN(Rid rid, index_->Lookup(doc_id_, node_id));
  auto ctx = std::make_unique<Ctx>();
  if (last_buf_ != nullptr && rid == last_rid_) {
    ctx->buf = last_buf_;
  } else {
    ctx->buf = std::make_shared<std::string>();
    XDB_RETURN_NOT_OK(records_->Get(rid, ctx->buf.get()));
    records_fetched_++;
    last_rid_ = rid;
    last_buf_ = ctx->buf;
  }
  ctx->walker = std::make_unique<RecordWalker>(Slice(*ctx->buf));
  XDB_RETURN_NOT_OK(ctx->walker->Init());
  ctx->target = std::move(target);
  stack_.push_back(std::move(ctx));
  return Status::OK();
}

Result<bool> StoredDocSource::Next(XmlEvent* event) {
  if (finished_) return false;
  if (!started_) {
    started_ = true;
    XDB_RETURN_NOT_OK(
        PushRecord(Slice(subtree_root_), subtree_root_));
    if (subtree_root_.empty()) {
      *event = XmlEvent();
      event->type = XmlEvent::Type::kStartDocument;
      return true;
    }
  }
  return Produce(event);
}

Result<bool> StoredDocSource::Produce(XmlEvent* event) {
  while (!stack_.empty()) {
    Ctx& ctx = *stack_.back();
    RecordWalker::Event ev;
    XDB_RETURN_NOT_OK(ctx.walker->Next(&ev));

    if (ev.type == RecordWalker::EventType::kDone) {
      stack_.pop_back();
      continue;
    }

    // Apply the target filter: emit only the subtree rooted at ctx.target
    // (used both for resolved proxy records and for subtree streams).
    if (!ctx.target.empty()) {
      if (ctx.target_done) {
        stack_.pop_back();
        continue;
      }
      if (!ctx.in_target) {
        // Searching for the target: descend through its ancestors, skip
        // everything else.
        if (ev.type != RecordWalker::EventType::kStart) continue;
        Slice abs(ev.entry.abs_id);
        if (abs == Slice(ctx.target)) {
          ctx.in_target = true;
          ctx.target_depth = ev.entry.depth;
          if (ev.entry.kind != NodeKind::kElement &&
              ev.entry.kind != NodeKind::kProxy) {
            // Leaf target: this single event is the whole subtree.
            ctx.target_done = true;
          }
          // fall through and emit (or resolve, for a proxy)
        } else if (ev.entry.kind == NodeKind::kElement &&
                   nodeid::IsAncestor(abs, Slice(ctx.target))) {
          continue;  // descend silently
        } else {
          if (ev.entry.kind == NodeKind::kElement) ctx.walker->SkipChildren();
          continue;
        }
      } else if (ev.type == RecordWalker::EventType::kEnd &&
                 ev.entry.depth <= ctx.target_depth) {
        if (ev.entry.depth < ctx.target_depth) continue;  // ancestor close
        ctx.target_done = true;  // the target element's own end: emit it
      }
    }

    if (ev.type == RecordWalker::EventType::kEnd) {
      *event = XmlEvent();
      event->type = XmlEvent::Type::kEndElement;
      cur_id_ = ev.entry.abs_id;
      event->node_id = Slice(cur_id_);
      event->depth = ev.entry.depth;
      return true;
    }

    const PackedEntry& e = ev.entry;
    if (e.kind == NodeKind::kProxy) {
      XDB_RETURN_NOT_OK(PushRecord(Slice(e.abs_id), e.abs_id));
      continue;
    }

    *event = XmlEvent();
    cur_id_ = e.abs_id;
    event->node_id = Slice(cur_id_);
    event->local = e.local;
    event->ns_uri = e.ns_uri;
    event->prefix = e.prefix;
    event->type_anno = e.type;
    event->depth = e.depth;
    cur_value_.assign(e.value.data(), e.value.size());
    event->value = Slice(cur_value_);
    switch (e.kind) {
      case NodeKind::kElement:
        event->type = XmlEvent::Type::kStartElement;
        break;
      case NodeKind::kAttribute:
        event->type = XmlEvent::Type::kAttribute;
        break;
      case NodeKind::kText:
        event->type = XmlEvent::Type::kText;
        break;
      case NodeKind::kNamespace:
        event->type = XmlEvent::Type::kNamespace;
        break;
      case NodeKind::kComment:
        event->type = XmlEvent::Type::kComment;
        break;
      case NodeKind::kProcessingInstruction:
        event->type = XmlEvent::Type::kPi;
        break;
      default:
        return Status::Corruption("unexpected entry kind in traversal");
    }
    return true;
  }
  finished_ = true;
  if (subtree_root_.empty()) {
    *event = XmlEvent();
    event->type = XmlEvent::Type::kEndDocument;
    return true;
  }
  return false;
}

Status StoredTreeNavigator::WalkTo(Slice node_id, std::string* buf,
                                   std::unique_ptr<RecordWalker>* walker,
                                   RecordWalker::Event* event) {
  XDB_ASSIGN_OR_RETURN(Rid rid, index_->Lookup(doc_id_, node_id));
  XDB_RETURN_NOT_OK(records_->Get(rid, buf));
  *walker = std::make_unique<RecordWalker>(Slice(*buf));
  XDB_RETURN_NOT_OK((*walker)->Init());
  for (;;) {
    XDB_RETURN_NOT_OK((*walker)->Next(event));
    if (event->type == RecordWalker::EventType::kDone)
      return Status::NotFound("node not in its indexed record");
    if (event->type != RecordWalker::EventType::kStart) continue;
    Slice abs(event->entry.abs_id);
    if (abs == node_id) return Status::OK();
    if (event->entry.kind == NodeKind::kElement &&
        !nodeid::IsAncestor(abs, node_id)) {
      (*walker)->SkipChildren();
    }
    // Ancestors: descend (no skip). Leaves/proxies that aren't the node:
    // walker moves past them naturally.
  }
}

Result<StoredNodeInfo> StoredTreeNavigator::GetNode(Slice node_id) {
  if (node_id.empty())
    return Status::InvalidArgument("the document node is implicit");
  std::string buf;
  std::unique_ptr<RecordWalker> walker;
  RecordWalker::Event ev;
  XDB_RETURN_NOT_OK(WalkTo(node_id, &buf, &walker, &ev));
  StoredNodeInfo info;
  info.kind = ev.entry.kind;
  info.local = ev.entry.local;
  info.ns_uri = ev.entry.ns_uri;
  info.prefix = ev.entry.prefix;
  info.type = ev.entry.type;
  info.value = ev.entry.value.ToString();
  info.child_count = ev.entry.child_count;
  return info;
}

Result<std::string> StoredTreeNavigator::FirstChildId(Slice node_id) {
  std::string buf;
  std::unique_ptr<RecordWalker> walker;
  RecordWalker::Event ev;
  if (node_id.empty()) {
    // Children of the document node: top-level entries of the root record.
    XDB_ASSIGN_OR_RETURN(Rid rid, index_->Lookup(doc_id_, node_id));
    XDB_RETURN_NOT_OK(records_->Get(rid, &buf));
    RecordWalker w((Slice(buf)));
    XDB_RETURN_NOT_OK(w.Init());
    XDB_RETURN_NOT_OK(w.Next(&ev));
    if (ev.type != RecordWalker::EventType::kStart)
      return Status::NotFound("empty document");
    return ev.entry.abs_id;
  }
  XDB_RETURN_NOT_OK(WalkTo(node_id, &buf, &walker, &ev));
  if (ev.entry.kind != NodeKind::kElement || ev.entry.child_count == 0)
    return Status::NotFound("no children");
  int parent_depth = ev.entry.depth;
  XDB_RETURN_NOT_OK(walker->Next(&ev));
  if (ev.type != RecordWalker::EventType::kStart ||
      ev.entry.depth != parent_depth + 1)
    return Status::NotFound("no children");
  return ev.entry.abs_id;
}

Result<std::string> StoredTreeNavigator::NextSiblingId(Slice node_id) {
  if (node_id.empty()) return Status::NotFound("document node has no sibling");
  XDB_ASSIGN_OR_RETURN(Slice parent, nodeid::Parent(node_id));

  std::string buf;
  std::unique_ptr<RecordWalker> walker;
  int target_depth;
  if (parent.empty()) {
    XDB_ASSIGN_OR_RETURN(Rid rid, index_->Lookup(doc_id_, parent));
    XDB_RETURN_NOT_OK(records_->Get(rid, &buf));
    walker = std::make_unique<RecordWalker>(Slice(buf));
    XDB_RETURN_NOT_OK(walker->Init());
    target_depth = 0;
  } else {
    RecordWalker::Event ev;
    XDB_RETURN_NOT_OK(WalkTo(parent, &buf, &walker, &ev));
    target_depth = ev.entry.depth + 1;
  }
  // Scan the parent's direct children; skip each child's subtree so a
  // multi-record subtree costs zero extra fetches.
  bool seen = false;
  for (;;) {
    RecordWalker::Event ev;
    XDB_RETURN_NOT_OK(walker->Next(&ev));
    if (ev.type == RecordWalker::EventType::kDone)
      return Status::NotFound("no next sibling");
    if (ev.type == RecordWalker::EventType::kEnd) {
      if (ev.entry.depth < target_depth)
        return Status::NotFound("no next sibling");
      continue;
    }
    if (ev.entry.depth != target_depth) continue;
    if (seen) return ev.entry.abs_id;
    if (Slice(ev.entry.abs_id) == node_id) seen = true;
    if (ev.entry.kind == NodeKind::kElement) walker->SkipChildren();
  }
}

Result<std::string> StoredTreeNavigator::StringValue(Slice node_id) {
  if (!node_id.empty()) {
    XDB_ASSIGN_OR_RETURN(StoredNodeInfo info, GetNode(node_id));
    if (info.kind != NodeKind::kElement && info.kind != NodeKind::kDocument)
      return info.value;
  }
  StoredDocSource source(records_, index_, doc_id_, node_id.ToString());
  std::string out;
  XmlEvent ev;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, source.Next(&ev));
    if (!more) break;
    if (ev.type == XmlEvent::Type::kText)
      out.append(ev.value.data(), ev.value.size());
  }
  return out;
}

}  // namespace xdb
