#include "pack/shredded_store.h"

#include "common/coding.h"
#include "index/key_codec.h"
#include "xml/node_id.h"

namespace xdb {

namespace {
// Node record: [kind u8][type u8][local var][ns var][prefix var][value lp].
void EncodeNodeRecord(const XmlEvent& ev, NodeKind kind, std::string* out) {
  out->push_back(static_cast<char>(kind));
  out->push_back(static_cast<char>(ev.type_anno));
  PutVarint32(out, ev.local);
  PutVarint32(out, ev.ns_uri);
  PutVarint32(out, ev.prefix);
  PutLengthPrefixed(out, ev.value);
}

Status DecodeNodeRecord(Slice record, XmlEvent* ev, NodeKind* kind) {
  const char* p = record.data();
  const char* limit = p + record.size();
  if (limit - p < 2) return Status::Corruption("short shredded record");
  *kind = static_cast<NodeKind>(*p++);
  ev->type_anno = static_cast<TypeAnno>(*p++);
  uint32_t v;
  size_t n = GetVarint32(p, limit, &v);
  if (n == 0) return Status::Corruption("bad shredded record");
  ev->local = v;
  p += n;
  n = GetVarint32(p, limit, &v);
  if (n == 0) return Status::Corruption("bad shredded record");
  ev->ns_uri = v;
  p += n;
  n = GetVarint32(p, limit, &v);
  if (n == 0) return Status::Corruption("bad shredded record");
  ev->prefix = v;
  p += n;
  Slice rest(p, static_cast<size_t>(limit - p));
  Slice value;
  if (!GetLengthPrefixed(&rest, &value))
    return Status::Corruption("bad shredded record value");
  ev->value = value;
  return Status::OK();
}

NodeKind KindOfEvent(const XmlEvent& ev) {
  switch (ev.type) {
    case XmlEvent::Type::kStartElement: return NodeKind::kElement;
    case XmlEvent::Type::kAttribute: return NodeKind::kAttribute;
    case XmlEvent::Type::kNamespace: return NodeKind::kNamespace;
    case XmlEvent::Type::kText: return NodeKind::kText;
    case XmlEvent::Type::kComment: return NodeKind::kComment;
    case XmlEvent::Type::kPi: return NodeKind::kProcessingInstruction;
    default: return NodeKind::kDocument;
  }
}
}  // namespace

Status ShreddedStore::InsertDocument(uint64_t doc_id, Slice tokens,
                                     uint64_t* node_count) {
  TokenStreamSource source(tokens);
  XmlEvent ev;
  uint64_t count = 0;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, source.Next(&ev));
    if (!more) break;
    switch (ev.type) {
      case XmlEvent::Type::kStartDocument:
      case XmlEvent::Type::kEndDocument:
      case XmlEvent::Type::kEndElement:
        continue;
      default:
        break;
    }
    std::string record;
    EncodeNodeRecord(ev, KindOfEvent(ev), &record);
    XDB_ASSIGN_OR_RETURN(Rid rid, records_->Insert(record));
    std::string key, value;
    EncodeNodeIdKey(doc_id, ev.node_id, &key);
    PutFixed64(&value, rid.Pack());
    XDB_RETURN_NOT_OK(node_index_->Insert(key, value));
    count++;
  }
  if (node_count != nullptr) *node_count = count;
  return Status::OK();
}

Status ShreddedStore::GetNode(uint64_t doc_id, Slice node_id,
                              std::string* record) {
  std::string key;
  EncodeNodeIdKey(doc_id, node_id, &key);
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, node_index_->Seek(key));
  if (!it.Valid() || it.key() != Slice(key))
    return Status::NotFound("no such node");
  Rid rid = Rid::Unpack(DecodeFixed64(it.value().data()));
  return records_->Get(rid, record);
}

ShreddedStore::Source::Source(ShreddedStore* store, uint64_t doc_id,
                              bool reseek_per_node)
    : reseek_per_node_(reseek_per_node), store_(store), doc_id_(doc_id) {}

Result<bool> ShreddedStore::Source::Next(XmlEvent* event) {
  if (finished_) return false;
  if (!started_) {
    started_ = true;
    std::string key;
    EncodeNodeIdKey(doc_id_, Slice(), &key);
    XDB_ASSIGN_OR_RETURN(it_, store_->node_index_->Seek(key));
    *event = XmlEvent();
    event->type = XmlEvent::Type::kStartDocument;
    return true;
  }

  // Emit pending node (deferred while ancestors were being closed).
  auto emit_pending_or_fetch = [&]() -> Result<bool> {
    if (has_pending_) {
      *event = pending_;
      cur_id_ = pending_id_;
      event->node_id = Slice(cur_id_);
      has_pending_ = false;
      if (event->type == XmlEvent::Type::kStartElement)
        open_elements_.push_back(cur_id_);
      return true;
    }
    return false;
  };

  for (;;) {
    // Fetch the next node from the index if none pending.
    if (!has_pending_ && !iter_done_) {
      if (!it_.Valid()) {
        iter_done_ = true;
      } else {
        uint64_t doc;
        Slice node_id;
        XDB_RETURN_NOT_OK(DecodeNodeIdKey(it_.key(), &doc, &node_id));
        if (doc != doc_id_) {
          iter_done_ = true;
        } else {
          Rid rid = Rid::Unpack(DecodeFixed64(it_.value().data()));
          XDB_RETURN_NOT_OK(store_->records_->Get(rid, &cur_record_));
          records_fetched_++;
          pending_ = XmlEvent();
          NodeKind kind;
          XDB_RETURN_NOT_OK(DecodeNodeRecord(cur_record_, &pending_, &kind));
          switch (kind) {
            case NodeKind::kElement:
              pending_.type = XmlEvent::Type::kStartElement;
              break;
            case NodeKind::kAttribute:
              pending_.type = XmlEvent::Type::kAttribute;
              break;
            case NodeKind::kNamespace:
              pending_.type = XmlEvent::Type::kNamespace;
              break;
            case NodeKind::kText:
              pending_.type = XmlEvent::Type::kText;
              break;
            case NodeKind::kComment:
              pending_.type = XmlEvent::Type::kComment;
              break;
            case NodeKind::kProcessingInstruction:
              pending_.type = XmlEvent::Type::kPi;
              break;
            default:
              return Status::Corruption("bad shredded node kind");
          }
          pending_id_ = node_id.ToString();
          // pending_.value views cur_record_, which stays alive until the
          // next fetch.
          has_pending_ = true;
          if (reseek_per_node_) {
            // Model the per-node join: a fresh root-to-leaf descent.
            std::string key = it_.key().ToString();
            XDB_ASSIGN_OR_RETURN(it_, store_->node_index_->Seek(key));
          }
          XDB_RETURN_NOT_OK(it_.Next());
        }
      }
    }

    // Close any open elements that are not ancestors of the pending node.
    if (!open_elements_.empty()) {
      bool close;
      if (!has_pending_) {
        close = true;
      } else {
        close = !nodeid::IsAncestor(Slice(open_elements_.back()),
                                    Slice(pending_id_));
      }
      if (close) {
        *event = XmlEvent();
        event->type = XmlEvent::Type::kEndElement;
        cur_id_ = open_elements_.back();
        event->node_id = Slice(cur_id_);
        open_elements_.pop_back();
        return true;
      }
    }

    XDB_ASSIGN_OR_RETURN(bool emitted, emit_pending_or_fetch());
    if (emitted) return true;
    if (iter_done_) {
      finished_ = true;
      *event = XmlEvent();
      event->type = XmlEvent::Type::kEndDocument;
      return true;
    }
  }
}

}  // namespace xdb
