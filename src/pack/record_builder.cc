#include "pack/record_builder.h"

#include <vector>

#include "common/coding.h"
#include "xml/node_id.h"

namespace xdb {

namespace {

struct Item {
  std::string rel_id;
  std::string bytes;  // serialized entry (empty if already a proxy)
  bool is_proxy = false;
};

struct Frame {
  NameId local = kEmptyNameId, ns_uri = kEmptyNameId, prefix = kEmptyNameId;
  std::string rel_id;
  std::string abs_id;
  uint32_t child_ordinal = 0;
  uint32_t child_count = 0;
  std::vector<Item> items;
  size_t bytes = 0;  // total serialized size of non-proxy items
};

struct NsBinding {
  NameId prefix, uri;
  size_t depth;
};

class Builder {
 public:
  Builder(const RecordBuilderOptions& options,
          const std::function<Status(PackedRecordOut&&)>& emit)
      : options_(options), emit_(emit) {}

  Status Run(Slice tokens);

 private:
  Frame& top() { return stack_.back(); }

  std::string NextChildId() {
    Frame& f = top();
    f.child_ordinal++;
    f.child_count++;
    return nodeid::ChildId(f.child_ordinal);
  }

  /// Appends a completed item to the innermost open frame and cuts a record
  /// if the frame's accumulated bytes exceed the budget.
  Status AddItem(std::string rel_id, std::string bytes) {
    Frame& f = top();
    f.bytes += bytes.size();
    f.items.push_back(Item{std::move(rel_id), std::move(bytes), false});
    if (f.bytes > options_.record_budget && stack_.size() > 1) {
      return FlushFrame(&f);
    }
    return Status::OK();
  }

  /// Packs the frame's completed (non-proxy) items into one record with the
  /// frame's element as context node, replacing them with proxies.
  Status FlushFrame(Frame* f) {
    PackedRecordOut out;
    RecordHeader header;
    header.context_node_id = Slice(f->abs_id);
    // Root path: element names from the root to (and including) the context.
    for (size_t i = 1; i < stack_.size(); i++) {
      header.root_path.push_back(
          {stack_[i].local, stack_[i].ns_uri});
    }
    // In-scope namespaces at the context node: innermost binding per prefix.
    for (auto it = ns_stack_.rbegin(); it != ns_stack_.rend(); ++it) {
      bool seen = false;
      for (const auto& [p, u] : header.namespaces) {
        (void)u;
        if (p == it->prefix) {
          seen = true;
          break;
        }
      }
      if (!seen) header.namespaces.emplace_back(it->prefix, it->uri);
    }
    uint32_t real = 0;
    for (const Item& item : f->items)
      if (!item.is_proxy) real++;
    if (real == 0) return Status::OK();  // nothing evictable
    header.subtree_count = real;
    AppendRecordHeader(header, &out.bytes);
    bool first = true;
    for (Item& item : f->items) {
      if (item.is_proxy) continue;
      if (first) {
        out.min_node_id = f->abs_id + item.rel_id;
        first = false;
      }
      out.bytes.append(item.bytes);
      item.bytes.clear();
      item.bytes.shrink_to_fit();
      item.is_proxy = true;
    }
    f->bytes = 0;
    return emit_(std::move(out));
  }

  Status CloseElement() {
    // Serialize the closing element (its remaining items inline, evicted
    // ones as proxies) and hand it to the parent frame.
    Frame f = std::move(top());
    stack_.pop_back();
    std::string children;
    for (const Item& item : f.items) {
      if (item.is_proxy) {
        packfmt::AppendProxy(&children, item.rel_id);
      } else {
        children.append(item.bytes);
      }
    }
    std::string entry;
    packfmt::AppendElement(&entry, f.rel_id, f.local, f.ns_uri, f.prefix,
                           f.child_count, children);
    while (!ns_stack_.empty() && ns_stack_.back().depth >= stack_.size() + 1)
      ns_stack_.pop_back();
    return AddItem(std::move(f.rel_id), std::move(entry));
  }

  const RecordBuilderOptions& options_;
  const std::function<Status(PackedRecordOut&&)>& emit_;
  std::vector<Frame> stack_;
  std::vector<NsBinding> ns_stack_;
};

Status Builder::Run(Slice tokens) {
  TokenReader reader(tokens);
  Token t;
  // Frame 0 is the document node (context id "", path empty).
  stack_.push_back(Frame{});

  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, reader.Next(&t));
    if (!more) break;
    switch (t.kind) {
      case TokenKind::kStartDocument:
      case TokenKind::kEndDocument:
        break;
      case TokenKind::kStartElement: {
        std::string rel = NextChildId();
        Frame f;
        f.local = t.local;
        f.ns_uri = t.ns_uri;
        f.prefix = t.prefix;
        f.abs_id = top().abs_id + rel;
        f.rel_id = std::move(rel);
        stack_.push_back(std::move(f));
        break;
      }
      case TokenKind::kEndElement:
        if (stack_.size() <= 1)
          return Status::Corruption("unbalanced token stream");
        XDB_RETURN_NOT_OK(CloseElement());
        break;
      case TokenKind::kNamespaceDecl: {
        std::string rel = NextChildId();
        std::string entry;
        packfmt::AppendNamespace(&entry, rel, t.local, t.ns_uri);
        ns_stack_.push_back(NsBinding{t.local, t.ns_uri, stack_.size()});
        XDB_RETURN_NOT_OK(AddItem(std::move(rel), std::move(entry)));
        break;
      }
      case TokenKind::kAttribute: {
        std::string rel = NextChildId();
        std::string entry;
        packfmt::AppendAttribute(&entry, rel, t.local, t.ns_uri, t.prefix,
                                 t.type, t.text);
        XDB_RETURN_NOT_OK(AddItem(std::move(rel), std::move(entry)));
        break;
      }
      case TokenKind::kText: {
        std::string rel = NextChildId();
        std::string entry;
        packfmt::AppendText(&entry, rel, t.type, t.text);
        XDB_RETURN_NOT_OK(AddItem(std::move(rel), std::move(entry)));
        break;
      }
      case TokenKind::kComment: {
        std::string rel = NextChildId();
        std::string entry;
        packfmt::AppendComment(&entry, rel, t.text);
        XDB_RETURN_NOT_OK(AddItem(std::move(rel), std::move(entry)));
        break;
      }
      case TokenKind::kProcessingInstruction: {
        std::string rel = NextChildId();
        std::string entry;
        packfmt::AppendPi(&entry, rel, t.local, t.text);
        XDB_RETURN_NOT_OK(AddItem(std::move(rel), std::move(entry)));
        break;
      }
    }
  }
  if (stack_.size() != 1)
    return Status::Corruption("token stream ended with open elements");
  // The document-level frame becomes the root record (never evicted, so a
  // lookup of the document root always succeeds).
  return FlushFrame(&top());
}

}  // namespace

Status RecordBuilder::Build(
    Slice tokens, const std::function<Status(PackedRecordOut&&)>& emit) {
  Builder builder(options_, emit);
  return builder.Run(tokens);
}

Result<std::vector<PackedRecordOut>> PackDocument(Slice tokens,
                                                  RecordBuilderOptions options) {
  std::vector<PackedRecordOut> records;
  RecordBuilder builder(options);
  XDB_RETURN_NOT_OK(builder.Build(tokens, [&](PackedRecordOut&& rec) {
    records.push_back(std::move(rec));
    return Status::OK();
  }));
  return records;
}

}  // namespace xdb
