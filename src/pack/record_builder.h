// RecordBuilder: streams a token stream into tree-packed records, bottom-up.
//
// "Assuming the tree is too big for one record, we pack a subtree or a
// sequence of subtrees into a separate record, in a bottom-up fashion. A
// packed subtree is represented using a proxy node in its containing record."
// (Section 3.1). "During tree construction, no separate trees of in-memory
// format are built. Rather, tree-packed records are generated from the
// bottom up in a streaming fashion." (Section 3.2).
//
// Grouping is size-based (the paper's contrast to Natix's split matrix): a
// record is cut whenever the accumulated completed-subtree bytes of the
// innermost open element exceed the record budget.
#ifndef XDB_PACK_RECORD_BUILDER_H_
#define XDB_PACK_RECORD_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "pack/packed_record.h"
#include "xml/token_stream.h"

namespace xdb {

struct RecordBuilderOptions {
  /// Soft cap on record payload bytes; the knob behind the paper's packing
  /// factor p. Records exceed it only when a single entry is itself larger.
  size_t record_budget = 3000;
};

struct PackedRecordOut {
  std::string min_node_id;  // minimum (document-order first) node ID inside
  std::string bytes;        // header + entries
};

class RecordBuilder {
 public:
  explicit RecordBuilder(RecordBuilderOptions options = {})
      : options_(options) {}

  /// Packs one document's token stream; emits records in bottom-up creation
  /// order (descendant records before the records that proxy them).
  Status Build(Slice tokens,
               const std::function<Status(PackedRecordOut&&)>& emit);

 private:
  RecordBuilderOptions options_;
};

/// Convenience wrapper collecting all records.
Result<std::vector<PackedRecordOut>> PackDocument(
    Slice tokens, RecordBuilderOptions options = {});

}  // namespace xdb

#endif  // XDB_PACK_RECORD_BUILDER_H_
