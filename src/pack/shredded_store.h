// ShreddedStore: the one-node-per-record baseline of Section 3.1's analysis.
//
// "This tree packing scheme makes sense in terms of performance when
// compared with the relational representation of one row per node (or
// edge)." Here every XDM node is stored as its own record and indexed with
// its own NodeID entry, so storage overhead is paid per node and traversal
// costs one index probe + record fetch per node — the (k-1)*t of the
// paper's cost model. Experiments E1/E2 measure this against tree packing.
#ifndef XDB_PACK_SHREDDED_STORE_H_
#define XDB_PACK_SHREDDED_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/slice.h"
#include "common/status.h"
#include "runtime/virtual_sax.h"
#include "storage/record_manager.h"

namespace xdb {

class ShreddedStore {
 public:
  ShreddedStore(RecordManager* records, BTree* node_index)
      : records_(records), node_index_(node_index) {}

  /// Stores one record and one index entry per node of the document.
  Status InsertDocument(uint64_t doc_id, Slice tokens, uint64_t* node_count);

  /// Fetches a single node's record by ID (one index probe + one fetch —
  /// the per-node "join" of the cost model).
  Status GetNode(uint64_t doc_id, Slice node_id, std::string* record);

  /// Document-order event stream: one index step + one record fetch per
  /// node.
  class Source : public XmlEventSource {
   public:
    /// `reseek_per_node` models the paper's cost model faithfully: each node
    /// costs a full index probe (the per-node "relational join" t), as a
    /// navigational one-row-per-node system would pay. When false, the
    /// source exploits the node-ID key order and scans the leaf level
    /// sequentially (the best case for shredded storage).
    Source(ShreddedStore* store, uint64_t doc_id,
           bool reseek_per_node = false);
    Result<bool> Next(XmlEvent* event) override;
    uint64_t records_fetched() const { return records_fetched_; }

   private:
    bool reseek_per_node_;
    ShreddedStore* store_;
    uint64_t doc_id_;
    BTree::Iterator it_;
    bool started_ = false;
    bool iter_done_ = false;
    bool finished_ = false;
    std::vector<std::string> open_elements_;  // ids of open elements
    std::string cur_id_;
    std::string cur_record_;
    uint64_t records_fetched_ = 0;
    // Decoded-but-not-yet-emitted node (held while closing elements).
    bool has_pending_ = false;
    XmlEvent pending_;
    std::string pending_id_;
  };

 private:
  friend class Source;
  RecordManager* records_;
  BTree* node_index_;
};

}  // namespace xdb

#endif  // XDB_PACK_SHREDDED_STORE_H_
