#include "repl/wal_shipper.h"

#include <algorithm>
#include <string>

#include "repl/wal_segment.h"

namespace xdb {
namespace repl {

WalShipper::WalShipper(Engine* primary, ShipTransport* transport,
                       const ShipperOptions& options)
    : engine_(primary),
      wal_(primary->wal()),
      transport_(transport),
      options_(options) {
  obs::MetricsRegistry* m = engine_->metrics();
  segments_ = m->AddCounter("repl.ship.segments");
  bytes_ = m->AddCounter("repl.ship.bytes");
  records_ = m->AddCounter("repl.ship.records");
  resyncs_ = m->AddCounter("repl.ship.resyncs");
  lag_bytes_ = m->AddGauge("repl.ship.lag_bytes");
  if (wal_ != nullptr) {
    last_gen_.store(wal_->reset_generation(), std::memory_order_release);
    wal_->set_retain_hook(
        [this](uint64_t gen) { return RetainFloor(gen); });
  }
}

WalShipper::~WalShipper() {
  if (wal_ != nullptr) wal_->set_retain_hook(nullptr);
}

uint64_t WalShipper::RetainFloor(uint64_t wal_gen) const {
  // An unfolded reset means pos_/stream_base_ still describe the previous
  // log: comparing them against the current log's size would let a second
  // checkpoint truncate unshipped bytes (they would silently vanish from
  // the stream). Refuse until ShipOnce rebases into this generation.
  if (wal_gen != last_gen_.load(std::memory_order_acquire)) return 0;
  const uint64_t base = stream_base_.load(std::memory_order_acquire);
  const uint64_t acked = transport_->acked_upto();
  const uint64_t acked_local = acked > base ? acked - base : 0;
  return std::min(pos_.load(std::memory_order_acquire), acked_local);
}

Result<bool> WalShipper::ShipOnce() {
  if (wal_ == nullptr)
    return Status::NotSupported("primary has no WAL to ship");

  // Fold a checkpoint truncation into the stream base first, so every CSN
  // computed below uses the current epoch. Retention guarantees the
  // truncated log was fully shipped and acked, so pos_ == old size and the
  // fold is exact.
  uint64_t gen = wal_->reset_generation();
  if (gen != last_gen_.load(std::memory_order_acquire)) {
    stream_base_.fetch_add(pos_.exchange(0, std::memory_order_acq_rel),
                           std::memory_order_acq_rel);
    // Published last (release): the retention hook treats a matching
    // generation as "the fold for it is complete".
    last_gen_.store(gen, std::memory_order_release);
  }

  uint64_t resync_from = 0;
  if (transport_->TakeResyncRequest(&resync_from)) {
    resyncs_->Add(1);
    const uint64_t base = stream_base_.load(std::memory_order_acquire);
    if (resync_from < base) {
      // Those stream bytes were truncated away before this replica asked.
      // Unreachable for a continuously attached replica (retention pins the
      // log down to its ack); a brand-new replica joining a long-lived
      // primary hits it and must bootstrap from a base image instead.
      return Status::NotFound(
          "resync CSN " + std::to_string(resync_from) +
          " is below the retained stream base " + std::to_string(base) +
          "; bootstrap the replica from a base image");
    }
    pos_.store(std::min(resync_from - base, wal_->size()),
               std::memory_order_release);
  }

  // Group-commit so everything appended so far becomes durable — the
  // shipper never ships bytes a primary crash could still rewrite.
  XDB_RETURN_NOT_OK(wal_->Commit());

  const uint64_t from = pos_.load(std::memory_order_acquire);
  std::string payload;
  uint64_t end = from;
  uint32_t count = 0;
  // kCorruption here is damage inside the already-synced region of the
  // primary's own WAL: stall (and keep stalling) rather than ship it.
  XDB_RETURN_NOT_OK(
      wal_->ReadDurable(from, options_.max_segment_bytes, &payload, &end,
                        &count));

  // A checkpoint may have truncated the log between the fold above and the
  // read; the bytes just read belong to the new epoch at wrong offsets.
  // Drop them and let the next call re-fold and re-read.
  if (wal_->reset_generation() != last_gen_.load(std::memory_order_acquire))
    return false;

  const uint64_t base = stream_base_.load(std::memory_order_acquire);
  if (payload.empty()) {
    lag_bytes_->Set(static_cast<int64_t>(
        base + from - std::min(base + from, transport_->acked_upto())));
    return false;
  }

  WalSegment seg;
  seg.stream_offset = base + from;
  seg.wal_gen = gen;
  seg.record_count = count;
  seg.payload = std::move(payload);
  std::string encoded;
  EncodeSegment(seg, &encoded);

  IoClock* clock = options_.clock != nullptr ? options_.clock
                                             : IoClock::Default();
  XDB_RETURN_NOT_OK(RetryTransient(
      options_.retry, clock, nullptr, engine_->events(), "repl.ship",
      [&] { return transport_->Ship(encoded); }));

  pos_.store(end, std::memory_order_release);
  segments_->Add(1);
  bytes_->Add(seg.payload.size());
  records_->Add(count);
  const uint64_t shipped = base + end;
  lag_bytes_->Set(static_cast<int64_t>(
      shipped - std::min(shipped, transport_->acked_upto())));
  return true;
}

Status WalShipper::ShipAll() {
  while (true) {
    XDB_ASSIGN_OR_RETURN(bool sent, ShipOnce());
    if (!sent) return Status::OK();
  }
}

}  // namespace repl
}  // namespace xdb
