#include "repl/ship_transport.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "testing/fault_injector.h"

namespace xdb {
namespace repl {

namespace {

/// One injector consult per delivery attempt (the no-injector case is a
/// single atomic load).
testing::ShipFault NextFault() {
  testing::FaultInjector* fi = testing::FaultInjector::active();
  if (fi == nullptr) return {};
  return fi->OnShip();
}

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%08llu",
                static_cast<unsigned long long>(seq));
  return dir + "/" + buf;
}

}  // namespace

// ---------------------------------------------------------------- in-process

Status InProcessTransport::Ship(const std::string& encoded) {
  const testing::ShipFault f = NextFault();
  MutexLock lock(mu_);
  switch (f.action) {
    case testing::NetFaultAction::kError:
      return Status::TransientIOError("injected ship failure");
    case testing::NetFaultAction::kDrop:
      // Claims success; the segment evaporates. The applier's continuity
      // check sees the gap and resyncs.
      return Status::OK();
    case testing::NetFaultAction::kReorder:
      if (has_held_) queue_.push_back(std::move(held_));
      held_ = encoded;
      has_held_ = true;
      return Status::OK();
    case testing::NetFaultAction::kTruncate:
      queue_.push_back(encoded.substr(
          0, std::min<size_t>(f.truncate_len, encoded.size())));
      break;
    case testing::NetFaultAction::kDuplicate:
      queue_.push_back(encoded);
      queue_.push_back(encoded);
      break;
    case testing::NetFaultAction::kDeliver:
      queue_.push_back(encoded);
      break;
  }
  if (has_held_) {
    // A previously reordered segment arrives after the one just delivered.
    queue_.push_back(std::move(held_));
    held_.clear();
    has_held_ = false;
  }
  return Status::OK();
}

Result<bool> InProcessTransport::Receive(std::string* encoded) {
  MutexLock lock(mu_);
  if (queue_.empty()) return false;
  *encoded = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void InProcessTransport::RequestResync(uint64_t from_csn) {
  MutexLock lock(mu_);
  // Everything still queued predates the request and cannot advance the
  // replica (it just declared applied < all of it, or corrupt delivery).
  queue_.clear();
  held_.clear();
  has_held_ = false;
  resync_pending_ = true;
  resync_from_ = from_csn;
}

bool InProcessTransport::TakeResyncRequest(uint64_t* from_csn) {
  MutexLock lock(mu_);
  if (!resync_pending_) return false;
  *from_csn = resync_from_;
  resync_pending_ = false;
  return true;
}

size_t InProcessTransport::pending() const {
  MutexLock lock(mu_);
  return queue_.size() + (has_held_ ? 1 : 0);
}

// --------------------------------------------------------------- file spool

Result<std::unique_ptr<FileTransport>> FileTransport::Open(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr)
    return Status::IOError("cannot open spool directory " + dir);
  uint64_t next = 0;
  while (struct dirent* e = ::readdir(d)) {
    unsigned long long seq = 0;
    if (std::sscanf(e->d_name, "seg-%llu", &seq) == 1)
      next = std::max<uint64_t>(next, seq + 1);
  }
  ::closedir(d);
  auto t = std::unique_ptr<FileTransport>(new FileTransport(dir));
  MutexLock lock(t->mu_);
  t->next_write_ = next;
  t->next_read_ = 0;  // a fresh reader starts at genesis
  return t;
}

Status FileTransport::WriteSegmentFile(uint64_t seq, Slice bytes) {
  const std::string path = SegmentPath(dir_, seq);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IOError("short segment write");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return Status::IOError("cannot rename segment into place");
  return Status::OK();
}

Status FileTransport::Ship(const std::string& encoded) {
  const testing::ShipFault f = NextFault();
  MutexLock lock(mu_);
  switch (f.action) {
    case testing::NetFaultAction::kError:
      return Status::TransientIOError("injected ship failure");
    case testing::NetFaultAction::kDrop:
      // The sequence number is consumed but no file appears; Receive()
      // skips the hole (a hole in an otherwise-advancing spool is loss).
      next_write_++;
      return Status::OK();
    case testing::NetFaultAction::kReorder:
      if (has_held_) {
        XDB_RETURN_NOT_OK(WriteSegmentFile(next_write_, held_));
        next_write_++;
      }
      held_ = encoded;
      has_held_ = true;
      return Status::OK();
    case testing::NetFaultAction::kTruncate: {
      Slice prefix(encoded.data(),
                   std::min<size_t>(f.truncate_len, encoded.size()));
      XDB_RETURN_NOT_OK(WriteSegmentFile(next_write_, prefix));
      next_write_++;
      break;
    }
    case testing::NetFaultAction::kDuplicate:
      XDB_RETURN_NOT_OK(WriteSegmentFile(next_write_, encoded));
      next_write_++;
      XDB_RETURN_NOT_OK(WriteSegmentFile(next_write_, encoded));
      next_write_++;
      break;
    case testing::NetFaultAction::kDeliver:
      XDB_RETURN_NOT_OK(WriteSegmentFile(next_write_, encoded));
      next_write_++;
      break;
  }
  if (has_held_) {
    Status s = WriteSegmentFile(next_write_, held_);
    held_.clear();
    has_held_ = false;
    if (!s.ok()) return s;
    next_write_++;
  }
  return Status::OK();
}

Result<bool> FileTransport::Receive(std::string* encoded) {
  MutexLock lock(mu_);
  while (next_read_ < next_write_) {
    std::ifstream in(SegmentPath(dir_, next_read_), std::ios::binary);
    if (!in) {
      next_read_++;  // a dropped segment left a hole; skip it
      continue;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    next_read_++;
    *encoded = std::move(bytes);
    return true;
  }
  return false;
}

void FileTransport::RequestResync(uint64_t from_csn) {
  MutexLock lock(mu_);
  next_read_ = next_write_;  // pending spool files are stale; skip them
  held_.clear();
  has_held_ = false;
  resync_pending_ = true;
  resync_from_ = from_csn;
}

bool FileTransport::TakeResyncRequest(uint64_t* from_csn) {
  MutexLock lock(mu_);
  if (!resync_pending_) return false;
  *from_csn = resync_from_;
  resync_pending_ = false;
  return true;
}

uint64_t FileTransport::next_write_seq() const {
  MutexLock lock(mu_);
  return next_write_;
}

}  // namespace repl
}  // namespace xdb
