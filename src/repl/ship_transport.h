// ShipTransport: the pluggable channel between a WalShipper (primary side)
// and a ReplicaApplier (replica side).
//
// The engine deliberately does not open sockets; a transport is any ordered,
// lossy-in-interesting-ways byte channel. Two implementations ship here:
//
//  * InProcessTransport — a bounded in-memory queue, the unit-test and
//    single-process-failover workhorse.
//  * FileTransport — a spool directory of numbered segment files written
//    with temp+rename, modeling log shipping over a shared filesystem. The
//    spool retains every segment since genesis, so a replica can also be
//    bootstrapped by replaying the spool from the start.
//
// Both consult the process FaultInjector (kShipTransport / kNetworkError)
// per delivery attempt, so tests can drop, duplicate, reorder and truncate
// segments deterministically. Delivery faults are *transient* from the
// shipper's point of view: Ship() failures are retried with backoff, and
// anything that slips through (a dropped or mangled segment) is healed by
// the applier's continuity check + resync request.
#ifndef XDB_REPL_SHIP_TRANSPORT_H_
#define XDB_REPL_SHIP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace xdb {
namespace repl {

class ShipTransport {
 public:
  virtual ~ShipTransport() = default;

  /// Primary side: deliver one encoded segment. A transient failure means
  /// "retry me"; the shipper wraps Ship() in RetryTransient. A transport may
  /// also claim success and deliver nothing (network loss) — that is the
  /// applier's gap detection's job, not the shipper's.
  virtual Status Ship(const std::string& encoded) = 0;

  /// Replica side: pops the next delivered segment into *encoded. Returns
  /// false (and leaves *encoded alone) when nothing is pending.
  virtual Result<bool> Receive(std::string* encoded) = 0;

  /// Replica side: asks the primary to restart shipping at `from_csn`.
  /// Undelivered segments queued ahead of the request are discarded — they
  /// are stale by construction (the replica just declared it cannot use
  /// them).
  virtual void RequestResync(uint64_t from_csn) = 0;

  /// Primary side: consumes a pending resync request, if any.
  virtual bool TakeResyncRequest(uint64_t* from_csn) = 0;

  /// Replica side: publishes the replica's durably-applied stream CSN.
  /// The shipper's WAL retention hook reads it back via acked_upto(): the
  /// primary may only truncate WAL bytes the replica has acknowledged.
  virtual void AckApplied(uint64_t csn) = 0;
  virtual uint64_t acked_upto() const = 0;
};

/// In-memory FIFO of encoded segments. Thread-safe; both endpoints live in
/// one process (tests, single-process failover drills).
class InProcessTransport : public ShipTransport {
 public:
  InProcessTransport() = default;

  Status Ship(const std::string& encoded) override XDB_EXCLUDES(mu_);
  Result<bool> Receive(std::string* encoded) override XDB_EXCLUDES(mu_);
  void RequestResync(uint64_t from_csn) override XDB_EXCLUDES(mu_);
  bool TakeResyncRequest(uint64_t* from_csn) override XDB_EXCLUDES(mu_);
  void AckApplied(uint64_t csn) override {
    acked_.store(csn, std::memory_order_release);
  }
  uint64_t acked_upto() const override {
    return acked_.load(std::memory_order_acquire);
  }

  /// Segments currently queued (test visibility).
  size_t pending() const XDB_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{LockRank::kShipTransport};
  std::deque<std::string> queue_ XDB_GUARDED_BY(mu_);
  /// A segment held back by an injected reorder; delivered after the next.
  std::string held_ XDB_GUARDED_BY(mu_);
  bool has_held_ XDB_GUARDED_BY(mu_) = false;
  bool resync_pending_ XDB_GUARDED_BY(mu_) = false;
  uint64_t resync_from_ XDB_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> acked_{0};
};

/// Spool-directory transport: segment N lands at `<dir>/seg-<N>` via
/// temp+rename (a reader never sees a half-written file). The spool is
/// append-only — consumed segments stay on disk — so it doubles as a
/// shipping archive. Receive() tracks its own read cursor; a fresh
/// FileTransport over an existing spool starts reading from genesis.
class FileTransport : public ShipTransport {
 public:
  /// `dir` must already exist.
  static Result<std::unique_ptr<FileTransport>> Open(const std::string& dir);

  Status Ship(const std::string& encoded) override XDB_EXCLUDES(mu_);
  Result<bool> Receive(std::string* encoded) override XDB_EXCLUDES(mu_);
  void RequestResync(uint64_t from_csn) override XDB_EXCLUDES(mu_);
  bool TakeResyncRequest(uint64_t* from_csn) override XDB_EXCLUDES(mu_);
  void AckApplied(uint64_t csn) override {
    acked_.store(csn, std::memory_order_release);
  }
  uint64_t acked_upto() const override {
    return acked_.load(std::memory_order_acquire);
  }

  uint64_t next_write_seq() const XDB_EXCLUDES(mu_);

 private:
  explicit FileTransport(std::string dir) : dir_(std::move(dir)) {}

  Status WriteSegmentFile(uint64_t seq, Slice bytes) XDB_REQUIRES(mu_);

  const std::string dir_;
  mutable Mutex mu_{LockRank::kShipTransport};
  uint64_t next_write_ XDB_GUARDED_BY(mu_) = 0;
  uint64_t next_read_ XDB_GUARDED_BY(mu_) = 0;
  std::string held_ XDB_GUARDED_BY(mu_);
  bool has_held_ XDB_GUARDED_BY(mu_) = false;
  bool resync_pending_ XDB_GUARDED_BY(mu_) = false;
  uint64_t resync_from_ XDB_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> acked_{0};
};

}  // namespace repl
}  // namespace xdb

#endif  // XDB_REPL_SHIP_TRANSPORT_H_
