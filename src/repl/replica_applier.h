// ReplicaApplier: the replica-side half of WAL-shipping replication.
//
// The applier drains segments off a ShipTransport and drives a read-only
// replica Engine through Engine::ApplyReplicatedRecords — the same redo
// switch crash recovery uses — publishing the applied-CSN watermark that
// gates freshness-bounded queries (QueryOptions::min_csn).
//
// Every seam is defended:
//  * Corrupt segment (bad magic / CRC / truncated): counted, dropped, and
//    the stream is re-requested from the replica's applied watermark. The
//    replica never applies damaged bytes — segment CRC first, then each
//    WAL record's own CRC inside the apply path.
//  * Duplicate segment (end <= applied): counted, skipped, re-acked.
//  * Gap (offset > applied, e.g. a dropped delivery): counted, resync
//    requested, kReplicaStalled emitted; kReplicaCaughtUp when the stream
//    knits back together.
//  * Crash mid-apply: ApplyReplicatedRecords lands bytes in the replica's
//    own WAL before applying, so reopen replays them and the watermark
//    (catalog replica_wal_base + local WAL length) is exact or an
//    undercount — never an overcount, so re-shipped segments are skipped
//    as duplicates or re-applied idempotently.
//
// Promotion (Promote()) runs the engine's full Scrub + checkpoint pass and
// lifts the read-only gate; a promoted engine refuses further segments.
#ifndef XDB_REPL_REPLICA_APPLIER_H_
#define XDB_REPL_REPLICA_APPLIER_H_

#include <cstdint>
#include <memory>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "repl/ship_transport.h"

namespace xdb {
namespace repl {

struct ApplierOptions {
  /// Checkpoint the replica after this many applied payload bytes, folding
  /// its local WAL into table spaces and truncating it (0 = never; the
  /// local WAL then grows until someone checkpoints the engine directly).
  uint64_t checkpoint_every_bytes = 8 * 1024 * 1024;
};

class ReplicaApplier {
 public:
  /// `replica` must have been opened with EngineOptions::replica = true.
  static Result<std::unique_ptr<ReplicaApplier>> Attach(
      Engine* replica, ShipTransport* transport,
      const ApplierOptions& options = {});

  /// Consumes at most one pending segment (apply, duplicate-skip, or
  /// resync-request — all count as consuming). Returns false when the
  /// transport has nothing pending. Transport-level damage is healed
  /// internally and is NOT an error; only local failures (replica media
  /// damage, applying to a promoted engine) surface as statuses.
  Result<bool> ApplyOnce();

  /// Drains every pending segment.
  Status CatchUp();

  /// The replica engine's published watermark.
  uint64_t applied_csn() const { return engine_->applied_csn(); }

  /// Scrub + checkpoint + lift the read-only gate. See Engine::Promote().
  Status Promote() { return engine_->Promote(); }

 private:
  ReplicaApplier(Engine* replica, ShipTransport* transport,
                 const ApplierOptions& options);

  Engine* const engine_;
  ShipTransport* const transport_;
  const ApplierOptions options_;

  /// True between a detected break (gap/corruption) and the next applied
  /// segment; edges emit kReplicaStalled / kReplicaCaughtUp.
  bool stalled_ = false;
  uint64_t applied_since_checkpoint_ = 0;

  obs::Counter* segments_ = nullptr;
  obs::Counter* records_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* duplicates_ = nullptr;
  obs::Counter* gaps_ = nullptr;
  obs::Counter* corrupt_segments_ = nullptr;
  obs::Gauge* csn_gauge_ = nullptr;
};

}  // namespace repl
}  // namespace xdb

#endif  // XDB_REPL_REPLICA_APPLIER_H_
