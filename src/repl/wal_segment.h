// WalSegment: the unit of WAL shipping. A segment is a checksummed envelope
// around a run of already-framed WAL records read off the primary's log by
// WalShipper and applied on a replica by ReplicaApplier.
//
// Stream positions are *CSNs*: byte offsets in the logical replication
// stream, which keeps growing across primary WAL truncations (the shipper
// folds each truncated log's length into a stream base). A segment covers
// stream bytes [stream_offset, stream_offset + payload.size()), so the
// replica's continuity check is pure arithmetic on its applied watermark.
#ifndef XDB_REPL_WAL_SEGMENT_H_
#define XDB_REPL_WAL_SEGMENT_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace xdb {
namespace repl {

struct WalSegment {
  /// Stream CSN of the first payload byte.
  uint64_t stream_offset = 0;
  /// The primary WAL's reset_generation when the payload was read.
  /// Diagnostic only — continuity is decided by stream_offset.
  uint64_t wal_gen = 0;
  /// Whole WAL records in the payload.
  uint32_t record_count = 0;
  /// Framed WAL record bytes exactly as they sit in the primary's log.
  std::string payload;

  /// Stream CSN one past the last payload byte — the replica's applied
  /// watermark after this segment lands.
  uint64_t end_csn() const { return stream_offset + payload.size(); }
};

/// Appends the wire form of `seg` to `out`: a fixed header (magic, stream
/// offset, generation, record count, payload length, payload CRC) followed
/// by the payload. The CRC covers the payload only; header fields are
/// cross-checked against it at decode time.
void EncodeSegment(const WalSegment& seg, std::string* out);

/// Parses one encoded segment. Any damage — short buffer, bad magic,
/// length mismatch, CRC mismatch — is kCorruption: the applier treats a
/// corrupt segment as lost in transit and re-requests from its watermark.
Result<WalSegment> DecodeSegment(Slice in);

/// Bytes EncodeSegment adds before the payload.
constexpr size_t kSegmentHeaderSize = 4 + 8 + 8 + 4 + 4 + 4;

}  // namespace repl
}  // namespace xdb

#endif  // XDB_REPL_WAL_SEGMENT_H_
