#include "repl/wal_segment.h"

#include "common/coding.h"

namespace xdb {
namespace repl {

namespace {
constexpr uint32_t kSegmentMagic = 0x58534547;  // "XSEG"
}  // namespace

void EncodeSegment(const WalSegment& seg, std::string* out) {
  PutFixed32(out, kSegmentMagic);
  PutFixed64(out, seg.stream_offset);
  PutFixed64(out, seg.wal_gen);
  PutFixed32(out, seg.record_count);
  PutFixed32(out, static_cast<uint32_t>(seg.payload.size()));
  PutFixed32(out, Crc32(seg.payload.data(), seg.payload.size()));
  out->append(seg.payload);
}

Result<WalSegment> DecodeSegment(Slice in) {
  if (in.size() < kSegmentHeaderSize)
    return Status::Corruption("segment shorter than its header");
  if (DecodeFixed32(in.data()) != kSegmentMagic)
    return Status::Corruption("bad segment magic");
  WalSegment seg;
  seg.stream_offset = DecodeFixed64(in.data() + 4);
  seg.wal_gen = DecodeFixed64(in.data() + 12);
  seg.record_count = DecodeFixed32(in.data() + 20);
  const uint32_t payload_len = DecodeFixed32(in.data() + 24);
  const uint32_t payload_crc = DecodeFixed32(in.data() + 28);
  if (in.size() != kSegmentHeaderSize + payload_len)
    return Status::Corruption("segment length mismatch");
  seg.payload.assign(in.data() + kSegmentHeaderSize, payload_len);
  if (Crc32(seg.payload.data(), seg.payload.size()) != payload_crc)
    return Status::Corruption("segment payload CRC mismatch");
  return seg;
}

}  // namespace repl
}  // namespace xdb
