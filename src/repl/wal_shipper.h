// WalShipper: the primary-side half of WAL-shipping replication.
//
// The shipper tails the primary's WAL — only its *durable* prefix, via
// WalLog::ReadDurable — packages runs of framed records into checksummed
// WalSegments, and hands them to a ShipTransport, retrying transient
// delivery failures with the same bounded-backoff policy the storage stack
// uses for physical I/O.
//
// Stream accounting. LSNs restart at zero every time a checkpoint truncates
// the WAL, so the shipper maintains a *stream base*: the stream CSN of local
// WAL byte 0. shipped CSN = base + local position. When it observes a
// reset-generation bump it folds the old log's length into the base — which
// is safe exactly because of retention: the shipper installs a WAL retain
// hook, so MaybeReset() refuses to truncate while any byte is unshipped or
// unacknowledged by the replica. A truncation therefore implies
// pos == old size, and the fold is exact. The hook is generation-aware: it
// refuses any further truncation until ShipOnce has folded the previous one,
// so a second checkpoint arriving before the next ShipOnce can never compare
// the stale pre-fold position against the new log and drop unshipped bytes.
//
// Failure handling:
//  * Transient Ship() failures: RetryTransient (backoff + jitter).
//  * Replica resync request: rewind the local position to the requested
//    CSN and re-ship; duplicates are the applier's job to skip.
//  * Resync below the stream base: the bytes were truncated before the
//    replica existed — kNotFound ("bootstrap from a base image", see
//    DESIGN.md; retention makes this unreachable for an attached replica).
//  * CRC damage inside the durable WAL region: primary media damage. The
//    shipper stalls with kCorruption rather than shipping damaged bytes.
#ifndef XDB_REPL_WAL_SHIPPER_H_
#define XDB_REPL_WAL_SHIPPER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "repl/ship_transport.h"
#include "storage/io_retry.h"

namespace xdb {
namespace repl {

struct ShipperOptions {
  /// Soft cap on a segment's payload; one oversized record still ships
  /// alone (ReadDurable always makes progress).
  size_t max_segment_bytes = 256 * 1024;
  /// Backoff for transient transport failures.
  RetryPolicy retry;
  /// Sleep source for the backoff (null = real clock).
  IoClock* clock = nullptr;
};

class WalShipper {
 public:
  /// `primary` must have a WAL (not in-memory, enable_wal). The shipper
  /// installs the WAL retention hook on construction and removes it on
  /// destruction; at most one shipper per engine.
  WalShipper(Engine* primary, ShipTransport* transport,
             const ShipperOptions& options = {});
  ~WalShipper();
  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Ships at most one segment. Returns true when a segment went out,
  /// false when the replica is caught up with the durable log. Commits the
  /// WAL first so freshly appended records become durable and shippable.
  Result<bool> ShipOnce();

  /// ShipOnce until caught up.
  Status ShipAll();

  /// Stream CSN one past the last shipped byte.
  uint64_t shipped_csn() const {
    return stream_base_.load(std::memory_order_acquire) +
           pos_.load(std::memory_order_acquire);
  }

 private:
  /// Lowest local LSN still needed: min(unshipped, unacked), or 0 when
  /// `wal_gen` (the log's current reset generation, supplied by MaybeReset)
  /// differs from the last generation ShipOnce folded — then pos_ and
  /// stream_base_ are still in the previous epoch's coordinates and no
  /// truncation is safe until the fold runs. Runs under the WAL's mutex —
  /// reads only atomics, never calls back into the log.
  uint64_t RetainFloor(uint64_t wal_gen) const;

  Engine* const engine_;
  WalLog* const wal_;
  ShipTransport* const transport_;
  const ShipperOptions options_;

  /// Next local WAL LSN to ship.
  std::atomic<uint64_t> pos_{0};
  /// Stream CSN of local WAL byte 0.
  std::atomic<uint64_t> stream_base_{0};
  /// Last WAL reset generation folded into stream_base_. Written by ShipOnce
  /// (release, after the fold) and read by the retention hook on the
  /// checkpointing thread (acquire), so a matching generation implies the
  /// fold for it completed and pos_ is in this epoch's coordinates.
  std::atomic<uint64_t> last_gen_{0};

  obs::Counter* segments_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* records_ = nullptr;
  obs::Counter* resyncs_ = nullptr;
  obs::Gauge* lag_bytes_ = nullptr;
};

}  // namespace repl
}  // namespace xdb

#endif  // XDB_REPL_WAL_SHIPPER_H_
