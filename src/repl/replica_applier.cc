#include "repl/replica_applier.h"

#include <string>
#include <utility>

#include "repl/wal_segment.h"

namespace xdb {
namespace repl {

Result<std::unique_ptr<ReplicaApplier>> ReplicaApplier::Attach(
    Engine* replica, ShipTransport* transport, const ApplierOptions& options) {
  if (!replica->is_replica())
    return Status::InvalidArgument(
        "applier needs an engine opened with EngineOptions::replica");
  auto applier = std::unique_ptr<ReplicaApplier>(
      new ReplicaApplier(replica, transport, options));
  // A replica resuming after a restart re-announces its watermark so the
  // shipper's retention floor and lag gauge start correct.
  transport->AckApplied(replica->applied_csn());
  return applier;
}

ReplicaApplier::ReplicaApplier(Engine* replica, ShipTransport* transport,
                               const ApplierOptions& options)
    : engine_(replica), transport_(transport), options_(options) {
  obs::MetricsRegistry* m = engine_->metrics();
  segments_ = m->AddCounter("repl.apply.segments");
  records_ = m->AddCounter("repl.apply.records");
  bytes_ = m->AddCounter("repl.apply.bytes");
  duplicates_ = m->AddCounter("repl.apply.duplicates");
  gaps_ = m->AddCounter("repl.apply.gaps");
  corrupt_segments_ = m->AddCounter("repl.apply.corrupt_segments");
  csn_gauge_ = m->AddGauge("repl.apply.csn");
  csn_gauge_->Set(static_cast<int64_t>(engine_->applied_csn()));
}

Result<bool> ReplicaApplier::ApplyOnce() {
  std::string encoded;
  XDB_ASSIGN_OR_RETURN(bool got, transport_->Receive(&encoded));
  if (!got) return false;

  const uint64_t applied = engine_->applied_csn();

  Result<WalSegment> decoded = DecodeSegment(encoded);
  if (!decoded.ok()) {
    // Mangled in transit (or spooled through damaged media). Drop it and
    // pull the stream back to our watermark; the shipper re-reads those
    // bytes from its WAL, so one intact copy eventually arrives.
    corrupt_segments_->Add(1);
    transport_->RequestResync(applied);
    if (!stalled_) {
      stalled_ = true;
      engine_->events()->Emit(obs::EventKind::kReplicaStalled, applied, 0,
                              "repl: corrupt segment, resync requested");
    }
    return true;
  }
  WalSegment seg = decoded.MoveValue();

  if (seg.end_csn() <= applied) {
    // Re-shipped after a resync, a duplicated delivery, or our own ack was
    // lost. Already durably applied — skip, but re-ack so the primary's
    // retention floor advances.
    duplicates_->Add(1);
    transport_->AckApplied(applied);
    return true;
  }

  if (seg.stream_offset != applied) {
    // A hole (dropped or reordered delivery), or a segment straddling our
    // watermark (possible only after delivery-layer truncation games).
    // Either way these bytes cannot extend the stream: re-request from the
    // watermark.
    gaps_->Add(1);
    transport_->RequestResync(applied);
    if (!stalled_) {
      stalled_ = true;
      engine_->events()->Emit(obs::EventKind::kReplicaStalled, applied,
                              seg.stream_offset,
                              "repl: stream gap, resync requested");
    }
    return true;
  }

  // Contiguous: land it. Local media damage or a promoted engine surface
  // here as real errors — those are *this* node's problems, not the
  // stream's.
  WalReplayInfo info;
  XDB_RETURN_NOT_OK(
      engine_->ApplyReplicatedRecords(seg.payload, seg.end_csn(), &info));

  segments_->Add(1);
  records_->Add(info.records_replayed);
  bytes_->Add(seg.payload.size());
  csn_gauge_->Set(static_cast<int64_t>(seg.end_csn()));
  transport_->AckApplied(seg.end_csn());
  if (stalled_) {
    stalled_ = false;
    engine_->events()->Emit(obs::EventKind::kReplicaCaughtUp, seg.end_csn(),
                            0, "repl: stream resumed");
  }

  applied_since_checkpoint_ += seg.payload.size();
  if (options_.checkpoint_every_bytes > 0 &&
      applied_since_checkpoint_ >= options_.checkpoint_every_bytes) {
    applied_since_checkpoint_ = 0;
    XDB_RETURN_NOT_OK(engine_->Checkpoint());
  }
  return true;
}

Status ReplicaApplier::CatchUp() {
  while (true) {
    XDB_ASSIGN_OR_RETURN(bool consumed, ApplyOnce());
    if (!consumed) return Status::OK();
  }
}

}  // namespace repl
}  // namespace xdb
