#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace xdb {
namespace util {

thread_local int ThreadPool::pool_thread_index_ = -1;

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++)
    threads_.emplace_back([this, i] { WorkerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
  // Workers exit as soon as they observe stop_, possibly leaving queued
  // tasks behind; run them here so any Latch they count down is released.
  for (auto& w : workers_) {
    MutexLock lock(w->mu);
    while (!w->queue.empty()) {
      std::function<void()> fn = std::move(w->queue.front());
      w->queue.pop_front();
      fn();
    }
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    fn();
    return;
  }
  size_t idx = pool_thread_index_ >= 0
                   ? static_cast<size_t>(pool_thread_index_)
                   : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                         workers_.size();
  if (idx >= workers_.size()) idx = 0;  // a worker of some *other* pool
  // Count the task before publishing it: a worker may pop it the instant the
  // queue lock drops, and its fetch_sub must never observe pending_ == 0 (the
  // transient wrap to ~2^64 would keep idle workers spinning).
  pending_.fetch_add(1, std::memory_order_release);
  {
    MutexLock lock(workers_[idx]->mu);
    workers_[idx]->queue.push_back(std::move(fn));
  }
  MutexLock lock(idle_mu_);
  idle_cv_.NotifyOne();
}

bool ThreadPool::TryRunOne(size_t self) {
  std::function<void()> fn;
  {
    // Own deque first, newest task first (LIFO keeps the working set warm).
    MutexLock lock(workers_[self]->mu);
    if (!workers_[self]->queue.empty()) {
      fn = std::move(workers_[self]->queue.back());
      workers_[self]->queue.pop_back();
    }
  }
  if (!fn) {
    // Steal oldest-first from the other workers, scanning round-robin from
    // our right neighbour so victims spread instead of piling on worker 0.
    for (size_t k = 1; k < workers_.size() && !fn; k++) {
      Worker& victim = *workers_[(self + k) % workers_.size()];
      MutexLock lock(victim.mu);
      if (!victim.queue.empty()) {
        fn = std::move(victim.queue.front());
        victim.queue.pop_front();
      }
    }
  }
  if (!fn) return false;
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  fn();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  pool_thread_index_ = static_cast<int>(self);
  for (;;) {
    if (TryRunOne(self)) continue;
    MutexLock lock(idle_mu_);
    if (stop_) return;
    if (pending_.load(std::memory_order_acquire) == 0) idle_cv_.Wait(lock);
  }
}

void ThreadPool::ParallelFor(size_t n, size_t max_parallelism,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t cap = max_parallelism == 0 ? workers_.size() + 1 : max_parallelism;
  // Nested fan-out from a pool thread runs serially: the caller's own
  // iterations always make progress, so waiting on helpers that may be
  // queued behind this very task could deadlock the pool.
  size_t helpers =
      (workers_.empty() || pool_thread_index_ >= 0 || cap <= 1)
          ? 0
          : std::min({cap - 1, workers_.size(), n - 1});
  std::atomic<size_t> next{0};
  auto run = [&next, n, &fn] {
    size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) fn(i);
  };
  if (helpers == 0) {
    run();
    return;
  }
  Latch done(helpers);
  for (size_t h = 0; h < helpers; h++) {
    Submit([&run, &done] {
      run();
      done.CountDown();
    });
  }
  run();
  done.Wait();
}

}  // namespace util
}  // namespace xdb
