// Synthetic workload generators shared by tests, examples and benchmarks.
//
// Each generator drives one experiment axis from DESIGN.md: product-catalog
// documents (the paper's running example and Table 2 queries), recursive
// documents with a controllable recursion degree r (the QuickXScan state
// bound), random trees for differential property tests, and employee rows
// for constructor benchmarks.
#ifndef XDB_UTIL_WORKLOAD_H_
#define XDB_UTIL_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace xdb {
namespace workload {

struct CatalogOptions {
  uint32_t categories = 2;
  uint32_t products_per_category = 10;
  /// Fraction (0..1) of products with a Discount element.
  double discount_fraction = 0.3;
  /// Price range [min, max] for RegPrice.
  double min_price = 1.0;
  double max_price = 500.0;
  /// Extra Description padding per product (bytes of filler text).
  uint32_t description_bytes = 40;
};

/// One /Catalog/Categories/Product[...] document.
std::string GenCatalogXml(Random* rng, const CatalogOptions& options);

/// Recursive document: `nesting` levels of <a> nested within <a>, each level
/// carrying `siblings_per_level` additional <a> leaf children and a text
/// payload. The recursion degree r of Section 4.2 equals `nesting`.
std::string GenRecursiveXml(uint32_t nesting, uint32_t siblings_per_level,
                            const std::string& name = "a");

/// A "wide" document: one root with `leaves` flat <item>text</item> children
/// of ~leaf_bytes each; scales document size without recursion.
std::string GenWideXml(uint32_t leaves, uint32_t leaf_bytes);

/// Knobs for GenRandomXml. Element names come from a..(a+element_names-1),
/// attribute names from v..(v+attribute_names-1) — the same tiny alphabets
/// GenRandomXPath draws from, so random queries hit random documents.
struct RandomXmlOptions {
  uint32_t max_nodes = 40;
  int max_depth = 12;
  uint32_t element_names = 5;    // a..e
  uint32_t attribute_names = 3;  // v..x
  uint32_t max_attrs_per_element = 2;
  /// The generator guards against emitting two attributes with the same name
  /// on one element (invalid XML the parser rejects, which would make
  /// round-trip tests spuriously fail — or pass for the wrong reason).
  /// Setting this lets duplicates through, for parser-rejection tests only.
  bool allow_duplicate_attrs = false;
  /// Deep-document mode: when spine_depth_max > 0, the random tree is
  /// wrapped in a nested spine of spine_depth_min..spine_depth_max single
  /// elements whose names repeat from the same a.. alphabet. Descendant
  /// axes then cross dozens of levels of recurring names — the regime where
  /// (pre, post)-interval containment has to agree with the streaming
  /// evaluators on every reflexive // match.
  uint32_t spine_depth_min = 0;
  uint32_t spine_depth_max = 0;
};

/// Random tree for differential testing: up to `max_nodes` nodes with
/// random attributes/text/nesting.
std::string GenRandomXml(Random* rng, const RandomXmlOptions& options);

/// Back-compat shorthand: default options with `max_nodes` nodes.
std::string GenRandomXml(Random* rng, uint32_t max_nodes);

/// Knobs for GenRandomXPath. Probabilities are per decision point.
struct XPathOptions {
  uint32_t max_steps = 4;        // steps on the main path (>= 1)
  uint32_t max_predicates = 2;   // total predicates across all steps
  uint32_t max_branch_steps = 2; // steps inside a predicate's relative path
  uint32_t element_names = 5;    // name-test alphabet a..e
  uint32_t attribute_names = 3;  // attribute alphabet v..x
  bool allow_predicates = true;
  double descendant_prob = 0.4;  // '//' instead of '/' before a step
  double wildcard_prob = 0.15;   // '*' instead of a name test
  double attribute_prob = 0.2;   // final step becomes '@name'
  double text_prob = 0.1;        // final step becomes 'text()'
};

/// Seeded random XPath over the GenRandomXml alphabets: child / descendant /
/// attribute / wildcard / text() steps plus exists, not() and value
/// comparison predicates. Always parses with xpath::ParsePath.
std::string GenRandomXPath(Random* rng, const XPathOptions& options = {});

struct EmployeeRow {
  std::string id, fname, lname, hire, dept;
};
std::vector<EmployeeRow> GenEmployees(Random* rng, uint32_t count);

/// Schema text matching GenCatalogXml documents.
const char* CatalogSchemaText();

}  // namespace workload
}  // namespace xdb

#endif  // XDB_UTIL_WORKLOAD_H_
