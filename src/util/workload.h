// Synthetic workload generators shared by tests, examples and benchmarks.
//
// Each generator drives one experiment axis from DESIGN.md: product-catalog
// documents (the paper's running example and Table 2 queries), recursive
// documents with a controllable recursion degree r (the QuickXScan state
// bound), random trees for differential property tests, and employee rows
// for constructor benchmarks.
#ifndef XDB_UTIL_WORKLOAD_H_
#define XDB_UTIL_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace xdb {
namespace workload {

struct CatalogOptions {
  uint32_t categories = 2;
  uint32_t products_per_category = 10;
  /// Fraction (0..1) of products with a Discount element.
  double discount_fraction = 0.3;
  /// Price range [min, max] for RegPrice.
  double min_price = 1.0;
  double max_price = 500.0;
  /// Extra Description padding per product (bytes of filler text).
  uint32_t description_bytes = 40;
};

/// One /Catalog/Categories/Product[...] document.
std::string GenCatalogXml(Random* rng, const CatalogOptions& options);

/// Recursive document: `nesting` levels of <a> nested within <a>, each level
/// carrying `siblings_per_level` additional <a> leaf children and a text
/// payload. The recursion degree r of Section 4.2 equals `nesting`.
std::string GenRecursiveXml(uint32_t nesting, uint32_t siblings_per_level,
                            const std::string& name = "a");

/// A "wide" document: one root with `leaves` flat <item>text</item> children
/// of ~leaf_bytes each; scales document size without recursion.
std::string GenWideXml(uint32_t leaves, uint32_t leaf_bytes);

/// Random tree for differential testing: up to `max_nodes` nodes with names
/// drawn from a tiny alphabet (a..e), random attributes/text/nesting.
std::string GenRandomXml(Random* rng, uint32_t max_nodes);

struct EmployeeRow {
  std::string id, fname, lname, hire, dept;
};
std::vector<EmployeeRow> GenEmployees(Random* rng, uint32_t count);

/// Schema text matching GenCatalogXml documents.
const char* CatalogSchemaText();

}  // namespace workload
}  // namespace xdb

#endif  // XDB_UTIL_WORKLOAD_H_
