// Work-stealing thread pool for parallel query execution.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (cache-warm)
// and steals FIFO from the other workers when its deque runs dry, so one
// long-running chunk cannot strand queued work behind it. The pool is shared
// by all collections of an engine; queries fan per-document evaluation out to
// it and the submitting thread always participates in its own batch
// (ParallelFor), so a pool smaller than the number of concurrent queries
// degrades to serial execution instead of deadlocking.
#ifndef XDB_UTIL_THREAD_POOL_H_
#define XDB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xdb {
namespace util {

/// One-shot countdown latch (std::latch without the C++20 header so the
/// annotated CondVar/Mutex pair stays visible to the thread-safety analysis).
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void CountDown() XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.NotifyAll();
  }

  void Wait() XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (count_ > 0) cv_.Wait(lock);
  }

 private:
  Mutex mu_{LockRank::kSyncLatch};
  CondVar cv_;
  size_t count_ XDB_GUARDED_BY(mu_);
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 makes every Submit run inline (a valid
  /// degenerate pool, used when the engine is configured serial).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `fn` on this worker's own deque when called from a pool
  /// thread, else round-robin across workers. Runs inline on an empty pool.
  void Submit(std::function<void()> fn);

  /// Runs fn(0..n-1), distributing iterations dynamically over at most
  /// `max_parallelism` threads (0 = no cap beyond the pool size). The
  /// calling thread always executes iterations itself and the call returns
  /// only after every iteration finished. Nested calls from a pool thread
  /// run serially (no helper submission), which cannot deadlock.
  void ParallelFor(size_t n, size_t max_parallelism,
                   const std::function<void(size_t)>& fn);

 private:
  struct Worker {
    Mutex mu{LockRank::kThreadPoolWorker};
    std::deque<std::function<void()>> queue XDB_GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self);
  /// Pops own work (LIFO) or steals (FIFO) and runs it.
  bool TryRunOne(size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  Mutex idle_mu_{LockRank::kThreadPoolIdle};
  CondVar idle_cv_;
  bool stop_ XDB_GUARDED_BY(idle_mu_) = false;
  /// Tasks pushed but not yet popped, across all deques (idle-wait predicate).
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> next_queue_{0};
  /// Index of the current thread within its owning pool, -1 off-pool.
  static thread_local int pool_thread_index_;
};

}  // namespace util
}  // namespace xdb

#endif  // XDB_UTIL_THREAD_POOL_H_
