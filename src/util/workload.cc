#include "util/workload.h"

#include <cstdio>
#include <cstring>

namespace xdb {
namespace workload {

namespace {
const char* kWords[] = {"alpha", "bravo", "charlie", "delta",  "echo",
                        "foxtrot", "golf",  "hotel",   "india", "juliet"};

void AppendFiller(Random* rng, uint32_t bytes, std::string* out) {
  while (bytes > 0) {
    const char* w = kWords[rng->Uniform(10)];
    out->append(w);
    uint32_t n = static_cast<uint32_t>(std::strlen(w)) + 1;
    out->push_back(' ');
    bytes = bytes > n ? bytes - n : 0;
  }
}
}  // namespace

std::string GenCatalogXml(Random* rng, const CatalogOptions& options) {
  std::string xml = "<Catalog>";
  uint32_t product_id = 1;
  for (uint32_t c = 0; c < options.categories; c++) {
    xml += "<Categories>";
    for (uint32_t p = 0; p < options.products_per_category; p++) {
      char buf[64];
      double price = options.min_price +
                     rng->NextDouble() * (options.max_price - options.min_price);
      std::snprintf(buf, sizeof(buf), "%.2f", price);
      xml += "<Product id=\"P" + std::to_string(product_id++) + "\">";
      xml += "<ProductName>";
      xml += kWords[rng->Uniform(10)];
      xml += "-";
      xml += std::to_string(rng->Uniform(100000));
      xml += "</ProductName>";
      xml += "<RegPrice>";
      xml += buf;
      xml += "</RegPrice>";
      if (rng->NextDouble() < options.discount_fraction) {
        std::snprintf(buf, sizeof(buf), "%.2f", rng->NextDouble() * 0.5);
        xml += "<Discount>";
        xml += buf;
        xml += "</Discount>";
      }
      if (options.description_bytes > 0) {
        xml += "<Description>";
        AppendFiller(rng, options.description_bytes, &xml);
        xml += "</Description>";
      }
      xml += "</Product>";
    }
    xml += "</Categories>";
  }
  xml += "</Catalog>";
  return xml;
}

std::string GenRecursiveXml(uint32_t nesting, uint32_t siblings_per_level,
                            const std::string& name) {
  std::string xml;
  for (uint32_t i = 0; i < nesting; i++) {
    xml += "<" + name + ">";
    for (uint32_t s = 0; s < siblings_per_level; s++)
      xml += "<" + name + ">leaf" + std::to_string(i) + "." +
             std::to_string(s) + "</" + name + ">";
    xml += "t" + std::to_string(i);
  }
  // Innermost payload distinguishes the deepest level.
  xml += "<t>XML</t>";
  for (uint32_t i = 0; i < nesting; i++) xml += "</" + name + ">";
  return xml;
}

std::string GenWideXml(uint32_t leaves, uint32_t leaf_bytes) {
  std::string xml = "<root>";
  std::string payload(leaf_bytes, 'x');
  for (uint32_t i = 0; i < leaves; i++) {
    xml += "<item n=\"" + std::to_string(i) + "\">" + payload + "</item>";
  }
  xml += "</root>";
  return xml;
}

namespace {
void GenRandomElement(Random* rng, uint32_t* budget, int depth,
                      std::string* out) {
  char name = static_cast<char>('a' + rng->Uniform(5));
  (*budget)--;
  out->push_back('<');
  out->push_back(name);
  // Attributes (names kept distinct within the element).
  uint32_t nattrs = static_cast<uint32_t>(rng->Uniform(3));
  bool used[3] = {false, false, false};
  for (uint32_t i = 0; i < nattrs && *budget > 0; i++) {
    uint32_t pick = static_cast<uint32_t>(rng->Uniform(3));
    if (used[pick]) continue;
    used[pick] = true;
    char aname = static_cast<char>('v' + pick);
    (*budget)--;
    out->push_back(' ');
    out->push_back(aname);
    out->append("=\"");
    out->append(std::to_string(rng->Uniform(1000)));
    out->push_back('"');
  }
  out->push_back('>');
  // Children.
  while (*budget > 0 && !rng->OneIn(3)) {
    if (depth < 12 && rng->OneIn(2)) {
      GenRandomElement(rng, budget, depth + 1, out);
    } else {
      (*budget)--;
      out->append(std::to_string(rng->Uniform(500)));
      // Avoid merging adjacent text nodes: always follow with an element or
      // end tag.
      break;
    }
  }
  out->append("</");
  out->push_back(name);
  out->push_back('>');
}
}  // namespace

std::string GenRandomXml(Random* rng, uint32_t max_nodes) {
  std::string out;
  uint32_t budget = max_nodes == 0 ? 1 : max_nodes;
  GenRandomElement(rng, &budget, 0, &out);
  return out;
}

std::vector<EmployeeRow> GenEmployees(Random* rng, uint32_t count) {
  std::vector<EmployeeRow> rows;
  rows.reserve(count);
  static const char* kDepts[] = {"Accting", "Engineering", "Sales", "HR",
                                 "Support"};
  for (uint32_t i = 0; i < count; i++) {
    EmployeeRow row;
    row.id = std::to_string(1000 + i);
    row.fname = kWords[rng->Uniform(10)];
    row.lname = kWords[rng->Uniform(10)];
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04u-%02u-%02u",
                  1990 + static_cast<unsigned>(rng->Uniform(30)),
                  1 + static_cast<unsigned>(rng->Uniform(12)),
                  1 + static_cast<unsigned>(rng->Uniform(28)));
    row.hire = buf;
    row.dept = kDepts[rng->Uniform(5)];
    rows.push_back(std::move(row));
  }
  return rows;
}

const char* CatalogSchemaText() {
  return R"(schema catalog;
root Catalog;
element Catalog { content: Categories+; }
element Categories { content: Product*; }
element Product {
  attribute id: string required;
  content: ProductName, RegPrice, Discount?, Description?;
}
element ProductName { text: string; }
element RegPrice { text: decimal; }
element Discount { text: decimal; }
element Description { text: string; }
)";
}

}  // namespace workload
}  // namespace xdb
