#include "util/workload.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace xdb {
namespace workload {

namespace {
const char* kWords[] = {"alpha", "bravo", "charlie", "delta",  "echo",
                        "foxtrot", "golf",  "hotel",   "india", "juliet"};

void AppendFiller(Random* rng, uint32_t bytes, std::string* out) {
  while (bytes > 0) {
    const char* w = kWords[rng->Uniform(10)];
    out->append(w);
    uint32_t n = static_cast<uint32_t>(std::strlen(w)) + 1;
    out->push_back(' ');
    bytes = bytes > n ? bytes - n : 0;
  }
}
}  // namespace

std::string GenCatalogXml(Random* rng, const CatalogOptions& options) {
  std::string xml = "<Catalog>";
  uint32_t product_id = 1;
  for (uint32_t c = 0; c < options.categories; c++) {
    xml += "<Categories>";
    for (uint32_t p = 0; p < options.products_per_category; p++) {
      char buf[64];
      double price = options.min_price +
                     rng->NextDouble() * (options.max_price - options.min_price);
      std::snprintf(buf, sizeof(buf), "%.2f", price);
      xml += "<Product id=\"P" + std::to_string(product_id++) + "\">";
      xml += "<ProductName>";
      xml += kWords[rng->Uniform(10)];
      xml += "-";
      xml += std::to_string(rng->Uniform(100000));
      xml += "</ProductName>";
      xml += "<RegPrice>";
      xml += buf;
      xml += "</RegPrice>";
      if (rng->NextDouble() < options.discount_fraction) {
        std::snprintf(buf, sizeof(buf), "%.2f", rng->NextDouble() * 0.5);
        xml += "<Discount>";
        xml += buf;
        xml += "</Discount>";
      }
      if (options.description_bytes > 0) {
        xml += "<Description>";
        AppendFiller(rng, options.description_bytes, &xml);
        xml += "</Description>";
      }
      xml += "</Product>";
    }
    xml += "</Categories>";
  }
  xml += "</Catalog>";
  return xml;
}

std::string GenRecursiveXml(uint32_t nesting, uint32_t siblings_per_level,
                            const std::string& name) {
  std::string xml;
  for (uint32_t i = 0; i < nesting; i++) {
    xml += "<" + name + ">";
    for (uint32_t s = 0; s < siblings_per_level; s++)
      xml += "<" + name + ">leaf" + std::to_string(i) + "." +
             std::to_string(s) + "</" + name + ">";
    xml += "t" + std::to_string(i);
  }
  // Innermost payload distinguishes the deepest level.
  xml += "<t>XML</t>";
  for (uint32_t i = 0; i < nesting; i++) xml += "</" + name + ">";
  return xml;
}

std::string GenWideXml(uint32_t leaves, uint32_t leaf_bytes) {
  std::string xml = "<root>";
  std::string payload(leaf_bytes, 'x');
  for (uint32_t i = 0; i < leaves; i++) {
    xml += "<item n=\"" + std::to_string(i) + "\">" + payload + "</item>";
  }
  xml += "</root>";
  return xml;
}

namespace {
void GenRandomElement(Random* rng, const RandomXmlOptions& options,
                      uint32_t* budget, int depth, std::string* out) {
  char name = static_cast<char>('a' + rng->Uniform(options.element_names));
  (*budget)--;
  out->push_back('<');
  out->push_back(name);
  // Attributes. The guard keeps names distinct within the element — the
  // parser rejects duplicates, and an invalid document would make
  // differential and round-trip tests fail (or pass) for the wrong reason.
  uint32_t nattrs = static_cast<uint32_t>(
      rng->Uniform(options.max_attrs_per_element + 1));
  uint64_t used = 0;
  for (uint32_t i = 0; i < nattrs && *budget > 0; i++) {
    uint32_t pick = static_cast<uint32_t>(rng->Uniform(options.attribute_names));
    if (!options.allow_duplicate_attrs) {
      if (used & (1ULL << pick)) continue;
      used |= 1ULL << pick;
    }
    char aname = static_cast<char>('v' + pick);
    (*budget)--;
    out->push_back(' ');
    out->push_back(aname);
    out->append("=\"");
    out->append(std::to_string(rng->Uniform(1000)));
    out->push_back('"');
  }
  out->push_back('>');
  // Children.
  while (*budget > 0 && !rng->OneIn(3)) {
    if (depth < options.max_depth && rng->OneIn(2)) {
      GenRandomElement(rng, options, budget, depth + 1, out);
    } else {
      (*budget)--;
      out->append(std::to_string(rng->Uniform(500)));
      // Avoid merging adjacent text nodes: always follow with an element or
      // end tag.
      break;
    }
  }
  out->append("</");
  out->push_back(name);
  out->push_back('>');
}
}  // namespace

std::string GenRandomXml(Random* rng, const RandomXmlOptions& options) {
  std::string out;
  uint32_t spine = 0;
  if (options.spine_depth_max > 0) {
    uint32_t lo = options.spine_depth_min;
    uint32_t hi = std::max(options.spine_depth_max, lo);
    spine = lo + static_cast<uint32_t>(rng->Uniform(hi - lo + 1));
  }
  std::vector<char> spine_names;
  for (uint32_t i = 0; i < spine; i++) {
    char name = static_cast<char>('a' + rng->Uniform(options.element_names));
    spine_names.push_back(name);
    out.push_back('<');
    out.push_back(name);
    out.push_back('>');
  }
  uint32_t budget = options.max_nodes == 0 ? 1 : options.max_nodes;
  GenRandomElement(rng, options, &budget, static_cast<int>(spine), &out);
  for (auto it = spine_names.rbegin(); it != spine_names.rend(); ++it) {
    out.append("</");
    out.push_back(*it);
    out.push_back('>');
  }
  return out;
}

std::string GenRandomXml(Random* rng, uint32_t max_nodes) {
  RandomXmlOptions options;
  options.max_nodes = max_nodes;
  return GenRandomXml(rng, options);
}

namespace {
// One name test from the element alphabet, or '*'.
void AppendNameTest(Random* rng, const XPathOptions& o, std::string* out) {
  if (rng->NextDouble() < o.wildcard_prob) {
    out->push_back('*');
  } else {
    out->push_back(static_cast<char>('a' + rng->Uniform(o.element_names)));
  }
}

// A short relative path for a predicate branch, e.g. "a//b", "@v", "a/text()".
void AppendBranchPath(Random* rng, const XPathOptions& o, bool leaf_value,
                      std::string* out) {
  uint32_t steps = 1 + static_cast<uint32_t>(
                           rng->Uniform(o.max_branch_steps == 0
                                            ? 1
                                            : o.max_branch_steps));
  for (uint32_t i = 0; i < steps; i++) {
    bool last = i + 1 == steps;
    if (i > 0) out->append(rng->NextDouble() < o.descendant_prob ? "//" : "/");
    if (last && rng->NextDouble() < o.attribute_prob) {
      out->push_back('@');
      out->push_back(static_cast<char>('v' + rng->Uniform(o.attribute_names)));
      return;
    }
    if (last && leaf_value && rng->NextDouble() < o.text_prob && i > 0) {
      out->append("text()");
      return;
    }
    AppendNameTest(rng, o, out);
  }
}

// One predicate expression (possibly a 2-way and/or), e.g.
// "[a/@v > 17]", "[not(b)]", "[c and @w = 3]".
void AppendPredicate(Random* rng, const XPathOptions& o, std::string* out) {
  out->push_back('[');
  uint32_t terms = rng->OneIn(4) ? 2 : 1;
  for (uint32_t t = 0; t < terms; t++) {
    if (t > 0) out->append(rng->OneIn(2) ? " and " : " or ");
    bool negate = rng->OneIn(5);
    if (negate) out->append("not(");
    if (rng->OneIn(2)) {
      // Existence test.
      AppendBranchPath(rng, o, /*leaf_value=*/false, out);
    } else {
      // Value comparison against a literal from the generator's value space.
      AppendBranchPath(rng, o, /*leaf_value=*/true, out);
      static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
      out->push_back(' ');
      out->append(kOps[rng->Uniform(6)]);
      out->push_back(' ');
      if (rng->OneIn(3)) {
        out->push_back('"');
        out->append(std::to_string(rng->Uniform(1000)));
        out->push_back('"');
      } else {
        out->append(std::to_string(rng->Uniform(1000)));
      }
    }
    if (negate) out->push_back(')');
  }
  out->push_back(']');
}
}  // namespace

std::string GenRandomXPath(Random* rng, const XPathOptions& o) {
  std::string out;
  uint32_t steps =
      1 + static_cast<uint32_t>(rng->Uniform(o.max_steps == 0 ? 1 : o.max_steps));
  uint32_t predicates_left = o.allow_predicates ? o.max_predicates : 0;
  for (uint32_t i = 0; i < steps; i++) {
    bool last = i + 1 == steps;
    if (i > 0) {
      out.append(rng->NextDouble() < o.descendant_prob ? "//" : "/");
    } else {
      // Leading separator: absolute "/", descendant "//", or a relative
      // start (top-level items as context, QuickXScan semantics).
      switch (rng->Uniform(4)) {
        case 0: break;  // relative
        case 1: out.append("//"); break;
        default: out.push_back('/');
      }
    }
    if (last && rng->NextDouble() < o.attribute_prob) {
      out.push_back('@');
      out.push_back(static_cast<char>('v' + rng->Uniform(o.attribute_names)));
      break;
    }
    if (last && i > 0 && rng->NextDouble() < o.text_prob) {
      out.append("text()");
      break;
    }
    AppendNameTest(rng, o, &out);
    if (predicates_left > 0 && rng->NextDouble() < 0.35) {
      predicates_left--;
      AppendPredicate(rng, o, &out);
    }
  }
  return out;
}

std::vector<EmployeeRow> GenEmployees(Random* rng, uint32_t count) {
  std::vector<EmployeeRow> rows;
  rows.reserve(count);
  static const char* kDepts[] = {"Accting", "Engineering", "Sales", "HR",
                                 "Support"};
  for (uint32_t i = 0; i < count; i++) {
    EmployeeRow row;
    row.id = std::to_string(1000 + i);
    row.fname = kWords[rng->Uniform(10)];
    row.lname = kWords[rng->Uniform(10)];
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04u-%02u-%02u",
                  1990 + static_cast<unsigned>(rng->Uniform(30)),
                  1 + static_cast<unsigned>(rng->Uniform(12)),
                  1 + static_cast<unsigned>(rng->Uniform(28)));
    row.hire = buf;
    row.dept = kDepts[rng->Uniform(5)];
    rows.push_back(std::move(row));
  }
  return rows;
}

const char* CatalogSchemaText() {
  return R"(schema catalog;
root Catalog;
element Catalog { content: Categories+; }
element Categories { content: Product*; }
element Product {
  attribute id: string required;
  content: ProductName, RegPrice, Discount?, Description?;
}
element ProductName { text: string; }
element RegPrice { text: decimal; }
element Discount { text: decimal; }
element Description { text: string; }
)";
}

}  // namespace workload
}  // namespace xdb
