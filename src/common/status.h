// Status and Result<T>: exception-free error propagation for all engine paths.
//
// Follows the RocksDB/Arrow idiom: every fallible operation returns a Status
// (or Result<T> when it also produces a value); callers must check ok().
#ifndef XDB_COMMON_STATUS_H_
#define XDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace xdb {

/// Outcome of a fallible engine operation. [[nodiscard]]: silently dropping
/// a Status hides failures; intentional drops must say so with (void).
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIOError,
    kNotSupported,
    kBusy,
    kDeadlock,
    kParseError,
    kValidationError,
    kFull,
    kStale,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  /// An IOError the retry policy may mask: the operation failed for a
  /// transient environmental reason (EINTR/EAGAIN, injected transient fault)
  /// and retrying it after a backoff is expected to succeed.
  static Status TransientIOError(std::string msg = "") {
    Status s(Code::kIOError, std::move(msg));
    s.retryable_ = true;
    return s;
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status ParseError(std::string msg = "") {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status ValidationError(std::string msg = "") {
    return Status(Code::kValidationError, std::move(msg));
  }
  static Status Full(std::string msg = "") {
    return Status(Code::kFull, std::move(msg));
  }
  /// A replica could not satisfy the caller's freshness bound
  /// (QueryOptions::min_csn) within the allowed wait: the data it would
  /// serve is older than the caller requires. Retry later, relax the bound,
  /// or read from the primary.
  static Status Stale(std::string msg = "") {
    return Status(Code::kStale, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsStale() const { return code_ == Code::kStale; }
  /// True for failures worth retrying with backoff (see TransientIOError).
  bool IsTransient() const { return retryable_; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "<code>: <message>" form for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  bool retryable_ = false;
  std::string msg_;
};

/// A Status carrying a value on success.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)), value_() {}       // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T&& MoveValue() { return std::move(value_); }

 private:
  Status status_;
  T value_;
};

}  // namespace xdb

/// Propagate a non-OK Status to the caller.
#define XDB_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::xdb::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Evaluate a Result expression, propagate failure, bind the value.
#define XDB_ASSIGN_OR_RETURN(lhs, expr)    \
  auto XDB_CONCAT_(_res_, __LINE__) = (expr);                   \
  if (!XDB_CONCAT_(_res_, __LINE__).ok())                       \
    return XDB_CONCAT_(_res_, __LINE__).status();               \
  lhs = XDB_CONCAT_(_res_, __LINE__).MoveValue()

#define XDB_CONCAT_(a, b) XDB_CONCAT_IMPL_(a, b)
#define XDB_CONCAT_IMPL_(a, b) a##b

#endif  // XDB_COMMON_STATUS_H_
