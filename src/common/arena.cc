#include "common/arena.h"

namespace xdb {

char* Arena::Allocate(size_t bytes) {
  // Align to 8 bytes.
  bytes = (bytes + 7) & ~size_t{7};
  if (bytes > alloc_remaining_) {
    size_t block = bytes > kBlockSize / 4 ? bytes : kBlockSize;
    blocks_.push_back(std::make_unique<char[]>(block));
    alloc_ptr_ = blocks_.back().get();
    alloc_remaining_ = block;
    memory_usage_ += block;
  }
  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_remaining_ -= bytes;
  return result;
}

}  // namespace xdb
