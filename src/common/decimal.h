// Decimal: exact decimal numbers for XPath value-index keys.
//
// The paper (Section 4.3) indexes numeric values as IEEE 754r decimal
// floating point so that key values are precise within range. This is a
// software decimal with the same observable property: decimal strings
// round-trip exactly, comparison is numeric, and the key encoding is
// byte-comparable in numeric order.
#ifndef XDB_COMMON_DECIMAL_H_
#define XDB_COMMON_DECIMAL_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace xdb {

/// A decimal value: sign * coefficient * 10^exponent, with up to 18
/// significant digits (fits an int64 coefficient, like decimal64's 16 digits
/// plus headroom).
class Decimal {
 public:
  Decimal() : coeff_(0), exp_(0) {}
  Decimal(int64_t coeff, int32_t exp) : coeff_(coeff), exp_(exp) {
    Normalize();
  }

  /// Parses "[+-]digits[.digits][eE[+-]digits]". Fails on overflow beyond 18
  /// significant digits or exponent out of [-127, 127].
  static Result<Decimal> FromString(Slice s);

  /// Exact conversion from an integer.
  static Decimal FromInt(int64_t v) { return Decimal(v, 0); }

  /// Nearest-double view (inexact; for mixed-type comparisons only).
  double ToDouble() const;

  int64_t coefficient() const { return coeff_; }
  int32_t exponent() const { return exp_; }
  bool IsZero() const { return coeff_ == 0; }

  /// Numeric three-way comparison (exact; no double round-trip).
  int Compare(const Decimal& other) const;

  bool operator==(const Decimal& o) const { return Compare(o) == 0; }
  bool operator<(const Decimal& o) const { return Compare(o) < 0; }

  /// Canonical decimal string, round-trippable through FromString.
  std::string ToString() const;

  /// Appends a byte-comparable encoding: byte order == numeric order.
  /// Layout: [sign/exponent byte-pair][big-endian scaled coefficient].
  void EncodeKey(std::string* dst) const;
  static Result<Decimal> DecodeKey(Slice* input);

 private:
  void Normalize();

  int64_t coeff_;
  int32_t exp_;
};

}  // namespace xdb

#endif  // XDB_COMMON_DECIMAL_H_
