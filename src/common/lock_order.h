// Runtime lock-order enforcement (the dynamic half of xdb-check).
//
// Built with -DXDB_LOCK_ORDER_CHECK=ON, every Mutex/SharedMutex acquisition
// is checked against a thread-local stack of currently held locks: the new
// lock's LockRank must be strictly greater than the rank on top of the
// stack. A violation — out-of-order acquire, same-rank acquire (even of a
// different instance), or re-entrant acquire — aborts the process, printing
// BOTH acquisition sites (the one being attempted and the one already held)
// on a single line, plus the full held stack. Unlike a deadlock or a TSan
// report, this fires on ANY execution that takes the locks in the wrong
// order: no second thread, no unlucky interleaving needed.
//
// The check happens BEFORE the underlying lock() call, so an inversion
// aborts with a readable report instead of deadlocking against the thread
// that holds the locks in the documented order.
//
// CondVar waits release the mutex inside the wait: BeginWait() pops the
// lock's stack entry (returning it as a token) and EndWait() re-validates
// and re-pushes it after the wake-up re-acquire, so the stack always
// mirrors what the thread actually holds.
//
// Without the option, every function here is an empty inline: the LockRank
// constructor argument is discarded, no thread-local exists, and release
// builds are bit-for-bit free of the machinery (satellite bench datapoint
// in BENCH_RESULTS.json).
#ifndef XDB_COMMON_LOCK_ORDER_H_
#define XDB_COMMON_LOCK_ORDER_H_

#include "common/lock_rank.h"

namespace xdb {
namespace lock_order {

#if defined(XDB_LOCK_ORDER_CHECK)

/// One held lock, as seen by this thread.
struct HeldLock {
  LockRank rank;
  const void* instance;
  const char* file;
  int line;
  bool shared;
};

/// Validates that acquiring (rank, instance) from this thread respects the
/// global order; aborts with both acquisition sites if not. Call before the
/// underlying lock()/lock_shared() so inversions report instead of
/// deadlocking.
void CheckAcquire(LockRank rank, const void* instance, const char* file,
                  int line);

/// Pushes the lock onto this thread's held stack (call once the underlying
/// acquisition succeeded).
void RecordAcquire(LockRank rank, const void* instance, const char* file,
                   int line, bool shared);

/// Removes `instance`'s entry from this thread's held stack (topmost match;
/// RAII scopes make this the literal top). Aborts if the thread does not
/// hold it — an unlock-without-lock is a bug in its own right.
void RecordRelease(const void* instance);

/// Pops `instance`'s entry for the duration of a condition wait; the
/// returned token re-pushes it in EndWait() after the re-acquire.
HeldLock BeginWait(const void* instance);
void EndWait(const HeldLock& token);

/// Number of locks this thread currently holds (tests).
int HeldDepthForTest();

#else  // !XDB_LOCK_ORDER_CHECK

struct HeldLock {};
inline void CheckAcquire(LockRank, const void*, const char*, int) {}
inline void RecordAcquire(LockRank, const void*, const char*, int, bool) {}
inline void RecordRelease(const void*) {}
inline HeldLock BeginWait(const void*) { return {}; }
inline void EndWait(const HeldLock&) {}
inline int HeldDepthForTest() { return 0; }

#endif  // XDB_LOCK_ORDER_CHECK

}  // namespace lock_order
}  // namespace xdb

#endif  // XDB_COMMON_LOCK_ORDER_H_
