#include "common/decimal.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/coding.h"

namespace xdb {

namespace {
constexpr int64_t kMaxCoeff = 999999999999999999LL;  // 18 nines
constexpr int32_t kMaxExp = 127;
constexpr int32_t kMinExp = -127;
}  // namespace

void Decimal::Normalize() {
  if (coeff_ == 0) {
    exp_ = 0;
    return;
  }
  while (coeff_ % 10 == 0 && exp_ < kMaxExp) {
    coeff_ /= 10;
    exp_++;
  }
}

Result<Decimal> Decimal::FromString(Slice s) {
  const char* p = s.data();
  const char* end = p + s.size();
  // Trim surrounding whitespace (XML text values commonly carry it).
  while (p < end && std::isspace(static_cast<unsigned char>(*p))) p++;
  while (end > p && std::isspace(static_cast<unsigned char>(end[-1]))) end--;
  if (p == end) return Status::InvalidArgument("empty decimal");

  bool neg = false;
  if (*p == '+' || *p == '-') {
    neg = (*p == '-');
    p++;
  }
  int64_t coeff = 0;
  int32_t exp = 0;
  int digits = 0;
  bool seen_digit = false;
  bool after_point = false;
  for (; p < end; p++) {
    char c = *p;
    if (c >= '0' && c <= '9') {
      seen_digit = true;
      if (coeff > kMaxCoeff / 10 ||
          (coeff == kMaxCoeff / 10 && (c - '0') > kMaxCoeff % 10)) {
        // Out of precision: drop trailing digits, bump exponent (round toward
        // zero keeps ordering monotone for index purposes).
        if (!after_point) exp++;
        continue;
      }
      coeff = coeff * 10 + (c - '0');
      if (after_point) exp--;
      digits++;
    } else if (c == '.') {
      if (after_point) return Status::InvalidArgument("two decimal points");
      after_point = true;
    } else if (c == 'e' || c == 'E') {
      p++;
      bool eneg = false;
      if (p < end && (*p == '+' || *p == '-')) {
        eneg = (*p == '-');
        p++;
      }
      if (p == end) return Status::InvalidArgument("empty exponent");
      int32_t e = 0;
      for (; p < end; p++) {
        if (*p < '0' || *p > '9')
          return Status::InvalidArgument("bad exponent digit");
        e = e * 10 + (*p - '0');
        if (e > 1000) return Status::InvalidArgument("exponent overflow");
      }
      exp += eneg ? -e : e;
      break;
    } else {
      return Status::InvalidArgument("bad decimal character");
    }
  }
  if (!seen_digit) return Status::InvalidArgument("no digits");
  if (exp > kMaxExp || exp < kMinExp)
    return Status::InvalidArgument("decimal exponent out of range");
  return Decimal(neg ? -coeff : coeff, exp);
}

double Decimal::ToDouble() const {
  return static_cast<double>(coeff_) * std::pow(10.0, exp_);
}

int Decimal::Compare(const Decimal& other) const {
  const bool a_neg = coeff_ < 0, b_neg = other.coeff_ < 0;
  if (coeff_ == 0 && other.coeff_ == 0) return 0;
  if (coeff_ == 0) return b_neg ? 1 : -1;
  if (other.coeff_ == 0) return a_neg ? -1 : 1;
  if (a_neg != b_neg) return a_neg ? -1 : 1;

  // Same sign, both non-zero. Compare magnitudes via digit counts, then by
  // aligning coefficients without overflow (long-division style).
  auto digits_of = [](int64_t c) {
    int d = 0;
    uint64_t u = c < 0 ? static_cast<uint64_t>(-(c + 1)) + 1
                       : static_cast<uint64_t>(c);
    while (u != 0) {
      u /= 10;
      d++;
    }
    return d;
  };
  const int mag_a = digits_of(coeff_) + exp_;
  const int mag_b = digits_of(other.coeff_) + other.exp_;
  int sign = a_neg ? -1 : 1;
  if (mag_a != mag_b) return mag_a < mag_b ? -sign : sign;

  // Same order of magnitude: compare digit strings.
  std::string sa = std::to_string(coeff_ < 0 ? -coeff_ : coeff_);
  std::string sb =
      std::to_string(other.coeff_ < 0 ? -other.coeff_ : other.coeff_);
  size_t width = std::max(sa.size(), sb.size());
  sa.append(width - sa.size(), '0');
  sb.append(width - sb.size(), '0');
  int c = sa.compare(sb);
  if (c == 0) return 0;
  return c < 0 ? -sign : sign;
}

std::string Decimal::ToString() const {
  if (coeff_ == 0) return "0";
  std::string digits = std::to_string(coeff_ < 0 ? -coeff_ : coeff_);
  std::string out;
  if (coeff_ < 0) out += '-';
  if (exp_ >= 0) {
    out += digits;
    out.append(exp_, '0');
  } else {
    int32_t frac = -exp_;
    if (static_cast<size_t>(frac) >= digits.size()) {
      out += "0.";
      out.append(frac - digits.size(), '0');
      out += digits;
    } else {
      out += digits.substr(0, digits.size() - frac);
      out += '.';
      out += digits.substr(digits.size() - frac);
    }
  }
  return out;
}

void Decimal::EncodeKey(std::string* dst) const {
  // Encoding: 1 class byte + 2-byte adjusted magnitude + 8-byte scaled
  // digit string prefix. Classes: 0 = negative, 1 = zero, 2 = positive.
  // For negatives, magnitude and digits are complemented so larger
  // magnitude sorts first.
  if (coeff_ == 0) {
    dst->push_back(1);
    return;
  }
  const bool neg = coeff_ < 0;
  dst->push_back(neg ? 0 : 2);
  std::string digits = std::to_string(neg ? -coeff_ : coeff_);
  // magnitude = exponent of the leading digit = digits + exp - 1.
  int32_t mag = static_cast<int32_t>(digits.size()) + exp_ - 1;
  uint16_t biased = static_cast<uint16_t>(mag + 16384);
  if (neg) biased = static_cast<uint16_t>(~biased);
  dst->push_back(static_cast<char>(biased >> 8));
  dst->push_back(static_cast<char>(biased));
  // Up to 18 significant digits, two digits per byte, value 10..109 to keep
  // bytes nonzero; pad with zeros.
  std::string padded = digits;
  padded.append(18 - std::min<size_t>(18, padded.size()), '0');
  for (int i = 0; i < 18; i += 2) {
    unsigned char b =
        static_cast<unsigned char>(10 + (padded[i] - '0') * 10 + (padded[i + 1] - '0'));
    if (neg) b = static_cast<unsigned char>(255 - b);
    dst->push_back(static_cast<char>(b));
  }
}

Result<Decimal> Decimal::DecodeKey(Slice* input) {
  if (input->empty()) return Status::Corruption("empty decimal key");
  unsigned char cls = static_cast<unsigned char>((*input)[0]);
  if (cls == 1) {
    input->RemovePrefix(1);
    return Decimal();
  }
  if (input->size() < 1 + 2 + 9) return Status::Corruption("short decimal key");
  const bool neg = (cls == 0);
  uint16_t biased = (static_cast<uint16_t>(static_cast<unsigned char>((*input)[1])) << 8) |
                    static_cast<unsigned char>((*input)[2]);
  if (neg) biased = static_cast<uint16_t>(~biased);
  int32_t mag = static_cast<int32_t>(biased) - 16384;
  std::string digits;
  for (int i = 0; i < 9; i++) {
    unsigned char b = static_cast<unsigned char>((*input)[3 + i]);
    if (neg) b = static_cast<unsigned char>(255 - b);
    int v = b - 10;
    if (v < 0 || v > 99) return Status::Corruption("bad decimal key byte");
    digits.push_back(static_cast<char>('0' + v / 10));
    digits.push_back(static_cast<char>('0' + v % 10));
  }
  input->RemovePrefix(1 + 2 + 9);
  // Strip trailing zeros of the 18-digit field.
  size_t last = digits.find_last_not_of('0');
  if (last == std::string::npos) return Status::Corruption("zero digits");
  digits.resize(last + 1);
  int64_t coeff = 0;
  for (char c : digits) coeff = coeff * 10 + (c - '0');
  int32_t exp = mag - static_cast<int32_t>(digits.size()) + 1;
  return Decimal(neg ? -coeff : coeff, exp);
}

}  // namespace xdb
