// Annotated, rank-checked mutex wrappers.
//
// libstdc++'s std::mutex / std::shared_mutex / std::lock_guard carry no
// capability attributes, so GUARDED_BY members protected by a raw std::mutex
// are invisible to -Wthread-safety. These thin wrappers (same idea as
// absl::Mutex) forward to the standard types and add two things:
//
//  1. Clang Thread Safety Analysis attributes (compile-time, always on —
//     they cost nothing at runtime).
//  2. A mandatory LockRank (common/lock_rank.h): every construction site
//     names its position in the global lock order. Under
//     -DXDB_LOCK_ORDER_CHECK=ON each acquisition is validated against a
//     thread-local held stack and an out-of-order acquire aborts, naming
//     both acquisition sites (common/lock_order.h). In normal builds the
//     rank argument is discarded by an empty constructor and the wrappers
//     compile down to the bare std primitives.
//
// Usage:
//   mutable Mutex mu_{LockRank::kTableSpace};
//   std::map<K, V> table_ XDB_GUARDED_BY(mu_);
//
//   void Get(K k) {
//     MutexLock lock(mu_);
//     ... table_[k] ...            // analysis-checked access
//   }
//
// CondVar wants a MutexLock (which wraps std::unique_lock) rather than a raw
// Mutex so waits can atomically release/reacquire; the rank stack entry is
// popped for the duration of the wait and re-pushed after the re-acquire.
//
// xdb_lint rule raw-std-sync keeps the underlying std types confined to
// this header.
#ifndef XDB_COMMON_MUTEX_H_
#define XDB_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_order.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"

// Acquisition-site capture: with the checker on, every Lock() call site is
// recorded via __builtin_FILE/__builtin_LINE default arguments (no macros at
// call sites). With it off, the parameters do not exist at all, so release
// call sites pass nothing and the rank machinery vanishes entirely.
#if defined(XDB_LOCK_ORDER_CHECK)
#define XDB_LOCK_SITE_PARAMS \
  const char* xdb_file = __builtin_FILE(), int xdb_line = __builtin_LINE()
#define XDB_LOCK_SITE_ARGS xdb_file, xdb_line
#endif

namespace xdb {

class CondVar;

/// Exclusive mutex. Prefer the RAII MutexLock over manual Lock/Unlock.
class XDB_CAPABILITY("mutex") Mutex {
 public:
#if defined(XDB_LOCK_ORDER_CHECK)
  explicit Mutex(LockRank rank) : rank_(rank) {}
#else
  explicit Mutex(LockRank) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(XDB_LOCK_ORDER_CHECK)
  void Lock(XDB_LOCK_SITE_PARAMS) XDB_ACQUIRE() {
    lock_order::CheckAcquire(rank_, this, XDB_LOCK_SITE_ARGS);
    mu_.lock();
    lock_order::RecordAcquire(rank_, this, XDB_LOCK_SITE_ARGS,
                              /*shared=*/false);
  }
  void Unlock() XDB_RELEASE() {
    lock_order::RecordRelease(this);
    mu_.unlock();
  }
  bool TryLock(XDB_LOCK_SITE_PARAMS) XDB_TRY_ACQUIRE(true) {
    // A try-acquire cannot deadlock, but the discipline is the same: code
    // that try-locks against the order is one refactor away from blocking
    // against it.
    lock_order::CheckAcquire(rank_, this, XDB_LOCK_SITE_ARGS);
    if (!mu_.try_lock()) return false;
    lock_order::RecordAcquire(rank_, this, XDB_LOCK_SITE_ARGS,
                              /*shared=*/false);
    return true;
  }
#else
  void Lock() XDB_ACQUIRE() { mu_.lock(); }
  void Unlock() XDB_RELEASE() { mu_.unlock(); }
  bool TryLock() XDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif

 private:
  friend class MutexLock;
  std::mutex mu_;
#if defined(XDB_LOCK_ORDER_CHECK)
  const LockRank rank_;
#endif
};

/// RAII exclusive lock over Mutex; wraps std::unique_lock so CondVar can
/// wait on it.
class XDB_SCOPED_CAPABILITY MutexLock {
 public:
  // Acquires through the annotated Mutex::Lock (so the analysis sees it and
  // the rank checker records the MutexLock construction site), then hands
  // ownership to the unique_lock CondVar waits on.
#if defined(XDB_LOCK_ORDER_CHECK)
  explicit MutexLock(Mutex& mu, XDB_LOCK_SITE_PARAMS) XDB_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(XDB_LOCK_SITE_ARGS);
    lock_ = std::unique_lock<std::mutex>(mu_.mu_, std::adopt_lock);
  }
#else
  explicit MutexLock(Mutex& mu) XDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
    lock_ = std::unique_lock<std::mutex>(mu_.mu_, std::adopt_lock);
  }
#endif
  ~MutexLock() XDB_RELEASE() {
    lock_.release();  // drop ownership; unlock through the annotated path
    mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to Mutex via MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    // The wait releases the mutex until the wake-up re-acquire; the rank
    // stack mirrors that so other acquisitions made by *this thread* are
    // impossible by construction (it is blocked) and the entry is restored
    // with its original acquisition site once the lock is held again.
    lock_order::HeldLock token = lock_order::BeginWait(&lock.mu_);
    cv_.wait(lock.lock_);
    lock_order::EndWait(token);
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    lock_order::HeldLock token = lock_order::BeginWait(&lock.mu_);
    std::cv_status status = cv_.wait_until(lock.lock_, deadline);
    lock_order::EndWait(token);
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Reader/writer latch (std::shared_mutex with capability attributes).
class XDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
#if defined(XDB_LOCK_ORDER_CHECK)
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
#else
  explicit SharedMutex(LockRank) {}
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

#if defined(XDB_LOCK_ORDER_CHECK)
  void Lock(XDB_LOCK_SITE_PARAMS) XDB_ACQUIRE() {
    lock_order::CheckAcquire(rank_, this, XDB_LOCK_SITE_ARGS);
    mu_.lock();
    lock_order::RecordAcquire(rank_, this, XDB_LOCK_SITE_ARGS,
                              /*shared=*/false);
  }
  void Unlock() XDB_RELEASE() {
    lock_order::RecordRelease(this);
    mu_.unlock();
  }
  bool TryLock(XDB_LOCK_SITE_PARAMS) XDB_TRY_ACQUIRE(true) {
    lock_order::CheckAcquire(rank_, this, XDB_LOCK_SITE_ARGS);
    if (!mu_.try_lock()) return false;
    lock_order::RecordAcquire(rank_, this, XDB_LOCK_SITE_ARGS,
                              /*shared=*/false);
    return true;
  }
  void LockShared(XDB_LOCK_SITE_PARAMS) XDB_ACQUIRE_SHARED() {
    // Same-thread shared-after-shared on one instance is UB in
    // std::shared_mutex, so shared acquisitions obey the same strict-rank
    // rule as exclusive ones.
    lock_order::CheckAcquire(rank_, this, XDB_LOCK_SITE_ARGS);
    mu_.lock_shared();
    lock_order::RecordAcquire(rank_, this, XDB_LOCK_SITE_ARGS,
                              /*shared=*/true);
  }
  void UnlockShared() XDB_RELEASE_SHARED() {
    lock_order::RecordRelease(this);
    mu_.unlock_shared();
  }
#else
  void Lock() XDB_ACQUIRE() { mu_.lock(); }
  void Unlock() XDB_RELEASE() { mu_.unlock(); }
  bool TryLock() XDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() XDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() XDB_RELEASE_SHARED() { mu_.unlock_shared(); }
#endif

 private:
  std::shared_mutex mu_;
#if defined(XDB_LOCK_ORDER_CHECK)
  const LockRank rank_;
#endif
};

/// RAII exclusive (writer) lock over SharedMutex.
class XDB_SCOPED_CAPABILITY WriterMutexLock {
 public:
#if defined(XDB_LOCK_ORDER_CHECK)
  explicit WriterMutexLock(SharedMutex& mu, XDB_LOCK_SITE_PARAMS)
      XDB_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(XDB_LOCK_SITE_ARGS);
  }
#else
  explicit WriterMutexLock(SharedMutex& mu) XDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
#endif
  ~WriterMutexLock() XDB_RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class XDB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
#if defined(XDB_LOCK_ORDER_CHECK)
  explicit ReaderMutexLock(SharedMutex& mu, XDB_LOCK_SITE_PARAMS)
      XDB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared(XDB_LOCK_SITE_ARGS);
  }
#else
  explicit ReaderMutexLock(SharedMutex& mu) XDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
#endif
  ~ReaderMutexLock() XDB_RELEASE() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace xdb

#endif  // XDB_COMMON_MUTEX_H_
