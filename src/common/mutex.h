// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex / std::shared_mutex / std::lock_guard carry no
// capability attributes, so GUARDED_BY members protected by a raw std::mutex
// are invisible to -Wthread-safety. These thin wrappers (same idea as
// absl::Mutex) forward to the standard types and add the attributes; they
// cost nothing at runtime.
//
// Usage:
//   mutable Mutex mu_;
//   std::map<K, V> table_ XDB_GUARDED_BY(mu_);
//
//   void Get(K k) {
//     MutexLock lock(mu_);
//     ... table_[k] ...            // analysis-checked access
//   }
//
// CondVar wants a MutexLock (which wraps std::unique_lock) rather than a raw
// Mutex so waits can atomically release/reacquire.
#ifndef XDB_COMMON_MUTEX_H_
#define XDB_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace xdb {

class CondVar;

/// Exclusive mutex. Prefer the RAII MutexLock over manual Lock/Unlock.
class XDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() XDB_ACQUIRE() { mu_.lock(); }
  void Unlock() XDB_RELEASE() { mu_.unlock(); }
  bool TryLock() XDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII exclusive lock over Mutex; wraps std::unique_lock so CondVar can
/// wait on it.
class XDB_SCOPED_CAPABILITY MutexLock {
 public:
  // Acquires through the annotated Mutex::Lock (so the analysis sees it),
  // then hands ownership to the unique_lock CondVar waits on.
  explicit MutexLock(Mutex& mu) XDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
    lock_ = std::unique_lock<std::mutex>(mu_.mu_, std::adopt_lock);
  }
  ~MutexLock() XDB_RELEASE() {
    lock_.release();  // drop ownership; unlock through the annotated path
    mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to Mutex via MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Reader/writer latch (std::shared_mutex with capability attributes).
class XDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() XDB_ACQUIRE() { mu_.lock(); }
  void Unlock() XDB_RELEASE() { mu_.unlock(); }
  bool TryLock() XDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() XDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() XDB_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class XDB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) XDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() XDB_RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class XDB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) XDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() XDB_RELEASE() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace xdb

#endif  // XDB_COMMON_MUTEX_H_
