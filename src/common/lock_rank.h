// LockRank: the engine's global lock-acquisition order as one enum.
//
// Every Mutex/SharedMutex in the engine is constructed with a rank from this
// table. A thread may only acquire a lock whose rank is STRICTLY GREATER than
// every lock it already holds — so the prose lock DAG in DESIGN.md
// ("Threading model & lock order") is machine-checked on any single
// execution when the engine is built with -DXDB_LOCK_ORDER_CHECK=ON (see
// common/lock_order.h), no unlucky race timing required. Equal ranks never
// nest, not even across distinct instances: the sharded structures (buffer
// shards, thread-pool worker deques, per-collection latches) are all
// designed to hold at most one instance of their tier at a time, and the
// checker enforces that design too.
//
// Ranks are spaced by 10 so a future subsystem can slot between two tiers
// without renumbering the world. Lower rank = acquired earlier (outermost).
//
// The order below is derived from the real nesting in the code, each edge
// observable in a concrete path:
//
//   rank                  lock                        held across / inside
//   ----                  ----                        --------------------
//   kMetricsRegistry      obs::MetricsRegistry::mu_   Snapshot() runs every
//                                                     collector callback under
//                                                     it; collectors take
//                                                     Engine::mu_, shard locks,
//                                                     WAL commit_mu_, ...
//   kEngineCatalog        Engine::mu_                 held across WAL append
//                                                     (DDL logging, replay),
//                                                     collection latches
//                                                     (Checkpoint), LockManager
//                                                     (replay txns), storage
//                                                     open/recovery
//   kCollectionDdl        Collection::ddl_mu_         held across the latched
//                                                     index build AND its WAL
//                                                     record (create/drop must
//                                                     log in application order)
//   kWalNames             Engine::wal_names_mu_       held across wal_->Append
//                                                     and dict_.Name in
//                                                     LogNewNames; taken under
//                                                     Engine::mu_ in Checkpoint
//   kWalAppend            WalLog::mu_                 held across replay
//                                                     visitors (which re-enter
//                                                     the engine: LockManager,
//                                                     latches, storage);
//                                                     Reset takes commit_mu_
//                                                     inside it
//   kWalCommit            WalLog::commit_mu_          group-commit rounds;
//                                                     dropped around fsync
//   kLockManager          LockManager::mu_            ranked before the latch
//                                                     so "never block on a doc
//                                                     lock while holding the
//                                                     latch" aborts instead of
//                                                     deadlocking
//   kCollectionLatch      Collection::latch_          structure latch; held
//                                                     across record/index/
//                                                     buffer mutation and
//                                                     stats notes
//   kRecordManager        RecordManager::mu_          held across buffer-pool
//                                                     fixes (page search +
//                                                     insert are one critical
//                                                     section)
//   kBufferShard          BufferManager::Shard::mu    held across page I/O;
//                                                     never two shards at once
//                                                     (BorrowFrame re-homes
//                                                     one donor at a time)
//   kBufferLsn            BufferManager::lsn_mu_      taken inside a shard
//                                                     lock during write-back
//   kTableSpace           TableSpace::mu_             page alloc/free under a
//                                                     shard lock (NewPage)
//   kCollectionDocId      Collection::docid_mu_       doc-id allocation; leaf
//   kNameDictionary       NameDictionary::mu_         interning under the
//                                                     exclusive latch and
//                                                     under wal_names_mu_
//   kCollectionStats      query::CollectionStats::mu_ stats notes under the
//                                                     exclusive latch; leaf
//   kPlanCache            query::PlanCache::mu_       invalidation under the
//                                                     exclusive latch; leaf
//   kEngineFreshness      Engine::fresh_mu_           CSN publish under
//                                                     Engine::mu_; leaf
//   kThreadPoolWorker     ThreadPool::Worker::mu      deque push/pop; one
//                                                     instance at a time
//                                                     (steal probes release
//                                                     their own lock first)
//   kThreadPoolIdle       ThreadPool::idle_mu_        idle-wait bookkeeping
//   kSyncLatch            util::Latch::mu_            ParallelFor completion
//                                                     countdown; leaf
//   kShipTransport        repl transports' mu_        delivery queues/spools;
//                                                     fault consult happens
//                                                     before acquisition
//   kFaultInjector        testing::FaultInjector::mu_ consulted inside WAL,
//                                                     shard and table-space
//                                                     critical sections: the
//                                                     global leaf
//
// kTest* ranks exist for tests/lockorder_test.cc fixtures only.
#ifndef XDB_COMMON_LOCK_RANK_H_
#define XDB_COMMON_LOCK_RANK_H_

#include <cstdint>

namespace xdb {

enum class LockRank : uint16_t {
  kMetricsRegistry = 10,
  kEngineCatalog = 20,
  kCollectionDdl = 30,
  kWalNames = 40,
  kWalAppend = 50,
  kWalCommit = 60,
  kLockManager = 70,
  kCollectionLatch = 80,
  kRecordManager = 90,
  kBufferShard = 100,
  kBufferLsn = 110,
  kTableSpace = 120,
  kCollectionDocId = 130,
  kNameDictionary = 140,
  kCollectionStats = 150,
  kPlanCache = 160,
  kEngineFreshness = 170,
  kThreadPoolWorker = 180,
  kThreadPoolIdle = 190,
  kSyncLatch = 200,
  kShipTransport = 210,
  kFaultInjector = 220,

  // Reserved for the lock-order enforcer's own test fixtures.
  kTestLow = 1000,
  kTestMid = 1010,
  kTestHigh = 1020,
};

/// Human-readable enumerator name ("kWalAppend") for abort messages.
const char* LockRankName(LockRank rank);

}  // namespace xdb

#endif  // XDB_COMMON_LOCK_RANK_H_
