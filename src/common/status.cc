#include "common/status.h"

namespace xdb {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kIOError: return "IOError";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kBusy: return "Busy";
    case Status::Code::kDeadlock: return "Deadlock";
    case Status::Code::kParseError: return "ParseError";
    case Status::Code::kValidationError: return "ValidationError";
    case Status::Code::kFull: return "Full";
    case Status::Code::kStale: return "Stale";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  std::string s = CodeName(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace xdb
