#include "common/lock_order.h"

#include <cstdio>
#include <cstdlib>

namespace xdb {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kMetricsRegistry:
      return "kMetricsRegistry";
    case LockRank::kEngineCatalog:
      return "kEngineCatalog";
    case LockRank::kCollectionDdl:
      return "kCollectionDdl";
    case LockRank::kWalNames:
      return "kWalNames";
    case LockRank::kWalAppend:
      return "kWalAppend";
    case LockRank::kWalCommit:
      return "kWalCommit";
    case LockRank::kLockManager:
      return "kLockManager";
    case LockRank::kCollectionLatch:
      return "kCollectionLatch";
    case LockRank::kRecordManager:
      return "kRecordManager";
    case LockRank::kBufferShard:
      return "kBufferShard";
    case LockRank::kBufferLsn:
      return "kBufferLsn";
    case LockRank::kTableSpace:
      return "kTableSpace";
    case LockRank::kCollectionDocId:
      return "kCollectionDocId";
    case LockRank::kNameDictionary:
      return "kNameDictionary";
    case LockRank::kCollectionStats:
      return "kCollectionStats";
    case LockRank::kPlanCache:
      return "kPlanCache";
    case LockRank::kEngineFreshness:
      return "kEngineFreshness";
    case LockRank::kThreadPoolWorker:
      return "kThreadPoolWorker";
    case LockRank::kThreadPoolIdle:
      return "kThreadPoolIdle";
    case LockRank::kSyncLatch:
      return "kSyncLatch";
    case LockRank::kShipTransport:
      return "kShipTransport";
    case LockRank::kFaultInjector:
      return "kFaultInjector";
    case LockRank::kTestLow:
      return "kTestLow";
    case LockRank::kTestMid:
      return "kTestMid";
    case LockRank::kTestHigh:
      return "kTestHigh";
  }
  return "<unknown rank>";
}

#if defined(XDB_LOCK_ORDER_CHECK)

namespace lock_order {
namespace {

/// Deep enough for the longest real chain (metrics → engine → WAL → replay →
/// latch → record → shard → lsn/space → fault injector is 9) with headroom
/// for tests; blowing it means a lock leak, which deserves the abort.
constexpr int kMaxHeld = 32;

struct ThreadStack {
  HeldLock held[kMaxHeld];
  int depth = 0;
};

thread_local ThreadStack tls;

[[noreturn]] void Abort(const char* kind, LockRank rank, const void* instance,
                        const char* file, int line, const HeldLock& top) {
  // Primary report on one line so death tests (and grep) can match both
  // sites together; the full stack follows for humans.
  std::fprintf(
      stderr,
      "xdb lock-order violation (%s): acquiring %s (rank %u, instance %p) at "
      "%s:%d while holding %s (rank %u, instance %p) acquired at %s:%d\n",
      kind, LockRankName(rank), static_cast<unsigned>(rank), instance, file,
      line, LockRankName(top.rank), static_cast<unsigned>(top.rank),
      top.instance, top.file, top.line);
  std::fprintf(stderr, "held locks (outermost first):\n");
  for (int i = 0; i < tls.depth; i++) {
    const HeldLock& h = tls.held[i];
    std::fprintf(stderr, "  #%d %s%s (instance %p) acquired at %s:%d\n", i,
                 LockRankName(h.rank), h.shared ? " [shared]" : "", h.instance,
                 h.file, h.line);
  }
  std::abort();
}

}  // namespace

void CheckAcquire(LockRank rank, const void* instance, const char* file,
                  int line) {
  if (tls.depth == 0) return;
  const HeldLock& top = tls.held[tls.depth - 1];
  if (rank > top.rank) return;
  const char* kind;
  if (top.instance == instance)
    kind = "re-entrant acquire";
  else if (rank == top.rank)
    kind = "same-rank cross-instance acquire";
  else
    kind = "out-of-order acquire";
  Abort(kind, rank, instance, file, line, top);
}

void RecordAcquire(LockRank rank, const void* instance, const char* file,
                   int line, bool shared) {
  if (tls.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "xdb lock-order violation (held-stack overflow): %d locks "
                 "held while acquiring %s at %s:%d\n",
                 tls.depth, LockRankName(rank), file, line);
    std::abort();
  }
  tls.held[tls.depth++] = HeldLock{rank, instance, file, line, shared};
}

void RecordRelease(const void* instance) {
  for (int i = tls.depth - 1; i >= 0; i--) {
    if (tls.held[i].instance != instance) continue;
    for (int j = i; j + 1 < tls.depth; j++) tls.held[j] = tls.held[j + 1];
    tls.depth--;
    return;
  }
  std::fprintf(stderr,
               "xdb lock-order violation (release of unheld lock): instance "
               "%p released by a thread that does not hold it\n",
               instance);
  std::abort();
}

HeldLock BeginWait(const void* instance) {
  for (int i = tls.depth - 1; i >= 0; i--) {
    if (tls.held[i].instance != instance) continue;
    HeldLock token = tls.held[i];
    for (int j = i; j + 1 < tls.depth; j++) tls.held[j] = tls.held[j + 1];
    tls.depth--;
    return token;
  }
  std::fprintf(stderr,
               "xdb lock-order violation (wait on unheld lock): instance %p "
               "waited on by a thread that does not hold it\n",
               instance);
  std::abort();
}

void EndWait(const HeldLock& token) {
  // The thread blocked for the whole wait, so its stack is exactly the
  // acquire-time stack minus this lock: re-validating keeps the invariant
  // honest if a callback ever acquires during the wait window.
  CheckAcquire(token.rank, token.instance, token.file, token.line);
  RecordAcquire(token.rank, token.instance, token.file, token.line,
                token.shared);
}

int HeldDepthForTest() { return tls.depth; }

}  // namespace lock_order

#endif  // XDB_LOCK_ORDER_CHECK

}  // namespace xdb
