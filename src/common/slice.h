// Slice: a non-owning view over a byte range, the currency of the storage and
// index layers (keys, record payloads, node IDs are all byte strings).
#ifndef XDB_COMMON_SLICE_H_
#define XDB_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace xdb {

/// A pointer + length view over bytes. Does not own the data; the caller must
/// keep the backing storage alive for the Slice's lifetime.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Three-way byte comparison (the document order of node IDs, and the sort
  /// order of every B+tree in the engine).
  int Compare(const Slice& b) const {
    const size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) return -1;
      if (size_ > b.size_) return 1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

  bool operator==(const Slice& b) const {
    return size_ == b.size_ && std::memcmp(data_, b.data_, size_) == 0;
  }
  bool operator!=(const Slice& b) const { return !(*this == b); }
  bool operator<(const Slice& b) const { return Compare(b) < 0; }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace xdb

#endif  // XDB_COMMON_SLICE_H_
