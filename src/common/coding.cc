#include "common/coding.h"

#include <cstring>

namespace xdb {

void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}
void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

uint16_t DecodeFixed16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void PutBig32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v >> 24);
  buf[1] = static_cast<char>(v >> 16);
  buf[2] = static_cast<char>(v >> 8);
  buf[3] = static_cast<char>(v);
  dst->append(buf, 4);
}

void PutBig64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; i++) buf[i] = static_cast<char>(v >> (56 - 8 * i));
  dst->append(buf, 8);
}

uint32_t DecodeBig32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<uint32_t>(u[0]) << 24) |
         (static_cast<uint32_t>(u[1]) << 16) |
         (static_cast<uint32_t>(u[2]) << 8) | static_cast<uint32_t>(u[3]);
}

uint64_t DecodeBig64(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) v = (v << 8) | u[i];
  return v;
}

void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

size_t GetVarint64(const char* p, const char* limit, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  const char* q = p;
  while (q < limit && shift <= 63) {
    uint64_t byte = static_cast<unsigned char>(*q++);
    result |= (byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return static_cast<size_t>(q - p);
    }
    shift += 7;
  }
  return 0;
}

size_t GetVarint32(const char* p, const char* limit, uint32_t* v) {
  uint64_t v64;
  size_t n = GetVarint64(p, limit, &v64);
  if (n == 0 || v64 > UINT32_MAX) return 0;
  *v = static_cast<uint32_t>(v64);
  return n;
}

size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    n++;
  }
  return n;
}

void PutLengthPrefixed(std::string* dst, Slice s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

bool GetLengthPrefixed(Slice* input, Slice* out) {
  uint64_t len;
  size_t n = GetVarint64(input->data(), input->data() + input->size(), &len);
  if (n == 0 || input->size() < n + len) return false;
  *out = Slice(input->data() + n, static_cast<size_t>(len));
  input->RemovePrefix(n + static_cast<size_t>(len));
  return true;
}

void PutOrderedDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  // Flip: positive numbers get the sign bit set; negatives are bitwise
  // complemented, so the full encoding sorts in numeric order.
  if (bits & 0x8000000000000000ULL) {
    bits = ~bits;
  } else {
    bits |= 0x8000000000000000ULL;
  }
  PutBig64(dst, bits);
}

double DecodeOrderedDouble(const char* p) {
  uint64_t bits = DecodeBig64(p);
  if (bits & 0x8000000000000000ULL) {
    bits &= ~0x8000000000000000ULL;
  } else {
    bits = ~bits;
  }
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

namespace {
const uint32_t* CrcTable() {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}
}  // namespace

uint32_t Crc32(const char* data, size_t n) {
  const uint32_t* table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; i++)
    c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace xdb
