// Arena: block allocator for query-lifetime objects (matching instances,
// in-memory sequences). Everything allocated is freed at once when the arena
// dies, so evaluation hot paths never call free().
#ifndef XDB_COMMON_ARENA_H_
#define XDB_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace xdb {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns naturally-aligned memory; never fails (aborts on OOM like new).
  char* Allocate(size_t bytes);

  /// Construct a T inside the arena. T must be trivially destructible or the
  /// caller must not rely on its destructor running.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    char* mem = Allocate(sizeof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Total bytes reserved from the system (the memory-usage metric reported
  /// by the QuickXScan benchmarks).
  size_t MemoryUsage() const { return memory_usage_; }

 private:
  static constexpr size_t kBlockSize = 64 * 1024;

  char* alloc_ptr_ = nullptr;
  size_t alloc_remaining_ = 0;
  size_t memory_usage_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace xdb

#endif  // XDB_COMMON_ARENA_H_
