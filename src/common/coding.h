// Integer and string wire encodings shared by the token stream, packed XML
// records, index keys, and the WAL: fixed-width big/little-endian and LEB128
// varints, plus order-preserving encodings for index key components.
#ifndef XDB_COMMON_CODING_H_
#define XDB_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace xdb {

// --- fixed-width little-endian (storage-internal structures) ---

void PutFixed16(std::string* dst, uint16_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void EncodeFixed16(char* dst, uint16_t v);
void EncodeFixed32(char* dst, uint32_t v);
void EncodeFixed64(char* dst, uint64_t v);
uint16_t DecodeFixed16(const char* p);
uint32_t DecodeFixed32(const char* p);
uint64_t DecodeFixed64(const char* p);

// --- big-endian (byte-comparable key components) ---

void PutBig32(std::string* dst, uint32_t v);
void PutBig64(std::string* dst, uint64_t v);
uint32_t DecodeBig32(const char* p);
uint64_t DecodeBig64(const char* p);

// --- LEB128 varints (token stream, packed records) ---

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Returns bytes consumed, or 0 on malformed input.
size_t GetVarint32(const char* p, const char* limit, uint32_t* v);
size_t GetVarint64(const char* p, const char* limit, uint64_t* v);
size_t VarintLength(uint64_t v);

/// Length-prefixed string.
void PutLengthPrefixed(std::string* dst, Slice s);
/// Advances *input past the string on success.
bool GetLengthPrefixed(Slice* input, Slice* out);

/// Order-preserving encoding of an IEEE double: byte comparison of the output
/// matches numeric comparison of the input (NaN sorts last).
void PutOrderedDouble(std::string* dst, double v);
double DecodeOrderedDouble(const char* p);

/// CRC-32 (polynomial 0xEDB88320) over `n` bytes — shared by WAL records and
/// page checksums.
uint32_t Crc32(const char* data, size_t n);

}  // namespace xdb

#endif  // XDB_COMMON_CODING_H_
