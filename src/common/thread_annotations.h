// Clang Thread Safety Analysis attribute macros.
//
// These wrap the __attribute__((...)) spellings understood by Clang's
// -Wthread-safety pass so locking invariants live in the type system:
//
//   class Cache {
//     mutable Mutex mu_;
//     std::map<Key, Val> table_ XDB_GUARDED_BY(mu_);
//     void EvictLocked() XDB_REQUIRES(mu_);
//   };
//
// Under any other compiler (GCC builds in this repo) every macro expands to
// nothing, so annotated code stays portable. The analysis itself is enabled
// by the XDB_THREAD_SAFETY_ANALYSIS CMake option, which adds
// -Wthread-safety -Werror=thread-safety on Clang.
//
// Note that std::mutex and friends ship without these attributes, so the
// annotated wrappers in common/mutex.h must be used for guarded members —
// annotating a raw std::mutex member has no effect.
#ifndef XDB_COMMON_THREAD_ANNOTATIONS_H_
#define XDB_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define XDB_THREAD_ANNOTATION_(x) __has_attribute(x)
#else
#define XDB_THREAD_ANNOTATION_(x) 0
#endif

#if XDB_THREAD_ANNOTATION_(guarded_by)
#define XDB_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define XDB_THREAD_ANNOTATION_ATTRIBUTE_(x)
#endif

/// Marks a class as a lockable capability (mutexes, latches).
#define XDB_CAPABILITY(x) XDB_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define XDB_SCOPED_CAPABILITY XDB_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define XDB_GUARDED_BY(x) XDB_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define XDB_PT_GUARDED_BY(x) XDB_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Function requires the capability held (exclusively) on entry.
#define XDB_REQUIRES(...) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared on entry.
#define XDB_REQUIRES_SHARED(...) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define XDB_ACQUIRE(...) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define XDB_ACQUIRE_SHARED(...) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// Function releases a held capability.
#define XDB_RELEASE(...) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define XDB_RELEASE_SHARED(...) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

/// Releases a capability held in either mode (used by generic RAII guards).
#define XDB_RELEASE_GENERIC(...) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define XDB_EXCLUDES(...) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Return value is a reference to data guarded by `x`.
#define XDB_RETURN_CAPABILITY(x) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Opt a function out of the analysis (rare; justify in a comment).
#define XDB_NO_THREAD_SAFETY_ANALYSIS \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

/// Try-acquire: first argument is the success value.
#define XDB_TRY_ACQUIRE(...) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Assert (at analysis level) that the capability is held here.
#define XDB_ASSERT_CAPABILITY(x) \
  XDB_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#endif  // XDB_COMMON_THREAD_ANNOTATIONS_H_
