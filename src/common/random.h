// Deterministic PRNG for workload generators and property tests. Fixed
// algorithm (xorshift*) so test corpora are reproducible across platforms.
#ifndef XDB_COMMON_RANDOM_H_
#define XDB_COMMON_RANDOM_H_

#include <cstdint>

namespace xdb {

class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability num/den.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) / static_cast<double>(1ULL << 53);
  }

 private:
  uint64_t state_;
};

}  // namespace xdb

#endif  // XDB_COMMON_RANDOM_H_
