// XDM items and sequences: the in-memory result form of XPath evaluation
// (one of the four runtime data forms of Section 4.4).
#ifndef XDB_XDM_ITEM_H_
#define XDB_XDM_ITEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace xdb {

/// An atomic value as produced by atomization or literals.
struct AtomicValue {
  enum class Type { kString, kNumber, kBoolean };

  Type type = Type::kString;
  std::string str;
  double num = 0;
  bool boolean = false;

  static AtomicValue String(std::string s) {
    AtomicValue v;
    v.type = Type::kString;
    v.str = std::move(s);
    return v;
  }
  static AtomicValue Number(double d) {
    AtomicValue v;
    v.type = Type::kNumber;
    v.num = d;
    return v;
  }
  static AtomicValue Boolean(bool b) {
    AtomicValue v;
    v.type = Type::kBoolean;
    v.boolean = b;
    return v;
  }

  /// XPath effective boolean value.
  bool EffectiveBoolean() const;
  /// xs:double value (NaN if not numeric).
  double ToNumber() const;
  std::string ToString() const;
};

/// A node in an XPath result sequence, identified database-style: by its
/// document and prefix-encoded node ID rather than a pointer.
struct ResultNode {
  uint64_t doc_id = 0;
  std::string node_id;       // absolute prefix-encoded ID (empty = root)
  std::string string_value;  // typed/string value, when computed

  bool operator==(const ResultNode& o) const {
    return doc_id == o.doc_id && node_id == o.node_id;
  }
  bool operator<(const ResultNode& o) const {
    if (doc_id != o.doc_id) return doc_id < o.doc_id;
    return Slice(node_id).Compare(Slice(o.node_id)) < 0;  // document order
  }
};

/// An XPath result: a document-ordered, duplicate-free sequence of nodes.
using NodeSequence = std::vector<ResultNode>;

/// Sorts into document order and removes duplicates (node identity =
/// (doc_id, node_id)).
void NormalizeSequence(NodeSequence* seq);

/// XPath string -> number conversion ("" and garbage -> NaN).
double StringToNumber(Slice s);

}  // namespace xdb

#endif  // XDB_XDM_ITEM_H_
