#include "xdm/dom_tree.h"

#include "xml/node_id.h"

namespace xdb {

DomNode* DomTree::NewNode() {
  nodes_.push_back(std::make_unique<DomNode>());
  memory_bytes_ += sizeof(DomNode);
  return nodes_.back().get();
}

Result<std::unique_ptr<DomTree>> DomTree::FromTokens(Slice tokens) {
  auto tree = std::unique_ptr<DomTree>(new DomTree());
  DomNode* doc = tree->NewNode();
  doc->kind = NodeKind::kDocument;

  TokenReader reader(tokens);
  Token t;
  std::vector<DomNode*> stack{doc};
  std::vector<uint32_t> child_counter{0};

  auto attach = [&](DomNode* n, bool as_attr) {
    DomNode* parent = stack.back();
    n->parent = parent;
    uint32_t ordinal = ++child_counter.back();
    n->node_id = parent->node_id;
    nodeid::AppendChildId(ordinal, &n->node_id);
    tree->memory_bytes_ += n->node_id.capacity();
    if (as_attr) {
      parent->attrs.push_back(n);
    } else {
      parent->children.push_back(n);
    }
    tree->memory_bytes_ += sizeof(DomNode*);
  };

  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, reader.Next(&t));
    if (!more) break;
    switch (t.kind) {
      case TokenKind::kStartDocument:
      case TokenKind::kEndDocument:
        break;
      case TokenKind::kStartElement: {
        DomNode* n = tree->NewNode();
        n->kind = NodeKind::kElement;
        n->local = t.local;
        n->ns_uri = t.ns_uri;
        n->prefix = t.prefix;
        attach(n, /*as_attr=*/false);
        stack.push_back(n);
        child_counter.push_back(0);
        break;
      }
      case TokenKind::kEndElement:
        if (stack.size() <= 1)
          return Status::Corruption("unbalanced token stream");
        stack.pop_back();
        child_counter.pop_back();
        break;
      case TokenKind::kNamespaceDecl: {
        DomNode* n = tree->NewNode();
        n->kind = NodeKind::kNamespace;
        n->local = t.local;   // prefix being declared
        n->ns_uri = t.ns_uri; // bound URI
        attach(n, /*as_attr=*/true);
        break;
      }
      case TokenKind::kAttribute: {
        DomNode* n = tree->NewNode();
        n->kind = NodeKind::kAttribute;
        n->local = t.local;
        n->ns_uri = t.ns_uri;
        n->prefix = t.prefix;
        n->value.assign(t.text.data(), t.text.size());
        tree->memory_bytes_ += n->value.capacity();
        attach(n, /*as_attr=*/true);
        break;
      }
      case TokenKind::kText: {
        DomNode* n = tree->NewNode();
        n->kind = NodeKind::kText;
        n->value.assign(t.text.data(), t.text.size());
        tree->memory_bytes_ += n->value.capacity();
        attach(n, /*as_attr=*/false);
        break;
      }
      case TokenKind::kComment: {
        DomNode* n = tree->NewNode();
        n->kind = NodeKind::kComment;
        n->value.assign(t.text.data(), t.text.size());
        tree->memory_bytes_ += n->value.capacity();
        attach(n, /*as_attr=*/false);
        break;
      }
      case TokenKind::kProcessingInstruction: {
        DomNode* n = tree->NewNode();
        n->kind = NodeKind::kProcessingInstruction;
        n->local = t.local;
        n->value.assign(t.text.data(), t.text.size());
        tree->memory_bytes_ += n->value.capacity();
        attach(n, /*as_attr=*/false);
        break;
      }
    }
  }
  if (stack.size() != 1)
    return Status::Corruption("token stream ended with open elements");
  tree->memory_bytes_ += tree->nodes_.capacity() * sizeof(void*);
  tree->root_ = doc;
  return tree;
}

namespace {
void CollectText(const DomNode* n, std::string* out) {
  if (n->kind == NodeKind::kText) {
    out->append(n->value);
    return;
  }
  for (const DomNode* c : n->children) CollectText(c, out);
}
}  // namespace

std::string DomTree::StringValue(const DomNode* node) {
  switch (node->kind) {
    case NodeKind::kAttribute:
    case NodeKind::kText:
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
    case NodeKind::kNamespace:
      return node->value;
    default: {
      std::string out;
      CollectText(node, &out);
      return out;
    }
  }
}

}  // namespace xdb
