#include "xdm/item.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

namespace xdb {

bool AtomicValue::EffectiveBoolean() const {
  switch (type) {
    case Type::kString: return !str.empty();
    case Type::kNumber: return num != 0 && !std::isnan(num);
    case Type::kBoolean: return boolean;
  }
  return false;
}

double AtomicValue::ToNumber() const {
  switch (type) {
    case Type::kString: return StringToNumber(str);
    case Type::kNumber: return num;
    case Type::kBoolean: return boolean ? 1.0 : 0.0;
  }
  return std::nan("");
}

std::string AtomicValue::ToString() const {
  switch (type) {
    case Type::kString: return str;
    case Type::kBoolean: return boolean ? "true" : "false";
    case Type::kNumber: {
      if (std::isnan(num)) return "NaN";
      if (num == static_cast<int64_t>(num) && std::abs(num) < 1e15)
        return std::to_string(static_cast<int64_t>(num));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", num);
      return buf;
    }
  }
  return "";
}

void NormalizeSequence(NodeSequence* seq) {
  std::sort(seq->begin(), seq->end());
  seq->erase(std::unique(seq->begin(), seq->end()), seq->end());
}

double StringToNumber(Slice s) {
  // Trim whitespace, then require a full numeric parse.
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) b++;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) e--;
  if (b == e) return std::nan("");
  std::string t(s.data() + b, e - b);
  char* endp = nullptr;
  double v = std::strtod(t.c_str(), &endp);
  if (endp != t.c_str() + t.size()) return std::nan("");
  return v;
}

}  // namespace xdb
