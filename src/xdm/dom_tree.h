// DomTree: a pointer-based in-memory XML tree.
//
// This is the baseline representation the paper argues a database engine
// should avoid building ("no separate trees of in-memory format are built",
// Section 3.2; DOM-based evaluation is "orders of magnitude" slower,
// Section 4.2). It exists to power the DOM XPath evaluator baseline and as
// the reference implementation for differential testing of QuickXScan.
//
// Node IDs are assigned with the same convention the packer uses — child n
// (namespace nodes, then attributes, then content, in token order) gets
// relative ID ChildId(n) — so results are comparable across evaluators.
#ifndef XDB_XDM_DOM_TREE_H_
#define XDB_XDM_DOM_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "xml/name_dictionary.h"
#include "xml/node_kind.h"
#include "xml/token_stream.h"

namespace xdb {

struct DomNode {
  NodeKind kind = NodeKind::kElement;
  NameId local = kEmptyNameId;
  NameId ns_uri = kEmptyNameId;
  NameId prefix = kEmptyNameId;
  std::string value;  // text/comment/PI/attribute/namespace value
  DomNode* parent = nullptr;
  std::vector<DomNode*> attrs;     // namespace nodes then attribute nodes
  std::vector<DomNode*> children;  // element/text/comment/PI nodes
  std::string node_id;             // absolute prefix-encoded ID
};

class DomTree {
 public:
  /// Builds a tree from a buffered token stream.
  static Result<std::unique_ptr<DomTree>> FromTokens(Slice tokens);

  /// The document node.
  const DomNode* root() const { return root_; }

  /// Approximate heap footprint in bytes (the DOM memory metric of E6).
  size_t memory_bytes() const { return memory_bytes_; }
  size_t node_count() const { return nodes_.size(); }

  /// XPath string value of a node (concatenated descendant text).
  static std::string StringValue(const DomNode* node);

 private:
  DomTree() = default;
  DomNode* NewNode();

  std::vector<std::unique_ptr<DomNode>> nodes_;
  DomNode* root_ = nullptr;
  size_t memory_bytes_ = 0;
};

}  // namespace xdb

#endif  // XDB_XDM_DOM_TREE_H_
