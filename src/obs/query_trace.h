// Per-query EXPLAIN and trace: the profile a query fills in when
// QueryOptions::explain/trace is set, plus its stable text renderings.
//
// The paper's central planner claim — QuickXScan full scan vs. value-index
// DocID/NodeID lists with ANDing/ORing (Table 2) — is unverifiable at
// runtime without this: EXPLAIN names the chosen access path and the reason,
// and reports the cardinality funnel (index postings -> candidates ->
// anchors -> evaluated -> results) per phase with wall/CPU timings.
//
// Two renderings:
//  * PlanText(): deterministic — no timings, no pointers — so golden tests
//    can pin the exact format.
//  * ToText(): PlanText() plus the timing/fan-out section for humans.
#ifndef XDB_OBS_QUERY_TRACE_H_
#define XDB_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xdb {
namespace obs {

/// One timed phase of query execution (plan, probe, merge, eval, recheck).
struct QueryPhase {
  std::string name;
  uint64_t wall_us = 0;
  uint64_t cpu_us = 0;
};

/// Everything EXPLAIN/trace knows about one execution. Filled by
/// Collection::ExecutePath when enabled; always default-constructed (cheap)
/// when not.
struct QueryProfile {
  bool enabled = false;  // explain requested: plan + counters populated
  bool trace = false;    // trace requested: per-step trace_lines too

  std::string collection;
  std::string query;  // the XPath text as given

  // --- plan ---
  std::string access_method;  // AccessMethodName() of the chosen path
  std::string reason;         // why the planner chose it
  std::vector<std::string> probes;  // one line per planned index probe
  bool disjunctive = false;
  bool need_recheck = false;
  size_t anchor_step = 0;  // meaningful for node-level methods

  // --- planner inputs ---
  uint64_t doc_count = 0;
  double avg_records_per_doc = 0;
  double nodes_per_doc = 0;     // from collected stats (0 when unavailable)
  uint64_t stats_epoch = 0;     // collection stats epoch the plan was built at
  bool stats_valid = false;     // cost-based (true) vs heuristic fallback
  /// "hit", "miss", or "off" — whether this execution reused a compiled
  /// plan from the per-collection plan cache.
  std::string plan_cache = "off";

  // --- cardinality funnel ---
  uint64_t index_postings = 0;
  uint64_t candidate_docs = 0;
  uint64_t candidate_anchors = 0;
  uint64_t docs_evaluated = 0;
  uint64_t records_fetched = 0;
  uint64_t results = 0;

  // --- QuickXScan work ---
  uint64_t scan_events = 0;         // parse/storage events pumped
  uint64_t scan_instances = 0;      // pattern instances created
  uint64_t scan_peak_live = 0;      // max live instances in any one doc

  // --- parallel fan-out ---
  int parallelism = 1;
  size_t chunks = 1;  // work ranges the candidate list was split into

  // --- buffer traffic (pool accesses attributed to this query; approximate
  // under concurrent load — it is a before/after delta of pool counters) ---
  uint64_t pages_fetched = 0;

  std::vector<QueryPhase> phases;
  std::vector<std::string> trace_lines;  // trace=true only

  // --- wait-state attribution (always collected; rolled into the profile
  // only when enabled — see obs/wait_state.h). One line per wait state the
  // query actually hit, in WaitState enum order. ---
  struct WaitLine {
    std::string state;  // WaitStateName() token
    uint64_t total_us = 0;
    uint64_t count = 0;
  };
  std::vector<WaitLine> waits;
  /// Sum over `waits` (microseconds spent off-CPU or probing, attributed).
  uint64_t wait_total_us = 0;

  void AddPhase(const std::string& name, uint64_t wall_us, uint64_t cpu_us) {
    phases.push_back(QueryPhase{name, wall_us, cpu_us});
  }

  /// Deterministic plan text (golden-tested). Layout:
  ///   query: <xpath>
  ///   access path: <method> (<reason>)
  ///     probe: <index> <op> <value> [containment]
  ///   stats: epoch=E docs=N records/doc=R.RR nodes/doc=V.VV (cost-based|heuristic)
  ///   plan cache: hit|miss|off
  ///   recheck: yes|no    [anchoring step: N]
  ///   cardinality: postings=.. candidates=.. evaluated=.. results=..
  ///   scan: events=.. instances=.. peak_live=..
  ///   parallelism: N (chunks=M)
  std::string PlanText() const;

  /// PlanText() plus timings, pages fetched, and trace lines.
  std::string ToText() const;
};

/// Scoped wall+CPU timer appending one QueryPhase on destruction (or Stop()).
/// CPU time is the calling thread's CLOCK_THREAD_CPUTIME_ID, so phases that
/// fan out measure the coordinating thread only — per-chunk work shows up in
/// the chunk counters instead.
class PhaseTimer {
 public:
  PhaseTimer(QueryProfile* profile, const char* name);
  ~PhaseTimer() { Stop(); }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  void Stop();

 private:
  QueryProfile* profile_;  // null = disabled (no-op timer)
  const char* name_;
  uint64_t wall_start_us_ = 0;
  uint64_t cpu_start_us_ = 0;
};

}  // namespace obs
}  // namespace xdb

#endif  // XDB_OBS_QUERY_TRACE_H_
