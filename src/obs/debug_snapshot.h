// DebugSnapshot: one deterministic, serializable view of engine health —
// the metrics snapshot, recent events, captured slow queries, per-collection
// statistics epochs and buffer residency, and the replication watermarks.
//
// This is the struct the introspection surface is built from: Engine::
// DebugSnapshot() assembles it, tools/xdb_top renders it (human text or
// --json), and the future network layer's admin endpoint will serialize it
// per request. Determinism contract: collections sorted by name, metrics
// sorted by name (MetricsSnapshot's own contract), events and slow queries
// in sequence order — so ToJson() of equal states is byte-equal and
// FromJson(ToJson(s)).ToJson() == ToJson(s) (round-trip pinned by tests and
// the CI schema smoke-test).
#ifndef XDB_OBS_DEBUG_SNAPSHOT_H_
#define XDB_OBS_DEBUG_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"

namespace xdb {
namespace obs {

struct DebugSnapshot {
  /// Wall clock at capture, microseconds since epoch.
  uint64_t captured_at_us = 0;
  /// "primary" or "replica".
  std::string role = "primary";
  /// Replication watermark (0 on a never-promoted primary).
  uint64_t applied_csn = 0;
  /// WAL positions (0 / 0 when the engine has no WAL).
  uint64_t wal_size = 0;
  uint64_t wal_durable_upto = 0;

  struct CollectionInfo {
    std::string name;
    uint64_t doc_count = 0;
    uint64_t node_count = 0;  // running estimate
    uint64_t stats_epoch = 0;
    bool stats_valid = false;
    /// Buffer-pool residency: frames holding a page vs. the pool's frame
    /// capacity, plus the cumulative hit/miss counters.
    uint64_t buffer_resident = 0;
    uint64_t buffer_capacity = 0;
    uint64_t buffer_hits = 0;
    uint64_t buffer_misses = 0;

    bool operator==(const CollectionInfo&) const = default;
  };
  std::vector<CollectionInfo> collections;  // sorted by name

  MetricsSnapshot metrics;
  std::vector<Event> events;                 // oldest first
  std::vector<SlowQueryRecord> slow_queries; // oldest first

  /// Canonical JSON (stable key order; the round-trip contract above).
  std::string ToJson() const;
  /// Human rendering: header, collections, wait profile, slow queries,
  /// recent events (what xdb_top prints without --json).
  std::string ToText() const;
  /// Parses ToJson() output back. Only the subset this serializer emits is
  /// understood (same contract as MetricsSnapshot::FromJson).
  static Result<DebugSnapshot> FromJson(const std::string& json);
};

}  // namespace obs
}  // namespace xdb

#endif  // XDB_OBS_DEBUG_SNAPSHOT_H_
