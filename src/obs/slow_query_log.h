// Slow-query log: a bounded lock-free ring of completed query profiles that
// crossed EngineOptions::slow_query_us. The concurrent sibling of the
// EventLog — same seqlock slot protocol (every reader-visible byte is an
// atomic word; a per-slot stamp is odd while a writer owns the slot and
// ticket-tagged even once published; readers re-validate after copying and
// discard torn slots) with larger inline string capacity for the query text.
//
// Record() is wait-free and called from the query path after the result is
// assembled, so it must never block or allocate shared state; Recent() is
// how EXPLAIN-less production queries get diagnosed after the fact
// (DebugSnapshot / xdb_top surface it).
#ifndef XDB_OBS_SLOW_QUERY_LOG_H_
#define XDB_OBS_SLOW_QUERY_LOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/wait_state.h"

namespace xdb {
namespace obs {

/// One captured slow query: identity, outcome, and the wait-state breakdown
/// accumulated by the query's WaitStats. Strings are truncated to the ring
/// slot's inline capacity at record time.
struct SlowQueryRecord {
  uint64_t seq = 0;           // global record order, starts at 0
  uint64_t timestamp_us = 0;  // wall clock at completion, us since epoch
  uint64_t wall_us = 0;       // total execution wall time
  uint64_t results = 0;
  uint64_t parallelism = 1;
  std::string collection;
  std::string query;
  std::string access_method;
  uint64_t wait_us[kWaitStateCount] = {};
  uint64_t wait_count[kWaitStateCount] = {};

  /// Sum of the per-state wait totals.
  uint64_t TotalWaitUs() const {
    uint64_t t = 0;
    for (size_t i = 0; i < kWaitStateCount; ++i) t += wait_us[i];
    return t;
  }
  /// One line: "seq=3 ts=... wall=1234us coll=c method=docid-list
  /// results=9 par=2 waits[buffer_io=900us/12 ...] q=//a//b".
  std::string ToString() const;
};

class SlowQueryLog {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit SlowQueryLog(size_t capacity = 128);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Wait-free, lock-free, safe under any held mutex. `rec.seq` is ignored
  /// (the ring assigns it); strings are truncated to the inline capacities.
  void Record(const SlowQueryRecord& rec);

  /// The most recent records in record order (oldest first), at most `max`.
  /// Slots a writer is concurrently overwriting are skipped.
  std::vector<SlowQueryRecord> Recent(size_t max = SIZE_MAX) const;

  /// How many records have been pushed out of the ring since construction.
  uint64_t overwritten() const;
  /// Total records ever written.
  uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }
  size_t capacity() const { return slots_.size(); }

  static constexpr size_t kMaxQuery = 184;
  static constexpr size_t kMaxCollection = 40;
  static constexpr size_t kMaxAccessMethod = 24;

 private:
  static constexpr size_t kQueryWords = kMaxQuery / 8;            // 23
  static constexpr size_t kCollectionWords = kMaxCollection / 8;  // 5
  static constexpr size_t kMethodWords = kMaxAccessMethod / 8;    // 3

  /// All fields atomic words; see EventLog::Slot for the stamp protocol.
  struct Slot {
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> timestamp_us{0};
    std::atomic<uint64_t> wall_us{0};
    std::atomic<uint64_t> results{0};
    std::atomic<uint64_t> parallelism{0};
    std::array<std::atomic<uint64_t>, kWaitStateCount> wait_us{};
    std::array<std::atomic<uint64_t>, kWaitStateCount> wait_count{};
    std::atomic<uint64_t> collection_len{0};
    std::atomic<uint64_t> query_len{0};
    std::atomic<uint64_t> method_len{0};
    std::array<std::atomic<uint64_t>, kCollectionWords> collection{};
    std::array<std::atomic<uint64_t>, kQueryWords> query{};
    std::array<std::atomic<uint64_t>, kMethodWords> method{};
  };

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};  // next ticket == total recorded
};

}  // namespace obs
}  // namespace xdb

#endif  // XDB_OBS_SLOW_QUERY_LOG_H_
