// Structured event log: a bounded lock-free ring of timestamped engine
// events (checkpoints, scrub findings, quarantines, deadlock victims,
// group-commit rounds, transient-I/O retries).
//
// Unlike the metrics registry (aggregates), this answers "what happened,
// in order, recently" — the first thing needed when a counter looks wrong.
// Requirements that shape the design:
//
//  * Emit() is wait-free for writers and safe from any thread, including
//    under a held component mutex (it takes no locks, so it cannot deadlock
//    against any lock order).
//  * Bounded memory: a fixed ring, overwrite-oldest. Readers learn how many
//    events they missed via overwritten().
//  * TSan-clean without locks: every slot byte readers can observe is an
//    atomic word. A per-slot stamp is odd while a writer owns the slot and
//    even (ticket-tagged) once published; Recent() re-validates the stamp
//    after copying and discards torn slots instead of blocking.
#ifndef XDB_OBS_EVENT_LOG_H_
#define XDB_OBS_EVENT_LOG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace xdb {
namespace obs {

enum class EventKind : uint8_t {
  kRecoveryBegin = 1,
  kRecoveryEnd = 2,
  kCheckpointBegin = 3,
  kCheckpointEnd = 4,
  kScrubBegin = 5,
  kScrubFinding = 6,
  kScrubEnd = 7,
  kPageQuarantined = 8,
  kCollectionQuarantined = 9,
  kDeadlockVictim = 10,
  kLockTimeout = 11,
  kGroupCommitRound = 12,
  kIoRetry = 13,
  kWalTornTail = 14,
  kWalCorruptRecords = 15,
  kStatsDegraded = 16,
  kPlanCacheInvalidated = 17,
  kReplicaStalled = 18,
  kReplicaCaughtUp = 19,
  kPromoted = 20,
};
const char* EventKindName(EventKind k);

/// One decoded event. arg0/arg1 are kind-specific (page id, batch size,
/// transaction id, …) — documented at each emit site; `message` is a short
/// human string (component + detail), truncated to the slot's inline
/// capacity at emit time.
struct Event {
  uint64_t seq = 0;           // global emit order, starts at 0
  uint64_t timestamp_us = 0;  // wall clock, microseconds since epoch
  EventKind kind = EventKind::kRecoveryBegin;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  std::string message;

  std::string ToString() const;  // "seq=12 ts=... checkpoint.end ... msg"
};

class EventLog {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit EventLog(size_t capacity = 1024);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Wait-free, lock-free, safe under any held mutex. The message is
  /// truncated to kMaxMessage bytes.
  void Emit(EventKind kind, uint64_t arg0, uint64_t arg1,
            const std::string& message);
  void Emit(EventKind kind, const std::string& message) {
    Emit(kind, 0, 0, message);
  }

  /// The most recent events in emit order (oldest first), at most `max`.
  /// Slots a writer is concurrently overwriting are skipped, so under heavy
  /// write load the result can be slightly shorter than the ring.
  std::vector<Event> Recent(size_t max = SIZE_MAX) const;

  /// How many events have been pushed out of the ring since construction.
  uint64_t overwritten() const;
  /// Total events ever emitted.
  uint64_t emitted() const {
    return next_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return slots_.size(); }

  static constexpr size_t kMaxMessage = 104;

 private:
  static constexpr size_t kMsgWords = kMaxMessage / 8;  // 13 words

  /// All fields atomic words: readers race with overwriting writers by
  /// design, and the stamp protocol (odd = claimed, ticket*2+2 = published)
  /// detects torn reads without the reader ever writing shared state.
  struct Slot {
    std::atomic<uint64_t> stamp{0};
    std::atomic<uint64_t> timestamp_us{0};
    std::atomic<uint64_t> kind{0};
    std::atomic<uint64_t> arg0{0};
    std::atomic<uint64_t> arg1{0};
    std::atomic<uint64_t> msg_len{0};
    std::array<std::atomic<uint64_t>, kMsgWords> msg{};
  };

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};  // next ticket == total emitted
};

}  // namespace obs
}  // namespace xdb

#endif  // XDB_OBS_EVENT_LOG_H_
