#include "obs/query_trace.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace xdb {
namespace obs {

namespace {
void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

uint64_t ThreadCpuMicros() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<uint64_t>(ts.tv_nsec) / 1000;
}

uint64_t WallMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::string QueryProfile::PlanText() const {
  std::string out;
  Appendf(&out, "query: %s\n", query.c_str());
  Appendf(&out, "access path: %s (%s)\n", access_method.c_str(),
          reason.c_str());
  for (const std::string& p : probes) Appendf(&out, "  probe: %s\n", p.c_str());
  if (!probes.empty() && probes.size() > 1)
    Appendf(&out, "  combine: %s\n", disjunctive ? "ORing" : "ANDing");
  Appendf(&out,
          "stats: epoch=%" PRIu64 " docs=%" PRIu64
          " records/doc=%.2f nodes/doc=%.2f (%s)\n",
          stats_epoch, doc_count, avg_records_per_doc, nodes_per_doc,
          stats_valid ? "cost-based" : "heuristic");
  Appendf(&out, "plan cache: %s\n", plan_cache.c_str());
  Appendf(&out, "recheck: %s", need_recheck ? "yes" : "no");
  if (access_method == "nodeid-list" || access_method == "nodeid-anding/oring")
    Appendf(&out, "  anchor step: %zu", anchor_step);
  out.push_back('\n');
  Appendf(&out,
          "cardinality: postings=%" PRIu64 " candidate_docs=%" PRIu64
          " candidate_anchors=%" PRIu64 " docs_evaluated=%" PRIu64
          " records_fetched=%" PRIu64 " results=%" PRIu64 "\n",
          index_postings, candidate_docs, candidate_anchors, docs_evaluated,
          records_fetched, results);
  Appendf(&out,
          "scan: events=%" PRIu64 " instances=%" PRIu64 " peak_live=%" PRIu64
          "\n",
          scan_events, scan_instances, scan_peak_live);
  Appendf(&out, "parallelism: %d (chunks=%zu)\n", parallelism, chunks);
  return out;
}

std::string QueryProfile::ToText() const {
  std::string out = PlanText();
  Appendf(&out, "pages fetched: %" PRIu64 "\n", pages_fetched);
  for (const QueryPhase& ph : phases)
    Appendf(&out, "phase %-8s wall=%" PRIu64 "us cpu=%" PRIu64 "us\n",
            ph.name.c_str(), ph.wall_us, ph.cpu_us);
  for (const WaitLine& w : waits)
    Appendf(&out, "wait  %-11s total=%" PRIu64 "us count=%" PRIu64 "\n",
            w.state.c_str(), w.total_us, w.count);
  if (!waits.empty())
    Appendf(&out, "wait total: %" PRIu64 "us\n", wait_total_us);
  for (const std::string& line : trace_lines)
    Appendf(&out, "trace: %s\n", line.c_str());
  return out;
}

PhaseTimer::PhaseTimer(QueryProfile* profile, const char* name)
    : profile_(profile != nullptr && profile->enabled ? profile : nullptr),
      name_(name) {
  if (profile_ == nullptr) return;
  wall_start_us_ = WallMicros();
  cpu_start_us_ = ThreadCpuMicros();
}

void PhaseTimer::Stop() {
  if (profile_ == nullptr) return;
  profile_->AddPhase(name_, WallMicros() - wall_start_us_,
                     ThreadCpuMicros() - cpu_start_us_);
  profile_ = nullptr;
}

}  // namespace obs
}  // namespace xdb
