#include "obs/debug_snapshot.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace xdb {
namespace obs {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendKeyU64(std::string* out, const char* key, uint64_t v, bool comma) {
  if (comma) out->append(", ");
  out->push_back('"');
  out->append(key);
  out->append("\": ");
  AppendU64(out, v);
}

void AppendKeyString(std::string* out, const char* key, const std::string& v,
                     bool comma) {
  if (comma) out->append(", ");
  out->push_back('"');
  out->append(key);
  out->append("\": ");
  AppendJsonString(out, v);
}

void AppendWaitArray(std::string* out, const char* key, const uint64_t* vs) {
  out->append(", \"");
  out->append(key);
  out->append("\": [");
  for (size_t i = 0; i < kWaitStateCount; ++i) {
    if (i) out->push_back(',');
    AppendU64(out, vs[i]);
  }
  out->push_back(']');
}

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0)
    out->append(buf,
                std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

/// Minimal recursive-descent parser for exactly the JSON ToJson() emits
/// (the same contract as MetricsSnapshot::FromJson; the nested metrics
/// object is delegated to that parser by balanced-brace capture).
class Parser {
 public:
  explicit Parser(const std::string& in) : in_(in) {}

  Result<DebugSnapshot> Parse() {
    DebugSnapshot snap;
    XDB_RETURN_NOT_OK(Expect('{'));
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return snap;
    }
    for (;;) {
      std::string key;
      XDB_RETURN_NOT_OK(ParseString(&key));
      XDB_RETURN_NOT_OK(Expect(':'));
      if (key == "captured_at_us") {
        XDB_RETURN_NOT_OK(ParseU64(&snap.captured_at_us));
      } else if (key == "role") {
        XDB_RETURN_NOT_OK(ParseString(&snap.role));
      } else if (key == "applied_csn") {
        XDB_RETURN_NOT_OK(ParseU64(&snap.applied_csn));
      } else if (key == "wal_size") {
        XDB_RETURN_NOT_OK(ParseU64(&snap.wal_size));
      } else if (key == "wal_durable_upto") {
        XDB_RETURN_NOT_OK(ParseU64(&snap.wal_durable_upto));
      } else if (key == "collections") {
        XDB_RETURN_NOT_OK(ParseCollections(&snap.collections));
      } else if (key == "metrics") {
        std::string sub;
        XDB_RETURN_NOT_OK(CaptureObject(&sub));
        XDB_ASSIGN_OR_RETURN(snap.metrics, MetricsSnapshot::FromJson(sub));
      } else if (key == "events") {
        XDB_RETURN_NOT_OK(ParseEvents(&snap.events));
      } else if (key == "slow_queries") {
        XDB_RETURN_NOT_OK(ParseSlowQueries(&snap.slow_queries));
      } else {
        return Status::InvalidArgument("debug snapshot json: unknown key " +
                                       key);
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      XDB_RETURN_NOT_OK(Expect('}'));
      return snap;
    }
  }

 private:
  char Peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\n' || in_[pos_] == '\t' ||
            in_[pos_] == '\r'))
      ++pos_;
  }
  Status Expect(char c) {
    SkipWs();
    if (Peek() != c)
      return Status::InvalidArgument(
          std::string("debug snapshot json: expected '") + c + "' at offset " +
          std::to_string(pos_));
    ++pos_;
    return Status::OK();
  }
  Status ParseString(std::string* out) {
    SkipWs();
    XDB_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < in_.size() && in_[pos_] != '"') {
      char c = in_[pos_++];
      if (c == '\\' && pos_ < in_.size()) {
        char e = in_[pos_++];
        switch (e) {
          case 'n':
            out->push_back('\n');
            break;
          case 'u': {
            if (pos_ + 4 > in_.size())
              return Status::InvalidArgument(
                  "debug snapshot json: bad \\u escape");
            unsigned v = 0;
            std::sscanf(in_.c_str() + pos_, "%4x", &v);
            pos_ += 4;
            out->push_back(static_cast<char>(v));
            break;
          }
          default:
            out->push_back(e);
        }
      } else {
        out->push_back(c);
      }
    }
    return Expect('"');
  }
  Status ParseU64(uint64_t* out) {
    SkipWs();
    if (Peek() < '0' || Peek() > '9')
      return Status::InvalidArgument(
          "debug snapshot json: expected number at " + std::to_string(pos_));
    uint64_t v = 0;
    while (pos_ < in_.size() && in_[pos_] >= '0' && in_[pos_] <= '9')
      v = v * 10 + static_cast<uint64_t>(in_[pos_++] - '0');
    *out = v;
    return Status::OK();
  }
  Status ParseBool(bool* out) {
    SkipWs();
    if (in_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = true;
      return Status::OK();
    }
    if (in_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = false;
      return Status::OK();
    }
    return Status::InvalidArgument("debug snapshot json: expected bool at " +
                                   std::to_string(pos_));
  }
  Status ParseWaitArray(uint64_t* vs) {
    XDB_RETURN_NOT_OK(Expect('['));
    for (size_t i = 0; i < kWaitStateCount; ++i) {
      if (i) XDB_RETURN_NOT_OK(Expect(','));
      XDB_RETURN_NOT_OK(ParseU64(&vs[i]));
    }
    return Expect(']');
  }
  /// Captures one balanced `{...}` object verbatim (string-aware), leaving
  /// pos_ just past its closing brace.
  Status CaptureObject(std::string* out) {
    SkipWs();
    if (Peek() != '{')
      return Status::InvalidArgument(
          "debug snapshot json: expected object at " + std::to_string(pos_));
    size_t start = pos_;
    int depth = 0;
    bool in_string = false;
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (in_string) {
        if (c == '\\' && pos_ < in_.size())
          ++pos_;
        else if (c == '"')
          in_string = false;
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          out->assign(in_, start, pos_ - start);
          return Status::OK();
        }
      }
    }
    return Status::InvalidArgument("debug snapshot json: unterminated object");
  }
  Status ParseCollections(std::vector<DebugSnapshot::CollectionInfo>* out) {
    XDB_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      DebugSnapshot::CollectionInfo ci;
      XDB_RETURN_NOT_OK(Expect('{'));
      for (;;) {
        std::string key;
        XDB_RETURN_NOT_OK(ParseString(&key));
        XDB_RETURN_NOT_OK(Expect(':'));
        if (key == "name") {
          XDB_RETURN_NOT_OK(ParseString(&ci.name));
        } else if (key == "doc_count") {
          XDB_RETURN_NOT_OK(ParseU64(&ci.doc_count));
        } else if (key == "node_count") {
          XDB_RETURN_NOT_OK(ParseU64(&ci.node_count));
        } else if (key == "stats_epoch") {
          XDB_RETURN_NOT_OK(ParseU64(&ci.stats_epoch));
        } else if (key == "stats_valid") {
          XDB_RETURN_NOT_OK(ParseBool(&ci.stats_valid));
        } else if (key == "buffer_resident") {
          XDB_RETURN_NOT_OK(ParseU64(&ci.buffer_resident));
        } else if (key == "buffer_capacity") {
          XDB_RETURN_NOT_OK(ParseU64(&ci.buffer_capacity));
        } else if (key == "buffer_hits") {
          XDB_RETURN_NOT_OK(ParseU64(&ci.buffer_hits));
        } else if (key == "buffer_misses") {
          XDB_RETURN_NOT_OK(ParseU64(&ci.buffer_misses));
        } else {
          return Status::InvalidArgument(
              "debug snapshot json: unknown collection key " + key);
        }
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        XDB_RETURN_NOT_OK(Expect('}'));
        break;
      }
      out->push_back(std::move(ci));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      return Expect(']');
    }
  }
  Status ParseEvents(std::vector<Event>* out) {
    XDB_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      Event e;
      XDB_RETURN_NOT_OK(Expect('{'));
      for (;;) {
        std::string key;
        XDB_RETURN_NOT_OK(ParseString(&key));
        XDB_RETURN_NOT_OK(Expect(':'));
        if (key == "seq") {
          XDB_RETURN_NOT_OK(ParseU64(&e.seq));
        } else if (key == "timestamp_us") {
          XDB_RETURN_NOT_OK(ParseU64(&e.timestamp_us));
        } else if (key == "kind") {
          uint64_t k = 0;
          XDB_RETURN_NOT_OK(ParseU64(&k));
          e.kind = static_cast<EventKind>(k);
        } else if (key == "arg0") {
          XDB_RETURN_NOT_OK(ParseU64(&e.arg0));
        } else if (key == "arg1") {
          XDB_RETURN_NOT_OK(ParseU64(&e.arg1));
        } else if (key == "message") {
          XDB_RETURN_NOT_OK(ParseString(&e.message));
        } else {
          return Status::InvalidArgument(
              "debug snapshot json: unknown event key " + key);
        }
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        XDB_RETURN_NOT_OK(Expect('}'));
        break;
      }
      out->push_back(std::move(e));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      return Expect(']');
    }
  }
  Status ParseSlowQueries(std::vector<SlowQueryRecord>* out) {
    XDB_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SlowQueryRecord r;
      XDB_RETURN_NOT_OK(Expect('{'));
      for (;;) {
        std::string key;
        XDB_RETURN_NOT_OK(ParseString(&key));
        XDB_RETURN_NOT_OK(Expect(':'));
        if (key == "seq") {
          XDB_RETURN_NOT_OK(ParseU64(&r.seq));
        } else if (key == "timestamp_us") {
          XDB_RETURN_NOT_OK(ParseU64(&r.timestamp_us));
        } else if (key == "wall_us") {
          XDB_RETURN_NOT_OK(ParseU64(&r.wall_us));
        } else if (key == "results") {
          XDB_RETURN_NOT_OK(ParseU64(&r.results));
        } else if (key == "parallelism") {
          XDB_RETURN_NOT_OK(ParseU64(&r.parallelism));
        } else if (key == "collection") {
          XDB_RETURN_NOT_OK(ParseString(&r.collection));
        } else if (key == "query") {
          XDB_RETURN_NOT_OK(ParseString(&r.query));
        } else if (key == "access_method") {
          XDB_RETURN_NOT_OK(ParseString(&r.access_method));
        } else if (key == "wait_us") {
          XDB_RETURN_NOT_OK(ParseWaitArray(r.wait_us));
        } else if (key == "wait_count") {
          XDB_RETURN_NOT_OK(ParseWaitArray(r.wait_count));
        } else {
          return Status::InvalidArgument(
              "debug snapshot json: unknown slow-query key " + key);
        }
        SkipWs();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        XDB_RETURN_NOT_OK(Expect('}'));
        break;
      }
      out->push_back(std::move(r));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      return Expect(']');
    }
  }

  const std::string& in_;
  size_t pos_ = 0;
};

}  // namespace

std::string DebugSnapshot::ToJson() const {
  std::string out;
  out.reserve(4096);
  out.append("{\n\"captured_at_us\": ");
  AppendU64(&out, captured_at_us);
  AppendKeyString(&out, "role", role, true);
  AppendKeyU64(&out, "applied_csn", applied_csn, true);
  AppendKeyU64(&out, "wal_size", wal_size, true);
  AppendKeyU64(&out, "wal_durable_upto", wal_durable_upto, true);
  out.append(",\n\"collections\": [");
  for (size_t i = 0; i < collections.size(); ++i) {
    const CollectionInfo& ci = collections[i];
    if (i) out.push_back(',');
    out.append("\n {");
    AppendKeyString(&out, "name", ci.name, false);
    AppendKeyU64(&out, "doc_count", ci.doc_count, true);
    AppendKeyU64(&out, "node_count", ci.node_count, true);
    AppendKeyU64(&out, "stats_epoch", ci.stats_epoch, true);
    out.append(", \"stats_valid\": ");
    out.append(ci.stats_valid ? "true" : "false");
    AppendKeyU64(&out, "buffer_resident", ci.buffer_resident, true);
    AppendKeyU64(&out, "buffer_capacity", ci.buffer_capacity, true);
    AppendKeyU64(&out, "buffer_hits", ci.buffer_hits, true);
    AppendKeyU64(&out, "buffer_misses", ci.buffer_misses, true);
    out.push_back('}');
  }
  out.append("],\n\"events\": [");
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i) out.push_back(',');
    out.append("\n {");
    AppendKeyU64(&out, "seq", e.seq, false);
    AppendKeyU64(&out, "timestamp_us", e.timestamp_us, true);
    AppendKeyU64(&out, "kind", static_cast<uint64_t>(e.kind), true);
    AppendKeyU64(&out, "arg0", e.arg0, true);
    AppendKeyU64(&out, "arg1", e.arg1, true);
    AppendKeyString(&out, "message", e.message, true);
    out.push_back('}');
  }
  out.append("],\n\"slow_queries\": [");
  for (size_t i = 0; i < slow_queries.size(); ++i) {
    const SlowQueryRecord& r = slow_queries[i];
    if (i) out.push_back(',');
    out.append("\n {");
    AppendKeyU64(&out, "seq", r.seq, false);
    AppendKeyU64(&out, "timestamp_us", r.timestamp_us, true);
    AppendKeyU64(&out, "wall_us", r.wall_us, true);
    AppendKeyU64(&out, "results", r.results, true);
    AppendKeyU64(&out, "parallelism", r.parallelism, true);
    AppendKeyString(&out, "collection", r.collection, true);
    AppendKeyString(&out, "query", r.query, true);
    AppendKeyString(&out, "access_method", r.access_method, true);
    AppendWaitArray(&out, "wait_us", r.wait_us);
    AppendWaitArray(&out, "wait_count", r.wait_count);
    out.push_back('}');
  }
  out.append("],\n\"metrics\": ");
  std::string mjson = metrics.ToJson();
  // MetricsSnapshot::ToJson ends with a newline; trim it so the embedding
  // stays canonical.
  while (!mjson.empty() && mjson.back() == '\n') mjson.pop_back();
  out.append(mjson);
  out.append("\n}\n");
  return out;
}

std::string DebugSnapshot::ToText() const {
  std::string out;
  Appendf(&out, "xdb engine snapshot  captured_at_us=%" PRIu64 " role=%s\n",
          captured_at_us, role.c_str());
  Appendf(&out,
          "replication: applied_csn=%" PRIu64 "  wal: size=%" PRIu64
          " durable_upto=%" PRIu64 "\n",
          applied_csn, wal_size, wal_durable_upto);
  Appendf(&out, "\ncollections (%zu):\n", collections.size());
  for (const CollectionInfo& ci : collections) {
    Appendf(&out,
            "  %-20s docs=%-8" PRIu64 " nodes~%-10" PRIu64 " epoch=%" PRIu64
            " (%s)\n",
            ci.name.c_str(), ci.doc_count, ci.node_count, ci.stats_epoch,
            ci.stats_valid ? "cost-based" : "heuristic");
    Appendf(&out,
            "  %-20s buffer: %" PRIu64 "/%" PRIu64 " frames resident, hits=%"
            PRIu64 " misses=%" PRIu64 "\n",
            "", ci.buffer_resident, ci.buffer_capacity, ci.buffer_hits,
            ci.buffer_misses);
  }
  // The engine-wide wait profile: the wait.<state>.us histograms from the
  // metrics snapshot, rendered as one table.
  out.append("\nwaits (engine-wide):\n");
  bool any_wait = false;
  for (const Metric& m : metrics.metrics) {
    if (m.name.rfind("wait.", 0) != 0 || m.kind != MetricKind::kHistogram)
      continue;
    any_wait = true;
    const HistogramData& h = m.hist;
    if (h.count == 0) {
      Appendf(&out, "  %-24s count=0\n", m.name.c_str());
    } else {
      Appendf(&out,
              "  %-24s count=%-8" PRIu64 " total=%" PRIu64 "us p50=%" PRIu64
              "us p99=%" PRIu64 "us max=%" PRIu64 "us\n",
              m.name.c_str(), h.count, h.sum, h.Quantile(0.5),
              h.Quantile(0.99), h.max);
    }
  }
  if (!any_wait) out.append("  (no wait metrics registered)\n");
  Appendf(&out, "\nslow queries (%zu):\n", slow_queries.size());
  for (const SlowQueryRecord& r : slow_queries) {
    out.append("  ");
    out.append(r.ToString());
    out.push_back('\n');
  }
  Appendf(&out, "\nrecent events (%zu):\n", events.size());
  for (const Event& e : events) {
    out.append("  ");
    out.append(e.ToString());
    out.push_back('\n');
  }
  Appendf(&out, "\nmetrics: %zu registered (use --json for the full dump)\n",
          metrics.metrics.size());
  return out;
}

Result<DebugSnapshot> DebugSnapshot::FromJson(const std::string& json) {
  return Parser(json).Parse();
}

}  // namespace obs
}  // namespace xdb
