#include "obs/slow_query_log.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace xdb {
namespace obs {

namespace {
size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

void StoreString(std::atomic<uint64_t>* words, std::atomic<uint64_t>* len_word,
                 const std::string& s, size_t cap) {
  const size_t len = s.size() < cap ? s.size() : cap;
  len_word->store(len, std::memory_order_relaxed);
  for (size_t i = 0; i * 8 < len; ++i) {
    uint64_t word = 0;
    std::memcpy(&word, s.data() + i * 8, std::min<size_t>(8, len - i * 8));
    words[i].store(word, std::memory_order_relaxed);
  }
}

void LoadString(const std::atomic<uint64_t>* words,
                const std::atomic<uint64_t>* len_word, size_t cap,
                std::string* out) {
  size_t len = static_cast<size_t>(len_word->load(std::memory_order_relaxed));
  if (len > cap) len = cap;  // torn slot; the stamp recheck catches it
  char buf[SlowQueryLog::kMaxQuery];
  for (size_t i = 0; i * 8 < len; ++i) {
    uint64_t word = words[i].load(std::memory_order_relaxed);
    std::memcpy(buf + i * 8, &word, std::min<size_t>(8, len - i * 8));
  }
  out->assign(buf, len);
}
}  // namespace

std::string SlowQueryRecord::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "seq=%" PRIu64 " ts=%" PRIu64 " wall=%" PRIu64
                "us coll=%s method=%s results=%" PRIu64 " par=%" PRIu64,
                seq, timestamp_us, wall_us, collection.c_str(),
                access_method.c_str(), results, parallelism);
  std::string out(buf);
  out += " waits[";
  bool first = true;
  for (size_t i = 0; i < kWaitStateCount; ++i) {
    if (wait_count[i] == 0) continue;
    if (!first) out.push_back(' ');
    first = false;
    std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 "us/%" PRIu64,
                  WaitStateName(static_cast<WaitState>(i)), wait_us[i],
                  wait_count[i]);
    out += buf;
  }
  out += "] q=";
  out += query;
  return out;
}

SlowQueryLog::SlowQueryLog(size_t capacity)
    : slots_(RoundUpPow2(capacity)), mask_(slots_.size() - 1) {}

void SlowQueryLog::Record(const SlowQueryRecord& rec) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Odd stamp = writer owns the slot; the release publish below makes every
  // relaxed field store visible to a reader that acquires the final stamp.
  slot.stamp.store(ticket * 2 + 1, std::memory_order_release);
  slot.timestamp_us.store(rec.timestamp_us, std::memory_order_relaxed);
  slot.wall_us.store(rec.wall_us, std::memory_order_relaxed);
  slot.results.store(rec.results, std::memory_order_relaxed);
  slot.parallelism.store(rec.parallelism, std::memory_order_relaxed);
  for (size_t i = 0; i < kWaitStateCount; ++i) {
    slot.wait_us[i].store(rec.wait_us[i], std::memory_order_relaxed);
    slot.wait_count[i].store(rec.wait_count[i], std::memory_order_relaxed);
  }
  StoreString(slot.collection.data(), &slot.collection_len, rec.collection,
              kMaxCollection);
  StoreString(slot.query.data(), &slot.query_len, rec.query, kMaxQuery);
  StoreString(slot.method.data(), &slot.method_len, rec.access_method,
              kMaxAccessMethod);
  slot.stamp.store(ticket * 2 + 2, std::memory_order_release);
}

std::vector<SlowQueryRecord> SlowQueryLog::Recent(size_t max) const {
  const uint64_t head = next_.load(std::memory_order_acquire);
  uint64_t first = head > slots_.size() ? head - slots_.size() : 0;
  if (head - first > max) first = head - max;
  std::vector<SlowQueryRecord> out;
  out.reserve(static_cast<size_t>(head - first));
  for (uint64_t ticket = first; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t want = ticket * 2 + 2;
    if (slot.stamp.load(std::memory_order_acquire) != want) continue;
    SlowQueryRecord r;
    r.seq = ticket;
    r.timestamp_us = slot.timestamp_us.load(std::memory_order_relaxed);
    r.wall_us = slot.wall_us.load(std::memory_order_relaxed);
    r.results = slot.results.load(std::memory_order_relaxed);
    r.parallelism = slot.parallelism.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kWaitStateCount; ++i) {
      r.wait_us[i] = slot.wait_us[i].load(std::memory_order_relaxed);
      r.wait_count[i] = slot.wait_count[i].load(std::memory_order_relaxed);
    }
    LoadString(slot.collection.data(), &slot.collection_len, kMaxCollection,
               &r.collection);
    LoadString(slot.query.data(), &slot.query_len, kMaxQuery, &r.query);
    LoadString(slot.method.data(), &slot.method_len, kMaxAccessMethod,
               &r.access_method);
    // Re-validate after the copy: a writer lapping us moved the stamp on
    // (it is monotone per slot), making the copy garbage.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_relaxed) != want) continue;
    out.push_back(std::move(r));
  }
  return out;
}

uint64_t SlowQueryLog::overwritten() const {
  const uint64_t head = next_.load(std::memory_order_relaxed);
  return head > slots_.size() ? head - slots_.size() : 0;
}

}  // namespace obs
}  // namespace xdb
