// Engine-wide metrics registry: cheap always-on counters, gauges, and
// fixed-bucket histograms, registered by dotted name and snapshotted into one
// coherent, serializable view.
//
// DB2-class engines expose buffer/lock/log counters as first-class monitor
// elements; this is that facility for the reproduction. Design constraints:
//
//  * Hot path is lock-free. Counters are sharded atomic cells (one per
//    cache line) so concurrent incrementers never bounce a shared line;
//    histograms are per-bucket atomics. No mutex is ever taken by Add() /
//    Observe() / Set().
//  * Registration is rare and pointer-stable. Components register once at
//    open time (under the registry mutex) and keep the returned pointer;
//    metric objects live in deques so later registrations never move them.
//  * Components that already maintain mutex-guarded stats structs (buffer
//    manager shards, lock manager, WAL commit state) are bridged by
//    *collectors*: callbacks that append Metric values at snapshot time, so
//    each number keeps exactly one source of truth.
//
// Naming scheme (enforced by convention, documented in DESIGN.md):
// `component.noun` or `component.subsystem.noun`, plural for event counts —
// `buffer.hits`, `wal.group_commit.batch_size`, `lock.deadlocks`,
// `query.latency_us`. Unit suffixes (`_us`, `_bytes`) when not a pure count.
#ifndef XDB_OBS_METRICS_H_
#define XDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace xdb {
namespace obs {

/// Monotonic event count. Increments are relaxed atomic adds on one of
/// kCells thread-striped cells; value() sums the cells (reads may observe a
/// mid-flight total, which is fine for monitoring counters).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    cells_[CellIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kCells = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  /// Threads stripe across cells by a cheap thread-local id, so two threads
  /// hammering one counter usually touch different cache lines.
  static size_t CellIndex();
  Cell cells_[kCells];
};

/// Point-in-time level (pool occupancy, open collections). Set/Add, signed.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Value snapshot of one histogram: cumulative-free per-bucket counts plus
/// count/sum/min/max. bounds[i] is bucket i's inclusive upper edge; one
/// implicit overflow bucket catches everything above bounds.back(), so
/// counts.size() == bounds.size() + 1.
struct HistogramData {
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;

  /// Approximate quantile from the bucket counts (upper edge of the bucket
  /// holding the q-th observation). q in [0,1]. Returns 0 on empty data.
  uint64_t Quantile(double q) const;
  bool operator==(const HistogramData&) const = default;
};

/// Fixed-bucket histogram for latencies and sizes. Observe() is two relaxed
/// atomic RMWs plus a branchless-ish bucket search over a small fixed bounds
/// array; min/max are maintained with CAS loops (rarely contended — they only
/// retry while the running extreme is actually moving).
class Histogram {
 public:
  /// `bounds` must be strictly increasing; values land in the first bucket
  /// whose upper edge >= value, or the implicit overflow bucket.
  explicit Histogram(std::vector<uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value);
  HistogramData Snapshot() const;
  void Reset();

  /// 1, 2, 4, ... doubling upper edges: `count` buckets starting at `start`.
  static std::vector<uint64_t> ExponentialBounds(uint64_t start, size_t count);
  /// Microsecond latency default: 1us..~67s in 27 doubling buckets.
  static std::vector<uint64_t> LatencyBoundsUs() {
    return ExponentialBounds(1, 27);
  }

 private:
  const std::vector<uint64_t> bounds_;
  std::deque<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1 cells
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };
const char* MetricKindName(MetricKind k);

/// One named value in a snapshot.
struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter/gauge value (gauges are clamped at 0 on the wire; engine gauges
  /// are all non-negative levels).
  uint64_t value = 0;
  HistogramData hist;  // kHistogram only
};

/// One coherent view over every registered metric plus every collector's
/// contribution, sorted by name. "Coherent" means one pass at one moment —
/// individual counters are read atomically but the set is not a global
/// atomic cut (standard for monitoring snapshots).
struct MetricsSnapshot {
  std::vector<Metric> metrics;

  const Metric* Find(const std::string& name) const;
  /// Counter/gauge value by name; 0 when absent (missing metrics read as
  /// zero so invariant checks stay simple).
  uint64_t Value(const std::string& name) const;

  /// JSON object keyed by metric name; histograms nest their bucket arrays.
  /// Stable key order (sorted by name) so diffs and goldens are meaningful.
  std::string ToJson() const;
  /// Aligned human-readable table; histograms render count/avg/p50/p99/max.
  std::string ToText() const;
  /// Parses ToJson() output back (round-trip tested). Only the subset this
  /// serializer emits is understood.
  static Result<MetricsSnapshot> FromJson(const std::string& json);
};

/// The registry: owns native metric objects, keeps collector callbacks, and
/// produces snapshots. Thread-safe; see the header comment for the
/// registration-vs-hot-path split.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registering an existing name returns the existing object (idempotent,
  /// so component re-opens — scrub rebuilds — don't double-register).
  Counter* AddCounter(const std::string& name) XDB_EXCLUDES(mu_);
  Gauge* AddGauge(const std::string& name) XDB_EXCLUDES(mu_);
  Histogram* AddHistogram(const std::string& name,
                          std::vector<uint64_t> bounds) XDB_EXCLUDES(mu_);

  /// Snapshot-time bridge for components with their own mutex-guarded stats:
  /// the callback appends Metric values (already carrying canonical names).
  void AddCollector(std::function<void(std::vector<Metric>*)> collect)
      XDB_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const XDB_EXCLUDES(mu_);

 private:
  struct Named {
    std::string name;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  mutable Mutex mu_{LockRank::kMetricsRegistry};
  /// Deques for pointer stability across registrations.
  std::deque<Counter> counters_ XDB_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ XDB_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ XDB_GUARDED_BY(mu_);
  std::vector<Named> named_ XDB_GUARDED_BY(mu_);
  std::vector<std::function<void(std::vector<Metric>*)>> collectors_
      XDB_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace xdb

#endif  // XDB_OBS_METRICS_H_
