#include "obs/wait_state.h"

#include <chrono>
#include <string>

namespace xdb {
namespace obs {

namespace {
std::atomic<bool> g_wait_accounting{true};
thread_local WaitStats* t_query_waits = nullptr;
}  // namespace

const char* WaitStateName(WaitState s) {
  switch (s) {
    case WaitState::kBufferIo:
      return "buffer_io";
    case WaitState::kLockWait:
      return "lock_wait";
    case WaitState::kWalCommit:
      return "wal_commit";
    case WaitState::kLatch:
      return "latch";
    case WaitState::kFreshness:
      return "freshness";
    case WaitState::kIndexProbe:
      return "index_probe";
    case WaitState::kReplApply:
      return "repl_apply";
  }
  return "unknown";
}

void SetWaitAccountingEnabled(bool enabled) {
  g_wait_accounting.store(enabled, std::memory_order_relaxed);
}

bool WaitAccountingEnabled() {
  return g_wait_accounting.load(std::memory_order_relaxed);
}

void WaitSink::Register(MetricsRegistry* registry) {
  for (size_t i = 0; i < kWaitStateCount; ++i) {
    const WaitState s = static_cast<WaitState>(i);
    hist_[i] = registry->AddHistogram(
        std::string("wait.") + WaitStateName(s) + ".us",
        Histogram::LatencyBoundsUs());
  }
}

QueryWaitScope::QueryWaitScope(WaitStats* stats) : prev_(t_query_waits) {
  t_query_waits = stats;
}

QueryWaitScope::~QueryWaitScope() { t_query_waits = prev_; }

WaitStats* QueryWaitScope::current() { return t_query_waits; }

uint64_t WaitSpan::NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace obs
}  // namespace xdb
