#include "obs/event_log.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace xdb {
namespace obs {

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kRecoveryBegin:
      return "recovery.begin";
    case EventKind::kRecoveryEnd:
      return "recovery.end";
    case EventKind::kCheckpointBegin:
      return "checkpoint.begin";
    case EventKind::kCheckpointEnd:
      return "checkpoint.end";
    case EventKind::kScrubBegin:
      return "scrub.begin";
    case EventKind::kScrubFinding:
      return "scrub.finding";
    case EventKind::kScrubEnd:
      return "scrub.end";
    case EventKind::kPageQuarantined:
      return "page.quarantined";
    case EventKind::kCollectionQuarantined:
      return "collection.quarantined";
    case EventKind::kDeadlockVictim:
      return "lock.deadlock_victim";
    case EventKind::kLockTimeout:
      return "lock.timeout";
    case EventKind::kGroupCommitRound:
      return "wal.group_commit_round";
    case EventKind::kIoRetry:
      return "io.retry";
    case EventKind::kWalTornTail:
      return "wal.torn_tail";
    case EventKind::kWalCorruptRecords:
      return "wal.corrupt_records";
    case EventKind::kStatsDegraded:
      return "stats.degraded";
    case EventKind::kPlanCacheInvalidated:
      return "plan_cache.invalidated";
    case EventKind::kReplicaStalled:
      return "repl.replica_stalled";
    case EventKind::kReplicaCaughtUp:
      return "repl.replica_caught_up";
    case EventKind::kPromoted:
      return "repl.promoted";
  }
  return "unknown";
}

std::string Event::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "seq=%" PRIu64 " ts=%" PRIu64 " %s arg0=%" PRIu64
                " arg1=%" PRIu64 " ",
                seq, timestamp_us, EventKindName(kind), arg0, arg1);
  return std::string(buf) + message;
}

namespace {
size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}
}  // namespace

EventLog::EventLog(size_t capacity)
    : slots_(RoundUpPow2(capacity)), mask_(slots_.size() - 1) {}

void EventLog::Emit(EventKind kind, uint64_t arg0, uint64_t arg1,
                    const std::string& message) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Odd stamp marks the slot as mid-write; readers that see it (or see a
  // stamp change across their copy) discard the slot. Release ordering on
  // the publish store makes every relaxed field store below visible to a
  // reader that acquires the published stamp.
  slot.stamp.store(ticket * 2 + 1, std::memory_order_release);
  slot.timestamp_us.store(NowMicros(), std::memory_order_relaxed);
  slot.kind.store(static_cast<uint64_t>(kind), std::memory_order_relaxed);
  slot.arg0.store(arg0, std::memory_order_relaxed);
  slot.arg1.store(arg1, std::memory_order_relaxed);
  const size_t len = message.size() < kMaxMessage ? message.size()
                                                  : kMaxMessage;
  slot.msg_len.store(len, std::memory_order_relaxed);
  for (size_t i = 0; i * 8 < len; ++i) {
    uint64_t word = 0;
    std::memcpy(&word, message.data() + i * 8,
                std::min<size_t>(8, len - i * 8));
    slot.msg[i].store(word, std::memory_order_relaxed);
  }
  slot.stamp.store(ticket * 2 + 2, std::memory_order_release);
}

std::vector<Event> EventLog::Recent(size_t max) const {
  const uint64_t head = next_.load(std::memory_order_acquire);
  uint64_t first = head > slots_.size() ? head - slots_.size() : 0;
  if (head - first > max) first = head - max;
  std::vector<Event> out;
  out.reserve(static_cast<size_t>(head - first));
  for (uint64_t ticket = first; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t want = ticket * 2 + 2;
    if (slot.stamp.load(std::memory_order_acquire) != want) continue;
    Event e;
    e.seq = ticket;
    e.timestamp_us = slot.timestamp_us.load(std::memory_order_relaxed);
    e.kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
    e.arg0 = slot.arg0.load(std::memory_order_relaxed);
    e.arg1 = slot.arg1.load(std::memory_order_relaxed);
    size_t len = static_cast<size_t>(
        slot.msg_len.load(std::memory_order_relaxed));
    if (len > kMaxMessage) len = kMaxMessage;  // torn slot; recheck catches it
    char msg[kMaxMessage];
    for (size_t i = 0; i * 8 < len; ++i) {
      uint64_t word = slot.msg[i].load(std::memory_order_relaxed);
      std::memcpy(msg + i * 8, &word, std::min<size_t>(8, len - i * 8));
    }
    // Re-validate after the copy: if a writer lapped us mid-read, the stamp
    // has moved on (it is monotone per slot) and the copy is garbage.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_relaxed) != want) continue;
    e.message.assign(msg, len);
    out.push_back(std::move(e));
  }
  return out;
}

uint64_t EventLog::overwritten() const {
  const uint64_t head = next_.load(std::memory_order_relaxed);
  return head > slots_.size() ? head - slots_.size() : 0;
}

}  // namespace obs
}  // namespace xdb
