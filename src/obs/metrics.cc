#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace xdb {
namespace obs {

size_t Counter::CellIndex() {
  // Distinct small id per thread; hashed so consecutive ids don't all pile
  // into neighboring cells of every counter in the same order.
  static std::atomic<size_t> next{0};
  thread_local size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return (id * 0x9E3779B97F4A7C15ull >> 56) % kCells;
}

uint64_t HistogramData::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen > rank) {
      // Clamp the edge estimate by the observed extremes so tiny samples
      // don't report a bucket edge far above the actual max.
      uint64_t edge = i < bounds.size() ? bounds[i] : max;
      return std::min(std::max(edge, min), max);
    }
  }
  return max;
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(uint64_t value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData d;
  d.bounds = bounds_;
  d.counts.reserve(buckets_.size());
  for (const auto& b : buckets_)
    d.counts.push_back(b.load(std::memory_order_relaxed));
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  d.min = mn == UINT64_MAX ? 0 : mn;
  d.max = max_.load(std::memory_order_relaxed);
  return d;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::ExponentialBounds(uint64_t start,
                                                   size_t count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  uint64_t edge = start == 0 ? 1 : start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    if (edge > UINT64_MAX / 2) break;  // saturated; overflow bucket takes over
    edge *= 2;
  }
  return bounds;
}

const char* MetricKindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const Metric* MetricsSnapshot::Find(const std::string& name) const {
  for (const Metric& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

uint64_t MetricsSnapshot::Value(const std::string& name) const {
  const Metric* m = Find(name);
  return m == nullptr ? 0 : m->value;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendU64Array(std::string* out, const std::vector<uint64_t>& vs) {
  out->push_back('[');
  for (size_t i = 0; i < vs.size(); ++i) {
    if (i) out->push_back(',');
    AppendU64(out, vs[i]);
  }
  out->push_back(']');
}

/// Minimal recursive-descent parser for exactly the JSON ToJson() emits.
/// Not a general-purpose JSON library — FromJson() documents that contract.
class JsonParser {
 public:
  explicit JsonParser(const std::string& in) : in_(in) {}

  Result<MetricsSnapshot> Parse() {
    MetricsSnapshot snap;
    SkipWs();
    XDB_RETURN_NOT_OK(Expect('{'));
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return snap;
    }
    for (;;) {
      Metric m;
      XDB_RETURN_NOT_OK(ParseString(&m.name));
      SkipWs();
      XDB_RETURN_NOT_OK(Expect(':'));
      XDB_RETURN_NOT_OK(ParseMetricBody(&m));
      snap.metrics.push_back(std::move(m));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      XDB_RETURN_NOT_OK(Expect('}'));
      return snap;
    }
  }

 private:
  char Peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\n' || in_[pos_] == '\t' ||
            in_[pos_] == '\r'))
      ++pos_;
  }
  Status Expect(char c) {
    SkipWs();
    if (Peek() != c)
      return Status::InvalidArgument(std::string("metrics json: expected '") +
                                     c + "' at offset " +
                                     std::to_string(pos_));
    ++pos_;
    return Status::OK();
  }
  Status ParseString(std::string* out) {
    SkipWs();
    XDB_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < in_.size() && in_[pos_] != '"') {
      char c = in_[pos_++];
      if (c == '\\' && pos_ < in_.size()) {
        char e = in_[pos_++];
        switch (e) {
          case 'n':
            out->push_back('\n');
            break;
          case 'u': {
            if (pos_ + 4 > in_.size())
              return Status::InvalidArgument("metrics json: bad \\u escape");
            unsigned v = 0;
            std::sscanf(in_.c_str() + pos_, "%4x", &v);
            pos_ += 4;
            out->push_back(static_cast<char>(v));
            break;
          }
          default:
            out->push_back(e);
        }
      } else {
        out->push_back(c);
      }
    }
    return Expect('"');
  }
  Status ParseU64(uint64_t* out) {
    SkipWs();
    if (Peek() < '0' || Peek() > '9')
      return Status::InvalidArgument("metrics json: expected number at " +
                                     std::to_string(pos_));
    uint64_t v = 0;
    while (pos_ < in_.size() && in_[pos_] >= '0' && in_[pos_] <= '9')
      v = v * 10 + static_cast<uint64_t>(in_[pos_++] - '0');
    *out = v;
    return Status::OK();
  }
  Status ParseU64Array(std::vector<uint64_t>* out) {
    XDB_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      uint64_t v;
      XDB_RETURN_NOT_OK(ParseU64(&v));
      out->push_back(v);
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }
  Status ParseMetricBody(Metric* m) {
    XDB_RETURN_NOT_OK(Expect('{'));
    for (;;) {
      std::string key;
      XDB_RETURN_NOT_OK(ParseString(&key));
      XDB_RETURN_NOT_OK(Expect(':'));
      if (key == "kind") {
        std::string kind;
        XDB_RETURN_NOT_OK(ParseString(&kind));
        if (kind == "counter") {
          m->kind = MetricKind::kCounter;
        } else if (kind == "gauge") {
          m->kind = MetricKind::kGauge;
        } else if (kind == "histogram") {
          m->kind = MetricKind::kHistogram;
        } else {
          return Status::InvalidArgument("metrics json: unknown kind " + kind);
        }
      } else if (key == "value") {
        XDB_RETURN_NOT_OK(ParseU64(&m->value));
      } else if (key == "bounds") {
        XDB_RETURN_NOT_OK(ParseU64Array(&m->hist.bounds));
      } else if (key == "counts") {
        XDB_RETURN_NOT_OK(ParseU64Array(&m->hist.counts));
      } else if (key == "count") {
        XDB_RETURN_NOT_OK(ParseU64(&m->hist.count));
      } else if (key == "sum") {
        XDB_RETURN_NOT_OK(ParseU64(&m->hist.sum));
      } else if (key == "min") {
        XDB_RETURN_NOT_OK(ParseU64(&m->hist.min));
      } else if (key == "max") {
        XDB_RETURN_NOT_OK(ParseU64(&m->hist.max));
      } else {
        return Status::InvalidArgument("metrics json: unknown key " + key);
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  const std::string& in_;
  size_t pos_ = 0;
};

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.reserve(metrics.size() * 64 + 2);
  out.push_back('{');
  for (size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    if (i) out.push_back(',');
    out.append("\n  ");
    AppendJsonString(&out, m.name);
    out.append(": {\"kind\": \"");
    out.append(MetricKindName(m.kind));
    out.append("\"");
    if (m.kind == MetricKind::kHistogram) {
      out.append(", \"count\": ");
      AppendU64(&out, m.hist.count);
      out.append(", \"sum\": ");
      AppendU64(&out, m.hist.sum);
      out.append(", \"min\": ");
      AppendU64(&out, m.hist.min);
      out.append(", \"max\": ");
      AppendU64(&out, m.hist.max);
      out.append(", \"bounds\": ");
      AppendU64Array(&out, m.hist.bounds);
      out.append(", \"counts\": ");
      AppendU64Array(&out, m.hist.counts);
    } else {
      out.append(", \"value\": ");
      AppendU64(&out, m.value);
    }
    out.push_back('}');
  }
  out.append("\n}\n");
  return out;
}

namespace {

/// Display unit derived from the metric-name suffix convention
/// (`_us`, `_bytes`; everything else is a pure count and gets no suffix).
const char* MetricUnit(const std::string& name) {
  auto ends_with = [&name](const char* suffix) {
    const size_t n = std::strlen(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  if (ends_with("_us") || ends_with(".us")) return "us";
  if (ends_with("_bytes") || ends_with(".bytes")) return "bytes";
  return "";
}

void AppendValueWithUnit(std::string* out, uint64_t v, const char* unit) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 "%s", v, unit);
  out->append(buf);
}

}  // namespace

std::string MetricsSnapshot::ToText() const {
  size_t width = 0;
  for (const Metric& m : metrics) width = std::max(width, m.name.size());
  std::string out;
  for (const Metric& m : metrics) {
    out.append(m.name);
    out.append(width - m.name.size() + 2, ' ');
    char buf[160];
    if (m.kind == MetricKind::kHistogram) {
      const HistogramData& h = m.hist;
      const char* unit = MetricUnit(m.name);
      std::snprintf(buf, sizeof(buf), "count=%" PRIu64 " ", h.count);
      out.append(buf);
      // Empty histograms render their extremes/quantiles as '-' instead of
      // the internal sentinels (min starts at UINT64_MAX, max at 0).
      if (h.count == 0) {
        out.append("avg=- p50=- p99=- min=- max=-");
      } else {
        out.append("avg=");
        AppendValueWithUnit(&out, h.sum / h.count, unit);
        out.append(" p50=");
        AppendValueWithUnit(&out, h.Quantile(0.5), unit);
        out.append(" p99=");
        AppendValueWithUnit(&out, h.Quantile(0.99), unit);
        out.append(" min=");
        AppendValueWithUnit(&out, h.min, unit);
        out.append(" max=");
        AppendValueWithUnit(&out, h.max, unit);
      }
      // Bucket bounds with units, so a reader knows both the histogram's
      // resolution and what its numbers measure.
      if (!h.bounds.empty()) {
        std::snprintf(buf, sizeof(buf), " buckets=%zux[", h.bounds.size());
        out.append(buf);
        AppendValueWithUnit(&out, h.bounds.front(), unit);
        out.append("..");
        AppendValueWithUnit(&out, h.bounds.back(), unit);
        out.push_back(']');
      }
    } else {
      const char* unit = MetricUnit(m.name);
      std::snprintf(buf, sizeof(buf), "%" PRIu64 "%s", m.value, unit);
      out.append(buf);
    }
    out.push_back('\n');
  }
  return out;
}

Result<MetricsSnapshot> MetricsSnapshot::FromJson(const std::string& json) {
  return JsonParser(json).Parse();
}

Counter* MetricsRegistry::AddCounter(const std::string& name) {
  MutexLock lock(mu_);
  for (const Named& n : named_)
    if (n.name == name && n.counter != nullptr) return n.counter;
  counters_.emplace_back();
  named_.push_back(Named{name, &counters_.back(), nullptr, nullptr});
  return &counters_.back();
}

Gauge* MetricsRegistry::AddGauge(const std::string& name) {
  MutexLock lock(mu_);
  for (const Named& n : named_)
    if (n.name == name && n.gauge != nullptr) return n.gauge;
  gauges_.emplace_back();
  named_.push_back(Named{name, nullptr, &gauges_.back(), nullptr});
  return &gauges_.back();
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  MutexLock lock(mu_);
  for (const Named& n : named_)
    if (n.name == name && n.histogram != nullptr) return n.histogram;
  histograms_.emplace_back(std::move(bounds));
  named_.push_back(Named{name, nullptr, nullptr, &histograms_.back()});
  return &histograms_.back();
}

void MetricsRegistry::AddCollector(
    std::function<void(std::vector<Metric>*)> collect) {
  MutexLock lock(mu_);
  collectors_.push_back(std::move(collect));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    MutexLock lock(mu_);
    snap.metrics.reserve(named_.size());
    for (const Named& n : named_) {
      Metric m;
      m.name = n.name;
      if (n.counter != nullptr) {
        m.kind = MetricKind::kCounter;
        m.value = n.counter->value();
      } else if (n.gauge != nullptr) {
        m.kind = MetricKind::kGauge;
        int64_t v = n.gauge->value();
        m.value = v < 0 ? 0 : static_cast<uint64_t>(v);
      } else {
        m.kind = MetricKind::kHistogram;
        m.hist = n.histogram->Snapshot();
      }
      snap.metrics.push_back(std::move(m));
    }
    // Collector callbacks reach into other components (buffer manager
    // shards, WAL commit state) and take their locks; mu_ is a leaf in that
    // order (registration never calls out), so holding it here is safe and
    // keeps the callback list stable.
    for (const auto& c : collectors_) c(&snap.metrics);
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return snap;
}

}  // namespace obs
}  // namespace xdb
