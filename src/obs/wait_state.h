// Wait-state attribution: always-on span accounting that answers "where did
// this query's latency go" — buffer-pool miss I/O, lock-manager blocking,
// WAL group-commit waits, latch acquisition, freshness (min_csn) waits,
// index probes, and replication apply.
//
// Three rollups share one instrumentation point (the WaitSpan guard):
//
//  * engine-wide: every span lands in a per-state histogram
//    (`wait.<state>.us`) via the engine's WaitSink — the cluster-wide wait
//    profile a DBA reads first;
//  * per-query: when the executing thread carries a QueryWaitScope, the span
//    also accumulates into that query's WaitStats, which EXPLAIN/trace and
//    the slow-query log render as the per-query wait breakdown;
//  * slow queries: Collection::ExecuteCompiled copies the accumulated
//    WaitStats into a SlowQueryRecord when the query crosses
//    EngineOptions::slow_query_us.
//
// Cost contract (same budget as the PR 5 counters): an armed span is two
// steady-clock reads plus one lock-free Histogram::Observe and two relaxed
// atomic adds; a disarmed span (no sink, no scope — or accounting globally
// off for A/B benching) is a branch. Spans take no locks and are safe under
// any held mutex.
//
// Lock-rank discipline (checked by xdb_lint's wait-span-rank rule): each
// wait state is pinned to the LockRank of the component it instruments; a
// span guard must not stay open across the construction of a mutex guard
// ranked BELOW that component — a span that swallows a coarser lock's wait
// would attribute foreign blocking to its own state.
#ifndef XDB_OBS_WAIT_STATE_H_
#define XDB_OBS_WAIT_STATE_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"

namespace xdb {
namespace obs {

enum class WaitState : uint8_t {
  kBufferIo = 0,   // buffer-pool miss: page read + checksum verify
  kLockWait = 1,   // LockManager blocking (document/node lock conflicts)
  kWalCommit = 2,  // WAL group-commit: fsync leadership or follower wait
  kLatch = 3,      // collection structure-latch acquisition
  kFreshness = 4,  // min_csn wait against the replica's applied watermark
  kIndexProbe = 5, // value/structural index B+tree probes
  kReplApply = 6,  // replicated-segment apply (replicas)
};
inline constexpr size_t kWaitStateCount = 7;

/// Stable lowercase token used in metric names, EXPLAIN output and the
/// slow-query log ("buffer_io", "lock_wait", ...).
const char* WaitStateName(WaitState s);

/// Process-global kill switch for A/B overhead benching (bench_wait_
/// accounting). Defaults to on; production code never touches it.
void SetWaitAccountingEnabled(bool enabled);
bool WaitAccountingEnabled();

/// One query's accumulated waits. Fields are relaxed atomics so parallel
/// chunk workers sharing the coordinating query's WaitStats can add
/// concurrently; readers (the rollup at query end) see totals once the
/// fan-out has joined.
struct WaitStats {
  std::atomic<uint64_t> total_us[kWaitStateCount] = {};
  std::atomic<uint64_t> count[kWaitStateCount] = {};

  void Add(WaitState s, uint64_t us) {
    const size_t i = static_cast<size_t>(s);
    total_us[i].fetch_add(us, std::memory_order_relaxed);
    count[i].fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t TotalUs(WaitState s) const {
    return total_us[static_cast<size_t>(s)].load(std::memory_order_relaxed);
  }
  uint64_t Count(WaitState s) const {
    return count[static_cast<size_t>(s)].load(std::memory_order_relaxed);
  }
  /// Sum across every state.
  uint64_t GrandTotalUs() const {
    uint64_t t = 0;
    for (size_t i = 0; i < kWaitStateCount; ++i)
      t += total_us[i].load(std::memory_order_relaxed);
    return t;
  }
  void Reset() {
    for (size_t i = 0; i < kWaitStateCount; ++i) {
      total_us[i].store(0, std::memory_order_relaxed);
      count[i].store(0, std::memory_order_relaxed);
    }
  }
};

/// The engine-wide sink: one `wait.<state>.us` histogram per state (its
/// count/sum double as the per-state event count and total microseconds, so
/// no separate counters are needed). Per-engine, registered into the
/// engine's MetricsRegistry at Open; components hold a pointer the same way
/// they hold the EventLog.
class WaitSink {
 public:
  WaitSink() = default;
  WaitSink(const WaitSink&) = delete;
  WaitSink& operator=(const WaitSink&) = delete;

  /// Registers the per-state histograms (idempotent via AddHistogram).
  void Register(MetricsRegistry* registry);

  /// Lock-free; safe under any held mutex. No-op before Register().
  void Record(WaitState s, uint64_t us) {
    Histogram* h = hist_[static_cast<size_t>(s)];
    if (h != nullptr) h->Observe(us);
  }

  /// Snapshot helper for tests: the histogram backing one state (null
  /// before Register()).
  Histogram* histogram(WaitState s) const {
    return hist_[static_cast<size_t>(s)];
  }

 private:
  Histogram* hist_[kWaitStateCount] = {};
};

/// Installs `stats` as the calling thread's current query accumulator for
/// the scope's lifetime (restoring the previous one on exit, so nested
/// engine-in-engine use keeps working). The coordinating thread installs it
/// at query start; ParallelFor chunk lambdas re-install the same WaitStats
/// on their worker thread so fan-out waits attribute to the owning query.
class QueryWaitScope {
 public:
  explicit QueryWaitScope(WaitStats* stats);
  ~QueryWaitScope();
  QueryWaitScope(const QueryWaitScope&) = delete;
  QueryWaitScope& operator=(const QueryWaitScope&) = delete;

  /// The calling thread's current accumulator (null outside any scope).
  static WaitStats* current();

 private:
  WaitStats* prev_;
};

/// RAII span: construction stamps the start, Finish() (or destruction)
/// records the elapsed microseconds into the sink and the thread's current
/// QueryWaitScope accumulator. Both targets optional; with neither (or with
/// accounting globally disabled) the span never reads the clock.
class WaitSpan {
 public:
  WaitSpan(WaitSink* sink, WaitState state)
      : state_(state),
        sink_(sink),
        stats_(QueryWaitScope::current()) {
    if ((sink_ != nullptr || stats_ != nullptr) && WaitAccountingEnabled()) {
      start_us_ = NowUs();
      armed_ = true;
    }
  }
  ~WaitSpan() { Finish(); }
  WaitSpan(const WaitSpan&) = delete;
  WaitSpan& operator=(const WaitSpan&) = delete;

  /// Ends the span early (idempotent). Returns the elapsed microseconds
  /// recorded (0 when disarmed).
  uint64_t Finish() {
    if (!armed_) return 0;
    armed_ = false;
    const uint64_t us = NowUs() - start_us_;
    if (sink_ != nullptr) sink_->Record(state_, us);
    if (stats_ != nullptr) stats_->Add(state_, us);
    return us;
  }

 private:
  static uint64_t NowUs();

  WaitState state_;
  WaitSink* sink_;
  WaitStats* stats_;
  uint64_t start_us_ = 0;
  bool armed_ = false;
};

}  // namespace obs
}  // namespace xdb

#endif  // XDB_OBS_WAIT_STATE_H_
