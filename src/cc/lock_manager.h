// LockManager: document-level and subdocument (node-ID) locking, Section 5.
//
// Document locks use classic multi-granularity modes (IS/IX/S/SIX/X) keyed
// by DocID — "if we allow direct access to the XML data from value indexes
// ... a DocID locking scheme is required."
//
// Subdocument locks exploit prefix-encoded node IDs: "locking using node IDs
// can support the protocol efficiently because ancestor-descendant
// relationship can be checked by testing if one is a prefix of the other."
// Two node locks conflict only when their modes are incompatible AND one ID
// is a prefix of the other (same subtree); locks on disjoint subtrees never
// conflict, which is what lets concurrent writers update different subtrees
// of one document.
//
// Deadlocks are detected eagerly: before a transaction blocks, its edges in
// the waits-for graph are checked for a cycle, and the requester is chosen
// as the victim (immediate kDeadlock) — no waiting out a timeout. The
// timeout remains as a backstop for waits the graph cannot see (e.g. a
// holder stuck outside the lock manager); both are counted separately.
#ifndef XDB_CC_LOCK_MANAGER_H_
#define XDB_CC_LOCK_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/event_log.h"
#include "obs/wait_state.h"

namespace xdb {

using TxnId = uint64_t;

enum class LockMode : uint8_t { kIS = 0, kIX = 1, kS = 2, kSIX = 3, kX = 4 };

const char* LockModeName(LockMode m);
bool LockModesCompatible(LockMode a, LockMode b);
/// True if holding `held` already implies `wanted`.
bool LockModeCovers(LockMode held, LockMode wanted);
/// Least mode covering both.
LockMode LockModeSupremum(LockMode a, LockMode b);

struct LockManagerStats {
  uint64_t acquisitions = 0;
  uint64_t waits = 0;
  uint64_t timeouts = 0;
  /// Waits-for cycles caught at acquire time (victim aborted immediately).
  uint64_t deadlocks = 0;
  uint64_t node_prefix_checks = 0;
};

class LockManager {
 public:
  explicit LockManager(std::chrono::milliseconds default_timeout =
                           std::chrono::milliseconds(1000))
      : timeout_(default_timeout) {}

  /// Acquires (or upgrades) a document lock. Blocks until granted or the
  /// timeout elapses (kDeadlock).
  Status LockDocument(TxnId txn, uint64_t doc_id, LockMode mode)
      XDB_EXCLUDES(mu_);

  /// Acquires a subtree lock on (doc, node_id). An empty node_id locks the
  /// whole tree (equivalent to a document lock of the same mode).
  Status LockNode(TxnId txn, uint64_t doc_id, Slice node_id, LockMode mode)
      XDB_EXCLUDES(mu_);

  /// Releases everything `txn` holds and wakes waiters.
  void ReleaseAll(TxnId txn) XDB_EXCLUDES(mu_);

  LockManagerStats stats() const XDB_EXCLUDES(mu_);

  /// Destination for kDeadlockVictim / kLockTimeout events (engine-owned,
  /// may be null). Emit() is lock-free, so it is safe under mu_. Install
  /// before concurrent use.
  void set_event_log(obs::EventLog* events) { events_ = events; }

  /// Destination for kLockWait spans: one span per wait-loop iteration, so
  /// the uncontended grant path never reads a clock (engine-owned, may be
  /// null). Install before concurrent use.
  void set_wait_sink(obs::WaitSink* sink) { wait_sink_ = sink; }

 private:
  struct DocLock {
    std::map<TxnId, LockMode> granted;
    int waiters = 0;
  };
  struct NodeLock {
    TxnId txn;
    std::string node_id;
    LockMode mode;
  };
  struct DocNodeLocks {
    std::vector<NodeLock> held;
    int waiters = 0;
  };

  bool DocGrantable(const DocLock& dl, TxnId txn, LockMode mode) const
      XDB_REQUIRES(mu_);
  bool NodeGrantable(const DocNodeLocks& dn, TxnId txn, Slice node_id,
                     LockMode mode) XDB_REQUIRES(mu_);
  /// Transactions currently blocking `txn`'s pending doc-lock request.
  std::vector<TxnId> DocBlockers(const DocLock& dl, TxnId txn,
                                 LockMode mode) const XDB_REQUIRES(mu_);
  /// Transactions currently blocking `txn`'s pending node-lock request.
  std::vector<TxnId> NodeBlockers(const DocNodeLocks& dn, TxnId txn,
                                  Slice node_id, LockMode mode) const
      XDB_REQUIRES(mu_);
  /// True if adding edges txn -> blockers closes a cycle in waits_for_.
  bool WouldDeadlock(TxnId txn, const std::vector<TxnId>& blockers) const
      XDB_REQUIRES(mu_);

  std::chrono::milliseconds timeout_;
  mutable Mutex mu_{LockRank::kLockManager};
  CondVar cv_;
  std::map<uint64_t, DocLock> doc_locks_ XDB_GUARDED_BY(mu_);
  std::map<uint64_t, DocNodeLocks> node_locks_ XDB_GUARDED_BY(mu_);
  /// Waits-for edges of currently blocked transactions (refreshed on every
  /// wait iteration, erased on grant/timeout/victim).
  std::map<TxnId, std::vector<TxnId>> waits_for_ XDB_GUARDED_BY(mu_);
  LockManagerStats stats_ XDB_GUARDED_BY(mu_);
  obs::EventLog* events_ = nullptr;
  obs::WaitSink* wait_sink_ = nullptr;
};

}  // namespace xdb

#endif  // XDB_CC_LOCK_MANAGER_H_
