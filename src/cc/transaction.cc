#include "cc/transaction.h"

namespace xdb {

Transaction TransactionManager::Begin(IsolationMode mode) {
  Transaction txn;
  txn.id = next_txn_.fetch_add(1);
  txn.mode = mode;
  return txn;
}

uint64_t TransactionManager::Snapshot(Transaction* txn,
                                      VersionManager* versions) {
  if (txn->snapshot == 0) txn->snapshot = versions->BeginSnapshot();
  return txn->snapshot;
}

Result<uint64_t> TransactionManager::WriteVersion(Transaction* txn,
                                                  VersionManager* versions) {
  if (txn->write_version == 0) {
    txn->write_version = versions->AllocateVersion();
    txn->version_source = versions;
  } else if (txn->version_source != versions) {
    return Status::NotSupported(
        "one transaction may write versioned data in only one collection");
  }
  return txn->write_version;
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->committed || txn->aborted)
    return Status::InvalidArgument("transaction already finished");
  if (txn->write_version != 0 && txn->version_source != nullptr)
    txn->version_source->Publish(txn->write_version);
  locks_->ReleaseAll(txn->id);
  txn->committed = true;
  return Status::OK();
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->committed || txn->aborted)
    return Status::InvalidArgument("transaction already finished");
  locks_->ReleaseAll(txn->id);
  txn->aborted = true;
  return Status::OK();
}

}  // namespace xdb
