// VersionManager: document-level multiversioning (Section 5.1).
//
// "To support multiversioning at document level, one scheme is to keep most
// up-to-date data for XPath value indexes, but keep versions for XML data
// and the NodeID index ... the entries will also include a version number,
// i.e. (DocID, ver#, NodeID, RID), with ver# in descending order. This will
// guarantee a reader's deferred access to be successful."
//
// The versioned NodeID index stores keys [DocID | ~ver# | NodeID]: the
// bitwise complement puts newer versions first, so a snapshot reader's seek
// at (doc, ~snapshot) lands on the newest version <= its snapshot.
#ifndef XDB_CC_VERSION_MANAGER_H_
#define XDB_CC_VERSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "btree/btree.h"
#include "common/slice.h"
#include "common/status.h"
#include "index/nodeid_index.h"
#include "storage/page.h"

namespace xdb {

class VersionManager {
 public:
  explicit VersionManager(BTree* versioned_index)
      : tree_(versioned_index), last_committed_(0), next_version_(1) {}

  /// A reader's snapshot: the newest committed version.
  uint64_t BeginSnapshot() const { return last_committed_.load(); }

  /// Restores counters from the catalog after reopen.
  void InitCounters(uint64_t last_committed) {
    last_committed_.store(last_committed);
    next_version_.store(last_committed + 1);
  }

  /// A writer's new version number (visible only after Publish).
  uint64_t AllocateVersion() { return next_version_.fetch_add(1); }

  /// Publishes `version` as committed (single writer per document is
  /// enforced by the caller's X lock; versions publish in order here).
  void Publish(uint64_t version);

  /// Adds the interval entries of `record` under (doc, version).
  Status AddRecord(uint64_t doc_id, uint64_t version, Slice record, Rid rid);

  /// Adds a single raw (interval-upper, rid) entry under (doc, version) —
  /// used to carry unchanged records' entries into a new version.
  Status AddEntry(uint64_t doc_id, uint64_t version, Slice interval_upper,
                  Rid rid);

  /// Lists (interval upper, rid) pairs of one exact version.
  Status ListVersionEntries(uint64_t doc_id, uint64_t version,
                            std::vector<std::pair<std::string, Rid>>* out);

  /// The newest version of `doc_id` that is <= `snapshot`; NotFound if the
  /// document did not exist at that snapshot.
  Result<uint64_t> EffectiveVersion(uint64_t doc_id, uint64_t snapshot);

  /// Record containing `node_id` as of `snapshot`.
  Result<Rid> Lookup(uint64_t doc_id, uint64_t snapshot, Slice node_id);

  /// Distinct record RIDs of the document as of `snapshot`, in node order.
  Status ListDocRecords(uint64_t doc_id, uint64_t snapshot,
                        std::vector<Rid>* out);

  /// Deletes index entries (and reports RIDs to free) for all versions of
  /// `doc_id` older than `keep_from` (which stays). Version garbage
  /// collection once no snapshot can see them.
  Status PurgeVersionsBefore(uint64_t doc_id, uint64_t keep_from,
                             std::vector<Rid>* freed_rids);

  BTree* tree() { return tree_; }

 private:
  static void EncodeKey(uint64_t doc_id, uint64_t version, Slice node_id,
                        std::string* out);
  static Status DecodeKey(Slice key, uint64_t* doc_id, uint64_t* version,
                          Slice* node_id);

  // The versioned index is guarded by the owning collection's latch_ (every
  // caller holds it); only the version counters are touched lock-free here.
  BTree* tree_;
  std::atomic<uint64_t> last_committed_;
  std::atomic<uint64_t> next_version_;
};

/// A point-in-time NodeLocator view over the versioned index, so stored-data
/// traversal (StoredDocSource, StoredTreeNavigator) can run against a
/// snapshot — the reader's "deferred access guaranteed to be successful".
class SnapshotLocator : public NodeLocator {
 public:
  SnapshotLocator(VersionManager* versions, uint64_t snapshot)
      : versions_(versions), snapshot_(snapshot) {}

  Result<Rid> Lookup(uint64_t doc_id, Slice node_id) override {
    return versions_->Lookup(doc_id, snapshot_, node_id);
  }

 private:
  VersionManager* versions_;
  uint64_t snapshot_;
};

}  // namespace xdb

#endif  // XDB_CC_VERSION_MANAGER_H_
