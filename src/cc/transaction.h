// Transactions: the thin coordination layer tying DocID locks and
// document-level multiversioning to engine operations.
#ifndef XDB_CC_TRANSACTION_H_
#define XDB_CC_TRANSACTION_H_

#include <atomic>
#include <cstdint>

#include "cc/lock_manager.h"
#include "cc/version_manager.h"
#include "common/status.h"

namespace xdb {

/// How a transaction isolates its reads (Section 5.1's two schemes).
enum class IsolationMode : uint8_t {
  /// Lock-based: readers take S DocID locks, writers X — readers block
  /// writers and vice versa.
  kLocking,
  /// Multiversioning: readers run against a snapshot and never lock;
  /// writers still take X DocID locks against each other.
  kSnapshot,
};

struct Transaction {
  TxnId id = 0;
  IsolationMode mode = IsolationMode::kLocking;
  uint64_t snapshot = 0;       // fixed on first snapshot read
  uint64_t write_version = 0;  // allocated on first versioned write
  /// The version manager the write version came from (publishes at commit).
  VersionManager* version_source = nullptr;
  bool committed = false;
  bool aborted = false;
  bool autocommit = false;  // created internally for a single operation
};

class TransactionManager {
 public:
  explicit TransactionManager(LockManager* locks)
      : locks_(locks), next_txn_(1) {}

  Transaction Begin(IsolationMode mode);

  /// The transaction's snapshot against `versions` (fixed on first call).
  uint64_t Snapshot(Transaction* txn, VersionManager* versions);

  /// Version number for this transaction's writes into `versions`
  /// (allocated lazily; one version source per transaction).
  Result<uint64_t> WriteVersion(Transaction* txn, VersionManager* versions);

  /// Publishes the write version (if any) and releases all locks.
  Status Commit(Transaction* txn);

  /// Releases locks without publishing. Data written under an unpublished
  /// version stays invisible to snapshot readers; locking readers were kept
  /// out by the X lock. Physical cleanup is left to version purge.
  Status Abort(Transaction* txn);

  LockManager* locks() { return locks_; }

 private:
  LockManager* locks_;
  std::atomic<TxnId> next_txn_;
};

}  // namespace xdb

#endif  // XDB_CC_TRANSACTION_H_
