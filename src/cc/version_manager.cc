#include "cc/version_manager.h"

#include <algorithm>

#include "common/coding.h"
#include "pack/packed_record.h"

namespace xdb {

void VersionManager::EncodeKey(uint64_t doc_id, uint64_t version,
                               Slice node_id, std::string* out) {
  PutBig64(out, doc_id);
  PutBig64(out, ~version);  // descending version order
  out->append(node_id.data(), node_id.size());
}

Status VersionManager::DecodeKey(Slice key, uint64_t* doc_id,
                                 uint64_t* version, Slice* node_id) {
  if (key.size() < 16) return Status::Corruption("short versioned key");
  *doc_id = DecodeBig64(key.data());
  *version = ~DecodeBig64(key.data() + 8);
  *node_id = Slice(key.data() + 16, key.size() - 16);
  return Status::OK();
}

void VersionManager::Publish(uint64_t version) {
  uint64_t cur = last_committed_.load();
  while (cur < version && !last_committed_.compare_exchange_weak(cur, version)) {
  }
}

Status VersionManager::AddRecord(uint64_t doc_id, uint64_t version,
                                 Slice record, Rid rid) {
  std::vector<std::string> uppers;
  XDB_RETURN_NOT_OK(ComputeNodeIdIntervals(record, &uppers));
  std::string value;
  PutFixed64(&value, rid.Pack());
  for (const std::string& upper : uppers) {
    std::string key;
    EncodeKey(doc_id, version, upper, &key);
    XDB_RETURN_NOT_OK(tree_->Insert(key, value));
  }
  return Status::OK();
}

Status VersionManager::AddEntry(uint64_t doc_id, uint64_t version,
                                Slice interval_upper, Rid rid) {
  std::string key, value;
  EncodeKey(doc_id, version, interval_upper, &key);
  PutFixed64(&value, rid.Pack());
  return tree_->Insert(key, value);
}

Status VersionManager::ListVersionEntries(
    uint64_t doc_id, uint64_t version,
    std::vector<std::pair<std::string, Rid>>* out) {
  out->clear();
  std::string key;
  EncodeKey(doc_id, version, Slice(), &key);
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree_->Seek(key));
  while (it.Valid()) {
    uint64_t found_doc, found_ver;
    Slice node;
    XDB_RETURN_NOT_OK(DecodeKey(it.key(), &found_doc, &found_ver, &node));
    if (found_doc != doc_id || found_ver != version) break;
    out->emplace_back(node.ToString(),
                      Rid::Unpack(DecodeFixed64(it.value().data())));
    XDB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

Result<uint64_t> VersionManager::EffectiveVersion(uint64_t doc_id,
                                                  uint64_t snapshot) {
  std::string key;
  EncodeKey(doc_id, snapshot, Slice(), &key);
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree_->Seek(key));
  if (!it.Valid()) return Status::NotFound("no version visible");
  uint64_t found_doc, found_ver;
  Slice node;
  XDB_RETURN_NOT_OK(DecodeKey(it.key(), &found_doc, &found_ver, &node));
  if (found_doc != doc_id) return Status::NotFound("no version visible");
  return found_ver;
}

Result<Rid> VersionManager::Lookup(uint64_t doc_id, uint64_t snapshot,
                                   Slice node_id) {
  XDB_ASSIGN_OR_RETURN(uint64_t ver, EffectiveVersion(doc_id, snapshot));
  std::string key;
  EncodeKey(doc_id, ver, node_id, &key);
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree_->Seek(key));
  if (!it.Valid()) return Status::NotFound("node beyond document");
  uint64_t found_doc, found_ver;
  Slice node;
  XDB_RETURN_NOT_OK(DecodeKey(it.key(), &found_doc, &found_ver, &node));
  if (found_doc != doc_id || found_ver != ver)
    return Status::NotFound("node not in visible version");
  if (it.value().size() != 8)
    return Status::Corruption("bad versioned index value");
  return Rid::Unpack(DecodeFixed64(it.value().data()));
}

Status VersionManager::ListDocRecords(uint64_t doc_id, uint64_t snapshot,
                                      std::vector<Rid>* out) {
  out->clear();
  XDB_ASSIGN_OR_RETURN(uint64_t ver, EffectiveVersion(doc_id, snapshot));
  std::string key;
  EncodeKey(doc_id, ver, Slice(), &key);
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree_->Seek(key));
  while (it.Valid()) {
    uint64_t found_doc, found_ver;
    Slice node;
    XDB_RETURN_NOT_OK(DecodeKey(it.key(), &found_doc, &found_ver, &node));
    if (found_doc != doc_id || found_ver != ver) break;
    Rid rid = Rid::Unpack(DecodeFixed64(it.value().data()));
    if (std::find(out->begin(), out->end(), rid) == out->end())
      out->push_back(rid);
    XDB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

Status VersionManager::PurgeVersionsBefore(uint64_t doc_id, uint64_t keep_from,
                                           std::vector<Rid>* freed_rids) {
  freed_rids->clear();
  // Entries with version < keep_from sort AFTER (doc, ~keep_from) prefix.
  std::string start;
  EncodeKey(doc_id, keep_from - 1, Slice(), &start);
  std::vector<std::pair<std::string, std::string>> doomed;
  {
    XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree_->Seek(start));
    while (it.Valid()) {
      uint64_t found_doc, found_ver;
      Slice node;
      XDB_RETURN_NOT_OK(DecodeKey(it.key(), &found_doc, &found_ver, &node));
      if (found_doc != doc_id) break;
      doomed.emplace_back(it.key().ToString(), it.value().ToString());
      XDB_RETURN_NOT_OK(it.Next());
    }
  }
  for (auto& [key, value] : doomed) {
    XDB_RETURN_NOT_OK(tree_->Delete(key, value));
    Rid rid = Rid::Unpack(DecodeFixed64(value.data()));
    if (std::find(freed_rids->begin(), freed_rids->end(), rid) ==
        freed_rids->end())
      freed_rids->push_back(rid);
  }
  return Status::OK();
}

}  // namespace xdb
