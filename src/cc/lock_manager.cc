#include "cc/lock_manager.h"

namespace xdb {

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kSIX: return "SIX";
    case LockMode::kX: return "X";
  }
  return "?";
}

bool LockModesCompatible(LockMode a, LockMode b) {
  // Classic multiple-granularity compatibility matrix [Gray et al.].
  static const bool kCompat[5][5] = {
      //            IS     IX     S      SIX    X
      /* IS  */ {true,  true,  true,  true,  false},
      /* IX  */ {true,  true,  false, false, false},
      /* S   */ {true,  false, true,  false, false},
      /* SIX */ {true,  false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return kCompat[static_cast<int>(a)][static_cast<int>(b)];
}

bool LockModeCovers(LockMode held, LockMode wanted) {
  if (held == wanted) return true;
  switch (held) {
    case LockMode::kX: return true;
    case LockMode::kSIX:
      return wanted == LockMode::kIS || wanted == LockMode::kIX ||
             wanted == LockMode::kS;
    case LockMode::kS: return wanted == LockMode::kIS;
    case LockMode::kIX: return wanted == LockMode::kIS;
    case LockMode::kIS: return false;
  }
  return false;
}

LockMode LockModeSupremum(LockMode a, LockMode b) {
  if (LockModeCovers(a, b)) return a;
  if (LockModeCovers(b, a)) return b;
  // {S,IX} -> SIX; everything else unresolvable below X.
  if ((a == LockMode::kS && b == LockMode::kIX) ||
      (a == LockMode::kIX && b == LockMode::kS))
    return LockMode::kSIX;
  return LockMode::kX;
}

bool LockManager::DocGrantable(const DocLock& dl, TxnId txn,
                               LockMode mode) const {
  for (const auto& [holder, held] : dl.granted) {
    if (holder == txn) continue;
    if (!LockModesCompatible(held, mode)) return false;
  }
  return true;
}

std::vector<TxnId> LockManager::DocBlockers(const DocLock& dl, TxnId txn,
                                            LockMode mode) const {
  std::vector<TxnId> out;
  for (const auto& [holder, held] : dl.granted) {
    if (holder == txn) continue;
    if (!LockModesCompatible(held, mode)) out.push_back(holder);
  }
  return out;
}

bool LockManager::WouldDeadlock(TxnId txn,
                                const std::vector<TxnId>& blockers) const {
  // DFS over waits_for_ starting from the transactions blocking `txn`: if
  // any path leads back to `txn`, granting the wait would close a cycle.
  std::vector<TxnId> stack(blockers);
  std::vector<TxnId> seen;
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (cur == txn) return true;
    bool visited = false;
    for (TxnId s : seen) visited = visited || s == cur;
    if (visited) continue;
    seen.push_back(cur);
    auto it = waits_for_.find(cur);
    if (it == waits_for_.end()) continue;
    stack.insert(stack.end(), it->second.begin(), it->second.end());
  }
  return false;
}

Status LockManager::LockDocument(TxnId txn, uint64_t doc_id, LockMode mode) {
  MutexLock lock(mu_);
  DocLock& dl = doc_locks_[doc_id];
  auto mine = dl.granted.find(txn);
  if (mine != dl.granted.end()) {
    if (LockModeCovers(mine->second, mode)) return Status::OK();
    mode = LockModeSupremum(mine->second, mode);
  }
  auto deadline = std::chrono::steady_clock::now() + timeout_;
  bool waited = false;
  while (!DocGrantable(dl, txn, mode)) {
    std::vector<TxnId> blockers = DocBlockers(dl, txn, mode);
    if (WouldDeadlock(txn, blockers)) {
      waits_for_.erase(txn);
      stats_.deadlocks++;
      if (events_ != nullptr)
        events_->Emit(obs::EventKind::kDeadlockVictim, txn, doc_id,
                      std::string("doc lock ") + LockModeName(mode));
      return Status::Deadlock("waits-for cycle (doc " +
                              std::to_string(doc_id) + ", " +
                              LockModeName(mode) + ")");
    }
    waits_for_[txn] = std::move(blockers);
    waited = true;
    dl.waiters++;
    // One span per blocked iteration: only threads that actually sleep on
    // the condvar pay for wait accounting.
    obs::WaitSpan wait_span(wait_sink_, obs::WaitState::kLockWait);
    bool ok = cv_.WaitUntil(lock, deadline) != std::cv_status::timeout;
    wait_span.Finish();
    dl.waiters--;
    if (!ok) {
      waits_for_.erase(txn);
      stats_.timeouts++;
      if (events_ != nullptr)
        events_->Emit(obs::EventKind::kLockTimeout, txn, doc_id,
                      std::string("doc lock ") + LockModeName(mode));
      return Status::Deadlock("document lock timeout (doc " +
                              std::to_string(doc_id) + ", " +
                              LockModeName(mode) + ")");
    }
  }
  waits_for_.erase(txn);
  if (waited) stats_.waits++;
  dl.granted[txn] = mode;
  stats_.acquisitions++;
  return Status::OK();
}

bool LockManager::NodeGrantable(const DocNodeLocks& dn, TxnId txn,
                                Slice node_id, LockMode mode) {
  for (const NodeLock& held : dn.held) {
    if (held.txn == txn) continue;
    if (LockModesCompatible(held.mode, mode)) continue;
    stats_.node_prefix_checks++;
    Slice h(held.node_id);
    // Conflict only when the subtrees overlap: one ID prefixes the other.
    if (h.StartsWith(node_id) || node_id.StartsWith(h)) return false;
  }
  return true;
}

std::vector<TxnId> LockManager::NodeBlockers(const DocNodeLocks& dn, TxnId txn,
                                             Slice node_id,
                                             LockMode mode) const {
  std::vector<TxnId> out;
  for (const NodeLock& held : dn.held) {
    if (held.txn == txn) continue;
    if (LockModesCompatible(held.mode, mode)) continue;
    Slice h(held.node_id);
    if (h.StartsWith(node_id) || node_id.StartsWith(h)) out.push_back(held.txn);
  }
  return out;
}

Status LockManager::LockNode(TxnId txn, uint64_t doc_id, Slice node_id,
                             LockMode mode) {
  MutexLock lock(mu_);
  DocNodeLocks& dn = node_locks_[doc_id];
  // Re-entrant: an existing equal-or-stronger lock on the same or an
  // ancestor subtree suffices.
  for (const NodeLock& held : dn.held) {
    if (held.txn == txn && node_id.StartsWith(Slice(held.node_id)) &&
        LockModeCovers(held.mode, mode))
      return Status::OK();
  }
  auto deadline = std::chrono::steady_clock::now() + timeout_;
  bool waited = false;
  while (!NodeGrantable(dn, txn, node_id, mode)) {
    std::vector<TxnId> blockers = NodeBlockers(dn, txn, node_id, mode);
    if (WouldDeadlock(txn, blockers)) {
      waits_for_.erase(txn);
      stats_.deadlocks++;
      if (events_ != nullptr)
        events_->Emit(obs::EventKind::kDeadlockVictim, txn, doc_id,
                      std::string("node lock ") + LockModeName(mode));
      return Status::Deadlock("waits-for cycle (node lock, doc " +
                              std::to_string(doc_id) + ")");
    }
    waits_for_[txn] = std::move(blockers);
    waited = true;
    dn.waiters++;
    obs::WaitSpan wait_span(wait_sink_, obs::WaitState::kLockWait);
    bool ok = cv_.WaitUntil(lock, deadline) != std::cv_status::timeout;
    wait_span.Finish();
    dn.waiters--;
    if (!ok) {
      waits_for_.erase(txn);
      stats_.timeouts++;
      if (events_ != nullptr)
        events_->Emit(obs::EventKind::kLockTimeout, txn, doc_id,
                      std::string("node lock ") + LockModeName(mode));
      return Status::Deadlock("node lock timeout");
    }
  }
  waits_for_.erase(txn);
  if (waited) stats_.waits++;
  dn.held.push_back(NodeLock{txn, node_id.ToString(), mode});
  stats_.acquisitions++;
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  MutexLock lock(mu_);
  waits_for_.erase(txn);
  for (auto it = doc_locks_.begin(); it != doc_locks_.end();) {
    it->second.granted.erase(txn);
    if (it->second.granted.empty() && it->second.waiters == 0) {
      it = doc_locks_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = node_locks_.begin(); it != node_locks_.end();) {
    auto& held = it->second.held;
    for (size_t i = 0; i < held.size();) {
      if (held[i].txn == txn) {
        held[i] = held.back();
        held.pop_back();
      } else {
        i++;
      }
    }
    if (held.empty() && it->second.waiters == 0) {
      it = node_locks_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.NotifyAll();
}

LockManagerStats LockManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace xdb
