#include "runtime/virtual_sax.h"

#include "xml/node_id.h"

namespace xdb {

TokenStreamSource::TokenStreamSource(Slice tokens) : reader_(tokens) {
  stack_.push_back(Level{0, 0});  // document node, id ""
}

Result<bool> TokenStreamSource::Next(XmlEvent* event) {
  Token t;
  XDB_ASSIGN_OR_RETURN(bool more, reader_.Next(&t));
  if (!more) return false;

  auto child_id = [&]() -> Slice {
    Level& parent = stack_.back();
    id_buf_.resize(parent.id_len);
    nodeid::AppendChildId(++parent.child_ordinal, &id_buf_);
    return Slice(id_buf_);
  };

  *event = XmlEvent();
  event->depth = static_cast<int>(stack_.size()) - 1;
  switch (t.kind) {
    case TokenKind::kStartDocument:
      event->type = XmlEvent::Type::kStartDocument;
      event->node_id = Slice();
      return true;
    case TokenKind::kEndDocument:
      event->type = XmlEvent::Type::kEndDocument;
      event->node_id = Slice();
      return true;
    case TokenKind::kStartElement: {
      event->type = XmlEvent::Type::kStartElement;
      event->local = t.local;
      event->ns_uri = t.ns_uri;
      event->prefix = t.prefix;
      event->type_anno = t.type;
      event->node_id = child_id();
      event->depth++;
      stack_.push_back(Level{id_buf_.size(), 0});
      return true;
    }
    case TokenKind::kEndElement: {
      if (stack_.size() <= 1)
        return Status::Corruption("unbalanced token stream");
      size_t elem_id_len = stack_.back().id_len;
      stack_.pop_back();
      event->type = XmlEvent::Type::kEndElement;
      // The prefix of id_buf_ up to the popped level is the element's id.
      event->node_id = Slice(id_buf_.data(), elem_id_len);
      event->depth = static_cast<int>(stack_.size());
      return true;
    }
    case TokenKind::kAttribute:
      event->type = XmlEvent::Type::kAttribute;
      event->local = t.local;
      event->ns_uri = t.ns_uri;
      event->prefix = t.prefix;
      event->value = t.text;
      event->type_anno = t.type;
      event->node_id = child_id();
      return true;
    case TokenKind::kNamespaceDecl:
      event->type = XmlEvent::Type::kNamespace;
      event->local = t.local;
      event->ns_uri = t.ns_uri;
      event->node_id = child_id();
      return true;
    case TokenKind::kText:
      event->type = XmlEvent::Type::kText;
      event->value = t.text;
      event->type_anno = t.type;
      event->node_id = child_id();
      return true;
    case TokenKind::kComment:
      event->type = XmlEvent::Type::kComment;
      event->value = t.text;
      event->node_id = child_id();
      return true;
    case TokenKind::kProcessingInstruction:
      event->type = XmlEvent::Type::kPi;
      event->local = t.local;
      event->value = t.text;
      event->node_id = child_id();
      return true;
  }
  return Status::Corruption("unknown token kind");
}

}  // namespace xdb
