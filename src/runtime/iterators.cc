#include "runtime/iterators.h"

namespace xdb {

Status EventsToTokens(XmlEventSource* source, TokenWriter* out) {
  XmlEvent ev;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, source->Next(&ev));
    if (!more) return Status::OK();
    switch (ev.type) {
      case XmlEvent::Type::kStartDocument:
        out->StartDocument();
        break;
      case XmlEvent::Type::kEndDocument:
        out->EndDocument();
        break;
      case XmlEvent::Type::kStartElement:
        out->StartElement(ev.local, ev.ns_uri, ev.prefix, ev.type_anno);
        break;
      case XmlEvent::Type::kEndElement:
        out->EndElement();
        break;
      case XmlEvent::Type::kAttribute:
        out->Attribute(ev.local, ev.value, ev.ns_uri, ev.prefix, ev.type_anno);
        break;
      case XmlEvent::Type::kNamespace:
        out->NamespaceDecl(ev.local, ev.ns_uri);
        break;
      case XmlEvent::Type::kText:
        out->Text(ev.value, ev.type_anno);
        break;
      case XmlEvent::Type::kComment:
        out->Comment(ev.value);
        break;
      case XmlEvent::Type::kPi:
        out->ProcessingInstruction(ev.local, ev.value);
        break;
    }
  }
}

Result<uint64_t> DrainEvents(XmlEventSource* source) {
  XmlEvent ev;
  uint64_t count = 0;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, source->Next(&ev));
    if (!more) return count;
    count++;
  }
}

Result<std::string> CollectText(XmlEventSource* source) {
  XmlEvent ev;
  std::string out;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, source->Next(&ev));
    if (!more) return out;
    if (ev.type == XmlEvent::Type::kText)
      out.append(ev.value.data(), ev.value.size());
  }
}

}  // namespace xdb
