// Runtime glue between the data forms of Section 4.4: event streams back to
// token streams (tree construction / serialization sinks) and in-memory
// sequences exposed as event sources.
#ifndef XDB_RUNTIME_ITERATORS_H_
#define XDB_RUNTIME_ITERATORS_H_

#include <string>

#include "common/status.h"
#include "runtime/virtual_sax.h"
#include "xdm/item.h"

namespace xdb {

/// Drains an event source into a token stream (the "tree construction"
/// sink: the result can be packed, serialized, or re-scanned).
Status EventsToTokens(XmlEventSource* source, TokenWriter* out);

/// Drains an event source, counting events (benchmarks' no-op sink).
Result<uint64_t> DrainEvents(XmlEventSource* source);

/// Concatenated text content of an event stream (XPath string value).
Result<std::string> CollectText(XmlEventSource* source);

}  // namespace xdb

#endif  // XDB_RUNTIME_ITERATORS_H_
