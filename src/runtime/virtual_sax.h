// Virtual SAX: the unifying runtime event model of the paper's Figure 8.
//
// "As the iterator traverses through the data, each input data item is
// converted into a virtual SAX-like event, which is a set of parameters
// required by the routines performing the task." XML data may be a token
// stream, persistent packed records, constructed data, or an in-memory
// sequence; each form gets an iterator that produces the same XmlEvent
// stream, so serialization, tree construction, and XPath evaluation are all
// written once against XmlEventSource.
#ifndef XDB_RUNTIME_VIRTUAL_SAX_H_
#define XDB_RUNTIME_VIRTUAL_SAX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "xml/name_dictionary.h"
#include "xml/node_kind.h"
#include "xml/token_stream.h"

namespace xdb {

struct XmlEvent {
  enum class Type : uint8_t {
    kStartDocument,
    kEndDocument,
    kStartElement,
    kEndElement,
    kAttribute,
    kNamespace,
    kText,
    kComment,
    kPi,
  };

  Type type = Type::kStartDocument;
  NameId local = kEmptyNameId;
  NameId ns_uri = kEmptyNameId;
  NameId prefix = kEmptyNameId;
  Slice value;    // views storage owned by the source; valid until next Next()
  Slice node_id;  // absolute prefix-encoded node ID (same lifetime)
  TypeAnno type_anno = TypeAnno::kUntyped;
  int depth = 0;  // element nesting depth; document node = 0
};

/// A stream of XmlEvents over some physical form of XML data.
class XmlEventSource {
 public:
  virtual ~XmlEventSource() = default;
  /// Produces the next event; returns false at end of input.
  virtual Result<bool> Next(XmlEvent* event) = 0;
};

/// Events over a buffered token stream, assigning node IDs on the fly with
/// the canonical convention (n-th child — namespaces, attributes, content,
/// in token order — gets relative ID ChildId(n)). Used at insertion time to
/// generate index keys "per record ... which fits existing infrastructure".
class TokenStreamSource : public XmlEventSource {
 public:
  explicit TokenStreamSource(Slice tokens);

  Result<bool> Next(XmlEvent* event) override;

 private:
  TokenReader reader_;
  struct Level {
    size_t id_len;          // length of id_buf_ up to this element's id
    uint32_t child_ordinal;
  };
  std::vector<Level> stack_;
  std::string id_buf_;      // absolute id of the current position
  uint32_t doc_child_ordinal_ = 0;
};

}  // namespace xdb

#endif  // XDB_RUNTIME_VIRTUAL_SAX_H_
