#include "schema/validator_vm.h"

#include <cctype>
#include <cmath>
#include <vector>

#include "common/decimal.h"
#include "index/key_codec.h"
#include "xdm/item.h"

namespace xdb {
namespace schema {

ValidatorVm::ValidatorVm(const CompiledSchema* schema,
                         const NameDictionary* dict)
    : schema_(schema), dict_(dict) {}

Result<int> ValidatorVm::ElementIndexFor(NameId local) {
  if (local >= name_to_element_.size())
    name_to_element_.resize(local + 1, -2);
  int cached = name_to_element_[local];
  if (cached != -2) return cached;
  XDB_ASSIGN_OR_RETURN(std::string name, dict_->Name(local));
  int idx = schema_->FindElement(name);
  name_to_element_[local] = idx;
  return idx;
}

Result<bool> ValidatorVm::CheckSimpleValue(SimpleType type, Slice value) {
  stats_.text_values_checked++;
  switch (type) {
    case SimpleType::kUntyped:
    case SimpleType::kString:
      return true;
    case SimpleType::kDouble:
      return !std::isnan(StringToNumber(value));
    case SimpleType::kDecimal:
      return Decimal::FromString(value).ok();
    case SimpleType::kInteger: {
      size_t b = 0, e = value.size();
      while (b < e && std::isspace(static_cast<unsigned char>(value[b]))) b++;
      while (e > b && std::isspace(static_cast<unsigned char>(value[e - 1])))
        e--;
      if (b == e) return false;
      size_t i = b;
      if (value[i] == '+' || value[i] == '-') i++;
      if (i == e) return false;
      for (; i < e; i++)
        if (value[i] < '0' || value[i] > '9') return false;
      return true;
    }
    case SimpleType::kDate:
      return ParseDateDays(value).ok();
    case SimpleType::kBoolean: {
      std::string v = value.ToString();
      return v == "true" || v == "false" || v == "0" || v == "1";
    }
  }
  return false;
}

Status ValidatorVm::Validate(Slice input, TokenWriter* out) {
  struct Frame {
    int element_idx;
    int dfa_state;
    uint64_t required_seen;  // bitmap over required attributes
    // Local-name ids of the element's DFA symbols are resolved lazily via
    // the name dictionary on each child; fine since symbol counts are small.
  };
  std::vector<Frame> stack;
  TokenReader reader(input);
  Token t;
  bool root_seen = false;

  auto fail = [](const std::string& what) {
    return Status::ValidationError(what);
  };

  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, reader.Next(&t));
    if (!more) break;
    switch (t.kind) {
      case TokenKind::kStartDocument:
      case TokenKind::kEndDocument:
        out->Append(t);
        break;
      case TokenKind::kStartElement: {
        XDB_ASSIGN_OR_RETURN(int idx, ElementIndexFor(t.local));
        XDB_ASSIGN_OR_RETURN(std::string name, dict_->Name(t.local));
        if (idx < 0)
          return fail("element '" + name + "' is not declared");
        if (stack.empty()) {
          if (root_seen) return fail("multiple root elements");
          root_seen = true;
          if (name != schema_->root())
            return fail("root element must be '" + schema_->root() + "'");
        } else {
          Frame& parent = stack.back();
          const CompiledElement& pdecl = schema_->elements()[parent.element_idx];
          switch (pdecl.content) {
            case ContentKind::kChildren: {
              int sym = -1;
              for (size_t s = 0; s < pdecl.symbols.size(); s++) {
                if (pdecl.symbols[s] == name) {
                  sym = static_cast<int>(s);
                  break;
                }
              }
              if (sym < 0)
                return fail("element '" + name + "' not allowed in '" +
                            pdecl.name + "'");
              int next = pdecl.trans[parent.dfa_state][sym];
              if (next < 0)
                return fail("element '" + name + "' out of order in '" +
                            pdecl.name + "'");
              parent.dfa_state = next;
              break;
            }
            case ContentKind::kMixed:
              break;  // any declared element allowed
            case ContentKind::kText:
            case ContentKind::kEmpty:
              return fail("element '" + pdecl.name +
                          "' does not allow child elements");
          }
        }
        stats_.elements_validated++;
        stack.push_back(Frame{idx, schema_->elements()[idx].start_state, 0});
        out->StartElement(t.local, t.ns_uri, t.prefix,
                          ToTypeAnno(schema_->elements()[idx].content ==
                                             ContentKind::kText
                                         ? schema_->elements()[idx].text_type
                                         : SimpleType::kUntyped));
        break;
      }
      case TokenKind::kEndElement: {
        if (stack.empty()) return fail("unbalanced end element");
        const Frame& frame = stack.back();
        const CompiledElement& decl = schema_->elements()[frame.element_idx];
        if (decl.content == ContentKind::kChildren &&
            !decl.accepting[frame.dfa_state])
          return fail("element '" + decl.name + "' has incomplete content");
        uint64_t required_mask = 0;
        for (size_t a = 0; a < decl.attrs.size() && a < 64; a++)
          if (decl.attrs[a].required) required_mask |= uint64_t{1} << a;
        if ((frame.required_seen & required_mask) != required_mask)
          return fail("element '" + decl.name +
                      "' is missing a required attribute");
        stack.pop_back();
        out->EndElement();
        break;
      }
      case TokenKind::kAttribute: {
        if (stack.empty()) return fail("attribute outside an element");
        Frame& frame = stack.back();
        const CompiledElement& decl = schema_->elements()[frame.element_idx];
        XDB_ASSIGN_OR_RETURN(std::string name, dict_->Name(t.local));
        int found = -1;
        for (size_t a = 0; a < decl.attrs.size(); a++) {
          if (decl.attrs[a].name == name) {
            found = static_cast<int>(a);
            break;
          }
        }
        if (found < 0)
          return fail("attribute '" + name + "' not declared on '" +
                      decl.name + "'");
        XDB_ASSIGN_OR_RETURN(bool ok,
                             CheckSimpleValue(decl.attrs[found].type, t.text));
        if (!ok)
          return fail("attribute '" + name + "' has an invalid " +
                      SimpleTypeName(decl.attrs[found].type) + " value");
        if (found < 64) frame.required_seen |= uint64_t{1} << found;
        stats_.attributes_validated++;
        out->Attribute(t.local, t.text, t.ns_uri, t.prefix,
                       ToTypeAnno(decl.attrs[found].type));
        break;
      }
      case TokenKind::kText: {
        if (stack.empty()) return fail("text outside the root element");
        const Frame& frame = stack.back();
        const CompiledElement& decl = schema_->elements()[frame.element_idx];
        switch (decl.content) {
          case ContentKind::kText: {
            XDB_ASSIGN_OR_RETURN(bool ok,
                                 CheckSimpleValue(decl.text_type, t.text));
            if (!ok)
              return fail("element '" + decl.name + "' has an invalid " +
                          SimpleTypeName(decl.text_type) + " value");
            out->Text(t.text, ToTypeAnno(decl.text_type));
            break;
          }
          case ContentKind::kMixed:
            out->Text(t.text, TypeAnno::kString);
            break;
          case ContentKind::kChildren:
          case ContentKind::kEmpty: {
            // Whitespace between children is tolerated.
            bool all_space = true;
            for (size_t i = 0; i < t.text.size(); i++) {
              if (!std::isspace(static_cast<unsigned char>(t.text[i]))) {
                all_space = false;
                break;
              }
            }
            if (!all_space)
              return fail("element '" + decl.name +
                          "' does not allow text content");
            out->Text(t.text, TypeAnno::kUntyped);
            break;
          }
        }
        break;
      }
      case TokenKind::kNamespaceDecl:
      case TokenKind::kComment:
      case TokenKind::kProcessingInstruction:
        out->Append(t);
        break;
    }
  }
  if (!stack.empty()) return fail("input ended with open elements");
  if (!root_seen) return fail("document has no root element");
  return Status::OK();
}

}  // namespace schema
}  // namespace xdb
