#include "schema/schema_parser.h"

#include <cctype>
#include <set>

namespace xdb {
namespace schema {

namespace {

class Scanner {
 public:
  explicit Scanner(Slice text)
      : p_(text.data()), limit_(p_ + text.size()), begin_(p_) {}

  Status Fail(const std::string& what) {
    return Status::ParseError("schema: " + what + " at offset " +
                              std::to_string(p_ - begin_));
  }

  void SkipWs() {
    for (;;) {
      while (p_ < limit_ && std::isspace(static_cast<unsigned char>(*p_)))
        p_++;
      if (p_ + 1 < limit_ && p_[0] == '/' && p_[1] == '/') {
        while (p_ < limit_ && *p_ != '\n') p_++;
        continue;
      }
      return;
    }
  }

  bool AtEnd() {
    SkipWs();
    return p_ >= limit_;
  }

  bool Accept(char c) {
    SkipWs();
    if (p_ < limit_ && *p_ == c) {
      p_++;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Accept(c)) return Fail(std::string("expected '") + c + "'");
    return Status::OK();
  }

  bool AcceptWord(const char* w) {
    SkipWs();
    size_t n = std::strlen(w);
    if (static_cast<size_t>(limit_ - p_) >= n && std::memcmp(p_, w, n) == 0) {
      // Must not be a prefix of a longer identifier.
      if (p_ + n < limit_ &&
          (std::isalnum(static_cast<unsigned char>(p_[n])) || p_[n] == '_'))
        return false;
      p_ += n;
      return true;
    }
    return false;
  }

  Status ReadName(std::string* out) {
    SkipWs();
    if (p_ >= limit_ ||
        !(std::isalpha(static_cast<unsigned char>(*p_)) || *p_ == '_'))
      return Fail("expected an identifier");
    const char* start = p_;
    while (p_ < limit_ && (std::isalnum(static_cast<unsigned char>(*p_)) ||
                           *p_ == '_' || *p_ == '-' || *p_ == '.'))
      p_++;
    out->assign(start, p_ - start);
    return Status::OK();
  }

  char Peek() {
    SkipWs();
    return p_ < limit_ ? *p_ : '\0';
  }

 private:
  const char* p_;
  const char* limit_;
  const char* begin_;
};

class SchemaParser {
 public:
  explicit SchemaParser(Slice text) : sc_(text) {}

  Result<SchemaDoc> Parse();

 private:
  Result<std::unique_ptr<Regex>> ParseChoice();
  Result<std::unique_ptr<Regex>> ParseSeq();
  Result<std::unique_ptr<Regex>> ParseTerm();
  Status ParseElement(ElementDecl* decl);

  Scanner sc_;
};

Result<std::unique_ptr<Regex>> SchemaParser::ParseTerm() {
  auto node = std::make_unique<Regex>();
  if (sc_.Accept('(')) {
    XDB_ASSIGN_OR_RETURN(node, ParseChoice());
    XDB_RETURN_NOT_OK(sc_.Expect(')'));
  } else {
    node->kind = Regex::Kind::kName;
    XDB_RETURN_NOT_OK(sc_.ReadName(&node->name));
  }
  for (;;) {
    char c = sc_.Peek();
    Regex::Kind k;
    if (c == '*') k = Regex::Kind::kStar;
    else if (c == '+') k = Regex::Kind::kPlus;
    else if (c == '?') k = Regex::Kind::kOpt;
    else break;
    sc_.Accept(c);
    auto wrap = std::make_unique<Regex>();
    wrap->kind = k;
    wrap->children.push_back(std::move(node));
    node = std::move(wrap);
  }
  return node;
}

Result<std::unique_ptr<Regex>> SchemaParser::ParseSeq() {
  XDB_ASSIGN_OR_RETURN(std::unique_ptr<Regex> first, ParseTerm());
  if (sc_.Peek() != ',') return first;
  auto seq = std::make_unique<Regex>();
  seq->kind = Regex::Kind::kSeq;
  seq->children.push_back(std::move(first));
  while (sc_.Accept(',')) {
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<Regex> next, ParseTerm());
    seq->children.push_back(std::move(next));
  }
  return seq;
}

Result<std::unique_ptr<Regex>> SchemaParser::ParseChoice() {
  XDB_ASSIGN_OR_RETURN(std::unique_ptr<Regex> first, ParseSeq());
  if (sc_.Peek() != '|') return first;
  auto choice = std::make_unique<Regex>();
  choice->kind = Regex::Kind::kChoice;
  choice->children.push_back(std::move(first));
  while (sc_.Accept('|')) {
    XDB_ASSIGN_OR_RETURN(std::unique_ptr<Regex> next, ParseSeq());
    choice->children.push_back(std::move(next));
  }
  return choice;
}

Status SchemaParser::ParseElement(ElementDecl* decl) {
  XDB_RETURN_NOT_OK(sc_.ReadName(&decl->name));
  XDB_RETURN_NOT_OK(sc_.Expect('{'));
  bool content_seen = false;
  while (!sc_.Accept('}')) {
    if (sc_.AcceptWord("attribute")) {
      AttrDecl attr;
      XDB_RETURN_NOT_OK(sc_.ReadName(&attr.name));
      XDB_RETURN_NOT_OK(sc_.Expect(':'));
      std::string type_name;
      XDB_RETURN_NOT_OK(sc_.ReadName(&type_name));
      XDB_ASSIGN_OR_RETURN(attr.type, SimpleTypeFromName(type_name));
      if (sc_.AcceptWord("required")) attr.required = true;
      else if (sc_.AcceptWord("optional")) attr.required = false;
      XDB_RETURN_NOT_OK(sc_.Expect(';'));
      decl->attrs.push_back(std::move(attr));
    } else if (sc_.AcceptWord("content")) {
      if (content_seen) return sc_.Fail("duplicate content declaration");
      content_seen = true;
      XDB_RETURN_NOT_OK(sc_.Expect(':'));
      decl->content = ContentKind::kChildren;
      XDB_ASSIGN_OR_RETURN(decl->model, ParseChoice());
      XDB_RETURN_NOT_OK(sc_.Expect(';'));
    } else if (sc_.AcceptWord("text")) {
      if (content_seen) return sc_.Fail("duplicate content declaration");
      content_seen = true;
      XDB_RETURN_NOT_OK(sc_.Expect(':'));
      std::string type_name;
      XDB_RETURN_NOT_OK(sc_.ReadName(&type_name));
      XDB_ASSIGN_OR_RETURN(decl->text_type, SimpleTypeFromName(type_name));
      decl->content = ContentKind::kText;
      XDB_RETURN_NOT_OK(sc_.Expect(';'));
    } else if (sc_.AcceptWord("empty")) {
      if (content_seen) return sc_.Fail("duplicate content declaration");
      content_seen = true;
      decl->content = ContentKind::kEmpty;
      XDB_RETURN_NOT_OK(sc_.Expect(';'));
    } else if (sc_.AcceptWord("mixed")) {
      if (content_seen) return sc_.Fail("duplicate content declaration");
      content_seen = true;
      decl->content = ContentKind::kMixed;
      XDB_RETURN_NOT_OK(sc_.Expect(';'));
    } else {
      return sc_.Fail("expected attribute/content/text/empty/mixed");
    }
  }
  if (!content_seen) decl->content = ContentKind::kEmpty;
  return Status::OK();
}

void CollectNames(const Regex& r, std::set<std::string>* names) {
  if (r.kind == Regex::Kind::kName) names->insert(r.name);
  for (const auto& c : r.children) CollectNames(*c, names);
}

Result<SchemaDoc> SchemaParser::Parse() {
  SchemaDoc doc;
  if (sc_.AcceptWord("schema")) {
    XDB_RETURN_NOT_OK(sc_.ReadName(&doc.name));
    XDB_RETURN_NOT_OK(sc_.Expect(';'));
  }
  while (!sc_.AtEnd()) {
    if (sc_.AcceptWord("root")) {
      XDB_RETURN_NOT_OK(sc_.ReadName(&doc.root));
      XDB_RETURN_NOT_OK(sc_.Expect(';'));
    } else if (sc_.AcceptWord("element")) {
      ElementDecl decl;
      XDB_RETURN_NOT_OK(ParseElement(&decl));
      doc.elements.push_back(std::move(decl));
    } else {
      return sc_.Fail("expected 'element' or 'root' declaration");
    }
  }
  // Semantic checks.
  std::set<std::string> declared;
  for (const auto& e : doc.elements) {
    if (!declared.insert(e.name).second)
      return Status::InvalidArgument("element '" + e.name +
                                     "' declared twice");
  }
  for (const auto& e : doc.elements) {
    if (e.model != nullptr) {
      std::set<std::string> refs;
      CollectNames(*e.model, &refs);
      for (const auto& r : refs) {
        if (declared.find(r) == declared.end())
          return Status::InvalidArgument("element '" + r +
                                         "' referenced but not declared");
      }
    }
  }
  if (doc.root.empty()) {
    if (doc.elements.empty())
      return Status::InvalidArgument("schema declares no elements");
    doc.root = doc.elements[0].name;
  } else if (declared.find(doc.root) == declared.end()) {
    return Status::InvalidArgument("root element '" + doc.root +
                                   "' is not declared");
  }
  return doc;
}

}  // namespace

Result<SchemaDoc> ParseSchema(Slice text) {
  SchemaParser parser(text);
  return parser.Parse();
}

}  // namespace schema
}  // namespace xdb
