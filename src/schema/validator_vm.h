// ValidatorVm: table-driven validation over the buffered token stream.
//
// "At the execution time, the binary schema is loaded and executed by a
// validation runtime to generate a token stream" (Figure 4). The VM walks
// the input tokens, runs each element's content-model DFA, checks attribute
// declarations, verifies simple-typed values, and emits a new token stream
// annotated with type information (which typed value indexing consumes).
#ifndef XDB_SCHEMA_VALIDATOR_VM_H_
#define XDB_SCHEMA_VALIDATOR_VM_H_

#include "common/slice.h"
#include "common/status.h"
#include "schema/schema_compiler.h"
#include "xml/name_dictionary.h"
#include "xml/token_stream.h"

namespace xdb {
namespace schema {

struct ValidatorStats {
  uint64_t elements_validated = 0;
  uint64_t attributes_validated = 0;
  uint64_t text_values_checked = 0;
};

class ValidatorVm {
 public:
  /// `schema` and `dict` must outlive the VM. The dictionary resolves the
  /// input stream's name ids back to strings for schema lookup; lookups are
  /// memoized so steady-state validation is id-indexed.
  ValidatorVm(const CompiledSchema* schema, const NameDictionary* dict);

  /// Validates `input`; on success appends the annotated stream to `out`.
  /// Fails with kValidationError on the first violation.
  Status Validate(Slice input, TokenWriter* out);

  const ValidatorStats& stats() const { return stats_; }

 private:
  Result<int> ElementIndexFor(NameId local);
  Result<bool> CheckSimpleValue(SimpleType type, Slice value);

  const CompiledSchema* schema_;
  const NameDictionary* dict_;
  std::vector<int> name_to_element_;  // NameId -> element index (-2 unknown)
  ValidatorStats stats_;
};

}  // namespace schema
}  // namespace xdb

#endif  // XDB_SCHEMA_VALIDATOR_VM_H_
