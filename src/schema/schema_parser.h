// Parser for the schema language (see schema_ast.h for the grammar sketch).
#ifndef XDB_SCHEMA_SCHEMA_PARSER_H_
#define XDB_SCHEMA_SCHEMA_PARSER_H_

#include "common/slice.h"
#include "common/status.h"
#include "schema/schema_ast.h"

namespace xdb {
namespace schema {

/// Parses schema text into an AST. Checks that all referenced child
/// elements are declared and that the root exists.
Result<SchemaDoc> ParseSchema(Slice text);

}  // namespace schema
}  // namespace xdb

#endif  // XDB_SCHEMA_SCHEMA_PARSER_H_
