// Schema compiler: AST -> compiled binary schema (Figure 4's "Schema Bin
// Format" stored in the catalog at registration time).
//
// Content models compile to DFAs via the Glushkov position construction +
// subset construction; the validation VM then runs a pure table-driven walk,
// which is the performance property the paper gets from its LALR-generated
// validation tables.
#ifndef XDB_SCHEMA_SCHEMA_COMPILER_H_
#define XDB_SCHEMA_SCHEMA_COMPILER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "schema/schema_ast.h"

namespace xdb {
namespace schema {

struct CompiledAttr {
  std::string name;
  SimpleType type = SimpleType::kString;
  bool required = false;
};

struct CompiledElement {
  std::string name;
  ContentKind content = ContentKind::kEmpty;
  SimpleType text_type = SimpleType::kString;
  std::vector<CompiledAttr> attrs;

  // Child-content DFA (kChildren only). Symbols are indices into `symbols`;
  // trans[state][symbol] is the next state or -1.
  std::vector<std::string> symbols;
  std::vector<char> accepting;
  std::vector<std::vector<int32_t>> trans;
  int32_t start_state = 0;
};

class CompiledSchema {
 public:
  const std::string& name() const { return name_; }
  const std::string& root() const { return root_; }
  const std::vector<CompiledElement>& elements() const { return elements_; }

  /// Index of an element declaration by name; -1 if undeclared.
  int FindElement(const std::string& name) const;

  /// Binary (de)serialization — the catalog-stored form.
  void Serialize(std::string* out) const;
  static Result<CompiledSchema> Deserialize(Slice data);

 private:
  friend Result<CompiledSchema> CompileSchema(const SchemaDoc& doc);

  std::string name_, root_;
  std::vector<CompiledElement> elements_;
  std::unordered_map<std::string, int> index_;
};

/// Compiles a parsed schema document.
Result<CompiledSchema> CompileSchema(const SchemaDoc& doc);

/// Convenience: parse + compile.
Result<CompiledSchema> CompileSchemaText(Slice text);

}  // namespace schema
}  // namespace xdb

#endif  // XDB_SCHEMA_SCHEMA_COMPILER_H_
