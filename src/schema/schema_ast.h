// Schema language AST.
//
// The paper compiles registered XML Schemas into a binary parsing-table
// format executed by a validation VM (Figure 4). This reproduction uses a
// compact schema language with the same architectural pipeline — element
// declarations with regular-expression content models, typed attributes and
// typed text — compiled to Glushkov DFAs (see DESIGN.md, substitutions).
//
// Example:
//   schema catalog;
//   root Catalog;
//   element Catalog  { content: Categories+; }
//   element Categories { content: Product*; }
//   element Product  { attribute id: string required;
//                      content: ProductName, RegPrice?, Discount?; }
//   element ProductName { text: string; }
//   element RegPrice { text: decimal; }
#ifndef XDB_SCHEMA_SCHEMA_AST_H_
#define XDB_SCHEMA_SCHEMA_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/token_stream.h"

namespace xdb {
namespace schema {

enum class SimpleType : uint8_t {
  kUntyped = 0,
  kString = 1,
  kDouble = 2,
  kDecimal = 3,
  kInteger = 4,
  kDate = 5,
  kBoolean = 6,
};

TypeAnno ToTypeAnno(SimpleType t);
Result<SimpleType> SimpleTypeFromName(const std::string& name);
const char* SimpleTypeName(SimpleType t);

/// Content-model regular expression over child element names.
struct Regex {
  enum class Kind : uint8_t {
    kEpsilon,  // empty word
    kName,     // one child element
    kSeq,      // children in order
    kChoice,   // one of the children
    kStar,     // zero or more
    kPlus,     // one or more
    kOpt,      // zero or one
  };

  Kind kind = Kind::kEpsilon;
  std::string name;  // kName
  std::vector<std::unique_ptr<Regex>> children;
};

struct AttrDecl {
  std::string name;
  SimpleType type = SimpleType::kString;
  bool required = false;
};

enum class ContentKind : uint8_t {
  kChildren = 0,  // element-only content per the regex model
  kText = 1,      // typed text content, no child elements
  kEmpty = 2,     // no content
  kMixed = 3,     // text interleaved with any declared elements
};

struct ElementDecl {
  std::string name;
  std::vector<AttrDecl> attrs;
  ContentKind content = ContentKind::kEmpty;
  SimpleType text_type = SimpleType::kString;  // kText content
  std::unique_ptr<Regex> model;                // kChildren content
};

struct SchemaDoc {
  std::string name;
  std::string root;  // required root element name
  std::vector<ElementDecl> elements;
};

}  // namespace schema
}  // namespace xdb

#endif  // XDB_SCHEMA_SCHEMA_AST_H_
