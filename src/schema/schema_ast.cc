#include "schema/schema_ast.h"

namespace xdb {
namespace schema {

TypeAnno ToTypeAnno(SimpleType t) {
  switch (t) {
    case SimpleType::kUntyped: return TypeAnno::kUntyped;
    case SimpleType::kString: return TypeAnno::kString;
    case SimpleType::kDouble: return TypeAnno::kDouble;
    case SimpleType::kDecimal: return TypeAnno::kDecimal;
    case SimpleType::kInteger: return TypeAnno::kInteger;
    case SimpleType::kDate: return TypeAnno::kDate;
    case SimpleType::kBoolean: return TypeAnno::kBoolean;
  }
  return TypeAnno::kUntyped;
}

Result<SimpleType> SimpleTypeFromName(const std::string& name) {
  if (name == "string") return SimpleType::kString;
  if (name == "double") return SimpleType::kDouble;
  if (name == "decimal") return SimpleType::kDecimal;
  if (name == "integer") return SimpleType::kInteger;
  if (name == "date") return SimpleType::kDate;
  if (name == "boolean") return SimpleType::kBoolean;
  return Status::InvalidArgument("unknown simple type '" + name + "'");
}

const char* SimpleTypeName(SimpleType t) {
  switch (t) {
    case SimpleType::kUntyped: return "untyped";
    case SimpleType::kString: return "string";
    case SimpleType::kDouble: return "double";
    case SimpleType::kDecimal: return "decimal";
    case SimpleType::kInteger: return "integer";
    case SimpleType::kDate: return "date";
    case SimpleType::kBoolean: return "boolean";
  }
  return "unknown";
}

}  // namespace schema
}  // namespace xdb
