#include "schema/schema_compiler.h"

#include <map>
#include <set>

#include "common/coding.h"
#include "schema/schema_parser.h"

namespace xdb {
namespace schema {

namespace {

// --- Glushkov position automaton ---

struct Positions {
  // Each position is one kName occurrence; sym[i] is its symbol index.
  std::vector<int> sym;
  bool nullable = false;
  std::set<int> first, last;
  std::vector<std::set<int>> follow;
};

struct GlushkovBuilder {
  std::map<std::string, int> symbol_ids;
  std::vector<std::string> symbols;
  Positions pos;

  int SymbolId(const std::string& name) {
    auto it = symbol_ids.find(name);
    if (it != symbol_ids.end()) return it->second;
    int id = static_cast<int>(symbols.size());
    symbols.push_back(name);
    symbol_ids.emplace(name, id);
    return id;
  }

  struct NodeInfo {
    bool nullable;
    std::set<int> first, last;
  };

  NodeInfo Build(const Regex& r) {
    switch (r.kind) {
      case Regex::Kind::kEpsilon:
        return {true, {}, {}};
      case Regex::Kind::kName: {
        int p = static_cast<int>(pos.sym.size());
        pos.sym.push_back(SymbolId(r.name));
        pos.follow.emplace_back();
        return {false, {p}, {p}};
      }
      case Regex::Kind::kSeq: {
        NodeInfo acc = Build(*r.children[0]);
        for (size_t i = 1; i < r.children.size(); i++) {
          NodeInfo next = Build(*r.children[i]);
          for (int l : acc.last)
            pos.follow[l].insert(next.first.begin(), next.first.end());
          NodeInfo merged;
          merged.nullable = acc.nullable && next.nullable;
          merged.first = acc.first;
          if (acc.nullable)
            merged.first.insert(next.first.begin(), next.first.end());
          merged.last = next.last;
          if (next.nullable)
            merged.last.insert(acc.last.begin(), acc.last.end());
          acc = std::move(merged);
        }
        return acc;
      }
      case Regex::Kind::kChoice: {
        NodeInfo acc{false, {}, {}};
        for (const auto& c : r.children) {
          NodeInfo next = Build(*c);
          acc.nullable = acc.nullable || next.nullable;
          acc.first.insert(next.first.begin(), next.first.end());
          acc.last.insert(next.last.begin(), next.last.end());
        }
        return acc;
      }
      case Regex::Kind::kStar:
      case Regex::Kind::kPlus: {
        NodeInfo inner = Build(*r.children[0]);
        for (int l : inner.last)
          pos.follow[l].insert(inner.first.begin(), inner.first.end());
        inner.nullable = inner.nullable || r.kind == Regex::Kind::kStar;
        return inner;
      }
      case Regex::Kind::kOpt: {
        NodeInfo inner = Build(*r.children[0]);
        inner.nullable = true;
        return inner;
      }
    }
    return {true, {}, {}};
  }
};

// Subset construction over Glushkov position sets.
void BuildDfa(const GlushkovBuilder& gb, const GlushkovBuilder::NodeInfo& root,
              CompiledElement* out) {
  out->symbols = gb.symbols;
  const size_t nsym = gb.symbols.size();
  std::map<std::set<int>, int> state_ids;
  std::vector<std::set<int>> states;
  auto intern = [&](const std::set<int>& s) {
    auto it = state_ids.find(s);
    if (it != state_ids.end()) return it->second;
    int id = static_cast<int>(states.size());
    states.push_back(s);
    state_ids.emplace(s, id);
    return id;
  };
  // State 0 = the "initial" marker set {-1} representing start.
  std::set<int> start{-1};
  intern(start);
  out->start_state = 0;
  std::vector<std::set<int>> worklist{start};
  out->trans.clear();
  out->accepting.clear();
  while (out->trans.size() < states.size()) {
    size_t idx = out->trans.size();
    const std::set<int> cur = states[idx];
    std::vector<int32_t> row(nsym, -1);
    // Accepting: start set accepts iff nullable; others iff they contain a
    // last position.
    bool acc;
    if (cur.count(-1) != 0) {
      acc = root.nullable;
    } else {
      acc = false;
      for (int p : cur)
        if (root.last.count(p) != 0) {
          acc = true;
          break;
        }
    }
    out->accepting.push_back(acc ? 1 : 0);
    for (size_t s = 0; s < nsym; s++) {
      std::set<int> next;
      if (cur.count(-1) != 0) {
        for (int p : root.first)
          if (gb.pos.sym[p] == static_cast<int>(s)) next.insert(p);
      } else {
        for (int p : cur)
          for (int f : gb.pos.follow[p])
            if (gb.pos.sym[f] == static_cast<int>(s)) next.insert(f);
      }
      if (!next.empty()) row[s] = intern(next);
    }
    out->trans.push_back(std::move(row));
  }
}

}  // namespace

int CompiledSchema::FindElement(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Result<CompiledSchema> CompileSchema(const SchemaDoc& doc) {
  CompiledSchema cs;
  cs.name_ = doc.name;
  cs.root_ = doc.root;
  for (const ElementDecl& e : doc.elements) {
    CompiledElement ce;
    ce.name = e.name;
    ce.content = e.content;
    ce.text_type = e.text_type;
    for (const AttrDecl& a : e.attrs)
      ce.attrs.push_back(CompiledAttr{a.name, a.type, a.required});
    if (e.content == ContentKind::kChildren) {
      GlushkovBuilder gb;
      GlushkovBuilder::NodeInfo root = gb.Build(*e.model);
      BuildDfa(gb, root, &ce);
    }
    cs.index_.emplace(ce.name, static_cast<int>(cs.elements_.size()));
    cs.elements_.push_back(std::move(ce));
  }
  return cs;
}

Result<CompiledSchema> CompileSchemaText(Slice text) {
  XDB_ASSIGN_OR_RETURN(SchemaDoc doc, ParseSchema(text));
  return CompileSchema(doc);
}

void CompiledSchema::Serialize(std::string* out) const {
  PutFixed32(out, 0x58534348);  // "XSCH"
  PutLengthPrefixed(out, name_);
  PutLengthPrefixed(out, root_);
  PutVarint64(out, elements_.size());
  for (const CompiledElement& e : elements_) {
    PutLengthPrefixed(out, e.name);
    out->push_back(static_cast<char>(e.content));
    out->push_back(static_cast<char>(e.text_type));
    PutVarint64(out, e.attrs.size());
    for (const CompiledAttr& a : e.attrs) {
      PutLengthPrefixed(out, a.name);
      out->push_back(static_cast<char>(a.type));
      out->push_back(a.required ? 1 : 0);
    }
    PutVarint64(out, e.symbols.size());
    for (const std::string& s : e.symbols) PutLengthPrefixed(out, s);
    PutVarint64(out, e.trans.size());
    PutVarint32(out, static_cast<uint32_t>(e.start_state));
    for (size_t st = 0; st < e.trans.size(); st++) {
      out->push_back(e.accepting[st]);
      for (int32_t t : e.trans[st])
        PutVarint32(out, static_cast<uint32_t>(t + 1));  // -1 -> 0
    }
  }
}

Result<CompiledSchema> CompiledSchema::Deserialize(Slice data) {
  CompiledSchema cs;
  if (data.size() < 4 || DecodeFixed32(data.data()) != 0x58534348)
    return Status::Corruption("bad compiled schema magic");
  data.RemovePrefix(4);
  Slice s;
  if (!GetLengthPrefixed(&data, &s))
    return Status::Corruption("bad schema name");
  cs.name_ = s.ToString();
  if (!GetLengthPrefixed(&data, &s))
    return Status::Corruption("bad schema root");
  cs.root_ = s.ToString();
  uint64_t nelem;
  size_t n = GetVarint64(data.data(), data.data() + data.size(), &nelem);
  if (n == 0) return Status::Corruption("bad element count");
  data.RemovePrefix(n);
  auto read_var = [&](uint64_t* v) -> bool {
    size_t k = GetVarint64(data.data(), data.data() + data.size(), v);
    if (k == 0) return false;
    data.RemovePrefix(k);
    return true;
  };
  for (uint64_t i = 0; i < nelem; i++) {
    CompiledElement e;
    if (!GetLengthPrefixed(&data, &s))
      return Status::Corruption("bad element name");
    e.name = s.ToString();
    if (data.size() < 2) return Status::Corruption("truncated element");
    e.content = static_cast<ContentKind>(data[0]);
    e.text_type = static_cast<SimpleType>(data[1]);
    data.RemovePrefix(2);
    uint64_t nattr;
    if (!read_var(&nattr)) return Status::Corruption("bad attr count");
    for (uint64_t a = 0; a < nattr; a++) {
      CompiledAttr attr;
      if (!GetLengthPrefixed(&data, &s))
        return Status::Corruption("bad attr name");
      attr.name = s.ToString();
      if (data.size() < 2) return Status::Corruption("truncated attr");
      attr.type = static_cast<SimpleType>(data[0]);
      attr.required = data[1] != 0;
      data.RemovePrefix(2);
      e.attrs.push_back(std::move(attr));
    }
    uint64_t nsym;
    if (!read_var(&nsym)) return Status::Corruption("bad symbol count");
    for (uint64_t k = 0; k < nsym; k++) {
      if (!GetLengthPrefixed(&data, &s))
        return Status::Corruption("bad symbol");
      e.symbols.push_back(s.ToString());
    }
    uint64_t nstate;
    if (!read_var(&nstate)) return Status::Corruption("bad state count");
    uint64_t start;
    if (!read_var(&start)) return Status::Corruption("bad start state");
    e.start_state = static_cast<int32_t>(start);
    for (uint64_t st = 0; st < nstate; st++) {
      if (data.empty()) return Status::Corruption("truncated dfa");
      e.accepting.push_back(data[0]);
      data.RemovePrefix(1);
      std::vector<int32_t> row;
      for (uint64_t k = 0; k < nsym; k++) {
        uint64_t t;
        if (!read_var(&t)) return Status::Corruption("bad transition");
        row.push_back(static_cast<int32_t>(t) - 1);
      }
      e.trans.push_back(std::move(row));
    }
    cs.index_.emplace(e.name, static_cast<int>(cs.elements_.size()));
    cs.elements_.push_back(std::move(e));
  }
  return cs;
}

}  // namespace schema
}  // namespace xdb
