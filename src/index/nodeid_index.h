// NodeIdIndex: the logical-to-physical map of Section 3.1/3.4.
//
// "A NodeID index is created on each XML table to map a logical node ID to
// its physical record ID (RID). For each contiguous interval of node IDs for
// nodes within a record in document order, only one entry is in the node ID
// index, which is the upper end point of the node ID interval."
//
// Lookup(doc, node) is therefore a single B+tree seek for the first entry
// with key >= (doc, node): because intervals partition a document's nodes
// and entries carry the interval's upper end point, that entry's RID is the
// record containing the node.
#ifndef XDB_INDEX_NODEID_INDEX_H_
#define XDB_INDEX_NODEID_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"

namespace xdb {

/// Resolves (doc, node id) to the RID of the containing record. The plain
/// NodeIdIndex resolves against current data; a VersionManager snapshot view
/// resolves against a point-in-time version — traversal code (StoredDocSource,
/// StoredTreeNavigator) works against either.
class NodeLocator {
 public:
  virtual ~NodeLocator() = default;
  virtual Result<Rid> Lookup(uint64_t doc_id, Slice node_id) = 0;
};

class NodeIdIndex : public NodeLocator {
 public:
  explicit NodeIdIndex(BTree* tree) : tree_(tree) {}

  /// Computes the record's node-ID intervals and inserts one entry per
  /// interval upper end point.
  Status AddRecord(uint64_t doc_id, Slice record, Rid rid);

  /// Removes the record's interval entries (must be passed the same bytes).
  Status RemoveRecord(uint64_t doc_id, Slice record, Rid rid);

  /// Finds the RID of the record containing `node_id` of document `doc_id`.
  /// An empty node_id addresses the document root record.
  Result<Rid> Lookup(uint64_t doc_id, Slice node_id) override;

  /// Lists (interval upper, rid) pairs of a document in node-ID order.
  Status ListDocEntries(uint64_t doc_id,
                        std::vector<std::pair<std::string, Rid>>* out);

  /// Distinct RIDs of a document's records, in first-appearance order.
  Status ListDocRecords(uint64_t doc_id, std::vector<Rid>* out);

  /// Drops every entry of the document (document deletion).
  Status RemoveDocEntries(uint64_t doc_id);

  BTree* tree() { return tree_; }

 private:
  BTree* tree_;
};

}  // namespace xdb

#endif  // XDB_INDEX_NODEID_INDEX_H_
