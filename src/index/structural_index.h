// StructuralIndex: (pre, post)-interval indexing of element structure, the
// XISS/R scheme adapted to this engine's Dewey NodeIDs.
//
// Where value indexes (Section 3.3/4.3) prune candidates by *content*, a
// structural index prunes by *shape*: every element instance is numbered in
// document order (pre) and completion order (post), so
//
//   a is an ancestor of b  <=>  pre(a) < pre(b)  AND  post(b) < post(a)
//
// and "all instances of element name N" — the expensive part of a
// //a//N-shaped step — becomes one B+tree range scan instead of a
// QuickXScan tree walk per candidate document. Entries live in the same
// B+tree infrastructure as value indexes:
//
//   key   = [name_id big32][doc_id big64][pre big32]
//   value = [post big32][level big32][node id bytes]
//
// so one name's entries are contiguous and come back sorted by
// (doc_id, pre) — which IS (doc_id, document order) — exactly the order the
// executor's interval-merge join and the parallel-execution determinism
// contract need. The Dewey NodeID is carried in the value because interval
// containment and Dewey prefix containment are the same relation here
// (nested intervals <=> prefix ancestry), letting the executor anchor value
// postings under structural entries with a plain prefix test during the
// ordered merge.
//
// (pre, post, level) are derived from the same virtual-SAX event walk that
// assigns the tree-packer's Dewey IDs — no second parse of the XML text.
#ifndef XDB_INDEX_STRUCTURAL_INDEX_H_
#define XDB_INDEX_STRUCTURAL_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/slice.h"
#include "common/status.h"
#include "xml/name_dictionary.h"

namespace xdb {

class XmlEventSource;

/// Definition of one structural index.
struct StructuralIndexDef {
  std::string name;
  /// Local element name to index; empty indexes every element name (the
  /// "optionally per-name" knob: a per-name index stays small and is only
  /// consulted for steps testing exactly that name).
  std::string element_name;
};

/// One element instance's structural facts, as derived from a document walk.
struct StructuralEntry {
  NameId name_id = kEmptyNameId;
  uint32_t pre = 0;    // document-order (start-tag) number within the doc
  uint32_t post = 0;   // completion-order (end-tag) number within the doc
  uint32_t level = 0;  // element nesting depth (root element = 1)
  /// Descendant element count (the interval width): pre numbers of the
  /// subtree's elements are exactly (pre, pre + subtree_size]. Feeds the
  /// stats span sketch; not persisted in the entry value.
  uint32_t subtree_size = 0;
  std::string node_id;  // absolute Dewey node ID
};

/// One hit from a structural probe: an element instance of the probed name.
struct StructuralPosting {
  uint64_t doc_id = 0;
  uint32_t pre = 0;
  uint32_t post = 0;
  uint32_t level = 0;
  std::string node_id;
};

/// Observer of entry adds/removes, keyed by the element's local name with
/// its subtree span. query::CollectionStats implements this to maintain the
/// per-name count + average-span sketch every maintenance path feeds (same
/// pattern as ValueIndexStatsListener). Calls happen under the collection's
/// exclusive latch; implementations must not call back into the index.
class StructuralIndexStatsListener {
 public:
  virtual ~StructuralIndexStatsListener() = default;
  virtual void OnElementAdded(Slice local_name, uint32_t subtree_size) = 0;
  virtual void OnElementRemoved(Slice local_name, uint32_t subtree_size) = 0;
};

/// Walks one document's virtual-SAX events and numbers every element:
/// pre increments at each start-element, post at each end-element, level is
/// the event's nesting depth, node_id is the event's absolute Dewey ID (the
/// token-stream source synthesizes the canonical IDs the tree-packer
/// assigns; the stored-doc source reports the real stored IDs, which is what
/// keeps reindex-after-subtree-edit faithful to Between()-allocated IDs).
Status DeriveStructuralEntries(XmlEventSource* source,
                               std::vector<StructuralEntry>* out);

class StructuralIndex {
 public:
  StructuralIndex(StructuralIndexDef def, BTree* tree)
      : def_(std::move(def)), tree_(tree) {}

  const StructuralIndexDef& def() const { return def_; }
  BTree* tree() { return tree_; }

  /// Installs (or clears, with nullptr) the statistics listener.
  void set_stats_listener(StructuralIndexStatsListener* listener) {
    stats_ = listener;
  }

  /// True when this index holds entries for elements named `local_name`
  /// (all-names index, or the per-name index for exactly that name).
  bool CoversName(Slice local_name) const {
    return def_.element_name.empty() || Slice(def_.element_name) == local_name;
  }

  /// Adds/removes one document's derived entries. `dict` renders local
  /// names for the stats listener. Both are idempotent per entry (B+tree
  /// exact (key, value) insert/delete), matching WAL-replay semantics.
  Status AddEntries(const NameDictionary& dict, uint64_t doc_id,
                    const std::vector<StructuralEntry>& entries);
  Status RemoveEntries(const NameDictionary& dict, uint64_t doc_id,
                       const std::vector<StructuralEntry>& entries);

  /// Range-scans every instance of `name_id` across all documents, in
  /// (doc_id, pre) order — document order within each document.
  Status Scan(NameId name_id, std::vector<StructuralPosting>* out);

  /// Total entries in the index (full scan; tests and stats rebuilds only).
  Result<uint64_t> CountEntries();

 private:
  StructuralIndexDef def_;
  BTree* tree_;
  StructuralIndexStatsListener* stats_ = nullptr;
};

// Key/value codec, exposed for tests.
void EncodeStructuralKey(NameId name_id, uint64_t doc_id, uint32_t pre,
                         std::string* out);
void EncodeStructuralValue(uint32_t post, uint32_t level, Slice node_id,
                           std::string* out);
Status DecodeStructuralKey(Slice key, NameId* name_id, uint64_t* doc_id,
                           uint32_t* pre);
Status DecodeStructuralValue(Slice value, uint32_t* post, uint32_t* level,
                             Slice* node_id);

}  // namespace xdb

#endif  // XDB_INDEX_STRUCTURAL_INDEX_H_
