#include "index/structural_index.h"

#include "common/coding.h"
#include "runtime/virtual_sax.h"

namespace xdb {

void EncodeStructuralKey(NameId name_id, uint64_t doc_id, uint32_t pre,
                         std::string* out) {
  PutBig32(out, name_id);
  PutBig64(out, doc_id);
  PutBig32(out, pre);
}

void EncodeStructuralValue(uint32_t post, uint32_t level, Slice node_id,
                           std::string* out) {
  PutBig32(out, post);
  PutBig32(out, level);
  out->append(node_id.data(), node_id.size());
}

Status DecodeStructuralKey(Slice key, NameId* name_id, uint64_t* doc_id,
                           uint32_t* pre) {
  if (key.size() != 4 + 8 + 4)
    return Status::Corruption("bad structural index key");
  *name_id = DecodeBig32(key.data());
  *doc_id = DecodeBig64(key.data() + 4);
  *pre = DecodeBig32(key.data() + 12);
  return Status::OK();
}

Status DecodeStructuralValue(Slice value, uint32_t* post, uint32_t* level,
                             Slice* node_id) {
  if (value.size() < 8)
    return Status::Corruption("bad structural index value");
  *post = DecodeBig32(value.data());
  *level = DecodeBig32(value.data() + 4);
  *node_id = Slice(value.data() + 8, value.size() - 8);
  return Status::OK();
}

Status DeriveStructuralEntries(XmlEventSource* source,
                               std::vector<StructuralEntry>* out) {
  out->clear();
  uint32_t pre = 0;
  uint32_t post = 0;
  std::vector<size_t> open;  // indexes into *out of unclosed elements
  XmlEvent ev;
  for (;;) {
    XDB_ASSIGN_OR_RETURN(bool more, source->Next(&ev));
    if (!more) break;
    if (ev.type == XmlEvent::Type::kStartElement) {
      StructuralEntry e;
      e.name_id = ev.local;
      e.pre = pre++;
      // Level comes from the derivation's own element stack, not ev.depth:
      // event sources disagree on whether the document node counts as a
      // depth (TokenStreamSource roots elements at 1, StoredDocSource at
      // 0), and index maintenance deletes by exact (key, value) match, so
      // insert-time and removal-time derivations must be byte-identical.
      e.level = static_cast<uint32_t>(open.size()) + 1;
      e.node_id = ev.node_id.ToString();
      open.push_back(out->size());
      out->push_back(std::move(e));
    } else if (ev.type == XmlEvent::Type::kEndElement) {
      if (open.empty())
        return Status::Corruption("unbalanced end-element event");
      StructuralEntry& e = (*out)[open.back()];
      e.post = post++;
      // Elements opened after e and before its close are exactly its
      // descendants: the interval (e.pre, current pre counter).
      e.subtree_size = pre - e.pre - 1;
      open.pop_back();
    }
  }
  if (!open.empty())
    return Status::Corruption("unclosed element in event stream");
  return Status::OK();
}

Status StructuralIndex::AddEntries(const NameDictionary& dict, uint64_t doc_id,
                                   const std::vector<StructuralEntry>& entries) {
  std::string key, value;
  for (const StructuralEntry& e : entries) {
    XDB_ASSIGN_OR_RETURN(std::string local, dict.Name(e.name_id));
    if (!CoversName(local)) continue;
    key.clear();
    value.clear();
    EncodeStructuralKey(e.name_id, doc_id, e.pre, &key);
    EncodeStructuralValue(e.post, e.level, Slice(e.node_id), &value);
    XDB_RETURN_NOT_OK(tree_->Insert(key, value));
    if (stats_ != nullptr) stats_->OnElementAdded(local, e.subtree_size);
  }
  return Status::OK();
}

Status StructuralIndex::RemoveEntries(
    const NameDictionary& dict, uint64_t doc_id,
    const std::vector<StructuralEntry>& entries) {
  std::string key, value;
  for (const StructuralEntry& e : entries) {
    XDB_ASSIGN_OR_RETURN(std::string local, dict.Name(e.name_id));
    if (!CoversName(local)) continue;
    key.clear();
    value.clear();
    EncodeStructuralKey(e.name_id, doc_id, e.pre, &key);
    EncodeStructuralValue(e.post, e.level, Slice(e.node_id), &value);
    XDB_RETURN_NOT_OK(tree_->Delete(key, value));
    if (stats_ != nullptr) stats_->OnElementRemoved(local, e.subtree_size);
  }
  return Status::OK();
}

Status StructuralIndex::Scan(NameId name_id,
                             std::vector<StructuralPosting>* out) {
  out->clear();
  std::string lo;
  PutBig32(&lo, name_id);  // (name_id, doc 0, pre 0) lower bound
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree_->Seek(lo));
  while (it.Valid()) {
    NameId got_name;
    StructuralPosting p;
    Slice node_id;
    XDB_RETURN_NOT_OK(
        DecodeStructuralKey(it.key(), &got_name, &p.doc_id, &p.pre));
    if (got_name != name_id) break;  // past this name's contiguous range
    XDB_RETURN_NOT_OK(
        DecodeStructuralValue(it.value(), &p.post, &p.level, &node_id));
    p.node_id = node_id.ToString();
    out->push_back(std::move(p));
    XDB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

Result<uint64_t> StructuralIndex::CountEntries() {
  uint64_t n = 0;
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree_->SeekToFirst());
  while (it.Valid()) {
    n++;
    XDB_RETURN_NOT_OK(it.Next());
  }
  return n;
}

}  // namespace xdb
