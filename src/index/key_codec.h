// Order-preserving typed key encodings for XPath value indexes.
//
// Section 3.3: "A few simple types supported, such as double, string, and
// date. Key values are converted from the string values of the nodes"; and
// Section 4.3: "we use decimal floating-point number based on the new IEEE
// 754r for numeric value indexing, which provides precise values within its
// range."
#ifndef XDB_INDEX_KEY_CODEC_H_
#define XDB_INDEX_KEY_CODEC_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace xdb {

enum class ValueType : uint8_t {
  kString = 1,   // VARCHAR(n)-equivalent
  kDouble = 2,
  kDecimal = 3,  // IEEE-754r-style exact decimal
  kDate = 4,     // xs:date, day precision
};

const char* ValueTypeName(ValueType t);
Result<ValueType> ValueTypeFromName(Slice name);

/// Converts a node's string value into a byte-comparable key of the given
/// type, appended to `out`. Fails with kInvalidArgument when the value is
/// not castable (the caller skips such nodes — no index entry is created).
Status EncodeTypedKey(ValueType type, Slice value, uint32_t max_string_len,
                      std::string* out);

/// Parses "[-]YYYY-MM-DD" into days since 1970-01-01 (proleptic Gregorian).
Result<int64_t> ParseDateDays(Slice s);

// Posting payload: the (DocID, NodeID, RID) part of a value index entry.
void EncodePosting(uint64_t doc_id, Slice node_id, uint64_t rid_packed,
                   std::string* out);
Status DecodePosting(Slice payload, uint64_t* doc_id, Slice* node_id,
                     uint64_t* rid_packed);

// NodeID index key: [doc_id big64][node id bytes].
void EncodeNodeIdKey(uint64_t doc_id, Slice node_id, std::string* out);
Status DecodeNodeIdKey(Slice key, uint64_t* doc_id, Slice* node_id);

}  // namespace xdb

#endif  // XDB_INDEX_KEY_CODEC_H_
