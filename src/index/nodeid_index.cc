#include "index/nodeid_index.h"

#include <algorithm>

#include "common/coding.h"
#include "index/key_codec.h"
#include "pack/packed_record.h"

namespace xdb {

Status NodeIdIndex::AddRecord(uint64_t doc_id, Slice record, Rid rid) {
  std::vector<std::string> uppers;
  XDB_RETURN_NOT_OK(ComputeNodeIdIntervals(record, &uppers));
  std::string value;
  PutFixed64(&value, rid.Pack());
  for (const std::string& upper : uppers) {
    std::string key;
    EncodeNodeIdKey(doc_id, upper, &key);
    XDB_RETURN_NOT_OK(tree_->Insert(key, value));
  }
  return Status::OK();
}

Status NodeIdIndex::RemoveRecord(uint64_t doc_id, Slice record, Rid rid) {
  std::vector<std::string> uppers;
  XDB_RETURN_NOT_OK(ComputeNodeIdIntervals(record, &uppers));
  std::string value;
  PutFixed64(&value, rid.Pack());
  for (const std::string& upper : uppers) {
    std::string key;
    EncodeNodeIdKey(doc_id, upper, &key);
    XDB_RETURN_NOT_OK(tree_->Delete(key, value));
  }
  return Status::OK();
}

Result<Rid> NodeIdIndex::Lookup(uint64_t doc_id, Slice node_id) {
  std::string key;
  EncodeNodeIdKey(doc_id, node_id, &key);
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree_->Seek(key));
  if (!it.Valid()) return Status::NotFound("node id beyond document");
  uint64_t found_doc;
  Slice found_node;
  XDB_RETURN_NOT_OK(DecodeNodeIdKey(it.key(), &found_doc, &found_node));
  if (found_doc != doc_id) return Status::NotFound("no such document node");
  if (it.value().size() != 8) return Status::Corruption("bad node index value");
  return Rid::Unpack(DecodeFixed64(it.value().data()));
}

Status NodeIdIndex::ListDocEntries(
    uint64_t doc_id, std::vector<std::pair<std::string, Rid>>* out) {
  out->clear();
  std::string key;
  EncodeNodeIdKey(doc_id, Slice(), &key);
  XDB_ASSIGN_OR_RETURN(BTree::Iterator it, tree_->Seek(key));
  while (it.Valid()) {
    uint64_t found_doc;
    Slice found_node;
    XDB_RETURN_NOT_OK(DecodeNodeIdKey(it.key(), &found_doc, &found_node));
    if (found_doc != doc_id) break;
    if (it.value().size() != 8)
      return Status::Corruption("bad node index value");
    out->emplace_back(found_node.ToString(),
                      Rid::Unpack(DecodeFixed64(it.value().data())));
    XDB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

Status NodeIdIndex::ListDocRecords(uint64_t doc_id, std::vector<Rid>* out) {
  out->clear();
  std::vector<std::pair<std::string, Rid>> entries;
  XDB_RETURN_NOT_OK(ListDocEntries(doc_id, &entries));
  for (auto& [upper, rid] : entries) {
    (void)upper;
    if (std::find(out->begin(), out->end(), rid) == out->end())
      out->push_back(rid);
  }
  return Status::OK();
}

Status NodeIdIndex::RemoveDocEntries(uint64_t doc_id) {
  std::vector<std::pair<std::string, Rid>> entries;
  XDB_RETURN_NOT_OK(ListDocEntries(doc_id, &entries));
  for (auto& [upper, rid] : entries) {
    std::string key, value;
    EncodeNodeIdKey(doc_id, upper, &key);
    PutFixed64(&value, rid.Pack());
    XDB_RETURN_NOT_OK(tree_->Delete(key, value));
  }
  return Status::OK();
}

}  // namespace xdb
