// ValueIndex: XPath value indexes, Section 3.3.
//
// "Users can create XPath value indexes on frequently searched elements or
// attributes by specifying a simple XPath expression without predicates,
// such as /catalog//productname, and a data type for the key values. ... A
// value index entry contains (keyval, DocID, NodeID, RID)". Unlike
// relational indexes there may be zero, one or more entries per record.
#ifndef XDB_INDEX_VALUE_INDEX_H_
#define XDB_INDEX_VALUE_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/slice.h"
#include "common/status.h"
#include "index/key_codec.h"
#include "storage/page.h"

namespace xdb {

/// Definition of one XPath value index.
struct ValueIndexDef {
  std::string name;
  std::string path;  // predicate-free XPath, e.g. "/catalog//productname"
  ValueType type = ValueType::kString;
  uint32_t max_string_len = 128;  // VARCHAR(n) equivalent for string keys
};

/// One (DocID, NodeID, RID) hit returned from an index probe.
struct Posting {
  uint64_t doc_id = 0;
  std::string node_id;
  Rid rid;
};

/// A bound of a key range probe.
struct KeyBound {
  std::string key;  // typed-encoded
  bool inclusive = true;
};

/// Observer of successful entry adds/removes, keyed by the typed-encoded
/// key. The planner's statistics (query::CollectionStats) implement this so
/// every index-maintenance path — document insert/delete, subtree edits,
/// text updates, backfill — feeds the per-index key-count and distinct-key
/// sketch without per-call-site hooks. Calls happen under the collection's
/// exclusive latch; implementations must not call back into the index.
class ValueIndexStatsListener {
 public:
  virtual ~ValueIndexStatsListener() = default;
  virtual void OnEntryAdded(Slice encoded_key) = 0;
  virtual void OnEntryRemoved(Slice encoded_key) = 0;
};

class ValueIndex {
 public:
  ValueIndex(ValueIndexDef def, BTree* tree)
      : def_(std::move(def)), tree_(tree) {}

  const ValueIndexDef& def() const { return def_; }
  BTree* tree() { return tree_; }

  /// Installs (or clears, with nullptr) the statistics listener.
  void set_stats_listener(ValueIndexStatsListener* listener) {
    stats_ = listener;
  }

  /// Adds an entry for a node whose string value is `value`. Values that do
  /// not cast to the index type produce no entry (returns OK).
  Status Add(Slice value, uint64_t doc_id, Slice node_id, Rid rid);

  Status Remove(Slice value, uint64_t doc_id, Slice node_id, Rid rid);

  /// Encodes a query literal with this index's type.
  Status EncodeKey(Slice value, std::string* out) const {
    return EncodeTypedKey(def_.type, value, def_.max_string_len, out);
  }

  /// Range probe: postings with lo <= key <= hi (either bound optional),
  /// in (key, doc, node) order.
  Status Scan(const std::optional<KeyBound>& lo,
              const std::optional<KeyBound>& hi, std::vector<Posting>* out);

  /// Equality probe.
  Status ScanEqual(Slice value, std::vector<Posting>* out);

 private:
  ValueIndexDef def_;
  BTree* tree_;
  ValueIndexStatsListener* stats_ = nullptr;
};

}  // namespace xdb

#endif  // XDB_INDEX_VALUE_INDEX_H_
