#include "index/key_codec.h"

#include <cctype>
#include <cmath>

#include "common/coding.h"
#include "common/decimal.h"
#include "xdm/item.h"

namespace xdb {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kString: return "string";
    case ValueType::kDouble: return "double";
    case ValueType::kDecimal: return "decimal";
    case ValueType::kDate: return "date";
  }
  return "unknown";
}

Result<ValueType> ValueTypeFromName(Slice name) {
  if (name == "string") return ValueType::kString;
  if (name == "double") return ValueType::kDouble;
  if (name == "decimal") return ValueType::kDecimal;
  if (name == "date") return ValueType::kDate;
  return Status::InvalidArgument("unknown value type '" + name.ToString() +
                                 "'");
}

Result<int64_t> ParseDateDays(Slice s) {
  // Trim whitespace.
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) b++;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) e--;
  Slice t(s.data() + b, e - b);
  bool neg = false;
  size_t i = 0;
  if (!t.empty() && t[0] == '-') {
    neg = true;
    i = 1;
  }
  auto read_int = [&](size_t digits, int64_t* out) -> bool {
    if (i + digits > t.size()) return false;
    int64_t v = 0;
    for (size_t k = 0; k < digits; k++) {
      char c = t[i + k];
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    i += digits;
    *out = v;
    return true;
  };
  int64_t year, month, day;
  if (!read_int(4, &year)) return Status::InvalidArgument("bad date year");
  if (i >= t.size() || t[i] != '-')
    return Status::InvalidArgument("bad date separator");
  i++;
  if (!read_int(2, &month)) return Status::InvalidArgument("bad date month");
  if (i >= t.size() || t[i] != '-')
    return Status::InvalidArgument("bad date separator");
  i++;
  if (!read_int(2, &day)) return Status::InvalidArgument("bad date day");
  if (i != t.size()) return Status::InvalidArgument("trailing date characters");
  if (neg) year = -year;
  if (month < 1 || month > 12 || day < 1 || day > 31)
    return Status::InvalidArgument("date out of range");

  // Days-from-civil (Howard Hinnant's algorithm).
  int64_t y = year;
  y -= month <= 2;
  int64_t era = (y >= 0 ? y : y - 399) / 400;
  int64_t yoe = y - era * 400;
  int64_t doy = (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

Status EncodeTypedKey(ValueType type, Slice value, uint32_t max_string_len,
                      std::string* out) {
  switch (type) {
    case ValueType::kString: {
      size_t n = std::min<size_t>(value.size(), max_string_len);
      out->append(value.data(), n);
      return Status::OK();
    }
    case ValueType::kDouble: {
      double d = StringToNumber(value);
      if (std::isnan(d))
        return Status::InvalidArgument("value is not a number");
      PutOrderedDouble(out, d);
      return Status::OK();
    }
    case ValueType::kDecimal: {
      auto res = Decimal::FromString(value);
      if (!res.ok()) return res.status();
      res.value().EncodeKey(out);
      return Status::OK();
    }
    case ValueType::kDate: {
      XDB_ASSIGN_OR_RETURN(int64_t days, ParseDateDays(value));
      // Bias so byte order matches chronological order.
      PutBig64(out, static_cast<uint64_t>(days + (1LL << 40)));
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown value type");
}

void EncodePosting(uint64_t doc_id, Slice node_id, uint64_t rid_packed,
                   std::string* out) {
  PutBig64(out, doc_id);
  PutFixed64(out, rid_packed);
  out->append(node_id.data(), node_id.size());
}

Status DecodePosting(Slice payload, uint64_t* doc_id, Slice* node_id,
                     uint64_t* rid_packed) {
  if (payload.size() < 16) return Status::Corruption("short posting");
  *doc_id = DecodeBig64(payload.data());
  *rid_packed = DecodeFixed64(payload.data() + 8);
  *node_id = Slice(payload.data() + 16, payload.size() - 16);
  return Status::OK();
}

void EncodeNodeIdKey(uint64_t doc_id, Slice node_id, std::string* out) {
  PutBig64(out, doc_id);
  out->append(node_id.data(), node_id.size());
}

Status DecodeNodeIdKey(Slice key, uint64_t* doc_id, Slice* node_id) {
  if (key.size() < 8) return Status::Corruption("short node id key");
  *doc_id = DecodeBig64(key.data());
  *node_id = Slice(key.data() + 8, key.size() - 8);
  return Status::OK();
}

}  // namespace xdb
