#include "index/value_index.h"

namespace xdb {

Status ValueIndex::Add(Slice value, uint64_t doc_id, Slice node_id, Rid rid) {
  std::string key;
  Status st = EncodeTypedKey(def_.type, value, def_.max_string_len, &key);
  if (!st.ok()) {
    // Uncastable value: no entry ("zero ... index entries per record").
    if (st.code() == Status::Code::kInvalidArgument) return Status::OK();
    return st;
  }
  std::string posting;
  EncodePosting(doc_id, node_id, rid.Pack(), &posting);
  XDB_RETURN_NOT_OK(tree_->Insert(key, posting));
  if (stats_ != nullptr) stats_->OnEntryAdded(key);
  return Status::OK();
}

Status ValueIndex::Remove(Slice value, uint64_t doc_id, Slice node_id,
                          Rid rid) {
  std::string key;
  Status st = EncodeTypedKey(def_.type, value, def_.max_string_len, &key);
  if (!st.ok()) {
    if (st.code() == Status::Code::kInvalidArgument) return Status::OK();
    return st;
  }
  std::string posting;
  EncodePosting(doc_id, node_id, rid.Pack(), &posting);
  XDB_RETURN_NOT_OK(tree_->Delete(key, posting));
  if (stats_ != nullptr) stats_->OnEntryRemoved(key);
  return Status::OK();
}

Status ValueIndex::Scan(const std::optional<KeyBound>& lo,
                        const std::optional<KeyBound>& hi,
                        std::vector<Posting>* out) {
  BTree::Iterator it;
  if (lo.has_value()) {
    XDB_ASSIGN_OR_RETURN(it, tree_->Seek(lo->key));
    // Exclusive lower bound: skip equal keys.
    if (!lo->inclusive) {
      while (it.Valid() && it.key() == Slice(lo->key)) {
        XDB_RETURN_NOT_OK(it.Next());
      }
    }
  } else {
    XDB_ASSIGN_OR_RETURN(it, tree_->SeekToFirst());
  }
  while (it.Valid()) {
    if (hi.has_value()) {
      int c = it.key().Compare(Slice(hi->key));
      if (c > 0 || (c == 0 && !hi->inclusive)) break;
    }
    Posting p;
    Slice node_id;
    uint64_t rid_packed;
    XDB_RETURN_NOT_OK(
        DecodePosting(it.value(), &p.doc_id, &node_id, &rid_packed));
    p.node_id = node_id.ToString();
    p.rid = Rid::Unpack(rid_packed);
    out->push_back(std::move(p));
    XDB_RETURN_NOT_OK(it.Next());
  }
  return Status::OK();
}

Status ValueIndex::ScanEqual(Slice value, std::vector<Posting>* out) {
  std::string key;
  Status st = EncodeTypedKey(def_.type, value, def_.max_string_len, &key);
  if (!st.ok()) {
    if (st.code() == Status::Code::kInvalidArgument) return Status::OK();
    return st;
  }
  KeyBound b{key, true};
  return Scan(b, b, out);
}

}  // namespace xdb
