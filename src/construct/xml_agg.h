// XMLAGG with ORDER BY (Section 4.1).
//
// "For XMLAGG ORDER BY evaluation, typical external SORT will need to sort
// each group of rows, suffering from significant overhead. We apply
// in-memory quicksort to the linked list representation of rows in each
// group of XMLAGG, achieving high performance."
//
// XmlAgg keeps each group's rows as a linked list of {sort key, argument
// record} nodes, quicksorts the list in place at finalization, and
// serializes every row through one shared tagging template. The external-
// sort baseline (run generation + k-way merge with materialized runs) is
// provided for experiment E8.
#ifndef XDB_CONSTRUCT_XML_AGG_H_
#define XDB_CONSTRUCT_XML_AGG_H_

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "construct/constructor.h"

namespace xdb {
namespace construct {

class XmlAgg {
 public:
  explicit XmlAgg(const CompiledConstructor* tmpl) : tmpl_(tmpl) {}
  ~XmlAgg();
  XmlAgg(const XmlAgg&) = delete;
  XmlAgg& operator=(const XmlAgg&) = delete;

  /// Adds one row: its ORDER BY key and its packed argument record.
  void Add(Slice sort_key, std::string arg_record);

  size_t row_count() const { return count_; }

  /// Sorts the linked list in place (quicksort) and serializes all rows in
  /// key order through the shared template.
  Status Finish(std::string* out);

 private:
  struct Node {
    std::string key;
    std::string args;
    Node* next = nullptr;
  };

  static Node* QuickSort(Node* head);

  const CompiledConstructor* tmpl_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  size_t count_ = 0;
};

/// Baseline: external-sort-style aggregation. Rows are spilled into sorted
/// runs of at most `run_limit` rows (each run materialized, as a work file
/// would be), then merged; every row's XML is fully materialized per pass.
class ExternalSortAgg {
 public:
  ExternalSortAgg(const CompiledConstructor* tmpl, size_t run_limit)
      : tmpl_(tmpl), run_limit_(run_limit) {}

  void Add(Slice sort_key, std::string arg_record);
  Status Finish(std::string* out);

 private:
  struct Row {
    std::string key;
    std::string args;
  };

  void SpillRun();

  const CompiledConstructor* tmpl_;
  size_t run_limit_;
  std::vector<Row> current_;
  std::vector<std::vector<Row>> runs_;
};

}  // namespace construct
}  // namespace xdb

#endif  // XDB_CONSTRUCT_XML_AGG_H_
