#include "construct/xml_agg.h"

#include <algorithm>

namespace xdb {
namespace construct {

XmlAgg::~XmlAgg() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

void XmlAgg::Add(Slice sort_key, std::string arg_record) {
  Node* n = new Node;
  n->key = sort_key.ToString();
  n->args = std::move(arg_record);
  if (tail_ == nullptr) {
    head_ = tail_ = n;
  } else {
    tail_->next = n;
    tail_ = n;
  }
  count_++;
}

XmlAgg::Node* XmlAgg::QuickSort(Node* head) {
  if (head == nullptr || head->next == nullptr) return head;
  // Pivot on the middle node (slow/fast walk) so pre-sorted ORDER BY keys —
  // common in practice — do not degenerate the recursion. The middle's
  // payload is swapped into the head; links are untouched.
  Node* slow = head;
  Node* fast = head;
  while (fast->next != nullptr && fast->next->next != nullptr) {
    slow = slow->next;
    fast = fast->next->next;
  }
  std::swap(head->key, slow->key);
  std::swap(head->args, slow->args);
  // Partition around the head as pivot into <, ==, > lists.
  Node* pivot = head;
  Node* less = nullptr;
  Node* equal = pivot;
  Node* equal_tail = pivot;
  Node* greater = nullptr;
  Node* cur = head->next;
  pivot->next = nullptr;
  while (cur != nullptr) {
    Node* next = cur->next;
    int c = Slice(cur->key).Compare(Slice(pivot->key));
    if (c < 0) {
      cur->next = less;
      less = cur;
    } else if (c == 0) {
      equal_tail->next = cur;
      cur->next = nullptr;
      equal_tail = cur;
    } else {
      cur->next = greater;
      greater = cur;
    }
    cur = next;
  }
  less = QuickSort(less);
  greater = QuickSort(greater);
  equal_tail->next = greater;
  if (less == nullptr) return equal;
  Node* t = less;
  while (t->next != nullptr) t = t->next;
  t->next = equal;
  return less;
}

Status XmlAgg::Finish(std::string* out) {
  head_ = QuickSort(head_);
  tail_ = nullptr;
  for (Node* n = head_; n != nullptr; n = n->next) {
    XDB_RETURN_NOT_OK(tmpl_->SerializeRecord(n->args, out));
  }
  return Status::OK();
}

void ExternalSortAgg::Add(Slice sort_key, std::string arg_record) {
  current_.push_back(Row{sort_key.ToString(), std::move(arg_record)});
  if (current_.size() >= run_limit_) SpillRun();
}

void ExternalSortAgg::SpillRun() {
  if (current_.empty()) return;
  std::stable_sort(current_.begin(), current_.end(),
                   [](const Row& a, const Row& b) {
                     return Slice(a.key).Compare(Slice(b.key)) < 0;
                   });
  // "Write" the run: a work file would copy the rows out; model that cost
  // with a fresh materialized copy.
  std::vector<Row> run;
  run.reserve(current_.size());
  for (Row& r : current_) run.push_back(Row{r.key, r.args});
  runs_.push_back(std::move(run));
  current_.clear();
}

Status ExternalSortAgg::Finish(std::string* out) {
  SpillRun();
  // K-way merge over the runs.
  std::vector<size_t> pos(runs_.size(), 0);
  for (;;) {
    int best = -1;
    for (size_t r = 0; r < runs_.size(); r++) {
      if (pos[r] >= runs_[r].size()) continue;
      if (best < 0 ||
          Slice(runs_[r][pos[r]].key)
                  .Compare(Slice(runs_[best][pos[best]].key)) < 0) {
        best = static_cast<int>(r);
      }
    }
    if (best < 0) break;
    XDB_RETURN_NOT_OK(tmpl_->SerializeRecord(runs_[best][pos[best]].args, out));
    pos[best]++;
  }
  return Status::OK();
}

}  // namespace construct
}  // namespace xdb
