#include "construct/constructor.h"

#include "common/coding.h"
#include "xml/serializer.h"

namespace xdb {
namespace construct {

CtorExpr XmlElement(std::string name, std::vector<CtorExpr> children) {
  CtorExpr e;
  e.kind = CtorExpr::Kind::kElement;
  e.name = std::move(name);
  e.children = std::move(children);
  return e;
}

CtorExpr XmlAttribute(std::string name, int arg_index) {
  CtorExpr e;
  e.kind = CtorExpr::Kind::kAttribute;
  e.name = std::move(name);
  e.arg_index = arg_index;
  return e;
}

CtorExpr XmlForestItem(std::string name, int arg_index) {
  CtorExpr e;
  e.kind = CtorExpr::Kind::kElement;
  e.name = std::move(name);
  CtorExpr arg;
  arg.kind = CtorExpr::Kind::kArg;
  arg.arg_index = arg_index;
  e.children.push_back(std::move(arg));
  return e;
}

CtorExpr XmlConcat(std::vector<CtorExpr> children) {
  CtorExpr e;
  e.kind = CtorExpr::Kind::kConcat;
  e.children = std::move(children);
  return e;
}

CtorExpr Arg(int arg_index) {
  CtorExpr e;
  e.kind = CtorExpr::Kind::kArg;
  e.arg_index = arg_index;
  return e;
}

CtorExpr ConstText(std::string text) {
  CtorExpr e;
  e.kind = CtorExpr::Kind::kConstText;
  e.text = std::move(text);
  return e;
}

std::string MakeArgRecord(const std::vector<Slice>& args) {
  std::string record;
  PutVarint64(&record, args.size());
  for (const Slice& a : args) PutLengthPrefixed(&record, a);
  return record;
}

Status SplitArgRecord(Slice record, std::vector<Slice>* out) {
  out->clear();
  uint64_t count;
  size_t n =
      GetVarint64(record.data(), record.data() + record.size(), &count);
  if (n == 0) return Status::Corruption("bad argument record");
  record.RemovePrefix(n);
  for (uint64_t i = 0; i < count; i++) {
    Slice v;
    if (!GetLengthPrefixed(&record, &v))
      return Status::Corruption("truncated argument record");
    out->push_back(v);
  }
  return Status::OK();
}

Status CompiledConstructor::Flatten(const CtorExpr& expr,
                                    bool inside_element) {
  switch (expr.kind) {
    case CtorExpr::Kind::kElement: {
      ops_.push_back(Op{OpKind::kOpenStart, expr.name, -1, ""});
      // Attributes first, then the open tag is closed.
      for (const CtorExpr& c : expr.children) {
        if (c.kind != CtorExpr::Kind::kAttribute) continue;
        if (c.arg_index < 0)
          return Status::InvalidArgument("attribute without an argument");
        arg_count_ = std::max(arg_count_, c.arg_index + 1);
        ops_.push_back(Op{OpKind::kAttr, c.name, c.arg_index, ""});
      }
      ops_.push_back(Op{OpKind::kOpenEnd, "", -1, ""});
      for (const CtorExpr& c : expr.children) {
        if (c.kind == CtorExpr::Kind::kAttribute) continue;
        XDB_RETURN_NOT_OK(Flatten(c, /*inside_element=*/true));
      }
      ops_.push_back(Op{OpKind::kClose, expr.name, -1, ""});
      return Status::OK();
    }
    case CtorExpr::Kind::kAttribute:
      return Status::InvalidArgument(
          "XMLATTRIBUTES is only valid directly inside XMLELEMENT");
    case CtorExpr::Kind::kForest:
    case CtorExpr::Kind::kConcat:
      for (const CtorExpr& c : expr.children)
        XDB_RETURN_NOT_OK(Flatten(c, inside_element));
      return Status::OK();
    case CtorExpr::Kind::kArg:
      if (expr.arg_index < 0)
        return Status::InvalidArgument("argument slot without an index");
      arg_count_ = std::max(arg_count_, expr.arg_index + 1);
      ops_.push_back(Op{OpKind::kArgText, "", expr.arg_index, ""});
      return Status::OK();
    case CtorExpr::Kind::kConstText:
      ops_.push_back(Op{OpKind::kConstText, "", -1, expr.text});
      return Status::OK();
  }
  return Status::InvalidArgument("unknown constructor kind");
}

Result<CompiledConstructor> CompiledConstructor::Compile(
    const CtorExpr& expr) {
  CompiledConstructor cc;
  XDB_RETURN_NOT_OK(cc.Flatten(expr, false));
  return cc;
}

Status CompiledConstructor::SerializeRow(const std::vector<Slice>& args,
                                         std::string* out) const {
  if (static_cast<int>(args.size()) < arg_count_)
    return Status::InvalidArgument("too few constructor arguments");
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kOpenStart:
        out->push_back('<');
        out->append(op.name);
        break;
      case OpKind::kOpenEnd:
        out->push_back('>');
        break;
      case OpKind::kClose:
        out->append("</");
        out->append(op.name);
        out->push_back('>');
        break;
      case OpKind::kAttr:
        out->push_back(' ');
        out->append(op.name);
        out->append("=\"");
        EscapeAttribute(args[op.arg], out);
        out->push_back('"');
        break;
      case OpKind::kArgText:
        EscapeText(args[op.arg], out);
        break;
      case OpKind::kConstText:
        EscapeText(op.text, out);
        break;
    }
  }
  return Status::OK();
}

Status CompiledConstructor::SerializeRecord(Slice arg_record,
                                            std::string* out) const {
  std::vector<Slice> args;
  XDB_RETURN_NOT_OK(SplitArgRecord(arg_record, &args));
  return SerializeRow(args, out);
}

Status CompiledConstructor::EmitTokens(const std::vector<Slice>& args,
                                       NameDictionary* dict,
                                       TokenWriter* out) const {
  if (static_cast<int>(args.size()) < arg_count_)
    return Status::InvalidArgument("too few constructor arguments");
  for (const Op& op : ops_) {
    switch (op.kind) {
      case OpKind::kOpenStart:
        out->StartElement(dict->Intern(op.name));
        break;
      case OpKind::kOpenEnd:
        break;
      case OpKind::kClose:
        out->EndElement();
        break;
      case OpKind::kAttr:
        out->Attribute(dict->Intern(op.name), args[op.arg]);
        break;
      case OpKind::kArgText:
        out->Text(args[op.arg]);
        break;
      case OpKind::kConstText:
        out->Text(op.text);
        break;
    }
  }
  return Status::OK();
}

Status NaiveEvaluate(const CtorExpr& expr, const std::vector<Slice>& args,
                     std::string* out) {
  // "The standard function evaluation process is to evaluate the arguments
  // first, then evaluate the function" — each level materializes its own
  // string, which the parent then copies.
  switch (expr.kind) {
    case CtorExpr::Kind::kElement: {
      std::string attrs, content;
      for (const CtorExpr& c : expr.children) {
        if (c.kind == CtorExpr::Kind::kAttribute) {
          if (c.arg_index < 0 ||
              c.arg_index >= static_cast<int>(args.size()))
            return Status::InvalidArgument("bad attribute argument");
          std::string value;
          EscapeAttribute(args[c.arg_index], &value);
          attrs += " " + c.name + "=\"" + value + "\"";
        } else {
          std::string child;
          XDB_RETURN_NOT_OK(NaiveEvaluate(c, args, &child));
          content += child;  // the per-level copy
        }
      }
      *out += "<" + expr.name + attrs + ">" + content + "</" + expr.name + ">";
      return Status::OK();
    }
    case CtorExpr::Kind::kAttribute:
      return Status::InvalidArgument(
          "XMLATTRIBUTES is only valid directly inside XMLELEMENT");
    case CtorExpr::Kind::kForest:
    case CtorExpr::Kind::kConcat: {
      for (const CtorExpr& c : expr.children) {
        std::string child;
        XDB_RETURN_NOT_OK(NaiveEvaluate(c, args, &child));
        *out += child;
      }
      return Status::OK();
    }
    case CtorExpr::Kind::kArg: {
      if (expr.arg_index < 0 || expr.arg_index >= static_cast<int>(args.size()))
        return Status::InvalidArgument("bad argument index");
      std::string value;
      EscapeText(args[expr.arg_index], &value);
      *out += value;
      return Status::OK();
    }
    case CtorExpr::Kind::kConstText: {
      std::string value;
      EscapeText(expr.text, &value);
      *out += value;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown constructor kind");
}

}  // namespace construct
}  // namespace xdb
