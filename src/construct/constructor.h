// SQL/XML constructor functions with tagging-template optimization
// (Section 4.1, Figure 5).
//
// Nested constructor calls (XMLELEMENT / XMLATTRIBUTES / XMLFOREST /
// XMLCONCAT) are flattened at compile time into one *tagging template*: a
// program of static tag fragments and argument slots. Evaluating a row then
// produces an intermediate result that is just {template pointer, argument
// record} — "no repetition of the tagging template occurs, which is very
// effective for generating XML for large numbers of repeated rows or the
// aggregate function XMLAGG."
//
// The naive baseline (standard bottom-up function evaluation, materializing
// the XML string of every nested call) is provided for experiment E8.
#ifndef XDB_CONSTRUCT_CONSTRUCTOR_H_
#define XDB_CONSTRUCT_CONSTRUCTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "xml/token_stream.h"

namespace xdb {
namespace construct {

/// Constructor expression tree — the AST of nested constructor calls.
struct CtorExpr {
  enum class Kind : uint8_t {
    kElement,     // XMLELEMENT(NAME n, children...)
    kAttribute,   // one attribute (from XMLATTRIBUTES)
    kForest,      // XMLFOREST(arg AS name, ...) — children are kElements
    kConcat,      // XMLCONCAT(children...)
    kArg,         // an argument slot (column reference / expression result)
    kConstText,   // constant text
  };

  Kind kind = Kind::kConstText;
  std::string name;  // element/attribute name
  int arg_index = -1;
  std::string text;
  std::vector<CtorExpr> children;
};

// Fluent builders mirroring the SQL/XML functions.
CtorExpr XmlElement(std::string name, std::vector<CtorExpr> children);
CtorExpr XmlAttribute(std::string name, int arg_index);
CtorExpr XmlForestItem(std::string name, int arg_index);
CtorExpr XmlConcat(std::vector<CtorExpr> children);
CtorExpr Arg(int arg_index);
CtorExpr ConstText(std::string text);

/// Argument record: the per-row data part of an intermediate result
/// (Figure 5 bottom). Values are length-prefixed in slot order.
std::string MakeArgRecord(const std::vector<Slice>& args);
Status SplitArgRecord(Slice record, std::vector<Slice>* out);

/// The compiled tagging template.
class CompiledConstructor {
 public:
  /// Flattens the nested expression into one template program.
  static Result<CompiledConstructor> Compile(const CtorExpr& expr);

  int arg_count() const { return arg_count_; }

  /// Serializes one row directly to XML text (escaping applied), reading
  /// argument values from `args`. The template is never copied.
  Status SerializeRow(const std::vector<Slice>& args, std::string* out) const;

  /// Serializes from a packed argument record (the XMLAGG path).
  Status SerializeRecord(Slice arg_record, std::string* out) const;

  /// Emits one row as tokens (for insertion into XML columns: construction
  /// and tree packing pipeline without an XML-text round trip).
  Status EmitTokens(const std::vector<Slice>& args, NameDictionary* dict,
                    TokenWriter* out) const;

  size_t op_count() const { return ops_.size(); }

 private:
  enum class OpKind : uint8_t {
    kOpenStart,    // "<name"
    kOpenEnd,      // ">"
    kClose,        // "</name>"
    kAttr,         // ' name="' arg '"'
    kArgText,      // escaped argument text
    kConstText,    // escaped constant text
  };
  struct Op {
    OpKind kind;
    std::string name;
    int arg = -1;
    std::string text;
  };

  Status Flatten(const CtorExpr& expr, bool inside_element);

  std::vector<Op> ops_;
  int arg_count_ = 0;
};

/// The standard evaluation process the paper optimizes away: every nested
/// call materializes its full XML string, which parents copy.
Status NaiveEvaluate(const CtorExpr& expr, const std::vector<Slice>& args,
                     std::string* out);

}  // namespace construct
}  // namespace xdb

#endif  // XDB_CONSTRUCT_CONSTRUCTOR_H_
