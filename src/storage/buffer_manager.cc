#include "storage/buffer_manager.h"

#include <cassert>
#include <cstring>

#include "testing/fault_injector.h"

namespace xdb {

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    bm_ = o.bm_;
    frame_ = o.frame_;
    page_id_ = o.page_id_;
    offset_ = o.offset_;
    o.bm_ = nullptr;
    o.frame_ = nullptr;
    o.page_id_ = kInvalidPageId;
    o.offset_ = 0;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

char* PageHandle::MutableData() {
  frame_->dirty = true;
  return frame_->data.get() + offset_;
}

void PageHandle::Release() {
  if (frame_ != nullptr) {
    bm_->Unpin(frame_);
    frame_ = nullptr;
    bm_ = nullptr;
  }
}

namespace {
size_t FloorPow2(size_t n) {
  size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}
}  // namespace

size_t BufferManager::DefaultShardCount(size_t capacity) {
  size_t want = std::min<size_t>(8, capacity / 64);
  return want < 1 ? 1 : FloorPow2(want);
}

BufferManager::BufferManager(TableSpace* space, size_t capacity, size_t shards)
    : space_(space),
      capacity_(capacity == 0 ? 1 : capacity),
      data_offset_(space->data_offset()),
      checksums_(space->format_version() >= kTableSpaceFormatV2) {
  if (shards == 0) shards = DefaultShardCount(capacity_);
  shards = FloorPow2(std::min(shards, capacity_));
  shard_mask_ = shards - 1;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; s++) shards_.push_back(std::make_unique<Shard>());
  frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; i++) {
    auto f = std::make_unique<internal::Frame>();
    f->data = std::make_unique<char[]>(space_->page_size());
    // Deal frames round-robin so every shard gets capacity/shards (±1).
    f->shard = static_cast<uint32_t>(i % shards);
    Shard& shard = *shards_[f->shard];
    MutexLock lock(shard.mu);
    shard.free_frames.push_back(f.get());
    frames_.push_back(std::move(f));
  }
}

// Destructor flush is best-effort: failures surface on the next fetch
// (checksum verify) or via explicit FlushAll calls that do check.
BufferManager::~BufferManager() { (void)FlushAll(); }

Status BufferManager::WriteBack(Shard& shard, internal::Frame* frame) {
  if (!frame->dirty) return Status::OK();
  if (auto* fi = testing::FaultInjector::active())
    XDB_RETURN_NOT_OK(fi->OnOp(testing::FaultPoint::kBufferWriteback));
  if (checksums_) {
    uint64_t lsn = 0;
    {
      MutexLock lock(lsn_mu_);
      if (lsn_source_) lsn = lsn_source_();
    }
    StampPageHeader(frame->data.get(), space_->page_size(), lsn, 0);
  }
  XDB_RETURN_NOT_OK(space_->WritePage(frame->page_id, frame->data.get()));
  frame->dirty = false;
  shard.stats.writebacks++;
  return Status::OK();
}

Result<internal::Frame*> BufferManager::GetFreeFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    internal::Frame* f = shard.free_frames.back();
    shard.free_frames.pop_back();
    return f;
  }
  if (shard.lru.empty())
    return Status::Busy("all buffer frames of the shard are pinned");
  internal::Frame* victim = shard.lru.front();
  shard.lru.pop_front();
  victim->in_lru = false;
  XDB_RETURN_NOT_OK(WriteBack(shard, victim));
  shard.table.erase(victim->page_id);
  shard.stats.evictions++;
  return victim;
}

Result<internal::Frame*> BufferManager::BorrowFrame(size_t dst) {
  for (size_t k = 1; k < shards_.size(); k++) {
    Shard& donor = *shards_[(dst + k) % shards_.size()];
    MutexLock lock(donor.mu);
    auto r = GetFreeFrame(donor);
    if (r.status().IsBusy()) continue;  // this donor is fully pinned too
    XDB_RETURN_NOT_OK(r.status());      // eviction writeback failed
    internal::Frame* f = r.value();
    f->page_id = kInvalidPageId;
    f->shard = static_cast<uint32_t>(dst);
    return f;
  }
  return Status::Busy("all buffer frames are pinned");
}

Result<PageHandle> BufferManager::FixPage(PageId id) {
  const size_t shard_idx = ShardIndex(id);
  Shard& shard = *shards_[shard_idx];
  bool counted_miss = false;
  for (;;) {
    {
      MutexLock lock(shard.mu);
      if (shard.quarantined.count(id) != 0)
        return Status::Corruption("page " + std::to_string(id) +
                                  " is quarantined");
      auto it = shard.table.find(id);
      if (it != shard.table.end()) {
        internal::Frame* f = it->second;
        if (f->in_lru) {
          shard.lru.erase(f->lru_pos);
          f->in_lru = false;
        }
        f->pin_count++;
        shard.stats.hits++;
        return PageHandle(this, f, id, data_offset_);
      }
      if (!counted_miss) {
        shard.stats.misses++;
        counted_miss = true;
      }
      auto free = GetFreeFrame(shard);
      if (free.ok()) {
        internal::Frame* f = free.value();
        // The miss-path read is the pool's dominant wait; attribute it as
        // kBufferIo (the hit path above never starts a span).
        obs::WaitSpan io_span(wait_sink_, obs::WaitState::kBufferIo);
        Status read = space_->ReadPage(id, f->data.get());
        if (read.ok() && checksums_)
          read = VerifyPageChecksum(f->data.get(), space_->page_size(), id);
        io_span.Finish();
        if (!read.ok()) {
          // The frame was never published in the table; hand it back so a
          // failed read doesn't shrink the pool.
          shard.free_frames.push_back(f);
          if (read.IsCorruption()) {
            shard.quarantined.insert(id);
            shard.stats.checksum_failures++;
            if (events_ != nullptr)
              events_->Emit(obs::EventKind::kPageQuarantined, id, 0,
                            "page checksum failed on fetch");
          }
          return read;
        }
        f->page_id = id;
        f->pin_count = 1;
        f->dirty = false;
        shard.table[id] = f;
        return PageHandle(this, f, id, data_offset_);
      }
      if (!free.status().IsBusy()) return free.status();
    }
    // Every frame of this shard is pinned: borrow one from another shard
    // (with no shard lock held), donate it to this shard's free list, and
    // retry — the retry re-checks the table because a concurrent caller may
    // have fixed the page, or consumed the donated frame, in the meantime.
    XDB_ASSIGN_OR_RETURN(internal::Frame* borrowed, BorrowFrame(shard_idx));
    MutexLock lock(shard.mu);
    shard.free_frames.push_back(borrowed);
  }
}

Result<PageHandle> BufferManager::NewPage() {
  XDB_ASSIGN_OR_RETURN(PageId id, space_->AllocatePage());
  const size_t shard_idx = ShardIndex(id);
  Shard& shard = *shards_[shard_idx];
  for (;;) {
    {
      MutexLock lock(shard.mu);
      shard.quarantined.erase(id);  // a recycled page starts a new, clean life
      auto free = GetFreeFrame(shard);
      if (free.ok()) {
        internal::Frame* f = free.value();
        std::memset(f->data.get(), 0, space_->page_size());
        f->page_id = id;
        f->pin_count = 1;
        f->dirty = true;
        shard.table[id] = f;
        return PageHandle(this, f, id, data_offset_);
      }
      if (!free.status().IsBusy()) return free.status();
    }
    XDB_ASSIGN_OR_RETURN(internal::Frame* borrowed, BorrowFrame(shard_idx));
    MutexLock lock(shard.mu);
    shard.free_frames.push_back(borrowed);
  }
}

Status BufferManager::FreePage(PageId id) {
  {
    Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    auto it = shard.table.find(id);
    if (it != shard.table.end()) {
      internal::Frame* f = it->second;
      if (f->pin_count > 0)
        return Status::Busy("freeing a pinned page");
      if (f->in_lru) {
        shard.lru.erase(f->lru_pos);
        f->in_lru = false;
      }
      f->dirty = false;
      shard.table.erase(it);
      shard.free_frames.push_back(f);
    }
  }
  return space_->FreePage(id);
}

void BufferManager::Unpin(internal::Frame* frame) {
  Shard& shard = *shards_[frame->shard];
  MutexLock lock(shard.mu);
  assert(frame->pin_count > 0);
  frame->pin_count--;
  if (frame->pin_count == 0) {
    shard.lru.push_back(frame);
    frame->lru_pos = std::prev(shard.lru.end());
    frame->in_lru = true;
  }
}

Status BufferManager::FlushAll() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (auto& [id, f] : shard->table) {
      (void)id;
      XDB_RETURN_NOT_OK(WriteBack(*shard, f));
    }
  }
  return Status::OK();
}

std::vector<PageId> BufferManager::quarantined_pages() const {
  std::vector<PageId> out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    out.insert(out.end(), shard->quarantined.begin(),
               shard->quarantined.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

BufferManagerStats BufferManager::shard_stats(size_t shard) const {
  MutexLock lock(shards_[shard]->mu);
  return shards_[shard]->stats;
}

BufferManagerStats BufferManager::stats() const {
  BufferManagerStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.writebacks += shard->stats.writebacks;
    total.checksum_failures += shard->stats.checksum_failures;
  }
  return total;
}

size_t BufferManager::resident_frames() const {
  size_t resident = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    resident += shard->table.size();
  }
  return resident;
}

void BufferManager::ResetStats() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->stats = BufferManagerStats{};
  }
}

}  // namespace xdb
