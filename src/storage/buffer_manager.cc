#include "storage/buffer_manager.h"

#include <cassert>
#include <cstring>

#include "testing/fault_injector.h"

namespace xdb {

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    bm_ = o.bm_;
    frame_ = o.frame_;
    page_id_ = o.page_id_;
    offset_ = o.offset_;
    o.bm_ = nullptr;
    o.frame_ = nullptr;
    o.page_id_ = kInvalidPageId;
    o.offset_ = 0;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

char* PageHandle::MutableData() {
  frame_->dirty = true;
  return frame_->data.get() + offset_;
}

void PageHandle::Release() {
  if (frame_ != nullptr) {
    bm_->Unpin(frame_);
    frame_ = nullptr;
    bm_ = nullptr;
  }
}

BufferManager::BufferManager(TableSpace* space, size_t capacity)
    : space_(space),
      capacity_(capacity == 0 ? 1 : capacity),
      data_offset_(space->data_offset()),
      checksums_(space->format_version() >= kTableSpaceFormatV2) {
  frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; i++) {
    auto f = std::make_unique<internal::Frame>();
    f->data = std::make_unique<char[]>(space_->page_size());
    free_frames_.push_back(f.get());
    frames_.push_back(std::move(f));
  }
}

// Destructor flush is best-effort: failures surface on the next fetch
// (checksum verify) or via explicit FlushAll calls that do check.
BufferManager::~BufferManager() { (void)FlushAll(); }

Status BufferManager::WriteBack(internal::Frame* frame) {
  if (!frame->dirty) return Status::OK();
  if (auto* fi = testing::FaultInjector::active())
    XDB_RETURN_NOT_OK(fi->OnOp(testing::FaultPoint::kBufferWriteback));
  if (checksums_) {
    uint64_t lsn = lsn_source_ ? lsn_source_() : 0;
    StampPageHeader(frame->data.get(), space_->page_size(), lsn, 0);
  }
  XDB_RETURN_NOT_OK(space_->WritePage(frame->page_id, frame->data.get()));
  frame->dirty = false;
  stats_.writebacks++;
  return Status::OK();
}

Result<internal::Frame*> BufferManager::GetFreeFrame() {
  if (!free_frames_.empty()) {
    internal::Frame* f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty())
    return Status::Busy("all buffer frames are pinned");
  internal::Frame* victim = lru_.front();
  lru_.pop_front();
  victim->in_lru = false;
  XDB_RETURN_NOT_OK(WriteBack(victim));
  table_.erase(victim->page_id);
  stats_.evictions++;
  return victim;
}

Result<PageHandle> BufferManager::FixPage(PageId id) {
  MutexLock lock(mu_);
  if (quarantined_.count(id) != 0)
    return Status::Corruption("page " + std::to_string(id) +
                              " is quarantined");
  auto it = table_.find(id);
  if (it != table_.end()) {
    internal::Frame* f = it->second;
    if (f->in_lru) {
      lru_.erase(f->lru_pos);
      f->in_lru = false;
    }
    f->pin_count++;
    stats_.hits++;
    return PageHandle(this, f, id, data_offset_);
  }
  stats_.misses++;
  XDB_ASSIGN_OR_RETURN(internal::Frame* f, GetFreeFrame());
  Status read = space_->ReadPage(id, f->data.get());
  if (read.ok() && checksums_)
    read = VerifyPageChecksum(f->data.get(), space_->page_size(), id);
  if (!read.ok()) {
    // The frame was never published in table_; hand it back so a failed read
    // doesn't shrink the pool.
    free_frames_.push_back(f);
    if (read.IsCorruption()) {
      quarantined_.insert(id);
      stats_.checksum_failures++;
      space_->mutable_io_stats()->checksum_failures.fetch_add(
          1, std::memory_order_relaxed);
    }
    return read;
  }
  f->page_id = id;
  f->pin_count = 1;
  f->dirty = false;
  table_[id] = f;
  return PageHandle(this, f, id, data_offset_);
}

Result<PageHandle> BufferManager::NewPage() {
  XDB_ASSIGN_OR_RETURN(PageId id, space_->AllocatePage());
  MutexLock lock(mu_);
  quarantined_.erase(id);  // a recycled page starts a new, clean life
  XDB_ASSIGN_OR_RETURN(internal::Frame* f, GetFreeFrame());
  std::memset(f->data.get(), 0, space_->page_size());
  f->page_id = id;
  f->pin_count = 1;
  f->dirty = true;
  table_[id] = f;
  return PageHandle(this, f, id, data_offset_);
}

Status BufferManager::FreePage(PageId id) {
  {
    MutexLock lock(mu_);
    auto it = table_.find(id);
    if (it != table_.end()) {
      internal::Frame* f = it->second;
      if (f->pin_count > 0)
        return Status::Busy("freeing a pinned page");
      if (f->in_lru) {
        lru_.erase(f->lru_pos);
        f->in_lru = false;
      }
      f->dirty = false;
      table_.erase(it);
      free_frames_.push_back(f);
    }
  }
  return space_->FreePage(id);
}

void BufferManager::Unpin(internal::Frame* frame) {
  MutexLock lock(mu_);
  assert(frame->pin_count > 0);
  frame->pin_count--;
  if (frame->pin_count == 0) {
    lru_.push_back(frame);
    frame->lru_pos = std::prev(lru_.end());
    frame->in_lru = true;
  }
}

Status BufferManager::FlushAll() {
  MutexLock lock(mu_);
  for (auto& [id, f] : table_) {
    (void)id;
    XDB_RETURN_NOT_OK(WriteBack(f));
  }
  return Status::OK();
}

std::vector<PageId> BufferManager::quarantined_pages() const {
  MutexLock lock(mu_);
  return std::vector<PageId>(quarantined_.begin(), quarantined_.end());
}

}  // namespace xdb
