#include "storage/tablespace.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "testing/fault_injector.h"

namespace xdb {

namespace {
constexpr uint32_t kMagic = 0x58444254;  // "XDBT"
}  // namespace

TableSpace::~TableSpace() {
  if (fd_ >= 0) {
    // Persist allocation state; errors on close are not recoverable here.
    WriteHeader();
    ::close(fd_);
  }
}

Result<std::unique_ptr<TableSpace>> TableSpace::Create(
    const std::string& path, const TableSpaceOptions& options) {
  auto ts = std::unique_ptr<TableSpace>(new TableSpace());
  ts->page_size_ = options.page_size;
  ts->in_memory_ = options.in_memory;
  ts->page_count_ = 1;  // header page
  if (options.in_memory) {
    ts->mem_pages_.push_back(std::make_unique<char[]>(options.page_size));
    return ts;
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  ts->fd_ = fd;
  XDB_RETURN_NOT_OK(ts->WriteHeader());
  return ts;
}

Result<std::unique_ptr<TableSpace>> TableSpace::Open(
    const std::string& path, const TableSpaceOptions& options) {
  if (options.in_memory)
    return Status::InvalidArgument("cannot reopen an in-memory table space");
  auto ts = std::unique_ptr<TableSpace>(new TableSpace());
  int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0)
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  ts->fd_ = fd;
  XDB_RETURN_NOT_OK(ts->ReadHeader());
  return ts;
}

Status TableSpace::ReadHeader() {
  char buf[64];
  ssize_t n = ::pread(fd_, buf, sizeof(buf), 0);
  if (n < static_cast<ssize_t>(sizeof(buf)))
    return Status::Corruption("table space header too short");
  if (DecodeFixed32(buf) != kMagic)
    return Status::Corruption("bad table space magic");
  page_size_ = DecodeFixed32(buf + 4);
  page_count_ = DecodeFixed32(buf + 8);
  free_list_head_ = DecodeFixed32(buf + 12);
  if (page_size_ < 512 || page_size_ > 1 << 20 || page_count_ == 0)
    return Status::Corruption("implausible table space header");
  return Status::OK();
}

Status TableSpace::WriteHeader() {
  std::string buf(page_size_, '\0');
  EncodeFixed32(buf.data(), kMagic);
  EncodeFixed32(buf.data() + 4, page_size_);
  EncodeFixed32(buf.data() + 8, page_count_);
  EncodeFixed32(buf.data() + 12, free_list_head_);
  ssize_t n = ::pwrite(fd_, buf.data(), page_size_, 0);
  if (n != static_cast<ssize_t>(page_size_))
    return Status::IOError("write header failed");
  return Status::OK();
}

Result<PageId> TableSpace::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_list_head_ != kInvalidPageId) {
    PageId id = free_list_head_;
    // Next free page id is stored in the first 4 bytes of a freed page.
    char buf[4];
    if (in_memory_) {
      std::memcpy(buf, mem_pages_[id].get(), 4);
    } else {
      ssize_t n = ::pread(fd_, buf, 4, static_cast<off_t>(id) * page_size_);
      if (n != 4) return Status::IOError("read free page link");
    }
    free_list_head_ = DecodeFixed32(buf);
    // Zero the recycled page so callers see a clean slate.
    std::string zeros(page_size_, '\0');
    if (in_memory_) {
      std::memset(mem_pages_[id].get(), 0, page_size_);
    } else {
      ssize_t n = ::pwrite(fd_, zeros.data(), page_size_,
                           static_cast<off_t>(id) * page_size_);
      if (n != static_cast<ssize_t>(page_size_))
        return Status::IOError("zero recycled page");
    }
    return id;
  }
  PageId id = page_count_++;
  if (in_memory_) {
    mem_pages_.push_back(std::make_unique<char[]>(page_size_));
  } else {
    std::string zeros(page_size_, '\0');
    ssize_t n = ::pwrite(fd_, zeros.data(), page_size_,
                         static_cast<off_t>(id) * page_size_);
    if (n != static_cast<ssize_t>(page_size_))
      return Status::IOError("extend table space");
  }
  return id;
}

Status TableSpace::FreePage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id >= page_count_)
    return Status::InvalidArgument("bad page id to free");
  char buf[4];
  EncodeFixed32(buf, free_list_head_);
  if (in_memory_) {
    std::memcpy(mem_pages_[id].get(), buf, 4);
  } else {
    ssize_t n = ::pwrite(fd_, buf, 4, static_cast<off_t>(id) * page_size_);
    if (n != 4) return Status::IOError("write free page link");
  }
  free_list_head_ = id;
  return Status::OK();
}

Status TableSpace::ReadPage(PageId id, char* buf) {
  if (id >= page_count_) return Status::InvalidArgument("page out of range");
  if (in_memory_) {
    std::lock_guard<std::mutex> lock(mu_);
    std::memcpy(buf, mem_pages_[id].get(), page_size_);
    if (auto* fi = testing::FaultInjector::active())
      return fi->OnRead(testing::FaultPoint::kTableSpaceRead, buf, page_size_);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, buf, page_size_, static_cast<off_t>(id) * page_size_);
  if (n != static_cast<ssize_t>(page_size_))
    return Status::IOError("short page read");
  if (auto* fi = testing::FaultInjector::active())
    return fi->OnRead(testing::FaultPoint::kTableSpaceRead, buf, page_size_);
  return Status::OK();
}

Status TableSpace::WritePage(PageId id, const char* buf) {
  if (id >= page_count_) return Status::InvalidArgument("page out of range");
  if (in_memory_) {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto* fi = testing::FaultInjector::active()) {
      testing::FaultInjector::WriteSink sink;
      sink.mem = mem_pages_[id].get();
      bool handled = false;
      Status s = fi->OnWrite(testing::FaultPoint::kTableSpaceWrite, buf,
                             page_size_, sink, &handled);
      if (handled) return s;
    }
    std::memcpy(mem_pages_[id].get(), buf, page_size_);
    return Status::OK();
  }
  if (auto* fi = testing::FaultInjector::active()) {
    testing::FaultInjector::WriteSink sink;
    sink.fd = fd_;
    sink.offset = static_cast<uint64_t>(id) * page_size_;
    bool handled = false;
    Status s = fi->OnWrite(testing::FaultPoint::kTableSpaceWrite, buf,
                           page_size_, sink, &handled);
    if (handled) return s;
  }
  ssize_t n =
      ::pwrite(fd_, buf, page_size_, static_cast<off_t>(id) * page_size_);
  if (n != static_cast<ssize_t>(page_size_))
    return Status::IOError("short page write");
  return Status::OK();
}

Status TableSpace::Sync() {
  if (in_memory_) return Status::OK();
  if (auto* fi = testing::FaultInjector::active())
    XDB_RETURN_NOT_OK(fi->OnOp(testing::FaultPoint::kTableSpaceSync));
  XDB_RETURN_NOT_OK(WriteHeader());
  if (::fsync(fd_) != 0) return Status::IOError("fsync failed");
  return Status::OK();
}

}  // namespace xdb
