#include "storage/tablespace.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "testing/fault_injector.h"

namespace xdb {

namespace {
constexpr uint32_t kMagic = 0x58444254;  // "XDBT"
// Space header layout (page 0): [0] magic, [4] page_size, [8] page_count,
// [12] free_list_head, [16] format_version, [20] header crc over [0, 20).
// v1 files have zeros at [16]; the version field doubles as the format probe.

// Offset of the next-free-page link inside a freed page. v2 keeps the link
// out of both the page header and the payload's type byte, so a freed page
// scans as kFreePage instead of masquerading as whatever page type its link
// bytes happen to spell.
uint32_t FreeLinkOffset(uint32_t format_version) {
  return format_version >= kTableSpaceFormatV2 ? kPageHeaderSize + 4 : 0;
}

bool TransientErrno(int err) { return err == EINTR || err == EAGAIN; }
}  // namespace

TableSpace::~TableSpace() {
  if (fd_ >= 0) {
    // Persist allocation state; errors on close are not recoverable here.
    {
      MutexLock lock(mu_);
      (void)WriteHeader();
    }
    ::close(fd_);
  }
}

Result<std::unique_ptr<TableSpace>> TableSpace::Create(
    const std::string& path, const TableSpaceOptions& options) {
  auto ts = std::unique_ptr<TableSpace>(new TableSpace());
  ts->page_size_ = options.page_size;
  ts->in_memory_ = options.in_memory;
  ts->format_version_ =
      options.page_checksums ? kTableSpaceFormatV2 : kTableSpaceFormatV1;
  ts->page_count_.store(1, std::memory_order_release);  // header page
  MutexLock lock(ts->mu_);
  if (options.in_memory) {
    ts->mem_pages_.push_back(std::make_unique<char[]>(options.page_size));
    return ts;
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  ts->fd_ = fd;
  XDB_RETURN_NOT_OK(ts->WriteHeader());
  return ts;
}

Result<std::unique_ptr<TableSpace>> TableSpace::Open(
    const std::string& path, const TableSpaceOptions& options) {
  if (options.in_memory)
    return Status::InvalidArgument("cannot reopen an in-memory table space");
  auto ts = std::unique_ptr<TableSpace>(new TableSpace());
  int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0)
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  ts->fd_ = fd;
  XDB_RETURN_NOT_OK(ts->ReadHeader());
  return ts;
}

Status TableSpace::ReadHeader() {
  MutexLock lock(mu_);
  char buf[64];
  ssize_t n = ::pread(fd_, buf, sizeof(buf), 0);
  if (n < static_cast<ssize_t>(sizeof(buf)))
    return Status::Corruption("table space header too short");
  if (DecodeFixed32(buf) != kMagic)
    return Status::Corruption("bad table space magic");
  page_size_ = DecodeFixed32(buf + 4);
  page_count_.store(DecodeFixed32(buf + 8), std::memory_order_release);
  free_list_head_ = DecodeFixed32(buf + 12);
  uint32_t version = DecodeFixed32(buf + 16);
  if (version == 0) {
    format_version_ = kTableSpaceFormatV1;  // pre-versioning file
  } else if (version == kTableSpaceFormatV1 ||
             version == kTableSpaceFormatV2) {
    format_version_ = version;
    uint32_t stored_crc = DecodeFixed32(buf + 20);
    if (stored_crc != Crc32(buf, 20))
      return Status::Corruption("table space header checksum mismatch");
  } else {
    return Status::Corruption("unsupported table space format " +
                              std::to_string(version));
  }
  if (page_size_ < 512 || page_size_ > 1 << 20 ||
      page_count_.load(std::memory_order_relaxed) == 0)
    return Status::Corruption("implausible table space header");
  // The header's page count is only rewritten at Sync(); a crash after pages
  // were flushed but before the header leaves it stale. The file length is
  // authoritative: whole pages beyond the counted ones are real (flushed
  // data, checksummed) or all-zero (treated as empty). A trailing partial
  // page is a torn extension and is ignored.
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return Status::IOError("lseek failed");
  uint32_t file_pages = static_cast<uint32_t>(end / page_size_);
  if (file_pages > page_count_.load(std::memory_order_relaxed))
    page_count_.store(file_pages, std::memory_order_release);
  return Status::OK();
}

Status TableSpace::WriteHeader() {
  std::string buf(page_size_, '\0');
  EncodeFixed32(buf.data(), kMagic);
  EncodeFixed32(buf.data() + 4, page_size_);
  EncodeFixed32(buf.data() + 8, page_count_.load(std::memory_order_acquire));
  EncodeFixed32(buf.data() + 12, free_list_head_);
  EncodeFixed32(buf.data() + 16, format_version_);
  EncodeFixed32(buf.data() + 20, Crc32(buf.data(), 20));
  ssize_t n = ::pwrite(fd_, buf.data(), page_size_, 0);
  if (n != static_cast<ssize_t>(page_size_))
    return Status::IOError("write header failed");
  return Status::OK();
}

Result<PageId> TableSpace::AllocatePage() {
  MutexLock lock(mu_);
  const uint32_t link_off = FreeLinkOffset(format_version_);
  if (free_list_head_ != kInvalidPageId) {
    PageId id = free_list_head_;
    char buf[4];
    if (in_memory_) {
      std::memcpy(buf, mem_pages_[id].get() + link_off, 4);
    } else {
      ssize_t n = ::pread(fd_, buf, 4,
                          static_cast<off_t>(id) * page_size_ + link_off);
      if (n != 4) return Status::IOError("read free page link");
    }
    free_list_head_ = DecodeFixed32(buf);
    // Zero the recycled page so callers see a clean slate.
    std::string zeros(page_size_, '\0');
    if (in_memory_) {
      std::memset(mem_pages_[id].get(), 0, page_size_);
    } else {
      ssize_t n = ::pwrite(fd_, zeros.data(), page_size_,
                           static_cast<off_t>(id) * page_size_);
      if (n != static_cast<ssize_t>(page_size_))
        return Status::IOError("zero recycled page");
    }
    return id;
  }
  PageId id = page_count_.fetch_add(1, std::memory_order_acq_rel);
  if (in_memory_) {
    mem_pages_.push_back(std::make_unique<char[]>(page_size_));
  } else {
    std::string zeros(page_size_, '\0');
    ssize_t n = ::pwrite(fd_, zeros.data(), page_size_,
                         static_cast<off_t>(id) * page_size_);
    if (n != static_cast<ssize_t>(page_size_))
      return Status::IOError("extend table space");
  }
  return id;
}

Status TableSpace::FreePage(PageId id) {
  MutexLock lock(mu_);
  if (id == 0 || id >= page_count_.load(std::memory_order_acquire))
    return Status::InvalidArgument("bad page id to free");
  if (format_version_ >= kTableSpaceFormatV2) {
    // Write a full stamped free page: checksum valid, free flag set, payload
    // type byte kFreePage (0), link after the type byte — so checksum sweeps
    // and recovery scans see a well-formed page, not leftover data.
    std::string page(page_size_, '\0');
    EncodeFixed32(page.data() + FreeLinkOffset(format_version_),
                  free_list_head_);
    StampPageHeader(page.data(), page_size_, 0, kPageFlagFree);
    if (in_memory_) {
      std::memcpy(mem_pages_[id].get(), page.data(), page_size_);
    } else {
      ssize_t n = ::pwrite(fd_, page.data(), page_size_,
                           static_cast<off_t>(id) * page_size_);
      if (n != static_cast<ssize_t>(page_size_))
        return Status::IOError("write free page");
    }
  } else {
    char buf[4];
    EncodeFixed32(buf, free_list_head_);
    if (in_memory_) {
      std::memcpy(mem_pages_[id].get(), buf, 4);
    } else {
      ssize_t n = ::pwrite(fd_, buf, 4, static_cast<off_t>(id) * page_size_);
      if (n != 4) return Status::IOError("write free page link");
    }
  }
  free_list_head_ = id;
  return Status::OK();
}

Status TableSpace::ReadPageImpl(PageId id, char* buf) {
  if (in_memory_) {
    MutexLock lock(mu_);
    std::memcpy(buf, mem_pages_[id].get(), page_size_);
    if (auto* fi = testing::FaultInjector::active())
      return fi->OnRead(testing::FaultPoint::kTableSpaceRead, buf, page_size_);
    return Status::OK();
  }
  ssize_t n = ::pread(fd_, buf, page_size_, static_cast<off_t>(id) * page_size_);
  if (n != static_cast<ssize_t>(page_size_)) {
    if (n < 0 && TransientErrno(errno))
      return Status::TransientIOError("page read interrupted");
    return Status::IOError("short page read");
  }
  if (auto* fi = testing::FaultInjector::active())
    return fi->OnRead(testing::FaultPoint::kTableSpaceRead, buf, page_size_);
  return Status::OK();
}

Status TableSpace::ReadPage(PageId id, char* buf) {
  if (id >= page_count_.load(std::memory_order_acquire))
    return Status::InvalidArgument("page out of range");
  io_stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return RetryTransient(retry_policy_, clock_, &io_stats_, events_,
                        "page read", [&] { return ReadPageImpl(id, buf); });
}

Status TableSpace::WritePageImpl(PageId id, const char* buf) {
  if (in_memory_) {
    MutexLock lock(mu_);
    if (auto* fi = testing::FaultInjector::active()) {
      testing::FaultInjector::WriteSink sink;
      sink.mem = mem_pages_[id].get();
      bool handled = false;
      Status s = fi->OnWrite(testing::FaultPoint::kTableSpaceWrite, buf,
                             page_size_, sink, &handled);
      if (handled) return s;
    }
    std::memcpy(mem_pages_[id].get(), buf, page_size_);
    return Status::OK();
  }
  if (auto* fi = testing::FaultInjector::active()) {
    testing::FaultInjector::WriteSink sink;
    sink.fd = fd_;
    sink.offset = static_cast<uint64_t>(id) * page_size_;
    bool handled = false;
    Status s = fi->OnWrite(testing::FaultPoint::kTableSpaceWrite, buf,
                           page_size_, sink, &handled);
    if (handled) return s;
  }
  ssize_t n =
      ::pwrite(fd_, buf, page_size_, static_cast<off_t>(id) * page_size_);
  if (n != static_cast<ssize_t>(page_size_)) {
    if (n < 0 && TransientErrno(errno))
      return Status::TransientIOError("page write interrupted");
    return Status::IOError("short page write");
  }
  return Status::OK();
}

Status TableSpace::WritePage(PageId id, const char* buf) {
  if (id >= page_count_.load(std::memory_order_acquire))
    return Status::InvalidArgument("page out of range");
  io_stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return RetryTransient(retry_policy_, clock_, &io_stats_, events_,
                        "page write", [&] { return WritePageImpl(id, buf); });
}

Status TableSpace::Sync() {
  if (in_memory_) return Status::OK();
  io_stats_.syncs.fetch_add(1, std::memory_order_relaxed);
  return RetryTransient(retry_policy_, clock_, &io_stats_, events_,
                        "space sync", [&] {
    if (auto* fi = testing::FaultInjector::active())
      XDB_RETURN_NOT_OK(fi->OnOp(testing::FaultPoint::kTableSpaceSync));
    {
      // The header snapshots the free list; take mu_ so a concurrent
      // AllocatePage/FreePage can't leave it half-updated on disk.
      MutexLock lock(mu_);
      XDB_RETURN_NOT_OK(WriteHeader());
    }
    if (::fsync(fd_) != 0) {
      if (TransientErrno(errno))
        return Status::TransientIOError("fsync interrupted");
      return Status::IOError("fsync failed");
    }
    return Status::OK();
  });
}

Status TableSpace::Reset() {
  MutexLock lock(mu_);
  page_count_.store(1, std::memory_order_release);
  free_list_head_ = kInvalidPageId;
  if (in_memory_) {
    mem_pages_.clear();
    mem_pages_.push_back(std::make_unique<char[]>(page_size_));
    return Status::OK();
  }
  if (::ftruncate(fd_, 0) != 0)
    return Status::IOError("truncate table space failed");
  return WriteHeader();
}

}  // namespace xdb
