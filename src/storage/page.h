// Page-level constants and identifiers for the relational storage substrate.
//
// This is the "data management infrastructure" layer of the paper's Figure 1:
// to everything below the XML services, packed XML data is just rows in pages.
#ifndef XDB_STORAGE_PAGE_H_
#define XDB_STORAGE_PAGE_H_

#include <cstdint>

#include "common/status.h"

namespace xdb {

using PageId = uint32_t;

/// Sentinel for "no page".
constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Default page size; table spaces may be created with other powers of two.
constexpr uint32_t kDefaultPageSize = 4096;

// --- physical page header (table space format v2) ---
//
// Every page of a checksummed (v2) table space carries a 16-byte header in
// front of the client-visible payload:
//   [0]  crc32     u32  over bytes [4, page_size) — header remainder + payload
//   [4]  page LSN  u64  WAL size when the page was last written back
//   [12] flags     u16  bit 0 = page is on the free list
//   [14] reserved  u16
// The BufferManager verifies the CRC on every fetch and stamps it on every
// writeback; clients address the payload through PageHandle::data(), so the
// slotted-page / B+tree layouts are unchanged. Format v1 spaces (pre-header)
// have data_offset 0 and no verification — the migration path for existing
// files.

constexpr uint32_t kPageHeaderSize = 16;
constexpr uint16_t kPageFlagFree = 0x1;

/// Table space on-disk format versions (stored in the space header page).
constexpr uint32_t kTableSpaceFormatV1 = 1;  // legacy: no page headers
constexpr uint32_t kTableSpaceFormatV2 = 2;  // checksummed page headers

/// Writes the v2 page header (CRC last, covering everything after itself).
void StampPageHeader(char* page, uint32_t page_size, uint64_t lsn,
                     uint16_t flags);

/// Checks the v2 header CRC. An all-zero page passes: freshly extended or
/// recycled pages are legitimately blank (the PageIsNew idiom).
Status VerifyPageChecksum(const char* page, uint32_t page_size, PageId id);

/// Header field accessors (valid only for stamped pages).
uint64_t PageLsn(const char* page);
uint16_t PageFlags(const char* page);

/// Record identifier: physical position of a record, (page, slot).
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool IsValid() const { return page_id != kInvalidPageId; }

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static Rid Unpack(uint64_t v) {
    return Rid{static_cast<PageId>(v >> 16), static_cast<uint16_t>(v & 0xFFFF)};
  }

  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
  bool operator!=(const Rid& o) const { return !(*this == o); }
};

}  // namespace xdb

#endif  // XDB_STORAGE_PAGE_H_
