// Page-level constants and identifiers for the relational storage substrate.
//
// This is the "data management infrastructure" layer of the paper's Figure 1:
// to everything below the XML services, packed XML data is just rows in pages.
#ifndef XDB_STORAGE_PAGE_H_
#define XDB_STORAGE_PAGE_H_

#include <cstdint>

namespace xdb {

using PageId = uint32_t;

/// Sentinel for "no page".
constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Default page size; table spaces may be created with other powers of two.
constexpr uint32_t kDefaultPageSize = 4096;

/// Record identifier: physical position of a record, (page, slot).
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool IsValid() const { return page_id != kInvalidPageId; }

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static Rid Unpack(uint64_t v) {
    return Rid{static_cast<PageId>(v >> 16), static_cast<uint16_t>(v & 0xFFFF)};
  }

  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
  bool operator!=(const Rid& o) const { return !(*this == o); }
};

}  // namespace xdb

#endif  // XDB_STORAGE_PAGE_H_
