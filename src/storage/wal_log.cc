#include "storage/wal_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <vector>

#include "testing/fault_injector.h"

namespace xdb {

namespace {
// Record layout: [total_len u32][type u8][crc u32][payload].
constexpr size_t kRecordHeader = 4 + 1 + 4;
}  // namespace

Status ScanWalRecords(
    Slice buf, uint64_t base_lsn,
    const std::function<Status(uint64_t, WalRecordType, Slice)>& visit,
    WalReplayInfo* info) {
  WalReplayInfo local;
  if (info == nullptr) info = &local;
  *info = WalReplayInfo{};
  info->end_lsn = base_lsn;
  const size_t size = buf.size();
  size_t pos = 0;
  while (pos + kRecordHeader <= size) {
    const char* hdr = buf.data() + pos;
    uint32_t len = DecodeFixed32(hdr);
    uint8_t type = static_cast<uint8_t>(hdr[4]);
    uint32_t crc = DecodeFixed32(hdr + 5);
    uint64_t end = pos + kRecordHeader + len;
    if (end > size) {
      // Truncated last record — the normal crash signature. (A corrupted
      // length field mid-log also lands here; without a trustworthy length
      // there is no way to resynchronize, so stopping is the safe choice.)
      info->torn_tail = true;
      break;
    }
    const char* payload = buf.data() + pos + kRecordHeader;
    if (Crc32(payload, len) != crc) {
      if (end == size) {
        // CRC failure on the very last record: torn/partial final write.
        info->torn_tail = true;
        break;
      }
      // Intact records follow — this is mid-log corruption, not a crash
      // artifact. Skip the record, keep replaying, and let the caller warn.
      if (info->corrupt_records_skipped == 0)
        info->first_corrupt_lsn = base_lsn + pos;
      info->corrupt_records_skipped++;
      info->bytes_skipped += kRecordHeader + len;
      pos = end;
      info->end_lsn = base_lsn + pos;
      continue;
    }
    XDB_RETURN_NOT_OK(visit(base_lsn + pos, static_cast<WalRecordType>(type),
                            Slice(payload, len)));
    info->records_replayed++;
    pos = end;
    info->end_lsn = base_lsn + pos;
  }
  if (pos + kRecordHeader > size && pos < size && !info->torn_tail) {
    // A trailing fragment shorter than a header is a torn tail too.
    info->torn_tail = true;
  }
  return Status::OK();
}

WalLog::~WalLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalLog>> WalLog::Open(const std::string& path) {
  auto log = std::unique_ptr<WalLog>(new WalLog());
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0)
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  log->fd_ = fd;
  log->path_ = path;
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) return Status::IOError("lseek failed");
  log->size_.store(static_cast<uint64_t>(end), std::memory_order_relaxed);
  return log;
}

Result<uint64_t> WalLog::Append(WalRecordType type, Slice payload) {
  std::string rec;
  rec.reserve(kRecordHeader + payload.size());
  PutFixed32(&rec, static_cast<uint32_t>(payload.size()));
  rec.push_back(static_cast<char>(type));
  PutFixed32(&rec, Crc32(payload.data(), payload.size()));
  rec.append(payload.data(), payload.size());

  MutexLock lock(mu_);
  return AppendFramedLocked(rec);
}

Result<uint64_t> WalLog::AppendRaw(Slice framed_records) {
  MutexLock lock(mu_);
  return AppendFramedLocked(framed_records);
}

Result<uint64_t> WalLog::AppendFramedLocked(Slice rec) {
  uint64_t lsn = size_.load(std::memory_order_relaxed);
  io_stats_.writes.fetch_add(1, std::memory_order_relaxed);
  Status s = RetryTransient(
      retry_policy_, clock_, &io_stats_, events_, "wal append",
      [&]() -> Status {
        if (auto* fi = testing::FaultInjector::active()) {
          testing::FaultInjector::WriteSink sink;
          sink.fd = fd_;
          sink.offset = lsn;
          bool handled = false;
          Status st = fi->OnWrite(testing::FaultPoint::kWalAppend, rec.data(),
                                  rec.size(), sink, &handled);
          if (handled) return st;  // incl. OK for silent corruption: landed
        }
        ssize_t n =
            ::pwrite(fd_, rec.data(), rec.size(), static_cast<off_t>(lsn));
        if (n != static_cast<ssize_t>(rec.size())) {
          if (n < 0 && (errno == EINTR || errno == EAGAIN))
            return Status::TransientIOError("log append interrupted");
          return Status::IOError("short log append");
        }
        return Status::OK();
      });
  XDB_RETURN_NOT_OK(s);
  size_.store(lsn + rec.size(), std::memory_order_relaxed);
  return lsn;
}

Status WalLog::Sync() {
  io_stats_.syncs.fetch_add(1, std::memory_order_relaxed);
  return RetryTransient(retry_policy_, clock_, &io_stats_, events_, "wal sync",
                        [&] {
    if (auto* fi = testing::FaultInjector::active())
      XDB_RETURN_NOT_OK(fi->OnOp(testing::FaultPoint::kWalSync));
    if (::fdatasync(fd_) != 0) {
      if (errno == EINTR || errno == EAGAIN)
        return Status::TransientIOError("fdatasync interrupted");
      return Status::IOError("fdatasync failed");
    }
    return Status::OK();
  });
}

Status WalLog::Commit() {
  // One span for the whole call: leader fsync time and follower condvar
  // time both count as kWalCommit. commit_mu_ (rank kWalCommit) is the
  // span's own component lock, so holding the span across it is fine.
  obs::WaitSpan commit_span(wait_sink_, obs::WaitState::kWalCommit);
  uint64_t gen;
  {
    MutexLock lock(commit_mu_);
    commit_stats_.commits++;
    round_commits_++;
    gen = reset_gen_;
  }
  // The CSN: everything appended before this call must become durable.
  // Snapshotted *after* the generation: a Reset() racing in between bumps
  // reset_gen_ and the loop's generation check catches it; the reverse
  // order would leave a window where a stale CSN slips past both checks.
  const uint64_t target = size_.load(std::memory_order_acquire);
  if (commit_race_hook_) commit_race_hook_();
  for (;;) {
    uint64_t sync_goal = 0;
    {
      MutexLock lock(commit_mu_);
      // A checkpoint Reset() the log after our CSN snapshot: the bytes the
      // CSN covered are gone (their effects are durable in the checkpoint),
      // and `target` may forever exceed the truncated log's size — treating
      // it as satisfied is the only way out.
      if (reset_gen_ != gen) return Status::OK();
      if (synced_upto_ >= target) return Status::OK();  // piggybacked
      if (sync_active_) {
        // A leader's fsync is in flight; wait for its round to finish and
        // re-check coverage (a failed round leaves synced_upto_ behind and
        // this caller becomes the retry leader).
        commit_cv_.Wait(lock);
        continue;
      }
      sync_active_ = true;
      commit_stats_.syncs++;
      // Sync through the *current* end of log, not just our own CSN: later
      // appends that raced in ride along for free.
      sync_goal = size_.load(std::memory_order_acquire);
    }
    Status st = Sync();  // commit_mu_ dropped: appends and waiters proceed
    uint64_t batch = 0;
    {
      MutexLock lock(commit_mu_);
      sync_active_ = false;
      // A goal snapshotted before a concurrent Reset() counts bytes that no
      // longer exist; publishing it would mark future appends durable that
      // never hit disk. Skipping the update only costs the next leader an
      // extra fsync.
      if (st.ok() && reset_gen_ == gen && sync_goal > synced_upto_) {
        synced_upto_ = sync_goal;
        batch = round_commits_;
        round_commits_ = 0;
      }
    }
    if (batch > 0) {
      // Emitted outside commit_mu_ purely to keep the critical section
      // short; both sinks are lock-free anyway.
      if (batch_hist_ != nullptr) batch_hist_->Observe(batch);
      if (events_ != nullptr)
        events_->Emit(obs::EventKind::kGroupCommitRound, batch, sync_goal,
                      "wal commit round");
    }
    commit_cv_.NotifyAll();
    if (!st.ok()) return st;
  }
}

WalCommitStats WalLog::commit_stats() const {
  MutexLock lock(commit_mu_);
  return commit_stats_;
}

Status WalLog::Replay(
    const std::function<Status(uint64_t, WalRecordType, Slice)>& visit,
    WalReplayInfo* info) {
  MutexLock lock(mu_);
  const uint64_t size = size_.load(std::memory_order_relaxed);
  std::vector<char> buf(size);
  uint64_t got = 0;
  while (got < size) {
    ssize_t n = ::pread(fd_, buf.data() + got, size - got,
                        static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("wal replay read failed");
    }
    if (n == 0) break;  // file shorter than size_: treat the rest as torn
    got += static_cast<uint64_t>(n);
  }
  Status s = ScanWalRecords(Slice(buf.data(), got), 0, visit, info);
  if (s.ok() && info != nullptr && got < size) info->torn_tail = true;
  return s;
}

Status WalLog::ReadDurable(uint64_t from_lsn, size_t max_bytes,
                           std::string* out, uint64_t* end_lsn,
                           uint32_t* record_count) {
  out->clear();
  *end_lsn = from_lsn;
  *record_count = 0;
  uint64_t upto;
  {
    MutexLock clock(commit_mu_);
    upto = synced_upto_;
  }
  MutexLock lock(mu_);
  // A racing Reset() can shrink the file after the synced_upto_ snapshot;
  // clamping to the current size keeps the reads in bounds (the caller
  // detects the restart via reset_generation() and rebases).
  const uint64_t size = size_.load(std::memory_order_relaxed);
  if (upto > size) upto = size;
  if (from_lsn >= upto) return Status::OK();

  uint64_t pos = from_lsn;
  std::vector<char> rec;
  while (pos + kRecordHeader <= upto) {
    char hdr[kRecordHeader];
    ssize_t n = ::pread(fd_, hdr, kRecordHeader, static_cast<off_t>(pos));
    if (n != static_cast<ssize_t>(kRecordHeader))
      return Status::IOError("wal tail read failed");
    uint32_t len = DecodeFixed32(hdr);
    uint32_t crc = DecodeFixed32(hdr + 5);
    uint64_t end = pos + kRecordHeader + len;
    if (end > upto) break;  // record not yet fully durable: stop here
    if (!out->empty() && end - from_lsn > max_bytes) break;
    rec.resize(len);
    n = ::pread(fd_, rec.data(), len, static_cast<off_t>(pos + kRecordHeader));
    if (n != static_cast<ssize_t>(len))
      return Status::IOError("wal tail read failed");
    if (Crc32(rec.data(), len) != crc) {
      // A CRC failure *inside* the durable region is media damage on the
      // primary, not a torn tail. Return what accumulated so far; a call
      // starting at the damaged record has nothing safe to ship.
      if (out->empty())
        return Status::Corruption("wal record damaged inside durable region");
      break;
    }
    out->append(hdr, kRecordHeader);
    out->append(rec.data(), len);
    (*record_count)++;
    pos = end;
  }
  *end_lsn = pos;
  return Status::OK();
}

uint64_t WalLog::durable_upto() const {
  MutexLock clock(commit_mu_);
  return synced_upto_;
}

uint64_t WalLog::reset_generation() const {
  MutexLock clock(commit_mu_);
  return reset_gen_;
}

void WalLog::set_retain_hook(std::function<uint64_t(uint64_t)> hook) {
  MutexLock lock(mu_);
  retain_hook_ = std::move(hook);
}

Status WalLog::TruncateTo(uint64_t lsn) {
  MutexLock lock(mu_);
  const uint64_t size = size_.load(std::memory_order_relaxed);
  if (lsn >= size) return Status::OK();
  if (::ftruncate(fd_, static_cast<off_t>(lsn)) != 0)
    return Status::IOError("ftruncate failed");
  size_.store(lsn, std::memory_order_relaxed);
  {
    MutexLock clock(commit_mu_);
    if (synced_upto_ > lsn) synced_upto_ = lsn;
  }
  return Status::OK();
}

Status WalLog::Reset() {
  MutexLock lock(mu_);
  return ResetLocked();
}

Result<bool> WalLog::MaybeReset() {
  MutexLock lock(mu_);
  if (retain_hook_ != nullptr) {
    uint64_t gen;
    {
      MutexLock clock(commit_mu_);
      gen = reset_gen_;
    }
    // The hook gets the current generation so a tailer whose position still
    // refers to a previous log epoch (it has not folded a prior Reset() into
    // its stream base yet) can refuse truncation outright instead of
    // comparing a stale offset against this log's size.
    if (retain_hook_(gen) < size_.load(std::memory_order_relaxed))
      return false;  // a tailer still needs bytes in the log: keep them
  }
  XDB_RETURN_NOT_OK(ResetLocked());
  return true;
}

Status WalLog::ResetLocked() {
  if (::ftruncate(fd_, 0) != 0) return Status::IOError("ftruncate failed");
  size_.store(0, std::memory_order_relaxed);
  {
    MutexLock clock(commit_mu_);
    synced_upto_ = 0;
    reset_gen_++;
  }
  // Wake committers waiting on an in-flight leader so they observe the
  // generation bump instead of waiting to chase a pre-truncation CSN.
  commit_cv_.NotifyAll();
  return Status::OK();
}

}  // namespace xdb
