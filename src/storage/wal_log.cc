#include "storage/wal_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <vector>

#include "testing/fault_injector.h"

namespace xdb {

namespace {
// Record layout: [total_len u32][type u8][crc u32][payload].
constexpr size_t kRecordHeader = 4 + 1 + 4;
}  // namespace

WalLog::~WalLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalLog>> WalLog::Open(const std::string& path) {
  auto log = std::unique_ptr<WalLog>(new WalLog());
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0)
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  log->fd_ = fd;
  log->path_ = path;
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) return Status::IOError("lseek failed");
  log->size_.store(static_cast<uint64_t>(end), std::memory_order_relaxed);
  return log;
}

Result<uint64_t> WalLog::Append(WalRecordType type, Slice payload) {
  std::string rec;
  rec.reserve(kRecordHeader + payload.size());
  PutFixed32(&rec, static_cast<uint32_t>(payload.size()));
  rec.push_back(static_cast<char>(type));
  PutFixed32(&rec, Crc32(payload.data(), payload.size()));
  rec.append(payload.data(), payload.size());

  MutexLock lock(mu_);
  uint64_t lsn = size_.load(std::memory_order_relaxed);
  io_stats_.writes.fetch_add(1, std::memory_order_relaxed);
  Status s = RetryTransient(
      retry_policy_, clock_, &io_stats_, events_, "wal append",
      [&]() -> Status {
        if (auto* fi = testing::FaultInjector::active()) {
          testing::FaultInjector::WriteSink sink;
          sink.fd = fd_;
          sink.offset = lsn;
          bool handled = false;
          Status st = fi->OnWrite(testing::FaultPoint::kWalAppend, rec.data(),
                                  rec.size(), sink, &handled);
          if (handled) return st;  // incl. OK for silent corruption: landed
        }
        ssize_t n =
            ::pwrite(fd_, rec.data(), rec.size(), static_cast<off_t>(lsn));
        if (n != static_cast<ssize_t>(rec.size())) {
          if (n < 0 && (errno == EINTR || errno == EAGAIN))
            return Status::TransientIOError("log append interrupted");
          return Status::IOError("short log append");
        }
        return Status::OK();
      });
  XDB_RETURN_NOT_OK(s);
  size_.store(lsn + rec.size(), std::memory_order_relaxed);
  return lsn;
}

Status WalLog::Sync() {
  io_stats_.syncs.fetch_add(1, std::memory_order_relaxed);
  return RetryTransient(retry_policy_, clock_, &io_stats_, events_, "wal sync",
                        [&] {
    if (auto* fi = testing::FaultInjector::active())
      XDB_RETURN_NOT_OK(fi->OnOp(testing::FaultPoint::kWalSync));
    if (::fdatasync(fd_) != 0) {
      if (errno == EINTR || errno == EAGAIN)
        return Status::TransientIOError("fdatasync interrupted");
      return Status::IOError("fdatasync failed");
    }
    return Status::OK();
  });
}

Status WalLog::Commit() {
  uint64_t gen;
  {
    MutexLock lock(commit_mu_);
    commit_stats_.commits++;
    round_commits_++;
    gen = reset_gen_;
  }
  // The CSN: everything appended before this call must become durable.
  // Snapshotted *after* the generation: a Reset() racing in between bumps
  // reset_gen_ and the loop's generation check catches it; the reverse
  // order would leave a window where a stale CSN slips past both checks.
  const uint64_t target = size_.load(std::memory_order_acquire);
  if (commit_race_hook_) commit_race_hook_();
  for (;;) {
    uint64_t sync_goal = 0;
    {
      MutexLock lock(commit_mu_);
      // A checkpoint Reset() the log after our CSN snapshot: the bytes the
      // CSN covered are gone (their effects are durable in the checkpoint),
      // and `target` may forever exceed the truncated log's size — treating
      // it as satisfied is the only way out.
      if (reset_gen_ != gen) return Status::OK();
      if (synced_upto_ >= target) return Status::OK();  // piggybacked
      if (sync_active_) {
        // A leader's fsync is in flight; wait for its round to finish and
        // re-check coverage (a failed round leaves synced_upto_ behind and
        // this caller becomes the retry leader).
        commit_cv_.Wait(lock);
        continue;
      }
      sync_active_ = true;
      commit_stats_.syncs++;
      // Sync through the *current* end of log, not just our own CSN: later
      // appends that raced in ride along for free.
      sync_goal = size_.load(std::memory_order_acquire);
    }
    Status st = Sync();  // commit_mu_ dropped: appends and waiters proceed
    uint64_t batch = 0;
    {
      MutexLock lock(commit_mu_);
      sync_active_ = false;
      // A goal snapshotted before a concurrent Reset() counts bytes that no
      // longer exist; publishing it would mark future appends durable that
      // never hit disk. Skipping the update only costs the next leader an
      // extra fsync.
      if (st.ok() && reset_gen_ == gen && sync_goal > synced_upto_) {
        synced_upto_ = sync_goal;
        batch = round_commits_;
        round_commits_ = 0;
      }
    }
    if (batch > 0) {
      // Emitted outside commit_mu_ purely to keep the critical section
      // short; both sinks are lock-free anyway.
      if (batch_hist_ != nullptr) batch_hist_->Observe(batch);
      if (events_ != nullptr)
        events_->Emit(obs::EventKind::kGroupCommitRound, batch, sync_goal,
                      "wal commit round");
    }
    commit_cv_.NotifyAll();
    if (!st.ok()) return st;
  }
}

WalCommitStats WalLog::commit_stats() const {
  MutexLock lock(commit_mu_);
  return commit_stats_;
}

Status WalLog::Replay(
    const std::function<Status(uint64_t, WalRecordType, Slice)>& visit,
    WalReplayInfo* info) {
  MutexLock lock(mu_);
  WalReplayInfo local;
  if (info == nullptr) info = &local;
  *info = WalReplayInfo{};
  const uint64_t size = size_.load(std::memory_order_relaxed);
  uint64_t pos = 0;
  std::vector<char> buf;
  while (pos + kRecordHeader <= size) {
    char hdr[kRecordHeader];
    ssize_t n = ::pread(fd_, hdr, kRecordHeader, static_cast<off_t>(pos));
    if (n != static_cast<ssize_t>(kRecordHeader)) {
      info->torn_tail = true;
      break;
    }
    uint32_t len = DecodeFixed32(hdr);
    uint8_t type = static_cast<uint8_t>(hdr[4]);
    uint32_t crc = DecodeFixed32(hdr + 5);
    uint64_t end = pos + kRecordHeader + len;
    if (end > size) {
      // Truncated last record — the normal crash signature. (A corrupted
      // length field mid-log also lands here; without a trustworthy length
      // there is no way to resynchronize, so stopping is the safe choice.)
      info->torn_tail = true;
      break;
    }
    buf.resize(len);
    n = ::pread(fd_, buf.data(), len, static_cast<off_t>(pos + kRecordHeader));
    if (n != static_cast<ssize_t>(len)) {
      info->torn_tail = true;
      break;
    }
    if (Crc32(buf.data(), len) != crc) {
      if (end == size) {
        // CRC failure on the very last record: torn/partial final write.
        info->torn_tail = true;
        break;
      }
      // Intact records follow — this is mid-log corruption, not a crash
      // artifact. Skip the record, keep replaying, and let the caller warn.
      info->corrupt_records_skipped++;
      info->bytes_skipped += kRecordHeader + len;
      pos = end;
      continue;
    }
    XDB_RETURN_NOT_OK(visit(pos, static_cast<WalRecordType>(type),
                            Slice(buf.data(), len)));
    info->records_replayed++;
    pos = end;
  }
  return Status::OK();
}

Status WalLog::Reset() {
  MutexLock lock(mu_);
  if (::ftruncate(fd_, 0) != 0) return Status::IOError("ftruncate failed");
  size_.store(0, std::memory_order_relaxed);
  {
    MutexLock clock(commit_mu_);
    synced_upto_ = 0;
    reset_gen_++;
  }
  // Wake committers waiting on an in-flight leader so they observe the
  // generation bump instead of waiting to chase a pre-truncation CSN.
  commit_cv_.NotifyAll();
  return Status::OK();
}

}  // namespace xdb
