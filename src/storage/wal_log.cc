#include "storage/wal_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <vector>

#include "common/coding.h"
#include "testing/fault_injector.h"

namespace xdb {

namespace {
// Record layout: [total_len u32][type u8][crc u32][payload].
constexpr size_t kRecordHeader = 4 + 1 + 4;

uint32_t* CrcTable() {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}
}  // namespace

uint32_t Crc32(const char* data, size_t n) {
  uint32_t* table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; i++)
    c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

WalLog::~WalLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WalLog>> WalLog::Open(const std::string& path) {
  auto log = std::unique_ptr<WalLog>(new WalLog());
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0)
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  log->fd_ = fd;
  log->path_ = path;
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) return Status::IOError("lseek failed");
  log->size_ = static_cast<uint64_t>(end);
  return log;
}

Result<uint64_t> WalLog::Append(WalRecordType type, Slice payload) {
  std::string rec;
  rec.reserve(kRecordHeader + payload.size());
  PutFixed32(&rec, static_cast<uint32_t>(payload.size()));
  rec.push_back(static_cast<char>(type));
  PutFixed32(&rec, Crc32(payload.data(), payload.size()));
  rec.append(payload.data(), payload.size());

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t lsn = size_;
  if (auto* fi = testing::FaultInjector::active()) {
    testing::FaultInjector::WriteSink sink;
    sink.fd = fd_;
    sink.offset = size_;
    bool handled = false;
    Status s = fi->OnWrite(testing::FaultPoint::kWalAppend, rec.data(),
                           rec.size(), sink, &handled);
    if (handled) {
      XDB_RETURN_NOT_OK(s);
      size_ += rec.size();  // silent-corruption fault: the bytes did land
      return lsn;
    }
  }
  ssize_t n = ::pwrite(fd_, rec.data(), rec.size(), static_cast<off_t>(size_));
  if (n != static_cast<ssize_t>(rec.size()))
    return Status::IOError("short log append");
  size_ += rec.size();
  return lsn;
}

Status WalLog::Sync() {
  if (auto* fi = testing::FaultInjector::active())
    XDB_RETURN_NOT_OK(fi->OnOp(testing::FaultPoint::kWalSync));
  if (::fdatasync(fd_) != 0) return Status::IOError("fdatasync failed");
  return Status::OK();
}

Status WalLog::Replay(
    const std::function<Status(uint64_t, WalRecordType, Slice)>& visit) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t pos = 0;
  std::vector<char> buf;
  while (pos + kRecordHeader <= size_) {
    char hdr[kRecordHeader];
    ssize_t n = ::pread(fd_, hdr, kRecordHeader, static_cast<off_t>(pos));
    if (n != static_cast<ssize_t>(kRecordHeader)) break;
    uint32_t len = DecodeFixed32(hdr);
    uint8_t type = static_cast<uint8_t>(hdr[4]);
    uint32_t crc = DecodeFixed32(hdr + 5);
    if (pos + kRecordHeader + len > size_) break;  // torn tail
    buf.resize(len);
    n = ::pread(fd_, buf.data(), len, static_cast<off_t>(pos + kRecordHeader));
    if (n != static_cast<ssize_t>(len)) break;
    if (Crc32(buf.data(), len) != crc) break;  // corrupt tail
    XDB_RETURN_NOT_OK(visit(pos, static_cast<WalRecordType>(type),
                            Slice(buf.data(), len)));
    pos += kRecordHeader + len;
  }
  return Status::OK();
}

Status WalLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (::ftruncate(fd_, 0) != 0) return Status::IOError("ftruncate failed");
  size_ = 0;
  return Status::OK();
}

}  // namespace xdb
