// BufferManager: fixed-capacity page cache over a TableSpace with pinning,
// dirty tracking, and LRU replacement — the paper's reused "buffer manager"
// infrastructure component.
//
// For format-v2 table spaces this layer owns page integrity: every fetch
// verifies the page checksum (failures quarantine the page and surface
// kCorruption), every writeback stamps the header with the current CRC and
// page LSN. Clients see only the payload behind the header via
// PageHandle::data()/page_size(), so slotted-page and B+tree layouts are
// format-agnostic.
#ifndef XDB_STORAGE_BUFFER_MANAGER_H_
#define XDB_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"
#include "storage/tablespace.h"

namespace xdb {

class BufferManager;

namespace internal {
// Frame bookkeeping (page_id, pin_count, in_lru, lru_pos) is protected by the
// owning BufferManager's mu_. `data` and `dirty` belong exclusively to the
// pinning thread between FixPage and Unpin; once the frame is unpinned, mu_
// hands them over to eviction/writeback (Unpin's lock release is the
// synchronization point).
struct Frame {
  PageId page_id = kInvalidPageId;
  int pin_count = 0;
  bool dirty = false;
  std::unique_ptr<char[]> data;
  std::list<Frame*>::iterator lru_pos;
  bool in_lru = false;
};
}  // namespace internal

/// RAII pin on a buffered page. Movable, not copyable; unpins on destruction.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return frame_ != nullptr; }
  PageId page_id() const { return page_id_; }
  const char* data() const { return frame_->data.get() + offset_; }
  /// Mutable access; marks the page dirty.
  char* MutableData();
  /// Explicit early unpin (also done by the destructor).
  void Release();

 private:
  friend class BufferManager;
  PageHandle(BufferManager* bm, internal::Frame* frame, PageId id,
             uint32_t offset)
      : bm_(bm), frame_(frame), page_id_(id), offset_(offset) {}

  BufferManager* bm_ = nullptr;
  internal::Frame* frame_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  uint32_t offset_ = 0;
};

struct BufferManagerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t checksum_failures = 0;
};

class BufferManager {
 public:
  /// `capacity` is the number of page frames held in memory.
  BufferManager(TableSpace* space, size_t capacity);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins page `id`, reading it from the table space on a miss. Returns
  /// kCorruption (and quarantines the page) when its checksum fails.
  Result<PageHandle> FixPage(PageId id) XDB_EXCLUDES(mu_);

  /// Allocates a fresh page in the table space and pins it.
  Result<PageHandle> NewPage() XDB_EXCLUDES(mu_);

  /// Unpins and frees page `id` back to the table space. The page must not
  /// be pinned by anyone else.
  Status FreePage(PageId id) XDB_EXCLUDES(mu_);

  /// Writes back all dirty pages. Callers must exclude concurrent page
  /// writers (the engine holds the collection latch across checkpoints).
  Status FlushAll() XDB_EXCLUDES(mu_);

  /// WAL position stamped into page headers on writeback (page LSN). Unset,
  /// pages are stamped with LSN 0.
  void set_lsn_source(std::function<uint64_t()> source) XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    lsn_source_ = std::move(source);
  }

  /// Pages whose checksum failed; they stay unreadable until repaired.
  std::vector<PageId> quarantined_pages() const XDB_EXCLUDES(mu_);

  TableSpace* space() { return space_; }
  /// Client-usable bytes per page (physical size minus the page header).
  uint32_t page_size() const { return space_->usable_page_size(); }
  /// Snapshot of the counters (copied under the lock).
  BufferManagerStats stats() const XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    stats_ = BufferManagerStats{};
  }

 private:
  friend class PageHandle;

  void Unpin(internal::Frame* frame) XDB_EXCLUDES(mu_);
  Result<internal::Frame*> GetFreeFrame() XDB_REQUIRES(mu_);
  Status WriteBack(internal::Frame* frame) XDB_REQUIRES(mu_);

  TableSpace* space_;
  size_t capacity_;
  uint32_t data_offset_;
  bool checksums_;
  std::function<uint64_t()> lsn_source_ XDB_GUARDED_BY(mu_);
  mutable Mutex mu_;
  std::unordered_map<PageId, internal::Frame*> table_ XDB_GUARDED_BY(mu_);
  std::unordered_set<PageId> quarantined_ XDB_GUARDED_BY(mu_);
  /// front = coldest unpinned frame
  std::list<internal::Frame*> lru_ XDB_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<internal::Frame>> frames_;  // fixed after ctor
  std::vector<internal::Frame*> free_frames_ XDB_GUARDED_BY(mu_);
  BufferManagerStats stats_ XDB_GUARDED_BY(mu_);
};

}  // namespace xdb

#endif  // XDB_STORAGE_BUFFER_MANAGER_H_
