// BufferManager: fixed-capacity page cache over a TableSpace with pinning,
// dirty tracking, and LRU replacement — the paper's reused "buffer manager"
// infrastructure component.
//
// The cache is split into N = power-of-two shards keyed by a page-id hash.
// Each shard owns its slice of the frames plus its own mutex, frame table,
// LRU list, quarantine set, and stats, so parallel query workers fixing
// pages of different shards never contend on one global lock. `stats()`
// aggregates across shards; checksum verification and quarantine stay
// per-shard (a corrupt page poisons only its own shard's table).
//
// For format-v2 table spaces this layer owns page integrity: every fetch
// verifies the page checksum (failures quarantine the page and surface
// kCorruption), every writeback stamps the header with the current CRC and
// page LSN. Clients see only the payload behind the header via
// PageHandle::data()/page_size(), so slotted-page and B+tree layouts are
// format-agnostic.
#ifndef XDB_STORAGE_BUFFER_MANAGER_H_
#define XDB_STORAGE_BUFFER_MANAGER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/event_log.h"
#include "obs/wait_state.h"
#include "storage/page.h"
#include "storage/tablespace.h"

namespace xdb {

class BufferManager;

namespace internal {
// Frame bookkeeping (page_id, pin_count, in_lru, lru_pos) is protected by the
// owning shard's mutex; `shard` is fixed at construction. `data` and `dirty`
// belong exclusively to the pinning thread between FixPage and Unpin; once
// the frame is unpinned, the shard mutex hands them over to
// eviction/writeback (Unpin's lock release is the synchronization point).
// Concurrent pinners of one page may read `data` together; mutation requires
// a higher-level latch (the collection latch) excluding other pinners.
struct Frame {
  PageId page_id = kInvalidPageId;
  int pin_count = 0;
  bool dirty = false;
  std::unique_ptr<char[]> data;
  std::list<Frame*>::iterator lru_pos;
  bool in_lru = false;
  /// Owning shard index. Changes only in BorrowFrame, while the frame is
  /// unpublished (no table entry, pin_count 0) under the donor shard's lock;
  /// pinners see the write via the destination shard's mutex when the frame
  /// is published there.
  uint32_t shard = 0;
};
}  // namespace internal

/// RAII pin on a buffered page. Movable, not copyable; unpins on destruction.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return frame_ != nullptr; }
  PageId page_id() const { return page_id_; }
  const char* data() const { return frame_->data.get() + offset_; }
  /// Mutable access; marks the page dirty.
  char* MutableData();
  /// Explicit early unpin (also done by the destructor).
  void Release();

 private:
  friend class BufferManager;
  PageHandle(BufferManager* bm, internal::Frame* frame, PageId id,
             uint32_t offset)
      : bm_(bm), frame_(frame), page_id_(id), offset_(offset) {}

  BufferManager* bm_ = nullptr;
  internal::Frame* frame_ = nullptr;
  PageId page_id_ = kInvalidPageId;
  uint32_t offset_ = 0;
};

/// Per-shard (and aggregated) pool counters. `checksum_failures` lives here
/// — not on the tablespace IoStats — because page verification is this
/// layer's job; the metrics registry surfaces it as
/// `buffer.checksum_failures` (single source of truth).
struct BufferManagerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t checksum_failures = 0;
};

class BufferManager {
 public:
  /// `capacity` is the number of page frames held in memory, divided evenly
  /// across `shards` (0 = DefaultShardCount; rounded down to a power of two
  /// and clamped so every shard owns at least one frame). A shard whose
  /// frames are all pinned borrows from other shards, so the pool only
  /// reports Busy once all `capacity` frames are pinned — pin capacity is
  /// not reduced to capacity/shards by skewed page-id distributions.
  BufferManager(TableSpace* space, size_t capacity, size_t shards = 0);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Sizing policy for `shards = 0`: one shard per 64 frames, capped at 8,
  /// rounded down to a power of two. Small pools (tests, tiny collections)
  /// stay single-shard and behave exactly like the unsharded manager.
  static size_t DefaultShardCount(size_t capacity);

  /// Pins page `id`, reading it from the table space on a miss. Returns
  /// kCorruption (and quarantines the page) when its checksum fails.
  Result<PageHandle> FixPage(PageId id);

  /// Allocates a fresh page in the table space and pins it.
  Result<PageHandle> NewPage();

  /// Unpins and frees page `id` back to the table space. The page must not
  /// be pinned by anyone else.
  Status FreePage(PageId id);

  /// Writes back all dirty pages. Callers must exclude concurrent page
  /// writers (the engine holds the collection latch across checkpoints).
  Status FlushAll();

  /// WAL position stamped into page headers on writeback (page LSN). Unset,
  /// pages are stamped with LSN 0.
  void set_lsn_source(std::function<uint64_t()> source) XDB_EXCLUDES(lsn_mu_) {
    MutexLock lock(lsn_mu_);
    lsn_source_ = std::move(source);
  }

  /// Pages whose checksum failed; they stay unreadable until repaired.
  /// Sorted, so the report is deterministic across shard layouts.
  std::vector<PageId> quarantined_pages() const;

  TableSpace* space() { return space_; }
  /// Client-usable bytes per page (physical size minus the page header).
  uint32_t page_size() const { return space_->usable_page_size(); }

  size_t shard_count() const { return shards_.size(); }
  /// Counters of one shard (copied under its lock); tests verify that the
  /// aggregate equals the per-shard sum.
  BufferManagerStats shard_stats(size_t shard) const;
  /// Aggregate counters summed across all shards.
  BufferManagerStats stats() const;
  void ResetStats();

  /// Destination for kPageQuarantined events (engine-owned, may be null).
  void set_event_log(obs::EventLog* events) { events_ = events; }

  /// Destination for kBufferIo wait spans covering miss-path page reads
  /// (engine-owned, may be null). The hit path never touches it.
  void set_wait_sink(obs::WaitSink* sink) { wait_sink_ = sink; }

  /// Frames currently holding a page (published in some shard's table),
  /// summed across shards. With `capacity()` this is the pool residency
  /// reported by Engine::DebugSnapshot().
  size_t resident_frames() const;
  size_t capacity() const { return capacity_; }

 private:
  friend class PageHandle;

  /// One independent slice of the cache: its own lock, table, LRU and stats.
  struct Shard {
    mutable Mutex mu{LockRank::kBufferShard};
    std::unordered_map<PageId, internal::Frame*> table XDB_GUARDED_BY(mu);
    std::unordered_set<PageId> quarantined XDB_GUARDED_BY(mu);
    /// front = coldest unpinned frame
    std::list<internal::Frame*> lru XDB_GUARDED_BY(mu);
    std::vector<internal::Frame*> free_frames XDB_GUARDED_BY(mu);
    BufferManagerStats stats XDB_GUARDED_BY(mu);
  };

  /// Fibonacci-hash of the page id onto a shard; adjacent page ids (B+tree
  /// node chains, record pages) spread across shards instead of clustering.
  size_t ShardIndex(PageId id) const {
    return static_cast<size_t>((id * 0x9E3779B97F4A7C15ull) >> 32) &
           shard_mask_;
  }
  Shard& ShardFor(PageId id) { return *shards_[ShardIndex(id)]; }
  const Shard& ShardFor(PageId id) const { return *shards_[ShardIndex(id)]; }

  void Unpin(internal::Frame* frame);
  Result<internal::Frame*> GetFreeFrame(Shard& shard) XDB_REQUIRES(shard.mu);
  /// Takes a free (or evictable) frame from some other shard and re-homes it
  /// to shard `dst`, so one shard's pins can spill into the whole pool.
  /// Returns Busy only when every frame of every shard is pinned. Locks one
  /// donor shard at a time and never two shard mutexes together; callers
  /// must NOT hold any shard lock.
  Result<internal::Frame*> BorrowFrame(size_t dst);
  Status WriteBack(Shard& shard, internal::Frame* frame)
      XDB_REQUIRES(shard.mu);

  TableSpace* space_;
  size_t capacity_;
  uint32_t data_offset_;
  bool checksums_;
  /// Leaf lock (acquired inside a shard lock during writeback).
  mutable Mutex lsn_mu_{LockRank::kBufferLsn};
  std::function<uint64_t()> lsn_source_ XDB_GUARDED_BY(lsn_mu_);
  std::vector<std::unique_ptr<Shard>> shards_;  // fixed after ctor
  size_t shard_mask_ = 0;
  obs::EventLog* events_ = nullptr;
  obs::WaitSink* wait_sink_ = nullptr;
  std::vector<std::unique_ptr<internal::Frame>> frames_;  // fixed after ctor
};

}  // namespace xdb

#endif  // XDB_STORAGE_BUFFER_MANAGER_H_
