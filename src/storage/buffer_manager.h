// BufferManager: fixed-capacity page cache over a TableSpace with pinning,
// dirty tracking, and LRU replacement — the paper's reused "buffer manager"
// infrastructure component.
#ifndef XDB_STORAGE_BUFFER_MANAGER_H_
#define XDB_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/tablespace.h"

namespace xdb {

class BufferManager;

namespace internal {
struct Frame {
  PageId page_id = kInvalidPageId;
  int pin_count = 0;
  bool dirty = false;
  std::unique_ptr<char[]> data;
  std::list<Frame*>::iterator lru_pos;
  bool in_lru = false;
};
}  // namespace internal

/// RAII pin on a buffered page. Movable, not copyable; unpins on destruction.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return frame_ != nullptr; }
  PageId page_id() const { return page_id_; }
  const char* data() const { return frame_->data.get(); }
  /// Mutable access; marks the page dirty.
  char* MutableData();
  /// Explicit early unpin (also done by the destructor).
  void Release();

 private:
  friend class BufferManager;
  PageHandle(BufferManager* bm, internal::Frame* frame, PageId id)
      : bm_(bm), frame_(frame), page_id_(id) {}

  BufferManager* bm_ = nullptr;
  internal::Frame* frame_ = nullptr;
  PageId page_id_ = kInvalidPageId;
};

struct BufferManagerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

class BufferManager {
 public:
  /// `capacity` is the number of page frames held in memory.
  BufferManager(TableSpace* space, size_t capacity);
  ~BufferManager();
  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins page `id`, reading it from the table space on a miss.
  Result<PageHandle> FixPage(PageId id);

  /// Allocates a fresh page in the table space and pins it.
  Result<PageHandle> NewPage();

  /// Unpins and frees page `id` back to the table space. The page must not
  /// be pinned by anyone else.
  Status FreePage(PageId id);

  /// Writes back all dirty pages.
  Status FlushAll();

  TableSpace* space() { return space_; }
  uint32_t page_size() const { return space_->page_size(); }
  const BufferManagerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferManagerStats{}; }

 private:
  friend class PageHandle;

  void Unpin(internal::Frame* frame);
  // Both called with mu_ held.
  Result<internal::Frame*> GetFreeFrame();
  Status WriteBack(internal::Frame* frame);

  TableSpace* space_;
  size_t capacity_;
  std::mutex mu_;
  std::unordered_map<PageId, internal::Frame*> table_;
  std::list<internal::Frame*> lru_;  // front = coldest unpinned frame
  std::vector<std::unique_ptr<internal::Frame>> frames_;
  std::vector<internal::Frame*> free_frames_;
  BufferManagerStats stats_;
};

}  // namespace xdb

#endif  // XDB_STORAGE_BUFFER_MANAGER_H_
