#include "storage/record_manager.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace xdb {

namespace {
// Data page layout:
//   [0]  type          u8
//   [1]  flags         u8
//   [2]  nslots        u16
//   [4]  cell_start    u16  (lowest offset occupied by the cell area)
//   [6]  reserved      u16
//   [8]  slot array    nslots * 4 bytes: {offset u16, len u16}; offset 0 =
//        free slot
// Cells are allocated downward from the end of the page.
constexpr uint32_t kPageHeader = 8;
constexpr uint32_t kSlotSize = 4;

// Overflow page layout: [0] type u8, [1] pad, [2] len u16, [4] next u32,
// [8] data.
constexpr uint32_t kOverflowHeader = 8;

uint16_t GetNumSlots(const char* p) { return DecodeFixed16(p + 2); }
void SetNumSlots(char* p, uint16_t n) { EncodeFixed16(p + 2, n); }
uint16_t GetCellStart(const char* p) { return DecodeFixed16(p + 4); }
void SetCellStart(char* p, uint16_t v) { EncodeFixed16(p + 4, v); }

void ReadSlot(const char* p, uint16_t slot, uint16_t* off, uint16_t* len) {
  const char* s = p + kPageHeader + slot * kSlotSize;
  *off = DecodeFixed16(s);
  *len = DecodeFixed16(s + 2);
}
void WriteSlot(char* p, uint16_t slot, uint16_t off, uint16_t len) {
  char* s = p + kPageHeader + slot * kSlotSize;
  EncodeFixed16(s, off);
  EncodeFixed16(s + 2, len);
}

uint32_t ContiguousFree(const char* p) {
  uint16_t nslots = GetNumSlots(p);
  uint16_t cell_start = GetCellStart(p);
  uint32_t used_front = kPageHeader + nslots * kSlotSize;
  return cell_start > used_front ? cell_start - used_front : 0;
}

// Total reclaimable free space (requires compaction to become contiguous).
uint32_t TotalFree(const char* p, uint32_t page_size) {
  uint16_t nslots = GetNumSlots(p);
  uint32_t live = 0;
  for (uint16_t i = 0; i < nslots; i++) {
    uint16_t off, len;
    ReadSlot(p, i, &off, &len);
    if (off != 0) live += len;
  }
  return page_size - kPageHeader - nslots * kSlotSize - live;
}

void InitDataPage(char* p, uint32_t page_size) {
  std::memset(p, 0, kPageHeader);
  p[0] = static_cast<char>(kDataPage);
  SetNumSlots(p, 0);
  SetCellStart(p, static_cast<uint16_t>(page_size));
}

// Rewrites all live cells against the end of the page, restoring contiguous
// free space.
void CompactPage(char* p, uint32_t page_size) {
  uint16_t nslots = GetNumSlots(p);
  std::string copies;
  std::vector<std::pair<uint16_t, uint16_t>> live;  // slot, len
  for (uint16_t i = 0; i < nslots; i++) {
    uint16_t off, len;
    ReadSlot(p, i, &off, &len);
    if (off != 0) {
      copies.append(p + off, len);
      live.emplace_back(i, len);
    }
  }
  uint32_t write_end = page_size;
  size_t src = 0;
  for (auto [slot, len] : live) {
    write_end -= len;
    std::memcpy(p + write_end, copies.data() + src, len);
    WriteSlot(p, slot, static_cast<uint16_t>(write_end), len);
    src += len;
  }
  SetCellStart(p, static_cast<uint16_t>(write_end));
}

}  // namespace

RecordManager::RecordManager(BufferManager* bm) : bm_(bm) {}

Status RecordManager::VerifyDataPage(const char* page, uint32_t page_size) {
  if (static_cast<uint8_t>(page[0]) != kDataPage)
    return Status::InvalidArgument("not a data page");
  uint16_t nslots = GetNumSlots(page);
  uint16_t cell_start = GetCellStart(page);
  uint32_t slots_end = kPageHeader + static_cast<uint32_t>(nslots) * kSlotSize;
  if (slots_end > page_size)
    return Status::Corruption("slot directory overruns page");
  if (cell_start > page_size || cell_start < slots_end)
    return Status::Corruption("cell area out of bounds");
  for (uint16_t s = 0; s < nslots; s++) {
    uint16_t off, len;
    ReadSlot(page, s, &off, &len);
    if (off == 0) continue;
    if (off < cell_start || static_cast<uint32_t>(off) + len > page_size)
      return Status::Corruption("cell extent out of bounds (slot " +
                                std::to_string(s) + ")");
    if (len == 0) return Status::Corruption("zero-length occupied cell");
    uint8_t flag = static_cast<uint8_t>(page[off]);
    if (flag > kInlinePadded)
      return Status::Corruption("bad cell flag (slot " + std::to_string(s) +
                                ")");
  }
  return Status::OK();
}

Status RecordManager::Recover() {
  MutexLock lock(mu_);
  free_space_.clear();
  overflow_pages_ = 0;
  stats_ = RecordManagerStats{};
  const PageId n = bm_->space()->page_count();
  for (PageId id = 1; id < n; id++) {
    auto res = bm_->FixPage(id);
    if (!res.ok()) {
      // A corrupt page costs only the records it held: skip it (it stays
      // quarantined in the buffer manager) so the rest of the space opens.
      if (res.status().IsCorruption()) {
        stats_.corrupt_pages++;
        continue;
      }
      return res.status();
    }
    PageHandle page = res.MoveValue();
    uint8_t type = static_cast<uint8_t>(page.data()[0]);
    if (type == kDataPage) {
      const char* p = page.data();
      free_space_[id] = TotalFree(p, bm_->page_size());
      stats_.data_pages++;
      uint16_t nslots = GetNumSlots(p);
      for (uint16_t s = 0; s < nslots; s++) {
        uint16_t off, len;
        ReadSlot(p, s, &off, &len);
        if (off == 0) continue;
        uint8_t flag = static_cast<uint8_t>(p[off]);
        // Forwarding stubs and moved-in targets count as one record via the
        // home cell only.
        if (flag != kMovedIn) stats_.live_records++;
      }
    } else if (type == kOverflowPage) {
      overflow_pages_++;
    }
  }
  return Status::OK();
}

Result<Rid> RecordManager::InsertCell(uint8_t flag, Slice payload,
                                      Slice home_rid_prefix) {
  const uint32_t page_size = bm_->page_size();
  const uint32_t cell_len =
      1 + static_cast<uint32_t>(home_rid_prefix.size() + payload.size());
  // Worst case we also need a new slot entry.
  const uint32_t need = cell_len + kSlotSize;

  MutexLock lock(mu_);
  PageId target = kInvalidPageId;
  for (auto& [id, free] : free_space_) {
    if (free >= need) {
      target = id;
      break;
    }
  }
  PageHandle page;
  if (target == kInvalidPageId) {
    XDB_ASSIGN_OR_RETURN(page, bm_->NewPage());
    InitDataPage(page.MutableData(), page_size);
    target = page.page_id();
    stats_.data_pages++;
  } else {
    XDB_ASSIGN_OR_RETURN(page, bm_->FixPage(target));
  }
  char* p = page.MutableData();

  // Find a free slot or append one.
  uint16_t nslots = GetNumSlots(p);
  uint16_t slot = nslots;
  for (uint16_t i = 0; i < nslots; i++) {
    uint16_t off, len;
    ReadSlot(p, i, &off, &len);
    if (off == 0) {
      slot = i;
      break;
    }
  }
  uint32_t slot_cost = (slot == nslots) ? kSlotSize : 0;
  if (ContiguousFree(p) < cell_len + slot_cost) {
    CompactPage(p, page_size);
    if (ContiguousFree(p) < cell_len + slot_cost)
      return Status::Corruption("free-space map out of sync with page");
  }
  if (slot == nslots) SetNumSlots(p, static_cast<uint16_t>(nslots + 1));

  uint16_t cell_start = GetCellStart(p);
  uint16_t off = static_cast<uint16_t>(cell_start - cell_len);
  p[off] = static_cast<char>(flag);
  std::memcpy(p + off + 1, home_rid_prefix.data(), home_rid_prefix.size());
  std::memcpy(p + off + 1 + home_rid_prefix.size(), payload.data(),
              payload.size());
  SetCellStart(p, off);
  WriteSlot(p, slot, off, static_cast<uint16_t>(cell_len));
  free_space_[target] = TotalFree(p, page_size);
  return Rid{target, slot};
}

Status RecordManager::WriteOverflowChain(Slice data, PageId* first_page) {
  const uint32_t page_size = bm_->page_size();
  const uint32_t chunk = page_size - kOverflowHeader;
  PageId prev = kInvalidPageId;
  PageId first = kInvalidPageId;
  size_t pos = 0;
  PageHandle prev_page;
  while (pos < data.size() || first == kInvalidPageId) {
    XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->NewPage());
    char* p = page.MutableData();
    p[0] = static_cast<char>(kOverflowPage);
    size_t n = std::min<size_t>(chunk, data.size() - pos);
    EncodeFixed16(p + 2, static_cast<uint16_t>(n));
    EncodeFixed32(p + 4, kInvalidPageId);
    std::memcpy(p + kOverflowHeader, data.data() + pos, n);
    pos += n;
    {
      MutexLock lock(mu_);
      overflow_pages_++;
    }
    if (prev == kInvalidPageId) {
      first = page.page_id();
    } else {
      EncodeFixed32(prev_page.MutableData() + 4, page.page_id());
    }
    prev = page.page_id();
    prev_page = std::move(page);
    if (pos >= data.size()) break;
  }
  *first_page = first;
  return Status::OK();
}

Status RecordManager::FreeOverflowChain(PageId first_page) {
  PageId id = first_page;
  while (id != kInvalidPageId) {
    PageId next;
    {
      XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(id));
      if (static_cast<uint8_t>(page.data()[0]) != kOverflowPage)
        return Status::Corruption("overflow chain hits non-overflow page");
      next = DecodeFixed32(page.data() + 4);
    }
    XDB_RETURN_NOT_OK(bm_->FreePage(id));
    {
      MutexLock lock(mu_);
      overflow_pages_--;
    }
    id = next;
  }
  return Status::OK();
}

Status RecordManager::ReadOverflowChain(PageId first_page, uint32_t total_len,
                                        std::string* out) {
  out->clear();
  out->reserve(total_len);
  PageId id = first_page;
  while (id != kInvalidPageId && out->size() < total_len) {
    XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(id));
    if (static_cast<uint8_t>(page.data()[0]) != kOverflowPage)
      return Status::Corruption("overflow chain hits non-overflow page");
    uint16_t len = DecodeFixed16(page.data() + 2);
    out->append(page.data() + kOverflowHeader, len);
    id = DecodeFixed32(page.data() + 4);
  }
  if (out->size() != total_len)
    return Status::Corruption("overflow chain truncated");
  return Status::OK();
}

Result<Rid> RecordManager::Insert(Slice record) {
  const uint32_t page_size = bm_->page_size();
  const uint32_t max_inline = page_size - kPageHeader - kSlotSize - 1;
  {
    MutexLock lock(mu_);
    stats_.inserts++;
    stats_.live_records++;
  }
  if (record.size() + 1 < kMinCell) {
    // Pad so the cell can later be rewritten as a forward/overflow stub.
    std::string padded;
    padded.push_back(static_cast<char>(record.size()));
    padded.append(record.data(), record.size());
    padded.resize(kMinCell - 1, '\0');
    return InsertCell(kInlinePadded, padded, Slice());
  }
  if (record.size() <= max_inline) {
    return InsertCell(kInline, record, Slice());
  }
  // Overflow: the cell holds {total_len, first_page}.
  PageId first;
  XDB_RETURN_NOT_OK(WriteOverflowChain(record, &first));
  std::string cell;
  PutFixed32(&cell, static_cast<uint32_t>(record.size()));
  PutFixed32(&cell, first);
  {
    MutexLock lock(mu_);
    stats_.overflow_records++;
  }
  return InsertCell(kOverflow, cell, Slice());
}

Status RecordManager::Get(Rid rid, std::string* out) {
  XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(rid.page_id));
  const char* p = page.data();
  if (static_cast<uint8_t>(p[0]) != kDataPage)
    return Status::InvalidArgument("RID does not address a data page");
  if (rid.slot >= GetNumSlots(p)) return Status::NotFound("no such slot");
  uint16_t off, len;
  ReadSlot(p, rid.slot, &off, &len);
  if (off == 0) return Status::NotFound("deleted record");
  uint8_t flag = static_cast<uint8_t>(p[off]);
  switch (flag) {
    case kInline:
      out->assign(p + off + 1, len - 1);
      return Status::OK();
    case kInlinePadded: {
      uint8_t plen = static_cast<uint8_t>(p[off + 1]);
      out->assign(p + off + 2, plen);
      return Status::OK();
    }
    case kOverflow: {
      uint32_t total_len = DecodeFixed32(p + off + 1);
      PageId first = DecodeFixed32(p + off + 5);
      page.Release();
      return ReadOverflowChain(first, total_len, out);
    }
    case kForward: {
      Rid target = Rid::Unpack(DecodeFixed64(p + off + 1));
      page.Release();
      XDB_ASSIGN_OR_RETURN(PageHandle tp, bm_->FixPage(target.page_id));
      const char* q = tp.data();
      uint16_t toff, tlen;
      ReadSlot(q, target.slot, &toff, &tlen);
      if (toff == 0 || static_cast<uint8_t>(q[toff]) != kMovedIn)
        return Status::Corruption("dangling forwarding pointer");
      out->assign(q + toff + 1 + 8, tlen - 1 - 8);
      return Status::OK();
    }
    case kMovedIn:
      return Status::InvalidArgument("RID addresses a relocated cell");
    default:
      return Status::Corruption("bad cell flag");
  }
}

Status RecordManager::FreeCellAt(PageHandle& page, uint16_t slot) {
  char* p = page.MutableData();
  uint16_t off, len;
  ReadSlot(p, slot, &off, &len);
  if (off == 0) return Status::NotFound("deleted record");
  WriteSlot(p, slot, 0, 0);
  MutexLock lock(mu_);
  free_space_[page.page_id()] = TotalFree(p, bm_->page_size());
  return Status::OK();
}

Status RecordManager::Delete(Rid rid) {
  {
    MutexLock lock(mu_);
    stats_.deletes++;
    if (stats_.live_records > 0) stats_.live_records--;
  }
  XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(rid.page_id));
  char* p = page.MutableData();
  if (static_cast<uint8_t>(p[0]) != kDataPage)
    return Status::InvalidArgument("RID does not address a data page");
  if (rid.slot >= GetNumSlots(p)) return Status::NotFound("no such slot");
  uint16_t off, len;
  ReadSlot(p, rid.slot, &off, &len);
  if (off == 0) return Status::NotFound("deleted record");
  uint8_t flag = static_cast<uint8_t>(p[off]);
  if (flag == kOverflow) {
    PageId first = DecodeFixed32(p + off + 5);
    XDB_RETURN_NOT_OK(FreeOverflowChain(first));
  } else if (flag == kForward) {
    Rid target = Rid::Unpack(DecodeFixed64(p + off + 1));
    XDB_ASSIGN_OR_RETURN(PageHandle tp, bm_->FixPage(target.page_id));
    XDB_RETURN_NOT_OK(FreeCellAt(tp, target.slot));
  }
  return FreeCellAt(page, rid.slot);
}

Status RecordManager::Update(Rid rid, Slice record) {
  {
    MutexLock lock(mu_);
    stats_.updates++;
  }
  const uint32_t page_size = bm_->page_size();
  const uint32_t max_inline = page_size - kPageHeader - kSlotSize - 1;

  XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(rid.page_id));
  char* p = page.MutableData();
  if (static_cast<uint8_t>(p[0]) != kDataPage)
    return Status::InvalidArgument("RID does not address a data page");
  if (rid.slot >= GetNumSlots(p)) return Status::NotFound("no such slot");
  uint16_t off, len;
  ReadSlot(p, rid.slot, &off, &len);
  if (off == 0) return Status::NotFound("deleted record");
  uint8_t flag = static_cast<uint8_t>(p[off]);

  // Release resources OUTSIDE the home page held by the old incarnation.
  // The home slot itself stays occupied until the new placement is decided,
  // so a relocation can never be handed the home slot and produce a
  // forwarding pointer to itself.
  if (flag == kOverflow) {
    PageId first = DecodeFixed32(p + off + 5);
    XDB_RETURN_NOT_OK(FreeOverflowChain(first));
  } else if (flag == kForward) {
    Rid target = Rid::Unpack(DecodeFixed64(p + off + 1));
    XDB_ASSIGN_OR_RETURN(PageHandle tp, bm_->FixPage(target.page_id));
    XDB_RETURN_NOT_OK(FreeCellAt(tp, target.slot));
  }

  // Frees the home slot and places a new cell there. `old_len` bytes come
  // back when the dead cell is compacted away.
  auto place_home = [&](uint8_t new_flag, Slice payload) -> bool {
    uint32_t cell_len = 1 + static_cast<uint32_t>(payload.size());
    WriteSlot(p, rid.slot, 0, 0);
    if (TotalFree(p, page_size) < cell_len) return false;
    if (ContiguousFree(p) < cell_len) CompactPage(p, page_size);
    uint16_t cell_start = GetCellStart(p);
    uint16_t noff = static_cast<uint16_t>(cell_start - cell_len);
    p[noff] = static_cast<char>(new_flag);
    std::memcpy(p + noff + 1, payload.data(), payload.size());
    SetCellStart(p, noff);
    WriteSlot(p, rid.slot, noff, static_cast<uint16_t>(cell_len));
    return true;
  };
  auto sync_free_space = [&] {
    MutexLock lock(mu_);
    free_space_[rid.page_id] = TotalFree(p, page_size);
  };

  // A relocated cell needs 8 extra bytes for the home-RID prefix, so the
  // update-time inline threshold is tighter than the insert-time one.
  if (record.size() + 8 > max_inline) {
    PageId first;
    XDB_RETURN_NOT_OK(WriteOverflowChain(record, &first));
    std::string cell;
    PutFixed32(&cell, static_cast<uint32_t>(record.size()));
    PutFixed32(&cell, first);
    {
      MutexLock lock(mu_);
      stats_.overflow_records++;
    }
    if (!place_home(kOverflow, cell))
      return Status::Corruption("no room for overflow stub after free");
    sync_free_space();
    return Status::OK();
  }

  // Try in place: worth it iff the page has room once the old cell's bytes
  // are reclaimed. Tiny payloads keep the padded form.
  if (record.size() + 1 < kMinCell) {
    std::string padded;
    padded.push_back(static_cast<char>(record.size()));
    padded.append(record.data(), record.size());
    padded.resize(kMinCell - 1, '\0');
    if (TotalFree(p, page_size) + len >= kMinCell &&
        place_home(kInlinePadded, padded)) {
      sync_free_space();
      return Status::OK();
    }
  } else if (TotalFree(p, page_size) + len >= record.size() + 1 &&
             place_home(kInline, record)) {
    sync_free_space();
    return Status::OK();
  }

  // Relocate: moved-in cell elsewhere (home slot still occupied, so it can
  // never be chosen), then a forwarding pointer at home.
  std::string home_prefix;
  PutFixed64(&home_prefix, rid.Pack());
  XDB_ASSIGN_OR_RETURN(Rid target, InsertCell(kMovedIn, record, home_prefix));
  std::string fwd;
  PutFixed64(&fwd, target.Pack());
  if (!place_home(kForward, fwd))
    return Status::Corruption("no room for forwarding pointer after free");
  sync_free_space();
  return Status::OK();
}

Status RecordManager::ScanAll(
    const std::function<Status(Rid, Slice)>& visitor) {
  const PageId n = bm_->space()->page_count();
  for (PageId id = 1; id < n; id++) {
    XDB_ASSIGN_OR_RETURN(PageHandle page, bm_->FixPage(id));
    const char* p = page.data();
    if (static_cast<uint8_t>(p[0]) != kDataPage) continue;
    uint16_t nslots = GetNumSlots(p);
    for (uint16_t s = 0; s < nslots; s++) {
      uint16_t off, len;
      ReadSlot(p, s, &off, &len);
      if (off == 0) continue;
      uint8_t flag = static_cast<uint8_t>(p[off]);
      switch (flag) {
        case kInline:
          XDB_RETURN_NOT_OK(visitor(Rid{id, s}, Slice(p + off + 1, len - 1)));
          break;
        case kInlinePadded: {
          uint8_t plen = static_cast<uint8_t>(p[off + 1]);
          XDB_RETURN_NOT_OK(visitor(Rid{id, s}, Slice(p + off + 2, plen)));
          break;
        }
        case kOverflow: {
          uint32_t total_len = DecodeFixed32(p + off + 1);
          PageId first = DecodeFixed32(p + off + 5);
          std::string data;
          XDB_RETURN_NOT_OK(ReadOverflowChain(first, total_len, &data));
          XDB_RETURN_NOT_OK(visitor(Rid{id, s}, Slice(data)));
          break;
        }
        case kMovedIn: {
          Rid home = Rid::Unpack(DecodeFixed64(p + off + 1));
          XDB_RETURN_NOT_OK(
              visitor(home, Slice(p + off + 1 + 8, len - 1 - 8)));
          break;
        }
        case kForward:
          break;  // reported via its moved-in cell
        default:
          return Status::Corruption("bad cell flag in scan");
      }
    }
  }
  return Status::OK();
}

uint64_t RecordManager::StorageBytes() const {
  MutexLock lock(mu_);
  return (stats_.data_pages + overflow_pages_) * bm_->page_size();
}

}  // namespace xdb
