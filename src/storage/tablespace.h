// TableSpace: a file of fixed-size pages with a free list.
//
// Both relational-style tables and the internal XML tables of the paper's
// Figure 2 live in table spaces; "relational table spaces are well tuned for
// efficient space management, reliability and scalability" — this is that
// substrate, reduced to its load-bearing essentials.
//
// Format v2 reserves a 16-byte checksummed header (see storage/page.h) at
// the front of every page; the BufferManager verifies/stamps it, this layer
// stays checksum-agnostic for raw page I/O. v1 files (no page headers) still
// open and run unverified — the migration path. All physical I/O is wrapped
// in a transient-retry policy with per-space IoStats.
#ifndef XDB_STORAGE_TABLESPACE_H_
#define XDB_STORAGE_TABLESPACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/io_retry.h"
#include "storage/page.h"

namespace xdb {

struct TableSpaceOptions {
  uint32_t page_size = kDefaultPageSize;
  /// In-memory table spaces keep pages in RAM only — used by tests and by
  /// CPU-bound benchmarks to take file-system noise out of measurements.
  bool in_memory = false;
  /// Create with per-page checksummed headers (format v2). Off produces a
  /// legacy v1 space — kept for migration tests and the checksum-overhead
  /// bench.
  bool page_checksums = true;
};

/// A fixed-page-size storage container. Page 0 is the space header; data
/// pages are allocated from a free list or by extending the file.
class TableSpace {
 public:
  ~TableSpace();
  TableSpace(const TableSpace&) = delete;
  TableSpace& operator=(const TableSpace&) = delete;

  /// Creates a new table space (truncates any existing file).
  static Result<std::unique_ptr<TableSpace>> Create(
      const std::string& path, const TableSpaceOptions& options = {});

  /// Opens an existing table space, validating the header.
  static Result<std::unique_ptr<TableSpace>> Open(
      const std::string& path, const TableSpaceOptions& options = {});

  uint32_t page_size() const { return page_size_; }
  /// Number of pages including the header page.
  PageId page_count() const {
    return page_count_.load(std::memory_order_acquire);
  }

  /// On-disk format: kTableSpaceFormatV1 (no page headers) or V2.
  uint32_t format_version() const { return format_version_; }
  /// Bytes of physical page reserved for the page header.
  uint32_t data_offset() const {
    return format_version_ >= kTableSpaceFormatV2 ? kPageHeaderSize : 0;
  }
  /// Client-visible bytes per page.
  uint32_t usable_page_size() const { return page_size_ - data_offset(); }

  /// Allocates a page (zeroed on return via the free list or extension).
  Result<PageId> AllocatePage() XDB_EXCLUDES(mu_);
  /// Returns a page to the free list.
  Status FreePage(PageId id) XDB_EXCLUDES(mu_);

  /// Reads page `id` into `buf` (page_size bytes).
  Status ReadPage(PageId id, char* buf);
  /// Writes page `id` from `buf` (page_size bytes).
  Status WritePage(PageId id, const char* buf);

  /// Flushes OS buffers to stable storage (no-op for in-memory spaces).
  Status Sync() XDB_EXCLUDES(mu_);

  /// Truncates the space back to an empty header-only state (scrub/repair
  /// rebuilds into a Reset space). Keeps page size and format.
  Status Reset() XDB_EXCLUDES(mu_);

  void set_retry_policy(const RetryPolicy& p) { retry_policy_ = p; }
  void set_io_clock(IoClock* clock) { clock_ = clock; }
  /// Destination for kIoRetry events (engine-owned; may outlive nothing —
  /// the engine's log is destroyed after every component).
  void set_event_log(obs::EventLog* events) { events_ = events; }
  IoStatsSnapshot io_stats() const { return SnapshotIoStats(io_stats_); }
  IoStats* mutable_io_stats() { return &io_stats_; }

 private:
  TableSpace() = default;

  Status ReadHeader() XDB_EXCLUDES(mu_);
  /// Serializes allocation state (page_count_, free_list_head_) to page 0;
  /// callers hold mu_ so the header never captures a half-updated free list.
  Status WriteHeader() XDB_REQUIRES(mu_);
  Status ReadPageImpl(PageId id, char* buf) XDB_EXCLUDES(mu_);
  Status WritePageImpl(PageId id, const char* buf) XDB_EXCLUDES(mu_);

  mutable Mutex mu_{LockRank::kTableSpace};
  int fd_ = -1;
  bool in_memory_ = false;
  uint32_t page_size_ = kDefaultPageSize;
  uint32_t format_version_ = kTableSpaceFormatV2;
  /// Written under mu_; read lock-free by page-bounds checks and accessors.
  std::atomic<PageId> page_count_{0};
  PageId free_list_head_ XDB_GUARDED_BY(mu_) = kInvalidPageId;
  std::vector<std::unique_ptr<char[]>> mem_pages_ XDB_GUARDED_BY(mu_);
  RetryPolicy retry_policy_;
  IoClock* clock_ = nullptr;
  IoStats io_stats_;
  obs::EventLog* events_ = nullptr;
};

}  // namespace xdb

#endif  // XDB_STORAGE_TABLESPACE_H_
