// TableSpace: a file of fixed-size pages with a free list.
//
// Both relational-style tables and the internal XML tables of the paper's
// Figure 2 live in table spaces; "relational table spaces are well tuned for
// efficient space management, reliability and scalability" — this is that
// substrate, reduced to its load-bearing essentials.
#ifndef XDB_STORAGE_TABLESPACE_H_
#define XDB_STORAGE_TABLESPACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace xdb {

struct TableSpaceOptions {
  uint32_t page_size = kDefaultPageSize;
  /// In-memory table spaces keep pages in RAM only — used by tests and by
  /// CPU-bound benchmarks to take file-system noise out of measurements.
  bool in_memory = false;
};

/// A fixed-page-size storage container. Page 0 is the space header; data
/// pages are allocated from a free list or by extending the file.
class TableSpace {
 public:
  ~TableSpace();
  TableSpace(const TableSpace&) = delete;
  TableSpace& operator=(const TableSpace&) = delete;

  /// Creates a new table space (truncates any existing file).
  static Result<std::unique_ptr<TableSpace>> Create(
      const std::string& path, const TableSpaceOptions& options = {});

  /// Opens an existing table space, validating the header.
  static Result<std::unique_ptr<TableSpace>> Open(
      const std::string& path, const TableSpaceOptions& options = {});

  uint32_t page_size() const { return page_size_; }
  /// Number of pages including the header page.
  PageId page_count() const { return page_count_; }

  /// Allocates a page (zeroed on return via the free list or extension).
  Result<PageId> AllocatePage();
  /// Returns a page to the free list.
  Status FreePage(PageId id);

  /// Reads page `id` into `buf` (page_size bytes).
  Status ReadPage(PageId id, char* buf);
  /// Writes page `id` from `buf` (page_size bytes).
  Status WritePage(PageId id, const char* buf);

  /// Flushes OS buffers to stable storage (no-op for in-memory spaces).
  Status Sync();

 private:
  TableSpace() = default;

  Status ReadHeader();
  Status WriteHeader();

  std::mutex mu_;
  int fd_ = -1;
  bool in_memory_ = false;
  uint32_t page_size_ = kDefaultPageSize;
  PageId page_count_ = 0;
  PageId free_list_head_ = kInvalidPageId;
  std::vector<std::unique_ptr<char[]>> mem_pages_;
};

}  // namespace xdb

#endif  // XDB_STORAGE_TABLESPACE_H_
