// RecordManager: variable-length records in slotted pages, addressed by RID.
//
// This is the "data manager" of the paper's reused infrastructure. Packed XML
// records, base-table rows, and shredded node rows are all stored here; to
// this layer they are opaque byte strings. Records larger than a page spill
// to overflow page chains; relocated records leave a forwarding pointer so
// RIDs stay stable (value and NodeID indexes store RIDs).
#ifndef XDB_STORAGE_RECORD_MANAGER_H_
#define XDB_STORAGE_RECORD_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"

namespace xdb {

/// Page type tags (first byte of every page) so a table space can host data
/// pages, overflow chains, and B+tree nodes side by side.
enum PageType : uint8_t {
  kFreePage = 0,
  kDataPage = 1,
  kOverflowPage = 2,
  kBtreeLeafPage = 3,
  kBtreeInternalPage = 4,
  kMetaPage = 5,
};

struct RecordManagerStats {
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t overflow_records = 0;
  uint64_t data_pages = 0;
  /// Records currently stored (maintained incrementally; rebuilt by
  /// Recover) — cheap cardinality for planner heuristics.
  uint64_t live_records = 0;
  /// Pages Recover() skipped because their checksum failed; the data they
  /// held is unreadable until Engine::Scrub() repairs from the WAL.
  uint64_t corrupt_pages = 0;
};

class RecordManager {
 public:
  explicit RecordManager(BufferManager* bm);

  /// Rebuilds the free-space map by scanning existing data pages. Call after
  /// reopening a table space that already holds records. Pages that fail
  /// their checksum are counted (stats().corrupt_pages) and skipped — the
  /// rest of the space stays readable; touching a quarantined page later
  /// surfaces kCorruption.
  Status Recover() XDB_EXCLUDES(mu_);

  /// Structural check of one data page's envelope (slot directory and cell
  /// extents within bounds, valid cell flags). `page` is the client payload,
  /// `page_size` the usable size. Used by the scrub sweep.
  static Status VerifyDataPage(const char* page, uint32_t page_size);

  Result<Rid> Insert(Slice record) XDB_EXCLUDES(mu_);

  /// Fetches the record at `rid` (following any forwarding pointer).
  Status Get(Rid rid, std::string* out);

  /// Replaces the record at `rid`; the RID remains valid afterwards.
  Status Update(Rid rid, Slice record) XDB_EXCLUDES(mu_);

  Status Delete(Rid rid) XDB_EXCLUDES(mu_);

  /// Visits every record as (rid, bytes). Relocated records are reported
  /// under their home RID. Iteration order is physical (page, slot).
  Status ScanAll(
      const std::function<Status(Rid, Slice)>& visitor);

  /// Snapshot of the counters (copied under the lock).
  RecordManagerStats stats() const XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }

  /// Bytes of storage held by data and overflow pages (for the storage-size
  /// experiments): page_count * page_size for pages this manager touched.
  uint64_t StorageBytes() const XDB_EXCLUDES(mu_);

 private:
  // Cell flags.
  static constexpr uint8_t kInline = 0;
  static constexpr uint8_t kOverflow = 1;
  static constexpr uint8_t kForward = 2;
  static constexpr uint8_t kMovedIn = 3;
  /// Tiny records are padded so every cell can later be rewritten in place
  /// as a 9-byte forwarding pointer or overflow stub: [flag][payload_len u8]
  /// [payload][zero padding].
  static constexpr uint8_t kInlinePadded = 4;
  static constexpr uint32_t kMinCell = 9;

  struct PageRef {
    PageHandle handle;
  };

  Result<Rid> InsertCell(uint8_t flag, Slice payload, Slice home_rid_prefix)
      XDB_EXCLUDES(mu_);
  Status WriteOverflowChain(Slice data, PageId* first_page) XDB_EXCLUDES(mu_);
  Status FreeOverflowChain(PageId first_page) XDB_EXCLUDES(mu_);
  Status ReadOverflowChain(PageId first_page, uint32_t total_len,
                           std::string* out);
  Status FreeCellAt(PageHandle& page, uint16_t slot) XDB_EXCLUDES(mu_);

  BufferManager* bm_;
  mutable Mutex mu_{LockRank::kRecordManager};
  // page id -> free bytes (approximate; refreshed on modification).
  std::map<PageId, uint32_t> free_space_ XDB_GUARDED_BY(mu_);
  RecordManagerStats stats_ XDB_GUARDED_BY(mu_);
  uint64_t overflow_pages_ XDB_GUARDED_BY(mu_) = 0;
};

}  // namespace xdb

#endif  // XDB_STORAGE_RECORD_MANAGER_H_
