#include "storage/page.h"

#include <string>

#include "common/coding.h"

namespace xdb {

void StampPageHeader(char* page, uint32_t page_size, uint64_t lsn,
                     uint16_t flags) {
  EncodeFixed64(page + 4, lsn);
  EncodeFixed16(page + 12, flags);
  EncodeFixed16(page + 14, 0);
  EncodeFixed32(page, Crc32(page + 4, page_size - 4));
}

Status VerifyPageChecksum(const char* page, uint32_t page_size, PageId id) {
  uint32_t stored = DecodeFixed32(page);
  uint32_t actual = Crc32(page + 4, page_size - 4);
  if (stored == actual) return Status::OK();
  // A page that has never been written (extension/recycling) is all zeros —
  // that is a valid blank page, not corruption.
  bool all_zero = stored == 0;
  for (uint32_t i = 4; all_zero && i < page_size; i++)
    all_zero = page[i] == 0;
  if (all_zero) return Status::OK();
  return Status::Corruption("page " + std::to_string(id) +
                            " checksum mismatch (stored " +
                            std::to_string(stored) + ", computed " +
                            std::to_string(actual) + ")");
}

uint64_t PageLsn(const char* page) { return DecodeFixed64(page + 4); }

uint16_t PageFlags(const char* page) { return DecodeFixed16(page + 12); }

}  // namespace xdb
