// Transient-I/O retry: bounded attempts with exponential backoff and jitter
// around the physical read/write/sync paths of TableSpace and WalLog.
//
// Only statuses marked transient (Status::IsTransient — EINTR/EAGAIN and the
// injector's kTransientError kind) are retried; a plain IOError or a
// checksum failure surfaces immediately. The clock is injectable so tests
// observe the backoff schedule without sleeping.
#ifndef XDB_STORAGE_IO_RETRY_H_
#define XDB_STORAGE_IO_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/status.h"
#include "obs/event_log.h"

namespace xdb {

struct RetryPolicy {
  /// Total tries including the first (so max_attempts - 1 retries).
  int max_attempts = 4;
  uint64_t initial_backoff_us = 100;
  uint64_t max_backoff_us = 10000;
  /// Extra jitter as a percentage of the backoff, in [0, jitter_pct).
  uint32_t jitter_pct = 50;
};

/// Sleep source for backoff — virtual so tests can record instead of wait.
class IoClock {
 public:
  virtual ~IoClock() = default;
  virtual void SleepMicros(uint64_t us) = 0;
  /// Process-wide real clock (usleep).
  static IoClock* Default();
};

/// Per-tablespace (or per-WAL) I/O health counters. Atomic so readers never
/// block the I/O path.
/// (Checksum failures are NOT counted here: page verification happens in the
/// buffer manager, which owns `BufferManagerStats::checksum_failures` as the
/// single source of truth — surfaced as the `buffer.checksum_failures`
/// metric.)
struct IoStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> syncs{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> transient_errors{0};
  std::atomic<uint64_t> permanent_failures{0};
};

/// Value snapshot of IoStats for reporting.
struct IoStatsSnapshot {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t syncs = 0;
  uint64_t retries = 0;
  uint64_t transient_errors = 0;
  uint64_t permanent_failures = 0;
};

IoStatsSnapshot SnapshotIoStats(const IoStats& stats);

/// Runs `op`, retrying transient failures per `policy`, sleeping on `clock`
/// between attempts and accounting into `stats` (both may be null). The final
/// failure of an exhausted retry loop is returned non-transient so callers
/// upstream don't retry again. A non-null `events` receives one kIoRetry
/// event per backoff round (arg0 = attempt number) so transient storms are
/// visible in Engine::RecentEvents().
Status RetryTransient(const RetryPolicy& policy, IoClock* clock,
                      IoStats* stats, obs::EventLog* events, const char* what,
                      const std::function<Status()>& op);

}  // namespace xdb

#endif  // XDB_STORAGE_IO_RETRY_H_
