#include "storage/io_retry.h"

#include <unistd.h>

#include <algorithm>
#include <string>

namespace xdb {

namespace {
class RealClock : public IoClock {
 public:
  void SleepMicros(uint64_t us) override {
    ::usleep(static_cast<useconds_t>(us));
  }
};

// Deterministic per-process jitter source: a cheap LCG stepped once per
// backoff. Decorrelates concurrent retry loops without OS entropy.
uint64_t NextJitterSeed() {
  static std::atomic<uint64_t> seed{0x9e3779b97f4a7c15ULL};
  return seed.fetch_add(0xbf58476d1ce4e5b9ULL, std::memory_order_relaxed);
}
}  // namespace

IoClock* IoClock::Default() {
  static RealClock clock;
  return &clock;
}

IoStatsSnapshot SnapshotIoStats(const IoStats& stats) {
  IoStatsSnapshot s;
  s.reads = stats.reads.load(std::memory_order_relaxed);
  s.writes = stats.writes.load(std::memory_order_relaxed);
  s.syncs = stats.syncs.load(std::memory_order_relaxed);
  s.retries = stats.retries.load(std::memory_order_relaxed);
  s.transient_errors = stats.transient_errors.load(std::memory_order_relaxed);
  s.permanent_failures =
      stats.permanent_failures.load(std::memory_order_relaxed);
  return s;
}

Status RetryTransient(const RetryPolicy& policy, IoClock* clock,
                      IoStats* stats, obs::EventLog* events, const char* what,
                      const std::function<Status()>& op) {
  if (clock == nullptr) clock = IoClock::Default();
  int attempts = std::max(1, policy.max_attempts);
  uint64_t backoff = policy.initial_backoff_us;
  for (int attempt = 1;; attempt++) {
    Status s = op();
    if (s.ok()) return s;
    if (!s.IsTransient()) {
      if (stats != nullptr)
        stats->permanent_failures.fetch_add(1, std::memory_order_relaxed);
      return s;
    }
    if (stats != nullptr)
      stats->transient_errors.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= attempts) {
      if (stats != nullptr)
        stats->permanent_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(std::string(what) + " failed after " +
                             std::to_string(attempt) +
                             " attempts: " + s.message());
    }
    uint64_t sleep_us = backoff;
    if (policy.jitter_pct > 0 && backoff > 0)
      sleep_us += (NextJitterSeed() >> 33) % (backoff * policy.jitter_pct / 100 + 1);
    clock->SleepMicros(sleep_us);
    if (stats != nullptr)
      stats->retries.fetch_add(1, std::memory_order_relaxed);
    if (events != nullptr)
      events->Emit(obs::EventKind::kIoRetry, static_cast<uint64_t>(attempt),
                   sleep_us, what);
    backoff = std::min(policy.max_backoff_us, backoff * 2);
  }
}

}  // namespace xdb
