// WalLog: append-only write-ahead log with per-record CRCs.
//
// The paper reuses relational "logging, backup and recovery" unchanged; this
// is the minimal real implementation of that contract: document-level redo
// records are appended before data pages are written, and replay after a
// crash reconstructs committed state.
#ifndef XDB_STORAGE_WAL_LOG_H_
#define XDB_STORAGE_WAL_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/coding.h"  // Crc32, shared with page checksums
#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/io_retry.h"

namespace xdb {

/// Log record types understood by the engine's recovery pass.
enum class WalRecordType : uint8_t {
  kInsertDocument = 1,
  kDeleteDocument = 2,
  kUpdateNode = 3,
  kCommit = 4,
  kAbort = 5,
  kCheckpoint = 6,
  kInsertSubtree = 7,
  kDeleteSubtree = 8,
  /// Name-dictionary entry interned since the last checkpoint. Logged before
  /// any record whose token payload references the name: the catalog only
  /// persists the dictionary at checkpoint time, so without these records a
  /// crash would leave replayed documents pointing at unknown name ids.
  kDefineName = 9,
};

/// What Replay() found besides the replayable records. A torn tail (the last
/// record truncated or CRC-failing, nothing after it) is the normal crash
/// signature; corrupt records *followed by intact ones* are media damage and
/// are skipped with a count so recovery can warn instead of silently
/// truncating history.
struct WalReplayInfo {
  uint64_t records_replayed = 0;
  uint64_t corrupt_records_skipped = 0;
  uint64_t bytes_skipped = 0;
  bool torn_tail = false;
};

/// Group-commit counters: `commits` counts Commit() calls, `syncs` the
/// fdatasync rounds issued on their behalf. Under concurrent commit load
/// syncs < commits — followers piggyback on the leader's fsync.
struct WalCommitStats {
  uint64_t commits = 0;
  uint64_t syncs = 0;
};

class WalLog {
 public:
  ~WalLog();

  /// Opens (creating if absent) the log at `path` for appending.
  static Result<std::unique_ptr<WalLog>> Open(const std::string& path);

  /// Appends a record; returns its LSN (byte offset). Not yet durable until
  /// Sync().
  Result<uint64_t> Append(WalRecordType type, Slice payload)
      XDB_EXCLUDES(mu_);

  /// Forces all appended records to stable storage.
  Status Sync();

  /// Group commit: makes everything appended so far durable, coalescing
  /// concurrent callers onto one fdatasync. The caller snapshots the current
  /// end of log as its commit sequence number; if a sync covering that CSN
  /// is already running it waits on the condvar for the leader's round (or a
  /// retry round after a failed one) instead of issuing its own, so N
  /// concurrent committers cost far fewer than N fsyncs.
  Status Commit() XDB_EXCLUDES(commit_mu_);

  /// Snapshot of the group-commit counters (copied under the lock).
  WalCommitStats commit_stats() const XDB_EXCLUDES(commit_mu_);

  /// Replays every intact record in order. Stops cleanly at a torn tail
  /// (truncated or CRC-failing last record), which is the normal crash case;
  /// CRC-failing records with intact data after them are mid-log corruption:
  /// skipped and counted in `info` (which may be null) so callers can warn.
  Status Replay(
      const std::function<Status(uint64_t lsn, WalRecordType, Slice)>& visit,
      WalReplayInfo* info = nullptr) XDB_EXCLUDES(mu_);

  /// Truncates the log (after a checkpoint has made its contents redundant).
  Status Reset() XDB_EXCLUDES(mu_);

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  void set_retry_policy(const RetryPolicy& p) { retry_policy_ = p; }
  void set_io_clock(IoClock* clock) { clock_ = clock; }
  /// Engine-owned observability sinks (may be null). The histogram records
  /// the number of Commit() calls each leader fsync round absorbed; the
  /// event log gets one kGroupCommitRound event per successful round.
  /// Install before concurrent use.
  void set_event_log(obs::EventLog* events) { events_ = events; }
  void set_batch_size_histogram(obs::Histogram* h) { batch_hist_ = h; }
  IoStatsSnapshot io_stats() const { return SnapshotIoStats(io_stats_); }

  /// Test-only: runs once per Commit(), right after the CSN snapshot with no
  /// WAL lock held — the exact window where a concurrent checkpoint Reset()
  /// used to livelock the commit. Re-entrant WalLog calls are allowed. Not
  /// thread-safe; install before concurrent use.
  void set_commit_race_hook_for_test(std::function<void()> hook) {
    commit_race_hook_ = std::move(hook);
  }

 private:
  WalLog() = default;

  /// Serializes appends (LSN assignment + pwrite) and replay/reset against
  /// each other. fd_/path_ are fixed after Open; size_ is atomic so size()
  /// and Sync() stay lock-free.
  Mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::atomic<uint64_t> size_{0};
  RetryPolicy retry_policy_;
  IoClock* clock_ = nullptr;
  IoStats io_stats_;

  /// Group-commit state. Lock order: mu_ before commit_mu_ (Reset() takes
  /// both); Commit() takes only commit_mu_ and drops it around the fsync.
  mutable Mutex commit_mu_;
  CondVar commit_cv_;
  /// Byte offset the log is durable up to (the highest synced CSN).
  uint64_t synced_upto_ XDB_GUARDED_BY(commit_mu_) = 0;
  /// Bumped by Reset(). Commit() snapshots it with its CSN: a bump means a
  /// checkpoint truncated the log out from under the commit, so its CSN
  /// refers to bytes that no longer exist and can never be "synced" — the
  /// commit returns OK (the checkpoint made its record's effects durable)
  /// instead of fsyncing the now-short log forever.
  uint64_t reset_gen_ XDB_GUARDED_BY(commit_mu_) = 0;
  /// True while a leader is inside fdatasync with commit_mu_ dropped.
  bool sync_active_ XDB_GUARDED_BY(commit_mu_) = false;
  WalCommitStats commit_stats_ XDB_GUARDED_BY(commit_mu_);
  /// Commit() calls since the last published leader round; becomes that
  /// round's batch size. (A commit already covered by a previous round at
  /// entry is still counted into the next batch — an acceptable skew for a
  /// monitoring histogram, noted in DESIGN.md.)
  uint64_t round_commits_ XDB_GUARDED_BY(commit_mu_) = 0;
  obs::EventLog* events_ = nullptr;
  obs::Histogram* batch_hist_ = nullptr;
  /// See set_commit_race_hook_for_test().
  std::function<void()> commit_race_hook_;
};

}  // namespace xdb

#endif  // XDB_STORAGE_WAL_LOG_H_
