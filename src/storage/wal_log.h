// WalLog: append-only write-ahead log with per-record CRCs.
//
// The paper reuses relational "logging, backup and recovery" unchanged; this
// is the minimal real implementation of that contract: document-level redo
// records are appended before data pages are written, and replay after a
// crash reconstructs committed state.
#ifndef XDB_STORAGE_WAL_LOG_H_
#define XDB_STORAGE_WAL_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/coding.h"  // Crc32, shared with page checksums
#include "common/mutex.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/wait_state.h"
#include "storage/io_retry.h"

namespace xdb {

/// Log record types understood by the engine's recovery pass.
enum class WalRecordType : uint8_t {
  kInsertDocument = 1,
  kDeleteDocument = 2,
  kUpdateNode = 3,
  kCommit = 4,
  kAbort = 5,
  kCheckpoint = 6,
  kInsertSubtree = 7,
  kDeleteSubtree = 8,
  /// Name-dictionary entry interned since the last checkpoint. Logged before
  /// any record whose token payload references the name: the catalog only
  /// persists the dictionary at checkpoint time, so without these records a
  /// crash would leave replayed documents pointing at unknown name ids.
  kDefineName = 9,
  /// DDL redo records. The catalog only persists collections, value indexes
  /// and schemas at checkpoint time; without these a crash after DDL (but
  /// before the next checkpoint) silently dropped the object *and* every
  /// subsequent document record referencing it. They also carry DDL to
  /// replicas over the WAL-shipping stream.
  kCreateCollection = 10,
  kDropCollection = 11,
  kCreateValueIndex = 12,
  kDropValueIndex = 13,
  kRegisterSchema = 14,
  kCreateStructuralIndex = 15,
  kDropStructuralIndex = 16,
};

/// What Replay() found besides the replayable records. A torn tail (the last
/// record truncated or CRC-failing, nothing after it) is the normal crash
/// signature; corrupt records *followed by intact ones* are media damage and
/// are skipped with a count so recovery can warn instead of silently
/// truncating history.
struct WalReplayInfo {
  uint64_t records_replayed = 0;
  uint64_t corrupt_records_skipped = 0;
  uint64_t bytes_skipped = 0;
  /// LSN of the first corrupt (skipped) record, UINT64_MAX when none were.
  /// A replica recovering its local log must not count anything at or past
  /// this point as applied: the skipped bytes came off the replication
  /// stream, and acking them would lose their updates forever.
  uint64_t first_corrupt_lsn = UINT64_MAX;
  /// LSN one past the last record the scan consumed (replayed or skipped):
  /// where a tailer resumes, and where any torn tail begins. Includes the
  /// scan's base LSN, so it is directly comparable to log offsets.
  uint64_t end_lsn = 0;
  bool torn_tail = false;
};

/// The one WAL-record framing loop: walks `buf` (whose first byte sits at
/// `base_lsn` in its log), CRC-checks each record and calls `visit` for the
/// intact ones, with exactly Replay()'s torn-tail / mid-log-corruption
/// semantics. Shared by crash recovery (WalLog::Replay), the replication
/// shipper's segment reader and the replica's segment apply, so the three
/// paths cannot drift.
Status ScanWalRecords(
    Slice buf, uint64_t base_lsn,
    const std::function<Status(uint64_t lsn, WalRecordType, Slice)>& visit,
    WalReplayInfo* info);

/// Group-commit counters: `commits` counts Commit() calls, `syncs` the
/// fdatasync rounds issued on their behalf. Under concurrent commit load
/// syncs < commits — followers piggyback on the leader's fsync.
struct WalCommitStats {
  uint64_t commits = 0;
  uint64_t syncs = 0;
};

class WalLog {
 public:
  ~WalLog();

  /// Opens (creating if absent) the log at `path` for appending.
  static Result<std::unique_ptr<WalLog>> Open(const std::string& path);

  /// Appends a record; returns its LSN (byte offset). Not yet durable until
  /// Sync().
  Result<uint64_t> Append(WalRecordType type, Slice payload)
      XDB_EXCLUDES(mu_);

  /// Appends already-framed record bytes verbatim (a shipped replication
  /// segment's payload: [len][type][crc][payload]... as produced by Append on
  /// another log). Returns the LSN the first byte landed at. The caller is
  /// responsible for the bytes being whole, intact records — they are
  /// CRC-verified again when replayed or re-shipped.
  Result<uint64_t> AppendRaw(Slice framed_records) XDB_EXCLUDES(mu_);

  /// Forces all appended records to stable storage.
  Status Sync();

  /// Group commit: makes everything appended so far durable, coalescing
  /// concurrent callers onto one fdatasync. The caller snapshots the current
  /// end of log as its commit sequence number; if a sync covering that CSN
  /// is already running it waits on the condvar for the leader's round (or a
  /// retry round after a failed one) instead of issuing its own, so N
  /// concurrent committers cost far fewer than N fsyncs.
  Status Commit() XDB_EXCLUDES(commit_mu_);

  /// Snapshot of the group-commit counters (copied under the lock).
  WalCommitStats commit_stats() const XDB_EXCLUDES(commit_mu_);

  /// Replays every intact record in order. Stops cleanly at a torn tail
  /// (truncated or CRC-failing last record), which is the normal crash case;
  /// CRC-failing records with intact data after them are mid-log corruption:
  /// skipped and counted in `info` (which may be null) so callers can warn.
  Status Replay(
      const std::function<Status(uint64_t lsn, WalRecordType, Slice)>& visit,
      WalReplayInfo* info = nullptr) XDB_EXCLUDES(mu_);

  /// Truncates the log (after a checkpoint has made its contents redundant).
  Status Reset() XDB_EXCLUDES(mu_);

  /// Reset() unless the retention hook (see set_retain_hook) reports that a
  /// tailer still needs bytes in the log. Returns whether it truncated.
  /// Checkpoints use this so an attached replication shipper never loses
  /// unshipped (or un-acknowledged) records to a WAL truncation.
  Result<bool> MaybeReset() XDB_EXCLUDES(mu_);

  /// Drops everything at and after `lsn` (a clean record boundary). Used by
  /// a replica to cut a torn tail off its local log after recovery so later
  /// raw appends land on an intact boundary. Not valid concurrently with
  /// appends or commits.
  Status TruncateTo(uint64_t lsn) XDB_EXCLUDES(mu_);

  /// Reads whole, CRC-intact records starting at `from_lsn`, stopping at the
  /// durable boundary (min(synced_upto_, size)) so a tailer never reads past
  /// group commit's sync point — the bytes beyond it may still be rewritten
  /// by a torn-tail crash. Appends the raw framed bytes to `out` (cleared
  /// first), stops after `max_bytes` (always making progress: the first
  /// record is included even when larger), and reports the resume point and
  /// record count. An empty `out` with OK means nothing durable is pending.
  /// A CRC-failing record *inside* the durable region is media damage:
  /// everything before it is returned, and the next call (starting at it)
  /// fails with kCorruption instead of shipping damaged bytes.
  Status ReadDurable(uint64_t from_lsn, size_t max_bytes, std::string* out,
                     uint64_t* end_lsn, uint32_t* record_count)
      XDB_EXCLUDES(mu_);

  /// Byte offset the log is durable up to (highest synced CSN).
  uint64_t durable_upto() const XDB_EXCLUDES(commit_mu_);
  /// Bumped by every Reset(); lets a tailer detect that LSNs restarted.
  uint64_t reset_generation() const XDB_EXCLUDES(commit_mu_);

  /// Installs (or clears, with nullptr) the retention hook consulted by
  /// MaybeReset(): it receives the log's current reset generation and
  /// returns the lowest LSN a tailer still needs; the log is only truncated
  /// when that is >= size(). The generation lets a tailer whose position is
  /// still in a previous log epoch's coordinates refuse truncation (return
  /// 0) instead of comparing a stale offset against the new log. Called
  /// under the log's append/replay mutex — the hook must not call back into
  /// this WalLog.
  void set_retain_hook(std::function<uint64_t(uint64_t reset_gen)> hook)
      XDB_EXCLUDES(mu_);

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  void set_retry_policy(const RetryPolicy& p) { retry_policy_ = p; }
  void set_io_clock(IoClock* clock) { clock_ = clock; }
  /// Engine-owned observability sinks (may be null). The histogram records
  /// the number of Commit() calls each leader fsync round absorbed; the
  /// event log gets one kGroupCommitRound event per successful round.
  /// Install before concurrent use.
  void set_event_log(obs::EventLog* events) { events_ = events; }
  void set_batch_size_histogram(obs::Histogram* h) { batch_hist_ = h; }
  /// Destination for kWalCommit spans covering each Commit() call — the
  /// leader's fsync and the followers' condvar waits alike (engine-owned,
  /// may be null). Install before concurrent use.
  void set_wait_sink(obs::WaitSink* sink) { wait_sink_ = sink; }
  IoStatsSnapshot io_stats() const { return SnapshotIoStats(io_stats_); }

  /// Test-only: runs once per Commit(), right after the CSN snapshot with no
  /// WAL lock held — the exact window where a concurrent checkpoint Reset()
  /// used to livelock the commit. Re-entrant WalLog calls are allowed. Not
  /// thread-safe; install before concurrent use.
  void set_commit_race_hook_for_test(std::function<void()> hook) {
    commit_race_hook_ = std::move(hook);
  }

 private:
  WalLog() = default;

  /// Shared body of Append/AppendRaw: lands `rec` (already framed) at the
  /// current end of log under mu_.
  Result<uint64_t> AppendFramedLocked(Slice rec) XDB_REQUIRES(mu_);
  /// Shared body of Reset/MaybeReset.
  Status ResetLocked() XDB_REQUIRES(mu_) XDB_EXCLUDES(commit_mu_);

  /// Serializes appends (LSN assignment + pwrite) and replay/reset against
  /// each other. fd_/path_ are fixed after Open; size_ is atomic so size()
  /// and Sync() stay lock-free.
  Mutex mu_{LockRank::kWalAppend};
  int fd_ = -1;
  std::string path_;
  std::atomic<uint64_t> size_{0};
  /// Lowest LSN a tailer (replication shipper) still needs, or null when no
  /// tailer is attached. See set_retain_hook().
  std::function<uint64_t(uint64_t)> retain_hook_ XDB_GUARDED_BY(mu_);
  RetryPolicy retry_policy_;
  IoClock* clock_ = nullptr;
  IoStats io_stats_;

  /// Group-commit state. Lock order: mu_ before commit_mu_ (Reset() takes
  /// both); Commit() takes only commit_mu_ and drops it around the fsync.
  mutable Mutex commit_mu_{LockRank::kWalCommit};
  CondVar commit_cv_;
  /// Byte offset the log is durable up to (the highest synced CSN).
  uint64_t synced_upto_ XDB_GUARDED_BY(commit_mu_) = 0;
  /// Bumped by Reset(). Commit() snapshots it with its CSN: a bump means a
  /// checkpoint truncated the log out from under the commit, so its CSN
  /// refers to bytes that no longer exist and can never be "synced" — the
  /// commit returns OK (the checkpoint made its record's effects durable)
  /// instead of fsyncing the now-short log forever.
  uint64_t reset_gen_ XDB_GUARDED_BY(commit_mu_) = 0;
  /// True while a leader is inside fdatasync with commit_mu_ dropped.
  bool sync_active_ XDB_GUARDED_BY(commit_mu_) = false;
  WalCommitStats commit_stats_ XDB_GUARDED_BY(commit_mu_);
  /// Commit() calls since the last published leader round; becomes that
  /// round's batch size. (A commit already covered by a previous round at
  /// entry is still counted into the next batch — an acceptable skew for a
  /// monitoring histogram, noted in DESIGN.md.)
  uint64_t round_commits_ XDB_GUARDED_BY(commit_mu_) = 0;
  obs::EventLog* events_ = nullptr;
  obs::Histogram* batch_hist_ = nullptr;
  obs::WaitSink* wait_sink_ = nullptr;
  /// See set_commit_race_hook_for_test().
  std::function<void()> commit_race_hook_;
};

}  // namespace xdb

#endif  // XDB_STORAGE_WAL_LOG_H_
