// WalLog: append-only write-ahead log with per-record CRCs.
//
// The paper reuses relational "logging, backup and recovery" unchanged; this
// is the minimal real implementation of that contract: document-level redo
// records are appended before data pages are written, and replay after a
// crash reconstructs committed state.
#ifndef XDB_STORAGE_WAL_LOG_H_
#define XDB_STORAGE_WAL_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace xdb {

/// Log record types understood by the engine's recovery pass.
enum class WalRecordType : uint8_t {
  kInsertDocument = 1,
  kDeleteDocument = 2,
  kUpdateNode = 3,
  kCommit = 4,
  kAbort = 5,
  kCheckpoint = 6,
  kInsertSubtree = 7,
  kDeleteSubtree = 8,
  /// Name-dictionary entry interned since the last checkpoint. Logged before
  /// any record whose token payload references the name: the catalog only
  /// persists the dictionary at checkpoint time, so without these records a
  /// crash would leave replayed documents pointing at unknown name ids.
  kDefineName = 9,
};

uint32_t Crc32(const char* data, size_t n);

class WalLog {
 public:
  ~WalLog();

  /// Opens (creating if absent) the log at `path` for appending.
  static Result<std::unique_ptr<WalLog>> Open(const std::string& path);

  /// Appends a record; returns its LSN (byte offset). Not yet durable until
  /// Sync().
  Result<uint64_t> Append(WalRecordType type, Slice payload);

  /// Forces all appended records to stable storage.
  Status Sync();

  /// Replays every intact record in order. Stops cleanly at a torn tail
  /// (truncated or CRC-failing record), which is the normal crash case.
  Status Replay(
      const std::function<Status(uint64_t lsn, WalRecordType, Slice)>& visit);

  /// Truncates the log (after a checkpoint has made its contents redundant).
  Status Reset();

  uint64_t size() const { return size_; }

 private:
  WalLog() = default;

  std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
};

}  // namespace xdb

#endif  // XDB_STORAGE_WAL_LOG_H_
