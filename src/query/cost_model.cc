#include "query/cost_model.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace xdb {
namespace query {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[160];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0)
    out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

/// Fraction of sampled distinct keys inside [lo, hi] (either bound may be
/// absent). The sample is uniform over distinct keys (KMV), and encoded
/// keys compare bytewise like the index, so this approximates the fraction
/// of distinct keys a range probe covers.
double SampleRangeFraction(const std::vector<std::string>& sample,
                           const std::optional<KeyBound>& lo,
                           const std::optional<KeyBound>& hi) {
  if (sample.empty()) return 0;
  size_t in = 0;
  for (const std::string& key : sample) {
    if (lo.has_value()) {
      int c = Slice(key).Compare(Slice(lo->key));
      if (c < 0 || (c == 0 && !lo->inclusive)) continue;
    }
    if (hi.has_value()) {
      int c = Slice(key).Compare(Slice(hi->key));
      if (c > 0 || (c == 0 && !hi->inclusive)) continue;
    }
    in++;
  }
  return static_cast<double>(in) / static_cast<double>(sample.size());
}

}  // namespace

ProbeEstimate EstimateProbePostings(const IndexStatsSnapshot& stats,
                                    const PlannedProbe& probe) {
  ProbeEstimate est;
  const double entries = static_cast<double>(stats.entry_count);
  if (entries == 0) return est;
  const double distinct = std::max(stats.distinct_keys, 1.0);
  std::optional<KeyBound> lo, hi;
  bool not_equal = false;
  if (!ProbeBounds(*probe.index, probe.pred, &lo, &hi, &not_equal).ok()) {
    // Unencodable literal: planned probes should never hit this, but price
    // it as a full index scan rather than free.
    est.scanned = est.emitted = entries;
    return est;
  }
  if (not_equal) {
    // != scans the whole index and filters out the equal keys.
    est.scanned = entries;
    est.emitted = entries * (1.0 - 1.0 / distinct);
    return est;
  }
  if (lo.has_value() && hi.has_value() && lo->key == hi->key) {
    // Equality: one key's share of the entries. At least one posting is
    // assumed so a probe for an absent key is never free.
    est.scanned = est.emitted = std::max(entries / distinct, 1.0);
    return est;
  }
  // Range: the sampled fraction of distinct keys, smoothed so a range that
  // misses every sample key still costs a leaf visit.
  double fraction = SampleRangeFraction(stats.sample_keys, lo, hi);
  est.scanned = est.emitted = std::max(entries * fraction, 1.0);
  return est;
}

std::string CostBreakdown::Reason() const {
  std::string out = "cost:";
  Appendf(&out, " full-scan=%.0f%s", full_scan,
          chosen == AccessMethod::kFullScan ? "*" : "");
  bool chose_doc = chosen == AccessMethod::kDocIdList ||
                   chosen == AccessMethod::kDocIdAndOr;
  bool chose_node = chosen == AccessMethod::kNodeIdList ||
                    chosen == AccessMethod::kNodeIdAndOr;
  if (doc_list >= 0)
    Appendf(&out, " docid-list=%.0f%s", doc_list, chose_doc ? "*" : "");
  if (node_list >= 0)
    Appendf(&out, " nodeid-list=%.0f%s", node_list, chose_node ? "*" : "");
  if (structural >= 0)
    Appendf(&out, " structural=%.0f%s", structural,
            chosen == AccessMethod::kStructuralScan ? "*" : "");
  if (doc_list >= 0)
    Appendf(&out, "; est postings=%.0f docs=%.0f", est_postings, est_docs);
  else if (structural >= 0)
    Appendf(&out, "; est anchors=%.0f", est_anchors);
  return out;
}

CostBreakdown CostPlans(const CollectionStatsSnapshot& stats,
                        const CostConstants& cc,
                        const std::vector<PlannedProbe>& probes,
                        bool disjunctive, bool node_capable,
                        const StructuralOption& structural,
                        double avg_records_per_doc) {
  CostBreakdown out;
  const double docs = static_cast<double>(stats.doc_count);
  const double per_doc_eval = cc.doc_open +
                              avg_records_per_doc * cc.record_fetch +
                              stats.avg_nodes_per_doc() * cc.node_scan;
  out.full_scan = docs * per_doc_eval;
  // Structural range scan: one descent, every entry of the name off the
  // leaves, then a per-anchor prefix recheck plus the residual evaluated
  // over its average subtree span.
  const double struct_entries = std::max(structural.name_entries, 1.0);
  const double struct_scan_cost =
      cc.probe_descend + struct_entries * cc.posting_scan;
  if (structural.scan_available && probes.empty()) {
    out.structural = struct_scan_cost +
                     struct_entries * (cc.anchor_recheck + cc.record_fetch +
                                       structural.avg_subtree * cc.node_scan);
    out.est_anchors = struct_entries;
  }
  if (probes.empty()) {
    out.chosen = AccessMethod::kFullScan;
    if (out.structural >= 0 && out.structural <= out.full_scan)
      out.chosen = AccessMethod::kStructuralScan;
    return out;
  }

  static const IndexStatsSnapshot kEmptyIndexStats;
  double probe_cost = 0;
  std::vector<double> emitted;
  emitted.reserve(probes.size());
  for (const PlannedProbe& p : probes) {
    const IndexStatsSnapshot* ix = &kEmptyIndexStats;
    auto it = stats.indexes.find(p.index->def().name);
    if (it != stats.indexes.end()) ix = &it->second;
    ProbeEstimate est = EstimateProbePostings(*ix, p);
    probe_cost += cc.probe_descend + est.scanned * cc.posting_scan +
                  est.emitted * cc.list_merge;
    out.est_postings += est.emitted;
    emitted.push_back(est.emitted);
  }

  // Candidate documents after combining the per-probe DocID lists. ANDing
  // assumes independent predicates (product of per-probe document
  // selectivities); ORing sums and caps.
  if (disjunctive) {
    out.est_docs = 0;
    for (double e : emitted) out.est_docs += std::min(e, docs);
    out.est_docs = std::min(out.est_docs, docs);
  } else {
    out.est_docs = docs;
    for (double e : emitted) {
      double sel = docs == 0 ? 0 : std::min(e, docs) / docs;
      out.est_docs *= sel;
    }
  }
  out.doc_list = probe_cost + out.est_docs * per_doc_eval;

  if (node_capable || structural.anchor_join) {
    // Anchors after node-level combine: ANDing is bounded by the smallest
    // list, ORing by the sum.
    if (disjunctive) {
      out.est_anchors = 0;
      for (double e : emitted) out.est_anchors += e;
    } else {
      out.est_anchors = *std::min_element(emitted.begin(), emitted.end());
    }
    out.node_list =
        probe_cost + out.est_anchors * (cc.anchor_recheck + cc.record_fetch);
    if (!node_capable) {
      // Anchoring via the structural join adds one range scan over the
      // anchor name, the interval merge, and the residual recheck over each
      // surviving anchor's subtree.
      out.node_list += struct_scan_cost +
                       (struct_entries + out.est_postings) * cc.list_merge +
                       out.est_anchors * structural.avg_subtree * cc.node_scan;
    }
  }

  // Cheapest wins; ties prefer the exact-list paths over scanning.
  out.chosen = AccessMethod::kFullScan;
  double best = out.full_scan;
  if (out.node_list >= 0 && out.node_list <= best) {
    best = out.node_list;
    out.chosen = probes.size() > 1 ? AccessMethod::kNodeIdAndOr
                                   : AccessMethod::kNodeIdList;
  }
  if (out.doc_list <= best) {
    best = out.doc_list;
    out.chosen = probes.size() > 1 ? AccessMethod::kDocIdAndOr
                                   : AccessMethod::kDocIdList;
  }
  return out;
}

}  // namespace query
}  // namespace xdb
