#include "query/executor.h"

#include <cstdio>
#include <map>
#include <set>

#include "xpath/parser.h"

namespace xdb {
namespace query {

namespace {

// Best usable index for one candidate: exact match preferred over
// containment; the literal must be encodable with the index's type.
PlannedProbe MatchIndexes(const CandidatePredicate& cand,
                          const std::vector<ValueIndex*>& indexes) {
  PlannedProbe best;
  for (ValueIndex* idx : indexes) {
    auto path_res = xpath::ParsePath(idx->def().path);
    if (!path_res.ok()) continue;
    xpath::IndexMatch match =
        xpath::ClassifyIndexMatch(path_res.value(), cand.full_path);
    if (match == xpath::IndexMatch::kNone) continue;
    // Type check: the literal must encode.
    std::string probe_key;
    std::string literal = cand.literal_is_number
                              ? std::to_string(cand.number)
                              : cand.string;
    if (!idx->EncodeKey(literal, &probe_key).ok()) continue;
    if (best.index == nullptr ||
        (best.match == xpath::IndexMatch::kContains &&
         match == xpath::IndexMatch::kExact)) {
      best.index = idx;
      best.pred = cand;
      best.match = match;
    }
  }
  return best;
}

// A step can anchor a structural plan when it names elements reached by
// child/descendant/descendant-or-self (attribute and self steps never have
// structural entries of their own).
bool StructuralAnchorableStep(const xpath::Step& s) {
  return s.test == xpath::NodeTest::kName &&
         (s.axis == xpath::Axis::kChild ||
          s.axis == xpath::Axis::kDescendant ||
          s.axis == xpath::Axis::kDescendantOrSelf);
}

// A per-name index over exactly `name` wins over an all-names index (same
// entries for the name, smaller tree to scan through).
StructuralIndex* FindCoveringStructural(
    const std::vector<StructuralIndex*>& indexes, const std::string& name) {
  StructuralIndex* all_names = nullptr;
  for (StructuralIndex* ix : indexes) {
    if (ix->def().element_name == name) return ix;
    if (ix->def().element_name.empty() && all_names == nullptr) all_names = ix;
  }
  return all_names;
}

void FillStructuralStats(const CollectionStatsSnapshot& stats,
                         const StructuralIndex* ix, const std::string& name,
                         StructuralOption* opt) {
  auto it = stats.structural.find(ix->def().name);
  if (it == stats.structural.end()) return;
  opt->name_entries = it->second.EstimateNameCount(name);
  opt->avg_subtree = it->second.AvgSubtreeSize(name);
}

}  // namespace

Result<QueryPlan> ChoosePlan(const xpath::Path& query,
                             const PlannerContext& ctx, ForceMethod force) {
  QueryPlan plan;
  plan.method = AccessMethod::kFullScan;
  plan.explain = "full scan (QuickXScan per document)";
  if (force == ForceMethod::kScan) {
    plan.reason = "forced";
    return plan;
  }

  // Node-level plans recheck an anchor by verifying its name path against
  // the predicate-free prefix and evaluating self[anchor predicates] plus
  // the remaining steps on its subtree. Predicates on steps strictly above
  // the anchor appear in neither — so an anchor below the first predicated
  // step would silently drop those predicates and over-report.
  size_t first_pred_step = query.steps.size();
  for (size_t i = 0; i < query.steps.size(); i++) {
    if (!query.steps[i].predicates.empty()) {
      first_pred_step = i;
      break;
    }
  }

  // Structural-only anchor: the deepest name-test step a structural index
  // covers without leaving a predicate above the anchor. Steps after it
  // become the recheck residual; the predicate-free prefix pattern verifies
  // everything above it.
  size_t so_step = 0;
  StructuralIndex* so_ix = nullptr;
  for (size_t i = query.steps.size(); i-- > 0;) {
    if (i > first_pred_step) continue;
    const xpath::Step& s = query.steps[i];
    if (!StructuralAnchorableStep(s)) continue;
    StructuralIndex* ix =
        FindCoveringStructural(ctx.structural_indexes, s.name);
    if (ix != nullptr) {
      so_step = i;
      so_ix = ix;
      break;
    }
  }
  auto make_structural = [&](size_t astep, StructuralIndex* ix) {
    plan.method = AccessMethod::kStructuralScan;
    plan.structural_index = ix;
    plan.structural_name = query.steps[astep].name;
    plan.anchor_step = astep;
    plan.probes.clear();
    plan.disjunctive = false;
    plan.need_recheck = true;
    plan.explain = "structural-scan via [element '" + plan.structural_name +
                   "' using structural index '" + ix->def().name +
                   "' (interval)] + recheck";
  };
  if (force == ForceMethod::kStructural) {
    if (so_ix == nullptr) {
      plan.reason = "forced structural: no covering index";
      return plan;
    }
    make_structural(so_step, so_ix);
    plan.reason = "forced";
    return plan;
  }
  // Prices the structural-only scan against the full scan when no value
  // probe is usable. Heuristic (stats-invalid) planning never picks it
  // uninvited — the structural path only enters cost-based plans, keeping
  // the legacy heuristic goldens stable.
  auto consider_structural_only = [&]() {
    if (so_ix == nullptr || ctx.stats == nullptr || !ctx.stats->valid) return;
    StructuralOption opt;
    opt.scan_available = true;
    FillStructuralStats(*ctx.stats, so_ix, query.steps[so_step].name, &opt);
    CostBreakdown cost = CostPlans(*ctx.stats, ctx.costs, {}, false, false,
                                   opt, ctx.avg_records_per_doc);
    plan.cost_based = true;
    plan.est_postings = cost.est_postings;
    plan.est_docs = cost.est_docs;
    plan.reason = cost.Reason();
    if (cost.chosen == AccessMethod::kStructuralScan)
      make_structural(so_step, so_ix);
  };
  plan.reason = "no indexable predicates";

  std::vector<CandidatePredicate> candidates;
  bool unindexable = false;
  XDB_RETURN_NOT_OK(ExtractCandidates(query, &candidates, &unindexable));
  if (candidates.empty()) {
    consider_structural_only();
    return plan;
  }

  // Match candidates against indexes. OR groups are usable only if *every*
  // member of the group has an index; otherwise the group is dropped and
  // left to recheck.
  std::vector<PlannedProbe> and_probes;
  std::map<int, std::vector<PlannedProbe>> or_groups;
  std::set<int> broken_groups;
  bool uncovered = unindexable;
  for (const CandidatePredicate& cand : candidates) {
    PlannedProbe probe = MatchIndexes(cand, ctx.indexes);
    if (cand.or_group) {
      if (probe.index == nullptr) {
        broken_groups.insert(cand.group_id);
        uncovered = true;
      } else {
        or_groups[cand.group_id].push_back(std::move(probe));
      }
    } else if (probe.index == nullptr) {
      uncovered = true;
    } else {
      and_probes.push_back(std::move(probe));
    }
  }
  for (int g : broken_groups) or_groups.erase(g);

  // Assemble: prefer AND probes; else one OR group.
  bool disjunctive = false;
  std::vector<PlannedProbe> probes;
  if (!and_probes.empty()) {
    probes = std::move(and_probes);
    if (!or_groups.empty()) uncovered = true;  // extra ORs left to recheck
  } else if (or_groups.size() == 1 && !uncovered) {
    probes = std::move(or_groups.begin()->second);
    disjunctive = true;
  } else if (!or_groups.empty()) {
    // Multiple OR groups (or ORs plus unindexables): take the first group
    // as the filter, recheck everything.
    probes = std::move(or_groups.begin()->second);
    disjunctive = true;
    uncovered = true;
  }
  if (probes.empty()) {
    plan.reason = "no index covers the predicates";
    consider_structural_only();
    return plan;
  }

  // Node-level anchoring needs every probe at the same step with a
  // child-only branch.
  bool same_step = true;
  size_t anchor = probes[0].pred.step_index;
  for (const PlannedProbe& p : probes) {
    if (p.pred.step_index != anchor) {
      same_step = false;
      break;
    }
  }
  bool all_strippable = true;
  for (const PlannedProbe& p : probes)
    if (p.pred.strip_levels < 0) all_strippable = false;
  // Same dropped-predicate hazard as the structural-only anchor above: a
  // predicate on a step above the anchor is in neither the prefix pattern
  // nor the residual, so such queries must stay at document level.
  const bool prefix_predicate_free = anchor <= first_pred_step;
  bool node_capable = same_step && all_strippable && prefix_predicate_free;
  // Descendant-branch conjuncts (strip_levels == -1) are not demoted to a
  // doc-level recheck when a structural index covers the anchor step's
  // name: joining the value postings against the name's interval entries
  // anchors them at node level instead.
  StructuralIndex* anchor_ix = nullptr;
  if (same_step && prefix_predicate_free && !node_capable &&
      StructuralAnchorableStep(query.steps[anchor]))
    anchor_ix =
        FindCoveringStructural(ctx.structural_indexes, query.steps[anchor].name);

  bool all_exact = true;
  for (const PlannedProbe& p : probes)
    if (p.match != xpath::IndexMatch::kExact) all_exact = false;
  // "If all the indexes match exactly with the predicates, the result list
  // is exact. If one of them is exact match, while the others are
  // containment, NodeID level ANDing will result in an exact list."
  bool any_exact = false;
  for (const PlannedProbe& p : probes)
    if (p.match == xpath::IndexMatch::kExact) any_exact = true;

  bool want_node_level;
  switch (force) {
    case ForceMethod::kDocIdList:
      want_node_level = false;
      plan.reason = "forced";
      break;
    case ForceMethod::kNodeIdList:
      want_node_level = true;
      plan.reason = "forced";
      break;
    default: {
      if (ctx.stats != nullptr && ctx.stats->valid) {
        // Cost-based: price every feasible Table 2 path and take the
        // cheapest. The breakdown becomes the plan's reason so EXPLAIN
        // shows why each alternative lost.
        StructuralOption sopt;
        sopt.anchor_join = anchor_ix != nullptr;
        if (anchor_ix != nullptr)
          FillStructuralStats(*ctx.stats, anchor_ix,
                              query.steps[anchor].name, &sopt);
        CostBreakdown cost =
            CostPlans(*ctx.stats, ctx.costs, probes, disjunctive,
                      node_capable, sopt, ctx.avg_records_per_doc);
        plan.cost_based = true;
        plan.est_postings = cost.est_postings;
        plan.est_docs = cost.est_docs;
        plan.reason = cost.Reason();
        if (cost.chosen == AccessMethod::kFullScan) {
          // Probing priced out (tiny collection or unselective predicate):
          // plan is already the full-scan default.
          return plan;
        }
        want_node_level = cost.chosen == AccessMethod::kNodeIdList ||
                          cost.chosen == AccessMethod::kNodeIdAndOr;
        break;
      }
      // "For small documents, using indexes to identify qualifying
      // documents would be efficient ... For large documents, the DocID
      // list access is no longer efficient. Instead, the NodeID list
      // access applies."
      want_node_level = node_capable && ctx.avg_records_per_doc > 2.0;
      char reason[96];
      if (want_node_level) {
        std::snprintf(reason, sizeof(reason),
                      "avg records/doc %.2f > 2.00, anchorable",
                      ctx.avg_records_per_doc);
      } else if (node_capable) {
        std::snprintf(reason, sizeof(reason),
                      "avg records/doc %.2f <= 2.00",
                      ctx.avg_records_per_doc);
      } else {
        std::snprintf(reason, sizeof(reason),
                      "probes not anchorable at one step");
      }
      plan.reason = reason;
    }
  }
  if (want_node_level && !node_capable) {
    if (anchor_ix != nullptr) {
      plan.structural_anchor = true;
      plan.structural_index = anchor_ix;
      plan.structural_name = query.steps[anchor].name;
    } else {
      want_node_level = false;
      plan.reason = "probes not anchorable at one step";
    }
  }

  plan.probes = std::move(probes);
  plan.disjunctive = disjunctive;
  plan.anchor_step = anchor;
  bool anchor_exact =
      want_node_level ? (!disjunctive && any_exact) || all_exact : all_exact;
  // A structural-joined anchor always rechecks: the join proves only that
  // some value hit lies below the anchor, not the branch's exact depth.
  plan.need_recheck = uncovered || !anchor_exact || plan.structural_anchor;
  if (plan.probes.size() > 1) {
    plan.method = want_node_level ? AccessMethod::kNodeIdAndOr
                                  : AccessMethod::kDocIdAndOr;
  } else {
    plan.method =
        want_node_level ? AccessMethod::kNodeIdList : AccessMethod::kDocIdList;
  }
  plan.explain = std::string(AccessMethodName(plan.method)) + " via";
  for (const PlannedProbe& p : plan.probes) {
    plan.explain += " [" + p.pred.full_path.ToString() + " " +
                    xpath::CompOpName(p.pred.op) + " ... using index '" +
                    p.index->def().name + "' (" +
                    (p.match == xpath::IndexMatch::kExact ? "exact"
                                                          : "filtering") +
                    ")]";
  }
  if (plan.structural_anchor)
    plan.explain += " [anchored via structural index '" +
                    plan.structural_index->def().name + "']";
  if (plan.need_recheck) plan.explain += " + recheck";
  return plan;
}

std::vector<WorkRange> PartitionForParallelism(size_t n, size_t parallelism) {
  std::vector<WorkRange> ranges;
  if (parallelism <= 1 || n < 2 * kMinItemsPerTask) return ranges;
  // Over-decompose so stealing can re-balance, but never below the per-task
  // floor: tasks = min(2 * parallelism, n / kMinItemsPerTask).
  size_t tasks = std::min(2 * parallelism, n / kMinItemsPerTask);
  if (tasks < 2) return ranges;
  size_t base = n / tasks;
  size_t extra = n % tasks;  // first `extra` chunks get one more item
  size_t begin = 0;
  for (size_t t = 0; t < tasks; t++) {
    size_t len = base + (t < extra ? 1 : 0);
    ranges.push_back(WorkRange{begin, begin + len});
    begin += len;
  }
  return ranges;
}

}  // namespace query
}  // namespace xdb
