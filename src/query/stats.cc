#include "query/stats.h"

#include <algorithm>

#include "common/coding.h"

namespace xdb {
namespace query {

uint64_t StatsKeyHash(Slice key) {
  // FNV-1a, 64-bit. Chosen for determinism (golden tests, crash replay)
  // rather than strength; key sets small enough to index are far below the
  // collision regime that would skew a 64-sample sketch.
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < key.size(); i++) {
    h ^= static_cast<unsigned char>(key[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// One index's live stats. The KMV sketch keeps the kSketchSize smallest
/// key hashes with the key bytes and a live-entry refcount, giving (a) a
/// distinct-count estimator — the k-th smallest of D uniform hashes sits
/// near k/D of the hash space — and (b) a uniform sample of distinct keys
/// for range selectivity. Removes retire a sampled key when its refcount
/// hits zero; removes of unsampled keys only decrement the entry count
/// (the estimate drifts high until the next rebuild, which is the safe
/// direction — overestimating distinct keys underestimates selectivity).
struct CollectionStats::PerIndex final : public ValueIndexStatsListener {
  explicit PerIndex(CollectionStats* owner_in) : owner(owner_in) {}

  void OnEntryAdded(Slice encoded_key) override {
    MutexLock lock(owner->mu_);
    entry_count++;
    uint64_t h = StatsKeyHash(encoded_key);
    auto it = sketch.find(h);
    if (it != sketch.end()) {
      it->second.count++;
    } else if (sketch.size() < kSketchSize) {
      sketch.emplace(h, SampleEntry{encoded_key.ToString(), 1});
    } else if (h < sketch.rbegin()->first) {
      sketch.erase(std::prev(sketch.end()));
      sketch.emplace(h, SampleEntry{encoded_key.ToString(), 1});
      saturated = true;
    } else {
      saturated = true;
    }
  }

  void OnEntryRemoved(Slice encoded_key) override {
    MutexLock lock(owner->mu_);
    if (entry_count > 0) entry_count--;
    auto it = sketch.find(StatsKeyHash(encoded_key));
    if (it != sketch.end() && it->second.count > 0 && --it->second.count == 0)
      sketch.erase(it);
  }

  struct SampleEntry {
    std::string key;
    uint64_t count = 0;  // live entries with this key (refcount)
  };

  double EstimateDistinct() const {
    size_t k = sketch.size();
    if (k == 0) return 0;
    if (!saturated) return static_cast<double>(k);
    // KMV estimator: D ~= (k - 1) / h_max with hashes normalized to (0, 1].
    double h_max = (static_cast<double>(sketch.rbegin()->first) + 1.0) /
                   18446744073709551616.0;  // 2^64
    double est = static_cast<double>(k - 1) / h_max;
    est = std::max(est, static_cast<double>(k));
    return std::min(est, static_cast<double>(entry_count));
  }

  CollectionStats* owner;
  uint64_t entry_count = 0;
  bool saturated = false;  // ever displaced/rejected a hash: estimator mode
  std::map<uint64_t, SampleEntry> sketch;  // hash -> sampled key
};

/// One structural index's live stats: exact entry count plus a bounded
/// per-name (count, span-sum) table. Names past the cap pool into
/// `other_count` — the planner then estimates an untracked name at the whole
/// pool's size, which overprices (never underprices) the structural scan.
/// Removes of pooled names only decrement the pool, the same safe-direction
/// drift as the KMV sketch above.
struct CollectionStats::PerStructural final
    : public StructuralIndexStatsListener {
  explicit PerStructural(CollectionStats* owner_in) : owner(owner_in) {}

  void OnElementAdded(Slice local_name, uint32_t subtree_size) override {
    MutexLock lock(owner->mu_);
    entries_added++;
    entry_count++;
    std::string key = local_name.ToString();
    auto it = names.find(key);
    if (it == names.end()) {
      if (names.size() >= kMaxStructuralNames) {
        other_count++;
        return;
      }
      it = names.emplace(std::move(key), StructuralNameStats{}).first;
    }
    it->second.count++;
    it->second.span_sum += subtree_size;
  }

  void OnElementRemoved(Slice local_name, uint32_t subtree_size) override {
    MutexLock lock(owner->mu_);
    entries_removed++;
    if (entry_count > 0) entry_count--;
    auto it = names.find(local_name.ToString());
    if (it == names.end()) {
      if (other_count > 0) other_count--;
      return;
    }
    StructuralNameStats& s = it->second;
    s.span_sum -= std::min<uint64_t>(s.span_sum, subtree_size);
    if (s.count > 0 && --s.count == 0) names.erase(it);
  }

  CollectionStats* owner;
  uint64_t entry_count = 0;
  uint64_t other_count = 0;
  /// Process-lifetime maintenance counters; not persisted (see the
  /// StructuralStatsSnapshot field comment).
  uint64_t entries_added = 0;
  uint64_t entries_removed = 0;
  std::map<std::string, StructuralNameStats> names;
};

CollectionStats::CollectionStats() = default;
CollectionStats::~CollectionStats() = default;

void CollectionStats::NoteDocumentInserted(uint64_t node_count) {
  // The epoch bump happens under mu_ in every mutator so a Snapshot() never
  // pairs new counters with an older epoch (a plan priced on the new counts
  // but cached under the old epoch key would be served at that epoch).
  MutexLock lock(mu_);
  doc_count_++;
  node_count_ += node_count;
  Bump();
}

void CollectionStats::NoteDocumentDeleted() {
  MutexLock lock(mu_);
  if (doc_count_ > 0) {
    // The deleted document's node count is unknown without an extra
    // storage pass; decay by the collection average. Self-corrects as
    // documents churn and is rebuilt exactly on storage rebuild.
    node_count_ -= std::min(node_count_, node_count_ / doc_count_);
    doc_count_--;
  } else {
    node_count_ = 0;
  }
  Bump();
}

void CollectionStats::NoteDocumentMutated() { Bump(); }

ValueIndexStatsListener* CollectionStats::ListenerFor(
    const std::string& name) {
  MutexLock lock(mu_);
  auto it = indexes_.find(name);
  if (it == indexes_.end())
    it = indexes_.emplace(name, std::make_unique<PerIndex>(this)).first;
  return it->second.get();
}

ValueIndexStatsListener* CollectionStats::NoteIndexCreated(
    const std::string& name) {
  MutexLock lock(mu_);
  auto it = indexes_.find(name);
  if (it == indexes_.end())
    it = indexes_.emplace(name, std::make_unique<PerIndex>(this)).first;
  Bump();
  return it->second.get();
}

void CollectionStats::NoteIndexDropped(const std::string& name) {
  MutexLock lock(mu_);
  indexes_.erase(name);
  Bump();
}

StructuralIndexStatsListener* CollectionStats::StructuralListenerFor(
    const std::string& name) {
  MutexLock lock(mu_);
  auto it = structural_.find(name);
  if (it == structural_.end())
    it = structural_.emplace(name, std::make_unique<PerStructural>(this))
             .first;
  return it->second.get();
}

StructuralIndexStatsListener* CollectionStats::NoteStructuralIndexCreated(
    const std::string& name) {
  MutexLock lock(mu_);
  auto it = structural_.find(name);
  if (it == structural_.end())
    it = structural_.emplace(name, std::make_unique<PerStructural>(this))
             .first;
  Bump();
  return it->second.get();
}

void CollectionStats::NoteStructuralIndexDropped(const std::string& name) {
  MutexLock lock(mu_);
  structural_.erase(name);
  Bump();
}

CollectionStatsSnapshot CollectionStats::Snapshot() const {
  CollectionStatsSnapshot snap;
  // epoch/valid are read under mu_, the same hold every mutator bumps
  // under, so the snapshot's epoch always matches its counters.
  MutexLock lock(mu_);
  snap.valid = valid();
  snap.epoch = epoch();
  snap.doc_count = doc_count_;
  snap.node_count = node_count_;
  for (const auto& [name, ix] : indexes_) {
    IndexStatsSnapshot s;
    s.entry_count = ix->entry_count;
    s.distinct_keys = ix->EstimateDistinct();
    s.sample_keys.reserve(ix->sketch.size());
    for (const auto& [hash, entry] : ix->sketch) s.sample_keys.push_back(entry.key);
    std::sort(s.sample_keys.begin(), s.sample_keys.end());
    snap.indexes.emplace(name, std::move(s));
  }
  for (const auto& [name, st] : structural_) {
    StructuralStatsSnapshot s;
    s.entry_count = st->entry_count;
    s.other_count = st->other_count;
    s.entries_added = st->entries_added;
    s.entries_removed = st->entries_removed;
    s.names = st->names;
    snap.structural.emplace(name, std::move(s));
  }
  return snap;
}

void CollectionStats::ResetEmpty(uint64_t epoch_floor) {
  MutexLock lock(mu_);
  doc_count_ = 0;
  node_count_ = 0;
  for (auto& [name, ix] : indexes_) {
    ix->entry_count = 0;
    ix->saturated = false;
    ix->sketch.clear();
  }
  for (auto& [name, st] : structural_) {
    st->entry_count = 0;
    st->other_count = 0;
    st->names.clear();
  }
  // Under mu_ so a concurrent Snapshot() never pairs the zeroed counters
  // with the pre-reset epoch; the read-modify-write itself is safe from
  // concurrent bumps because callers hold the collection's exclusive latch.
  epoch_.store(std::max(epoch() + 1, epoch_floor + 1),
               std::memory_order_release);
  valid_.store(true, std::memory_order_release);
}

void CollectionStats::Serialize(std::string* out) const {
  MutexLock lock(mu_);
  PutFixed64(out, epoch());
  PutFixed64(out, doc_count_);
  PutFixed64(out, node_count_);
  PutVarint64(out, indexes_.size());
  for (const auto& [name, ix] : indexes_) {
    PutLengthPrefixed(out, name);
    PutFixed64(out, ix->entry_count);
    out->push_back(ix->saturated ? 1 : 0);
    PutVarint64(out, ix->sketch.size());
    for (const auto& [hash, entry] : ix->sketch) {
      PutFixed64(out, hash);
      PutFixed64(out, entry.count);
      PutLengthPrefixed(out, entry.key);
    }
  }
  // Structural section, appended after the value-index records so blobs
  // written by older builds (which simply end here) still restore: a
  // missing section means "no structural indexes".
  PutVarint64(out, structural_.size());
  for (const auto& [name, st] : structural_) {
    PutLengthPrefixed(out, name);
    PutFixed64(out, st->entry_count);
    PutFixed64(out, st->other_count);
    PutVarint64(out, st->names.size());
    for (const auto& [elem, ns] : st->names) {
      PutLengthPrefixed(out, elem);
      PutFixed64(out, ns.count);
      PutFixed64(out, ns.span_sum);
    }
  }
}

Status CollectionStats::Restore(Slice data) {
  auto read_var = [&](uint64_t* v) -> bool {
    size_t n = GetVarint64(data.data(), data.data() + data.size(), v);
    if (n == 0) return false;
    data.RemovePrefix(n);
    return true;
  };
  auto read_fix = [&](uint64_t* v) -> bool {
    if (data.size() < 8) return false;
    *v = DecodeFixed64(data.data());
    data.RemovePrefix(8);
    return true;
  };
  uint64_t epoch, docs, nodes, n_indexes;
  if (!read_fix(&epoch) || !read_fix(&docs) || !read_fix(&nodes) ||
      !read_var(&n_indexes))
    return Status::Corruption("truncated collection stats");
  // Parse fully before applying so a corrupt tail cannot leave the stats
  // half-restored.
  struct ParsedIndex {
    std::string name;
    uint64_t entry_count = 0;
    bool saturated = false;
    std::map<uint64_t, PerIndex::SampleEntry> sketch;
  };
  std::vector<ParsedIndex> parsed;
  for (uint64_t i = 0; i < n_indexes; i++) {
    ParsedIndex pi;
    Slice name;
    if (!GetLengthPrefixed(&data, &name))
      return Status::Corruption("bad stats index name");
    pi.name = name.ToString();
    uint64_t n_sketch;
    if (!read_fix(&pi.entry_count) || data.empty())
      return Status::Corruption("bad stats index entry count");
    pi.saturated = data[0] != 0;
    data.RemovePrefix(1);
    if (!read_var(&n_sketch)) return Status::Corruption("bad sketch size");
    for (uint64_t s = 0; s < n_sketch; s++) {
      uint64_t hash, count;
      Slice key;
      if (!read_fix(&hash) || !read_fix(&count) ||
          !GetLengthPrefixed(&data, &key))
        return Status::Corruption("bad sketch entry");
      pi.sketch.emplace(hash, PerIndex::SampleEntry{key.ToString(), count});
    }
    parsed.push_back(std::move(pi));
  }
  // Structural section; absent in blobs from before structural indexing.
  struct ParsedStructural {
    std::string name;
    uint64_t entry_count = 0;
    uint64_t other_count = 0;
    std::map<std::string, StructuralNameStats> names;
  };
  std::vector<ParsedStructural> parsed_structural;
  if (!data.empty()) {
    uint64_t n_structural;
    if (!read_var(&n_structural))
      return Status::Corruption("bad structural stats count");
    for (uint64_t i = 0; i < n_structural; i++) {
      ParsedStructural ps;
      Slice name;
      if (!GetLengthPrefixed(&data, &name))
        return Status::Corruption("bad structural stats name");
      ps.name = name.ToString();
      uint64_t n_names;
      if (!read_fix(&ps.entry_count) || !read_fix(&ps.other_count) ||
          !read_var(&n_names))
        return Status::Corruption("bad structural stats header");
      for (uint64_t s = 0; s < n_names; s++) {
        Slice elem;
        StructuralNameStats ns;
        if (!GetLengthPrefixed(&data, &elem) || !read_fix(&ns.count) ||
            !read_fix(&ns.span_sum))
          return Status::Corruption("bad structural name record");
        ps.names.emplace(elem.ToString(), ns);
      }
      parsed_structural.push_back(std::move(ps));
    }
  }
  // Update in place: open-time wiring may already have handed out listener
  // pointers into indexes_, so existing PerIndex objects must survive.
  MutexLock lock(mu_);
  doc_count_ = docs;
  node_count_ = nodes;
  for (ParsedIndex& pi : parsed) {
    auto it = indexes_.find(pi.name);
    if (it == indexes_.end())
      it = indexes_.emplace(pi.name, std::make_unique<PerIndex>(this)).first;
    it->second->entry_count = pi.entry_count;
    it->second->saturated = pi.saturated;
    it->second->sketch = std::move(pi.sketch);
  }
  for (ParsedStructural& ps : parsed_structural) {
    auto it = structural_.find(ps.name);
    if (it == structural_.end())
      it = structural_.emplace(ps.name, std::make_unique<PerStructural>(this))
               .first;
    it->second->entry_count = ps.entry_count;
    it->second->other_count = ps.other_count;
    it->second->names = std::move(ps.names);
  }
  epoch_.store(epoch, std::memory_order_release);
  valid_.store(true, std::memory_order_release);
  return Status::OK();
}

}  // namespace query
}  // namespace xdb
