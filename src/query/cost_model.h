// Cost model pricing the Table 2 access paths from collected statistics.
//
// Replaces the PR-4 rule ("avg records/doc > 2 -> node level") with priced
// alternatives. Each feasible path gets a scalar cost in abstract work units
// calibrated so one buffer-pool record fetch ~ 6 units:
//
//   full-scan   = doc_count * per_doc_eval
//   docid-list  = probe_cost + est_candidate_docs * per_doc_eval
//   nodeid-list = probe_cost + est_anchors * per_anchor_eval
//
//   per_doc_eval   = doc_open + records/doc * record_fetch
//                    + nodes/doc * node_scan        (QuickXScan whole doc)
//   per_anchor_eval= anchor_recheck + record_fetch  (node-ID lookup + fetch
//                    + residual eval of one anchor subtree)
//   probe_cost     = sum(probe_descend + scanned * posting_scan
//                        + emitted * list_merge)
//
// Selectivity comes from the per-index KMV sketch (query/stats.h):
// equality emits entry_count / distinct_keys postings; ranges emit
// entry_count * (fraction of sampled keys inside the encoded bounds). The
// constants reproduce the paper's observed crossovers: tiny collections
// full-scan, selective predicates probe, multi-record documents anchor at
// node level (the old > 2 records/doc rule emerges from the arithmetic
// instead of being hard-coded).
#ifndef XDB_QUERY_COST_MODEL_H_
#define XDB_QUERY_COST_MODEL_H_

#include <string>
#include <vector>

#include "query/access_path.h"
#include "query/stats.h"

namespace xdb {
namespace query {

/// Calibration constants (abstract work units; see header comment).
/// Calibrated against measured bench numbers — one unit ~ 0.5us of
/// single-threaded execution, anchored at node_scan = 1.2 (QuickXScan
/// measures 0.33-0.79us/node across the token-stream and stored-document
/// paths). CPU-side constants come straight from measured slopes; the
/// B-tree-shaped constants price page touches at the buffer-pool design
/// point rather than the warm in-memory fast path (a resident descent
/// measures ~2us, but the model must stay right when the tree is not
/// resident). Full derivation in EXPERIMENTS.md ("Cost-model
/// calibration"). A PlannerContext carries a copy so tests can pin
/// crossover points.
struct CostConstants {
  double probe_descend = 24.0;   // per probe: height-3 descent (3-4 page
                                 // touches) + key encode; warm measures ~4
  double posting_scan = 0.04;    // per posting off index leaves (8-29ns)
  double list_merge = 0.02;      // per posting through AND/OR merging
  double doc_open = 6.0;         // per candidate doc: locks, locator setup
  double record_fetch = 6.0;     // per record through the buffer pool
  double node_scan = 1.2;        // per node through QuickXScan (the anchor)
  double anchor_recheck = 30.0;  // per anchor: locator descent + root-path
                                 // walk (~0.8us/level, ~10 levels typical)
};

/// Postings one probe is expected to touch. `scanned` is what the range
/// scan reads; `emitted` is what survives into the merge (they differ only
/// for != probes, which scan everything and filter).
struct ProbeEstimate {
  double scanned = 0;
  double emitted = 0;
};

/// Structural-index options the planner discovered for the query; priced
/// alongside the Table 2 paths.
///
///   structural  = probe_descend + name_entries * posting_scan
///                 + name_entries * (anchor_recheck + record_fetch
///                                   + avg_subtree * node_scan)
///
/// With `anchor_join` (value probes whose descendant branches forbid
/// level-stripping), the node-level path stays feasible: its probe cost
/// grows by one structural range scan plus the interval merge, and each
/// surviving anchor pays the subtree recheck above.
struct StructuralOption {
  /// A structural index covers some query step's name: the structural-only
  /// scan is a candidate (priced only when no value probes are usable).
  bool scan_available = false;
  /// Value probes share one anchor step whose name a structural index
  /// covers, but a descendant branch forbids level-stripping: anchoring via
  /// the interval join is a candidate.
  bool anchor_join = false;
  double name_entries = 0;  // structural entries of the anchor element name
  double avg_subtree = 0;   // average subtree span under that name
};

/// Everything the cost model concluded, for EXPLAIN and the plan cache.
struct CostBreakdown {
  double full_scan = 0;
  double doc_list = -1;    // -1: no usable probes
  double node_list = -1;   // -1: probes not anchorable at one step
  double structural = -1;  // -1: no covering structural index
  double est_postings = 0;
  double est_docs = 0;     // candidate docs after combine (doc-level)
  double est_anchors = 0;  // candidate anchors after combine (node-level)
  AccessMethod chosen = AccessMethod::kFullScan;

  /// Deterministic one-line breakdown used as the plan's `reason`, e.g.
  ///   "cost: full-scan=2320 docid-list=119* nodeid-list=135; est
  ///    postings=1 docs=1/40"
  /// ('*' marks the chosen path; infeasible paths are omitted).
  std::string Reason() const;
};

/// Expected postings for one planned probe, from the index's statistics.
/// Falls back to zero for an index with no entries.
ProbeEstimate EstimateProbePostings(const IndexStatsSnapshot& stats,
                                    const PlannedProbe& probe);

/// Prices every feasible path — Table 2 plus the structural options — and
/// picks the cheapest. `probes` may be empty (full scan and, when
/// `structural.scan_available`, the structural-only scan are then the only
/// candidates). Ties prefer DocID-level, then NodeID-level, then the
/// structural scan, then full scan (an exact list beats a scan of equal
/// cost).
CostBreakdown CostPlans(const CollectionStatsSnapshot& stats,
                        const CostConstants& cc,
                        const std::vector<PlannedProbe>& probes,
                        bool disjunctive, bool node_capable,
                        const StructuralOption& structural,
                        double avg_records_per_doc);

}  // namespace query
}  // namespace xdb

#endif  // XDB_QUERY_COST_MODEL_H_
