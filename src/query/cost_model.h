// Cost model pricing the Table 2 access paths from collected statistics.
//
// Replaces the PR-4 rule ("avg records/doc > 2 -> node level") with priced
// alternatives. Each feasible path gets a scalar cost in abstract work units
// calibrated so one buffer-pool record fetch ~ 14 units:
//
//   full-scan   = doc_count * per_doc_eval
//   docid-list  = probe_cost + est_candidate_docs * per_doc_eval
//   nodeid-list = probe_cost + est_anchors * per_anchor_eval
//
//   per_doc_eval   = doc_open + records/doc * record_fetch
//                    + nodes/doc * node_scan        (QuickXScan whole doc)
//   per_anchor_eval= anchor_recheck + record_fetch  (node-ID lookup + fetch
//                    + residual eval of one anchor subtree)
//   probe_cost     = sum(probe_descend + scanned * posting_scan
//                        + emitted * list_merge)
//
// Selectivity comes from the per-index KMV sketch (query/stats.h):
// equality emits entry_count / distinct_keys postings; ranges emit
// entry_count * (fraction of sampled keys inside the encoded bounds). The
// constants reproduce the paper's observed crossovers: tiny collections
// full-scan, selective predicates probe, multi-record documents anchor at
// node level (the old > 2 records/doc rule emerges from the arithmetic
// instead of being hard-coded).
#ifndef XDB_QUERY_COST_MODEL_H_
#define XDB_QUERY_COST_MODEL_H_

#include <string>
#include <vector>

#include "query/access_path.h"
#include "query/stats.h"

namespace xdb {
namespace query {

/// Calibration constants (abstract work units; see header comment). A
/// PlannerContext carries a copy so tests can pin crossover points.
struct CostConstants {
  double probe_descend = 60.0;   // one B-tree descent per index probe
  double posting_scan = 1.0;     // per posting scanned off index leaves
  double list_merge = 0.2;       // per posting through AND/OR merging
  double doc_open = 32.0;        // per candidate doc: locks, locator setup
  double record_fetch = 14.0;    // per record through the buffer pool
  double node_scan = 1.2;        // per node pumped through QuickXScan
  double anchor_recheck = 60.0;  // per anchor: node-ID lookup + residual
};

/// Postings one probe is expected to touch. `scanned` is what the range
/// scan reads; `emitted` is what survives into the merge (they differ only
/// for != probes, which scan everything and filter).
struct ProbeEstimate {
  double scanned = 0;
  double emitted = 0;
};

/// Everything the cost model concluded, for EXPLAIN and the plan cache.
struct CostBreakdown {
  double full_scan = 0;
  double doc_list = -1;   // -1: no usable probes
  double node_list = -1;  // -1: probes not anchorable at one step
  double est_postings = 0;
  double est_docs = 0;     // candidate docs after combine (doc-level)
  double est_anchors = 0;  // candidate anchors after combine (node-level)
  AccessMethod chosen = AccessMethod::kFullScan;

  /// Deterministic one-line breakdown used as the plan's `reason`, e.g.
  ///   "cost: full-scan=2320 docid-list=119* nodeid-list=135; est
  ///    postings=1 docs=1/40"
  /// ('*' marks the chosen path; infeasible paths are omitted).
  std::string Reason() const;
};

/// Expected postings for one planned probe, from the index's statistics.
/// Falls back to zero for an index with no entries.
ProbeEstimate EstimateProbePostings(const IndexStatsSnapshot& stats,
                                    const PlannedProbe& probe);

/// Prices every feasible Table 2 path and picks the cheapest. `probes` may
/// be empty (full scan is then the only candidate). Ties prefer
/// DocID-level, then NodeID-level, then full scan (an exact list beats a
/// scan of equal cost).
CostBreakdown CostPlans(const CollectionStatsSnapshot& stats,
                        const CostConstants& cc,
                        const std::vector<PlannedProbe>& probes,
                        bool disjunctive, bool node_capable,
                        double avg_records_per_doc);

}  // namespace query
}  // namespace xdb

#endif  // XDB_QUERY_COST_MODEL_H_
