// LRU cache of compiled XPath plans, keyed by (query text, force mode,
// want_values, stats epoch).
//
// A cache hit skips the whole front half of query execution: XPath parse,
// candidate extraction, cost-model pricing, and QueryTree compilation. The
// stats epoch in the key makes invalidation implicit — every document
// insert/delete and every index create/drop bumps the collection's epoch,
// so entries priced on old statistics simply stop matching and age out of
// the LRU. Index create/drop additionally calls Invalidate() (clears the
// cache outright) because dropped indexes leave dangling ValueIndex
// pointers inside cached QueryPlans; the executor also re-validates the
// collection's index-structure version under the shared latch before
// dereferencing any probe, so a plan raced by a drop is replanned, never
// served.
//
// Counters (query.plan_cache.{hits,misses,evictions,invalidations}) are
// engine-wide and injected by the engine at open; invalidations also emit
// an EventLog record naming the collection and cause.
#ifndef XDB_QUERY_PLAN_CACHE_H_
#define XDB_QUERY_PLAN_CACHE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "query/access_path.h"
#include "xpath/ast.h"

namespace xdb {

namespace xpath {
class QueryTree;
}  // namespace xpath

namespace query {

/// One compiled, immutable plan. Shared by reference so concurrent queries
/// and the cache can hold it simultaneously; the QueryTree is read-only
/// during evaluation (the parallel executor already shares one tree across
/// worker threads).
struct CompiledPlan {
  xpath::Path path;  // parsed query
  QueryPlan plan;
  std::shared_ptr<const xpath::QueryTree> tree;  // compiled for want_values
  /// For node-level plans only: the pre-compiled recheck residual
  /// (self[anchor predicates]/remaining steps) and the predicate-free
  /// main-path prefix the anchors are verified against. Compiling these
  /// here is what lets a cache hit skip compilation *entirely* — the
  /// recheck phase has nothing left to build.
  std::shared_ptr<const xpath::QueryTree> residual_tree;
  xpath::Path prefix_pattern;
  /// For structural plans: the anchor element name resolved against the
  /// name dictionary at compile time. kInvalidNameId means the name was
  /// never interned — no document contains it, so the scan is empty.
  uint32_t structural_name_id = 0xFFFFFFFFu;
  uint64_t stats_epoch = 0;
  /// Collection's index-structure version at plan time; the executor
  /// refuses to probe when it no longer matches (see header comment).
  uint64_t index_version = 0;
  bool stats_valid = false;  // plan was cost-based (vs heuristic fallback)
  // Pre-rendered EXPLAIN fields so cache hits fill QueryProfile without
  // touching the planner.
  std::vector<std::string> probe_lines;
  double avg_records_per_doc = 0;
  uint64_t doc_count = 0;
  double nodes_per_doc = 0;
};

class PlanCache {
 public:
  struct Counters {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* invalidations = nullptr;
  };

  /// capacity == 0 disables the cache (Lookup misses, Insert drops).
  explicit PlanCache(size_t capacity = 0) : capacity_(capacity) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  void Configure(size_t capacity, Counters counters, obs::EventLog* events,
                 std::string collection_name) XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    capacity_ = capacity;
    counters_ = counters;
    events_ = events;
    collection_ = std::move(collection_name);
  }

  bool enabled() const XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return capacity_ > 0;
  }

  std::shared_ptr<const CompiledPlan> Lookup(const std::string& query_text,
                                             ForceMethod force,
                                             bool want_values, uint64_t epoch)
      XDB_EXCLUDES(mu_);

  void Insert(const std::string& query_text, ForceMethod force,
              bool want_values, uint64_t epoch,
              std::shared_ptr<const CompiledPlan> plan) XDB_EXCLUDES(mu_);

  /// Drops every entry (index create/drop, storage rebuild). `cause` lands
  /// in the event log.
  void Invalidate(const char* cause) XDB_EXCLUDES(mu_);

  size_t size() const XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_.size();
  }

 private:
  using Key = std::tuple<std::string, uint8_t, bool, uint64_t>;
  struct Entry {
    std::shared_ptr<const CompiledPlan> plan;
    std::list<Key>::iterator lru_pos;  // back = most recent
  };

  mutable Mutex mu_{LockRank::kPlanCache};
  size_t capacity_ XDB_GUARDED_BY(mu_);
  Counters counters_ XDB_GUARDED_BY(mu_);
  obs::EventLog* events_ XDB_GUARDED_BY(mu_) = nullptr;
  std::string collection_ XDB_GUARDED_BY(mu_);
  std::map<Key, Entry> entries_ XDB_GUARDED_BY(mu_);
  std::list<Key> lru_ XDB_GUARDED_BY(mu_);
};

}  // namespace query
}  // namespace xdb

#endif  // XDB_QUERY_PLAN_CACHE_H_
