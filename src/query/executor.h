// Plan selection (the "relatively simple at the moment" access path
// selection of Section 4) — rule-based choice among the Table 2 methods.
#ifndef XDB_QUERY_EXECUTOR_H_
#define XDB_QUERY_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "index/value_index.h"
#include "query/access_path.h"
#include "query/cost_model.h"
#include "query/stats.h"
#include "xpath/ast.h"

namespace xdb {
namespace query {

struct PlannerContext {
  std::vector<ValueIndex*> indexes;
  /// Structural (pre,post) interval indexes; a name-covering entry makes
  /// the structural scan and the descendant-branch anchor join plannable.
  std::vector<StructuralIndex*> structural_indexes;
  uint64_t doc_count = 0;
  /// Average records per document; documents spanning several records make
  /// NodeID list access cheaper than fetching whole documents.
  double avg_records_per_doc = 1.0;
  /// Collected statistics; when non-null and valid, plan choice is priced by
  /// the cost model instead of the Section 4.3 rules. Null (or !valid) falls
  /// back to the heuristic — degraded-stats mode after a failed restore.
  const CollectionStatsSnapshot* stats = nullptr;
  CostConstants costs;
};

/// Chooses the access method. With valid statistics in the context, every
/// feasible Table 2 path is priced by the cost model (query/cost_model.h)
/// and the cheapest wins; the plan's `reason` carries the cost breakdown.
/// Without statistics, the Section 4.3 rules apply:
///  - no usable probe            -> full scan;
///  - probes whose predicates all anchor at one step and whose branches are
///    child-only chains         -> NodeID-level list/and/or when documents
///                                 are multi-record (or when forced),
///                                 DocID-level otherwise;
///  - exact index matches and fully covered predicates -> no recheck for
///    the anchor's own predicates (the residual path still runs);
///  - containment matches       -> filtering (recheck required).
Result<QueryPlan> ChoosePlan(const xpath::Path& query,
                             const PlannerContext& ctx, ForceMethod force);

// --- parallel execution policy ---

/// A contiguous [begin, end) slice of the candidate list, one per task.
struct WorkRange {
  size_t begin = 0;
  size_t end = 0;
};

/// Minimum candidates per task before fan-out pays for itself: below it the
/// chunk's QuickXScan work is cheaper than the pool handoff, so the serial
/// fallback stays the default for tiny result sets.
inline constexpr size_t kMinItemsPerTask = 4;

/// Partitions `n` candidates into DocID-order-preserving contiguous chunks
/// for up to `parallelism` threads. Returns an empty vector when the work is
/// too small (cost threshold: fewer than two chunks of kMinItemsPerTask) or
/// `parallelism <= 1` — callers then run the plain serial loop. Chunk count
/// over-decomposes (2x parallelism) so work stealing can re-balance skewed
/// documents; concatenating per-chunk results in range order reproduces the
/// serial evaluation order exactly.
std::vector<WorkRange> PartitionForParallelism(size_t n, size_t parallelism);

}  // namespace query
}  // namespace xdb

#endif  // XDB_QUERY_EXECUTOR_H_
