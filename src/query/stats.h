// Per-collection statistics driving cost-based access-path selection.
//
// The paper picks among the Table 2 access methods with "relatively simple"
// rules; making that choice data-driven needs per-collection cardinalities
// maintained as documents come and go:
//
//  * document / node / record counts (doc_count exact, node_count a running
//    estimate corrected on every insert and decayed by the collection
//    average on delete);
//  * per-value-index entry counts (exact) plus a distinct-key estimate and a
//    uniform key sample from a bounded KMV ("K minimum values") sketch —
//    hashing every key and keeping the K smallest hashes yields both a
//    distinct-count estimator and an unbiased sample of distinct keys, which
//    prices equality and range selectivity;
//  * a monotonically bumping stats epoch. Every document insert/delete and
//    every index create/drop bumps it; compiled plans are keyed by it, so an
//    epoch bump implicitly invalidates every cached plan priced on the old
//    numbers.
//
// Concurrency: mutating calls run under the collection's exclusive latch
// (they piggyback on document writes), but readers snapshot without the
// latch, so every method takes the internal leaf mutex `mu_`. Nothing is
// acquired while `mu_` is held — it nests inside any engine lock.
#ifndef XDB_QUERY_STATS_H_
#define XDB_QUERY_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/structural_index.h"
#include "index/value_index.h"

namespace xdb {
namespace query {

/// Deterministic 64-bit FNV-1a over the encoded key bytes — stable across
/// runs/platforms so goldens and replay stay stable. Not order-preserving:
/// range selectivity relies on the sampled key bytes (sorted in encoded-key
/// order), never on hash order.
uint64_t StatsKeyHash(Slice key);

/// Plain-data copy of one index's statistics (planning + persistence).
struct IndexStatsSnapshot {
  uint64_t entry_count = 0;
  /// KMV distinct-key estimate, >= 1 whenever entry_count > 0.
  double distinct_keys = 0;
  /// Uniform sample of distinct encoded keys (sorted byte order). Encoded
  /// keys compare like the index itself, so range selectivity is the
  /// fraction of sample keys inside the probe's [lo, hi].
  std::vector<std::string> sample_keys;
};

/// Per-element-name structural facts: how many instances of the name one
/// structural index holds and how wide their subtrees are on average (the
/// span prices the residual recheck of one structural anchor).
struct StructuralNameStats {
  uint64_t count = 0;
  uint64_t span_sum = 0;  // sum of descendant-element counts
  double avg_subtree() const {
    return count == 0 ? 0.0
                      : static_cast<double>(span_sum) /
                            static_cast<double>(count);
  }
};

/// Plain-data copy of one structural index's statistics. The per-name map is
/// bounded (CollectionStats::kMaxStructuralNames); entries for names beyond
/// the cap pool into `other_count`, so an uncached name estimates high
/// (never prices a structural scan as free when it is not).
struct StructuralStatsSnapshot {
  uint64_t entry_count = 0;
  uint64_t other_count = 0;  // entries whose name fell past the cap
  /// Cumulative maintenance counters (every listener add/remove since the
  /// index object was created). Process-lifetime like the registry's
  /// Counters — deliberately NOT persisted to stats.xdb; the metrics
  /// registry surfaces them as index.structural.entries_added/removed.
  uint64_t entries_added = 0;
  uint64_t entries_removed = 0;
  std::map<std::string, StructuralNameStats> names;

  /// Expected instances of `name`: the tracked count, or the pooled
  /// overflow count for names past the cap (conservatively high).
  double EstimateNameCount(const std::string& name) const {
    auto it = names.find(name);
    if (it != names.end()) return static_cast<double>(it->second.count);
    return static_cast<double>(other_count);
  }
  double AvgSubtreeSize(const std::string& name) const {
    auto it = names.find(name);
    return it == names.end() ? 0.0 : it->second.avg_subtree();
  }
};

/// Plain-data copy of a collection's statistics at one epoch.
struct CollectionStatsSnapshot {
  /// False when stats were missing/stale at open: cost-based planning is
  /// unavailable and the planner falls back to the PR-4 heuristic.
  bool valid = false;
  uint64_t epoch = 0;
  uint64_t doc_count = 0;
  uint64_t node_count = 0;  // running estimate (see header comment)
  std::map<std::string, IndexStatsSnapshot> indexes;  // by index name
  /// Structural indexes, by index name.
  std::map<std::string, StructuralStatsSnapshot> structural;

  double avg_nodes_per_doc() const {
    return doc_count == 0 ? 0.0
                          : static_cast<double>(node_count) /
                                static_cast<double>(doc_count);
  }
};

/// The live, incrementally maintained statistics object (one per
/// collection). Implements per-index maintenance by handing each ValueIndex
/// a ValueIndexStatsListener that feeds entry adds/removes back here, so
/// every maintenance path (insert, delete, subtree edits, text updates,
/// backfill) is covered without per-call-site hooks.
class CollectionStats {
 public:
  static constexpr size_t kSketchSize = 64;
  /// Distinct element names tracked per structural index before new names
  /// pool into the overflow bucket.
  static constexpr size_t kMaxStructuralNames = 256;

  // Both out of line: PerIndex is incomplete here and the map of
  // unique_ptr<PerIndex> needs the complete type to destroy (including
  // constructor unwinding).
  CollectionStats();
  ~CollectionStats();
  CollectionStats(const CollectionStats&) = delete;
  CollectionStats& operator=(const CollectionStats&) = delete;

  // --- document-level maintenance (exclusive collection latch held) ---
  void NoteDocumentInserted(uint64_t node_count) XDB_EXCLUDES(mu_);
  void NoteDocumentDeleted() XDB_EXCLUDES(mu_);
  /// Structural change that re-prices plans without changing counts
  /// (subtree insert/delete, text update).
  void NoteDocumentMutated() XDB_EXCLUDES(mu_);

  // --- index lifecycle (exclusive collection latch held) ---
  /// Registers the index and returns the listener to install on it. The
  /// pointer stays valid until NoteIndexDropped / destruction.
  ValueIndexStatsListener* NoteIndexCreated(const std::string& name)
      XDB_EXCLUDES(mu_);
  void NoteIndexDropped(const std::string& name) XDB_EXCLUDES(mu_);
  /// Like NoteIndexCreated but without the epoch bump — open-time wiring of
  /// indexes already reflected in the persisted epoch.
  ValueIndexStatsListener* ListenerFor(const std::string& name)
      XDB_EXCLUDES(mu_);

  // --- structural index lifecycle (exclusive collection latch held) ---
  /// Same contract as the value-index trio, for structural indexes: the
  /// returned listener feeds the per-name count + span sketch.
  StructuralIndexStatsListener* NoteStructuralIndexCreated(
      const std::string& name) XDB_EXCLUDES(mu_);
  void NoteStructuralIndexDropped(const std::string& name) XDB_EXCLUDES(mu_);
  StructuralIndexStatsListener* StructuralListenerFor(const std::string& name)
      XDB_EXCLUDES(mu_);

  // --- epoch / validity ---
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  bool valid() const { return valid_.load(std::memory_order_acquire); }
  /// Degrade to heuristic costing (stats file missing or stale at open).
  void Invalidate() { valid_.store(false, std::memory_order_release); }

  /// Copies everything under the leaf mutex. Cheap: a handful of counters
  /// plus <= kSketchSize sample keys per index.
  CollectionStatsSnapshot Snapshot() const XDB_EXCLUDES(mu_);

  /// Resets to valid-and-empty (collection create, storage rebuild). Keeps
  /// the epoch monotonic by bumping past the given floor.
  void ResetEmpty(uint64_t epoch_floor) XDB_EXCLUDES(mu_);

  // --- persistence (stats.xdb; see engine/stats_store.h) ---
  void Serialize(std::string* out) const XDB_EXCLUDES(mu_);
  Status Restore(Slice data) XDB_EXCLUDES(mu_);

 private:
  struct PerIndex;
  struct PerStructural;

  void Bump() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  std::atomic<uint64_t> epoch_{0};
  std::atomic<bool> valid_{true};
  mutable Mutex mu_{LockRank::kCollectionStats};
  uint64_t doc_count_ XDB_GUARDED_BY(mu_) = 0;
  uint64_t node_count_ XDB_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::unique_ptr<PerIndex>> indexes_
      XDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<PerStructural>> structural_
      XDB_GUARDED_BY(mu_);
};

}  // namespace query
}  // namespace xdb

#endif  // XDB_QUERY_STATS_H_
