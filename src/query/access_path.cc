#include "query/access_path.h"

#include <algorithm>
#include <map>
#include <set>

#include "xml/node_id.h"

namespace xdb {
namespace query {

const char* AccessMethodName(AccessMethod m) {
  switch (m) {
    case AccessMethod::kFullScan: return "full-scan";
    case AccessMethod::kDocIdList: return "docid-list";
    case AccessMethod::kNodeIdList: return "nodeid-list";
    case AccessMethod::kDocIdAndOr: return "docid-anding/oring";
    case AccessMethod::kNodeIdAndOr: return "nodeid-anding/oring";
    case AccessMethod::kStructuralScan: return "structural-scan";
  }
  return "?";
}

namespace {
xpath::Step CloneStepSkeleton(const xpath::Step& s) {
  xpath::Step out;
  out.axis = s.axis;
  out.test = s.test;
  out.name = s.name;
  return out;
}

// Levels the branch adds below the anchor, or -1 if not a pure
// child/attribute chain.
int BranchStripLevels(const xpath::Path& branch) {
  int levels = 0;
  for (const auto& s : branch.steps) {
    switch (s.axis) {
      case xpath::Axis::kChild:
      case xpath::Axis::kAttribute:
        levels++;
        break;
      case xpath::Axis::kSelf:
        break;
      default:
        return -1;
    }
  }
  return levels;
}
}  // namespace

xpath::Path ClonePathSkeleton(const xpath::Path& path) {
  xpath::Path out;
  out.absolute = path.absolute;
  for (const auto& s : path.steps) out.steps.push_back(CloneStepSkeleton(s));
  return out;
}

xpath::Path ConcatPredicatePath(const xpath::Path& main, size_t step_index,
                                const xpath::Path& branch) {
  xpath::Path out;
  out.absolute = main.absolute;
  for (size_t i = 0; i <= step_index && i < main.steps.size(); i++)
    out.steps.push_back(CloneStepSkeleton(main.steps[i]));
  for (const auto& s : branch.steps) {
    if (s.axis == xpath::Axis::kSelf && s.test == xpath::NodeTest::kAnyKind)
      continue;  // '.' steps add nothing to the linear path
    out.steps.push_back(CloneStepSkeleton(s));
  }
  return out;
}

namespace {

bool BranchIsLinear(const xpath::Path& branch) {
  for (const auto& s : branch.steps) {
    if (!s.predicates.empty()) return false;
    switch (s.axis) {
      case xpath::Axis::kChild:
      case xpath::Axis::kAttribute:
      case xpath::Axis::kDescendant:
      case xpath::Axis::kDescendantOrSelf:
      case xpath::Axis::kSelf:
        break;
      default:
        return false;
    }
  }
  return true;
}

void TryAddComparison(const xpath::Path& query, size_t step_index,
                      const xpath::Expr& e, bool or_group, int group_id,
                      std::vector<CandidatePredicate>* out, bool* unindexable) {
  // != needs a full index range and still rechecks everything: not a probe.
  if (e.kind != xpath::Expr::Kind::kCompare || !BranchIsLinear(e.path) ||
      e.op == xpath::CompOp::kNe) {
    *unindexable = true;
    return;
  }
  CandidatePredicate c;
  c.step_index = step_index;
  c.full_path = ConcatPredicatePath(query, step_index, e.path);
  c.op = e.op;
  c.literal_is_number = e.literal_is_number;
  c.number = e.number;
  c.string = e.string;
  c.strip_levels = BranchStripLevels(e.path);
  c.or_group = or_group;
  c.group_id = group_id;
  out->push_back(std::move(c));
}

// Collects OR-group members; true if every leaf is a comparison.
bool CollectOrLeaves(const xpath::Expr& e,
                     std::vector<const xpath::Expr*>* leaves) {
  if (e.kind == xpath::Expr::Kind::kOr) {
    return CollectOrLeaves(*e.lhs, leaves) && CollectOrLeaves(*e.rhs, leaves);
  }
  if (e.kind == xpath::Expr::Kind::kCompare) {
    leaves->push_back(&e);
    return true;
  }
  return false;
}

}  // namespace

Status ExtractCandidates(const xpath::Path& query,
                         std::vector<CandidatePredicate>* out,
                         bool* has_unindexable_predicates) {
  out->clear();
  *has_unindexable_predicates = false;
  int next_group = 0;
  for (size_t i = 0; i < query.steps.size(); i++) {
    for (const auto& pred : query.steps[i].predicates) {
      // Split top-level ANDs into conjuncts.
      std::vector<const xpath::Expr*> conjuncts;
      std::vector<const xpath::Expr*> work{pred.get()};
      while (!work.empty()) {
        const xpath::Expr* e = work.back();
        work.pop_back();
        if (e->kind == xpath::Expr::Kind::kAnd) {
          work.push_back(e->lhs.get());
          work.push_back(e->rhs.get());
        } else {
          conjuncts.push_back(e);
        }
      }
      for (const xpath::Expr* e : conjuncts) {
        if (e->kind == xpath::Expr::Kind::kCompare) {
          TryAddComparison(query, i, *e, /*or_group=*/false, -1, out,
                           has_unindexable_predicates);
        } else if (e->kind == xpath::Expr::Kind::kOr) {
          std::vector<const xpath::Expr*> leaves;
          if (CollectOrLeaves(*e, &leaves)) {
            int group = next_group++;
            for (const xpath::Expr* leaf : leaves)
              TryAddComparison(query, i, *leaf, /*or_group=*/true, group, out,
                               has_unindexable_predicates);
          } else {
            *has_unindexable_predicates = true;
          }
        } else {
          *has_unindexable_predicates = true;
        }
      }
    }
  }
  return Status::OK();
}

std::vector<uint64_t> DistinctDocIds(const std::vector<Posting>& postings) {
  std::vector<uint64_t> out;
  std::set<uint64_t> seen;
  for (const Posting& p : postings)
    if (seen.insert(p.doc_id).second) out.push_back(p.doc_id);
  return out;
}

Status AnchorPostings(const std::vector<Posting>& postings, int strip_levels,
                      std::vector<Posting>* out) {
  if (strip_levels < 0)
    return Status::InvalidArgument("cannot anchor across descendant steps");
  out->clear();
  out->reserve(postings.size());
  for (const Posting& p : postings) {
    Posting a = p;
    Slice id(a.node_id);
    for (int i = 0; i < strip_levels; i++) {
      // Strip the last level (trailing even byte plus preceding odd bytes).
      if (id.empty()) return Status::Corruption("node id shorter than branch");
      size_t end = id.size() - 1;
      while (end > 0 &&
             (static_cast<unsigned char>(id[end - 1]) & 1) != 0)
        end--;
      id = Slice(id.data(), end);
    }
    a.node_id = id.ToString();
    out->push_back(std::move(a));
  }
  return Status::OK();
}

std::vector<uint64_t> IntersectDocIds(
    std::vector<std::vector<uint64_t>> lists) {
  if (lists.empty()) return {};
  std::set<uint64_t> acc(lists[0].begin(), lists[0].end());
  for (size_t i = 1; i < lists.size(); i++) {
    std::set<uint64_t> next(lists[i].begin(), lists[i].end());
    std::set<uint64_t> merged;
    for (uint64_t d : acc)
      if (next.count(d) != 0) merged.insert(d);
    acc = std::move(merged);
  }
  return std::vector<uint64_t>(acc.begin(), acc.end());
}

std::vector<uint64_t> UnionDocIds(std::vector<std::vector<uint64_t>> lists) {
  std::set<uint64_t> acc;
  for (const auto& l : lists) acc.insert(l.begin(), l.end());
  return std::vector<uint64_t>(acc.begin(), acc.end());
}

std::vector<uint64_t> MergeCandidateDocIds(
    const std::vector<std::vector<Posting>>& postings_per_probe,
    bool disjunctive) {
  std::vector<std::vector<uint64_t>> doc_lists;
  doc_lists.reserve(postings_per_probe.size());
  for (const auto& postings : postings_per_probe)
    doc_lists.push_back(DistinctDocIds(postings));
  return disjunctive ? UnionDocIds(std::move(doc_lists))
                     : IntersectDocIds(std::move(doc_lists));
}

namespace {
struct PostingKeyLess {
  bool operator()(const Posting& a, const Posting& b) const {
    if (a.doc_id != b.doc_id) return a.doc_id < b.doc_id;
    return Slice(a.node_id).Compare(Slice(b.node_id)) < 0;
  }
};
bool SamePosting(const Posting& a, const Posting& b) {
  return a.doc_id == b.doc_id && a.node_id == b.node_id;
}
}  // namespace

std::vector<Posting> IntersectPostings(
    std::vector<std::vector<Posting>> lists) {
  if (lists.empty()) return {};
  for (auto& l : lists) {
    std::sort(l.begin(), l.end(), PostingKeyLess());
    l.erase(std::unique(l.begin(), l.end(), SamePosting), l.end());
  }
  std::vector<Posting> acc = std::move(lists[0]);
  for (size_t i = 1; i < lists.size(); i++) {
    std::vector<Posting> merged;
    std::set_intersection(acc.begin(), acc.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(merged),
                          PostingKeyLess());
    acc = std::move(merged);
  }
  return acc;
}

std::vector<Posting> UnionPostings(std::vector<std::vector<Posting>> lists) {
  std::vector<Posting> acc;
  for (auto& l : lists)
    acc.insert(acc.end(), std::make_move_iterator(l.begin()),
               std::make_move_iterator(l.end()));
  std::sort(acc.begin(), acc.end(), PostingKeyLess());
  acc.erase(std::unique(acc.begin(), acc.end(), SamePosting), acc.end());
  return acc;
}

Status StructuralAnchorJoin(const std::vector<Posting>& values,
                            const std::vector<Posting>& anchors,
                            std::vector<Posting>* out) {
  out->clear();
  if (values.empty() || anchors.empty()) return Status::OK();
  std::vector<Posting> v = values;
  std::vector<Posting> a = anchors;
  std::sort(v.begin(), v.end(), PostingKeyLess());
  std::sort(a.begin(), a.end(), PostingKeyLess());
  // One forward pass in document order. `open` is the chain of anchors whose
  // intervals are still open at the current position; levels are
  // self-delimiting, so "ancestor-or-self" is exactly a prefix test, and an
  // anchor popped here can never contain a later value (byte order places a
  // node between a prefix and its extensions only if it shares the prefix).
  auto contains = [](const Posting& anc, const Posting& node) {
    return anc.doc_id == node.doc_id &&
           (Slice(anc.node_id) == Slice(node.node_id) ||
            nodeid::IsAncestor(Slice(anc.node_id), Slice(node.node_id)));
  };
  std::vector<const Posting*> open;
  PostingKeyLess less;
  size_t ai = 0;
  for (const Posting& p : v) {
    while (ai < a.size() && !less(p, a[ai])) {
      while (!open.empty() && !contains(*open.back(), a[ai])) open.pop_back();
      open.push_back(&a[ai]);
      ai++;
    }
    while (!open.empty() && !contains(*open.back(), p)) open.pop_back();
    for (const Posting* anc : open) out->push_back(*anc);
  }
  std::sort(out->begin(), out->end(), PostingKeyLess());
  out->erase(std::unique(out->begin(), out->end(), SamePosting), out->end());
  return Status::OK();
}

Status ProbeBounds(const ValueIndex& index, const CandidatePredicate& pred,
                   std::optional<KeyBound>* lo, std::optional<KeyBound>* hi,
                   bool* not_equal) {
  lo->reset();
  hi->reset();
  *not_equal = false;
  std::string literal =
      pred.literal_is_number
          ? [&] {
              // Render the number the way values print (integral stays
              // integral so string/decimal indexes line up with doubles).
              double v = pred.number;
              if (v == static_cast<int64_t>(v))
                return std::to_string(static_cast<int64_t>(v));
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.17g", v);
              return std::string(buf);
            }()
          : pred.string;
  std::string key;
  Status st = index.EncodeKey(literal, &key);
  if (!st.ok()) return st;
  switch (pred.op) {
    case xpath::CompOp::kEq:
      *lo = KeyBound{key, true};
      *hi = KeyBound{key, true};
      break;
    case xpath::CompOp::kNe:
      *not_equal = true;  // full range, drop equal keys during recheck
      break;
    case xpath::CompOp::kLt:
      *hi = KeyBound{key, false};
      break;
    case xpath::CompOp::kLe:
      *hi = KeyBound{key, true};
      break;
    case xpath::CompOp::kGt:
      *lo = KeyBound{key, false};
      break;
    case xpath::CompOp::kGe:
      *lo = KeyBound{key, true};
      break;
  }
  return Status::OK();
}

}  // namespace query
}  // namespace xdb
