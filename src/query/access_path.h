// Access path selection for XPath queries (Section 4.3, Table 2).
//
// "Our approach is to use indexes to quickly identify a small subset of
// candidates and then perform further processing on them." The planner
// extracts indexable comparison predicates from the query, matches each
// against the available XPath value indexes (exact match vs containment ->
// filtering), and picks among: full scan (QuickXScan per document), DocID
// list, NodeID list, and DocID/NodeID ANDing/ORing.
#ifndef XDB_QUERY_ACCESS_PATH_H_
#define XDB_QUERY_ACCESS_PATH_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/structural_index.h"
#include "index/value_index.h"
#include "xpath/ast.h"
#include "xpath/path_containment.h"

namespace xdb {
namespace query {

/// One indexable comparison found in the query: the anchor step it predicates
/// plus the root-to-value linear path an index must cover.
struct CandidatePredicate {
  size_t step_index = 0;   // index of the anchor step in the main path
  xpath::Path full_path;   // absolute linear path root..anchor..branch value
  xpath::CompOp op = xpath::CompOp::kEq;
  bool literal_is_number = false;
  double number = 0;
  std::string string;
  /// Number of levels between the value node and the anchor node when the
  /// branch uses only child/attribute steps; -1 when unknown (descendant
  /// steps), which forbids node-level anchoring.
  int strip_levels = -1;
  /// True when this conjunct came from an OR group (only usable by ORing).
  bool or_group = false;
  int group_id = -1;  // conjuncts of one OR share a group id
};

/// Extracts indexable comparisons from the query's main-path predicates.
/// Top-level AND splits into conjuncts; a top-level OR of comparisons forms
/// an OR group. Anything else is left for recheck.
Status ExtractCandidates(const xpath::Path& query,
                         std::vector<CandidatePredicate>* out,
                         bool* has_unindexable_predicates);

/// A deep copy of a path without predicates (the linear skeleton).
xpath::Path ClonePathSkeleton(const xpath::Path& path);

/// The concatenation main_path[0..step] + branch_path as one linear path.
xpath::Path ConcatPredicatePath(const xpath::Path& main, size_t step_index,
                                const xpath::Path& branch);

/// Access methods of Table 2, plus the structural (pre,post) interval scan:
/// all instances of one element name come straight off the structural index
/// as candidate anchors, and the residual path rechecks each.
enum class AccessMethod : uint8_t {
  kFullScan = 0,
  kDocIdList = 1,
  kNodeIdList = 2,
  kDocIdAndOr = 3,
  kNodeIdAndOr = 4,
  kStructuralScan = 5,
};

const char* AccessMethodName(AccessMethod m);

/// Planner override used by experiments (kAuto = Section 4.3 heuristics).
enum class ForceMethod : uint8_t {
  kAuto = 0,
  kScan = 1,
  kDocIdList = 2,
  kNodeIdList = 3,
  kStructural = 4,
};

/// One index probe in a plan.
struct PlannedProbe {
  ValueIndex* index = nullptr;
  CandidatePredicate pred;
  xpath::IndexMatch match = xpath::IndexMatch::kNone;
};

struct QueryPlan {
  AccessMethod method = AccessMethod::kFullScan;
  std::vector<PlannedProbe> probes;
  bool disjunctive = false;  // ORing instead of ANDing
  /// At least one probe is containment-only or predicates remain uncovered:
  /// results must be rechecked against the documents ("filtering").
  bool need_recheck = true;
  size_t anchor_step = 0;  // step the node-level methods anchor at
  std::string explain;
  /// Why the planner picked `method`. Cost-based plans carry the full cost
  /// breakdown ("cost: full-scan=… docid-list=…*"); heuristic/forced plans
  /// keep the legacy rule text — surfaced verbatim in EXPLAIN output.
  std::string reason;
  /// True when `method` came from the cost model (valid statistics were
  /// available) rather than the Section 4.3 heuristics.
  bool cost_based = false;
  /// Cost-model cardinality estimates, for EXPLAIN (cost_based only).
  double est_postings = 0;
  double est_docs = 0;
  /// kStructuralScan, or value probes anchored via the structural index
  /// (structural_anchor): the index to range-scan and the element name whose
  /// entries it yields. The pointer is protected by the same index-structure
  /// version gate as the ValueIndex pointers in `probes`.
  StructuralIndex* structural_index = nullptr;
  std::string structural_name;
  /// Descendant-branch conjuncts (strip_levels == -1) anchored at node level
  /// by joining value postings against the anchor name's structural entries
  /// instead of being demoted to a doc-level recheck.
  bool structural_anchor = false;
};

// --- posting-list algebra (executor building blocks) ---

/// Distinct DocIDs in first-appearance order.
std::vector<uint64_t> DistinctDocIds(const std::vector<Posting>& postings);

/// Anchor postings at the predicate step by stripping `strip_levels` node-ID
/// levels from each value node. Fails entries whose IDs are too short.
Status AnchorPostings(const std::vector<Posting>& postings, int strip_levels,
                      std::vector<Posting>* out);

std::vector<uint64_t> IntersectDocIds(std::vector<std::vector<uint64_t>> lists);
std::vector<uint64_t> UnionDocIds(std::vector<std::vector<uint64_t>> lists);

/// Candidate DocID list of a doc-level plan: distinct DocIDs per probe,
/// combined by union (ORing) or intersection (ANDing). This is the list the
/// executor partitions for parallel per-document evaluation, so its order is
/// part of the engine's deterministic-output contract.
std::vector<uint64_t> MergeCandidateDocIds(
    const std::vector<std::vector<Posting>>& postings_per_probe,
    bool disjunctive);

/// Set operations on (doc, node) anchors. Postings must be anchored first.
std::vector<Posting> IntersectPostings(std::vector<std::vector<Posting>> lists);
std::vector<Posting> UnionPostings(std::vector<std::vector<Posting>> lists);

/// Ancestor join for descendant-branch conjuncts: emits one (doc, anchor)
/// posting for every `anchors` entry that is an ancestor-or-self of a
/// `values` entry in the same document. Both inputs are sorted internally;
/// the merge walks them in document order keeping the open ancestor chain on
/// a stack (node-ID byte order sorts ancestors before their descendants, so
/// one forward pass suffices). Output is sorted by (doc, node), distinct —
/// ready for IntersectPostings/UnionPostings.
Status StructuralAnchorJoin(const std::vector<Posting>& values,
                            const std::vector<Posting>& anchors,
                            std::vector<Posting>* out);

/// Converts a comparison into index key range bounds for a probe.
Status ProbeBounds(const ValueIndex& index, const CandidatePredicate& pred,
                   std::optional<KeyBound>* lo, std::optional<KeyBound>* hi,
                   bool* not_equal);

}  // namespace query
}  // namespace xdb

#endif  // XDB_QUERY_ACCESS_PATH_H_
