#include "query/plan_cache.h"

namespace xdb {
namespace query {

std::shared_ptr<const CompiledPlan> PlanCache::Lookup(
    const std::string& query_text, ForceMethod force, bool want_values,
    uint64_t epoch) {
  MutexLock lock(mu_);
  if (capacity_ == 0) return nullptr;
  Key key(query_text, static_cast<uint8_t>(force), want_values, epoch);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (counters_.misses != nullptr) counters_.misses->Add();
    return nullptr;
  }
  lru_.splice(lru_.end(), lru_, it->second.lru_pos);
  if (counters_.hits != nullptr) counters_.hits->Add();
  return it->second.plan;
}

void PlanCache::Insert(const std::string& query_text, ForceMethod force,
                       bool want_values, uint64_t epoch,
                       std::shared_ptr<const CompiledPlan> plan) {
  MutexLock lock(mu_);
  if (capacity_ == 0) return;
  Key key(query_text, static_cast<uint8_t>(force), want_values, epoch);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Lost a compile race; keep the resident entry, just refresh recency.
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.front());
    lru_.pop_front();
    if (counters_.evictions != nullptr) counters_.evictions->Add();
  }
  auto lru_pos = lru_.insert(lru_.end(), key);
  entries_.emplace(std::move(key), Entry{std::move(plan), lru_pos});
}

void PlanCache::Invalidate(const char* cause) {
  size_t dropped;
  {
    MutexLock lock(mu_);
    dropped = entries_.size();
    entries_.clear();
    lru_.clear();
    if (counters_.invalidations != nullptr) counters_.invalidations->Add();
    if (events_ != nullptr && dropped > 0)
      events_->Emit(obs::EventKind::kPlanCacheInvalidated, dropped, 0,
                    collection_ + ": " + cause);
  }
}

}  // namespace query
}  // namespace xdb
