// FaultInjector: deterministic storage-fault injection for crash-recovery
// testing.
//
// The storage stack (TableSpace, BufferManager, WalLog) consults the active
// injector — a process-global installed via ScopedFaultInjector — at each
// physical I/O. Tests arm one-shot faults ("fail the 3rd WAL append",
// "tear the 7th page write after 12 bytes") and then drive a normal
// workload; the injector fires at the exact operation, optionally switching
// into crash mode where every later write fails, which models the process
// dying mid-operation. Reopening the store afterwards exercises the same
// recovery path a real crash would.
//
// When no injector is installed the hook is a single relaxed atomic load,
// so production code pays essentially nothing.
#ifndef XDB_TESTING_FAULT_INJECTOR_H_
#define XDB_TESTING_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace xdb {
namespace testing {

/// Physical operations the storage stack exposes to injection.
enum class FaultPoint : uint8_t {
  kTableSpaceRead = 0,
  kTableSpaceWrite,
  kTableSpaceSync,
  kWalAppend,
  kWalSync,
  kBufferWriteback,
  /// A replication segment handed to a ShipTransport (see src/repl/). The
  /// transport consults OnShip() per delivery attempt.
  kShipTransport,
};
constexpr int kNumFaultPoints = 7;

const char* FaultPointName(FaultPoint p);

enum class FaultKind : uint8_t {
  /// The operation fails with an IOError; no bytes reach the medium.
  kError,
  /// Only the first `bytes` bytes of the write land, then IOError — the
  /// classic torn write of a power cut mid-sector.
  kTornWrite,
  /// The write lands in full with one bit flipped, and *reports success* —
  /// silent media corruption, caught (or not) by checksums downstream.
  kCorruptBit,
  /// The read fails with an IOError after delivering only `bytes` bytes
  /// (the rest of the buffer is zeroed).
  kShortRead,
  /// The operation fails once with a *transient* IOError (Status::IsTransient)
  /// — the storage retry policy is expected to mask it. No bytes reach the
  /// medium on the failing attempt; the retried operation proceeds normally.
  kTransientError,
  /// A replication-transport fault (kShipTransport only). `bytes` selects
  /// the misbehavior — see ShipFault / OnShip().
  kNetworkError,
};

/// What a faulted ShipTransport should do with the segment in flight.
enum class NetFaultAction : uint8_t {
  kDeliver,    // no fault armed: deliver normally
  kError,      // fail the send with a transient error (sender retries)
  kDrop,       // claim success but deliver nothing (silent loss)
  kDuplicate,  // deliver the segment twice
  kReorder,    // hold this segment back and deliver it after the next one
  kTruncate,   // deliver only a prefix (ShipFault::truncate_len bytes)
};

struct ShipFault {
  NetFaultAction action = NetFaultAction::kDeliver;
  uint32_t truncate_len = 0;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // ---- test-side configuration ----

  /// Arms a one-shot fault at the `nth` (1-based) operation on `point`.
  /// `bytes` parameterizes kTornWrite / kShortRead (prefix length) and
  /// kCorruptBit (which byte gets flipped, modulo the buffer length).
  void Arm(FaultPoint point, uint64_t nth, FaultKind kind, uint32_t bytes = 0)
      XDB_EXCLUDES(mu_);

  /// After any armed fault fires, every subsequent write-side operation
  /// (writes, appends, syncs, writebacks) fails too: the process is "dead"
  /// and nothing more reaches disk.
  void set_crash_after_fire(bool v) XDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    crash_after_fire_ = v;
  }

  /// True once at least one armed fault has fired.
  bool fired() const XDB_EXCLUDES(mu_);
  /// Number of operations observed at `point` since construction/Reset.
  uint64_t op_count(FaultPoint point) const XDB_EXCLUDES(mu_);
  /// Clears armed faults, counters and crash mode.
  void Reset() XDB_EXCLUDES(mu_);

  // ---- storage-side hooks ----

  /// Where a (possibly partial) write should land — exactly one of fd/mem.
  struct WriteSink {
    int fd = -1;
    uint64_t offset = 0;
    char* mem = nullptr;
  };

  /// Called before a physical write of `len` bytes from `buf`. If the
  /// injector takes over (fault or crash mode) it sets *handled and the
  /// caller must skip its own write and return this status as-is (kCorruptBit
  /// lands flipped bytes and returns OK).
  Status OnWrite(FaultPoint point, const char* buf, size_t len,
                 const WriteSink& sink, bool* handled) XDB_EXCLUDES(mu_);

  /// Called after a physical read delivered `len` bytes into `buf`; may
  /// corrupt the buffer or turn the read into a failure.
  Status OnRead(FaultPoint point, char* buf, size_t len) XDB_EXCLUDES(mu_);

  /// Called before an operation with no data payload (syncs, writebacks).
  Status OnOp(FaultPoint point) XDB_EXCLUDES(mu_);

  /// Called by a ShipTransport per delivery attempt. A kNetworkError fault
  /// armed on kShipTransport maps its `bytes` parameter to the action:
  /// 0 = transient send error, 1 = drop, 2 = duplicate, 3 = reorder,
  /// 4 + (len << 8) = truncate the delivered segment to `len` bytes.
  /// Non-network fault kinds armed here degenerate to kError.
  ShipFault OnShip() XDB_EXCLUDES(mu_);

  /// The installed injector, or nullptr (the common case).
  static FaultInjector* active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  friend class ScopedFaultInjector;

  struct Armed {
    FaultPoint point;
    uint64_t nth;
    FaultKind kind;
    uint32_t bytes;
    bool fired = false;
  };

  /// Counts the op and returns the armed fault firing on it, if any.
  Armed* Count(FaultPoint point) XDB_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kFaultInjector};
  uint64_t counts_[kNumFaultPoints] XDB_GUARDED_BY(mu_) = {};
  std::vector<Armed> armed_ XDB_GUARDED_BY(mu_);
  bool crash_after_fire_ XDB_GUARDED_BY(mu_) = false;
  bool crashed_ XDB_GUARDED_BY(mu_) = false;
  bool any_fired_ XDB_GUARDED_BY(mu_) = false;

  static std::atomic<FaultInjector*> active_;
};

/// Installs a fresh FaultInjector for the enclosing scope. At most one may
/// be active per process at a time.
class ScopedFaultInjector {
 public:
  ScopedFaultInjector();
  ~ScopedFaultInjector();
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector* operator->() { return &injector_; }
  FaultInjector& get() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace testing
}  // namespace xdb

#endif  // XDB_TESTING_FAULT_INJECTOR_H_
