#include "testing/fault_injector.h"

#include <unistd.h>

#include <cassert>
#include <cstring>
#include <string>

namespace xdb {
namespace testing {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

const char* FaultPointName(FaultPoint p) {
  switch (p) {
    case FaultPoint::kTableSpaceRead: return "tablespace-read";
    case FaultPoint::kTableSpaceWrite: return "tablespace-write";
    case FaultPoint::kTableSpaceSync: return "tablespace-sync";
    case FaultPoint::kWalAppend: return "wal-append";
    case FaultPoint::kWalSync: return "wal-sync";
    case FaultPoint::kBufferWriteback: return "buffer-writeback";
    case FaultPoint::kShipTransport: return "ship-transport";
  }
  return "?";
}

namespace {
Status Injected(FaultPoint p, const char* what) {
  return Status::IOError(std::string("injected ") + what + " at " +
                         FaultPointName(p));
}

Status InjectedTransient(FaultPoint p) {
  return Status::TransientIOError(std::string("injected transient error at ") +
                                  FaultPointName(p));
}

// Lands `len` bytes of `buf` at the sink (file or memory).
bool SinkWrite(const FaultInjector::WriteSink& sink, const char* buf,
               size_t len) {
  if (sink.mem != nullptr) {
    std::memcpy(sink.mem, buf, len);
    return true;
  }
  if (sink.fd >= 0) {
    return ::pwrite(sink.fd, buf, len, static_cast<off_t>(sink.offset)) ==
           static_cast<ssize_t>(len);
  }
  return len == 0;
}
}  // namespace

void FaultInjector::Arm(FaultPoint point, uint64_t nth, FaultKind kind,
                        uint32_t bytes) {
  MutexLock lock(mu_);
  armed_.push_back(Armed{point, nth, kind, bytes, false});
}

bool FaultInjector::fired() const {
  MutexLock lock(mu_);
  return any_fired_;
}

uint64_t FaultInjector::op_count(FaultPoint point) const {
  MutexLock lock(mu_);
  return counts_[static_cast<int>(point)];
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  armed_.clear();
  std::memset(counts_, 0, sizeof(counts_));
  crashed_ = false;
  any_fired_ = false;
}

FaultInjector::Armed* FaultInjector::Count(FaultPoint point) {
  uint64_t n = ++counts_[static_cast<int>(point)];
  for (Armed& a : armed_) {
    if (!a.fired && a.point == point && a.nth == n) {
      a.fired = true;
      any_fired_ = true;
      if (crash_after_fire_) crashed_ = true;
      return &a;
    }
  }
  return nullptr;
}

Status FaultInjector::OnWrite(FaultPoint point, const char* buf, size_t len,
                              const WriteSink& sink, bool* handled) {
  MutexLock lock(mu_);
  if (crashed_) {
    *handled = true;
    return Injected(point, "post-crash write failure");
  }
  Armed* a = Count(point);
  if (a == nullptr) return Status::OK();
  *handled = true;
  switch (a->kind) {
    case FaultKind::kError:
      return Injected(point, "write error");
    case FaultKind::kTornWrite: {
      size_t keep = a->bytes < len ? a->bytes : len;
      SinkWrite(sink, buf, keep);
      return Injected(point, "torn write");
    }
    case FaultKind::kCorruptBit: {
      std::string copy(buf, len);
      if (len > 0) copy[a->bytes % len] ^= 0x01;
      if (!SinkWrite(sink, copy.data(), len))
        return Injected(point, "corrupting write");
      return Status::OK();  // silent corruption: the caller sees success
    }
    case FaultKind::kShortRead:
      // A read fault armed on a write point degenerates to an error.
      return Injected(point, "write error");
    case FaultKind::kTransientError:
      return InjectedTransient(point);
    case FaultKind::kNetworkError:
      // A network fault armed on a storage write point degenerates to an
      // error; use OnShip() for the real semantics.
      return Injected(point, "write error");
  }
  return Status::OK();
}

Status FaultInjector::OnRead(FaultPoint point, char* buf, size_t len) {
  MutexLock lock(mu_);
  Armed* a = Count(point);
  if (a == nullptr) return Status::OK();
  switch (a->kind) {
    case FaultKind::kShortRead: {
      size_t keep = a->bytes < len ? a->bytes : len;
      std::memset(buf + keep, 0, len - keep);
      return Injected(point, "short read");
    }
    case FaultKind::kCorruptBit:
      if (len > 0) buf[a->bytes % len] ^= 0x01;
      return Status::OK();  // silent corruption
    case FaultKind::kTransientError:
      return InjectedTransient(point);
    default:
      return Injected(point, "read error");
  }
}

ShipFault FaultInjector::OnShip() {
  MutexLock lock(mu_);
  Armed* a = Count(FaultPoint::kShipTransport);
  ShipFault f;
  if (a == nullptr) return f;
  if (a->kind != FaultKind::kNetworkError) {
    f.action = NetFaultAction::kError;
    return f;
  }
  switch (a->bytes & 0xff) {
    case 0: f.action = NetFaultAction::kError; break;
    case 1: f.action = NetFaultAction::kDrop; break;
    case 2: f.action = NetFaultAction::kDuplicate; break;
    case 3: f.action = NetFaultAction::kReorder; break;
    case 4:
      f.action = NetFaultAction::kTruncate;
      f.truncate_len = a->bytes >> 8;
      break;
    default: f.action = NetFaultAction::kError; break;
  }
  return f;
}

Status FaultInjector::OnOp(FaultPoint point) {
  MutexLock lock(mu_);
  if (crashed_) return Injected(point, "post-crash failure");
  Armed* a = Count(point);
  if (a == nullptr) return Status::OK();
  if (a->kind == FaultKind::kTransientError) return InjectedTransient(point);
  return Injected(point, "operation failure");
}

ScopedFaultInjector::ScopedFaultInjector() {
  FaultInjector* expected = nullptr;
  bool installed = FaultInjector::active_.compare_exchange_strong(
      expected, &injector_, std::memory_order_acq_rel);
  assert(installed && "another FaultInjector is already active");
  (void)installed;
}

ScopedFaultInjector::~ScopedFaultInjector() {
  FaultInjector::active_.store(nullptr, std::memory_order_release);
}

}  // namespace testing
}  // namespace xdb
