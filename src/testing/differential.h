// Differential-testing oracle across the XPath engines and the storage
// stack.
//
// The paper's core claim is that QuickXScan and the index-based access
// methods return exactly what a navigational evaluator would. This harness
// makes that claim executable: a seeded (document, query) pair is evaluated
// through every independent strategy the repo has —
//
//   * DomEvaluator over the pointer tree (the reference),
//   * QuickXScan over the virtual-SAX event stream,
//   * NaiveStreamEvaluator (when the query is in its linear subset),
//   * Collection::Query through the stored engine, under every planner
//     force mode (auto / full scan / DocID list / NodeID list / structural
//     interval scan), with value indexes derived from the query's own
//     predicates and an all-names structural index, so the index-backed
//     plans actually probe.
//
// All engines must produce the same node-ID result set. On divergence the
// harness reports the seed (a one-line repro: rerun with --seed=N) and a
// greedily minimized document/query pair.
#ifndef XDB_TESTING_DIFFERENTIAL_H_
#define XDB_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "util/workload.h"

namespace xdb {
namespace testing {

struct DiffOptions {
  workload::RandomXmlOptions xml;
  workload::XPathOptions xpath;
  /// Also push each case through the stored engine's planner/executor.
  bool run_collection_plans = true;
  /// Minimize the failing document and query before reporting.
  bool minimize = true;
};

/// The deterministic (document, query) pair of one seed.
struct DiffCase {
  std::string doc;
  std::string query;
};
DiffCase GenCase(uint64_t seed, const DiffOptions& options);

/// Evaluates one (doc, query) pair through every engine. Returns "" when all
/// agree, else a human-readable description of the divergence.
std::string CompareEngines(const std::string& doc, const std::string& query,
                           bool run_collection_plans);

struct DiffOutcome {
  bool ok = true;
  uint64_t seed = 0;
  std::string doc, query;
  std::string minimized_doc, minimized_query;
  std::string detail;  // divergence description; empty when ok

  /// The one-line repro + minimized pair, for test failure messages.
  std::string Report() const;
};

/// Generates and checks the case of one seed, minimizing on failure.
DiffOutcome RunCase(uint64_t seed, const DiffOptions& options);

struct SweepResult {
  bool ok = true;
  uint64_t cases_run = 0;
  uint64_t quickxscan_runs = 0;     // always == cases_run
  uint64_t naive_stream_runs = 0;   // linear-subset queries only
  uint64_t plan_runs = 0;           // stored-engine executions
  DiffOutcome first_failure;
};

/// Runs `iters` seeded cases starting at `base_seed`, stopping at the first
/// divergence. `log` (optional) gets a progress line every 200 cases.
SweepResult RunSweep(uint64_t base_seed, uint64_t iters,
                     const DiffOptions& options, std::ostream* log = nullptr);

// --- greedy minimizers (exposed for their own tests) ---

/// Shrinks `doc` by deleting element subtrees, attributes and text runs
/// while `still_fails` keeps returning true. Assumes generator-shaped XML
/// (no '<' or '>' inside attribute values, no CDATA).
std::string MinimizeDocument(
    const std::string& doc,
    const std::function<bool(const std::string&)>& still_fails);

/// Shrinks `query` by dropping predicates and steps while `still_fails`
/// keeps returning true. Returns `query` unchanged if it does not parse.
std::string MinimizeQuery(
    const std::string& query,
    const std::function<bool(const std::string&)>& still_fails);

}  // namespace testing
}  // namespace xdb

#endif  // XDB_TESTING_DIFFERENTIAL_H_
