#include "testing/differential.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "engine/collection.h"
#include "engine/engine.h"
#include "query/access_path.h"
#include "runtime/virtual_sax.h"
#include "xdm/dom_tree.h"
#include "xdm/item.h"
#include "xml/node_id.h"
#include "xml/parser.h"
#include "xpath/ast.h"
#include "xpath/dom_evaluator.h"
#include "xpath/naive_stream.h"
#include "xpath/parser.h"
#include "xpath/quickxscan.h"

namespace xdb {
namespace testing {

namespace {

std::string RenderSeq(const NodeSequence& seq) {
  std::string out = "{";
  for (size_t i = 0; i < seq.size(); i++) {
    if (i > 0) out += ", ";
    out += seq[i].node_id.empty() ? "root" : nodeid::ToString(seq[i].node_id);
  }
  out += "}";
  return out;
}

/// Node-identity comparison ignoring doc ids (every engine runs over one
/// document, but the stored engine may assign a different doc id).
bool SameNodes(const NodeSequence& a, const NodeSequence& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].node_id != b[i].node_id) return false;
  }
  return true;
}

std::string Diverged(const char* engine, const NodeSequence& got,
                     const NodeSequence& want) {
  return std::string(engine) + " returned " + RenderSeq(got) +
         " but the DOM reference returned " + RenderSeq(want);
}

struct SweepCounters {
  uint64_t quickxscan = 0;
  uint64_t naive = 0;
  uint64_t plans = 0;
};

std::string CompareEnginesCounted(const std::string& doc,
                                  const std::string& query,
                                  bool run_collection_plans,
                                  SweepCounters* counters) {
  NameDictionary dict;
  Parser parser(&dict);
  TokenWriter tokens;
  Status s = parser.Parse(doc, &tokens);
  if (!s.ok()) return "document does not parse: " + s.ToString();

  auto path_r = xpath::ParsePath(query);
  if (!path_r.ok())
    return "query does not parse: " + path_r.status().ToString();
  const xpath::Path& path = path_r.value();

  // Reference: DOM navigation.
  auto tree_r = DomTree::FromTokens(tokens.data());
  if (!tree_r.ok()) return "DOM build failed: " + tree_r.status().ToString();
  xpath::DomEvaluator dom_eval(tree_r.value().get(), &dict, 1);
  auto ref_r = dom_eval.Evaluate(path, false);
  if (!ref_r.ok()) return "DOM evaluation failed: " + ref_r.status().ToString();
  NodeSequence ref = ref_r.MoveValue();
  NormalizeSequence(&ref);

  // QuickXScan over the event stream.
  {
    TokenStreamSource source(tokens.data());
    auto quick_r = xpath::EvaluateXPath(query, dict, &source, 1, false);
    if (!quick_r.ok())
      return "QuickXScan failed: " + quick_r.status().ToString();
    NodeSequence quick = quick_r.MoveValue();
    NormalizeSequence(&quick);
    if (counters != nullptr) counters->quickxscan++;
    if (!SameNodes(quick, ref)) return Diverged("QuickXScan", quick, ref);
  }

  // Naive streaming evaluator, when the query is in its linear subset.
  {
    xpath::NaiveStreamEvaluator naive(&path, &dict, 1);
    TokenStreamSource source(tokens.data());
    NodeSequence got;
    Status ns = naive.Run(&source, &got);
    if (ns.ok()) {
      NormalizeSequence(&got);
      if (counters != nullptr) counters->naive++;
      if (!SameNodes(got, ref)) return Diverged("NaiveStream", got, ref);
    } else if (!ns.IsNotSupported()) {
      return "NaiveStream failed: " + ns.ToString();
    }
  }

  if (!run_collection_plans) return "";

  // The stored engine: packed records + NodeID index + value indexes, under
  // every planner force mode. Value indexes are derived from the query's own
  // predicate paths so the DocID/NodeID-list plans get real probes.
  EngineOptions eo;
  eo.in_memory = true;
  auto engine_r = Engine::Open(eo);
  if (!engine_r.ok())
    return "engine open failed: " + engine_r.status().ToString();
  auto engine = engine_r.MoveValue();
  auto coll_r = engine->CreateCollection("diff");
  if (!coll_r.ok())
    return "collection create failed: " + coll_r.status().ToString();
  Collection* coll = coll_r.value();

  {
    std::vector<query::CandidatePredicate> cands;
    bool unindexable = false;
    if (query::ExtractCandidates(path, &cands, &unindexable).ok()) {
      int n = 0;
      for (const auto& cand : cands) {
        ValueIndexDef def;
        def.name = "vi" + std::to_string(n++);
        def.path = cand.full_path.ToString();
        def.type = cand.literal_is_number ? ValueType::kDouble
                                          : ValueType::kString;
        // Unsupported index paths simply leave the plan to fall back.
        (void)coll->CreateValueIndex(def);
      }
    }
  }

  // An all-names structural index so the forced structural flavor below
  // runs a real (pre, post)-interval scan rather than its full-scan
  // fallback; maintenance runs through the same insert as the records.
  {
    Status si = coll->CreateStructuralIndex({"structure", ""});
    if (!si.ok())
      return "structural index create failed: " + si.ToString();
  }

  auto ins_r = coll->InsertDocument(nullptr, doc);
  if (!ins_r.ok())
    return "stored insert failed: " + ins_r.status().ToString();

  // Seven planner flavors: the five force modes (structural included), the
  // cost-based auto plan re-run so the second execution is served from the
  // compiled-plan cache, and the forced Section 4.3 heuristic. Any stats-,
  // cache- or interval-induced divergence from the DOM reference surfaces
  // here.
  static const ForceMethod kForces[] = {
      ForceMethod::kAuto,       ForceMethod::kScan,
      ForceMethod::kDocIdList,  ForceMethod::kNodeIdList,
      ForceMethod::kStructural, ForceMethod::kAuto,
      ForceMethod::kAuto};
  static const char* kForceNames[] = {
      "plan:auto",        "plan:scan",        "plan:docid-list",
      "plan:nodeid-list", "plan:structural",  "plan:auto-cached",
      "plan:heuristic"};
  for (size_t f = 0; f < 7; f++) {
    QueryOptions qo;
    qo.force = kForces[f];
    qo.use_heuristic_planner = (f == 6);
    auto res_r = coll->Query(nullptr, query, qo);
    if (!res_r.ok())
      return std::string(kForceNames[f]) +
             " failed: " + res_r.status().ToString();
    NodeSequence got = std::move(res_r.value().nodes);
    NormalizeSequence(&got);
    if (counters != nullptr) counters->plans++;
    if (!SameNodes(got, ref)) {
      return Diverged(kForceNames[f], got, ref) + " [" +
             res_r.value().stats.explain + "]";
    }
  }
  return "";
}

// --- text-level document reduction (generator-shaped XML) ---

struct Span {
  size_t begin, end;  // [begin, end)
};

/// Complete element spans (open tag through matching close tag), excluding
/// any span that covers the entire document.
std::vector<Span> ElementSpans(const std::string& xml) {
  std::vector<Span> spans;
  std::vector<size_t> open;
  size_t i = 0;
  while (i < xml.size()) {
    if (xml[i] != '<') {
      i++;
      continue;
    }
    size_t gt = xml.find('>', i);
    if (gt == std::string::npos) break;
    if (i + 1 < xml.size() && xml[i + 1] == '/') {
      if (!open.empty()) {
        size_t start = open.back();
        open.pop_back();
        if (start != 0 || gt + 1 != xml.size())
          spans.push_back({start, gt + 1});
      }
    } else if (xml[i + 1] == '!' || xml[i + 1] == '?') {
      // comment / PI: skip
    } else if (xml[gt - 1] == '/') {
      if (i != 0 || gt + 1 != xml.size()) spans.push_back({i, gt + 1});
    } else {
      open.push_back(i);
    }
    i = gt + 1;
  }
  return spans;
}

/// ` name="value"` attribute spans inside open tags.
std::vector<Span> AttributeSpans(const std::string& xml) {
  std::vector<Span> spans;
  size_t i = 0;
  while (i < xml.size()) {
    if (xml[i] != '<' || i + 1 >= xml.size() || xml[i + 1] == '/' ||
        xml[i + 1] == '!' || xml[i + 1] == '?') {
      i++;
      continue;
    }
    size_t gt = xml.find('>', i);
    if (gt == std::string::npos) break;
    size_t p = i + 1;
    while (p < gt && !std::isspace(static_cast<unsigned char>(xml[p]))) p++;
    while (p < gt) {
      size_t attr_start = p;  // at the whitespace before the name
      while (p < gt && std::isspace(static_cast<unsigned char>(xml[p]))) p++;
      size_t eq = xml.find('=', p);
      if (eq == std::string::npos || eq >= gt) break;
      size_t q1 = xml.find('"', eq);
      if (q1 == std::string::npos || q1 >= gt) break;
      size_t q2 = xml.find('"', q1 + 1);
      if (q2 == std::string::npos || q2 >= gt) break;
      spans.push_back({attr_start, q2 + 1});
      p = q2 + 1;
    }
    i = gt + 1;
  }
  return spans;
}

/// Non-empty text runs between tags.
std::vector<Span> TextSpans(const std::string& xml) {
  std::vector<Span> spans;
  size_t i = 0;
  while (i < xml.size()) {
    if (xml[i] == '<') {
      size_t gt = xml.find('>', i);
      if (gt == std::string::npos) break;
      i = gt + 1;
      continue;
    }
    size_t lt = xml.find('<', i);
    if (lt == std::string::npos) lt = xml.size();
    if (lt > i) spans.push_back({i, lt});
    i = lt;
  }
  return spans;
}

/// Tries each span (largest first); the first removal that still fails is
/// applied and reported. Returns false when no span can be removed.
bool TryRemoveOne(std::string* xml, std::vector<Span> spans,
                  const std::function<bool(const std::string&)>& still_fails) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return (a.end - a.begin) > (b.end - b.begin);
  });
  for (const Span& sp : spans) {
    std::string cand = xml->substr(0, sp.begin) + xml->substr(sp.end);
    if (still_fails(cand)) {
      *xml = std::move(cand);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string MinimizeDocument(
    const std::string& doc,
    const std::function<bool(const std::string&)>& still_fails) {
  std::string cur = doc;
  for (;;) {
    if (TryRemoveOne(&cur, ElementSpans(cur), still_fails)) continue;
    if (TryRemoveOne(&cur, AttributeSpans(cur), still_fails)) continue;
    if (TryRemoveOne(&cur, TextSpans(cur), still_fails)) continue;
    break;
  }
  return cur;
}

std::string MinimizeQuery(
    const std::string& query,
    const std::function<bool(const std::string&)>& still_fails) {
  auto parsed = xpath::ParsePath(query);
  if (!parsed.ok()) return query;
  xpath::Path cur = std::move(parsed.value());
  for (;;) {
    bool reduced = false;
    // Drop one predicate.
    for (size_t i = 0; i < cur.steps.size() && !reduced; i++) {
      for (size_t j = 0; j < cur.steps[i].predicates.size(); j++) {
        xpath::Path cand = xpath::ClonePath(cur);
        cand.steps[i].predicates.erase(cand.steps[i].predicates.begin() + j);
        if (still_fails(cand.ToString())) {
          cur = std::move(cand);
          reduced = true;
          break;
        }
      }
    }
    if (reduced) continue;
    // Drop one whole step.
    if (cur.steps.size() > 1) {
      for (size_t i = 0; i < cur.steps.size(); i++) {
        xpath::Path cand = xpath::ClonePath(cur);
        cand.steps.erase(cand.steps.begin() + i);
        if (still_fails(cand.ToString())) {
          cur = std::move(cand);
          reduced = true;
          break;
        }
      }
    }
    if (!reduced) break;
  }
  return cur.ToString();
}

DiffCase GenCase(uint64_t seed, const DiffOptions& options) {
  Random rng(seed);
  DiffCase c;
  c.doc = workload::GenRandomXml(&rng, options.xml);
  c.query = workload::GenRandomXPath(&rng, options.xpath);
  return c;
}

std::string CompareEngines(const std::string& doc, const std::string& query,
                           bool run_collection_plans) {
  return CompareEnginesCounted(doc, query, run_collection_plans, nullptr);
}

std::string DiffOutcome::Report() const {
  if (ok) return "ok";
  std::string out = "differential divergence (replay: --seed=" +
                    std::to_string(seed) + ")\n  " + detail +
                    "\n  query: " + query + "\n  doc:   " + doc;
  if (!minimized_query.empty() || !minimized_doc.empty()) {
    out += "\n  minimized query: " + minimized_query +
           "\n  minimized doc:   " + minimized_doc;
  }
  return out;
}

DiffOutcome RunCase(uint64_t seed, const DiffOptions& options) {
  DiffOutcome out;
  out.seed = seed;
  DiffCase c = GenCase(seed, options);
  out.doc = c.doc;
  out.query = c.query;
  out.detail = CompareEngines(c.doc, c.query, options.run_collection_plans);
  out.ok = out.detail.empty();
  if (!out.ok && options.minimize) {
    bool plans = options.run_collection_plans;
    std::string q = c.query;
    out.minimized_doc = MinimizeDocument(
        c.doc, [&](const std::string& d) {
          return !CompareEngines(d, q, plans).empty();
        });
    out.minimized_query = MinimizeQuery(q, [&](const std::string& cand) {
      return !CompareEngines(out.minimized_doc, cand, plans).empty();
    });
    // A smaller query may unlock further document cuts.
    out.minimized_doc = MinimizeDocument(
        out.minimized_doc, [&](const std::string& d) {
          return !CompareEngines(d, out.minimized_query, plans).empty();
        });
    out.detail = CompareEngines(out.minimized_doc, out.minimized_query, plans);
    if (out.detail.empty())  // should not happen; keep the original story
      out.detail = CompareEngines(c.doc, c.query, plans);
  }
  return out;
}

SweepResult RunSweep(uint64_t base_seed, uint64_t iters,
                     const DiffOptions& options, std::ostream* log) {
  SweepResult res;
  SweepCounters counters;
  for (uint64_t i = 0; i < iters; i++) {
    uint64_t seed = base_seed + i;
    DiffCase c = GenCase(seed, options);
    std::string detail = CompareEnginesCounted(
        c.doc, c.query, options.run_collection_plans, &counters);
    res.cases_run++;
    if (!detail.empty()) {
      res.ok = false;
      res.first_failure = RunCase(seed, options);
      break;
    }
    if (log != nullptr && (i + 1) % 200 == 0) {
      *log << "differential sweep: " << (i + 1) << "/" << iters
           << " cases agree\n";
    }
  }
  res.quickxscan_runs = counters.quickxscan;
  res.naive_stream_runs = counters.naive;
  res.plan_runs = counters.plans;
  return res;
}

}  // namespace testing
}  // namespace xdb
