// BTree: a disk-resident B+tree over the buffer manager.
//
// This is the paper's reused-and-extended "index manager": the same B+tree
// infrastructure serves relational-style DocID indexes and the new XML
// indexes (NodeID index, XPath value indexes). Keys and values are opaque
// byte strings ordered by memcmp; entries are fully sorted by the composite
// (key, value), which gives the "zero, one or more index entries per record"
// duplicate behaviour that XPath value indexes need (Section 3.3).
#ifndef XDB_BTREE_BTREE_H_
#define XDB_BTREE_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"

namespace xdb {

struct BtreeStats {
  uint64_t entries = 0;
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
  uint32_t height = 0;
};

class BTree {
 public:
  /// Creates an empty tree; the root page id is stable for the tree's
  /// lifetime (splits rewrite the root in place), so owners can persist it.
  static Result<std::unique_ptr<BTree>> Create(BufferManager* bm);

  /// Attaches to an existing tree rooted at `root`.
  static Result<std::unique_ptr<BTree>> Open(BufferManager* bm, PageId root);

  PageId root() const { return root_; }

  /// Inserts the pair; duplicate (key, value) pairs are stored once
  /// (idempotent insert).
  Status Insert(Slice key, Slice value);

  /// Removes one exact (key, value) pair. NotFound if absent.
  Status Delete(Slice key, Slice value);

  /// True if at least one entry with exactly `key` exists.
  Result<bool> Contains(Slice key);

  /// Walks the tree counting pages and entries (O(n); for reporting).
  Result<BtreeStats> ComputeStats();

  /// Forward iterator over (key, value) pairs in composite order. The
  /// iterator pins one leaf page at a time; the tree must not be modified
  /// while an iterator is live.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    Status Next();
    /// Views into the pinned page; valid until the next Next()/destruction.
    Slice key() const { return key_; }
    Slice value() const { return value_; }

   private:
    friend class BTree;
    Status LoadSlot();
    Status AdvanceLeaf();

    BTree* tree_ = nullptr;
    PageHandle page_;
    uint16_t slot_ = 0;
    bool valid_ = false;
    Slice key_, value_;
  };

  /// Positions at the first entry with (key, value) >= (target_key,
  /// target_value). An empty target_value therefore lands on the first
  /// duplicate of target_key.
  Result<Iterator> Seek(Slice key, Slice value = Slice());
  Result<Iterator> SeekToFirst();

 private:
  BTree(BufferManager* bm, PageId root) : bm_(bm), root_(root) {}

  struct SplitResult {
    bool split = false;
    std::string sep_key, sep_value;  // first composite of the new right page
    PageId right = kInvalidPageId;
  };

  Status InsertRec(PageId page_id, Slice key, Slice value, SplitResult* out);
  Status SplitRoot(const SplitResult& split);

  BufferManager* bm_;
  PageId root_;
};

}  // namespace xdb

#endif  // XDB_BTREE_BTREE_H_
